// Command tastegen generates a synthetic table corpus and either prints its
// summary statistics (the Table 2 view) or dumps tables as JSON for
// inspection and external tooling.
//
// Usage:
//
//	tastegen -dataset gittables -tables 200 -stats
//	tastegen -dataset wikitable -tables 10 -dump | jq .
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/corpus"
)

func main() {
	var (
		dataset = flag.String("dataset", "wikitable", "corpus profile: wikitable, gittables")
		tables  = flag.Int("tables", 100, "corpus size in tables")
		seed    = flag.Int64("seed", 1, "generation seed")
		stats   = flag.Bool("stats", true, "print per-split summary statistics")
		dump    = flag.Bool("dump", false, "dump test-split tables as JSON to stdout")
		types   = flag.Bool("types", false, "list the semantic type domain")
	)
	flag.Parse()

	reg := corpus.DefaultRegistry()
	if *types {
		for _, t := range reg.Types() {
			fmt.Printf("%-22s category=%-12s sql=%-9s names=%v\n", t.Name, t.Category, t.SQLType, t.ColumnNames)
		}
		return
	}

	var profile corpus.Profile
	switch *dataset {
	case "wikitable":
		profile = corpus.WikiTableProfile(*tables)
	case "gittables":
		profile = corpus.GitTablesProfile(*tables)
	default:
		log.Fatalf("tastegen: unknown dataset %q", *dataset)
	}
	ds := corpus.Generate(reg, profile, *seed)

	if *dump {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		for _, t := range ds.Test {
			if err := enc.Encode(t); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	if *stats {
		all := ds.Stats()
		names := []string{ds.Name, " - training", " - validation", " - testing"}
		fmt.Printf("%-22s %8s %9s %7s %10s %8s\n", "Split", "#tables", "#cols", "#types", "%col w/o", "#multi")
		for i, st := range all {
			fmt.Printf("%-22s %8d %9d %7d %9.2f%% %8d\n", names[i], st.Tables, st.Columns, st.Types, st.PctNoType, st.MultiLabeled)
		}
	}
}
