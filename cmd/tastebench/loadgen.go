package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/fleet"
)

type loadgenOpts struct {
	mode           string
	dist           string
	zipfS          float64
	rate           float64
	concurrency    int
	requests       int
	seed           int64
	deadlineMillis int64
	replicas       int
	tables         int
	tenants        int
	maxInFlight    int
	queueDepth     int
	target         string
}

// loadgenRecord is one BENCH_7 entry: the workload configuration that
// produced the run (a pure function of the seed) plus the measured report.
// The gomaxprocs tag follows the PR 6 bench format so fleet numbers carry
// their machine shape like every other suite.
type loadgenRecord struct {
	Name        string            `json:"name"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	Replicas    int               `json:"replicas"`
	Tenants     int               `json:"tenants"`
	Dist        string            `json:"dist,omitempty"`
	ZipfS       float64           `json:"zipf_s,omitempty"`
	Rate        float64           `json:"rate_rps,omitempty"`
	Concurrency int               `json:"concurrency,omitempty"`
	MaxInFlight int               `json:"max_inflight,omitempty"`
	QueueDepth  int               `json:"queue_depth"`
	ShedRate    float64           `json:"shed_rate"`
	Report      *fleet.LoadReport `json:"report"`
}

// runLoadgen boots the in-process fleet (unless -target points at an
// external one), drives it with the configured workload, and prints one
// JSON record line to stdout.
func runLoadgen(opts loadgenOpts) error {
	baseURL := opts.target
	targets := map[string][]string{"demo": nil} // tasted's default tenant
	replicas := 1
	var replicaNames []string
	if baseURL == "" {
		fmt.Fprintf(os.Stderr, "tastebench: booting %d-replica in-process fleet (%d tables, %d tenants)\n",
			opts.replicas, opts.tables, opts.tenants)
		h, err := fleet.StartLocal(fleet.HarnessConfig{
			Replicas: opts.replicas,
			Tables:   opts.tables,
			Tenants:  opts.tenants,
			Seed:     opts.seed,
			Coordinator: fleet.Config{
				MaxInFlight: opts.maxInFlight,
				QueueDepth:  opts.queueDepth,
			},
		})
		if err != nil {
			return err
		}
		defer h.Close()
		baseURL = h.CoordinatorURL
		targets = h.TenantTables
		replicas = opts.replicas
		for name := range h.ReplicaURLs {
			replicaNames = append(replicaNames, name)
		}
		sort.Strings(replicaNames)
	}

	start := time.Now()
	rep, err := fleet.RunLoad(baseURL, fleet.LoadConfig{
		Mode:           opts.mode,
		Dist:           opts.dist,
		ZipfS:          opts.zipfS,
		Rate:           opts.rate,
		Concurrency:    opts.concurrency,
		Requests:       opts.requests,
		Seed:           opts.seed,
		Targets:        targets,
		DeadlineMillis: opts.deadlineMillis,
		Replicas:       replicaNames,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tastebench: load run done in %v\n", time.Since(start).Round(time.Millisecond))

	name := "fleet_load/" + opts.mode
	if opts.dist == "zipf" {
		name += "/zipf"
	}
	rec := loadgenRecord{
		Name:       name,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Replicas:   replicas,
		Tenants:    len(targets),
		QueueDepth: opts.queueDepth,
		Report:     rep,
	}
	if opts.mode == "open" {
		rec.Rate = opts.rate
	} else {
		rec.Concurrency = opts.concurrency
	}
	if opts.dist == "zipf" {
		rec.Dist = opts.dist
		rec.ZipfS = opts.zipfS
	}
	if opts.maxInFlight > 0 {
		rec.MaxInFlight = opts.maxInFlight
	}
	if rep.Requests > 0 {
		rec.ShedRate = float64(rep.Shed) / float64(rep.Requests)
	}
	out, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}
