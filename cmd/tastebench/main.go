// Command tastebench regenerates the paper's tables and figures (§6) over
// the synthetic substrate. With no flags it runs every experiment at full
// scale, training models on first use and caching checkpoints under
// ./artifacts so that subsequent runs skip training.
//
// Usage:
//
//	tastebench [-quick] [-experiment name] [-checkpoints dir] [-repeats n] [-latency scale]
//
// With -loadgen it instead boots an in-process fleet (N tasted replicas
// behind the coordinator, trained once, loopback sockets) and drives it
// with the seeded load generator, printing one JSON report line:
//
//	tastebench -loadgen -loadgen-mode open -rate 50 -requests 200
//	tastebench -loadgen -loadgen-mode closed -concurrency 8 -requests 200
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/tensor"
)

func main() {
	var (
		quick       = flag.Bool("quick", false, "minutes-scale smoke configuration (tiny corpora, 2 epochs)")
		experiment  = flag.String("experiment", "all", "experiment to run: all, "+strings.Join(experiments.AllExperiments, ", "))
		checkpoints = flag.String("checkpoints", "artifacts", "checkpoint cache directory (empty disables)")
		repeats     = flag.Int("repeats", 0, "timing repetitions per variant (0 = config default)")
		latency     = flag.Float64("latency", -1, "database latency scale, 1 = paper testbed (negative = config default)")
		verbose     = flag.Bool("v", true, "log training and run progress to stderr")

		prepWorkers  = flag.Int("prep-workers", 0, "TP1 pool size for pipelined runs (0 = paper default of 2)")
		inferWorkers = flag.Int("infer-workers", 0, "TP2 pool size for pipelined runs (0 = paper default of 2)")
		parallelism  = flag.Int("parallelism", tensor.DefaultParallelism(), "worker goroutines for the sharded tensor kernels")
		fastpath     = flag.Bool("fastpath", true, "use the fused no-grad inference kernels (disable to time the composed autograd ops)")
		quantize     = flag.Bool("quantize", false, "run inference through the int8 quantized kernels (lossy; no-op without AVX2)")
		trace        = flag.Bool("trace", false, "run one traced detection and print the per-phase latency breakdown (Table-7 style) instead of the experiments")

		loadgen       = flag.Bool("loadgen", false, "run the fleet load generator instead of the experiments (see -loadgen-* flags)")
		loadgenMode   = flag.String("loadgen-mode", "closed", "arrival process: open (Poisson at -rate req/s) or closed (-concurrency workers, zero think time)")
		loadgenDist   = flag.String("loadgen-dist", "uniform", "target-draw distribution: uniform or zipf (skewed toward a few hot tables — the cache-effectiveness workload)")
		loadgenZipfS  = flag.Float64("zipf-s", 1.2, "Zipf skew exponent for -loadgen-dist zipf (must be > 1)")
		loadgenRate   = flag.Float64("rate", 20, "open-loop arrival rate, requests/second")
		loadgenConc   = flag.Int("concurrency", 4, "closed-loop worker count")
		loadgenReqs   = flag.Int("requests", 100, "total requests per load run")
		loadgenSeed   = flag.Int64("loadgen-seed", 7, "workload seed (target picks and inter-arrival gaps are pure functions of it)")
		loadgenDeadl  = flag.Int64("deadline-ms", 0, "deadline_ms stamped on every generated request (0 = none)")
		fleetReplicas = flag.Int("fleet-replicas", 3, "in-process fleet size")
		fleetTables   = flag.Int("fleet-tables", 40, "corpus size behind the in-process fleet")
		fleetTenants  = flag.Int("fleet-tenants", 8, "tenant databases the corpus is sharded into")
		fleetInflight = flag.Int("max-inflight", 0, "coordinator admission cap (0 = default 64; lower it with -queue-depth 0 to provoke shedding)")
		fleetQueue    = flag.Int("queue-depth", 0, "coordinator admission queue depth")
		loadgenTarget = flag.String("target", "", "drive an external coordinator/replica at this base URL instead of booting the in-process fleet")

		benchcache = flag.Bool("benchcache", false, "run the tiered-cache benchmark (cold vs warm detect latency + byte parity) and print BENCH_8-format JSON lines")

		benchpipeline  = flag.Bool("benchpipeline", false, "run the work-stealing pipeline benchmark (sequential vs stealing vs batched over many small tables) and print BENCH_10-format JSON lines")
		pipelineTables = flag.Int("pipeline-tables", 200, "corpus size for -benchpipeline (narrow 3-column tables)")
		pipeWorkers    = flag.Int("pipeline-workers", 8, "work-stealing pool size for -benchpipeline (batch occupancy is bounded by it)")
		scanLookahead  = flag.Int("scan-lookahead", 0, "scan-prefetch window for -benchpipeline (0 = 2×workers, negative disables)")
		batchChunks    = flag.Int("batch-chunks", 8, "max table chunks per cross-table Phase-2 forward for -benchpipeline")
	)
	flag.Parse()
	if *benchpipeline {
		if err := runBenchPipeline(benchPipelineOpts{
			tables: *pipelineTables, seed: *loadgenSeed, repeats: *repeats, latency: *latency,
			workers: *pipeWorkers, lookahead: *scanLookahead, batchChunks: *batchChunks,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "tastebench:", err)
			os.Exit(1)
		}
		return
	}
	if *benchcache {
		if err := runBenchCache(benchCacheOpts{
			tables: *fleetTables, seed: *loadgenSeed, requests: *loadgenReqs,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "tastebench:", err)
			os.Exit(1)
		}
		return
	}
	if *loadgen {
		if err := runLoadgen(loadgenOpts{
			mode: *loadgenMode, dist: *loadgenDist, zipfS: *loadgenZipfS,
			rate: *loadgenRate, concurrency: *loadgenConc,
			requests: *loadgenReqs, seed: *loadgenSeed, deadlineMillis: *loadgenDeadl,
			replicas: *fleetReplicas, tables: *fleetTables, tenants: *fleetTenants,
			maxInFlight: *fleetInflight, queueDepth: *fleetQueue, target: *loadgenTarget,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "tastebench:", err)
			os.Exit(1)
		}
		return
	}
	tensor.SetParallelism(*parallelism)
	tensor.SetFastPath(*fastpath)
	tensor.SetQuantize(*quantize)
	if *quantize && !tensor.QuantizeAvailable() {
		fmt.Fprintln(os.Stderr, "tastebench: -quantize set but the CPU lacks the required SIMD support; timing fp64")
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.CheckpointDir = *checkpoints
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}
	if *latency >= 0 {
		cfg.LatencyScale = *latency
	}
	cfg.PrepWorkers = *prepWorkers
	cfg.InferWorkers = *inferWorkers
	if *verbose {
		cfg.Log = os.Stderr
	}

	suite := experiments.NewSuite(cfg)
	start := time.Now()

	// A first SIGINT/SIGTERM asks for a clean stop after the in-flight
	// experiment; a second one kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		switch {
		case *trace:
			done <- suite.TraceBreakdown(os.Stdout)
		case *experiment == "all":
			done <- suite.RunAll(os.Stdout)
		default:
			done <- suite.Run(*experiment, os.Stdout)
		}
	}()
	var err error
	select {
	case err = <-done:
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "tastebench: interrupted, exiting (press again to force-kill)")
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tastebench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tastebench: done in %v\n", time.Since(start).Round(time.Second))
}
