package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/adtd"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/service"
	"repro/internal/simdb"
)

type benchCacheOpts struct {
	tables   int
	seed     int64
	requests int
}

// benchCacheRecord is one BENCH_8 entry: latency quantiles for a cache
// temperature, plus the tier counters proving which tier actually served
// the pass. Speedup and parity ride on the warm rows.
type benchCacheRecord struct {
	Name       string  `json:"name"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Requests   int     `json:"requests"`
	P50Millis  float64 `json:"p50_ms"`
	P95Millis  float64 `json:"p95_ms"`
	P99Millis  float64 `json:"p99_ms"`
	LatentHits int64   `json:"latent_hits"`
	ResultHits int64   `json:"result_hits"`
	SpeedupP50 float64 `json:"speedup_p50_vs_cold,omitempty"`
	Parity     string  `json:"parity,omitempty"`
}

// canonResponse is a response normalized for byte comparison: the only
// legitimately run-dependent field (duration) zeroed, everything else as
// served. Warm answers must be indistinguishable from cold ones.
func canonResponse(resp *service.DetectResponse) (string, error) {
	c := *resp
	c.DurationMillis = 0
	out, err := json.Marshal(&c)
	return string(out), err
}

func benchQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted))*q+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// benchPass issues one single-table detect per planned request against svc
// and returns per-request latencies (ms, sorted) plus the canonical
// response per table.
func benchPass(svc *service.Service, tables []string, requests int) ([]float64, map[string]string, error) {
	latencies := make([]float64, 0, requests)
	canon := make(map[string]string, len(tables))
	for i := 0; i < requests; i++ {
		table := tables[i%len(tables)]
		start := time.Now()
		resp, apiErr := svc.Detect(context.Background(), service.DetectRequest{
			Database: "tenant", Tables: []string{table},
		})
		latencies = append(latencies, float64(time.Since(start))/float64(time.Millisecond))
		if apiErr != nil {
			return nil, nil, fmt.Errorf("detect %s: %s", table, apiErr.Msg)
		}
		c, err := canonResponse(resp)
		if err != nil {
			return nil, nil, err
		}
		if prev, ok := canon[table]; ok && prev != c {
			return nil, nil, fmt.Errorf("table %s: response changed within one pass", table)
		}
		canon[table] = c
	}
	sort.Float64s(latencies)
	return latencies, canon, nil
}

// runBenchCache measures the tiered cache end to end on one trained model:
// a cold pass (every tier empty), a warm latent pass (latent tier hot,
// result tier disabled), and a warm result pass (memoized responses). Each
// pass's answers must be byte-identical to the cold ones — a cache that
// changes results is not a cache. Prints one JSON line per pass.
func runBenchCache(opts benchCacheOpts) error {
	if opts.tables <= 0 {
		opts.tables = 40
	}
	if opts.requests <= 0 {
		opts.requests = 100
	}

	fmt.Fprintf(os.Stderr, "tastebench: benchcache: training model on %d tables (seed %d)\n", opts.tables, opts.seed)
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(opts.tables), opts.seed)
	tok := adtd.BuildVocabulary(ds.Train, ds.Registry.Names(), 4000)
	types := adtd.NewTypeSpace(ds.Registry.Names())
	model, err := adtd.New(adtd.ReproScale(), tok, types, opts.seed)
	if err != nil {
		return err
	}
	tcfg := adtd.DefaultTrainConfig()
	tcfg.Epochs = 1
	if _, err := adtd.FineTune(model, ds.Train, tcfg); err != nil {
		return err
	}

	server := simdb.NewServer(simdb.NoLatency)
	server.LoadTables("tenant", ds.Test)
	tables := make([]string, len(ds.Test))
	for i, t := range ds.Test {
		tables[i] = t.Name
	}

	newSvc := func(resultBytes int64) (*service.Service, *core.Detector, error) {
		dopts := core.DefaultOptions()
		dopts.ResultCacheBytes = resultBytes
		det, err := core.NewDetector(model, dopts)
		if err != nil {
			return nil, nil, err
		}
		svc := service.New(det)
		svc.RegisterTenant("tenant", server)
		return svc, det, nil
	}

	// Full tiers: its first pass is the cold baseline, its second the
	// memoized warm pass.
	svcFull, detFull, err := newSvc(16 << 20)
	if err != nil {
		return err
	}
	// Latent tier only: isolates the mid-tier speedup (metadata tower
	// skipped, content inference still paid).
	svcLatent, detLatent, err := newSvc(0)
	if err != nil {
		return err
	}

	coldLat, coldCanon, err := benchPass(svcFull, tables, len(tables))
	if err != nil {
		return fmt.Errorf("cold pass: %w", err)
	}
	warmResLat, warmResCanon, err := benchPass(svcFull, tables, opts.requests)
	if err != nil {
		return fmt.Errorf("warm result pass: %w", err)
	}
	if _, _, err := benchPass(svcLatent, tables, len(tables)); err != nil {
		return fmt.Errorf("latent prime pass: %w", err)
	}
	warmLatLat, warmLatCanon, err := benchPass(svcLatent, tables, opts.requests)
	if err != nil {
		return fmt.Errorf("warm latent pass: %w", err)
	}

	parity := func(warm map[string]string) string {
		for table, cold := range coldCanon {
			if warm[table] != cold {
				return "MISMATCH:" + table
			}
		}
		return "ok"
	}
	parityRes, parityLat := parity(warmResCanon), parity(warmLatCanon)

	fullStats, latentStats := detFull.Cache().Stats(), detLatent.Cache().Stats()
	resultStats := detFull.Results().Stats()

	coldP50 := benchQuantile(coldLat, 0.50)
	emit := func(rec benchCacheRecord) error {
		out, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	gmp := runtime.GOMAXPROCS(0)
	if err := emit(benchCacheRecord{
		Name: "cache/cold", GoMaxProcs: gmp, Requests: len(coldLat),
		P50Millis: coldP50, P95Millis: benchQuantile(coldLat, 0.95), P99Millis: benchQuantile(coldLat, 0.99),
	}); err != nil {
		return err
	}
	warmResP50 := benchQuantile(warmResLat, 0.50)
	speedup := 0.0
	if warmResP50 > 0 {
		speedup = coldP50 / warmResP50
	}
	if err := emit(benchCacheRecord{
		Name: "cache/warm_result", GoMaxProcs: gmp, Requests: len(warmResLat),
		P50Millis: warmResP50, P95Millis: benchQuantile(warmResLat, 0.95), P99Millis: benchQuantile(warmResLat, 0.99),
		LatentHits: fullStats.Hits, ResultHits: resultStats.Hits,
		SpeedupP50: speedup, Parity: parityRes,
	}); err != nil {
		return err
	}
	if err := emit(benchCacheRecord{
		Name: "cache/warm_latent", GoMaxProcs: gmp, Requests: len(warmLatLat),
		P50Millis: benchQuantile(warmLatLat, 0.50), P95Millis: benchQuantile(warmLatLat, 0.95), P99Millis: benchQuantile(warmLatLat, 0.99),
		LatentHits: latentStats.Hits,
		Parity:     parityLat,
	}); err != nil {
		return err
	}

	if parityRes != "ok" || parityLat != "ok" {
		return fmt.Errorf("cache parity violated (result=%s latent=%s)", parityRes, parityLat)
	}
	if resultStats.Hits == 0 {
		return fmt.Errorf("warm pass produced zero result-cache hits")
	}
	if latentStats.Hits == 0 {
		return fmt.Errorf("warm latent pass produced zero latent-cache hits")
	}
	if speedup < 5 {
		fmt.Fprintf(os.Stderr, "tastebench: benchcache: warning: warm p50 speedup %.1fx < 5x target\n", speedup)
	} else {
		fmt.Fprintf(os.Stderr, "tastebench: benchcache: warm result-cache p50 %.3fms vs cold %.3fms (%.1fx)\n", warmResP50, coldP50, speedup)
	}
	return nil
}
