package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/adtd"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/simdb"
)

type benchPipelineOpts struct {
	tables      int
	seed        int64
	repeats     int
	latency     float64
	workers     int
	lookahead   int
	batchChunks int
}

// benchPipelineRecord is one BENCH_10 entry: whole-database detect latency
// for an execution mode over the many-small-tables corpus, plus the
// counters that explain it — Phase-2 forwards issued, prefetcher traffic,
// and steal activity. The batched row carries the acceptance numbers:
// forwards drop and byte parity against the sequential baseline.
type benchPipelineRecord struct {
	Name            string  `json:"name"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	Tables          int     `json:"tables"`
	Columns         int     `json:"columns"`
	Repeats         int     `json:"repeats"`
	P50Millis       float64 `json:"p50_ms"`
	P95Millis       float64 `json:"p95_ms"`
	ContentForwards int     `json:"content_forwards"`
	PrefetchHits    int     `json:"prefetch_hits,omitempty"`
	PrefetchWasted  int     `json:"prefetch_wasted,omitempty"`
	PrefetchSkipped int     `json:"prefetch_skipped,omitempty"`
	Steals          int64   `json:"steals,omitempty"`
	StolenStages    int64   `json:"stolen_stages,omitempty"`
	SpeedupP50      float64 `json:"speedup_p50_vs_sequential,omitempty"`
	ForwardsDrop    float64 `json:"forwards_drop_vs_sequential,omitempty"`
	Parity          string  `json:"parity,omitempty"`
}

// canonReport serializes the per-table results for byte comparison across
// execution modes. Everything in Tables is part of the determinism
// contract — admitted types, phases, probabilities, even retry counts
// (zero here: the bench tenant injects no faults).
func canonReport(rep *core.Report) (string, error) {
	out, err := json.Marshal(rep.Tables)
	return string(out), err
}

// runBenchPipeline measures whole-database detection over a corpus of many
// narrow tables (the per-table-overhead-dominated shape) in three modes:
// sequential, work-stealing with cross-table batching disabled, and
// work-stealing with batching. Every mode must produce byte-identical
// results; the batched mode must cut Phase-2 forwards ≥5×. Prints one
// BENCH_10 JSON line per mode.
func runBenchPipeline(opts benchPipelineOpts) error {
	if opts.tables <= 0 {
		opts.tables = 200
	}
	if opts.repeats <= 0 {
		opts.repeats = 3
	}
	if opts.latency < 0 {
		opts.latency = 0.05
	}
	// Batch occupancy is bounded by the worker count (the intra-request
	// batcher must flush once every worker is blocked submitting), so the
	// pool defaults to the chunk cap: 8 workers let a full 8-chunk forward
	// assemble even on one CPU.
	if opts.workers <= 0 {
		opts.workers = 8
	}
	if opts.batchChunks <= 0 {
		opts.batchChunks = 8
	}

	// Untrained tiny model with a near-full uncertainty band (α=0.01,
	// β=0.99): every column is uncertain after Phase 1 and goes through the
	// content path, so the bench exercises scan prefetch and cross-table
	// batching on all tables.
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.SmallTablesProfile(opts.tables), opts.seed)
	tok := adtd.BuildVocabulary(ds.Train, ds.Registry.Names(), 2000)
	types := adtd.NewTypeSpace(ds.Registry.Names())
	cfg := adtd.ReproScale()
	cfg.Layers, cfg.Hidden, cfg.Heads, cfg.Intermediate = 2, 32, 2, 48
	cfg.MetaClassifierHidden, cfg.ContentClassifierHidden = 32, 32
	model, err := adtd.New(cfg, tok, types, 7)
	if err != nil {
		return err
	}

	all := make([]*corpus.Table, 0, opts.tables)
	all = append(all, ds.Train...)
	all = append(all, ds.Val...)
	all = append(all, ds.Test...)
	columns := 0
	for _, t := range all {
		columns += len(t.Columns)
	}
	server := simdb.NewServer(simdb.PaperLatency(opts.latency))
	server.LoadTables("tenant", all)
	fmt.Fprintf(os.Stderr, "tastebench: benchpipeline: %d tables, %d columns, latency scale %g, %d repeats\n",
		len(all), columns, opts.latency, opts.repeats)

	newDetector := func() (*core.Detector, error) {
		dopts := core.DefaultOptions()
		dopts.Alpha, dopts.Beta = 0.01, 0.99
		return core.NewDetector(model, dopts)
	}

	modes := []struct {
		name string
		mode core.ExecMode
	}{
		{"pipeline/sequential", core.SequentialMode},
		{"pipeline/stealing", core.ExecMode{
			Pipelined: true, Workers: opts.workers,
			Lookahead: opts.lookahead, BatchChunks: -1,
		}},
		{"pipeline/stealing_batched", core.ExecMode{
			Pipelined: true, Workers: opts.workers,
			Lookahead: opts.lookahead, BatchChunks: opts.batchChunks,
		}},
	}

	gmp := runtime.GOMAXPROCS(0)
	var baseP50 float64
	var baseForwards int
	var baseCanon string
	for _, m := range modes {
		latencies := make([]float64, 0, opts.repeats)
		var rep *core.Report
		var canon string
		for r := 0; r < opts.repeats; r++ {
			// Fresh detector per repeat: every measurement is cold, so the
			// latent cache cannot blur the cross-mode comparison.
			det, err := newDetector()
			if err != nil {
				return err
			}
			start := time.Now()
			rep, err = det.DetectDatabase(context.Background(), server, "tenant", m.mode)
			latencies = append(latencies, float64(time.Since(start))/float64(time.Millisecond))
			if err != nil {
				return fmt.Errorf("%s: %w", m.name, err)
			}
			c, err := canonReport(rep)
			if err != nil {
				return err
			}
			if canon != "" && c != canon {
				return fmt.Errorf("%s: results changed between repeats", m.name)
			}
			canon = c
		}
		sort.Float64s(latencies)

		rec := benchPipelineRecord{
			Name: m.name, GoMaxProcs: gmp,
			Tables: len(all), Columns: columns, Repeats: opts.repeats,
			P50Millis: benchQuantile(latencies, 0.50), P95Millis: benchQuantile(latencies, 0.95),
			ContentForwards: rep.ContentForwards,
			PrefetchHits:    rep.PrefetchHits, PrefetchWasted: rep.PrefetchWasted, PrefetchSkipped: rep.PrefetchSkipped,
			Steals: rep.Steals, StolenStages: rep.StolenStages,
		}
		if m.name == "pipeline/sequential" {
			baseP50, baseForwards, baseCanon = rec.P50Millis, rec.ContentForwards, canon
		} else {
			if rec.P50Millis > 0 {
				rec.SpeedupP50 = baseP50 / rec.P50Millis
			}
			if rec.ContentForwards > 0 {
				rec.ForwardsDrop = float64(baseForwards) / float64(rec.ContentForwards)
			}
			rec.Parity = "ok"
			if canon != baseCanon {
				rec.Parity = "MISMATCH"
			}
		}
		out, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		fmt.Println(string(out))

		if rec.Parity == "MISMATCH" {
			return fmt.Errorf("%s: results differ from sequential mode", m.name)
		}
		if m.name == "pipeline/stealing_batched" {
			if rec.ForwardsDrop < 5 {
				return fmt.Errorf("batched mode forwards drop %.1fx < 5x target (%d vs %d)",
					rec.ForwardsDrop, rec.ContentForwards, baseForwards)
			}
			fmt.Fprintf(os.Stderr, "tastebench: benchpipeline: batched forwards %d vs sequential %d (%.1fx drop), p50 %.0fms vs %.0fms (%.2fx)\n",
				rec.ContentForwards, baseForwards, rec.ForwardsDrop, rec.P50Millis, baseP50, rec.SpeedupP50)
		}
	}
	return nil
}
