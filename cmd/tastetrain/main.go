// Command tastetrain trains a single model (Taste ADTD, TURL, or Doduo) on
// a generated corpus and writes the checkpoint to a file. It is the
// standalone counterpart of the training the experiment suite performs
// lazily; useful for preparing checkpoints once and serving them elsewhere.
//
// Usage:
//
//	tastetrain -model taste -dataset wikitable -tables 600 -epochs 16 -o taste.ckpt
//	tastetrain -model taste -publish /var/taste/registry   # also publish to a model registry
//
// With -publish the checkpoint is additionally stored in a deduplicated
// model registry (content-hashed pages, shared across versions): publishing
// a fine-tuned variant of an earlier version pays only for the pages that
// changed. tasted -registry serves straight from the same directory.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/adtd"
	"repro/internal/baselines"
	"repro/internal/corpus"
	"repro/internal/registry"
	"repro/internal/simdb"
)

func main() {
	var (
		modelKind = flag.String("model", "taste", "model to train: taste, turl, doduo")
		dataset   = flag.String("dataset", "wikitable", "corpus profile: wikitable, gittables")
		tables    = flag.Int("tables", 300, "corpus size in tables")
		seed      = flag.Int64("seed", 1, "corpus and init seed")
		epochs    = flag.Int("epochs", 12, "fine-tuning epochs")
		pretrain  = flag.Int("pretrain", 0, "MLM pre-training steps before fine-tuning (taste only)")
		hist      = flag.Bool("histogram", false, "train the with-histogram variant (taste only)")
		workers   = flag.Int("train-workers", 1, "data-parallel gradient workers (results are bit-reproducible per (seed, workers))")
		gradAccum = flag.Int("grad-accum", 1, "micro-batches accumulated per worker per optimizer step")
		out       = flag.String("o", "model.ckpt", "checkpoint output path")
		publish   = flag.String("publish", "", "also publish the checkpoint to the model registry rooted at this directory (taste only)")
		pubName   = flag.String("publish-name", "taste", "registry model name to publish under")
	)
	flag.Parse()
	if *publish != "" && *modelKind != "taste" {
		log.Fatalf("tastetrain: -publish supports -model taste only (got %q)", *modelKind)
	}

	var profile corpus.Profile
	switch *dataset {
	case "wikitable":
		profile = corpus.WikiTableProfile(*tables)
	case "gittables":
		profile = corpus.GitTablesProfile(*tables)
	default:
		log.Fatalf("tastetrain: unknown dataset %q", *dataset)
	}
	ds := corpus.Generate(corpus.DefaultRegistry(), profile, *seed)
	tok := adtd.BuildVocabulary(ds.Train, ds.Registry.Names(), 4000)
	types := adtd.NewTypeSpace(ds.Registry.Names())

	start := time.Now()
	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("tastetrain: %v", err)
	}
	defer f.Close()

	switch *modelKind {
	case "taste":
		m, err := adtd.New(adtd.ReproScale(), tok, types, *seed)
		if err != nil {
			log.Fatal(err)
		}
		if *pretrain > 0 {
			pcfg := adtd.DefaultPretrainConfig()
			pcfg.Steps = *pretrain
			pcfg.Workers = *workers
			pcfg.GradAccum = *gradAccum
			pcfg.Log = os.Stderr
			if _, err := adtd.Pretrain(m, ds.Train, pcfg); err != nil {
				log.Fatal(err)
			}
		}
		cfg := adtd.DefaultTrainConfig()
		cfg.Epochs = *epochs
		cfg.LR, cfg.FinalLR = 1.5e-3, 3e-4
		cfg.PosWeight = 6
		cfg.WeightDecay = 1e-4
		cfg.Cells = 6
		cfg.ContentColumnsPerChunk = 4
		cfg.WithStats = *hist
		cfg.Workers = *workers
		cfg.GradAccum = *gradAccum
		cfg.Log = os.Stderr
		if _, err := adtd.FineTune(m, ds.Train, cfg); err != nil {
			log.Fatal(err)
		}
		if err := m.Save(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained taste model (%d params) in %v → %s\n", m.NumParams(), time.Since(start).Round(time.Second), *out)
		if *publish != "" {
			reg, err := registry.Open(simdb.NewServer(simdb.NoLatency), *publish, registry.Options{})
			if err != nil {
				log.Fatalf("open registry: %v", err)
			}
			res, err := reg.Publish(context.Background(), *pubName, m.Params())
			if err != nil {
				log.Fatalf("publish: %v", err)
			}
			fmt.Printf("published %s@%d → %s: %d pages (%d new), %d bytes stored, %.1f%% shared with earlier versions\n",
				res.Name, res.Version, *publish, res.Pages, res.NewPages, res.StoredBytes, 100*res.SharedFrac)
		}
	case "turl", "doduo":
		v, cfg := baselines.TURL, baselines.TURLScale()
		if *modelKind == "doduo" {
			v, cfg = baselines.Doduo, baselines.DoduoScale()
		}
		m := baselines.New(v, cfg, tok, types, *seed)
		tcfg := baselines.DefaultTrainConfig()
		tcfg.Epochs = *epochs
		tcfg.LR, tcfg.FinalLR = 1.5e-3, 3e-4
		tcfg.PosWeight = 6
		tcfg.WeightDecay = 1e-4
		tcfg.Workers = *workers
		tcfg.GradAccum = *gradAccum
		tcfg.Log = os.Stderr
		if _, err := baselines.FineTune(m, ds.Train, tcfg); err != nil {
			log.Fatal(err)
		}
		if err := m.Save(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained %s model (%d params) in %v → %s\n", v, m.NumParams(), time.Since(start).Round(time.Second), *out)
	default:
		log.Fatalf("tastetrain: unknown model %q", *modelKind)
	}
}
