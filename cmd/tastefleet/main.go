// Command tastefleet fronts N tasted replicas with the fleet coordinator:
// consistent-hash routing of /v1/detect by tenant (database, or
// database/table for single-table requests), health-checked replica pools
// with hysteresis, per-replica transient retries with cross-replica
// failover, admission control, and fleet-wide /metrics aggregation.
//
// Usage:
//
//	tasted -train -addr 127.0.0.1:18081 &
//	tasted -train -addr 127.0.0.1:18082 &
//	tastefleet -addr :8080 -replicas r0=http://127.0.0.1:18081,r1=http://127.0.0.1:18082
//
// Then:
//
//	curl -s -XPOST localhost:8080/v1/detect -d '{"database":"demo"}' | jq .
//	curl -s localhost:8080/v1/stats | jq .routing
//	curl -s localhost:8080/metrics | grep taste_fleet
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/retry"
)

// parseReplicas accepts "name=url,name=url" (or bare URLs, auto-named
// replica00, replica01, … in listed order).
func parseReplicas(spec string) (map[string]string, error) {
	out := make(map[string]string)
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url := fmt.Sprintf("replica%02d", i), part
		if eq := strings.Index(part, "="); eq >= 0 {
			name, url = part[:eq], part[eq+1:]
		}
		if name == "" || url == "" {
			return nil, fmt.Errorf("bad replica spec %q", part)
		}
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			url = "http://" + url
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate replica name %q", name)
		}
		out[name] = strings.TrimSuffix(url, "/")
	}
	if len(out) == 0 {
		return nil, errors.New("no replicas given (-replicas name=url,...)")
	}
	return out, nil
}

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		replicasSpec  = flag.String("replicas", "", "comma-separated tasted replicas, name=url or bare url")
		vnodes        = flag.Int("vnodes", fleet.DefaultVnodes, "virtual nodes per replica on the hash ring")
		maxInFlight   = flag.Int("max-inflight", 64, "admission control: max concurrently routed requests")
		queueDepth    = flag.Int("queue-depth", 32, "admission control: max requests queued for a slot (0 = no queue, negative = unbounded)")
		queueWait     = flag.Duration("queue-wait", 100*time.Millisecond, "admission control: max time a queued request waits before 429")
		probeInterval = flag.Duration("probe-interval", time.Second, "health probe period (≤ 0 disables probing)")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "health probe request timeout")
		ejectAfter    = flag.Int("eject-after", 3, "consecutive failures before a replica is ejected")
		readmitAfter  = flag.Int("readmit-after", 2, "consecutive good probes before an ejected replica is readmitted")
		maxRetries    = flag.Int("max-retries", 2, "transient retries per replica before failing over")
		retryBase     = flag.Duration("retry-base", 2*time.Millisecond, "base backoff between per-replica retries (doubles per attempt, jittered)")
		retryMax      = flag.Duration("retry-max", 100*time.Millisecond, "backoff cap")
		retrySeed     = flag.Int64("retry-seed", 1, "backoff jitter seed")
		attemptTO     = flag.Duration("attempt-timeout", 0, "per-attempt timeout against one replica (0 = request deadline only)")
	)
	flag.Parse()

	replicas, err := parseReplicas(*replicasSpec)
	if err != nil {
		log.Fatalf("tastefleet: %v", err)
	}

	coord := fleet.NewCoordinator(replicas, fleet.Config{
		Vnodes:      *vnodes,
		MaxInFlight: *maxInFlight,
		QueueDepth:  *queueDepth,
		QueueWait:   *queueWait,
		Retry: retry.Policy{
			MaxRetries: *maxRetries,
			BaseDelay:  *retryBase,
			MaxDelay:   *retryMax,
		},
		RetrySeed:      *retrySeed,
		AttemptTimeout: *attemptTO,
		Pool: fleet.PoolConfig{
			ProbeInterval: *probeInterval,
			ProbeTimeout:  *probeTimeout,
			EjectAfter:    *ejectAfter,
			ReadmitAfter:  *readmitAfter,
		},
	})
	coord.Start()
	defer coord.Stop()

	srv := &http.Server{Addr: *addr, Handler: coord.Handler()}
	go func() {
		log.Printf("tastefleet: routing across %d replicas on %s", len(replicas), *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("tastefleet: %v", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Print("tastefleet: shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shCtx)
}
