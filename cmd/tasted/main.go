// Command tasted serves the Taste detector over HTTP (see
// internal/service for the API). It loads an ADTD checkpoint produced by
// tastetrain — or, with -train, trains a fresh model at startup — and hosts
// a demo tenant database generated from the test split.
//
// Usage:
//
//	tasted -checkpoint taste.ckpt -addr :8080
//	tasted -train -addr :8080        # self-contained demo
//	tasted -registry /var/taste/registry -addr :8080   # serve the latest published version
//
// With -registry the /v1/models endpoints come alive: list published
// versions, hot-swap the serving model with zero downtime, and publish the
// (possibly feedback-adapted) serving weights as a new deduplicated version.
//
// Then:
//
//	curl -s localhost:8080/v1/types | jq .
//	curl -s -XPOST localhost:8080/v1/detect -d '{"database":"demo","pipelined":true}' | jq .
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/adtd"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/simdb"
	"repro/internal/tensor"
)

func main() {
	autoMode := core.AutoMode()
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		debugAddr    = flag.String("debug-addr", "", "observability listener serving /metrics and /debug/pprof (empty disables)")
		checkpoint   = flag.String("checkpoint", "", "ADTD checkpoint from tastetrain (matching -tables/-seed)")
		registryDir  = flag.String("registry", "", "model-registry journal directory (from tastetrain -publish); enables /v1/models list/swap/publish")
		modelName    = flag.String("model-name", "taste", "registry model name to serve and publish under")
		modelVersion = flag.Int("model-version", 0, "registry version to serve at boot (0 = latest; requires -registry)")
		train        = flag.Bool("train", false, "train a fresh model at startup instead of loading a checkpoint")
		tables       = flag.Int("tables", 200, "corpus size backing the vocabulary/type space (must match the checkpoint)")
		seed         = flag.Int64("seed", 1, "corpus seed (must match the checkpoint)")
		epochs       = flag.Int("epochs", 8, "training epochs when -train is set")
		trainWorkers = flag.Int("train-workers", 1, "data-parallel gradient workers when -train is set (bit-reproducible per (seed, workers))")
		gradAccum    = flag.Int("grad-accum", 1, "micro-batches accumulated per worker per optimizer step when -train is set")
		prepWorkers   = flag.Int("prep-workers", autoMode.PrepWorkers, "legacy TP1 pool size; with -infer-workers it derives the work-stealing pool when -pipeline-workers is 0")
		inferWorkers  = flag.Int("infer-workers", autoMode.InferWorkers, "legacy TP2 pool size; see -prep-workers")
		pipeWorkers   = flag.Int("pipeline-workers", 0, "work-stealing pool size for pipelined detect requests (0 = derive from -prep-workers + -infer-workers)")
		scanLookahead = flag.Int("scan-lookahead", 0, "scan-prefetch window: metadata/content reads issued ahead of their stages (0 = 2×workers, negative disables)")
		batchChunks   = flag.Int("batch-chunks", 0, "max table chunks coalesced into one cross-table Phase-2 forward within a request (0 = 8, negative disables)")
		parallelism  = flag.Int("parallelism", tensor.DefaultParallelism(), "worker goroutines for the sharded tensor kernels")
		deadline     = flag.Duration("deadline", 0, "default per-request deadline for /v1/detect (0 = none; requests can override via deadline_ms)")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "how long Phase-2 inference waits to coalesce chunks from concurrent requests (0 disables micro-batching)")
		maxBatch     = flag.Int("max-batch", 8, "max table chunks per coalesced Phase-2 model forward")
		faultProb    = flag.Float64("fault-prob", 0, "demo tenant: probability of a transient fault per scan/query/connect (chaos mode)")
		faultSeed    = flag.Int64("fault-seed", 1, "demo tenant: fault-injection seed")
		quantize     = flag.Bool("quantize", false, "default /v1/detect requests to int8 quantized inference (lossy; requests can override via \"quantize\"; no-op without AVX2)")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "latent-cache byte budget (0 disables the metadata-latent tier)")
		resultCache  = flag.Int64("result-cache", 16<<20, "result-cache byte budget memoizing per-column detect outputs (0 disables; invalidated on any weight update)")
	)
	flag.Parse()
	tensor.SetParallelism(*parallelism)
	tensor.SetQuantize(*quantize)
	if *quantize && !tensor.QuantizeAvailable() {
		log.Printf("tasted: -quantize set but the CPU lacks the required SIMD support; serving fp64")
	}

	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(*tables), *seed)
	tok := adtd.BuildVocabulary(ds.Train, ds.Registry.Names(), 4000)
	types := adtd.NewTypeSpace(ds.Registry.Names())
	model, err := adtd.New(adtd.ReproScale(), tok, types, *seed)
	if err != nil {
		log.Fatal(err)
	}

	// The registry lives on its own zero-latency simulated store: the
	// latency/fault model belongs to tenant databases, not to the service's
	// control plane.
	var reg *registry.Registry
	if *registryDir != "" {
		reg, err = registry.Open(simdb.NewServer(simdb.NoLatency), *registryDir, registry.Options{})
		if err != nil {
			log.Fatalf("open registry: %v", err)
		}
	}
	bootVersion := 0

	switch {
	case *train:
		cfg := adtd.DefaultTrainConfig()
		cfg.Epochs = *epochs
		cfg.LR, cfg.FinalLR = 1.5e-3, 4e-4
		cfg.PosWeight = 6
		cfg.Workers = *trainWorkers
		cfg.GradAccum = *gradAccum
		cfg.Log = os.Stderr
		log.Printf("training model (%d epochs) …", cfg.Epochs)
		if _, err := adtd.FineTune(model, ds.Train, cfg); err != nil {
			log.Fatal(err)
		}
	case *checkpoint != "":
		f, err := os.Open(*checkpoint)
		if err != nil {
			log.Fatal(err)
		}
		if err := model.Load(f); err != nil {
			log.Fatalf("load checkpoint: %v", err)
		}
		f.Close()
		log.Printf("loaded checkpoint %s", *checkpoint)
	case reg != nil:
		version := *modelVersion
		if version == 0 {
			latest, ok := reg.Latest(*modelName)
			if !ok {
				log.Fatalf("registry %s has no published versions of %q", *registryDir, *modelName)
			}
			version = latest
		}
		ckpt, err := reg.Checkpoint(context.Background(), *modelName, version)
		if err != nil {
			log.Fatalf("registry checkpoint %s@%d: %v", *modelName, version, err)
		}
		if err := model.Load(bytes.NewReader(ckpt)); err != nil {
			log.Fatalf("load %s@%d: %v", *modelName, version, err)
		}
		bootVersion = version
		log.Printf("loaded %s@%d from registry %s", *modelName, version, *registryDir)
	default:
		log.Fatal("tasted: need -checkpoint, -registry, or -train")
	}

	opts := core.DefaultOptions()
	opts.CacheBytes = *cacheBytes
	opts.ResultCacheBytes = *resultCache
	det, err := core.NewDetector(model, opts)
	if err != nil {
		log.Fatal(err)
	}
	svc := service.New(det)
	if reg != nil {
		svc.AttachRegistry(reg, *modelName, bootVersion)
		log.Printf("model registry attached (%s, serving %s@%d): /v1/models endpoints enabled", *registryDir, *modelName, bootVersion)
	}
	svc.SetDefaultMode(core.ExecMode{
		Pipelined:   true,
		Workers:     *pipeWorkers,
		PrepWorkers: *prepWorkers, InferWorkers: *inferWorkers,
		Lookahead: *scanLookahead, BatchChunks: *batchChunks,
	})
	svc.SetDefaultDeadline(*deadline)
	if *batchWindow > 0 {
		svc.EnableBatching(*batchWindow, *maxBatch)
		defer svc.Close()
		log.Printf("micro-batching Phase-2 inference: window %s, max %d chunks", *batchWindow, *maxBatch)
	}

	demo := simdb.NewServer(simdb.PaperLatency(0.1))
	demo.LoadTables("demo", ds.Test)
	if *faultProb > 0 {
		demo.SetFaultProfile(simdb.FaultProfile{
			Seed:            *faultSeed,
			ConnectFailProb: *faultProb,
			QueryFailProb:   *faultProb,
			ScanFailProb:    *faultProb,
			MidScanDropProb: *faultProb / 2,
			SlowQueryProb:   *faultProb,
		})
		log.Printf("chaos mode: demo tenant injecting transient faults with p=%.3f (seed %d)", *faultProb, *faultSeed)
	}
	svc.RegisterTenant("demo", demo)

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{Addr: *debugAddr, Handler: svc.DebugHandler()}
		go func() {
			log.Printf("observability listening on %s (/metrics, /debug/pprof)", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}
	go func() {
		<-ctx.Done()
		// Give in-flight detect requests a bounded window to finish; their
		// contexts descend from the server's base context and are cancelled
		// when the window closes.
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if debugSrv != nil {
			_ = debugSrv.Shutdown(shCtx)
		}
	}()

	log.Printf("tasted listening on %s (demo tenant: %d tables)", *addr, len(ds.Test))
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("tasted: graceful shutdown complete")
}
