package taste

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/tensor"
)

// TestCacheGoldenParity is the caching-tier determinism pin: detection
// answers must be byte-identical (modulo duration_ms) whichever tier serves
// them. Against the TestGoldenDetect fixture (WikiTable 40/seed 7,
// repro-scale ADTD, 2 epochs) it checks three serving paths:
//
//  1. cold miss — first request, every tier empty, full compute;
//  2. warm latent hit — repeat request on a detector with the result tier
//     off: Phase 2 reuses cached latents, Phase 1 recomputes;
//  3. result-cache hit — repeat request with the result tier on: Phase 1's
//     probability rows come straight from the content-hash memo.
//
// All three must match each other byte for byte and agree with the golden
// file's admitted types — a cache that changes answers is a correctness
// bug, however fast.
func TestCacheGoldenParity(t *testing.T) {
	old := tensor.DefaultParallelism()
	tensor.SetParallelism(1)
	defer tensor.SetParallelism(old)

	ds := WikiTableDataset(40, 7)
	model, err := NewModel(ds, ReproScale(), 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	if err := Train(model, ds, cfg); err != nil {
		t.Fatal(err)
	}
	dbServer := NewServer(NoLatency)
	dbServer.LoadTables("golden", ds.Test)

	newNode := func(resultBytes int64) (*core.Detector, *httptest.Server) {
		opts := DefaultOptions()
		opts.ResultCacheBytes = resultBytes
		det, err := NewDetector(model, opts)
		if err != nil {
			t.Fatal(err)
		}
		svc := service.New(det)
		svc.RegisterTenant("golden", dbServer)
		srv := httptest.NewServer(svc.Handler())
		t.Cleanup(srv.Close)
		return det, srv
	}

	detect := func(srv *httptest.Server) []byte {
		resp, err := http.Post(srv.URL+"/v1/detect", "application/json",
			bytes.NewReader([]byte(`{"database":"golden"}`)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		return data
	}
	canon := func(raw []byte) []byte {
		var m map[string]interface{}
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("unmarshal response: %v\n%s", err, raw)
		}
		delete(m, "duration_ms")
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Path 1 + 3: result tier on. First request is the cold reference,
	// second must be served (at least partly) from the result cache.
	detFull, full := newNode(16 << 20)
	cold := canon(detect(full))
	if hits := detFull.Results().Stats().Hits; hits != 0 {
		t.Fatalf("cold run recorded %d result hits", hits)
	}
	warmResult := canon(detect(full))
	if hits := detFull.Results().Stats().Hits; hits == 0 {
		t.Fatal("repeat request never hit the result cache")
	}
	if !bytes.Equal(cold, warmResult) {
		t.Fatalf("result-cache hit changed the response:\n cold: %s\n warm: %s", cold, warmResult)
	}

	// Path 2: result tier off — the repeat request exercises the latent
	// tier's zero-copy hit path in Phase 2.
	detLat, lat := newNode(0)
	coldLat := canon(detect(lat))
	latBase := detLat.Cache().Stats().Hits
	warmLatent := canon(detect(lat))
	if hits := detLat.Cache().Stats().Hits; hits <= latBase {
		t.Fatal("repeat request never hit the latent cache")
	}
	if !bytes.Equal(coldLat, warmLatent) {
		t.Fatalf("latent-cache hit changed the response:\n cold: %s\n warm: %s", coldLat, warmLatent)
	}
	if !bytes.Equal(cold, coldLat) {
		t.Fatalf("result-tier config changed a cold response:\n on:  %s\n off: %s", cold, coldLat)
	}

	// All three serving paths must agree with the checked-in golden types.
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	var want goldenReport
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	var resp service.DetectResponse
	if err := json.Unmarshal(warmResult, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Tables) != len(want.Tables) {
		t.Fatalf("tables = %d, golden has %d", len(resp.Tables), len(want.Tables))
	}
	for i, wt := range want.Tables {
		gt := resp.Tables[i]
		if gt.Table != wt.Table || len(gt.Columns) != len(wt.Columns) {
			t.Fatalf("table %d: %s/%d cols, golden %s/%d", i, gt.Table, len(gt.Columns), wt.Table, len(wt.Columns))
		}
		for j, wc := range wt.Columns {
			gc := gt.Columns[j]
			if gc.Column != wc.Column || gc.Phase != wc.Phase || gc.Degraded != wc.Degraded {
				t.Fatalf("%s.%s: phase=%d degraded=%v, golden phase=%d degraded=%v",
					wt.Table, wc.Column, gc.Phase, gc.Degraded, wc.Phase, wc.Degraded)
			}
			if len(gc.Types) != len(wc.Types) {
				t.Fatalf("%s.%s: types %v, golden %v", wt.Table, wc.Column, gc.Types, wc.Types)
			}
			for k := range wc.Types {
				if gc.Types[k] != wc.Types[k] {
					t.Fatalf("%s.%s: types %v, golden %v", wt.Table, wc.Column, gc.Types, wc.Types)
				}
			}
		}
	}
}
