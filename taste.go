// Package taste is the public API of the Taste reproduction: a practical
// two-phase deep-learning framework for semantic type detection in the
// cloud (Li et al., EDBT 2025).
//
// The package re-exports the building blocks from the internal packages and
// adds a few high-level helpers so that the common path — generate or load
// a corpus, train an ADTD model, stand up a simulated user database, and
// run end-to-end detection — takes a handful of lines:
//
//	ds := taste.WikiTableDataset(300, 1)
//	model, _ := taste.NewModel(ds, taste.ReproScale(), 1)
//	taste.Train(model, ds, taste.DefaultTrainConfig())
//	server := taste.NewServer(taste.PaperLatency(0.01))
//	server.LoadTables("tenant", ds.Test)
//	det, _ := taste.NewDetector(model, taste.DefaultOptions())
//	report, _ := det.DetectDatabase(ctx, server, "tenant", taste.PipelinedMode())
//
// Every detection entry point accepts a context.Context: a deadline on the
// context bounds the whole batch, and columns whose Phase-2 work the
// deadline (or a flaky database) cuts off degrade to Phase-1 answers marked
// Degraded instead of failing the request.
//
// See the examples/ directory for complete programs and DESIGN.md for the
// paper-to-package map.
package taste

import (
	"repro/internal/adtd"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/simdb"
)

// Core framework (internal/core).
type (
	// Detector is the two-phase detection service (§3).
	Detector = core.Detector
	// Options configures thresholds α/β, scan parameters m/n/l, the scan
	// strategy, histograms and caching.
	Options = core.Options
	// ExecMode selects sequential or pipelined batch execution (§5).
	ExecMode = core.ExecMode
	// Report aggregates a batch run: timing, scanned-column ratio, cache
	// statistics and per-column results.
	Report = core.Report
	// TableResult is one table's detection outcome.
	TableResult = core.TableResult
	// ColumnResult is one column's admitted types and provenance.
	ColumnResult = core.ColumnResult
)

// ADTD model (internal/adtd).
type (
	// Model is the Asymmetric Double-Tower Detection network (§4).
	Model = adtd.Model
	// ModelConfig carries the BERT-style sizing parameters (§2.3).
	ModelConfig = adtd.Config
	// TrainConfig controls fine-tuning.
	TrainConfig = adtd.TrainConfig
	// PretrainConfig controls masked-language-model pre-training (§4.2.1).
	PretrainConfig = adtd.PretrainConfig
	// TypeSpace is the ordered semantic type domain the model predicts.
	TypeSpace = adtd.TypeSpace
)

// Corpus generation (internal/corpus).
type (
	// Dataset is a generated table corpus with train/val/test splits.
	Dataset = corpus.Dataset
	// Table is one generated user table with ground-truth labels.
	Table = corpus.Table
	// Column is one labelled column.
	Column = corpus.Column
	// SemanticType describes a semantic type and how to generate values
	// and metadata for it.
	SemanticType = corpus.Type
	// Registry is the semantic type domain set S.
	Registry = corpus.Registry
	// Profile controls corpus shape (ambiguity, null columns, widths).
	Profile = corpus.Profile
)

// Simulated cloud database (internal/simdb).
type (
	// Server is the simulated remote user database host.
	Server = simdb.Server
	// Conn is a database connection.
	Conn = simdb.Conn
	// LatencyProfile models network and transfer costs.
	LatencyProfile = simdb.LatencyProfile
	// ScanOptions configures content scans.
	ScanOptions = simdb.ScanOptions
	// FaultProfile configures deterministic fault injection on a Server:
	// transient connect/query/scan failures, mid-scan drops, slow queries.
	FaultProfile = simdb.FaultProfile
)

// Metrics (internal/metrics).
type (
	// F1Accumulator scores multi-label predictions (micro P/R/F1).
	F1Accumulator = metrics.F1Accumulator
)

// NullType is the background label for columns without a semantic type.
const NullType = corpus.NullType

// Re-exported constructors and presets.
var (
	// NewDetector wraps a trained model with framework options.
	NewDetector = core.NewDetector
	// DefaultOptions is the paper's default configuration (α=0.1, β=0.9,
	// m=50, n=10, l=20).
	DefaultOptions = core.DefaultOptions
	// PipelinedMode returns Algorithm 1 execution with pool size 2.
	PipelinedMode = core.PipelinedMode
	// SequentialMode processes tables one by one.
	SequentialMode = core.SequentialMode

	// ReproScale is the CPU-trainable model preset used throughout.
	ReproScale = adtd.ReproScale
	// PaperScale records the paper's deployed model sizing.
	PaperScale = adtd.PaperScale
	// DefaultTrainConfig returns repro-scale training settings.
	DefaultTrainConfig = adtd.DefaultTrainConfig
	// DefaultPretrainConfig returns repro-scale MLM settings.
	DefaultPretrainConfig = adtd.DefaultPretrainConfig
	// Pretrain runs masked-language-model pre-training.
	Pretrain = adtd.Pretrain

	// DefaultRegistry returns the built-in 60-type semantic type domain.
	DefaultRegistry = corpus.DefaultRegistry
	// WikiTableProfile mimics the WikiTable dataset's shape.
	WikiTableProfile = corpus.WikiTableProfile
	// GitTablesProfile mimics GitTables-100K's shape.
	GitTablesProfile = corpus.GitTablesProfile
	// Generate builds a dataset from a registry and profile.
	Generate = corpus.Generate

	// NewServer creates a simulated user database server.
	NewServer = simdb.NewServer
	// PaperLatency scales the paper testbed's latency profile.
	PaperLatency = simdb.PaperLatency
	// NoLatency disables injected delays.
	NoLatency = simdb.NoLatency

	// IsTransient reports whether an error from a Server API is a
	// retryable transient fault.
	IsTransient = simdb.IsTransient

	// NewF1Accumulator creates a multi-label scorer.
	NewF1Accumulator = metrics.NewF1Accumulator

	// CalibrateThresholds sweeps (α, β) pairs on a validation database and
	// recommends the best F1 within a scanned-column budget (§6.7).
	CalibrateThresholds = core.CalibrateThresholds

	// WriteTables / ReadTables serialize corpora as JSONL.
	WriteTables = corpus.WriteJSONL
	ReadTables  = corpus.ReadJSONL
	// LoadDataset reads a corpus saved with Dataset.Save.
	LoadDataset = corpus.Load
)

// WikiTableDataset generates a WikiTable-profile corpus with the default
// registry: every column labelled, metadata moderately ambiguous.
func WikiTableDataset(tables int, seed int64) *Dataset {
	return corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(tables), seed)
}

// GitTablesDataset generates a GitTables-profile corpus with the default
// registry: CSV-style informative headers, ≈32 % type-less columns.
func GitTablesDataset(tables int, seed int64) *Dataset {
	return corpus.Generate(corpus.DefaultRegistry(), corpus.GitTablesProfile(tables), seed)
}

// NewModel builds an untrained ADTD model sized for the dataset: the
// vocabulary is learned from the training split and the type space covers
// the dataset's registry.
func NewModel(ds *Dataset, cfg ModelConfig, seed int64) (*Model, error) {
	tok := adtd.BuildVocabulary(ds.Train, ds.Registry.Names(), 4000)
	types := adtd.NewTypeSpace(ds.Registry.Names())
	return adtd.New(cfg, tok, types, seed)
}

// Train fine-tunes the model on the dataset's training split.
func Train(m *Model, ds *Dataset, cfg TrainConfig) error {
	_, err := adtd.FineTune(m, ds.Train, cfg)
	return err
}

// GroundTruth builds a "table.column" → labels map for scoring a Report
// against a dataset split.
func GroundTruth(tables []*Table) map[string][]string {
	out := make(map[string][]string)
	for _, t := range tables {
		for _, c := range t.Columns {
			out[t.Name+"."+c.Name] = c.Labels
		}
	}
	return out
}

// Score computes micro precision/recall/F1 of a report against ground
// truth produced by GroundTruth.
func Score(rep *Report, truth map[string][]string) *F1Accumulator {
	acc := metrics.NewF1Accumulator()
	for _, tr := range rep.Tables {
		for _, c := range tr.Columns {
			acc.Add(c.Admitted, truth[tr.Table+"."+c.Column])
		}
	}
	return acc
}
