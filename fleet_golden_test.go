package taste

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/tensor"
)

// TestFleetGoldenParity is the fleet-level determinism pin: routing
// detection through a coordinator over three replicas must not perturb
// results. Two claims are checked against the same fixture TestGoldenDetect
// uses (WikiTable 40/seed 7, repro-scale ADTD, 2 epochs, sequential):
//
//  1. A whole-database request answered through the coordinator is
//     byte-identical to the single-node service's answer (after zeroing
//     duration_ms, the one timing field).
//  2. Per-table requests — which spread across replicas at database/table
//     granularity — reassemble to exactly the golden file's per-column
//     types, phases, and degradation flags.
func TestFleetGoldenParity(t *testing.T) {
	old := tensor.DefaultParallelism()
	tensor.SetParallelism(1)
	defer tensor.SetParallelism(old)

	ds := WikiTableDataset(40, 7)
	model, err := NewModel(ds, ReproScale(), 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	if err := Train(model, ds, cfg); err != nil {
		t.Fatal(err)
	}
	dbServer := NewServer(NoLatency)
	dbServer.LoadTables("golden", ds.Test)

	// Every node — single-node reference and the three fleet replicas —
	// shares the trained weights but owns its detector and latent cache,
	// exactly like separate tasted processes restored from one checkpoint.
	newNode := func() *httptest.Server {
		det, err := NewDetector(model, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		svc := service.New(det)
		svc.RegisterTenant("golden", dbServer)
		srv := httptest.NewServer(svc.Handler())
		t.Cleanup(srv.Close)
		return srv
	}

	single := newNode()
	replicas := make(map[string]string, 3)
	for i := 0; i < 3; i++ {
		replicas[fmt.Sprintf("replica%02d", i)] = newNode().URL
	}
	coord := fleet.NewCoordinator(replicas, fleet.Config{
		Pool: fleet.PoolConfig{ProbeInterval: -1},
	})
	coord.Start()
	defer coord.Stop()
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()

	post := func(baseURL, body string) (int, []byte, string) {
		resp, err := http.Post(baseURL+"/v1/detect", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("detect: %v", err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, data, resp.Header.Get(fleet.ReplicaHeader)
	}

	// Claim 1: whole-database byte parity, modulo duration_ms.
	canon := func(raw []byte) []byte {
		var m map[string]interface{}
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("unmarshal response: %v\n%s", err, raw)
		}
		delete(m, "duration_ms")
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	status, direct, _ := post(single.URL, `{"database":"golden"}`)
	if status != http.StatusOK {
		t.Fatalf("single-node status %d: %s", status, direct)
	}
	status, routed, via := post(coordSrv.URL, `{"database":"golden"}`)
	if status != http.StatusOK {
		t.Fatalf("routed status %d: %s", status, routed)
	}
	if via == "" {
		t.Fatal("routed response missing replica header")
	}
	if !bytes.Equal(canon(direct), canon(routed)) {
		t.Fatalf("fleet-routed whole-db response differs from single node:\n direct: %s\n routed: %s", direct, routed)
	}

	// Claim 2: per-table fan-out reassembles the golden file exactly.
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	var want goldenReport
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	hit := make(map[string]bool)
	total, scanned := 0, 0
	for _, wt := range want.Tables {
		body := fmt.Sprintf(`{"database":"golden","tables":[%q]}`, wt.Table)
		status, data, replica := post(coordSrv.URL, body)
		if status != http.StatusOK {
			t.Fatalf("table %s: status %d: %s", wt.Table, status, data)
		}
		hit[replica] = true
		var resp service.DetectResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatalf("table %s: %v", wt.Table, err)
		}
		if resp.Degraded || len(resp.Tables) != 1 || resp.Tables[0].Table != wt.Table {
			t.Fatalf("table %s: unexpected response shape: %s", wt.Table, data)
		}
		got := resp.Tables[0]
		if len(got.Columns) != len(wt.Columns) {
			t.Fatalf("table %s: %d columns, golden has %d", wt.Table, len(got.Columns), len(wt.Columns))
		}
		for i, wc := range wt.Columns {
			gc := got.Columns[i]
			if gc.Column != wc.Column || gc.Phase != wc.Phase || gc.Degraded != wc.Degraded {
				t.Fatalf("table %s col %s: got phase=%d degraded=%v, golden %s phase=%d degraded=%v",
					wt.Table, gc.Column, gc.Phase, gc.Degraded, wc.Column, wc.Phase, wc.Degraded)
			}
			if fmt.Sprint(gc.Types) != fmt.Sprint(wc.Types) {
				t.Fatalf("table %s col %s: types %v, golden %v", wt.Table, gc.Column, gc.Types, wc.Types)
			}
		}
		total += resp.TotalColumns
		scanned += resp.ScannedColumns
	}
	if total != want.TotalColumns || scanned != want.ScannedColumns {
		t.Fatalf("column totals %d/%d scanned, golden %d/%d",
			total, scanned, want.TotalColumns, want.ScannedColumns)
	}
	if len(hit) < 2 {
		t.Fatalf("per-table requests all landed on one replica: %v", hit)
	}
}
