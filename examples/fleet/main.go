// Fleet: horizontal scale-out serving (DESIGN.md §12). Boots three tasted
// replicas behind the consistent-hash coordinator on loopback sockets,
// routes detection for several tenants, then kills a replica mid-run to
// show health-gated failover keeping the fleet answering — the cloud
// deployment story of §2.2 at demo scale.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/fleet"
)

func detect(baseURL, body string) (int, string, error) {
	resp, err := http.Post(baseURL+"/v1/detect", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var parsed struct {
		TotalColumns int  `json:"total_columns"`
		Degraded     bool `json:"degraded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		return resp.StatusCode, "", err
	}
	return resp.StatusCode, fmt.Sprintf("%d columns, degraded=%v, served by %s",
		parsed.TotalColumns, parsed.Degraded, resp.Header.Get(fleet.ReplicaHeader)), nil
}

func main() {
	fmt.Println("booting a 3-replica fleet (one model, per-replica detectors) …")
	h, err := fleet.StartLocal(fleet.HarnessConfig{
		Replicas: 3,
		Tables:   60,
		Tenants:  6,
		Seed:     7,
		Epochs:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	fmt.Printf("coordinator %s over %d replicas, %d tenants\n\n",
		h.CoordinatorURL, len(h.ReplicaURLs), len(h.Tenants))

	fmt.Println("routing one whole-database detection per tenant:")
	victim := ""
	for _, tenant := range h.Tenants {
		if len(h.TenantTables[tenant]) == 0 {
			continue
		}
		status, summary, err := detect(h.CoordinatorURL, fmt.Sprintf(`{"database":%q}`, tenant))
		if err != nil || status != http.StatusOK {
			log.Fatalf("tenant %s: status %d err %v", tenant, status, err)
		}
		fmt.Printf("  %-10s → %s\n", tenant, summary)
		if victim == "" {
			owner := h.Coordinator.Ring().Owner(tenant)
			victim = owner
		}
	}

	fmt.Printf("\nkilling %s and re-routing its tenants …\n", victim)
	h.StopReplica(victim)
	for _, tenant := range h.Tenants {
		if len(h.TenantTables[tenant]) == 0 || h.Coordinator.Ring().Owner(tenant) != victim {
			continue
		}
		status, summary, err := detect(h.CoordinatorURL, fmt.Sprintf(`{"database":%q}`, tenant))
		if err != nil || status != http.StatusOK {
			log.Fatalf("failover for %s: status %d err %v", tenant, status, err)
		}
		fmt.Printf("  %-10s → %s  (owner %s is down)\n", tenant, summary, victim)
	}

	// Give the prober a moment to eject the dead replica, then show the
	// fleet's view of itself.
	time.Sleep(500 * time.Millisecond)
	resp, err := http.Get(h.CoordinatorURL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats fleet.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfleet stats: routed=%d failovers=%d retries=%d\n",
		stats.Routing.Routed, stats.Routing.Failovers, stats.Routing.Retries)
	for _, r := range stats.Replicas {
		fmt.Printf("  %-10s healthy=%-5v ejections=%d\n", r.Name, r.Healthy, r.Ejections)
	}
}
