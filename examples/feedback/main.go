// Feedback: the paper's §8 future-work directions implemented — extend the
// semantic type domain with a tenant-defined type at runtime, and adapt the
// detector to user corrections with a lightweight online update, without
// retraining from scratch.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	taste "repro"
	"repro/internal/metafeat"
)

func main() {
	fmt.Println("generating corpus and training base model …")
	ds := taste.WikiTableDataset(100, 5)
	model, err := taste.NewModel(ds, taste.ReproScale(), 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := taste.DefaultTrainConfig()
	cfg.Epochs = 4
	cfg.PosWeight = 6
	cfg.Log = os.Stderr
	if err := taste.Train(model, ds, cfg); err != nil {
		log.Fatal(err)
	}
	det, err := taste.NewDetector(model, taste.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. Tenant-defined semantic type --------------------------------
	// A logistics tenant tracks parcels with a proprietary tracking code.
	custom := &taste.SemanticType{
		Name:        "parcel_tracking_code",
		Category:    "identifier",
		SQLType:     "VARCHAR",
		ColumnNames: []string{"tracking_code", "parcel_code", "trk"},
		Comments:    []string{"carrier tracking code"},
		Gen: func(r *rand.Rand) string {
			return fmt.Sprintf("PT%09d", r.Intn(1_000_000_000))
		},
	}
	if err := det.RegisterTypes(ds.Registry, []*taste.SemanticType{custom}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered tenant type %q — classifier now covers %d classes\n",
		custom.Name, model.Types.Len())

	// --- 2. User feedback ------------------------------------------------
	// Build the column the tenant complained about: named "trk", holding
	// tracking codes, currently unknown to the model.
	table := &metafeat.TableInfo{
		Name:     "shipments_export_1",
		RowCount: 5,
		Columns: []*metafeat.ColumnInfo{
			{Name: "trk", DataType: "VARCHAR", Values: []string{
				"PT000131755", "PT000902113", "PT000445220", "PT000778001", "PT000220404",
			}},
			{Name: "city", DataType: "VARCHAR", Values: []string{"london", "paris", "tokyo", "lima", "oslo"}},
		},
	}
	idx, _ := model.Types.Index(custom.Name)
	probBefore := probeColumn(model, table, 0, idx)

	fmt.Println("applying user feedback: column \"trk\" is parcel_tracking_code …")
	for i := 0; i < 5; i++ {
		if err := det.Feedback(table, 0, []string{custom.Name}); err != nil {
			log.Fatal(err)
		}
	}
	probAfter := probeColumn(model, table, 0, idx)
	fmt.Printf("P(parcel_tracking_code | column trk): %.4f → %.4f\n", probBefore, probAfter)
	fmt.Printf("feedback log holds %d correction(s)\n", len(det.FeedbackLog()))

	// The adapted detector now admits the custom type on similar columns.
	res := detectInfo(det, table)
	fmt.Printf("detection after feedback: trk → [%s]\n", strings.Join(res, ","))
}

// probeColumn returns the model's P1 probability of class idx for a column.
func probeColumn(model *taste.Model, table *metafeat.TableInfo, col, idx int) float64 {
	_, probs := model.PredictMeta(table, false)
	return probs[col][idx]
}

// detectInfo runs the detector over an in-memory table by loading it into a
// throwaway simulated database.
func detectInfo(det *taste.Detector, info *metafeat.TableInfo) []string {
	var cols []*taste.Column
	for _, c := range info.Columns {
		cols = append(cols, &taste.Column{Name: c.Name, SQLType: c.DataType, Values: c.Values})
	}
	tbl := &taste.Table{Name: info.Name, Columns: cols}
	server := taste.NewServer(taste.NoLatency)
	server.LoadTables("adhoc", []*taste.Table{tbl})
	conn, err := server.Connect(context.Background(), "adhoc")
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	res, err := det.DetectTable(context.Background(), conn, "adhoc", info.Name)
	if err != nil {
		log.Fatal(err)
	}
	return res.Columns[0].Admitted
}
