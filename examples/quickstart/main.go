// Quickstart: generate a small table corpus, train an ADTD model, stand up
// a simulated user database, and run two-phase semantic type detection on
// one table — the minimal end-to-end path through the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	taste "repro"
)

func main() {
	// 1. A corpus standing in for a cloud tenant's tables. The WikiTable
	// profile labels every column and makes ~45% of the metadata ambiguous.
	fmt.Println("generating corpus …")
	ds := taste.WikiTableDataset(120, 1)

	// 2. Train the Asymmetric Double-Tower Detection model. A few epochs on
	// a small corpus is enough for a demonstration; see cmd/tastebench for
	// the full-scale recipe.
	fmt.Println("training ADTD model (a minute or so on one core) …")
	model, err := taste.NewModel(ds, taste.ReproScale(), 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := taste.DefaultTrainConfig()
	cfg.Epochs = 10
	cfg.LR, cfg.FinalLR = 1.5e-3, 4e-4
	cfg.PosWeight = 6
	cfg.WeightDecay = 1e-4
	cfg.Log = os.Stderr
	if err := taste.Train(model, ds, cfg); err != nil {
		log.Fatal(err)
	}

	// 3. A simulated remote user database (RDS-for-MySQL stand-in) holding
	// the unseen test tables, with realistic network latency.
	server := taste.NewServer(taste.PaperLatency(1.0))
	server.LoadTables("tenant", ds.Test)

	// 4. The two-phase detector: Phase 1 reads only metadata; Phase 2 scans
	// content for columns whose P1 probabilities land in (α, β).
	det, err := taste.NewDetector(model, taste.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	conn, err := server.Connect(context.Background(), "tenant")
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	tables, err := conn.ListTables(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	truth := taste.GroundTruth(ds.Test)
	fmt.Printf("\ndetecting semantic types for table %q\n", tables[0])
	res, err := det.DetectTable(context.Background(), conn, "tenant", tables[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %-8s %-28s %s\n", "column", "phase", "admitted types", "ground truth")
	for _, c := range res.Columns {
		fmt.Printf("%-16s P%-7d %-28s %s\n",
			c.Column, c.Phase, strings.Join(c.Admitted, ","), strings.Join(truth[res.Table+"."+c.Column], ","))
	}
	fmt.Printf("\ncolumns scanned in Phase 2: %d of %d\n", res.ScannedColumns, len(res.Columns))
}
