// Pipelined: process a large batch of tables and compare sequential
// execution (how prior systems run) against the pipelined scheduler of §5,
// which overlaps one table's database I/O with another table's model
// inference. Also demonstrates the latent cache's contribution. (For the
// horizontal scale-out fleet — coordinator, hash ring, failover — see
// examples/fleet.)
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	taste "repro"
)

func main() {
	fmt.Println("generating a fleet of tenant tables …")
	ds := taste.WikiTableDataset(200, 3)

	fmt.Println("training ADTD model …")
	model, err := taste.NewModel(ds, taste.ReproScale(), 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := taste.DefaultTrainConfig()
	cfg.Epochs = 5
	cfg.LR, cfg.FinalLR = 1.5e-3, 5e-4
	cfg.PosWeight = 6
	cfg.Log = os.Stderr
	if err := taste.Train(model, ds, cfg); err != nil {
		log.Fatal(err)
	}

	// Batch = the test split plus the validation split, ~60 tables.
	batch := append(append([]*taste.Table{}, ds.Val...), ds.Test...)
	fmt.Printf("\nbatch: %d tables\n\n", len(batch))

	type run struct {
		name    string
		mode    taste.ExecMode
		caching bool
	}
	runs := []run{
		{"sequential, no cache", taste.SequentialMode, false},
		{"sequential, latent cache", taste.SequentialMode, true},
		{"pipelined (TP1=TP2=2), latent cache", taste.PipelinedMode(), true},
		{"pipelined (TP1=TP2=4), latent cache", taste.ExecMode{Pipelined: true, PrepWorkers: 4, InferWorkers: 4}, true},
	}
	fmt.Printf("%-38s %12s %10s %12s\n", "execution mode", "duration", "scanned", "cache hits")
	var baseline time.Duration
	for i, r := range runs {
		opts := taste.DefaultOptions()
		if !r.caching {
			opts.CacheBytes = 0
		}
		det, err := taste.NewDetector(model, opts)
		if err != nil {
			log.Fatal(err)
		}
		server := taste.NewServer(taste.PaperLatency(1.0))
		server.LoadTables("tenant", batch)
		rep, err := det.DetectDatabase(context.Background(), server, "tenant", r.mode)
		if err != nil {
			log.Fatal(err)
		}
		if len(rep.Errors) > 0 {
			log.Fatalf("batch errors: %v", rep.Errors)
		}
		if i == 0 {
			baseline = rep.Duration
		}
		fmt.Printf("%-38s %12v %9.1f%% %12d   (%.1f%% faster than first row)\n",
			r.name, rep.Duration.Round(time.Millisecond),
			100*rep.ScannedRatio(), rep.CacheHits,
			100*(1-float64(rep.Duration)/float64(baseline)))
	}
}
