// PII scan: the data-protection scenario from the paper's introduction. A
// cloud tenant wants Personally Identifiable Information located across
// their databases, but is sensitive about letting the detection service
// read column content. This example runs the same detector twice — strict
// privacy (Phase 2 disabled, metadata only) and default (Phase 2 allowed) —
// and compares what each finds and what each cost the user database.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"

	taste "repro"
)

// piiTypes are the sensitive semantic types the tenant cares about.
var piiTypes = map[string]bool{
	"email": true, "phone_number": true, "credit_card_number": true,
	"ssn": true, "passport_number": true, "iban": true, "full_name": true,
	"first_name": true, "last_name": true, "address": true,
}

func main() {
	fmt.Println("generating tenant databases …")
	ds := taste.GitTablesDataset(120, 7)

	fmt.Println("training ADTD model …")
	model, err := taste.NewModel(ds, taste.ReproScale(), 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := taste.DefaultTrainConfig()
	cfg.Epochs = 5
	cfg.LR, cfg.FinalLR = 1.5e-3, 5e-4
	cfg.PosWeight = 6
	cfg.Log = os.Stderr
	if err := taste.Train(model, ds, cfg); err != nil {
		log.Fatal(err)
	}

	for _, mode := range []struct {
		name    string
		options taste.Options
	}{
		{"strict privacy (metadata only, P2 disabled)", strictOptions()},
		{"default (P2 scans uncertain columns)", taste.DefaultOptions()},
	} {
		server := taste.NewServer(taste.PaperLatency(0.2))
		server.LoadTables("tenant", ds.Test)
		det, err := taste.NewDetector(model, mode.options)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := det.DetectDatabase(context.Background(), server, "tenant", taste.PipelinedMode())
		if err != nil {
			log.Fatal(err)
		}

		found := map[string]int{}
		for _, tr := range rep.Tables {
			for _, c := range tr.Columns {
				for _, typ := range c.Admitted {
					if piiTypes[typ] {
						found[typ]++
					}
				}
			}
		}
		snap := server.Accounting().Snapshot()
		fmt.Printf("\n== %s ==\n", mode.name)
		fmt.Printf("sensitive columns found by type:\n")
		var names []string
		for t := range found {
			names = append(names, t)
		}
		sort.Strings(names)
		for _, t := range names {
			fmt.Printf("  %-22s %d\n", t, found[t])
		}
		fmt.Printf("impact on the user database:\n")
		fmt.Printf("  columns scanned:   %d of %d (%.1f%%)\n", rep.ScannedColumns, rep.TotalColumns, 100*rep.ScannedRatio())
		fmt.Printf("  rows transferred:  %d (%d bytes)\n", snap.RowsScanned, snap.BytesRead)
		fmt.Printf("  queries issued:    %d over %d connection(s)\n", snap.Queries, snap.Connections)
		fmt.Printf("  end-to-end time:   %v\n", rep.Duration.Round(1e6))
	}
}

// strictOptions disables Phase 2 entirely by collapsing the uncertainty
// band (α = β), the configuration §3.2 recommends for tenants who disallow
// content examination.
func strictOptions() taste.Options {
	o := taste.DefaultOptions()
	o.Alpha, o.Beta = 0.5, 0.5
	return o
}
