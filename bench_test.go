// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6). Each benchmark runs the corresponding experiment through the shared
// suite and prints the paper-style report once.
//
// Model training is amortized: the suite trains each model on first use and
// caches checkpoints under ./artifacts, so the first full run pays the
// training cost and every later run (including re-running these benchmarks)
// loads checkpoints and measures only detection.
//
// Scale is controlled by the TASTE_BENCH environment variable:
//
//	TASTE_BENCH=full   full-scale configuration (default when ./artifacts
//	                   holds checkpoints)
//	TASTE_BENCH=quick  minutes-scale smoke configuration (default otherwise)
package taste_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/experiments"
)

var benchSuite struct {
	once  sync.Once
	suite *experiments.Suite
}

// suite returns the shared experiment suite, choosing full or quick scale.
func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchSuite.once.Do(func() {
		mode := os.Getenv("TASTE_BENCH")
		if mode == "" {
			if _, err := os.Stat("artifacts"); err == nil {
				mode = "full"
			} else {
				mode = "quick"
			}
		}
		cfg := experiments.QuickConfig()
		if mode == "full" {
			cfg = experiments.DefaultConfig()
			cfg.Repeats = 1 // testing.B supplies the repetition
		}
		if testing.Verbose() {
			cfg.Log = os.Stderr
		}
		benchSuite.suite = experiments.NewSuite(cfg)
	})
	return benchSuite.suite
}

// report prints an experiment report once (not per iteration).
var reported sync.Map

func report(name string, render func() fmt.Stringer) {
	if _, dup := reported.LoadOrStore(name, true); dup {
		return
	}
	fmt.Printf("\n%s\n", render())
}

// BenchmarkTable2DatasetSummary regenerates Table 2 (dataset summary).
func BenchmarkTable2DatasetSummary(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res := s.Table2()
		if len(res.Rows) != 8 {
			b.Fatalf("expected 8 summary rows, got %d", len(res.Rows))
		}
	}
	report("table2", func() fmt.Stringer { return s.Table2() })
}

// BenchmarkFig4ExecutionTime regenerates Figure 4 (end-to-end execution
// time of all approaches on both datasets).
func BenchmarkFig4ExecutionTime(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res := s.Fig4()
		if len(res.Runs) != 2 {
			b.Fatal("missing dataset runs")
		}
	}
	report("fig4", func() fmt.Stringer { return s.Fig4() })
}

// BenchmarkTable3F1 regenerates Table 3 (precision/recall/F1).
func BenchmarkTable3F1(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res := s.Table3()
		if len(res.Runs[experiments.Wiki]) == 0 {
			b.Fatal("no runs")
		}
	}
	report("table3", func() fmt.Stringer { return s.Table3() })
}

// BenchmarkTable4PrivacyF1 regenerates Table 4 (metadata-only F1 under
// strict privacy settings).
func BenchmarkTable4PrivacyF1(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res := s.Table4()
		if len(res.Runs[experiments.Wiki]) != 3 {
			b.Fatal("expected 3 privacy runs per dataset")
		}
	}
	report("table4", func() fmt.Stringer { return s.Table4() })
}

// BenchmarkFig5ScannedRatio regenerates Figure 5 (ratio of scanned columns).
func BenchmarkFig5ScannedRatio(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res := s.Fig5()
		for _, runs := range res.Runs {
			for _, r := range runs {
				if ratio := r.ScannedRatio(); ratio < 0 || ratio > 1 {
					b.Fatalf("scanned ratio %v out of range", ratio)
				}
			}
		}
	}
	report("fig5", func() fmt.Stringer { return s.Fig5() })
}

// BenchmarkFig6NullRatio regenerates Figure 6 (performance as the ratio of
// columns without any type grows, via retained type sets Sk).
func BenchmarkFig6NullRatio(b *testing.B) {
	s := suite(b)
	ks := []int{40, 20, 10}
	if os.Getenv("TASTE_BENCH") == "full" {
		ks = nil // full default sweep
	}
	for i := 0; i < b.N; i++ {
		res := s.Fig6(ks)
		if len(res.Points) == 0 {
			b.Fatal("no sweep points")
		}
	}
	report("fig6", func() fmt.Stringer { return s.Fig6(ks) })
}

// BenchmarkFig7AlphaBeta regenerates Figure 7 (α/β sensitivity).
func BenchmarkFig7AlphaBeta(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res := s.Fig7(nil)
		if len(res.Points) == 0 {
			b.Fatal("no sweep points")
		}
	}
	report("fig7", func() fmt.Stringer { return s.Fig7(nil) })
}

// BenchmarkFig8SplitThreshold regenerates Figure 8(a) (column split
// threshold l sweep).
func BenchmarkFig8SplitThreshold(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res := s.Fig8(nil, []int{10})
		if len(res.L) == 0 {
			b.Fatal("no sweep points")
		}
	}
	report("fig8a", func() fmt.Stringer {
		res := s.Fig8(nil, []int{10})
		return res
	})
}

// BenchmarkFig8CellValues regenerates Figure 8(b) (cell count n sweep).
func BenchmarkFig8CellValues(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res := s.Fig8([]int{20}, nil)
		if len(res.N) == 0 {
			b.Fatal("no sweep points")
		}
	}
	report("fig8b", func() fmt.Stringer {
		res := s.Fig8([]int{20}, nil)
		return res
	})
}

// BenchmarkAblationLatentCache measures the latent cache's effect on
// end-to-end time (DESIGN.md §4.1).
func BenchmarkAblationLatentCache(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		with := s.RunTaste(experiments.Wiki, experiments.DefaultTaste())
		v := experiments.DefaultTaste()
		v.Name, v.Cache = "Taste w/o caching", false
		without := s.RunTaste(experiments.Wiki, v)
		if with.Duration <= 0 || without.Duration <= 0 {
			b.Fatal("bad durations")
		}
	}
}

// BenchmarkAblationPipelining measures pipelined vs sequential execution
// (DESIGN.md §4.2).
func BenchmarkAblationPipelining(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		pipe := s.RunTaste(experiments.Wiki, experiments.DefaultTaste())
		v := experiments.DefaultTaste()
		v.Name, v.Pipelined = "Taste w/o pipelining", false
		seq := s.RunTaste(experiments.Wiki, v)
		if pipe.Duration <= 0 || seq.Duration <= 0 {
			b.Fatal("bad durations")
		}
	}
}

// BenchmarkAblationAutoWeightedLoss compares §4.4's automatic loss
// weighting against fixed weights (DESIGN.md §4.3); also covers the
// asymmetric-attention ablation (§4.4).
func BenchmarkAblationAutoWeightedLoss(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res := s.Ablations()
		if len(res.AutoWeightedLoss) != 2 || len(res.AsymmetricAttention) != 2 {
			b.Fatal("incomplete ablation result")
		}
	}
	report("ablations", func() fmt.Stringer { return s.Ablations() })
}
