# Build/test/bench entry points for the Taste reproduction.

GO ?= go

# Packages whose concurrency the race detector must vet: the tensor
# runtime's worker pool + arena, the sharded tiered cache with its
# singleflight groups, the pipelined scheduler, the fault-injecting simdb,
# the HTTP service with its cross-request micro-batcher, the lock-free
# metrics registry, the data-parallel training runtime with its gradient
# workers (plus the two model packages whose multi-worker training tests
# exercise it), the fleet coordinator with its health prober and admission
# queue, the shared retry core, and the deduplicated model registry whose
# page store backs concurrent publish/checkpoint traffic.
RACE_PKGS = ./internal/tensor/... ./internal/nn/... ./internal/train/... ./internal/adtd/... ./internal/sherlock/... ./internal/baselines/... ./internal/cache/... ./internal/pipeline/... ./internal/simdb/... ./internal/service/... ./internal/obs/... ./internal/fleet/... ./internal/retry/... ./internal/registry/...

.PHONY: build vet test race race-all fuzz ci bench bench-fleet bench-cache bench-pipeline bench-gate bench-smoke metrics-smoke fleet-smoke cache-smoke registry-smoke clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# fuzz gives the /v1/detect fuzzer a short budget beyond its seed corpus.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzHandleDetect -fuzztime=20s ./internal/service/

# metrics-smoke boots tasted with -debug-addr, fires a traced detect, and
# asserts /metrics and /debug/pprof serve what DESIGN.md §9 promises.
metrics-smoke:
	bash scripts/metrics_smoke.sh

# fleet-smoke boots two tasted replicas behind a tastefleet coordinator,
# routes a detect, scrapes the aggregated /metrics, then kills a replica
# and asserts failover (DESIGN.md §12).
fleet-smoke:
	bash scripts/fleet_smoke.sh

# cache-smoke boots tasted with both cache tiers on, repeats a detect, and
# asserts the warm response is byte-identical to the cold one while the
# warm-hit counters on /metrics move (DESIGN.md §14).
cache-smoke:
	bash scripts/cache_smoke.sh

# registry-smoke runs the train → publish → serve → feedback → republish →
# hot-swap loop against real binaries and asserts the fine-tuned publish
# dedups against the base version (DESIGN.md §15).
registry-smoke:
	bash scripts/registry_smoke.sh

# ci is the gate a pull request must pass: vet, build, the full test suite,
# the race detector over every concurrent package, and the serving smoke
# tests.
ci: vet test race metrics-smoke fleet-smoke cache-smoke registry-smoke

# race-all adds internal/core, whose fixture trains a model and needs a
# far longer deadline under the race detector's ~10x slowdown.
race-all:
	$(GO) test -race -timeout 45m $(RACE_PKGS) ./internal/core/...

# bench runs the compute-runtime benchmark set (BENCH_1.json: matmul
# kernels, attention forward, batched Phase-2 inference, end-to-end
# detection), the training-runtime set (BENCH_5.json: sharded Adam and
# one fine-tuning epoch, serial vs four gradient workers), the
# quantized-inference set (BENCH_6.json: int8 kernels back-to-back with
# their fp64 counterparts across the GOMAXPROCS matrix), the
# fleet-serving set (BENCH_7.json: seeded open-/closed-loop load against
# an in-process 3-replica fleet — latency quantiles, throughput, shed rate,
# per-replica distribution), the tiered-cache set (BENCH_8.json:
# cold vs warm detect p50/p99, result-cache speedup, byte parity, plus a
# Zipf-skewed fleet load run), and the pipeline set (BENCH_10.json:
# whole-database detection over 200 narrow tables, sequential vs
# work-stealing vs cross-table-batched, with byte parity enforced).
bench:
	scripts/bench.sh BENCH_1.json BENCH_5.json BENCH_6.json BENCH_7.json BENCH_8.json BENCH_10.json

# bench-fleet re-records only BENCH_7.json (the fleet suite trains a model,
# so it dominates a full bench run's wall-clock).
bench-fleet:
	FLEET_ONLY=1 scripts/bench.sh BENCH_1.json BENCH_5.json BENCH_6.json BENCH_7.json BENCH_8.json

# bench-cache re-records only BENCH_8.json: cold/warm latency quantiles for
# the latent and result tiers, the measured hit-path speedup, and the
# cache-friendly Zipf load-generator run.
bench-cache:
	CACHE_ONLY=1 scripts/bench.sh BENCH_1.json BENCH_5.json BENCH_6.json BENCH_7.json BENCH_8.json

# bench-pipeline re-records only BENCH_10.json: the work-stealing scheduler
# and cross-table batching suite over the many-small-tables corpus.
bench-pipeline:
	PIPELINE_ONLY=1 scripts/bench.sh BENCH_1.json BENCH_5.json BENCH_6.json BENCH_7.json BENCH_8.json BENCH_10.json

# bench-gate re-runs the pipeline suite and fails on a >15% p50 regression
# against the checked-in BENCH_10.json — but only when the baseline was
# recorded on the same platform/cpus/go version (latency comparisons are
# only honest back-to-back on one machine; elsewhere it skips). Byte parity
# and the ≥5× forward-reduction floor are enforced unconditionally by the
# benchmark itself.
bench-gate:
	sh scripts/bench_gate.sh BENCH_10.json

# bench-smoke compiles and runs every benchmark exactly once — no timing
# value, but it keeps the benchmark code from rotting between full runs.
# The second pass repeats one quantized pair so the int8 kernels are
# exercised even where the default run skips them.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
	$(GO) test -run='^$$' -bench='BenchmarkQuantAttentionCore128$$|BenchmarkLinearQuantInto128x64x192$$' -benchtime=1x ./internal/tensor/

clean:
	$(GO) clean ./...
	rm -f BENCH_1.json BENCH_5.json BENCH_6.json BENCH_7.json BENCH_8.json BENCH_10.json
