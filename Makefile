# Build/test/bench entry points for the Taste reproduction.

GO ?= go

# Packages whose concurrency the race detector must vet: the tensor
# runtime's worker pool + arena, the latent cache, the pipelined scheduler,
# and the HTTP service.
RACE_PKGS = ./internal/tensor/... ./internal/adtd/... ./internal/pipeline/... ./internal/service/...

.PHONY: build test race race-all bench clean

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# race-all adds internal/core, whose fixture trains a model and needs a
# far longer deadline under the race detector's ~10x slowdown.
race-all:
	$(GO) test -race -timeout 45m $(RACE_PKGS) ./internal/core/...

# bench runs the compute-runtime benchmark set and writes BENCH_1.json
# (ns/op and allocs/op for the matmul kernels, attention forward, batched
# Phase-2 inference, and end-to-end detection).
bench:
	scripts/bench.sh BENCH_1.json

clean:
	$(GO) clean ./...
	rm -f BENCH_1.json
