package taste

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/tensor"
)

// TestPipelineGoldenParity pins the work-stealing scheduler's determinism
// contract (DESIGN.md §16): a pipelined run — stage stealing, scan
// prefetch, and cross-table inference batching all enabled — must produce
// byte-identical results to the sequential baseline. Prefetched reads use
// the same scan options as synchronous ones, and the block-diagonal batch
// mask makes each chunk's output independent of its batch mates, so any
// divergence here is a bug, not noise.
func TestPipelineGoldenParity(t *testing.T) {
	// One kernel worker keeps floating-point reductions in a fixed order.
	old := tensor.DefaultParallelism()
	tensor.SetParallelism(1)
	defer tensor.SetParallelism(old)

	// Untrained model with a near-full uncertainty band: every column goes
	// through Phase 2, exercising prefetched scans and batched forwards on
	// every table.
	ds := WikiTableDataset(40, 7)
	opts := DefaultOptions()
	opts.Alpha, opts.Beta = 0.01, 0.99

	canon := func(mode ExecMode) string {
		t.Helper()
		model, err := NewModel(ds, ReproScale(), 7)
		if err != nil {
			t.Fatal(err)
		}
		det, err := NewDetector(model, opts)
		if err != nil {
			t.Fatal(err)
		}
		server := NewServer(NoLatency)
		server.LoadTables("golden", ds.Test)
		rep, err := det.DetectDatabase(context.Background(), server, "golden", mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Errors) != 0 {
			t.Fatalf("errors: %v", rep.Errors)
		}
		if rep.ScannedColumns != rep.TotalColumns {
			t.Fatalf("parity run must push every column through Phase 2: scanned %d of %d",
				rep.ScannedColumns, rep.TotalColumns)
		}
		buf, err := json.Marshal(rep.Tables)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}

	want := canon(SequentialMode)
	for _, tc := range []struct {
		name string
		mode ExecMode
	}{
		{"stealing", ExecMode{Pipelined: true, Workers: 8, BatchChunks: -1}},
		{"stealing_batched", ExecMode{Pipelined: true, Workers: 8, BatchChunks: 8}},
		{"legacy_pools", PipelinedMode()},
	} {
		if got := canon(tc.mode); got != want {
			t.Fatalf("%s: results differ from sequential mode", tc.name)
		}
	}
}
