#!/usr/bin/env bash
# Observability smoke test: boot tasted with the debug listener, fire one
# traced detect request, then verify that /metrics serves the core series
# and that the pprof index answers. Run from the repo root (CI does).
set -euo pipefail

ADDR=127.0.0.1:18080
DEBUG=127.0.0.1:18081
LOG=$(mktemp)
BIN=$(mktemp -d)/tasted

cleanup() {
    [[ -n "${PID:-}" ]] && kill "$PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -f "$LOG"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/tasted
# A tiny self-trained model: the smoke test cares about the serving path,
# not accuracy.
"$BIN" -train -epochs 1 -tables 24 -addr "$ADDR" -debug-addr "$DEBUG" >"$LOG" 2>&1 &
PID=$!

# Training happens before the listener comes up; poll generously.
for i in $(seq 1 120); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "tasted exited before becoming healthy:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 1
done
curl -sf "http://$ADDR/healthz" >/dev/null || { echo "tasted never became healthy" >&2; cat "$LOG" >&2; exit 1; }

# One traced detection so every stage records something.
DETECT=$(curl -sf -XPOST "http://$ADDR/v1/detect" \
    -d '{"database":"demo","pipelined":true,"trace":true}')
echo "$DETECT" | grep -q '"trace"' || { echo "detect response carries no trace: $DETECT" >&2; exit 1; }

METRICS=$(curl -sf "http://$DEBUG/metrics")
for series in \
    'taste_stage_seconds_bucket{stage="s1"' \
    'taste_stage_seconds_bucket{stage="s4"' \
    'taste_pipeline_queue_wait_seconds' \
    'taste_detect_requests_total{outcome="ok"}' \
    'taste_detect_request_seconds_count' \
    'taste_batcher_submissions_total' \
    'taste_adtd_forward_seconds' \
    'taste_simdb_op_seconds' \
    'taste_cache_hits' \
    'taste_detector_tables_total'
do
    if ! grep -qF "$series" <<<"$METRICS"; then
        echo "missing series on /metrics: $series" >&2
        echo "$METRICS" | head -40 >&2
        exit 1
    fi
done

# /metrics must also be mounted on the tenant-facing mux. Capture before
# grepping: piping curl straight into grep -q trips pipefail when grep
# exits at the first match and curl takes EPIPE on the rest.
SVC_METRICS=$(curl -sf "http://$ADDR/metrics") || SVC_METRICS=""
grep -qF 'taste_detect_requests_total' <<<"$SVC_METRICS" \
    || { echo "/metrics missing on the service listener" >&2; exit 1; }

# pprof must answer on the debug listener only.
PPROF=$(curl -sf "http://$DEBUG/debug/pprof/") || PPROF=""
grep -qi 'profile' <<<"$PPROF" \
    || { echo "pprof index not served" >&2; exit 1; }

echo "metrics smoke: OK"
