#!/usr/bin/env bash
# Fleet smoke test: boot two tasted replicas and a tastefleet coordinator,
# route a detect through the ring, scrape the aggregated fleet /metrics,
# then kill one replica and verify failover keeps the fleet answering.
# Run from the repo root (CI does).
set -euo pipefail

R0=127.0.0.1:18085
R1=127.0.0.1:18086
FLEET=127.0.0.1:18087
LOG0=$(mktemp)
LOG1=$(mktemp)
LOGF=$(mktemp)
BINDIR=$(mktemp -d)

cleanup() {
    for pid in "${PID0:-}" "${PID1:-}" "${PIDF:-}"; do
        [[ -n "$pid" ]] && kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -f "$LOG0" "$LOG1" "$LOGF"
}
trap cleanup EXIT

go build -o "$BINDIR/tasted" ./cmd/tasted
go build -o "$BINDIR/tastefleet" ./cmd/tastefleet

# Two tiny self-trained replicas; the smoke test cares about routing, not
# accuracy. Identical -tables/-seed so both host the same "demo" tenant.
"$BINDIR/tasted" -train -epochs 1 -tables 24 -addr "$R0" >"$LOG0" 2>&1 &
PID0=$!
"$BINDIR/tasted" -train -epochs 1 -tables 24 -addr "$R1" >"$LOG1" 2>&1 &
PID1=$!

wait_healthy() { # wait_healthy <addr> <pid> <log> <name>
    for i in $(seq 1 120); do
        if curl -sf "http://$1/healthz" >/dev/null 2>&1; then
            return 0
        fi
        if ! kill -0 "$2" 2>/dev/null; then
            echo "$4 exited before becoming healthy:" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 1
    done
    echo "$4 never became healthy" >&2
    cat "$3" >&2
    exit 1
}
wait_healthy "$R0" "$PID0" "$LOG0" "replica r0"
wait_healthy "$R1" "$PID1" "$LOG1" "replica r1"

# Fast probe/eject settings so the failover half of the test is quick.
"$BINDIR/tastefleet" -addr "$FLEET" -replicas "r0=$R0,r1=$R1" \
    -probe-interval 200ms -eject-after 2 -readmit-after 2 >"$LOGF" 2>&1 &
PIDF=$!
wait_healthy "$FLEET" "$PIDF" "$LOGF" "tastefleet"

# A routed detect must succeed and name the serving replica.
DETECT=$(curl -sfi -XPOST "http://$FLEET/v1/detect" -d '{"database":"demo"}')
grep -q '^X-Taste-Replica: r[01]' <<<"$DETECT" \
    || { echo "detect response names no replica:" >&2; head -20 <<<"$DETECT" >&2; exit 1; }
grep -q '"total_columns"' <<<"$DETECT" \
    || { echo "detect response carries no results:" >&2; head -20 <<<"$DETECT" >&2; exit 1; }

# The fleet /metrics must serve both the coordinator's own routing series
# and the aggregation of the replicas' detector series.
METRICS=$(curl -sf "http://$FLEET/metrics")
for series in \
    'taste_fleet_requests_total{outcome="routed"}' \
    'taste_fleet_replicas_healthy 2' \
    'taste_detect_requests_total'
do
    if ! grep -qF "$series" <<<"$METRICS"; then
        echo "missing series on fleet /metrics: $series" >&2
        echo "$METRICS" | head -40 >&2
        exit 1
    fi
done

# Kill one replica: detects must keep answering via failover, and the
# prober must mark the dead replica unhealthy.
kill "$PID0"
PID0=
for i in $(seq 1 40); do
    STATS=$(curl -sf "http://$FLEET/v1/stats")
    if grep -q '"name":"r0","url":[^,]*,"healthy":false' <<<"$STATS"; then
        break
    fi
    sleep 0.25
done
grep -q '"name":"r0","url":[^,]*,"healthy":false' <<<"$STATS" \
    || { echo "dead replica never ejected: $STATS" >&2; exit 1; }

FAILOVER=$(curl -sfi -XPOST "http://$FLEET/v1/detect" -d '{"database":"demo"}')
grep -q '^X-Taste-Replica: r1' <<<"$FAILOVER" \
    || { echo "failover detect not served by surviving replica:" >&2; head -20 <<<"$FAILOVER" >&2; exit 1; }

echo "fleet smoke: OK"
