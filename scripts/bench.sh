#!/bin/sh
# Runs the benchmark suites and emits JSON summaries (ns/op, B/op,
# allocs/op per benchmark). Stdlib tooling only.
#
#   scripts/bench.sh [COMPUTE_OUT] [TRAIN_OUT]
#
# $1 (default BENCH_1.json) receives the compute-runtime set: matmul
# kernels, attention forward, batched Phase-2 inference, end-to-end
# detection. $2 (default BENCH_5.json) receives the training-runtime set:
# the sharded Adam step and one fine-tuning epoch, each serial (par1)
# versus four-way parallel (par4).
#
# The header records GOMAXPROCS, the CPU count, the go version and the git
# SHA, because the numbers are meaningless without them: BENCH_1's par4
# shards running no faster than par1 looked like a kernel regression but was
# simply a single-CPU container (GOMAXPROCS=1), where extra shards only add
# scheduling overhead. The same plateau applies to BENCH_5: with
# GOMAXPROCS=1 the four gradient workers of FineTuneEpoch/par4 time-slice
# one core, so par4 ≈ par1 there measures the trainer's coordination
# overhead, not a missing speedup. parallelRows caps shard count at
# GOMAXPROCS, and the header makes the machine shape part of the record.
set -eu

COMPUTE_OUT="${1:-BENCH_1.json}"
TRAIN_OUT="${2:-BENCH_5.json}"
cd "$(dirname "$0")/.."

NCPU="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"
MAXPROCS="${GOMAXPROCS:-$NCPU}"
GITSHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

run() { # run <package> <benchmark regex> [benchtime]
    pkg="$1"; pat="$2"; bt="${3:-1s}"
    echo "bench: $pkg -bench $pat" >&2
    go test -run '^$' -bench "$pat" -benchmem -benchtime "$bt" "$pkg" >>"$TMP" 2>&1 || {
        echo "bench: FAILED in $pkg" >&2
        tail -5 "$TMP" >&2
        exit 1
    }
}

emit() { # emit <outfile>: summarize $TMP as JSON, then reset it
    awk -v host="$(go env GOOS)/$(go env GOARCH)" \
        -v goversion="$(go env GOVERSION)" \
        -v maxprocs="$MAXPROCS" -v ncpu="$NCPU" -v sha="$GITSHA" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    line = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
    if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    results[n++] = line
}
END {
    printf "{\n  \"platform\": \"%s\",\n", host
    printf "  \"go_version\": \"%s\",\n", goversion
    printf "  \"gomaxprocs\": %s,\n", maxprocs
    printf "  \"cpus\": %s,\n", ncpu
    printf "  \"git_sha\": \"%s\",\n", sha
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", results[i], (i < n-1 ? "," : "")
    printf "  ]\n}\n"
}' "$TMP" >"$1"
    echo "bench: wrote $1 ($(grep -c '"name"' "$1") entries)" >&2
    : >"$TMP"
}

# Compute-runtime set → $COMPUTE_OUT.
run ./internal/tensor 'BenchmarkMatMul$|BenchmarkMatMul64$|BenchmarkMatMulNTScores$|BenchmarkTrainStepRelease' 1s
run ./internal/nn 'BenchmarkSelfAttention128$|BenchmarkTransformerBlock$' 1s
run ./internal/adtd 'BenchmarkP2InferenceBatched$|BenchmarkP2InferenceCachedLatents$' 1s
run ./internal/pipeline 'BenchmarkSequentialExecution$|BenchmarkPipelinedExecution$' 1s
run ./internal/core 'BenchmarkDetectDatabase' 3x
emit "$COMPUTE_OUT"

# Training-runtime set → $TRAIN_OUT.
run ./internal/tensor 'BenchmarkAdamStep$' 1s
run ./internal/adtd 'BenchmarkFineTuneEpoch$' 2x
emit "$TRAIN_OUT"
