#!/bin/sh
# Runs the benchmark suites and emits JSON summaries (ns/op, B/op,
# allocs/op per benchmark). Stdlib tooling only.
#
#   scripts/bench.sh [COMPUTE_OUT] [TRAIN_OUT] [QUANT_OUT] [FLEET_OUT]
#
# $1 (default BENCH_1.json) receives the compute-runtime set: matmul
# kernels, attention forward, batched Phase-2 inference, end-to-end
# detection. $2 (default BENCH_5.json) receives the training-runtime set:
# the sharded Adam step and one fine-tuning epoch, each serial (par1)
# versus four-way parallel (par4). $3 (default BENCH_6.json) receives the
# quantized-inference set: each int8 kernel timed back-to-back with its
# fp64 counterpart in the same process, so the speedup ratio is
# same-machine by construction.
#
# Parallel-sensitive suites run across a GOMAXPROCS matrix (1/2/4, values
# above the CPU count skipped and recorded in the header), and every
# benchmark entry is tagged with the gomaxprocs it ran under. A parN-vs-par1
# ratio is emitted as a "parallel_speedups" entry ONLY when cpus > 1 and the
# run's gomaxprocs > 1; on a single-CPU machine the workers time-slice one
# core, so the ratio measures coordination overhead, not speedup, and the
# summary says so instead ("parallel_speedups_suppressed"). That rule exists
# because BENCH_1's par4 shards running no faster than par1 once looked like
# a kernel regression but was simply a 1-CPU container.
#
# $4 (default BENCH_7.json) receives the fleet-serving set: the seeded load
# generator (open- and closed-loop) driving an in-process 3-replica fleet
# through the coordinator, reporting p50/p95/p99 latency, throughput, shed
# rate, and the per-replica hit distribution — plus a deliberately
# admission-capped run so the recorded shed rate is non-zero. Set
# FLEET_ONLY=1 to run just this suite (it trains a model, so it dominates
# a full run's wall-clock).
#
# $5 (default BENCH_8.json) receives the tiered-cache set: tastebench
# -benchcache measures cold vs warm single-table detect latency on one
# trained model (warm answers byte-compared against cold), reporting the
# result-cache speedup at p50, plus one Zipf-skewed closed-loop fleet run
# whose hot keys concentrate on a few route keys — the workload where the
# per-replica caches earn their budget. Set CACHE_ONLY=1 to run just this
# suite.
#
# $6 (default BENCH_10.json) receives the pipeline set: tastebench
# -benchpipeline measures whole-database detection over 200 narrow
# 3-column tables (every column forced through Phase 2) in three modes —
# sequential, work-stealing, and work-stealing with cross-table inference
# batching — at every matrix point, reporting p50/p95, Phase-2 forward
# counts, prefetch hit/waste, and steal counts, with every mode's results
# byte-compared against sequential. Set PIPELINE_ONLY=1 to run just this
# suite; scripts/bench_gate.sh regression-gates against its output.
set -eu

COMPUTE_OUT="${1:-BENCH_1.json}"
TRAIN_OUT="${2:-BENCH_5.json}"
QUANT_OUT="${3:-BENCH_6.json}"
FLEET_OUT="${4:-BENCH_7.json}"
CACHE_OUT="${5:-BENCH_8.json}"
PIPE_OUT="${6:-BENCH_10.json}"
cd "$(dirname "$0")/.."

NCPU="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"
GITSHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

# GOMAXPROCS matrix: 1/2/4, dropping values the machine cannot provide.
MATRIX=""
SKIPPED=""
for gp in 1 2 4; do
    if [ "$gp" -le "$NCPU" ]; then
        MATRIX="$MATRIX $gp"
    else
        SKIPPED="$SKIPPED $gp"
    fi
done
MATRIX="${MATRIX# }"
SKIPPED="${SKIPPED# }"
# Highest matrix value: the "ambient" setting for non-parallel suites.
TOPGP="${MATRIX##* }"

echo "bench: cpus=$NCPU gomaxprocs matrix=[$MATRIX] skipped=[$SKIPPED]" >&2

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

run() { # run <gomaxprocs> <package> <benchmark regex> [benchtime]
    gp="$1"; pkg="$2"; pat="$3"; bt="${4:-1s}"
    echo "bench: GOMAXPROCS=$gp $pkg -bench $pat" >&2
    echo "@gomaxprocs $gp" >>"$TMP"
    GOMAXPROCS="$gp" go test -run '^$' -bench "$pat" -benchmem -benchtime "$bt" "$pkg" >>"$TMP" 2>&1 || {
        echo "bench: FAILED in $pkg" >&2
        tail -5 "$TMP" >&2
        exit 1
    }
}

emit() { # emit <outfile>: summarize $TMP as JSON, then reset it
    awk -v host="$(go env GOOS)/$(go env GOARCH)" \
        -v goversion="$(go env GOVERSION)" \
        -v matrix="$MATRIX" -v skipped="$SKIPPED" \
        -v ncpu="$NCPU" -v sha="$GITSHA" '
BEGIN { n = 0; gp = 0 }
/^@gomaxprocs / { gp = $2; next }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    line = sprintf("    {\"name\": \"%s\", \"gomaxprocs\": %d, \"ns_per_op\": %s", name, gp, ns)
    if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    results[n] = line
    names[n] = name; gps[n] = gp
    nsv[name "|" gp] = ns
    n++
}
function jsonlist(s,  parts, k, out, i) {
    k = split(s, parts, " ")
    out = "["
    for (i = 1; i <= k; i++) out = out (i > 1 ? ", " : "") parts[i]
    return out "]"
}
END {
    printf "{\n  \"platform\": \"%s\",\n", host
    printf "  \"go_version\": \"%s\",\n", goversion
    printf "  \"cpus\": %s,\n", ncpu
    printf "  \"gomaxprocs_matrix\": %s,\n", jsonlist(matrix)
    printf "  \"gomaxprocs_skipped\": %s,\n", jsonlist(skipped)
    if (skipped != "")
        printf "  \"matrix_note\": \"gomaxprocs values [%s] exceed the %s available CPU(s) and were skipped\",\n", skipped, ncpu
    printf "  \"git_sha\": \"%s\",\n", sha
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", results[i], (i < n-1 ? "," : "")
    printf "  ]"
    # parN-vs-par1 ratios: a "speedup" label is only honest when more than
    # one CPU existed AND the run granted more than one P; otherwise the
    # workers time-sliced a single core and the ratio is coordination
    # overhead, so the label is refused and the reason recorded instead.
    m = 0; sawpar = 0
    for (i = 0; i < n; i++) {
        name = names[i]
        if (match(name, /\/par[0-9]+$/)) {
            w = substr(name, RSTART + 4, RLENGTH - 4) + 0
            if (w <= 1) continue
            sawpar = 1
            if (ncpu <= 1 || gps[i] <= 1) continue
            base = substr(name, 1, RSTART - 1) "/par1"
            key = base "|" gps[i]
            if (!(key in nsv)) continue
            sp[m] = sprintf("    {\"name\": \"%s\", \"workers\": %d, \"gomaxprocs\": %d, \"speedup_vs_par1\": %.2f}",
                            name, w, gps[i], nsv[key] / nsv[name "|" gps[i]])
            m++
        }
    }
    if (m > 0) {
        printf ",\n  \"parallel_speedups\": [\n"
        for (i = 0; i < m; i++) printf "%s%s\n", sp[i], (i < m-1 ? "," : "")
        printf "  ]"
    } else if (sawpar) {
        printf ",\n  \"parallel_speedups_suppressed\": \"cpus == %s: parN workers time-slice the available core(s); a parN/par1 ratio here measures coordination overhead, not parallel speedup\"", ncpu
    }
    printf "\n}\n"
}' "$TMP" >"$1"
    echo "bench: wrote $1 ($(grep -c '"name"' "$1") entries)" >&2
    : >"$TMP"
}

if [ "${FLEET_ONLY:-0}" != "1" ] && [ "${CACHE_ONLY:-0}" != "1" ] && [ "${PIPELINE_ONLY:-0}" != "1" ]; then

# Compute-runtime set → $COMPUTE_OUT (ambient GOMAXPROCS = top of matrix).
run "$TOPGP" ./internal/tensor 'BenchmarkMatMul$|BenchmarkMatMul64$|BenchmarkMatMulNTScores$|BenchmarkTrainStepRelease' 1s
run "$TOPGP" ./internal/nn 'BenchmarkSelfAttention128$|BenchmarkTransformerBlock$' 1s
run "$TOPGP" ./internal/adtd 'BenchmarkP2InferenceBatched$|BenchmarkP2InferenceCachedLatents$' 1s
run "$TOPGP" ./internal/pipeline 'BenchmarkSequentialExecution$|BenchmarkPipelinedExecution$' 1s
run "$TOPGP" ./internal/core 'BenchmarkDetectDatabase' 3x
emit "$COMPUTE_OUT"

# Training-runtime set → $TRAIN_OUT: the par1/par4 pairs run at every
# matrix point so parallel claims are tied to a recorded machine shape.
for gp in $MATRIX; do
    run "$gp" ./internal/tensor 'BenchmarkAdamStep$' 1s
    run "$gp" ./internal/adtd 'BenchmarkFineTuneEpoch$' 2x
done
emit "$TRAIN_OUT"

# Quantized-inference set → $QUANT_OUT: every fp64/int8 pair runs in one
# process invocation, back-to-back, at each matrix point.
for gp in $MATRIX; do
    run "$gp" ./internal/tensor 'BenchmarkFusedAttentionCore128$|BenchmarkQuantAttentionCore128$|BenchmarkLinearInto128x64x192$|BenchmarkLinearQuantInto128x64x192$' 1s
    run "$gp" ./internal/nn 'BenchmarkSelfAttention128$|BenchmarkSelfAttention128Quant$' 1s
    run "$gp" ./internal/adtd 'BenchmarkP2InferenceBatched$|BenchmarkP2InferenceBatchedQuant$' 1s
done
emit "$QUANT_OUT"

fi # FLEET_ONLY / CACHE_ONLY / PIPELINE_ONLY

if [ "${CACHE_ONLY:-0}" != "1" ] && [ "${PIPELINE_ONLY:-0}" != "1" ]; then

# Fleet-serving set → $FLEET_OUT. Each tastebench -loadgen invocation boots
# an in-process 3-replica fleet behind the coordinator, drives it with a
# seeded workload (the request sequence is a pure function of the seed),
# and prints one JSON record; this assembles them under the standard
# header. Three shapes per matrix point: open-loop (Poisson arrivals —
# shedding shows up honestly), closed-loop (saturating workers), and a
# capacity-capped closed-loop run that provokes 429s so the shed-rate path
# stays exercised end to end.
TBENCH="$(mktemp -d)/tastebench"
go build -o "$TBENCH" ./cmd/tastebench
fleet_run() { # fleet_run <gomaxprocs> <extra flags...>
    gp="$1"; shift
    echo "bench: GOMAXPROCS=$gp tastebench -loadgen $*" >&2
    GOMAXPROCS="$gp" "$TBENCH" -loadgen -fleet-replicas 3 -fleet-tables 40 \
        -fleet-tenants 8 -loadgen-seed 7 "$@" >>"$TMP" || {
        echo "bench: fleet loadgen FAILED" >&2
        exit 1
    }
}
for gp in $MATRIX; do
    fleet_run "$gp" -loadgen-mode open -rate 40 -requests 120
    fleet_run "$gp" -loadgen-mode closed -concurrency 8 -requests 120
    fleet_run "$gp" -loadgen-mode closed -concurrency 12 -requests 120 -max-inflight 1 -queue-depth 0
done
rm -f "$TBENCH"
{
    printf '{\n  "platform": "%s/%s",\n' "$(go env GOOS)" "$(go env GOARCH)"
    printf '  "go_version": "%s",\n' "$(go env GOVERSION)"
    printf '  "cpus": %s,\n' "$NCPU"
    printf '  "gomaxprocs_matrix": [%s],\n' "$(echo "$MATRIX" | tr ' ' ',')"
    printf '  "gomaxprocs_skipped": [%s],\n' "$(echo "$SKIPPED" | tr ' ' ',')"
    if [ -n "$SKIPPED" ]; then
        printf '  "matrix_note": "gomaxprocs values [%s] exceed the %s available CPU(s) and were skipped",\n' "$SKIPPED" "$NCPU"
    fi
    printf '  "git_sha": "%s",\n' "$GITSHA"
    printf '  "load_runs": [\n'
    awk '{ lines[NR] = $0 } END { for (i = 1; i <= NR; i++) printf "    %s%s\n", lines[i], (i < NR ? "," : "") }' "$TMP"
    printf '  ]\n}\n'
} >"$FLEET_OUT"
echo "bench: wrote $FLEET_OUT ($(grep -c '"name"' "$FLEET_OUT") entries)" >&2
: >"$TMP"

fi # CACHE_ONLY / PIPELINE_ONLY

if [ "${FLEET_ONLY:-0}" != "1" ] && [ "${PIPELINE_ONLY:-0}" != "1" ]; then

# Tiered-cache set → $CACHE_OUT. tastebench -benchcache trains one model
# and measures the three cache temperatures (cold, warm latent, warm
# result) over single-table detects, failing the run outright on any warm
# response that differs from its cold counterpart. The Zipf load run then
# exercises the same tiers through the full coordinator path with a
# realistically skewed key distribution. Runs at the top of the matrix
# only: the quantity under test is the hit-path speedup ratio, which is
# machine-shape invariant (both sides of the ratio share the GOMAXPROCS).
TBENCH="$(mktemp -d)/tastebench"
go build -o "$TBENCH" ./cmd/tastebench
echo "bench: GOMAXPROCS=$TOPGP tastebench -benchcache" >&2
GOMAXPROCS="$TOPGP" "$TBENCH" -benchcache -fleet-tables 40 -loadgen-seed 7 \
    -requests 120 >>"$TMP" || {
    echo "bench: benchcache FAILED" >&2
    exit 1
}
echo "bench: GOMAXPROCS=$TOPGP tastebench -loadgen -loadgen-dist zipf" >&2
GOMAXPROCS="$TOPGP" "$TBENCH" -loadgen -fleet-replicas 3 -fleet-tables 40 \
    -fleet-tenants 8 -loadgen-seed 7 -loadgen-mode closed -concurrency 8 \
    -requests 120 -loadgen-dist zipf -zipf-s 1.2 >>"$TMP" || {
    echo "bench: zipf loadgen FAILED" >&2
    exit 1
}
rm -f "$TBENCH"
{
    printf '{\n  "platform": "%s/%s",\n' "$(go env GOOS)" "$(go env GOARCH)"
    printf '  "go_version": "%s",\n' "$(go env GOVERSION)"
    printf '  "cpus": %s,\n' "$NCPU"
    printf '  "gomaxprocs": %s,\n' "$TOPGP"
    printf '  "git_sha": "%s",\n' "$GITSHA"
    printf '  "cache_runs": [\n'
    awk '{ lines[NR] = $0 } END { for (i = 1; i <= NR; i++) printf "    %s%s\n", lines[i], (i < NR ? "," : "") }' "$TMP"
    printf '  ]\n}\n'
} >"$CACHE_OUT"
echo "bench: wrote $CACHE_OUT ($(grep -c '"name"' "$CACHE_OUT") entries)" >&2
: >"$TMP"

fi # FLEET_ONLY / PIPELINE_ONLY

if [ "${FLEET_ONLY:-0}" != "1" ] && [ "${CACHE_ONLY:-0}" != "1" ]; then

# Pipeline set → $PIPE_OUT. tastebench -benchpipeline runs the same
# 200-table × 3-column database through sequential, work-stealing, and
# work-stealing+batched modes with an untrained tiny model (α=0.01/β=0.99
# forces every column through Phase 2); each invocation byte-compares every
# mode's results against sequential and fails unless the batched mode cuts
# Phase-2 forwards ≥5×. The full matrix runs so p50 claims are tied to a
# recorded machine shape.
TBENCH="$(mktemp -d)/tastebench"
go build -o "$TBENCH" ./cmd/tastebench
for gp in $MATRIX; do
    echo "bench: GOMAXPROCS=$gp tastebench -benchpipeline" >&2
    GOMAXPROCS="$gp" "$TBENCH" -benchpipeline -pipeline-tables 200 \
        -repeats 3 -loadgen-seed 7 >>"$TMP" || {
        echo "bench: benchpipeline FAILED" >&2
        exit 1
    }
done
rm -f "$TBENCH"
{
    printf '{\n  "platform": "%s/%s",\n' "$(go env GOOS)" "$(go env GOARCH)"
    printf '  "go_version": "%s",\n' "$(go env GOVERSION)"
    printf '  "cpus": %s,\n' "$NCPU"
    printf '  "gomaxprocs_matrix": [%s],\n' "$(echo "$MATRIX" | tr ' ' ',')"
    printf '  "gomaxprocs_skipped": [%s],\n' "$(echo "$SKIPPED" | tr ' ' ',')"
    if [ -n "$SKIPPED" ]; then
        printf '  "matrix_note": "gomaxprocs values [%s] exceed the %s available CPU(s) and were skipped",\n' "$SKIPPED" "$NCPU"
    fi
    printf '  "git_sha": "%s",\n' "$GITSHA"
    printf '  "pipeline_runs": [\n'
    awk '{ lines[NR] = $0 } END { for (i = 1; i <= NR; i++) printf "    %s%s\n", lines[i], (i < NR ? "," : "") }' "$TMP"
    printf '  ]\n}\n'
} >"$PIPE_OUT"
echo "bench: wrote $PIPE_OUT ($(grep -c '"name"' "$PIPE_OUT") entries)" >&2
: >"$TMP"

fi # FLEET_ONLY / CACHE_ONLY
