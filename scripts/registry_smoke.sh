#!/usr/bin/env bash
# Model-registry smoke test: the full train → publish → serve → adapt →
# republish → hot-swap loop against real binaries (DESIGN.md §15).
#
#  1. tastetrain -publish stores the trained checkpoint in a journaled
#     registry as taste@1.
#  2. tasted -registry boots serving taste@1 straight from the registry.
#  3. Online feedback adapts the serving weights; the serving version must
#     drop to 0 (the weights drifted off the published version).
#  4. POST /v1/models/publish stores the adapted weights as taste@2, and the
#     publish must dedup against taste@1: fewer new pages than total pages,
#     stored bytes < logical bytes, dedup ratio > 1.
#  5. Hot-swaps between the two versions run under concurrent detect load:
#     every response must be a 200 labeled with a version in {1,2}.
#
# Run from the repo root (CI does).
set -euo pipefail

ADDR=127.0.0.1:18100
TMP=$(mktemp -d)
REG="$TMP/registry"
LOG="$TMP/tasted.log"
TRAIN="$TMP/tastetrain"
SERVE="$TMP/tasted"

cleanup() {
    [[ -n "${PID:-}" ]] && kill "$PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

# jq-free JSON field extraction: first occurrence of a numeric field
# (empty when the field is absent, e.g. omitempty zeros).
jnum() { grep -o "\"$1\":[0-9.]*" | head -1 | cut -d: -f2 || true; }

go build -o "$TRAIN" ./cmd/tastetrain
go build -o "$SERVE" ./cmd/tasted

# 1. Train a tiny model and publish it as taste@1.
"$TRAIN" -model taste -tables 24 -seed 1 -epochs 1 -o "$TMP/taste.ckpt" -publish "$REG"
[[ -f "$REG/pages.log" && -f "$REG/manifests.log" ]] \
    || { echo "registry journal files missing in $REG" >&2; ls -la "$REG" >&2; exit 1; }

# 2. Serve straight from the registry (corpus knobs must match training).
"$SERVE" -registry "$REG" -tables 24 -seed 1 -addr "$ADDR" >"$LOG" 2>&1 &
PID=$!
for i in $(seq 1 120); do
    curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "tasted exited before becoming healthy:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 1
done
curl -sf "http://$ADDR/healthz" >/dev/null || { echo "tasted never became healthy" >&2; cat "$LOG" >&2; exit 1; }

MODELS=$(curl -sf "http://$ADDR/v1/models")
grep -qF '"taste":[1]' <<<"$MODELS" || { echo "registry listing missing taste@1: $MODELS" >&2; exit 1; }

DETECT=$(curl -sf -XPOST "http://$ADDR/v1/detect" -d '{"database":"demo"}')
V=$(jnum model_version <<<"$DETECT")
[[ "$V" == 1 ]] || { echo "detect served model_version=$V, want 1" >&2; exit 1; }

# 3. Feedback drifts the serving weights off version 1.
TABLE=$(grep -o '"table":"[^"]*"' <<<"$DETECT" | head -1 | cut -d'"' -f4)
COLUMN=$(grep -o '"column":"[^"]*"' <<<"$DETECT" | head -1 | cut -d'"' -f4)
curl -sf -XPOST "http://$ADDR/v1/feedback" \
    -d "{\"database\":\"demo\",\"table\":\"$TABLE\",\"column\":\"$COLUMN\",\"labels\":[\"email\"]}" >/dev/null
STATS=$(curl -sf "http://$ADDR/v1/stats")
SV=$(grep -o '"model":{[^}]*' <<<"$STATS" | jnum version)
[[ "${SV:-0}" == "" || "${SV:-0}" == 0 ]] \
    || { echo "serving version after feedback = $SV, want 0 (drifted)" >&2; exit 1; }

# 4. Publish the adapted weights: must dedup against version 1.
PUB=$(curl -sf -XPOST "http://$ADDR/v1/models/publish" -d '{}')
PAGES=$(jnum pages <<<"$PUB")
NEW=$(jnum new_pages <<<"$PUB")
[[ "$(jnum version <<<"$PUB")" == 2 ]] || { echo "republish version != 2: $PUB" >&2; exit 1; }
[[ "$NEW" -lt "$PAGES" ]] || { echo "no dedup: $NEW new of $PAGES pages: $PUB" >&2; exit 1; }

MODELS=$(curl -sf "http://$ADDR/v1/models")
LOGICAL=$(jnum logical_bytes <<<"$MODELS")
STORED=$(jnum stored_bytes <<<"$MODELS")
SAVED=$(jnum saved_bytes <<<"$MODELS")
[[ "$STORED" -lt "$LOGICAL" && "$SAVED" -gt 0 ]] \
    || { echo "two variants did not dedup: stored=$STORED logical=$LOGICAL saved=$SAVED" >&2; exit 1; }

# 5. Hot-swap between the versions under concurrent detect load.
LOADLOG="$TMP/load.log"
( for i in $(seq 1 20); do
      curl -s -o /dev/null -w '%{http_code} ' -XPOST "http://$ADDR/v1/detect" -d '{"database":"demo"}'
  done > "$LOADLOG" ) &
LOADPID=$!
for v in 1 2; do
    SWAP=$(curl -sf -XPOST "http://$ADDR/v1/models/swap" -d "{\"version\":$v}")
    [[ "$(jnum version <<<"$SWAP")" == "$v" ]] || { echo "swap to $v failed: $SWAP" >&2; exit 1; }
done
wait "$LOADPID"
CODES=$(cat "$LOADLOG")
[[ "$CODES" =~ ^(200\ )+$ ]] || { echo "detects under swap load returned: $CODES" >&2; exit 1; }

STATS=$(curl -sf "http://$ADDR/v1/stats")
MODELBLOCK=$(grep -o '"model":{[^}]*' <<<"$STATS")
[[ "$(jnum version <<<"$MODELBLOCK")" == 2 ]] || { echo "final serving version != 2: $MODELBLOCK" >&2; exit 1; }
[[ "$(jnum swaps <<<"$MODELBLOCK")" == 2 ]] || { echo "swap count != 2: $MODELBLOCK" >&2; exit 1; }
DETECT=$(curl -sf -XPOST "http://$ADDR/v1/detect" -d '{"database":"demo"}')
[[ "$(jnum model_version <<<"$DETECT")" == 2 ]] || { echo "post-swap detect not on version 2" >&2; exit 1; }

echo "registry smoke: OK (pages=$PAGES new_pages=$NEW saved_bytes=$SAVED)"
