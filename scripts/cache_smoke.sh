#!/usr/bin/env bash
# Tiered-cache smoke test: boot tasted with the result cache on, run the
# same detect twice, and assert (a) the second response is byte-identical
# to the first modulo the duration stamp, (b) /metrics reports warm cache
# hits > 0, and (c) /v1/stats exposes the cache block. Run from the repo
# root (CI does).
set -euo pipefail

ADDR=127.0.0.1:18090
DEBUG=127.0.0.1:18091
LOG=$(mktemp)
BIN=$(mktemp -d)/tasted

cleanup() {
    [[ -n "${PID:-}" ]] && kill "$PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -f "$LOG"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/tasted
# Tiny self-trained model; the smoke test cares about the caching path,
# not accuracy. Both cache tiers explicitly on.
"$BIN" -train -epochs 1 -tables 24 -addr "$ADDR" -debug-addr "$DEBUG" \
    -cache-bytes $((64 * 1024 * 1024)) -result-cache $((16 * 1024 * 1024)) >"$LOG" 2>&1 &
PID=$!

# Training happens before the listener comes up; poll generously.
for i in $(seq 1 120); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "tasted exited before becoming healthy:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 1
done
curl -sf "http://$ADDR/healthz" >/dev/null || { echo "tasted never became healthy" >&2; cat "$LOG" >&2; exit 1; }

REQ='{"database":"demo","pipelined":true}'
canon() { sed 's/"duration_ms":[0-9]*//'; }

COLD=$(curl -sf -XPOST "http://$ADDR/v1/detect" -d "$REQ" | canon)
WARM=$(curl -sf -XPOST "http://$ADDR/v1/detect" -d "$REQ" | canon)
if [[ "$COLD" != "$WARM" ]]; then
    echo "warm response differs from cold response" >&2
    diff <(echo "$COLD") <(echo "$WARM") | head -20 >&2
    exit 1
fi

METRICS=$(curl -sf "http://$DEBUG/metrics")
hits() { # hits <tier>: sum of the tier's hit counter on /metrics
    grep -F "taste_cache_hits_total{tier=\"$1\"}" <<<"$METRICS" | awk '{s+=$2} END {print s+0}'
}
RESULT_HITS=$(hits result)
LATENT_HITS=$(hits latent)
if [[ "$RESULT_HITS" -le 0 && "$LATENT_HITS" -le 0 ]]; then
    echo "repeated detect produced no warm cache hits (latent=$LATENT_HITS result=$RESULT_HITS)" >&2
    grep taste_cache <<<"$METRICS" >&2 || true
    exit 1
fi

# Occupancy gauges must be present and the stats block populated.
grep -qF 'taste_cache_bytes{tier="latent"}' <<<"$METRICS" \
    || { echo "missing taste_cache_bytes gauge" >&2; exit 1; }
STATS=$(curl -sf "http://$ADDR/v1/stats")
for key in '"latent"' '"result"' '"singleflight"'; do
    grep -qF "$key" <<<"$STATS" || { echo "/v1/stats cache block missing $key: $STATS" >&2; exit 1; }
done

echo "cache smoke: OK (latent_hits=$LATENT_HITS result_hits=$RESULT_HITS)"
