#!/bin/sh
# Regression gate for the pipeline benchmark: re-runs tastebench
# -benchpipeline and compares each mode's p50 against the checked-in
# BENCH_10.json, failing on a >15% regression. Stdlib tooling only.
#
#   scripts/bench_gate.sh [BASELINE]    (default BENCH_10.json)
#
# Latency comparisons are only honest back-to-back on the same machine, so
# the gate first checks that the baseline's platform, CPU count, and Go
# version match the current host; on any mismatch it prints why and exits 0
# (skip, not pass) — a laptop must not "fail" a gate recorded in CI. The
# comparison is per (mode, gomaxprocs) pair; matrix points the baseline
# never recorded are ignored. The benchpipeline run itself still enforces
# the shape-invariant acceptance floors (byte parity with sequential mode,
# ≥5× Phase-2 forward reduction), so a skipped latency gate does not skip
# correctness.
set -eu

BASELINE="${1:-BENCH_10.json}"
THRESHOLD_PCT=15
cd "$(dirname "$0")/.."

if [ ! -f "$BASELINE" ]; then
    echo "bench_gate: no baseline $BASELINE (record one with: make bench-pipeline)" >&2
    exit 1
fi

NCPU="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"
PLATFORM="$(go env GOOS)/$(go env GOARCH)"
GOVER="$(go env GOVERSION)"

base_platform="$(sed -n 's/^  "platform": "\([^"]*\)",$/\1/p' "$BASELINE" | head -1)"
base_gover="$(sed -n 's/^  "go_version": "\([^"]*\)",$/\1/p' "$BASELINE" | head -1)"
base_cpus="$(sed -n 's/^  "cpus": \([0-9]*\),$/\1/p' "$BASELINE" | head -1)"

if [ "$base_platform" != "$PLATFORM" ] || [ "$base_cpus" != "$NCPU" ] || [ "$base_gover" != "$GOVER" ]; then
    echo "bench_gate: baseline is $base_platform/${base_cpus}cpu/$base_gover, host is $PLATFORM/${NCPU}cpu/$GOVER" >&2
    echo "bench_gate: not a back-to-back same-machine comparison; skipping the latency gate" >&2
    exit 0
fi

# GOMAXPROCS matrix mirroring bench.sh, so fresh entries line up with the
# baseline's (mode, gomaxprocs) keys.
MATRIX=""
for gp in 1 2 4; do
    [ "$gp" -le "$NCPU" ] && MATRIX="$MATRIX $gp"
done

TMP="$(mktemp)"
trap 'rm -f "$TMP" "$TMP.base" "$TMP.fresh"' EXIT
TBENCH="$(mktemp -d)/tastebench"
go build -o "$TBENCH" ./cmd/tastebench
for gp in $MATRIX; do
    echo "bench_gate: GOMAXPROCS=$gp tastebench -benchpipeline" >&2
    GOMAXPROCS="$gp" "$TBENCH" -benchpipeline -pipeline-tables 200 \
        -repeats 3 -loadgen-seed 7 >>"$TMP" || {
        echo "bench_gate: benchpipeline FAILED" >&2
        exit 1
    }
done
rm -f "$TBENCH"

# extract <file>: one "name gomaxprocs p50_ms" row per benchmark record.
extract() {
    sed -n 's/.*"name":"\([^"]*\)".*"gomaxprocs":\([0-9]*\).*"p50_ms":\([0-9.eE+-]*\).*/\1 \2 \3/p' "$1"
}

extract "$BASELINE" >"$TMP.base"
extract "$TMP" >"$TMP.fresh"

status=0
awk -v pct="$THRESHOLD_PCT" '
NR == FNR { base[$1 "|" $2] = $3; next }
{
    key = $1 "|" $2
    if (!(key in base)) next
    old = base[key]; new = $3
    delta = (old > 0) ? 100 * (new - old) / old : 0
    verdict = (delta > pct) ? "FAIL" : "ok"
    printf "bench_gate: %-28s gomaxprocs=%s p50 %.1fms -> %.1fms (%+.1f%%) %s\n", $1, $2, old, new, delta, verdict
    if (delta > pct) bad++
    compared++
}
END {
    if (compared == 0) { print "bench_gate: no comparable (mode, gomaxprocs) pairs between baseline and fresh run"; exit 1 }
    if (bad > 0) { printf "bench_gate: %d of %d entries regressed more than %s%% at p50\n", bad, compared, pct; exit 1 }
    printf "bench_gate: all %d entries within %s%% of baseline\n", compared, pct
}' "$TMP.base" "$TMP.fresh" || status=$?
exit $status
