package taste

import (
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under artifacts/")

// goldenColumn is the checked-in per-column record.
type goldenColumn struct {
	Column    string    `json:"column"`
	Types     []string  `json:"types"`
	Phase     int       `json:"phase"`
	Uncertain bool      `json:"uncertain"`
	Degraded  bool      `json:"degraded"`
	Probs     []float64 `json:"probs"`
}

type goldenTable struct {
	Table   string         `json:"table"`
	Columns []goldenColumn `json:"columns"`
}

type goldenReport struct {
	TotalColumns    int           `json:"total_columns"`
	ScannedColumns  int           `json:"scanned_columns"`
	DegradedColumns int           `json:"degraded_columns"`
	Tables          []goldenTable `json:"tables"`
}

const goldenPath = "artifacts/golden_detect.json"

// TestGoldenDetect is the end-to-end determinism pin: a fixed-seed corpus,
// a tiny ADTD trained for two epochs, and a sequential detection run must
// produce byte-identical admitted types and probabilities (to 1e-6) across
// machines and commits. Regenerate with:
//
//	go test -run TestGoldenDetect -update .
//
// A diff here means something changed numerical behaviour — intentionally
// (re-pin) or not (bug).
func TestGoldenDetect(t *testing.T) {
	// One kernel worker keeps every floating-point reduction in a fixed
	// order, independent of GOMAXPROCS on the host.
	old := tensor.DefaultParallelism()
	tensor.SetParallelism(1)
	defer tensor.SetParallelism(old)

	ds := WikiTableDataset(40, 7)
	model, err := NewModel(ds, ReproScale(), 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	if err := Train(model, ds, cfg); err != nil {
		t.Fatal(err)
	}
	server := NewServer(NoLatency)
	server.LoadTables("golden", ds.Test)
	det, err := NewDetector(model, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := det.DetectDatabase(context.Background(), server, "golden", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("errors: %v", rep.Errors)
	}

	got := goldenReport{
		TotalColumns:    rep.TotalColumns,
		ScannedColumns:  rep.ScannedColumns,
		DegradedColumns: rep.DegradedColumns,
	}
	for _, tr := range rep.Tables {
		gt := goldenTable{Table: tr.Table}
		for _, c := range tr.Columns {
			types := c.Admitted
			if types == nil {
				types = []string{}
			}
			gt.Columns = append(gt.Columns, goldenColumn{
				Column: c.Column, Types: types, Phase: c.Phase,
				Uncertain: c.Uncertain, Degraded: c.Degraded, Probs: c.Probs,
			})
		}
		got.Tables = append(got.Tables, gt)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s (%d tables, %d columns)", goldenPath, len(got.Tables), got.TotalColumns)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	var want goldenReport
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	if got.TotalColumns != want.TotalColumns || got.ScannedColumns != want.ScannedColumns || got.DegradedColumns != want.DegradedColumns {
		t.Fatalf("headline counts drifted: got %d/%d/%d, want %d/%d/%d",
			got.TotalColumns, got.ScannedColumns, got.DegradedColumns,
			want.TotalColumns, want.ScannedColumns, want.DegradedColumns)
	}
	if len(got.Tables) != len(want.Tables) {
		t.Fatalf("tables = %d, want %d", len(got.Tables), len(want.Tables))
	}
	const tol = 1e-6
	for i, wt := range want.Tables {
		gt := got.Tables[i]
		if gt.Table != wt.Table {
			t.Fatalf("table %d: %q, want %q", i, gt.Table, wt.Table)
		}
		if len(gt.Columns) != len(wt.Columns) {
			t.Fatalf("table %s: columns %d, want %d", wt.Table, len(gt.Columns), len(wt.Columns))
		}
		for j, wc := range wt.Columns {
			gc := gt.Columns[j]
			if gc.Column != wc.Column || gc.Phase != wc.Phase || gc.Uncertain != wc.Uncertain || gc.Degraded != wc.Degraded {
				t.Fatalf("%s.%s: got {phase:%d uncertain:%v degraded:%v}, want {phase:%d uncertain:%v degraded:%v}",
					wt.Table, wc.Column, gc.Phase, gc.Uncertain, gc.Degraded, wc.Phase, wc.Uncertain, wc.Degraded)
			}
			if len(gc.Types) != len(wc.Types) {
				t.Fatalf("%s.%s: types %v, want %v", wt.Table, wc.Column, gc.Types, wc.Types)
			}
			for k := range wc.Types {
				if gc.Types[k] != wc.Types[k] {
					t.Fatalf("%s.%s: types %v, want %v", wt.Table, wc.Column, gc.Types, wc.Types)
				}
			}
			if len(gc.Probs) != len(wc.Probs) {
				t.Fatalf("%s.%s: probs length %d, want %d", wt.Table, wc.Column, len(gc.Probs), len(wc.Probs))
			}
			for k := range wc.Probs {
				if math.Abs(gc.Probs[k]-wc.Probs[k]) > tol {
					t.Fatalf("%s.%s: prob[%d] = %v, want %v (Δ > %g)", wt.Table, wc.Column, k, gc.Probs[k], wc.Probs[k], tol)
				}
			}
		}
	}
}
