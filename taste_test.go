package taste_test

import (
	"context"
	"testing"

	taste "repro"
)

func TestDatasetHelpers(t *testing.T) {
	wiki := taste.WikiTableDataset(50, 1)
	if len(wiki.Train) != 40 || len(wiki.Test) != 5 {
		t.Fatalf("wiki splits %d/%d", len(wiki.Train), len(wiki.Test))
	}
	git := taste.GitTablesDataset(50, 1)
	stats := git.Stats()[0]
	if stats.PctNoType < 20 {
		t.Fatalf("git null ratio %.1f%%, want ≈32%%", stats.PctNoType)
	}
}

func TestNewModelAndDetectorWiring(t *testing.T) {
	ds := taste.WikiTableDataset(30, 2)
	m, err := taste.NewModel(ds, taste.ReproScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumParams() == 0 {
		t.Fatal("model has no parameters")
	}
	det, err := taste.NewDetector(m, taste.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	server := taste.NewServer(taste.NoLatency)
	server.LoadTables("db", ds.Test)
	rep, err := det.DetectDatabase(context.Background(), server, "db", taste.SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalColumns == 0 {
		t.Fatal("no columns detected")
	}
	truth := taste.GroundTruth(ds.Test)
	acc := taste.Score(rep, truth)
	if f1 := acc.F1(); f1 < 0 || f1 > 1 {
		t.Fatalf("F1 = %v", f1)
	}
}

func TestGroundTruthKeys(t *testing.T) {
	ds := taste.WikiTableDataset(10, 3)
	truth := taste.GroundTruth(ds.Test)
	want := 0
	for _, tb := range ds.Test {
		want += len(tb.Columns)
	}
	if len(truth) != want {
		t.Fatalf("truth has %d keys, want %d", len(truth), want)
	}
}

func TestPresetsAreValid(t *testing.T) {
	if err := taste.ReproScale().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := taste.PaperScale().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := taste.DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	if !taste.PipelinedMode().Pipelined {
		t.Fatal("PipelinedMode must enable pipelining")
	}
}
