package metrics_test

import (
	"fmt"

	"repro/internal/metrics"
)

func ExampleF1Accumulator() {
	acc := metrics.NewF1Accumulator()
	acc.Add([]string{"email"}, []string{"email"})                      // true positive
	acc.Add([]string{"city"}, []string{"country"})                     // fp + fn
	acc.Add(nil, nil)                                                  // type-less column, correct
	acc.Add([]string{"phone_number"}, []string{"phone_number", "ssn"}) // tp + fn
	fmt.Printf("P=%.3f R=%.3f F1=%.3f\n", acc.Precision(), acc.Recall(), acc.F1())
	// Output: P=0.667 R=0.500 F1=0.571
}
