package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestPerfectPrediction(t *testing.T) {
	a := NewF1Accumulator()
	a.Add([]string{"x", "y"}, []string{"y", "x"})
	if a.Precision() != 1 || a.Recall() != 1 || a.F1() != 1 {
		t.Fatalf("P/R/F1 = %v/%v/%v", a.Precision(), a.Recall(), a.F1())
	}
}

func TestEmptyBothSidesIsNeutral(t *testing.T) {
	a := NewF1Accumulator()
	a.Add(nil, nil) // column without type, correctly left unlabelled
	tp, fp, fn := a.Counts()
	if tp != 0 || fp != 0 || fn != 0 {
		t.Fatal("empty/empty must contribute nothing")
	}
	if a.F1() != 1 {
		t.Fatalf("vacuous F1 = %v, want 1", a.F1())
	}
}

func TestFalsePositiveAndNegative(t *testing.T) {
	a := NewF1Accumulator()
	a.Add([]string{"x"}, []string{"y"})
	tp, fp, fn := a.Counts()
	if tp != 0 || fp != 1 || fn != 1 {
		t.Fatalf("counts = %d/%d/%d", tp, fp, fn)
	}
	if a.F1() != 0 {
		t.Fatalf("F1 = %v", a.F1())
	}
}

func TestMicroAveraging(t *testing.T) {
	a := NewF1Accumulator()
	a.Add([]string{"x"}, []string{"x"})      // tp
	a.Add([]string{"x"}, nil)                // fp
	a.Add(nil, []string{"x"})                // fn
	a.Add([]string{"y", "x"}, []string{"x"}) // tp + fp
	// tp=2, fp=2, fn=1
	if p := a.Precision(); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("precision = %v", p)
	}
	if r := a.Recall(); math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v", r)
	}
	want := 2 * 0.5 * (2.0 / 3) / (0.5 + 2.0/3)
	if f := a.F1(); math.Abs(f-want) > 1e-12 {
		t.Fatalf("F1 = %v, want %v", f, want)
	}
}

func TestDuplicateLabelsCountOnce(t *testing.T) {
	a := NewF1Accumulator()
	a.Add([]string{"x", "x"}, []string{"x", "x"})
	tp, fp, fn := a.Counts()
	if tp != 1 || fp != 0 || fn != 0 {
		t.Fatalf("counts = %d/%d/%d", tp, fp, fn)
	}
}

func TestPerTypeBreakdown(t *testing.T) {
	a := NewF1Accumulator()
	a.Add([]string{"common"}, []string{"common"})
	a.Add([]string{"common"}, []string{"common"})
	a.Add([]string{"rare"}, []string{"other"})
	per := a.PerType()
	if len(per) != 3 {
		t.Fatalf("per-type entries = %d", len(per))
	}
	if per[0].Type != "common" || per[0].F1 != 1 {
		t.Fatalf("first entry = %+v (sorted by support)", per[0])
	}
	for _, r := range per {
		if r.Type == "rare" && (r.FP != 1 || r.Precision != 0) {
			t.Fatalf("rare = %+v", r)
		}
	}
}

func TestConcurrentAdds(t *testing.T) {
	a := NewF1Accumulator()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				a.Add([]string{"x"}, []string{"x"})
			}
		}()
	}
	wg.Wait()
	tp, _, _ := a.Counts()
	if tp != 1600 {
		t.Fatalf("tp = %d, want 1600", tp)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != "50.0%" {
		t.Fatalf("Ratio = %s", Ratio(1, 2))
	}
	if Ratio(5, 0) != "0.0%" {
		t.Fatalf("Ratio(_,0) = %s", Ratio(5, 0))
	}
}

// Property: F1 is always within [0,1] and symmetric counts behave sanely.
func TestF1BoundsProperty(t *testing.T) {
	f := func(preds, truths []string) bool {
		a := NewF1Accumulator()
		a.Add(preds, truths)
		f1 := a.F1()
		return f1 >= 0 && f1 <= 1 && !math.IsNaN(f1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
