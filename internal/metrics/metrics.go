// Package metrics implements the evaluation metrics of §6.2: micro-averaged
// precision/recall/F1 for multi-label semantic type detection, plus simple
// aggregation helpers for the scanned-column ratio and end-to-end timing.
package metrics

import (
	"fmt"
	"sort"
	"sync"
)

// F1Accumulator accumulates micro-averaged multi-label counts. The
// background "no type" outcome is represented by empty label sets on both
// sides, contributing nothing — matching how the paper scores columns
// without semantic types. It is safe for concurrent use.
type F1Accumulator struct {
	mu         sync.Mutex
	tp, fp, fn int
	perType    map[string]*typeCounts
}

type typeCounts struct{ tp, fp, fn int }

// NewF1Accumulator creates an empty accumulator.
func NewF1Accumulator() *F1Accumulator {
	return &F1Accumulator{perType: make(map[string]*typeCounts)}
}

// Add records one column's predicted and ground-truth label sets.
func (a *F1Accumulator) Add(predicted, truth []string) {
	predSet := toSet(predicted)
	truthSet := toSet(truth)
	a.mu.Lock()
	defer a.mu.Unlock()
	for p := range predSet {
		if truthSet[p] {
			a.tp++
			a.counts(p).tp++
		} else {
			a.fp++
			a.counts(p).fp++
		}
	}
	for t := range truthSet {
		if !predSet[t] {
			a.fn++
			a.counts(t).fn++
		}
	}
}

func (a *F1Accumulator) counts(t string) *typeCounts {
	c := a.perType[t]
	if c == nil {
		c = &typeCounts{}
		a.perType[t] = c
	}
	return c
}

func toSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

// Precision returns micro precision (1 when nothing was predicted).
func (a *F1Accumulator) Precision() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return safeDiv(a.tp, a.tp+a.fp)
}

// Recall returns micro recall (1 when there was nothing to find).
func (a *F1Accumulator) Recall() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return safeDiv(a.tp, a.tp+a.fn)
}

// F1 returns the micro F1 score.
func (a *F1Accumulator) F1() float64 {
	p, r := a.Precision(), a.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Counts returns (tp, fp, fn).
func (a *F1Accumulator) Counts() (tp, fp, fn int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tp, a.fp, a.fn
}

// TypeReport is the per-type breakdown entry.
type TypeReport struct {
	Type                  string
	TP, FP, FN            int
	Precision, Recall, F1 float64
}

// PerType returns per-type scores sorted by descending support then name,
// useful for error analysis.
func (a *F1Accumulator) PerType() []TypeReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]TypeReport, 0, len(a.perType))
	for t, c := range a.perType {
		r := TypeReport{Type: t, TP: c.tp, FP: c.fp, FN: c.fn}
		r.Precision = safeDiv(c.tp, c.tp+c.fp)
		r.Recall = safeDiv(c.tp, c.tp+c.fn)
		if r.Precision+r.Recall > 0 {
			r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].TP+out[i].FN, out[j].TP+out[j].FN
		if si != sj {
			return si > sj
		}
		return out[i].Type < out[j].Type
	})
	return out
}

func safeDiv(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// Ratio renders a fraction as a percentage string for reports.
func Ratio(num, den int) string {
	if den == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}
