// Package retry is the repo's one transient-retry policy: exponential
// backoff with seeded jitter, deadline-aware give-up, and a caller-supplied
// transience test. It was extracted from the detection core (DESIGN.md §7)
// so every layer that retries — the detector against tenant databases, the
// fleet coordinator against replicas — shares the same machinery and the
// same reproducibility contract: jitter comes from a generator seeded at
// construction, so a (seed, fault-profile) pair replays identically.
package retry

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Policy bounds a Retrier.
type Policy struct {
	// MaxRetries caps how many times a transient error is retried per
	// operation.
	MaxRetries int
	// BaseDelay is the backoff base: attempt k sleeps base·2ᵏ + jitter.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (pre-jitter).
	MaxDelay time.Duration
	// DeadlineMargin gives up early: when the next backoff sleep would end
	// within this margin of the context deadline, the error is returned
	// instead of sleeping — the remaining budget belongs to degradation,
	// not to waiting.
	DeadlineMargin time.Duration
}

// Retrier runs operations under a Policy. Safe for concurrent use; the
// jitter generator is shared under a mutex so concurrent callers draw a
// serialized (still seeded) sequence.
type Retrier struct {
	policy Policy

	mu  sync.Mutex
	rng *rand.Rand
}

// New creates a Retrier whose jitter is seeded with seed.
func New(policy Policy, seed int64) *Retrier {
	return &Retrier{policy: policy, rng: rand.New(rand.NewSource(seed))}
}

// Policy returns the retrier's policy.
func (r *Retrier) Policy() Policy { return r.policy }

// Backoff returns the sleep before retry attempt+1: base·2^attempt plus up
// to 50 % seeded jitter, capped at MaxDelay (pre-jitter).
func (r *Retrier) Backoff(attempt int) time.Duration {
	base := r.policy.BaseDelay
	if base <= 0 {
		return 0
	}
	delay := base << uint(attempt)
	if mx := r.policy.MaxDelay; mx > 0 && delay > mx {
		delay = mx
	}
	r.mu.Lock()
	jitter := time.Duration(r.rng.Int63n(int64(delay/2) + 1))
	r.mu.Unlock()
	return delay + jitter
}

// Do runs op, retrying errors for which transient returns true up to
// MaxRetries times with exponential backoff + jitter. It gives up early when
// the context dies or when the next backoff would cross the deadline (minus
// DeadlineMargin). onRetry, when non-nil, runs once per retry — the hook
// callers use to move their ledgers. Returns the retry count alongside the
// final error (nil on success).
func (r *Retrier) Do(ctx context.Context, transient func(error) bool, onRetry func(), op func() error) (int, error) {
	retries := 0
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			return retries, nil
		}
		if !transient(err) || attempt >= r.policy.MaxRetries || ctx.Err() != nil {
			return retries, err
		}
		delay := r.Backoff(attempt)
		if dl, ok := ctx.Deadline(); ok && time.Now().Add(delay).After(dl.Add(-r.policy.DeadlineMargin)) {
			// Sleeping would eat the remaining budget; let the caller
			// degrade instead.
			return retries, err
		}
		retries++
		if onRetry != nil {
			onRetry()
		}
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return retries, err
			}
			t.Stop()
		}
	}
}
