package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errTransient = errors.New("transient")
var errPermanent = errors.New("permanent")

func isTransient(err error) bool { return errors.Is(err, errTransient) }

func fastPolicy() Policy {
	return Policy{MaxRetries: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
}

func TestDoSucceedsAfterTransients(t *testing.T) {
	r := New(fastPolicy(), 1)
	calls, notes := 0, 0
	n, err := r.Do(context.Background(), isTransient, func() { notes++ }, func() error {
		calls++
		if calls < 3 {
			return errTransient
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || notes != 2 || calls != 3 {
		t.Fatalf("retries=%d notes=%d calls=%d, want 2/2/3", n, notes, calls)
	}
}

func TestDoPermanentErrorNotRetried(t *testing.T) {
	r := New(fastPolicy(), 1)
	calls := 0
	n, err := r.Do(context.Background(), isTransient, nil, func() error {
		calls++
		return errPermanent
	})
	if !errors.Is(err, errPermanent) || n != 0 || calls != 1 {
		t.Fatalf("err=%v retries=%d calls=%d", err, n, calls)
	}
}

func TestDoExhaustsMaxRetries(t *testing.T) {
	r := New(fastPolicy(), 1)
	calls := 0
	n, err := r.Do(context.Background(), isTransient, nil, func() error {
		calls++
		return errTransient
	})
	if !errors.Is(err, errTransient) {
		t.Fatal(err)
	}
	if n != 3 || calls != 4 {
		t.Fatalf("retries=%d calls=%d, want 3/4", n, calls)
	}
}

func TestDoStopsOnDeadContext(t *testing.T) {
	r := New(fastPolicy(), 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	n, err := r.Do(ctx, isTransient, nil, func() error {
		calls++
		return errTransient
	})
	if !errors.Is(err, errTransient) || n != 0 || calls != 1 {
		t.Fatalf("err=%v retries=%d calls=%d", err, n, calls)
	}
}

func TestDoGivesUpBeforeDeadline(t *testing.T) {
	// A backoff that would sleep past the deadline must return the error
	// instead of sleeping: the remaining budget belongs to degradation.
	r := New(Policy{MaxRetries: 5, BaseDelay: time.Second, MaxDelay: time.Second, DeadlineMargin: time.Millisecond}, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	n, err := r.Do(ctx, isTransient, nil, func() error { return errTransient })
	if !errors.Is(err, errTransient) || n != 0 {
		t.Fatalf("err=%v retries=%d", err, n)
	}
	if time.Since(start) > 40*time.Millisecond {
		t.Fatalf("retrier slept into the deadline (%v)", time.Since(start))
	}
}

func TestBackoffSeededAndCapped(t *testing.T) {
	p := Policy{MaxRetries: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 8 * time.Millisecond}
	a, b := New(p, 7), New(p, 7)
	for attempt := 0; attempt < 6; attempt++ {
		da, db := a.Backoff(attempt), b.Backoff(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", attempt, da, db)
		}
		// Pre-jitter delay caps at MaxDelay; jitter adds at most 50 %.
		if da > p.MaxDelay+p.MaxDelay/2 {
			t.Fatalf("attempt %d: backoff %v exceeds cap", attempt, da)
		}
	}
	if c := New(p, 8).Backoff(3); c == a.Backoff(3) && c == a.Backoff(3) {
		// Different seeds *may* collide on one draw; only flag the
		// pathological all-equal case across several attempts.
		same := true
		x, y := New(p, 7), New(p, 9)
		for attempt := 0; attempt < 8; attempt++ {
			if x.Backoff(attempt) != y.Backoff(attempt) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("jitter ignores the seed")
		}
	}
}
