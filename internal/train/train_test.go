package train

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/tensor"
)

// synthModel is a tiny least-squares model (y = x·w) whose loss graph is
// rich enough to exercise the autograd tape but cheap enough for exhaustive
// bit-exactness checks.
type synthModel struct {
	w *tensor.Tensor
	x [][]float64 // per-item feature rows
	y [][]float64 // per-item targets
}

func newSynthData(seed int64, items, dim int) ([][]float64, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, items)
	y := make([][]float64, items)
	for i := range x {
		x[i] = make([]float64, dim)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
		y[i] = []float64{rng.NormFloat64()}
	}
	return x, y
}

func newSynthModel(x, y [][]float64) *synthModel {
	dim := len(x[0])
	w := tensor.Param(dim, 1)
	rng := rand.New(rand.NewSource(42))
	tensor.XavierUniform(w, rng)
	w.SetRequiresGrad(true)
	return &synthModel{w: w, x: x, y: y}
}

// step builds the loss for one micro-batch: mean squared residual plus a
// small rng-driven feature dropout so the test also covers per-item RNG use.
func (m *synthModel) step(items []int, rng *rand.Rand) *tensor.Tensor {
	rows := make([][]float64, len(items))
	tgts := make([][]float64, len(items))
	for i, it := range items {
		row := append([]float64(nil), m.x[it]...)
		row[rng.Intn(len(row))] = 0 // rng-dependent: order-invariance matters
		rows[i] = row
		tgts[i] = m.y[it]
	}
	pred := tensor.MatMul(tensor.FromRows(rows), m.w)
	diff := tensor.Sub(pred, tensor.FromRows(tgts))
	return tensor.Mean(tensor.Mul(diff, diff))
}

func (m *synthModel) spec(workers ...func(w int)) Spec {
	return Spec{
		Params: []*tensor.Tensor{m.w},
		Items:  len(m.x),
		NewWorker: func(w int) (Worker, error) {
			if w == 0 {
				return Worker{Params: []*tensor.Tensor{m.w}, Step: m.step}, nil
			}
			// Replica: own Param tensor aliasing the canonical weights.
			rw := tensor.Param(m.w.Rows, m.w.Cols)
			rw.SetRequiresGrad(true)
			tensor.AliasData([]*tensor.Tensor{rw}, []*tensor.Tensor{m.w})
			replica := &synthModel{w: rw, x: m.x, y: m.y}
			return Worker{Params: []*tensor.Tensor{rw}, Step: replica.step}, nil
		},
	}
}

// serialReference replays the exact classic loop (zero → loss → backward →
// step per micro-batch) using the same EpochPerm/ItemRNG derivation, as the
// ground truth for the workers=1 bit-exactness contract.
func serialReference(m *synthModel, cfg Config) float64 {
	opt := tensor.NewAdam([]*tensor.Tensor{m.w}, cfg.LR)
	opt.ClipNorm = cfg.ClipNorm
	opt.WeightDecay = cfg.WeightDecay
	batch := cfg.BatchItems
	if batch <= 0 {
		batch = 1
	}
	last := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		opt.LR = EpochLR(cfg.LR, cfg.FinalLR, epoch, cfg.Epochs)
		var order []int
		if cfg.Shuffle {
			order = EpochPerm(cfg.Seed, epoch, len(m.x))
		} else {
			order = make([]int, len(m.x))
			for i := range order {
				order[i] = i
			}
		}
		total, n := 0.0, 0
		for lo := 0; lo < len(order); lo += batch {
			hi := lo + batch
			if hi > len(order) {
				hi = len(order)
			}
			items := order[lo:hi]
			opt.ZeroGrads()
			loss := m.step(items, ItemRNG(cfg.Seed, epoch, items[0]))
			loss.Backward()
			opt.Step()
			total += loss.Item()
			n++
			tensor.ReleaseGraph(loss)
		}
		last = total / float64(n)
	}
	return last
}

func cloneParams(ps []*tensor.Tensor) [][]float64 {
	out := make([][]float64, len(ps))
	for i, p := range ps {
		out[i] = append([]float64(nil), p.Data...)
	}
	return out
}

func paramsEqual(t *testing.T, a, b [][]float64, what string) {
	t.Helper()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("%s: param %d elem %d differs: %v vs %v", what, i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestWorkers1BitExactVsSerial(t *testing.T) {
	for _, shuffle := range []bool{false, true} {
		for _, batch := range []int{1, 3} {
			x, y := newSynthData(5, 17, 6)
			serial := newSynthModel(x, y)
			trained := newSynthModel(x, y)
			cfg := Config{Epochs: 3, Workers: 1, BatchItems: batch, Shuffle: shuffle,
				LR: 1e-2, FinalLR: 1e-3, ClipNorm: 1, WeightDecay: 1e-4, Seed: 11}
			refLoss := serialReference(serial, cfg)
			gotLoss, err := Run(trained.spec(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if gotLoss != refLoss {
				t.Fatalf("shuffle=%v batch=%d: loss %v vs serial %v", shuffle, batch, gotLoss, refLoss)
			}
			paramsEqual(t, cloneParams([]*tensor.Tensor{trained.w}),
				cloneParams([]*tensor.Tensor{serial.w}),
				"workers=1 vs serial")
		}
	}
}

func TestMultiWorkerDeterminism(t *testing.T) {
	gomaxprocs(t, 4)
	var final [][][]float64
	var losses []float64
	for run := 0; run < 2; run++ {
		x, y := newSynthData(9, 23, 5)
		m := newSynthModel(x, y)
		loss, err := Run(m.spec(), Config{Epochs: 2, Workers: 4, GradAccum: 2,
			BatchItems: 2, Shuffle: true, LR: 5e-3, ClipNorm: 1, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		final = append(final, cloneParams([]*tensor.Tensor{m.w}))
		losses = append(losses, loss)
	}
	if losses[0] != losses[1] {
		t.Fatalf("same (seed, workers) gave losses %v vs %v", losses[0], losses[1])
	}
	paramsEqual(t, final[0], final[1], "identical (seed,workers) runs")
}

// TestMultiWorkerEpochRace exists to run a multi-worker epoch under
// `go test -race`: concurrent replica backward passes over aliased weights
// must never write the same gradient buffer.
func TestMultiWorkerEpochRace(t *testing.T) {
	gomaxprocs(t, 4)
	x, y := newSynthData(2, 40, 8)
	m := newSynthModel(x, y)
	if _, err := Run(m.spec(), Config{Epochs: 2, Workers: 4, BatchItems: 2,
		Shuffle: true, LR: 1e-2, ClipNorm: 1, Seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiWorkerConverges(t *testing.T) {
	gomaxprocs(t, 4)
	x, y := newSynthData(4, 32, 4)
	m := newSynthModel(x, y)
	first, err := Run(m.spec(), Config{Epochs: 1, Workers: 2, LR: 5e-2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	last, err := Run(m.spec(), Config{Epochs: 30, Workers: 2, LR: 5e-2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if last >= first {
		t.Fatalf("loss did not improve: first %v last %v", first, last)
	}
}

func TestNilLossSkipsStep(t *testing.T) {
	x, y := newSynthData(6, 8, 3)
	m := newSynthModel(x, y)
	before := cloneParams([]*tensor.Tensor{m.w})
	spec := m.spec()
	inner := spec.NewWorker
	spec.NewWorker = func(w int) (Worker, error) {
		wk, err := inner(w)
		wk.Step = func(items []int, rng *rand.Rand) *tensor.Tensor { return nil }
		return wk, err
	}
	loss, err := Run(spec, Config{Epochs: 2, LR: 1e-2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if loss != 0 {
		t.Fatalf("all-skip run reported loss %v", loss)
	}
	paramsEqual(t, before, cloneParams([]*tensor.Tensor{m.w}), "all-skip run must not update params")
}

func TestRunErrors(t *testing.T) {
	x, y := newSynthData(1, 4, 2)
	m := newSynthModel(x, y)
	if _, err := Run(m.spec(), Config{Epochs: 0}); err == nil {
		t.Fatal("expected error for Epochs=0")
	}
	spec := m.spec()
	spec.Items = 0
	if _, err := Run(spec, Config{Epochs: 1}); err == nil {
		t.Fatal("expected error for zero items")
	}
}

func TestEpochPermStableAndComplete(t *testing.T) {
	a := EpochPerm(1, 0, 10)
	b := EpochPerm(1, 0, 10)
	seen := make([]bool, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("EpochPerm not deterministic")
		}
		seen[a[i]] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("item %d missing from permutation", i)
		}
	}
	c := EpochPerm(1, 1, 10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different epochs produced identical permutations")
	}
}

func TestItemRNGIndependentStreams(t *testing.T) {
	a := ItemRNG(1, 0, 5).Int63()
	if b := ItemRNG(1, 0, 5).Int63(); b != a {
		t.Fatal("ItemRNG not deterministic")
	}
	if b := ItemRNG(1, 0, 6).Int63(); b == a {
		t.Fatal("distinct items share a stream")
	}
	if b := ItemRNG(1, 1, 5).Int63(); b == a {
		t.Fatal("distinct epochs share a stream")
	}
	if b := ItemRNG(2, 0, 5).Int63(); b == a {
		t.Fatal("distinct seeds share a stream")
	}
}

func gomaxprocs(t testing.TB, n int) {
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}
