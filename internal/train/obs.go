package train

import (
	"strconv"

	"repro/internal/obs"
)

// Training-runtime metrics (DESIGN.md §10): throughput counters, step
// latency, per-epoch loss, pre-clip gradient norms, and utilization gauges
// for the gradient workers.
var (
	mOptSteps     = obs.Default.Counter("taste_train_optimizer_steps_total")
	mMicrobatches = obs.Default.Counter("taste_train_microbatches_total")
	mEpochs       = obs.Default.Counter("taste_train_epochs_total")
	mStepSeconds  = obs.Default.LatencyHistogram("taste_train_step_seconds")
	mEpochLoss    = obs.Default.Histogram("taste_train_epoch_loss", obs.ExpBuckets(1e-4, 2, 24))
	mGradNorm     = obs.Default.Histogram("taste_train_grad_norm", obs.ExpBuckets(1e-3, 2, 24))
	mStepsPerSec  = obs.Default.Gauge("taste_train_steps_per_second_milli")
)

// workerUtil returns the utilization gauge for one gradient worker: the
// fraction of the last epoch's wall time the worker spent in Step/Backward,
// in permille.
func workerUtil(w int) *obs.Gauge {
	return obs.Default.Gauge("taste_train_worker_utilization_permille", "worker", strconv.Itoa(w))
}
