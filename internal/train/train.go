// Package train is the data-parallel training runtime shared by every
// training loop in the reproduction (adtd.FineTune, adtd.Pretrain,
// sherlock.Train, baselines.FineTune).
//
// A Trainer run owns the epoch/shuffle/LR-decay loop and fans mini-batches
// out to W gradient workers. Worker 0 trains against the canonical model
// directly; every other worker runs forward+backward on its own replica
// model whose parameters alias the canonical weights (tensor.AliasData) but
// own pooled gradient buffers (tensor.AttachGrads), so no Tensor.Grad is
// ever written concurrently. After each group of Workers×GradAccum
// micro-batches the trainer reduces worker gradients into the canonical
// parameters in a fixed binary-tree order, averages them, and takes one
// optimizer step.
//
// Determinism contract: a run is bit-reproducible for a fixed
// (Seed, Workers, GradAccum, BatchItems) configuration — shuffling and all
// per-item sampling derive from counter-based RNGs (EpochPerm, ItemRNG)
// keyed by stable item identity, never from a shared stream, so results do
// not depend on which worker processed which batch first. Workers=1 with
// GradAccum=1 executes exactly the classic serial loop (zero → loss →
// backward → step per micro-batch, no gradient scaling). Changing Workers
// or GradAccum regroups micro-batches per optimizer step and therefore
// changes the floating-point summation order of the averaged gradient;
// losses follow a statistically equivalent but not bit-identical trajectory.
package train

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/tensor"
)

// Config controls one training run. The zero value of every optional field
// selects the serial-equivalent default (1 worker, no accumulation,
// batch size 1, no shuffling, no clipping, no logging).
type Config struct {
	// Epochs over the item set. Must be positive.
	Epochs int
	// Workers is the number of data-parallel gradient workers (≤0 → 1).
	Workers int
	// GradAccum accumulates this many micro-batches per worker into each
	// optimizer step (≤0 → 1).
	GradAccum int
	// BatchItems is the number of items per micro-batch (≤0 → 1).
	BatchItems int
	// Shuffle reshuffles item order every epoch (EpochPerm).
	Shuffle bool
	// LR is the initial Adam learning rate; FinalLR, when positive, decays
	// it exponentially across epochs (EpochLR).
	LR      float64
	FinalLR float64
	// ClipNorm, when positive, enables global-norm gradient clipping.
	ClipNorm float64
	// WeightDecay is the AdamW decoupled weight decay (0 disables).
	WeightDecay float64
	// Seed drives shuffling and all per-item RNG derivation.
	Seed int64
	// Log, when non-nil, receives one progress line per epoch (and every
	// LogEvery micro-batches when LogEvery > 0), prefixed with LogPrefix.
	Log       io.Writer
	LogPrefix string
	LogEvery  int
}

// Worker is one gradient worker: a parameter list (canonical for worker 0,
// replica tensors aliasing the canonical weights for the rest) and a step
// function that builds the loss graph for one micro-batch. Step receives
// the stable item indices of the micro-batch and a micro-batch-scoped RNG
// (ItemRNG-derived), and returns the loss tensor — or nil to skip the
// micro-batch (it then contributes nothing to the gradient or the epoch
// loss). The trainer runs Backward and releases the graph.
type Worker struct {
	Params []*tensor.Tensor
	Step   func(items []int, rng *rand.Rand) *tensor.Tensor
}

// Spec describes what to train: the canonical parameters the optimizer
// updates, the number of items per epoch, and a constructor invoked once
// per worker slot. NewWorker(0) must return a worker whose Params are the
// canonical parameters themselves; NewWorker(w>0) must return a replica
// whose Params alias the canonical Data (tensor.AliasData) — the trainer
// attaches pooled gradient arenas to replicas and releases them when the
// run ends.
type Spec struct {
	Params    []*tensor.Tensor
	Items     int
	NewWorker func(w int) (Worker, error)
}

// microbatch is one unit of worker work: its global step index within the
// epoch (for deterministic loss bookkeeping) and the stable item ids.
type microbatch struct {
	index int
	items []int
}

// Run executes the training loop and returns the mean loss of the final
// epoch (mean over micro-batches that produced a loss).
func Run(spec Spec, cfg Config) (float64, error) {
	if cfg.Epochs <= 0 {
		return 0, fmt.Errorf("train: Epochs must be positive")
	}
	if spec.Items <= 0 {
		return 0, fmt.Errorf("train: no items to train on")
	}
	nw := cfg.Workers
	if nw <= 0 {
		nw = 1
	}
	accum := cfg.GradAccum
	if accum <= 0 {
		accum = 1
	}
	batch := cfg.BatchItems
	if batch <= 0 {
		batch = 1
	}

	workers := make([]Worker, nw)
	for w := range workers {
		wk, err := spec.NewWorker(w)
		if err != nil {
			return 0, fmt.Errorf("train: worker %d: %w", w, err)
		}
		workers[w] = wk
	}
	for w := 1; w < nw; w++ {
		arena := tensor.AttachGrads(workers[w].Params)
		defer arena.Release()
	}
	tensor.ZeroGrads(spec.Params)

	opt := tensor.NewAdam(spec.Params, cfg.LR)
	opt.ClipNorm = cfg.ClipNorm
	opt.WeightDecay = cfg.WeightDecay

	steps := (spec.Items + batch - 1) / batch
	group := nw * accum
	losses := make([]float64, steps)
	haveLoss := make([]bool, steps)
	busy := make([]time.Duration, nw)

	meanLoss := 0.0
	runStart := time.Now()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochStart := time.Now()
		opt.LR = EpochLR(cfg.LR, cfg.FinalLR, epoch, cfg.Epochs)
		var order []int
		if cfg.Shuffle {
			order = EpochPerm(cfg.Seed, epoch, spec.Items)
		} else {
			order = make([]int, spec.Items)
			for i := range order {
				order[i] = i
			}
		}
		for i := range losses {
			losses[i], haveLoss[i] = 0, false
		}
		for w := range busy {
			busy[w] = 0
		}

		logged, windowSum, windowN := 0, 0.0, 0
		for g0 := 0; g0 < steps; g0 += group {
			g1 := g0 + group
			if g1 > steps {
				g1 = steps
			}
			// Micro-batch s goes to worker s%nw: a fixed assignment, so the
			// per-worker gradient sums — and hence the reduced gradient — are
			// identical across runs with the same configuration.
			var wg sync.WaitGroup
			for w := 0; w < nw; w++ {
				var mbs []microbatch
				for s := g0 + w; s < g1; s += nw {
					lo := s * batch
					hi := lo + batch
					if hi > spec.Items {
						hi = spec.Items
					}
					mbs = append(mbs, microbatch{index: s, items: order[lo:hi]})
				}
				if len(mbs) == 0 {
					continue
				}
				if nw == 1 {
					runWorker(workers[w], mbs, epoch, cfg.Seed, losses, haveLoss, &busy[w])
					continue
				}
				wg.Add(1)
				go func(w int, mbs []microbatch) {
					defer wg.Done()
					runWorker(workers[w], mbs, epoch, cfg.Seed, losses, haveLoss, &busy[w])
				}(w, mbs)
			}
			wg.Wait()

			// Fixed binary-tree reduction into worker 0 (the canonical
			// parameters): stride doubling keeps the summation order
			// independent of worker completion timing.
			for stride := 1; stride < nw; stride *= 2 {
				for lo := 0; lo+stride < nw; lo += 2 * stride {
					tensor.AccumGrads(workers[lo].Params, workers[lo+stride].Params)
				}
			}
			n := 0
			for s := g0; s < g1; s++ {
				if haveLoss[s] {
					n++
					windowSum += losses[s]
					windowN++
				}
			}
			if n > 0 {
				if n > 1 {
					tensor.ScaleGrads(spec.Params, 1/float64(n))
				}
				opt.Step()
				mOptSteps.Inc()
				if cfg.ClipNorm > 0 {
					mGradNorm.Observe(opt.LastGradNorm())
				}
				for w := 0; w < nw; w++ {
					tensor.ZeroGrads(workers[w].Params)
				}
			}
			if cfg.Log != nil && cfg.LogEvery > 0 && g1/cfg.LogEvery > logged {
				logged = g1 / cfg.LogEvery
				if windowN > 0 {
					fmt.Fprintf(cfg.Log, "%s step %d/%d: loss %.4f\n", cfg.LogPrefix, g1, steps, windowSum/float64(windowN))
				}
				windowSum, windowN = 0, 0
			}
		}

		total, cnt := 0.0, 0
		for s := range losses {
			if haveLoss[s] {
				total += losses[s]
				cnt++
			}
		}
		if cnt > 0 {
			meanLoss = total / float64(cnt)
		}
		epochWall := time.Since(epochStart)
		mEpochs.Inc()
		mEpochLoss.Observe(meanLoss)
		stepsPerSec := 0.0
		if epochWall > 0 {
			stepsPerSec = float64(steps) / epochWall.Seconds()
		}
		mStepsPerSec.Set(int64(stepsPerSec * 1000))
		for w := 0; w < nw; w++ {
			util := int64(0)
			if epochWall > 0 {
				util = int64(busy[w]) * 1000 / int64(epochWall)
			}
			workerUtil(w).Set(util)
		}
		if cfg.Log != nil {
			elapsed := time.Since(runStart)
			eta := time.Duration(float64(elapsed) / float64(epoch+1) * float64(cfg.Epochs-epoch-1))
			fmt.Fprintf(cfg.Log, "%s epoch %d/%d: loss %.4f (%.1f steps/s, eta %s)\n",
				cfg.LogPrefix, epoch+1, cfg.Epochs, meanLoss, stepsPerSec, eta.Round(time.Second))
		}
	}
	return meanLoss, nil
}

// runWorker processes one worker's share of a micro-batch group: build the
// loss, record it at the micro-batch's global index (indices are disjoint
// across workers), backprop into this worker's own gradient buffers, and
// release the graph.
func runWorker(wk Worker, mbs []microbatch, epoch int, seed int64, losses []float64, haveLoss []bool, busy *time.Duration) {
	t0 := time.Now()
	for _, mb := range mbs {
		stepStart := time.Now()
		rng := ItemRNG(seed, epoch, mb.items[0])
		loss := wk.Step(mb.items, rng)
		if loss != nil {
			losses[mb.index] = loss.Item()
			haveLoss[mb.index] = true
			loss.Backward()
			tensor.ReleaseGraph(loss)
		}
		mStepSeconds.ObserveDuration(time.Since(stepStart))
		mMicrobatches.Inc()
	}
	*busy += time.Since(t0)
}

// EpochLR interpolates the learning rate exponentially from lr to finalLR
// (when 0 < finalLR < lr) across epochs.
func EpochLR(lr, finalLR float64, epoch, epochs int) float64 {
	if finalLR <= 0 || finalLR >= lr || epochs <= 1 {
		return lr
	}
	frac := float64(epoch) / float64(epochs-1)
	return lr * math.Pow(finalLR/lr, frac)
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64 used
// to derive independent RNG streams from (seed, epoch, item) counters.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// deriveSeed hashes a (seed, epoch, counter, stream) tuple into an RNG seed.
func deriveSeed(seed int64, epoch, counter int, stream uint64) int64 {
	const golden = 0x9e3779b97f4a7c15
	h := mix64(uint64(seed) + golden)
	h = mix64(h ^ mix64(uint64(epoch)+golden) ^ stream)
	h = mix64(h ^ mix64(uint64(counter)+golden))
	return int64(h >> 1) // keep non-negative for rand.NewSource symmetry
}

// ItemRNG returns the RNG for one micro-batch, keyed by the stable
// (pre-shuffle) identity of its first item. Sampling decisions made with it
// are independent of the order in which micro-batches are processed and of
// which worker runs them.
func ItemRNG(seed int64, epoch, item int) *rand.Rand {
	return rand.New(rand.NewSource(deriveSeed(seed, epoch, item, 0x7461737465727367)))
}

// EpochPerm returns the deterministic item permutation for an epoch.
func EpochPerm(seed int64, epoch, n int) []int {
	r := rand.New(rand.NewSource(deriveSeed(seed, epoch, 0, 0x7065726d73747261)))
	return r.Perm(n)
}
