package ruledet_test

import (
	"fmt"

	"repro/internal/ruledet"
)

func ExampleDetector_DetectColumn() {
	det := ruledet.Default()
	fmt.Println(det.DetectColumn([]string{"10.0.0.1", "192.168.1.1", "172.16.0.9"}))
	fmt.Println(det.DetectColumn([]string{"wei.chen@mail.net", "omar.ali@corp.org"}))
	fmt.Println(det.DetectColumn([]string{"golden hour", "paper skies"})) // free text: no rule fires
	// Output:
	// [ip_address]
	// [email]
	// []
}
