package ruledet

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/metrics"
)

func TestLuhn(t *testing.T) {
	valid := []string{"4539578763621486", "79927398713"}
	invalid := []string{"4539578763621487", "1234567812345678", "4111x11111111111"}
	for _, v := range valid {
		if !LuhnValid(v) {
			t.Fatalf("%s should pass Luhn", v)
		}
	}
	for _, v := range invalid {
		if LuhnValid(v) {
			t.Fatalf("%s should fail Luhn", v)
		}
	}
}

func TestDetectColumnEmail(t *testing.T) {
	d := Default()
	got := d.DetectColumn([]string{"a.smith@example.com", "wei.chen@mail.net", "x@y.io"})
	if !reflect.DeepEqual(got, []string{"email"}) {
		t.Fatalf("got %v", got)
	}
}

func TestDetectColumnThreshold(t *testing.T) {
	d := Default()
	// 2 of 3 values match (66 %) — below the 90 % default support.
	got := d.DetectColumn([]string{"a@b.com", "c@d.org", "not an email"})
	if got != nil {
		t.Fatalf("got %v, want nil below support threshold", got)
	}
	d.MinSupport = 0.5
	got = d.DetectColumn([]string{"a@b.com", "c@d.org", "not an email"})
	if !reflect.DeepEqual(got, []string{"email"}) {
		t.Fatalf("got %v", got)
	}
}

func TestDetectColumnIgnoresEmpties(t *testing.T) {
	d := Default()
	got := d.DetectColumn([]string{"", "a@b.com", "", "c@d.org", ""})
	if !reflect.DeepEqual(got, []string{"email"}) {
		t.Fatalf("got %v", got)
	}
	if d.DetectColumn([]string{"", "", ""}) != nil {
		t.Fatal("all-empty column must get no types")
	}
}

func TestPriorityTiers(t *testing.T) {
	d := Default()
	// Valid IPv4 values also satisfy nothing else; priority 3.
	got := d.DetectColumn([]string{"10.0.0.1", "192.168.1.254"})
	if !reflect.DeepEqual(got, []string{"ip_address"}) {
		t.Fatalf("got %v", got)
	}
	// Out-of-range octets fail the semantic validator.
	if got := d.DetectColumn([]string{"999.999.999.999"}); got != nil {
		t.Fatalf("got %v for invalid IPs", got)
	}
}

func TestIPv4Validation(t *testing.T) {
	if !validIPv4("1.2.3.4") || validIPv4("256.1.1.1") || validIPv4("1.2.3") {
		t.Fatal("IPv4 validation wrong")
	}
}

func TestDateValidation(t *testing.T) {
	if !validDate("2024-02-28") || validDate("2024-13-01") || validDate("2024-01-32") || validDate("24-01-01") {
		t.Fatal("date validation wrong")
	}
}

func TestDictionaryRules(t *testing.T) {
	d := Default()
	cases := map[string][]string{
		"month":    {"january", "March", "december"},
		"weekday":  {"monday", "Sunday"},
		"currency": {"USD", "eur"},
		"gender":   {"male", "female", "unknown"},
	}
	for want, values := range cases {
		got := d.DetectColumn(values)
		if !reflect.DeepEqual(got, []string{want}) {
			t.Fatalf("%s: got %v", want, got)
		}
	}
}

// TestAgainstGeneratedCorpus measures the rule detector on generated
// columns: pattern-protocol types must be detected with high precision;
// free-text types (names, cities, …) are simply out of reach — the
// limitation that motivates learned detection.
func TestAgainstGeneratedCorpus(t *testing.T) {
	reg := corpus.DefaultRegistry()
	d := Default()
	rng := rand.New(rand.NewSource(1))
	covered := map[string]bool{}
	for _, r := range DefaultRules() {
		covered[r.Type] = true
	}
	acc := metrics.NewF1Accumulator()
	for _, typ := range reg.Types() {
		values := make([]string, 30)
		for i := range values {
			values[i] = typ.Gen(rng)
		}
		got := d.DetectColumn(values)
		var want []string
		if covered[typ.Name] {
			want = []string{typ.Name}
		}
		acc.Add(got, want)
	}
	// Precision must be decent (patterns rarely fire falsely); recall over
	// covered types must be high.
	if p := acc.Precision(); p < 0.7 {
		t.Fatalf("rule precision %.3f too low", p)
	}
	if r := acc.Recall(); r < 0.8 {
		t.Fatalf("rule recall over covered types %.3f too low", r)
	}
}

// TestRuleDetectorMissesFreeText documents the core limitation: dictionary
// and regex rules cannot label free-text types.
func TestRuleDetectorMissesFreeText(t *testing.T) {
	reg := corpus.DefaultRegistry()
	d := Default()
	rng := rand.New(rand.NewSource(2))
	for _, name := range []string{"city", "company", "job_title", "album"} {
		typ := reg.Lookup(name)
		values := make([]string, 20)
		for i := range values {
			values[i] = typ.Gen(rng)
		}
		if got := d.DetectColumn(values); len(got) > 0 {
			t.Fatalf("rule detector should not label %s, got %v", name, got)
		}
	}
}
