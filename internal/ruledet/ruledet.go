// Package ruledet implements the traditional, non-learning semantic type
// detection the paper's introduction and related work (§7) position the
// DL-based systems against: per-type validators built from regular
// expressions, dictionaries, and checksum protocols (the Trifacta /
// Auto-Validate family). A column is assigned a type when a large enough
// fraction of its sampled values pass that type's validator.
//
// Like the content-based DL baselines it must scan every column, and unlike
// them it only covers types whose values obey a recognizable pattern —
// exactly the limitation (§7: "intrinsically rely on alphabet statistics …
// fail to leverage rich tabular context") that motivated learned detectors.
package ruledet

import (
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Rule validates single values of one semantic type.
type Rule struct {
	// Type is the semantic type this rule detects.
	Type string
	// Match reports whether one cell value conforms.
	Match func(v string) bool
	// Priority breaks ties when several rules pass (higher wins); more
	// specific patterns should outrank catch-alls.
	Priority int
}

// Detector assigns types by validating sampled column content.
type Detector struct {
	rules []Rule
	// MinSupport is the fraction of non-empty sampled values that must
	// match for a type to be admitted (default 0.9).
	MinSupport float64
}

// New creates a detector over the given rules.
func New(rules []Rule) *Detector {
	return &Detector{rules: rules, MinSupport: 0.9}
}

// Default returns a detector covering the pattern-friendly subset of the
// built-in type domain.
func Default() *Detector {
	return New(DefaultRules())
}

// DetectColumn returns the admitted types for a column's sampled values,
// sorted by descending priority then name. Empty values are ignored; a
// column with no non-empty values gets no types.
func (d *Detector) DetectColumn(values []string) []string {
	nonEmpty := 0
	hits := make(map[string]int)
	for _, v := range values {
		if v == "" {
			continue
		}
		nonEmpty++
		for _, r := range d.rules {
			if r.Match(v) {
				hits[r.Type]++
			}
		}
	}
	if nonEmpty == 0 {
		return nil
	}
	type cand struct {
		typ      string
		priority int
	}
	var out []cand
	for _, r := range d.rules {
		if float64(hits[r.Type]) >= d.MinSupport*float64(nonEmpty) {
			out = append(out, cand{r.Type, r.Priority})
		}
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].priority != out[j].priority {
			return out[i].priority > out[j].priority
		}
		return out[i].typ < out[j].typ
	})
	// Admit only the top-priority tier: "credit card" should suppress the
	// generic "all digits" interpretations below it.
	top := out[0].priority
	var names []string
	for _, c := range out {
		if c.priority == top {
			names = append(names, c.typ)
		}
	}
	sort.Strings(names)
	return names
}

var (
	reEmail    = regexp.MustCompile(`^[a-z0-9._%+\-]+@[a-z0-9.\-]+\.[a-z]{2,}$`)
	reIPv4     = regexp.MustCompile(`^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$`)
	reMAC      = regexp.MustCompile(`^([0-9a-f]{2}:){5}[0-9a-f]{2}$`)
	reURL      = regexp.MustCompile(`^https?://[^\s]+$`)
	reUUID     = regexp.MustCompile(`^[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12}$`)
	reSSN      = regexp.MustCompile(`^\d{3}-\d{2}-\d{4}$`)
	reZip      = regexp.MustCompile(`^\d{5}$`)
	rePhone    = regexp.MustCompile(`^1\d{10}$`)
	reCard     = regexp.MustCompile(`^\d{16}$`)
	reISBN     = regexp.MustCompile(`^97[89]-\d-\d{4}-\d{4}-\d$`)
	reIBAN     = regexp.MustCompile(`^[A-Z]{2}\d{20}$`)
	reDate     = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}$`)
	reDatetime = regexp.MustCompile(`^\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}$`)
	reHexColor = regexp.MustCompile(`^#[0-9a-f]{6}$`)
	reVersion  = regexp.MustCompile(`^\d+\.\d+\.\d+$`)
	reMime     = regexp.MustCompile(`^[a-z]+/[a-z0-9.+\-]+$`)
	rePassport = regexp.MustCompile(`^[A-Z]\d{8}$`)
	rePlate    = regexp.MustCompile(`^[A-Z]{2}\d{2}-[A-Z]{3}$`)
	reSKU      = regexp.MustCompile(`^[A-Z]{3}-\d{4}$`)
)

// LuhnValid reports whether digits pass the Luhn checksum used by payment
// card numbers (the "synthesized validation function" family of §7).
func LuhnValid(s string) bool {
	sum := 0
	double := false
	for i := len(s) - 1; i >= 0; i-- {
		c := s[i]
		if c < '0' || c > '9' {
			return false
		}
		d := int(c - '0')
		if double {
			d *= 2
			if d > 9 {
				d -= 9
			}
		}
		sum += d
		double = !double
	}
	return sum%10 == 0
}

func inSet(values ...string) func(string) bool {
	set := make(map[string]bool, len(values))
	for _, v := range values {
		set[strings.ToLower(v)] = true
	}
	return func(v string) bool { return set[strings.ToLower(v)] }
}

func validIPv4(v string) bool {
	m := reIPv4.FindStringSubmatch(v)
	if m == nil {
		return false
	}
	for _, part := range m[1:] {
		n, err := strconv.Atoi(part)
		if err != nil || n > 255 {
			return false
		}
	}
	return true
}

func validDate(v string) bool {
	if !reDate.MatchString(v) {
		return false
	}
	month, _ := strconv.Atoi(v[5:7])
	day, _ := strconv.Atoi(v[8:10])
	return month >= 1 && month <= 12 && day >= 1 && day <= 31
}

// DefaultRules covers the pattern/dictionary-friendly types of the built-in
// domain. Priorities: 3 = checksum/protocol, 2 = strict pattern,
// 1 = dictionary, 0 = loose numeric range.
func DefaultRules() []Rule {
	months := inSet("january", "february", "march", "april", "may", "june", "july", "august", "september", "october", "november", "december")
	weekdays := inSet("monday", "tuesday", "wednesday", "thursday", "friday", "saturday", "sunday")
	currencies := inSet("USD", "EUR", "JPY", "GBP", "CNY", "AUD", "CAD", "CHF", "SEK", "INR")
	genders := inSet("male", "female", "other", "unknown")
	return []Rule{
		{Type: "email", Priority: 2, Match: reEmail.MatchString},
		{Type: "ip_address", Priority: 3, Match: validIPv4},
		{Type: "mac_address", Priority: 2, Match: reMAC.MatchString},
		{Type: "url", Priority: 2, Match: reURL.MatchString},
		{Type: "uuid", Priority: 2, Match: reUUID.MatchString},
		{Type: "ssn", Priority: 2, Match: reSSN.MatchString},
		{Type: "zip_code", Priority: 2, Match: reZip.MatchString},
		{Type: "phone_number", Priority: 2, Match: rePhone.MatchString},
		{Type: "credit_card_number", Priority: 3, Match: func(v string) bool { return reCard.MatchString(v) && LuhnValid(v) }},
		// Non-checksummed 16-digit fallback, below the Luhn rule.
		{Type: "credit_card_number", Priority: 2, Match: reCard.MatchString},
		{Type: "isbn", Priority: 2, Match: reISBN.MatchString},
		{Type: "iban", Priority: 2, Match: reIBAN.MatchString},
		{Type: "date", Priority: 2, Match: validDate},
		{Type: "datetime", Priority: 2, Match: reDatetime.MatchString},
		{Type: "hex_color", Priority: 2, Match: reHexColor.MatchString},
		{Type: "version", Priority: 2, Match: reVersion.MatchString},
		{Type: "mime_type", Priority: 2, Match: reMime.MatchString},
		{Type: "passport_number", Priority: 2, Match: rePassport.MatchString},
		{Type: "license_plate", Priority: 2, Match: rePlate.MatchString},
		{Type: "sku", Priority: 2, Match: reSKU.MatchString},
		{Type: "month", Priority: 1, Match: months},
		{Type: "weekday", Priority: 1, Match: weekdays},
		{Type: "currency", Priority: 1, Match: currencies},
		{Type: "gender", Priority: 1, Match: genders},
		{Type: "year", Priority: 0, Match: func(v string) bool {
			n, err := strconv.Atoi(v)
			return err == nil && len(v) == 4 && n >= 1900 && n <= 2025
		}},
		{Type: "age", Priority: 0, Match: func(v string) bool {
			n, err := strconv.Atoi(v)
			return err == nil && n >= 1 && n <= 99 && len(v) <= 2
		}},
	}
}
