package registry

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/simdb"
	"repro/internal/tensor"
)

func randTensor(rng *rand.Rand, rows, cols int) *tensor.Tensor {
	t := tensor.New(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

// params builds a small stand-in parameter set: a few "encoder" tensors plus
// one "classifier head" tensor at the end.
func params(rng *rand.Rand) []*tensor.Tensor {
	return []*tensor.Tensor{
		randTensor(rng, 64, 32),
		randTensor(rng, 32, 32),
		randTensor(rng, 32, 16),
		randTensor(rng, 16, 8),
	}
}

func openMem(t *testing.T, pageSize int) *Registry {
	t.Helper()
	r, err := Open(simdb.NewServer(simdb.NoLatency), "", Options{PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPublishCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ts := params(rng)
	r := openMem(t, 512)
	ctx := context.Background()

	res, err := r.Publish(ctx, "taste", ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || res.NewPages != res.Pages || res.NewPages == 0 {
		t.Fatalf("first publish: %+v", res)
	}

	ckpt, err := r.Checkpoint(ctx, "taste", 1)
	if err != nil {
		t.Fatal(err)
	}
	// The reassembled stream must be exactly what WriteTensors produces.
	var want bytes.Buffer
	if err := tensor.WriteTensors(&want, ts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckpt, want.Bytes()) {
		t.Fatal("checkpoint differs from direct serialization")
	}
	// And it must load back bit-identically through the validated reader.
	restored := []*tensor.Tensor{tensor.New(64, 32), tensor.New(32, 32), tensor.New(32, 16), tensor.New(16, 8)}
	if err := tensor.ReadTensors(bytes.NewReader(ckpt), restored); err != nil {
		t.Fatal(err)
	}
	for i := range ts {
		for j := range ts[i].Data {
			if ts[i].Data[j] != restored[i].Data[j] {
				t.Fatalf("tensor %d elem %d drifted through the registry", i, j)
			}
		}
	}

	if _, err := r.Checkpoint(ctx, "taste", 7); err == nil {
		t.Fatal("want error for unknown version")
	}
	if _, err := r.Checkpoint(ctx, "nope", 1); err == nil {
		t.Fatal("want error for unknown model")
	}
}

// TestDedupAcrossVariants is the acceptance pin: two versions that share all
// but one tensor must store measurably less than two standalone checkpoints.
func TestDedupAcrossVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := params(rng)
	variant := make([]*tensor.Tensor, len(base))
	for i, p := range base {
		c := tensor.New(p.Rows, p.Cols)
		copy(c.Data, p.Data)
		variant[i] = c
	}
	// Fine-tuning touches only the classifier head (the last tensor).
	for i := range variant[len(variant)-1].Data {
		variant[len(variant)-1].Data[i] += 0.01
	}

	r := openMem(t, 512)
	ctx := context.Background()
	res1, err := r.Publish(ctx, "taste", base)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.Publish(ctx, "taste", variant)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Version != 2 {
		t.Fatalf("version = %d, want 2", res2.Version)
	}
	if res2.NewPages >= res2.Pages {
		t.Fatalf("variant stored all %d pages, dedup did nothing", res2.Pages)
	}
	if res2.SharedFrac <= 0.5 {
		t.Fatalf("variant shared fraction = %v, want most of the checkpoint", res2.SharedFrac)
	}

	st := r.Stats()
	standalone := res1.LogicalBytes + res2.LogicalBytes
	if st.StoredBytes >= standalone {
		t.Fatalf("stored %d bytes ≥ two standalone checkpoints (%d): no dedup", st.StoredBytes, standalone)
	}
	if st.SavedBytes <= 0 || st.DedupRatio <= 1 {
		t.Fatalf("stats report no saving: %+v", st)
	}
	if st.Models != 1 || st.Versions != 2 {
		t.Fatalf("stats counts: %+v", st)
	}

	// Both versions must still reassemble correctly despite sharing pages.
	for v, want := range map[int][]*tensor.Tensor{1: base, 2: variant} {
		ckpt, err := r.Checkpoint(ctx, "taste", v)
		if err != nil {
			t.Fatal(err)
		}
		var direct bytes.Buffer
		if err := tensor.WriteTensors(&direct, want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ckpt, direct.Bytes()) {
			t.Fatalf("version %d corrupted by page sharing", v)
		}
	}
}

func TestVersionIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := openMem(t, 4096)
	ctx := context.Background()
	if _, ok := r.Latest("taste"); ok {
		t.Fatal("Latest on empty registry")
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Publish(ctx, "taste", params(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Publish(ctx, "other", params(rng)); err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Latest("taste"); !ok || v != 3 {
		t.Fatalf("Latest = %d, %v", v, ok)
	}
	if vs := r.Versions("taste"); len(vs) != 3 || vs[0] != 1 || vs[2] != 3 {
		t.Fatalf("Versions = %v", vs)
	}
	if ms := r.Models(); len(ms) != 2 || ms[0] != "other" || ms[1] != "taste" {
		t.Fatalf("Models = %v", ms)
	}
	if _, err := r.Publish(ctx, "", params(rng)); err == nil {
		t.Fatal("want error for empty name")
	}
}

// TestJournalReplayAcrossProcesses simulates train-then-serve: one registry
// publishes into a journal dir, a second registry (fresh server, as a new
// process would have) opens the same dir and sees every version and page.
func TestJournalReplayAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(4))
	base := params(rng)
	ctx := context.Background()

	w, err := Open(simdb.NewServer(simdb.NoLatency), dir, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Publish(ctx, "taste", base); err != nil {
		t.Fatal(err)
	}
	wantCkpt, err := w.Checkpoint(ctx, "taste", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rd, err := Open(simdb.NewServer(simdb.NoLatency), dir, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if v, ok := rd.Latest("taste"); !ok || v != 1 {
		t.Fatalf("replayed Latest = %d, %v", v, ok)
	}
	got, err := rd.Checkpoint(ctx, "taste", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantCkpt) {
		t.Fatal("replayed checkpoint differs")
	}
	// Publishing after replay continues the version sequence and dedups
	// against replayed pages.
	res, err := rd.Publish(ctx, "taste", base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || res.NewPages != 0 {
		t.Fatalf("post-replay publish: %+v", res)
	}
}

// TestJournalTruncatedTail pins crash tolerance: cutting the logs mid-record
// must lose at most the unfinished version, never fail to open.
func TestJournalTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	ctx := context.Background()
	w, err := Open(simdb.NewServer(simdb.NoLatency), dir, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Publish(ctx, "taste", params(rng)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Publish(ctx, "taste", params(rng)); err != nil {
		t.Fatal(err)
	}
	w.Close()

	for _, name := range []string{pagesLogName, manifestsLogName} {
		path := filepath.Join(dir, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw[:len(raw)-11], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	rd, err := Open(simdb.NewServer(simdb.NoLatency), dir, Options{PageSize: 512})
	if err != nil {
		t.Fatalf("truncated journal must still open: %v", err)
	}
	defer rd.Close()
	// Version 1 survives whole (its pages and manifest precede the cut).
	if _, err := rd.Checkpoint(ctx, "taste", 1); err != nil {
		t.Fatalf("version 1 lost to an unrelated truncation: %v", err)
	}
}
