package registry

import "repro/internal/obs"

// Runtime metric handles (DESIGN.md §9/§15). Byte gauges are synced on
// Stats(), which every metrics scrape path goes through.
var (
	publishesTotal         = obs.Default.Counter("taste_registry_publishes_total")
	pagesWrittenTotal      = obs.Default.Counter("taste_registry_pages_written_total")
	pagesDedupedTotal      = obs.Default.Counter("taste_registry_pages_deduped_total")
	checkpointsServedTotal = obs.Default.Counter("taste_registry_checkpoints_served_total")
	logicalBytesGauge      = obs.Default.Gauge("taste_registry_logical_bytes")
	storedBytesGauge       = obs.Default.Gauge("taste_registry_stored_bytes")
	versionsGauge          = obs.Default.Gauge("taste_registry_versions")
)
