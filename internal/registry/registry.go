// Package registry implements a versioned, deduplicated model checkpoint
// store on top of the simulated database's content-addressed page store.
//
// A published checkpoint is decomposed per tensor: each tensor's raw
// little-endian float64 stream is chunked into fixed-size pages, every page
// is addressed by its sha256, and pages are stored at most once. A manifest
// — small JSON naming the tensor shapes and their page hashes — is what a
// version actually owns. Fine-tuned variants that share most weights with
// their base (feedback adaptation only touches the classifier heads)
// therefore pay storage only for the pages that changed, exactly the
// trade explored by deduplicated model serving over relational databases.
//
// The page store lives in the simulated database, so publishes and
// checkpoint reads pay realistic round trips and show up in the same
// accounting ledger as detection scans. Cross-process durability — training
// publishes in one process, serving loads in another — comes from an
// append-only journal directory replayed on Open; pages are journaled
// before the manifest that references them, so a visible manifest always
// has all of its pages.
package registry

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/simdb"
	"repro/internal/tensor"
)

// DefaultPageSize is the page granularity for checkpoint chunking. 64 KiB
// (8192 float64s) balances dedup resolution against per-page round trips.
const DefaultPageSize = 64 * 1024

// Options configures a Registry.
type Options struct {
	// PageSize is the chunk size in bytes; DefaultPageSize when 0. Smaller
	// pages dedup at finer grain but pay more round trips per publish.
	PageSize int
}

// Registry is a versioned checkpoint store. All methods are safe for
// concurrent use.
type Registry struct {
	store    *simdb.PageStore
	pageSize int

	mu       sync.Mutex
	versions map[string][]int // model name → sorted published versions
	logical  int64            // sum of pre-dedup checkpoint bytes
	jnl      *journal         // nil without a durable directory
}

// Manifest describes one published checkpoint version.
type Manifest struct {
	Name         string        `json:"name"`
	Version      int           `json:"version"`
	Format       int           `json:"format"` // checkpoint format (tensor.SerializeVersion)
	PageSize     int           `json:"page_size"`
	Tensors      []TensorEntry `json:"tensors"`
	LogicalBytes int64         `json:"logical_bytes"`
}

// TensorEntry is one tensor's shape plus its ordered page hashes.
type TensorEntry struct {
	Rows  int      `json:"rows"`
	Cols  int      `json:"cols"`
	Pages []string `json:"pages"`
}

// Open creates a registry over the server's page store. If dir is non-empty
// it is used as a durable journal: existing journal records are replayed
// into the store first (so versions published by another process become
// visible), and subsequent publishes are appended.
func Open(server *simdb.Server, dir string, opts Options) (*Registry, error) {
	r := &Registry{
		store:    server.PageStore(),
		pageSize: opts.PageSize,
		versions: make(map[string][]int),
	}
	if r.pageSize <= 0 {
		r.pageSize = DefaultPageSize
	}
	if dir != "" {
		jnl, err := openJournal(dir, r.store, func(m *Manifest) { r.indexManifest(m) })
		if err != nil {
			return nil, err
		}
		r.jnl = jnl
	}
	return r, nil
}

// indexManifest records a manifest in the in-memory version index.
func (r *Registry) indexManifest(m *Manifest) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.versions[m.Name] = append(r.versions[m.Name], m.Version)
	sort.Ints(r.versions[m.Name])
	r.logical += m.LogicalBytes
}

// Close releases the journal file handles, if any.
func (r *Registry) Close() error {
	if r.jnl != nil {
		return r.jnl.close()
	}
	return nil
}

func manifestKey(name string, version int) string {
	return fmt.Sprintf("%s@%d", name, version)
}

// PublishResult reports what a publish cost.
type PublishResult struct {
	Name         string  `json:"name"`
	Version      int     `json:"version"`
	Pages        int     `json:"pages"`           // pages referenced by the manifest
	NewPages     int     `json:"new_pages"`       // pages actually stored
	LogicalBytes int64   `json:"logical_bytes"`   // checkpoint size before dedup
	StoredBytes  int64   `json:"stored_bytes"`    // bytes newly written to the store
	SharedFrac   float64 `json:"shared_fraction"` // fraction of bytes deduped away
}

// Publish stores the given parameter tensors as the next version of name and
// returns what it cost. Pages already present in the store — typically the
// frozen encoder of a fine-tuned variant — are referenced, not rewritten.
func (r *Registry) Publish(ctx context.Context, name string, ts []*tensor.Tensor) (*PublishResult, error) {
	if name == "" {
		return nil, fmt.Errorf("registry: empty model name")
	}
	r.mu.Lock()
	version := 1
	if vs := r.versions[name]; len(vs) > 0 {
		version = vs[len(vs)-1] + 1
	}
	r.mu.Unlock()

	man := &Manifest{
		Name:     name,
		Version:  version,
		Format:   tensor.SerializeVersion,
		PageSize: r.pageSize,
	}
	res := &PublishResult{Name: name, Version: version}
	buf := make([]byte, 0, r.pageSize)
	for _, t := range ts {
		entry := TensorEntry{Rows: t.Rows, Cols: t.Cols}
		raw := encodeFloats(t.Data)
		man.LogicalBytes += int64(len(raw))
		for off := 0; off < len(raw); off += r.pageSize {
			end := off + r.pageSize
			if end > len(raw) {
				end = len(raw)
			}
			buf = append(buf[:0], raw[off:end]...)
			hash := simdb.PageHash(sha256.Sum256(buf))
			added, err := r.store.PutPage(ctx, hash, buf)
			if err != nil {
				return nil, fmt.Errorf("registry: store page: %w", err)
			}
			res.Pages++
			if added {
				res.NewPages++
				res.StoredBytes += int64(end - off)
				pagesWrittenTotal.Inc()
				if r.jnl != nil {
					if err := r.jnl.appendPage(hash, buf); err != nil {
						return nil, fmt.Errorf("registry: journal page: %w", err)
					}
				}
			} else {
				pagesDedupedTotal.Inc()
			}
			entry.Pages = append(entry.Pages, hex.EncodeToString(hash[:]))
		}
		man.Tensors = append(man.Tensors, entry)
	}
	res.LogicalBytes = man.LogicalBytes
	if man.LogicalBytes > 0 {
		res.SharedFrac = 1 - float64(res.StoredBytes)/float64(man.LogicalBytes)
	}

	manJSON, err := json.Marshal(man)
	if err != nil {
		return nil, fmt.Errorf("registry: marshal manifest: %w", err)
	}
	if err := r.store.PutManifest(ctx, manifestKey(name, version), manJSON); err != nil {
		return nil, err
	}
	if r.jnl != nil {
		if err := r.jnl.appendManifest(manJSON); err != nil {
			return nil, fmt.Errorf("registry: journal manifest: %w", err)
		}
	}
	r.indexManifest(man)
	publishesTotal.Inc()
	return res, nil
}

// GetManifest fetches and decodes the manifest for name@version.
func (r *Registry) GetManifest(ctx context.Context, name string, version int) (*Manifest, error) {
	raw, err := r.store.GetManifest(ctx, manifestKey(name, version))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("registry: decode manifest %s@%d: %w", name, version, err)
	}
	return &m, nil
}

// Checkpoint reassembles name@version into a serialized checkpoint stream,
// verifying every page against its content hash. The result is exactly what
// Model.Save would have produced, so Model.Load's atomic validation applies
// unchanged on the way back in.
func (r *Registry) Checkpoint(ctx context.Context, name string, version int) ([]byte, error) {
	man, err := r.GetManifest(ctx, name, version)
	if err != nil {
		return nil, err
	}
	if man.Format > tensor.SerializeVersion {
		return nil, fmt.Errorf("registry: %s@%d uses checkpoint format %d, this build reads ≤ %d", name, version, man.Format, tensor.SerializeVersion)
	}
	ts := make([]*tensor.Tensor, len(man.Tensors))
	for i, entry := range man.Tensors {
		t := tensor.New(entry.Rows, entry.Cols)
		want := len(t.Data) * 8
		raw := make([]byte, 0, want)
		for _, hs := range entry.Pages {
			var hash simdb.PageHash
			hb, err := hex.DecodeString(hs)
			if err != nil || len(hb) != len(hash) {
				return nil, fmt.Errorf("registry: %s@%d tensor %d: bad page hash %q", name, version, i, hs)
			}
			copy(hash[:], hb)
			page, err := r.store.GetPage(ctx, hash)
			if err != nil {
				return nil, fmt.Errorf("registry: %s@%d tensor %d: %w", name, version, i, err)
			}
			if sha256.Sum256(page) != [32]byte(hash) {
				return nil, fmt.Errorf("registry: %s@%d tensor %d: page %s failed verification", name, version, i, hs)
			}
			raw = append(raw, page...)
		}
		if len(raw) != want {
			return nil, fmt.Errorf("registry: %s@%d tensor %d: have %d bytes, shape %dx%d needs %d", name, version, i, len(raw), entry.Rows, entry.Cols, want)
		}
		decodeFloats(raw, t.Data)
		ts[i] = t
	}
	var out bytes.Buffer
	if err := tensor.WriteTensors(&out, ts); err != nil {
		return nil, err
	}
	checkpointsServedTotal.Inc()
	return out.Bytes(), nil
}

// Latest returns the newest published version of name.
func (r *Registry) Latest(name string) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	vs := r.versions[name]
	if len(vs) == 0 {
		return 0, false
	}
	return vs[len(vs)-1], true
}

// Versions returns the published versions of name in ascending order.
func (r *Registry) Versions(name string) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.versions[name]...)
}

// Models returns all model names with at least one version, sorted.
func (r *Registry) Models() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.versions))
	for name := range r.versions {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats summarizes the registry: version counts plus the dedup economics.
// DedupRatio is logical/stored — 2.0 means the store holds half of what the
// checkpoints sum to; SavedBytes is the absolute saving.
type Stats struct {
	Models       int     `json:"models"`
	Versions     int     `json:"versions"`
	Pages        int     `json:"pages"`
	LogicalBytes int64   `json:"logical_bytes"`
	StoredBytes  int64   `json:"stored_bytes"`
	SavedBytes   int64   `json:"saved_bytes"`
	DedupRatio   float64 `json:"dedup_ratio"`
}

// Stats reports the registry's current storage economics.
func (r *Registry) Stats() Stats {
	ps := r.store.Stats()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{
		Models:       len(r.versions),
		Pages:        ps.Pages,
		LogicalBytes: r.logical,
		StoredBytes:  ps.PageBytes,
	}
	for _, vs := range r.versions {
		s.Versions += len(vs)
	}
	s.SavedBytes = s.LogicalBytes - s.StoredBytes
	if s.StoredBytes > 0 {
		s.DedupRatio = float64(s.LogicalBytes) / float64(s.StoredBytes)
	}
	logicalBytesGauge.Set(s.LogicalBytes)
	storedBytesGauge.Set(s.StoredBytes)
	versionsGauge.Set(int64(s.Versions))
	return s
}

// encodeFloats serializes values as little-endian float64 bytes — the same
// on-the-wire layout WriteTensors uses for tensor data, so a page boundary
// in the registry corresponds byte-for-byte to the checkpoint stream.
func encodeFloats(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func decodeFloats(raw []byte, dst []float64) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
}
