package registry

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/simdb"
)

// journal is the registry's durable redo log: two append-only files under a
// directory, one for pages and one for manifests. Publish appends every new
// page before the manifest that references it, so any manifest visible after
// a crash has all of its pages. Replay is tolerant of a truncated tail —
// a half-written final record is discarded, never fatal — which is all the
// crash-consistency this format needs.
//
//	pages.log:     repeat{ sha256 [32]byte | uint32 len | data }
//	manifests.log: repeat{ uint32 len | manifest JSON }
type journal struct {
	mu    sync.Mutex
	pages *os.File
	mans  *os.File
}

const (
	pagesLogName     = "pages.log"
	manifestsLogName = "manifests.log"
)

// openJournal replays any existing journal in dir into the store (calling
// onManifest for each decoded manifest) and opens both logs for append.
func openJournal(dir string, store *simdb.PageStore, onManifest func(*Manifest)) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: create journal dir: %w", err)
	}
	if err := replayPages(filepath.Join(dir, pagesLogName), store); err != nil {
		return nil, err
	}
	if err := replayManifests(filepath.Join(dir, manifestsLogName), store, onManifest); err != nil {
		return nil, err
	}
	pages, err := os.OpenFile(filepath.Join(dir, pagesLogName), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("registry: open pages log: %w", err)
	}
	mans, err := os.OpenFile(filepath.Join(dir, manifestsLogName), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		pages.Close()
		return nil, fmt.Errorf("registry: open manifests log: %w", err)
	}
	return &journal{pages: pages, mans: mans}, nil
}

// truncatedTail reports whether err marks a record cut off mid-write — the
// expected shape of a crash, ending replay without error.
func truncatedTail(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

func replayPages(path string, store *simdb.PageStore) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("registry: open pages log: %w", err)
	}
	defer f.Close()
	r := newByteReader(f)
	for {
		var hash simdb.PageHash
		if _, err := io.ReadFull(r, hash[:]); err != nil {
			if truncatedTail(err) {
				return nil
			}
			return fmt.Errorf("registry: replay pages: %w", err)
		}
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			if truncatedTail(err) {
				return nil
			}
			return fmt.Errorf("registry: replay pages: %w", err)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			if truncatedTail(err) {
				return nil
			}
			return fmt.Errorf("registry: replay pages: %w", err)
		}
		if sha256.Sum256(data) != [32]byte(hash) {
			// A corrupt record and everything after it is untrustworthy;
			// stop replay at the last verified page.
			return nil
		}
		store.RestorePage(hash, data)
	}
}

func replayManifests(path string, store *simdb.PageStore, onManifest func(*Manifest)) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("registry: open manifests log: %w", err)
	}
	defer f.Close()
	r := newByteReader(f)
	for {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			if truncatedTail(err) {
				return nil
			}
			return fmt.Errorf("registry: replay manifests: %w", err)
		}
		raw := make([]byte, n)
		if _, err := io.ReadFull(r, raw); err != nil {
			if truncatedTail(err) {
				return nil
			}
			return fmt.Errorf("registry: replay manifests: %w", err)
		}
		var m Manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			// Truncation can only hit the last record; a JSON that does not
			// parse means the tail was cut inside a record whose length
			// prefix survived. Stop at the last good manifest.
			return nil
		}
		store.RestoreManifest(manifestKey(m.Name, m.Version), raw)
		onManifest(&m)
	}
}

func (j *journal) appendPage(hash simdb.PageHash, data []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := make([]byte, 0, len(hash)+4+len(data))
	rec = append(rec, hash[:]...)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(data)))
	rec = append(rec, data...)
	_, err := j.pages.Write(rec)
	return err
}

func (j *journal) appendManifest(raw []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := binary.LittleEndian.AppendUint32(nil, uint32(len(raw)))
	rec = append(rec, raw...)
	if _, err := j.mans.Write(rec); err != nil {
		return err
	}
	// A manifest makes a version visible: flush it and the pages written
	// before it so another process opening the journal sees a whole version.
	if err := j.pages.Sync(); err != nil {
		return err
	}
	return j.mans.Sync()
}

func (j *journal) close() error {
	err1 := j.pages.Close()
	err2 := j.mans.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// newByteReader wraps f with buffering for the many small record reads.
func newByteReader(f *os.File) io.Reader { return bufio.NewReader(f) }
