//go:build amd64

package tensor

// Assembly kernels (quant_amd64.s). The pointers address at least
// n (x) and 3·stride+n (w) elements; n is a positive multiple of quantLane.

//go:noescape
func dotQuadAsm(x *int8, w *int8, stride, n int, sums *[4]int32)

//go:noescape
func dotQuadWAsm(x *int16, w *int8, stride, n int, sums *[4]int32)

//go:noescape
func expGridAsm(s *float64, n int, maxv float64, pq *int16) int64

//go:noescape
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbvAsm() (eax, edx uint32)

// haveQuantKernels gates selection of the quantized path: without AVX2 the
// scalar int8 fallbacks are slower than the fp64 kernels, so quantization
// stays off. Tests flip it to exercise the generic kernels.
var haveQuantKernels = detectAVX2()

// detectAVX2 reports AVX2 support with OS-enabled YMM state (OSXSAVE set
// and XCR0 advertising XMM+YMM), the requirement for the VPMADDWD kernels.
func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	if c&osxsave == 0 {
		return false
	}
	xcr0, _ := xgetbvAsm()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuidAsm(7, 0)
	return b&(1<<5) != 0 // AVX2
}

func dotQuad(x, w []int8, stride, n int, sums *[4]int32) {
	if haveQuantKernels {
		dotQuadAsm(&x[0], &w[0], stride, n, sums)
		return
	}
	dotQuadGeneric(x, w, stride, n, sums)
}

func dotQuadW(x []int16, w []int8, stride, n int, sums *[4]int32) {
	if haveQuantKernels {
		dotQuadWAsm(&x[0], &w[0], stride, n, sums)
		return
	}
	dotQuadWGeneric(x, w, stride, n, sums)
}

func expGrid(s []float64, maxv float64, pq []int16) int {
	if !haveQuantKernels || len(s) < 4 {
		return expGridGeneric(s, maxv, pq)
	}
	n4 := len(s) &^ 3
	sum := int(expGridAsm(&s[0], n4, maxv, &pq[0]))
	if n4 < len(s) {
		sum += expGridGeneric(s[n4:], maxv, pq[n4:])
	}
	return sum
}
