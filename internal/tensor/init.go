package tensor

import (
	"math"
	"math/rand"
)

// XavierUniform fills t with values drawn uniformly from
// [−√(6/(fanIn+fanOut)), +√(6/(fanIn+fanOut))], the Glorot initialization
// used for the linear projections in the Transformer blocks.
func XavierUniform(t *Tensor, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(t.Rows+t.Cols))
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// NormalInit fills t with N(0, std²) values; used for embedding tables
// (BERT-style std = 0.02).
func NormalInit(t *Tensor, std float64, rng *rand.Rand) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// ConstantInit fills t with the given value (e.g. 1 for layer-norm gamma).
func ConstantInit(t *Tensor, v float64) {
	t.Fill(v)
}
