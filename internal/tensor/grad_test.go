package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

// gomaxprocs temporarily raises GOMAXPROCS so the sharded kernels actually
// split work even on single-CPU runners (parallelRows caps shard count at
// GOMAXPROCS), restoring the old value on cleanup.
func gomaxprocs(t testing.TB, n int) {
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// adamFixture builds a parameter set shaped like a repro-scale model
// (embedding tables large enough to cross the sharding threshold) with
// deterministic weights and gradients.
func adamFixture(seed int64) []*Tensor {
	rng := rand.New(rand.NewSource(seed))
	params := []*Tensor{Param(3000, 64), Param(64, 3000), Param(256, 64), Param(1, 64), Param(1, 2)}
	for _, p := range params {
		XavierUniform(p, rng)
		p.ensureGrad()
		for i := range p.Grad {
			p.Grad[i] = rng.NormFloat64() * 0.05
		}
	}
	return params
}

func TestAdamStepParallelBitExact(t *testing.T) {
	gomaxprocs(t, 8)
	seq := adamFixture(7)
	par := adamFixture(7)
	optSeq := NewAdam(seq, 1.3e-3)
	optPar := NewAdam(par, 1.3e-3)
	for _, o := range []*Adam{optSeq, optPar} {
		o.ClipNorm = 1
		o.WeightDecay = 1e-4
	}
	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 4; step++ {
		// Refresh gradients identically on both sides.
		base := rng.Int63()
		for _, params := range [][]*Tensor{seq, par} {
			g := rand.New(rand.NewSource(base))
			for _, p := range params {
				for i := range p.Grad {
					p.Grad[i] = g.NormFloat64()
				}
			}
		}
		SetParallelism(1)
		optSeq.Step()
		SetParallelism(8)
		optPar.Step()
		SetParallelism(DefaultParallelism())
		if optSeq.LastGradNorm() != optPar.LastGradNorm() {
			t.Fatalf("step %d: grad norm differs: %v vs %v", step, optSeq.LastGradNorm(), optPar.LastGradNorm())
		}
		for i := range seq {
			for j := range seq[i].Data {
				if seq[i].Data[j] != par[i].Data[j] {
					t.Fatalf("step %d: param %d elem %d differs: %v vs %v", step, i, j, seq[i].Data[j], par[i].Data[j])
				}
			}
			for j := range optSeq.m[i] {
				if optSeq.m[i][j] != optPar.m[i][j] || optSeq.v[i][j] != optPar.v[i][j] {
					t.Fatalf("step %d: optimizer state %d/%d differs", step, i, j)
				}
			}
		}
	}
}

func TestZeroGradsParallelClears(t *testing.T) {
	gomaxprocs(t, 8)
	params := adamFixture(3)
	ZeroGrads(params)
	for i, p := range params {
		for j, g := range p.Grad {
			if g != 0 {
				t.Fatalf("param %d elem %d not zeroed: %v", i, j, g)
			}
		}
	}
	// nil grads are skipped.
	params[0].Grad = nil
	ZeroGrads(params)
}

func TestAccumAndScaleGradsBitExact(t *testing.T) {
	gomaxprocs(t, 8)
	dst := adamFixture(11)
	src := adamFixture(12)
	// Sequential reference.
	want := make([][]float64, len(dst))
	for i, p := range dst {
		want[i] = append([]float64(nil), p.Grad...)
		for j, g := range src[i].Grad {
			want[i][j] = (want[i][j] + g) * 0.25
		}
	}
	AccumGrads(dst, src)
	ScaleGrads(dst, 0.25)
	for i, p := range dst {
		for j, g := range p.Grad {
			if g != want[i][j] {
				t.Fatalf("param %d elem %d: got %v want %v", i, j, g, want[i][j])
			}
		}
	}
}

func TestAccumGradsAllocatesAndSkipsNil(t *testing.T) {
	dst := []*Tensor{Param(4, 4), Param(2, 2)}
	src := []*Tensor{Param(4, 4), Param(2, 2)}
	src[0].ensureGrad()
	for i := range src[0].Grad {
		src[0].Grad[i] = float64(i)
	}
	// src[1].Grad stays nil.
	AccumGrads(dst, src)
	if dst[0].Grad == nil {
		t.Fatal("dst grad not allocated")
	}
	for i, g := range dst[0].Grad {
		if g != float64(i) {
			t.Fatalf("elem %d: got %v", i, g)
		}
	}
	if dst[1].Grad != nil {
		t.Fatal("nil src grad should leave dst untouched")
	}
}

func TestAliasDataSharesBuffers(t *testing.T) {
	canon := []*Tensor{Param(3, 3), Param(1, 3)}
	replica := []*Tensor{Param(3, 3), Param(1, 3)}
	canon[0].Data[0] = 42
	AliasData(replica, canon)
	if replica[0].Data[0] != 42 {
		t.Fatal("replica does not see canonical data")
	}
	canon[0].Data[1] = 7
	if replica[0].Data[1] != 7 {
		t.Fatal("replica does not alias canonical buffer")
	}
	// Gradients stay independent.
	replica[0].ensureGrad()
	replica[0].Grad[0] = 1
	if canon[0].Grad != nil {
		t.Fatal("aliasing must not share gradient state")
	}
}

func TestAliasDataPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AliasData([]*Tensor{Param(2, 2)}, []*Tensor{Param(2, 3)})
}

func TestGradArenaAttachZeroRelease(t *testing.T) {
	params := []*Tensor{Param(100, 100), Param(1, 8)}
	arena := AttachGrads(params)
	for i, p := range params {
		if p.Grad == nil || len(p.Grad) != len(p.Data) {
			t.Fatalf("param %d: grad not attached", i)
		}
		for _, g := range p.Grad {
			if g != 0 {
				t.Fatal("attached grads must start zeroed")
			}
		}
	}
	params[0].Grad[0] = 5
	arena.Zero()
	if params[0].Grad[0] != 0 {
		t.Fatal("Zero did not clear")
	}
	arena.Release()
	for i, p := range params {
		if p.Grad != nil || p.gradPooled {
			t.Fatalf("param %d: grad not released", i)
		}
	}
}
