package tensor

import (
	"fmt"
	"math"
)

// MatMul returns a × b, with autograd support.
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := result(a.Rows, b.Cols, []*Tensor{a, b}, nil)
	matmulInto(out.Data, a.Data, b.Data, a.Rows, a.Cols, b.Cols)
	if out.requiresGrad {
		out.backward = func() {
			// dA = dOut × Bᵀ ; dB = Aᵀ × dOut
			if a.requiresGrad {
				a.ensureGrad()
				matmulNTInto(a.Grad, out.Grad, b.Data, a.Rows, b.Cols, a.Cols, true)
			}
			if b.requiresGrad {
				b.ensureGrad()
				matmulTNInto(b.Grad, a.Data, out.Grad, a.Cols, a.Rows, b.Cols, true)
			}
		}
	}
	return out
}

// MatMulNT returns a × bᵀ. b is rows×cols with b.Cols == a.Cols.
func MatMulNT(a, b *Tensor) *Tensor {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulNT shape mismatch %dx%d × (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := result(a.Rows, b.Rows, []*Tensor{a, b}, nil)
	matmulNTInto(out.Data, a.Data, b.Data, a.Rows, a.Cols, b.Rows, false)
	if out.requiresGrad {
		out.backward = func() {
			// out = A Bᵀ: dA = dOut × B ; dB = dOutᵀ × A
			if a.requiresGrad {
				a.ensureGrad()
				matmulAccInto(a.Grad, out.Grad, b.Data, a.Rows, b.Rows, a.Cols)
			}
			if b.requiresGrad {
				b.ensureGrad()
				matmulTNInto(b.Grad, out.Grad, a.Data, b.Rows, a.Rows, a.Cols, true)
			}
		}
	}
	return out
}

// matmulInto computes out = A(m×k) × B(k×n), overwriting out. Output rows
// are sharded across the runtime's worker pool and the inner loop is
// register-blocked four ranks at a time (mulRowRange); each row's
// accumulation order is identical to the scalar one-rank-at-a-time kernel,
// so results are bit-exact regardless of parallelism or blocking.
func matmulInto(out, a, b []float64, m, k, n int) {
	parallelRows(m, k*n, func(lo, hi int) {
		mulRowRange(out, a, b, lo, hi, k, n, n, 0, true)
	})
}

// matmulAccInto computes out += A(m×k) × B(k×n), row-sharded like matmulInto.
func matmulAccInto(out, a, b []float64, m, k, n int) {
	parallelRows(m, k*n, func(lo, hi int) {
		mulRowRange(out, a, b, lo, hi, k, n, n, 0, false)
	})
}

// ntTileRows is the B-row tile width of the NT kernel: a tile of 48 rows ×
// 64-ish columns of float64 stays L1/L2-resident while it is reused against
// every A row of a shard.
const ntTileRows = 48

// matmulNTInto computes out (+)= A(m×k) × B(n×k)ᵀ — the attention-score
// kernel. Rows of out are sharded across the worker pool and the inner
// loops are cache-blocked over B's rows so each tile of B is reused across
// the shard's A rows instead of streaming the whole of B per row.
func matmulNTInto(out, a, b []float64, m, k, n int, accumulate bool) {
	parallelRows(m, k*n, func(lo, hi int) {
		for j0 := 0; j0 < n; j0 += ntTileRows {
			j1 := j0 + ntTileRows
			if j1 > n {
				j1 = n
			}
			for i := lo; i < hi; i++ {
				arow := a[i*k : (i+1)*k]
				orow := out[i*n : (i+1)*n]
				for j := j0; j < j1; j++ {
					s := dot(arow, b[j*k:(j+1)*k])
					if accumulate {
						orow[j] += s
					} else {
						orow[j] = s
					}
				}
			}
		}
	})
}

// dot computes the inner product of equal-length slices with 4-way
// unrolling; this kernel dominates attention-score computation.
func dot(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(a)
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// axpy computes y += alpha * x with 4-way unrolling; this kernel dominates
// the remaining matmul variants.
func axpy(alpha float64, x, y []float64) {
	n := len(y)
	x = x[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// matmulTNInto computes out (+)= A(k×m)ᵀ × B(k×n), producing m×n. The
// sequential path keeps the cache-friendly p-major loop; when sharded, each
// worker owns a disjoint range of output rows and accumulates over p in the
// same ascending order, so both paths round identically.
func matmulTNInto(out, a, b []float64, m, k, n int, accumulate bool) {
	parallelRows(m, k*n, func(lo, hi int) {
		if lo == 0 && hi == m {
			if !accumulate {
				for i := range out[:m*n] {
					out[i] = 0
				}
			}
			for p := 0; p < k; p++ {
				arow := a[p*m : (p+1)*m]
				brow := b[p*n : (p+1)*n]
				for i, av := range arow {
					if av == 0 {
						continue
					}
					axpy(av, brow, out[i*n:(i+1)*n])
				}
			}
			return
		}
		for i := lo; i < hi; i++ {
			orow := out[i*n : (i+1)*n]
			if !accumulate {
				for x := range orow {
					orow[x] = 0
				}
			}
			for p := 0; p < k; p++ {
				av := a[p*m+i]
				if av == 0 {
					continue
				}
				axpy(av, b[p*n:(p+1)*n], orow)
			}
		}
	})
}

// Add returns a + b (same shape).
func Add(a, b *Tensor) *Tensor {
	checkSameShape("Add", a, b)
	out := result(a.Rows, a.Cols, []*Tensor{a, b}, nil)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i, g := range out.Grad {
					a.Grad[i] += g
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				for i, g := range out.Grad {
					b.Grad[i] += g
				}
			}
		}
	}
	return out
}

// Sub returns a − b (same shape).
func Sub(a, b *Tensor) *Tensor {
	checkSameShape("Sub", a, b)
	out := result(a.Rows, a.Cols, []*Tensor{a, b}, nil)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i, g := range out.Grad {
					a.Grad[i] += g
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				for i, g := range out.Grad {
					b.Grad[i] -= g
				}
			}
		}
	}
	return out
}

// Mul returns the elementwise product a ⊙ b (same shape).
func Mul(a, b *Tensor) *Tensor {
	checkSameShape("Mul", a, b)
	out := result(a.Rows, a.Cols, []*Tensor{a, b}, nil)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i, g := range out.Grad {
					a.Grad[i] += g * b.Data[i]
				}
			}
			if b.requiresGrad {
				b.ensureGrad()
				for i, g := range out.Grad {
					b.Grad[i] += g * a.Data[i]
				}
			}
		}
	}
	return out
}

// AddRowVector adds a 1×cols bias vector to every row of a.
func AddRowVector(a, bias *Tensor) *Tensor {
	if bias.Rows != 1 || bias.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector bias %dx%d for matrix %dx%d", bias.Rows, bias.Cols, a.Rows, a.Cols))
	}
	out := result(a.Rows, a.Cols, []*Tensor{a, bias}, nil)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j, v := range arow {
			orow[j] = v + bias.Data[j]
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			if a.requiresGrad {
				a.ensureGrad()
				for i, g := range out.Grad {
					a.Grad[i] += g
				}
			}
			if bias.requiresGrad {
				bias.ensureGrad()
				for i := 0; i < out.Rows; i++ {
					grow := out.Grad[i*out.Cols : (i+1)*out.Cols]
					for j, g := range grow {
						bias.Grad[j] += g
					}
				}
			}
		}
	}
	return out
}

// Scale returns a × s for scalar s.
func Scale(a *Tensor, s float64) *Tensor {
	out := result(a.Rows, a.Cols, []*Tensor{a}, nil)
	for i, v := range a.Data {
		out.Data[i] = v * s
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i, g := range out.Grad {
				a.Grad[i] += g * s
			}
		}
	}
	return out
}

// AddScalar returns a + s elementwise.
func AddScalar(a *Tensor, s float64) *Tensor {
	out := result(a.Rows, a.Cols, []*Tensor{a}, nil)
	for i, v := range a.Data {
		out.Data[i] = v + s
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i, g := range out.Grad {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// ConcatRows stacks tensors vertically; all must share the column count.
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatRows requires at least one tensor")
	}
	cols := ts[0].Cols
	rows := 0
	for _, t := range ts {
		if t.Cols != cols {
			panic(fmt.Sprintf("tensor: ConcatRows column mismatch %d vs %d", t.Cols, cols))
		}
		rows += t.Rows
	}
	out := result(rows, cols, ts, nil)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:off+len(t.Data)], t.Data)
		off += len(t.Data)
	}
	if out.requiresGrad {
		out.backward = func() {
			off := 0
			for _, t := range ts {
				if t.requiresGrad {
					t.ensureGrad()
					for i := range t.Data {
						t.Grad[i] += out.Grad[off+i]
					}
				}
				off += len(t.Data)
			}
		}
	}
	return out
}

// ConcatCols joins tensors horizontally; all must share the row count.
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatCols requires at least one tensor")
	}
	rows := ts[0].Rows
	cols := 0
	for _, t := range ts {
		if t.Rows != rows {
			panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", t.Rows, rows))
		}
		cols += t.Cols
	}
	out := result(rows, cols, ts, nil)
	for i := 0; i < rows; i++ {
		off := 0
		orow := out.Row(i)
		for _, t := range ts {
			copy(orow[off:off+t.Cols], t.Row(i))
			off += t.Cols
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			for i := 0; i < rows; i++ {
				off := 0
				grow := out.Grad[i*cols : (i+1)*cols]
				for _, t := range ts {
					if t.requiresGrad {
						t.ensureGrad()
						trow := t.Grad[i*t.Cols : (i+1)*t.Cols]
						for j := range trow {
							trow[j] += grow[off+j]
						}
					}
					off += t.Cols
				}
			}
		}
	}
	return out
}

// SliceRows returns rows [from, to) of a as a new tensor.
func SliceRows(a *Tensor, from, to int) *Tensor {
	if from < 0 || to > a.Rows || from >= to {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) of %d rows", from, to, a.Rows))
	}
	out := result(to-from, a.Cols, []*Tensor{a}, nil)
	copy(out.Data, a.Data[from*a.Cols:to*a.Cols])
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			base := from * a.Cols
			for i, g := range out.Grad {
				a.Grad[base+i] += g
			}
		}
	}
	return out
}

// SliceCols returns columns [from, to) of a as a new tensor.
func SliceCols(a *Tensor, from, to int) *Tensor {
	if from < 0 || to > a.Cols || from >= to {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) of %d cols", from, to, a.Cols))
	}
	w := to - from
	out := result(a.Rows, w, []*Tensor{a}, nil)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i), a.Row(i)[from:to])
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				grow := out.Grad[i*w : (i+1)*w]
				arow := a.Grad[i*a.Cols : (i+1)*a.Cols]
				for j, g := range grow {
					arow[from+j] += g
				}
			}
		}
	}
	return out
}

// PickRows gathers the given rows of a (with repetition allowed) into a new
// tensor; it is the core of embedding lookup.
func PickRows(a *Tensor, idx []int) *Tensor {
	out := result(len(idx), a.Cols, []*Tensor{a}, nil)
	for i, r := range idx {
		if r < 0 || r >= a.Rows {
			panic(fmt.Sprintf("tensor: PickRows index %d out of %d rows", r, a.Rows))
		}
		copy(out.Row(i), a.Row(r))
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i, r := range idx {
				grow := out.Grad[i*out.Cols : (i+1)*out.Cols]
				arow := a.Grad[r*a.Cols : (r+1)*a.Cols]
				for j, g := range grow {
					arow[j] += g
				}
			}
		}
	}
	return out
}

// MeanRows returns a 1×cols tensor holding the column means.
func MeanRows(a *Tensor) *Tensor {
	out := result(1, a.Cols, []*Tensor{a}, nil)
	for i := 0; i < a.Rows; i++ {
		for j, v := range a.Row(i) {
			out.Data[j] += v
		}
	}
	inv := 1.0 / float64(a.Rows)
	for j := range out.Data {
		out.Data[j] *= inv
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				arow := a.Grad[i*a.Cols : (i+1)*a.Cols]
				for j, g := range out.Grad {
					arow[j] += g * inv
				}
			}
		}
	}
	return out
}

// Sum reduces the whole tensor to a 1×1 scalar.
func Sum(a *Tensor) *Tensor {
	out := result(1, 1, []*Tensor{a}, nil)
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	out.Data[0] = s
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			g := out.Grad[0]
			for i := range a.Grad {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// Mean reduces the whole tensor to its scalar mean.
func Mean(a *Tensor) *Tensor {
	out := Sum(a)
	return Scale(out, 1.0/float64(len(a.Data)))
}

func checkSameShape(op string, a, b *Tensor) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// SoftmaxRows applies softmax independently to each row, with optional
// additive mask applied before normalization (mask may be nil). Mask entries
// of -Inf remove a position entirely.
func SoftmaxRows(a *Tensor, mask *Tensor) *Tensor {
	if mask != nil {
		checkSameShape("SoftmaxRows mask", a, mask)
	}
	parents := []*Tensor{a}
	out := result(a.Rows, a.Cols, parents, nil)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		maxv := math.Inf(-1)
		for j, v := range arow {
			if mask != nil {
				v += mask.At(i, j)
			}
			orow[j] = v
			if v > maxv {
				maxv = v
			}
		}
		if math.IsInf(maxv, -1) {
			// Entire row masked (all -Inf): exp(-Inf − -Inf) would be NaN.
			// Emit zeros; the backward pass skips these rows.
			for j := range orow {
				orow[j] = 0
			}
			continue
		}
		sum := 0.0
		for j, v := range orow {
			e := math.Exp(v - maxv)
			orow[j] = e
			sum += e
		}
		if sum == 0 {
			// Entire row masked; emit uniform zeros to avoid NaN.
			continue
		}
		inv := 1.0 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				orow := out.Data[i*out.Cols : (i+1)*out.Cols]
				grow := out.Grad[i*out.Cols : (i+1)*out.Cols]
				arow := a.Grad[i*a.Cols : (i+1)*a.Cols]
				// Fully-masked rows were emitted as all zeros; they carry no
				// gradient, and an upstream ±Inf grad would otherwise turn
				// 0·(g − dot) into NaN.
				rowSum := 0.0
				for _, y := range orow {
					rowSum += y
				}
				if rowSum == 0 {
					continue
				}
				// dL/dx_j = y_j (g_j − Σ_k g_k y_k)
				dot := 0.0
				for j, g := range grow {
					dot += g * orow[j]
				}
				for j := range arow {
					arow[j] += orow[j] * (grow[j] - dot)
				}
			}
		}
	}
	return out
}

// Log applies the natural logarithm elementwise; inputs must be positive.
func Log(a *Tensor) *Tensor {
	out := result(a.Rows, a.Cols, []*Tensor{a}, nil)
	for i, v := range a.Data {
		out.Data[i] = math.Log(v)
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i, g := range out.Grad {
				a.Grad[i] += g / a.Data[i]
			}
		}
	}
	return out
}

// Reciprocal computes 1/x elementwise.
func Reciprocal(a *Tensor) *Tensor {
	out := result(a.Rows, a.Cols, []*Tensor{a}, nil)
	for i, v := range a.Data {
		out.Data[i] = 1 / v
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i, g := range out.Grad {
				y := out.Data[i]
				a.Grad[i] -= g * y * y
			}
		}
	}
	return out
}
