// Gradient plumbing for the data-parallel training runtime: helpers that
// let several gradient workers run forward+backward over shared weights
// without ever writing the same Tensor.Grad concurrently.
//
// The pattern (internal/train): worker 0 trains against the canonical model
// directly; every other worker builds a replica model whose parameter
// tensors alias the canonical Data buffers (AliasData) but own their Grad
// buffers, drawn from the PR 1 buffer arena (AttachGrads). After each
// mini-batch the trainer reduces the workers' gradients into the canonical
// parameters in a fixed tree order (AccumGrads) and takes one optimizer
// step, so results are bit-reproducible for a given (seed, workers) pair.
package tensor

import "fmt"

// AliasData points each dst parameter's Data at the matching src
// parameter's buffer, so a replica model shares the canonical weights
// (reads see every optimizer step) while keeping its own gradient state.
// Panics on length or shape mismatch.
func AliasData(dst, src []*Tensor) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: AliasData length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, d := range dst {
		s := src[i]
		if d.Rows != s.Rows || d.Cols != s.Cols {
			panic(fmt.Sprintf("tensor: AliasData param %d shape %dx%d vs %dx%d", i, d.Rows, d.Cols, s.Rows, s.Cols))
		}
		d.Data = s.Data
	}
}

// AccumGrads adds each src parameter's gradient into the matching dst
// parameter's gradient, allocating dst buffers on demand; src entries with
// nil gradients are skipped. Large gradients are sharded across the runtime
// worker pool — the update is elementwise, so the result is bitwise
// identical to the sequential path.
func AccumGrads(dst, src []*Tensor) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: AccumGrads length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, s := range src {
		if s.Grad == nil {
			continue
		}
		d := dst[i]
		if len(d.Data) != len(s.Data) {
			panic(fmt.Sprintf("tensor: AccumGrads param %d size %d vs %d", i, len(d.Data), len(s.Data)))
		}
		d.ensureGrad()
		dg, sg := d.Grad, s.Grad
		parallelRows(len(sg), 1, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				dg[j] += sg[j]
			}
		})
	}
}

// ScaleGrads multiplies every present gradient by s (sharded, elementwise,
// bit-exact under any parallelism). Used to average accumulated worker
// gradients before an optimizer step and by gradient clipping.
func ScaleGrads(params []*Tensor, s float64) {
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		g := p.Grad
		parallelRows(len(g), 1, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				g[j] *= s
			}
		})
	}
}

// ZeroGrads clears every present gradient, sharding large buffers across
// the runtime worker pool.
func ZeroGrads(params []*Tensor) {
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		g := p.Grad
		parallelRows(len(g), 1, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				g[j] = 0
			}
		})
	}
}

// GradArena pins pooled gradient buffers onto a gradient worker's replica
// parameters: each param gets a zeroed Grad slice drawn from the buffer
// arena, so per-worker gradient state recycles the same pool as op outputs
// instead of growing the heap per worker. Release returns the buffers.
type GradArena struct {
	params []*Tensor
}

// AttachGrads allocates a pooled, zeroed gradient buffer for every param
// that lacks one and returns the arena managing them.
func AttachGrads(params []*Tensor) *GradArena {
	for _, p := range params {
		if p.Grad == nil {
			p.Grad, p.gradPooled = allocData(len(p.Data))
		}
	}
	return &GradArena{params: params}
}

// Zero clears the arena's gradient buffers (sharded).
func (a *GradArena) Zero() { ZeroGrads(a.params) }

// Release returns the pooled gradient buffers to the arena and detaches
// them from the parameters. The arena must not be used afterwards.
func (a *GradArena) Release() {
	for _, p := range a.params {
		if p.gradPooled && p.Grad != nil {
			freeData(p.Grad)
		}
		p.Grad = nil
		p.gradPooled = false
	}
	a.params = nil
}
