package tensor

import (
	"runtime"
	"sort"
	"sync"
	"testing"
)

// shardRecord runs parallelRows and records every shard actually executed.
func shardRecord(rows, perRow int) [][2]int {
	var mu sync.Mutex
	var shards [][2]int
	parallelRows(rows, perRow, func(lo, hi int) {
		mu.Lock()
		shards = append(shards, [2]int{lo, hi})
		mu.Unlock()
	})
	sort.Slice(shards, func(a, b int) bool { return shards[a][0] < shards[b][0] })
	return shards
}

// checkCover asserts the shards exactly partition [0, rows): disjoint,
// contiguous, nonempty, in order.
func checkCover(t *testing.T, shards [][2]int, rows int) {
	t.Helper()
	next := 0
	for i, s := range shards {
		if s[0] != next || s[1] <= s[0] {
			t.Fatalf("shard %d = %v breaks the partition of [0,%d): shards %v", i, s, rows, shards)
		}
		next = s[1]
	}
	if next != rows {
		t.Fatalf("shards cover [0,%d), want [0,%d): %v", next, rows, shards)
	}
}

// Shard partitioning and balance must be provable independent of the
// runner's core count: GOMAXPROCS is raised to 4 for the duration, so the
// sharding decisions (not the physical parallelism) are what is asserted —
// the point of the test on a single-CPU CI box.
func TestParallelRowsShardPartition(t *testing.T) {
	oldProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(oldProcs)
	withParallelism(t, 4, func() {
		// 64 rows, each one shard-minimum of work: enough total work for 4
		// shards, and the chunking must hand out balanced ceil(64/4)=16-row
		// shards.
		shards := shardRecord(64, shardMinMulAdds)
		checkCover(t, shards, 64)
		if len(shards) != 4 {
			t.Fatalf("got %d shards, want 4: %v", len(shards), shards)
		}
		for i, s := range shards {
			if s[1]-s[0] != 16 {
				t.Fatalf("shard %d = %v, want exactly 16 rows", i, s)
			}
		}

		// Rows bound the shard count: 3 huge rows can only make 3 shards.
		shards = shardRecord(3, 100*shardMinMulAdds)
		checkCover(t, shards, 3)
		if len(shards) != 3 {
			t.Fatalf("got %d shards for 3 rows, want 3: %v", len(shards), shards)
		}

		// Below the parallel threshold everything stays on one shard.
		shards = shardRecord(64, 1)
		checkCover(t, shards, 64)
		if len(shards) != 1 {
			t.Fatalf("tiny kernel got %d shards, want 1: %v", len(shards), shards)
		}

		// Work smaller than w shard-minimums limits the shard count: twice
		// the minimum yields exactly 2 shards even with 4 workers.
		shards = shardRecord(64, (2*shardMinMulAdds)/64)
		if total := 64 * ((2 * shardMinMulAdds) / 64); total >= parallelMulAdds {
			checkCover(t, shards, 64)
			if len(shards) != 2 {
				t.Fatalf("got %d shards for 2 minimums of work, want 2: %v", len(shards), shards)
			}
		}
	})

	// The GOMAXPROCS cap must win over the parallelism setting: with one
	// scheduler slot, "parallel" sharding is pure overhead, so everything
	// runs as one shard.
	runtime.GOMAXPROCS(1)
	withParallelism(t, 4, func() {
		shards := shardRecord(64, shardMinMulAdds)
		checkCover(t, shards, 64)
		if len(shards) != 1 {
			t.Fatalf("GOMAXPROCS=1 got %d shards, want 1: %v", len(shards), shards)
		}
	})
}

// Per-shard work counting: every row's work unit must be executed exactly
// once regardless of how the rows are sharded (no drops, no double runs).
func TestParallelRowsWorkExactlyOnce(t *testing.T) {
	oldProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(oldProcs)
	withParallelism(t, 4, func() {
		for _, rows := range []int{1, 2, 7, 64, 257} {
			counts := make([]int32, rows)
			var mu sync.Mutex
			parallelRows(rows, shardMinMulAdds, func(lo, hi int) {
				mu.Lock()
				for i := lo; i < hi; i++ {
					counts[i]++
				}
				mu.Unlock()
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("rows=%d: row %d executed %d times, want exactly once", rows, i, c)
				}
			}
		}
	})
}
