// AVX2 int8 dot kernels for the quantized inference fast path. Both
// kernels compute four dot products at once — one int8/int16 activation row
// against four consecutive rows of a quantized weight pack — via
// sign-extend (VPMOVSXBW) and pairwise multiply-add (VPMADDWD) into four
// int32 accumulator vectors, horizontally reduced at the end. n must be a
// positive multiple of 16; stride is the element distance between
// consecutive weight rows.

#include "textflag.h"

// func dotQuadAsm(x *int8, w *int8, stride, n int, sums *[4]int32)
// sums[r] = Σ_{k<n} x[k]·w[r·stride+k] for r = 0..3.
TEXT ·dotQuadAsm(SB), NOSPLIT, $0-40
	MOVQ x+0(FP), SI
	MOVQ w+8(FP), DI
	MOVQ stride+16(FP), R8
	MOVQ n+24(FP), CX
	MOVQ sums+32(FP), R9
	MOVQ DI, R10
	LEAQ (DI)(R8*1), R11
	LEAQ (DI)(R8*2), R12
	LEAQ (R11)(R8*2), R13
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	XORQ AX, AX
loop:
	VPMOVSXBW (SI)(AX*1), Y4
	VPMOVSXBW (R10)(AX*1), Y5
	VPMADDWD Y4, Y5, Y5
	VPADDD Y5, Y0, Y0
	VPMOVSXBW (R11)(AX*1), Y6
	VPMADDWD Y4, Y6, Y6
	VPADDD Y6, Y1, Y1
	VPMOVSXBW (R12)(AX*1), Y7
	VPMADDWD Y4, Y7, Y7
	VPADDD Y7, Y2, Y2
	VPMOVSXBW (R13)(AX*1), Y8
	VPMADDWD Y4, Y8, Y8
	VPADDD Y8, Y3, Y3
	ADDQ $16, AX
	CMPQ AX, CX
	JLT loop
	VPHADDD Y1, Y0, Y0
	VPHADDD Y3, Y2, Y2
	VPHADDD Y2, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDD X1, X0, X0
	VMOVDQU X0, (R9)
	VZEROUPPER
	RET

// func dotQuadWAsm(x *int16, w *int8, stride, n int, sums *[4]int32)
// Same reduction with an int16 left operand (attention probabilities):
// x loads 16 words directly, w sign-extends 16 bytes.
TEXT ·dotQuadWAsm(SB), NOSPLIT, $0-40
	MOVQ x+0(FP), SI
	MOVQ w+8(FP), DI
	MOVQ stride+16(FP), R8
	MOVQ n+24(FP), CX
	MOVQ sums+32(FP), R9
	MOVQ DI, R10
	LEAQ (DI)(R8*1), R11
	LEAQ (DI)(R8*2), R12
	LEAQ (R11)(R8*2), R13
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	XORQ AX, AX
loopw:
	VMOVDQU (SI)(AX*2), Y4
	VPMOVSXBW (R10)(AX*1), Y5
	VPMADDWD Y4, Y5, Y5
	VPADDD Y5, Y0, Y0
	VPMOVSXBW (R11)(AX*1), Y6
	VPMADDWD Y4, Y6, Y6
	VPADDD Y6, Y1, Y1
	VPMOVSXBW (R12)(AX*1), Y7
	VPMADDWD Y4, Y7, Y7
	VPADDD Y7, Y2, Y2
	VPMOVSXBW (R13)(AX*1), Y8
	VPMADDWD Y4, Y8, Y8
	VPADDD Y8, Y3, Y3
	ADDQ $16, AX
	CMPQ AX, CX
	JLT loopw
	VPHADDD Y1, Y0, Y0
	VPHADDD Y3, Y2, Y2
	VPHADDD Y2, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDD X1, X0, X0
	VMOVDQU X0, (R9)
	VZEROUPPER
	RET

// Broadcast constants for expGridAsm, each replicated across the four
// float64 lanes so they can be used as 256-bit memory operands.
DATA expClamp<>+0(SB)/8, $0xc03e000000000000  // -30.0: below this the grid rounds to 0
DATA expClamp<>+8(SB)/8, $0xc03e000000000000
DATA expClamp<>+16(SB)/8, $0xc03e000000000000
DATA expClamp<>+24(SB)/8, $0xc03e000000000000
GLOBL expClamp<>(SB), RODATA|NOPTR, $32

DATA expLog2e<>+0(SB)/8, $0x3ff71547652b82fe  // log2(e)
DATA expLog2e<>+8(SB)/8, $0x3ff71547652b82fe
DATA expLog2e<>+16(SB)/8, $0x3ff71547652b82fe
DATA expLog2e<>+24(SB)/8, $0x3ff71547652b82fe
GLOBL expLog2e<>(SB), RODATA|NOPTR, $32

DATA expLn2<>+0(SB)/8, $0x3fe62e42fefa39ef  // ln(2)
DATA expLn2<>+8(SB)/8, $0x3fe62e42fefa39ef
DATA expLn2<>+16(SB)/8, $0x3fe62e42fefa39ef
DATA expLn2<>+24(SB)/8, $0x3fe62e42fefa39ef
GLOBL expLn2<>(SB), RODATA|NOPTR, $32

DATA expC6<>+0(SB)/8, $0x3f56c16c16c16c17  // 1/720
DATA expC6<>+8(SB)/8, $0x3f56c16c16c16c17
DATA expC6<>+16(SB)/8, $0x3f56c16c16c16c17
DATA expC6<>+24(SB)/8, $0x3f56c16c16c16c17
GLOBL expC6<>(SB), RODATA|NOPTR, $32

DATA expC5<>+0(SB)/8, $0x3f81111111111111  // 1/120
DATA expC5<>+8(SB)/8, $0x3f81111111111111
DATA expC5<>+16(SB)/8, $0x3f81111111111111
DATA expC5<>+24(SB)/8, $0x3f81111111111111
GLOBL expC5<>(SB), RODATA|NOPTR, $32

DATA expC4<>+0(SB)/8, $0x3fa5555555555555  // 1/24
DATA expC4<>+8(SB)/8, $0x3fa5555555555555
DATA expC4<>+16(SB)/8, $0x3fa5555555555555
DATA expC4<>+24(SB)/8, $0x3fa5555555555555
GLOBL expC4<>(SB), RODATA|NOPTR, $32

DATA expC3<>+0(SB)/8, $0x3fc5555555555555  // 1/6
DATA expC3<>+8(SB)/8, $0x3fc5555555555555
DATA expC3<>+16(SB)/8, $0x3fc5555555555555
DATA expC3<>+24(SB)/8, $0x3fc5555555555555
GLOBL expC3<>(SB), RODATA|NOPTR, $32

DATA expHalf<>+0(SB)/8, $0x3fe0000000000000  // 0.5 (poly c2 and grid rounding)
DATA expHalf<>+8(SB)/8, $0x3fe0000000000000
DATA expHalf<>+16(SB)/8, $0x3fe0000000000000
DATA expHalf<>+24(SB)/8, $0x3fe0000000000000
GLOBL expHalf<>(SB), RODATA|NOPTR, $32

DATA expOne<>+0(SB)/8, $0x3ff0000000000000  // 1.0
DATA expOne<>+8(SB)/8, $0x3ff0000000000000
DATA expOne<>+16(SB)/8, $0x3ff0000000000000
DATA expOne<>+24(SB)/8, $0x3ff0000000000000
GLOBL expOne<>(SB), RODATA|NOPTR, $32

DATA expGrid<>+0(SB)/8, $0x40cfff8000000000  // 16383.0 (quantProbScale)
DATA expGrid<>+8(SB)/8, $0x40cfff8000000000
DATA expGrid<>+16(SB)/8, $0x40cfff8000000000
DATA expGrid<>+24(SB)/8, $0x40cfff8000000000
GLOBL expGrid<>(SB), RODATA|NOPTR, $32

// func expGridAsm(s *float64, n int, maxv float64, pq *int16) int64
// pq[j] = trunc(e^(s[j]-maxv)·16383 + 0.5) for j < n (n a positive multiple
// of 4), returning Σ pq[j]. Four lanes per iteration: clamp the shifted
// argument at -30 (where the grid already rounds to 0, keeping the exponent
// bit-trick far from the subnormal range), split x = k·ln2 + f with VROUNDPD,
// evaluate the same degree-6 polynomial as fastExp on f, reconstruct 2^k by
// adding k to the exponent bits, then scale onto the 14-bit grid and pack to
// int16. The int32 per-lane sums stay far from overflow: n ≤ quantMaxLkv
// and each term ≤ 16383.
TEXT ·expGridAsm(SB), NOSPLIT, $0-40
	MOVQ s+0(FP), SI
	MOVQ n+8(FP), CX
	MOVQ pq+24(FP), DI
	VBROADCASTSD maxv+16(FP), Y15
	VPXOR X5, X5, X5
	XORQ AX, AX
loope:
	VMOVUPD (SI)(AX*8), Y0
	VSUBPD Y15, Y0, Y0            // x = s - maxv (≤ 0)
	VMAXPD expClamp<>(SB), Y0, Y0 // clamp at -30
	VMULPD expLog2e<>(SB), Y0, Y1
	VROUNDPD $0, Y1, Y1           // k = round-to-nearest(x·log2e)
	VMULPD expLn2<>(SB), Y1, Y3
	VSUBPD Y3, Y0, Y0             // f = x - k·ln2, |f| ≤ ln2/2
	VMULPD expC6<>(SB), Y0, Y2    // Horner: (((((f/720+c5)f+c4)f+c3)f+c2)f+1)f+1
	VADDPD expC5<>(SB), Y2, Y2
	VMULPD Y0, Y2, Y2
	VADDPD expC4<>(SB), Y2, Y2
	VMULPD Y0, Y2, Y2
	VADDPD expC3<>(SB), Y2, Y2
	VMULPD Y0, Y2, Y2
	VADDPD expHalf<>(SB), Y2, Y2
	VMULPD Y0, Y2, Y2
	VADDPD expOne<>(SB), Y2, Y2
	VMULPD Y0, Y2, Y2
	VADDPD expOne<>(SB), Y2, Y2
	VCVTPD2DQY Y1, X3             // k as 4×int32
	VPMOVSXDQ X3, Y3              // widen to int64 lanes
	VPSLLQ $52, Y3, Y3
	VPADDQ Y3, Y2, Y2             // e = poly · 2^k via exponent bits
	VMULPD expGrid<>(SB), Y2, Y2
	VADDPD expHalf<>(SB), Y2, Y2
	VCVTTPD2DQY Y2, X2            // trunc → 4×int32 in [0, 16383]
	VPADDD X2, X5, X5
	VPACKSSDW X2, X2, X2
	MOVQ X2, (DI)(AX*2)           // low 8 bytes: the 4 packed int16
	ADDQ $4, AX
	CMPQ AX, CX
	JLT loope
	VPHADDD X5, X5, X5
	VPHADDD X5, X5, X5
	MOVQ X5, AX
	MOVL AX, AX
	MOVQ AX, ret+32(FP)
	VZEROUPPER
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
