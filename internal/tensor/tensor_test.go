package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewShapes(t *testing.T) {
	a := New(3, 4)
	if a.Rows != 3 || a.Cols != 4 || len(a.Data) != 12 {
		t.Fatalf("unexpected shape: %v", a)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid shape")
		}
	}()
	New(0, 4)
}

func TestFromSlice(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if a.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", a.At(1, 0))
	}
	a.Set(1, 1, 9)
	if a.At(1, 1) != 9 {
		t.Fatal("Set failed")
	}
}

func TestFromRows(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if a.Rows != 3 || a.At(2, 1) != 6 {
		t.Fatalf("FromRows wrong: %+v", a.Data)
	}
}

func TestCloneDetach(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	c := a.Clone()
	c.Data[0] = 42
	if a.Data[0] != 1 {
		t.Fatal("Clone should copy data")
	}
	d := a.Detach()
	d.Data[0] = 7
	if a.Data[0] != 7 {
		t.Fatal("Detach should share data")
	}
}

func TestMatMulForward(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulNTForward(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	bT := FromSlice(2, 3, []float64{7, 9, 11, 8, 10, 12}) // transpose of b above
	c := MatMulNT(a, bT)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMulNT[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

// numericalGrad estimates d(loss)/d(p.Data[idx]) by central differences,
// where forward recomputes the scalar loss from current parameter values.
func numericalGrad(p *Tensor, idx int, forward func() float64) float64 {
	const h = 1e-5
	orig := p.Data[idx]
	p.Data[idx] = orig + h
	up := forward()
	p.Data[idx] = orig - h
	down := forward()
	p.Data[idx] = orig
	return (up - down) / (2 * h)
}

// checkGrads verifies analytic gradients for every element of every
// parameter against numerical differentiation.
func checkGrads(t *testing.T, params []*Tensor, forward func() *Tensor) {
	t.Helper()
	loss := forward()
	loss.Backward()
	// Snapshot analytic grads before numerical probing re-runs forward
	// (which zeroes them).
	analytic := make([][]float64, len(params))
	for i, p := range params {
		analytic[i] = make([]float64, len(p.Data))
		if p.Grad != nil {
			copy(analytic[i], p.Grad)
		}
	}
	for pi, p := range params {
		for i := range p.Data {
			want := numericalGrad(p, i, func() float64 { return forward().Item() })
			got := analytic[pi][i]
			if !almostEqual(got, want, 1e-4) {
				t.Errorf("param %d elem %d: analytic %v, numeric %v", pi, i, got, want)
			}
		}
	}
}

func randParam(rng *rand.Rand, rows, cols int) *Tensor {
	p := Param(rows, cols)
	for i := range p.Data {
		p.Data[i] = rng.NormFloat64() * 0.5
	}
	return p
}

func TestMatMulGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randParam(rng, 2, 3)
	b := randParam(rng, 3, 4)
	checkGrads(t, []*Tensor{a, b}, func() *Tensor {
		a.ZeroGrad()
		b.ZeroGrad()
		return Sum(MatMul(a, b))
	})
}

func TestMatMulNTGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randParam(rng, 2, 3)
	b := randParam(rng, 4, 3)
	checkGrads(t, []*Tensor{a, b}, func() *Tensor {
		a.ZeroGrad()
		b.ZeroGrad()
		// Square the output so the gradient depends on values.
		c := MatMulNT(a, b)
		return Sum(Mul(c, c))
	})
}

func TestAddSubMulGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randParam(rng, 2, 2)
	b := randParam(rng, 2, 2)
	checkGrads(t, []*Tensor{a, b}, func() *Tensor {
		a.ZeroGrad()
		b.ZeroGrad()
		return Sum(Mul(Add(a, b), Sub(a, b)))
	})
}

func TestAddRowVectorGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randParam(rng, 3, 2)
	bias := randParam(rng, 1, 2)
	checkGrads(t, []*Tensor{a, bias}, func() *Tensor {
		a.ZeroGrad()
		bias.ZeroGrad()
		o := AddRowVector(a, bias)
		return Sum(Mul(o, o))
	})
}

func TestScaleAddScalarGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randParam(rng, 2, 3)
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		a.ZeroGrad()
		return Sum(Mul(Scale(a, 2.5), AddScalar(a, 1)))
	})
}

func TestConcatRowsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randParam(rng, 2, 3)
	b := randParam(rng, 1, 3)
	checkGrads(t, []*Tensor{a, b}, func() *Tensor {
		a.ZeroGrad()
		b.ZeroGrad()
		c := ConcatRows(a, b)
		return Sum(Mul(c, c))
	})
}

func TestConcatColsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randParam(rng, 2, 2)
	b := randParam(rng, 2, 3)
	checkGrads(t, []*Tensor{a, b}, func() *Tensor {
		a.ZeroGrad()
		b.ZeroGrad()
		c := ConcatCols(a, b)
		return Sum(Mul(c, c))
	})
}

func TestSliceRowsColsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randParam(rng, 4, 4)
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		a.ZeroGrad()
		r := SliceRows(a, 1, 3)
		c := SliceCols(r, 0, 2)
		return Sum(Mul(c, c))
	})
}

func TestPickRowsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randParam(rng, 5, 3)
	idx := []int{0, 2, 2, 4}
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		a.ZeroGrad()
		g := PickRows(a, idx)
		return Sum(Mul(g, g))
	})
}

func TestMeanRowsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randParam(rng, 3, 4)
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		a.ZeroGrad()
		m := MeanRows(a)
		return Sum(Mul(m, m))
	})
}

func TestSoftmaxRowsForward(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	s := SoftmaxRows(a, nil)
	sum := s.Data[0] + s.Data[1] + s.Data[2]
	if !almostEqual(sum, 1, 1e-9) {
		t.Fatalf("softmax row sums to %v", sum)
	}
	if !(s.Data[2] > s.Data[1] && s.Data[1] > s.Data[0]) {
		t.Fatal("softmax should be monotone in logits")
	}
}

func TestSoftmaxMask(t *testing.T) {
	a := FromSlice(1, 3, []float64{5, 1, 1})
	mask := FromSlice(1, 3, []float64{math.Inf(-1), 0, 0})
	s := SoftmaxRows(a, mask)
	if s.Data[0] != 0 {
		t.Fatalf("masked position should be 0, got %v", s.Data[0])
	}
	if !almostEqual(s.Data[1]+s.Data[2], 1, 1e-9) {
		t.Fatal("unmasked positions should sum to 1")
	}
}

func TestSoftmaxGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randParam(rng, 2, 4)
	w := FromSlice(2, 4, []float64{0.3, -0.2, 0.5, 1, -1, 0.4, 0.1, 0.9})
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		a.ZeroGrad()
		s := SoftmaxRows(a, nil)
		return Sum(Mul(s, w))
	})
}

func TestReLUGrad(t *testing.T) {
	a := FromSlice(1, 4, []float64{-1, 0.5, 2, -0.1})
	a.SetRequiresGrad(true)
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		a.ZeroGrad()
		r := ReLU(a)
		return Sum(Mul(r, r))
	})
}

func TestGELUGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randParam(rng, 2, 3)
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		a.ZeroGrad()
		return Sum(GELU(a))
	})
}

func TestSigmoidTanhGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randParam(rng, 2, 3)
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		a.ZeroGrad()
		return Sum(Mul(Sigmoid(a), Tanh(a)))
	})
}

func TestLayerNormForward(t *testing.T) {
	a := FromSlice(1, 4, []float64{1, 2, 3, 4})
	gamma := New(1, 4)
	gamma.Fill(1)
	beta := New(1, 4)
	o := LayerNorm(a, gamma, beta, 1e-5)
	mean := 0.0
	for _, v := range o.Data {
		mean += v
	}
	mean /= 4
	if !almostEqual(mean, 0, 1e-6) {
		t.Fatalf("layernorm mean = %v, want 0", mean)
	}
	variance := 0.0
	for _, v := range o.Data {
		variance += v * v
	}
	variance /= 4
	if !almostEqual(variance, 1, 1e-3) {
		t.Fatalf("layernorm var = %v, want 1", variance)
	}
}

func TestLayerNormGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randParam(rng, 3, 4)
	gamma := randParam(rng, 1, 4)
	beta := randParam(rng, 1, 4)
	w := New(3, 4)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	checkGrads(t, []*Tensor{a, gamma, beta}, func() *Tensor {
		a.ZeroGrad()
		gamma.ZeroGrad()
		beta.ZeroGrad()
		o := LayerNorm(a, gamma, beta, 1e-5)
		return Sum(Mul(o, w))
	})
}

func TestBCEWithLogitsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	logits := randParam(rng, 2, 3)
	targets := FromSlice(2, 3, []float64{1, 0, 1, 0, 0, 1})
	checkGrads(t, []*Tensor{logits}, func() *Tensor {
		logits.ZeroGrad()
		return BCEWithLogits(logits, targets)
	})
}

func TestWeightedBCEGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	logits := randParam(rng, 2, 3)
	targets := FromSlice(2, 3, []float64{1, 0, 1, 0, 0, 1})
	checkGrads(t, []*Tensor{logits}, func() *Tensor {
		logits.ZeroGrad()
		return WeightedBCEWithLogits(logits, targets, 4)
	})
}

func TestWeightedBCEEqualsPlainAtWeightOne(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	logits := randParam(rng, 3, 4)
	targets := New(3, 4)
	for i := range targets.Data {
		if rng.Float64() < 0.3 {
			targets.Data[i] = 1
		}
	}
	a := BCEWithLogits(logits.Detach(), targets).Item()
	b := WeightedBCEWithLogits(logits.Detach(), targets, 1).Item()
	if !almostEqual(a, b, 1e-9) {
		t.Fatalf("weighted(1) = %v, plain = %v", b, a)
	}
}

func TestCrossEntropyRowsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	logits := randParam(rng, 4, 5)
	targets := []int{2, -1, 0, 4} // one row ignored
	checkGrads(t, []*Tensor{logits}, func() *Tensor {
		logits.ZeroGrad()
		return CrossEntropyRows(logits, targets)
	})
}

func TestCrossEntropyAllIgnored(t *testing.T) {
	logits := Param(2, 3)
	loss := CrossEntropyRows(logits, []int{-1, -1})
	if loss.Item() != 0 {
		t.Fatalf("all-ignored loss = %v, want 0", loss.Item())
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	a := Param(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar Backward")
		}
	}()
	MatMul(a, a).Backward()
}

func TestNoGradPathRecordsNoBackwardState(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{1, 0, 0, 1})
	c := MatMul(a, b)
	if c.RequiresGrad() || c.backward != nil {
		t.Fatal("op over non-grad tensors must not build backward state")
	}
	// Parents are still recorded so ReleaseGraph can recycle inference
	// graphs through the arena.
	if c.parents == nil {
		t.Fatal("op outputs must record parents for ReleaseGraph")
	}
}

func TestGradAccumulationAcrossUses(t *testing.T) {
	// y = sum(a) + sum(a) should give grad 2 everywhere.
	a := Param(2, 2)
	a.Fill(1)
	loss := Add(Sum(a), Sum(a))
	loss.Backward()
	for i, g := range a.Grad {
		if g != 2 {
			t.Fatalf("grad[%d] = %v, want 2", i, g)
		}
	}
}

func TestDeepGraphBackward(t *testing.T) {
	// Long chains must not blow the stack (iterative topo sort).
	a := Param(1, 1)
	a.Fill(1)
	x := a.Detach()
	x.SetRequiresGrad(true)
	cur := Scale(a, 1)
	for i := 0; i < 5000; i++ {
		cur = AddScalar(cur, 0)
	}
	Sum(cur).Backward()
	if a.Grad[0] != 1 {
		t.Fatalf("deep chain grad = %v, want 1", a.Grad[0])
	}
}

func TestAdamConvergesQuadratic(t *testing.T) {
	// Minimize ||x - target||² — Adam should approach the target.
	x := Param(1, 4)
	target := FromSlice(1, 4, []float64{1, -2, 3, 0.5})
	opt := NewAdam([]*Tensor{x}, 0.1)
	for i := 0; i < 300; i++ {
		opt.ZeroGrads()
		d := Sub(x, target)
		loss := Sum(Mul(d, d))
		loss.Backward()
		opt.Step()
	}
	for i := range x.Data {
		if !almostEqual(x.Data[i], target.Data[i], 1e-2) {
			t.Fatalf("x[%d] = %v, want %v", i, x.Data[i], target.Data[i])
		}
	}
}

func TestAdamClipNorm(t *testing.T) {
	x := Param(1, 2)
	x.Grad = []float64{30, 40} // norm 50
	opt := NewAdam([]*Tensor{x}, 0.1)
	opt.ClipNorm = 5
	opt.clip()
	norm := math.Hypot(x.Grad[0], x.Grad[1])
	if !almostEqual(norm, 5, 1e-9) {
		t.Fatalf("clipped norm = %v, want 5", norm)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	x := Param(1, 2)
	x.Data[0], x.Data[1] = 5, -5
	opt := NewSGD([]*Tensor{x}, 0.05, 0.9)
	for i := 0; i < 200; i++ {
		opt.ZeroGrads()
		loss := Sum(Mul(x, x))
		loss.Backward()
		opt.Step()
	}
	if math.Abs(x.Data[0]) > 0.05 || math.Abs(x.Data[1]) > 0.05 {
		t.Fatalf("SGD did not converge: %v", x.Data)
	}
}

func TestXavierUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	p := New(50, 50)
	XavierUniform(p, rng)
	limit := math.Sqrt(6.0 / 100)
	for _, v := range p.Data {
		if math.Abs(v) > limit {
			t.Fatalf("xavier value %v beyond limit %v", v, limit)
		}
	}
	if p.MaxAbs() == 0 {
		t.Fatal("xavier left tensor all-zero")
	}
}

func TestNormalInitStd(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	p := New(100, 100)
	NormalInit(p, 0.02, rng)
	s := 0.0
	for _, v := range p.Data {
		s += v * v
	}
	std := math.Sqrt(s / float64(len(p.Data)))
	if std < 0.015 || std > 0.025 {
		t.Fatalf("sample std = %v, want ≈0.02", std)
	}
}

func TestMaxAbsL2Norm(t *testing.T) {
	a := FromSlice(1, 3, []float64{3, -4, 0})
	if a.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
	if !almostEqual(a.L2Norm(), 5, 1e-12) {
		t.Fatalf("L2Norm = %v", a.L2Norm())
	}
}

func TestItemPanicsOnMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Item()
}

func TestLogReciprocalGrad(t *testing.T) {
	a := Param(1, 3)
	a.Data[0], a.Data[1], a.Data[2] = 0.5, 2, 3
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		a.ZeroGrad()
		return Sum(Add(Log(a), Reciprocal(a)))
	})
}
