// Package tensor implements a small dense 2-D tensor library with reverse-mode
// automatic differentiation, sufficient to train and run the Transformer-based
// models used by the Taste reproduction. The design is a dynamic tape: each
// operation allocates a result tensor that records its parents and a backward
// closure; Backward performs a topological sweep that accumulates gradients.
//
// Tensors are row-major matrices of float64. Sequence data is represented as
// one row per position (rows = sequence length, cols = hidden size), which is
// the only layout the Taste models need. Heads in multi-head attention are
// handled by column slicing in package nn.
//
// Concurrency: building a graph is not goroutine-safe, but distinct graphs can
// be built and evaluated concurrently as long as shared leaf tensors (model
// parameters) are only read. Inference paths use NoGrad tensors so that no
// backward state is written to shared parameters.
//
// Compute runtime (runtime.go): the matmul kernels row-shard across a
// package-level worker pool sized from GOMAXPROCS (SetParallelism), with a
// sequential fallback below a work threshold, and op-output buffers come
// from a sync.Pool arena recycled via ReleaseGraph after each training step
// or inference pass.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major matrix that optionally participates in the
// autograd graph.
type Tensor struct {
	Rows, Cols int
	Data       []float64

	// Grad holds the accumulated gradient of some scalar loss with respect
	// to Data. It is allocated lazily by Backward and is nil for tensors
	// that do not require gradients.
	Grad []float64

	requiresGrad bool
	parents      []*Tensor
	backward     func()
	name         string

	// pooled/gradPooled mark Data/Grad as drawn from the buffer arena, so
	// ReleaseGraph knows which slices to recycle.
	pooled     bool
	gradPooled bool
}

// New returns a zero-initialized tensor with the given shape.
// It panics if rows or cols are not positive.
func New(rows, cols int) *Tensor {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major) in a tensor of the given shape. The slice
// is used directly, not copied. It panics if len(data) != rows*cols.
func FromSlice(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %dx%d", len(data), rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a tensor from a slice of equal-length rows, copying them.
func FromRows(rows [][]float64) *Tensor {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("tensor: FromRows requires at least one non-empty row")
	}
	t := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != t.Cols {
			panic(fmt.Sprintf("tensor: row %d has %d values, want %d", i, len(r), t.Cols))
		}
		copy(t.Data[i*t.Cols:(i+1)*t.Cols], r)
	}
	return t
}

// Param returns a zero tensor marked as requiring gradients; it is the
// constructor for trainable parameters.
func Param(rows, cols int) *Tensor {
	t := New(rows, cols)
	t.requiresGrad = true
	return t
}

// WithName attaches a debug name and returns the receiver.
func (t *Tensor) WithName(name string) *Tensor {
	t.name = name
	return t
}

// Name returns the debug name set by WithName, or "".
func (t *Tensor) Name() string { return t.name }

// RequiresGrad reports whether this tensor participates in gradient
// accumulation.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// SetRequiresGrad toggles gradient tracking for a leaf tensor.
func (t *Tensor) SetRequiresGrad(v bool) { t.requiresGrad = v }

// At returns the element at row i, column j.
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols+j] }

// Set assigns the element at row i, column j.
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (t *Tensor) Row(i int) []float64 { return t.Data[i*t.Cols : (i+1)*t.Cols] }

// Clone returns a deep copy that is detached from the autograd graph.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Rows, t.Cols)
	copy(c.Data, t.Data)
	return c
}

// Detach returns a view of the same data that is cut off from the graph.
// Mutating one mutates the other. A detached view must not outlive a
// ReleaseGraph of the producing graph — the underlying buffer is recycled;
// use Clone for a copy that survives release.
func (t *Tensor) Detach() *Tensor {
	return &Tensor{Rows: t.Rows, Cols: t.Cols, Data: t.Data}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Item returns the single element of a 1x1 tensor, panicking otherwise.
func (t *Tensor) Item() float64 {
	if t.Rows != 1 || t.Cols != 1 {
		panic(fmt.Sprintf("tensor: Item on %dx%d tensor", t.Rows, t.Cols))
	}
	return t.Data[0]
}

// Shape returns (rows, cols).
func (t *Tensor) Shape() (int, int) { return t.Rows, t.Cols }

// String renders a compact description for debugging.
func (t *Tensor) String() string {
	if t.name != "" {
		return fmt.Sprintf("Tensor(%s %dx%d)", t.name, t.Rows, t.Cols)
	}
	return fmt.Sprintf("Tensor(%dx%d)", t.Rows, t.Cols)
}

// ensureGrad allocates the gradient buffer if needed. Op outputs draw from
// the arena (their grads die with the graph); leaves get plain slices that
// persist across steps.
func (t *Tensor) ensureGrad() {
	if t.Grad == nil {
		if t.parents != nil {
			t.Grad, t.gradPooled = allocData(len(t.Data))
		} else {
			t.Grad = make([]float64, len(t.Data))
		}
	}
}

// ZeroGrad clears the gradient buffer if present.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// result builds an op output tensor: it requires grad when any parent does,
// and records the backward closure only in that case. When no parent tracks
// gradients the op degenerates to a plain forward computation, which keeps
// inference cheap and safe for concurrent use of shared parameters. Parents
// are always recorded so ReleaseGraph can walk inference graphs too, and
// the data buffer is drawn from the arena so release can recycle it.
func result(rows, cols int, parents []*Tensor, backward func()) *Tensor {
	data, pooled := allocData(rows * cols)
	out := &Tensor{Rows: rows, Cols: cols, Data: data, pooled: pooled, parents: parents}
	for _, p := range parents {
		if p.requiresGrad {
			out.requiresGrad = true
			break
		}
	}
	if out.requiresGrad {
		out.backward = backward
	}
	return out
}

// Backward runs reverse-mode differentiation from t, which must be a scalar
// (1x1). Gradients accumulate into every reachable tensor that requires them.
func (t *Tensor) Backward() {
	if t.Rows != 1 || t.Cols != 1 {
		panic("tensor: Backward requires a scalar (1x1) tensor")
	}
	if !t.requiresGrad {
		panic("tensor: Backward on a tensor that does not require grad")
	}
	order := topoSort(t)
	for _, n := range order {
		n.ensureGrad()
	}
	t.Grad[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].backward != nil {
			order[i].backward()
		}
	}
}

// topoSort returns the nodes reachable from root in topological order
// (parents before children).
func topoSort(root *Tensor) []*Tensor {
	var order []*Tensor
	visited := make(map[*Tensor]bool)
	// Iterative DFS to avoid stack overflow on deep graphs.
	type frame struct {
		node *Tensor
		idx  int
	}
	stack := []frame{{root, 0}}
	inStack := map[*Tensor]bool{root: true}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx < len(f.node.parents) {
			p := f.node.parents[f.idx]
			f.idx++
			if !visited[p] && !inStack[p] && p.requiresGrad {
				stack = append(stack, frame{p, 0})
				inStack[p] = true
			}
			continue
		}
		visited[f.node] = true
		inStack[f.node] = false
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	return order
}

// MaxAbs returns the largest absolute value in the tensor; useful in tests
// and gradient-clipping.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the data.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}
