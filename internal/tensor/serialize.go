package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary parameter serialization. The format is deliberately simple:
//
//	magic "TSRv" | uint32 version | uint32 count |
//	repeat{ uint32 rows | uint32 cols | float64... }
//
// Tensors are written and read back in order; shapes must match on load,
// which catches configuration drift between a trained checkpoint and the
// model being restored. The explicit version field lets the layout evolve
// (the model registry chunks this same stream into content-hashed pages)
// without breaking old readers; the original unversioned "TSR1" layout is
// still accepted on read, so seed checkpoints keep loading.
//
// ReadTensors is atomic with respect to the destination tensors: the whole
// checkpoint is decoded and validated into scratch buffers first, and the
// live tensors are only written once nothing more can fail. A truncated,
// corrupt, or wrong-architecture file therefore leaves the model exactly as
// it was.

const (
	// serializeMagicV1 is the legacy unversioned header.
	serializeMagicV1 = "TSR1"
	// serializeMagic introduces the explicit format-version field.
	serializeMagic = "TSRv"
	// SerializeVersion is the checkpoint format version this package
	// writes. Readers accept any version ≤ this and fail with a clear
	// error on newer files.
	SerializeVersion = 2
)

// WriteTensors serializes the given tensors to w in the current format
// version.
func WriteTensors(w io.Writer, ts []*Tensor) error {
	if _, err := io.WriteString(w, serializeMagic); err != nil {
		return fmt.Errorf("tensor: write magic: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(SerializeVersion)); err != nil {
		return fmt.Errorf("tensor: write version: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ts))); err != nil {
		return fmt.Errorf("tensor: write count: %w", err)
	}
	buf := make([]byte, 8)
	for i, t := range ts {
		if err := binary.Write(w, binary.LittleEndian, uint32(t.Rows)); err != nil {
			return fmt.Errorf("tensor: write rows of #%d: %w", i, err)
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(t.Cols)); err != nil {
			return fmt.Errorf("tensor: write cols of #%d: %w", i, err)
		}
		for _, v := range t.Data {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("tensor: write data of #%d: %w", i, err)
			}
		}
	}
	return nil
}

// ReadCheckpointVersion consumes and validates a checkpoint header,
// returning its format version (1 for legacy "TSR1" files).
func ReadCheckpointVersion(r io.Reader) (int, error) {
	magic := make([]byte, len(serializeMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, fmt.Errorf("tensor: read magic: %w", err)
	}
	switch string(magic) {
	case serializeMagicV1:
		return 1, nil
	case serializeMagic:
		var v uint32
		if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
			return 0, fmt.Errorf("tensor: read version: %w", err)
		}
		if v < 2 || v > SerializeVersion {
			return 0, fmt.Errorf("tensor: checkpoint format version %d not supported (this reader handles ≤ %d)", v, SerializeVersion)
		}
		return int(v), nil
	default:
		return 0, fmt.Errorf("tensor: bad magic %q", magic)
	}
}

// ReadTensors deserializes values from r into the given tensors, which must
// match in count and shape. The destination tensors are untouched unless
// the entire checkpoint decodes and validates — including an EOF check that
// rejects trailing bytes after the last tensor, so a concatenated or
// wrong-architecture file that happens to prefix-match cannot half-load.
func ReadTensors(r io.Reader, ts []*Tensor) error {
	if _, err := ReadCheckpointVersion(r); err != nil {
		return err
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("tensor: read count: %w", err)
	}
	if int(count) != len(ts) {
		return fmt.Errorf("tensor: checkpoint has %d tensors, model has %d", count, len(ts))
	}
	// Decode into scratch buffers: nothing below writes to ts until every
	// byte of the checkpoint has been read and validated.
	scratch := make([][]float64, len(ts))
	buf := make([]byte, 8)
	for i, t := range ts {
		var rows, cols uint32
		if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
			return fmt.Errorf("tensor: read rows of #%d: %w", i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &cols); err != nil {
			return fmt.Errorf("tensor: read cols of #%d: %w", i, err)
		}
		if int(rows) != t.Rows || int(cols) != t.Cols {
			return fmt.Errorf("tensor: shape mismatch for #%d: checkpoint %dx%d, model %dx%d", i, rows, cols, t.Rows, t.Cols)
		}
		vals := make([]float64, len(t.Data))
		for j := range vals {
			if _, err := io.ReadFull(r, buf); err != nil {
				return fmt.Errorf("tensor: read data of #%d: %w", i, err)
			}
			vals[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
		scratch[i] = vals
	}
	// The checkpoint must end exactly here: a non-EOF remainder means the
	// file is not the checkpoint the caller thinks it is.
	var tail [1]byte
	switch _, err := io.ReadFull(r, tail[:]); err {
	case io.EOF:
		// Exactly at end: the expected case.
	case nil:
		return fmt.Errorf("tensor: trailing bytes after last tensor (corrupt or concatenated checkpoint)")
	default:
		return fmt.Errorf("tensor: read trailing check: %w", err)
	}
	// Install: everything validated, so the swap cannot fail partway.
	for i, t := range ts {
		copy(t.Data, scratch[i])
	}
	return nil
}
