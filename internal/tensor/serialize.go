package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary parameter serialization. The format is deliberately simple:
//
//	magic "TSR1" | uint32 count | repeat{ uint32 rows | uint32 cols | float64... }
//
// Tensors are written and read back in order; shapes must match on load,
// which catches configuration drift between a trained checkpoint and the
// model being restored.

const serializeMagic = "TSR1"

// WriteTensors serializes the given tensors to w.
func WriteTensors(w io.Writer, ts []*Tensor) error {
	if _, err := io.WriteString(w, serializeMagic); err != nil {
		return fmt.Errorf("tensor: write magic: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ts))); err != nil {
		return fmt.Errorf("tensor: write count: %w", err)
	}
	buf := make([]byte, 8)
	for i, t := range ts {
		if err := binary.Write(w, binary.LittleEndian, uint32(t.Rows)); err != nil {
			return fmt.Errorf("tensor: write rows of #%d: %w", i, err)
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(t.Cols)); err != nil {
			return fmt.Errorf("tensor: write cols of #%d: %w", i, err)
		}
		for _, v := range t.Data {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("tensor: write data of #%d: %w", i, err)
			}
		}
	}
	return nil
}

// ReadTensors deserializes values from r into the given tensors, which must
// match in count and shape.
func ReadTensors(r io.Reader, ts []*Tensor) error {
	magic := make([]byte, len(serializeMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("tensor: read magic: %w", err)
	}
	if string(magic) != serializeMagic {
		return fmt.Errorf("tensor: bad magic %q", magic)
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("tensor: read count: %w", err)
	}
	if int(count) != len(ts) {
		return fmt.Errorf("tensor: checkpoint has %d tensors, model has %d", count, len(ts))
	}
	buf := make([]byte, 8)
	for i, t := range ts {
		var rows, cols uint32
		if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
			return fmt.Errorf("tensor: read rows of #%d: %w", i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &cols); err != nil {
			return fmt.Errorf("tensor: read cols of #%d: %w", i, err)
		}
		if int(rows) != t.Rows || int(cols) != t.Cols {
			return fmt.Errorf("tensor: shape mismatch for #%d: checkpoint %dx%d, model %dx%d", i, rows, cols, t.Rows, t.Cols)
		}
		for j := range t.Data {
			if _, err := io.ReadFull(r, buf); err != nil {
				return fmt.Errorf("tensor: read data of #%d: %w", i, err)
			}
			t.Data[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
	}
	return nil
}
