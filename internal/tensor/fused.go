// Fused NoGrad kernels for the inference fast path. Each primitive here
// replicates, element for element, the floating-point operation sequence of
// the composed autograd ops it replaces (MatMul+AddRowVector,
// MatMulNT+Scale+SoftmaxRows+MatMul, Add+LayerNorm, ...), so fast-path
// outputs are bit-exact against the slow path — enforced by fused_test.go.
// The wins come from everything around the arithmetic: no per-op tensor and
// graph bookkeeping, no materialized per-head score matrices or column
// slices, workspace scratch instead of zeroed arena buffers, and dot
// products skipped outright for -Inf-masked attention positions.
package tensor

import (
	"math"
	"sync/atomic"
)

var fastPathOff atomic.Bool // zero value = enabled

// SetFastPath toggles the fused NoGrad kernels globally. The fast path is
// on by default; turning it off forces every forward through the composed
// autograd ops, which is useful for bit-exactness tests and as a safety
// valve. Safe to call concurrently.
func SetFastPath(on bool) { fastPathOff.Store(!on) }

// FastPathEnabled reports whether the fused kernels may be selected.
func FastPathEnabled() bool { return !fastPathOff.Load() }

// NoGrad reports whether none of the given tensors require grad; nil
// entries are allowed and ignored. It is the per-call eligibility check for
// the fast path.
func NoGrad(ts ...*Tensor) bool {
	for _, t := range ts {
		if t != nil && t.requiresGrad {
			return false
		}
	}
	return true
}

// InferenceResult builds an op-output tensor for the fast path: its buffer
// is arena-backed (contents UNSPECIFIED — the caller must fully overwrite
// it) and the given parents are recorded so ReleaseGraph can walk and
// recycle fused graphs exactly like composed ones. No backward closure is
// attached; it panics if any parent requires grad.
func InferenceResult(rows, cols int, parents ...*Tensor) *Tensor {
	for _, p := range parents {
		if p.requiresGrad {
			panic("tensor: InferenceResult with a grad-requiring parent")
		}
	}
	data, pooled := allocDataDirty(rows * cols)
	return &Tensor{Rows: rows, Cols: cols, Data: data, pooled: pooled, parents: parents}
}

// allocDataDirty is allocData without the zeroing pass; fused kernels
// overwrite every element of their outputs, so clearing recycled buffers
// would be pure overhead.
func allocDataDirty(n int) ([]float64, bool) {
	if n < 1<<arenaMinClass || n > 1<<arenaMaxClass || !arenaEnabled.Load() {
		return make([]float64, n), false
	}
	c := sizeClass(n)
	if p, _ := arenaPools[c].Get().(*[]float64); p != nil {
		return (*p)[:n], true
	}
	return make([]float64, n, 1<<c), true
}

// axpy4 computes y += a0*x0 + a1*x1 + a2*x2 + a3*x3 elementwise. Go's
// float64 addition is left-associative and unfused (no FMA contraction), so
// each element sees exactly the same rounding sequence as four successive
// axpy calls — which is what keeps the register-blocked kernels bit-exact
// against the one-rank-at-a-time reference.
func axpy4(a0, a1, a2, a3 float64, x0, x1, x2, x3, y []float64) {
	n := len(y)
	x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
	for j := 0; j < n; j++ {
		y[j] = y[j] + a0*x0[j] + a1*x1[j] + a2*x2[j] + a3*x3[j]
	}
}

// axpy8 is two fused axpy4 steps: y += Σ a_i*x_i over eight ranks, one
// left-associative chain per element — bitwise identical to eight
// successive axpy calls, with half the passes over y.
func axpy8(a0, a1, a2, a3, a4, a5, a6, a7 float64, x0, x1, x2, x3, x4, x5, x6, x7, y []float64) {
	n := len(y)
	x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
	x4, x5, x6, x7 = x4[:n], x5[:n], x6[:n], x7[:n]
	for j := 0; j < n; j++ {
		y[j] = y[j] + a0*x0[j] + a1*x1[j] + a2*x2[j] + a3*x3[j] + a4*x4[j] + a5*x5[j] + a6*x6[j] + a7*x7[j]
	}
}

// mulRowRange computes out[lo:hi) rows of A(m×k) × B, where B's rows have
// stride bstride and the product reads B columns [c0, c0+n). When zero is
// set the output rows are cleared first (out =), otherwise accumulated
// (out +=). Ranks with a zero A coefficient are skipped — exactly as the
// scalar kernel does — because adding a +0.0 term is not a bitwise no-op
// for -0.0 outputs; a rank block containing any zero falls back to the
// scalar order for those ranks.
func mulRowRange(out, a, b []float64, lo, hi, k, n, bstride, c0 int, zero bool) {
	for i := lo; i < hi; i++ {
		orow := out[i*n : (i+1)*n]
		if zero {
			for x := range orow {
				orow[x] = 0
			}
		}
		arow := a[i*k : (i+1)*k]
		p := 0
		for ; p+8 <= k; p += 8 {
			a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			a4, a5, a6, a7 := arow[p+4], arow[p+5], arow[p+6], arow[p+7]
			if a0 == 0 || a1 == 0 || a2 == 0 || a3 == 0 || a4 == 0 || a5 == 0 || a6 == 0 || a7 == 0 {
				for q := p; q < p+8; q++ {
					if av := arow[q]; av != 0 {
						axpy(av, b[q*bstride+c0:q*bstride+c0+n], orow)
					}
				}
				continue
			}
			base := p * bstride
			axpy8(a0, a1, a2, a3, a4, a5, a6, a7,
				b[base+c0:base+c0+n],
				b[base+bstride+c0:base+bstride+c0+n],
				b[base+2*bstride+c0:base+2*bstride+c0+n],
				b[base+3*bstride+c0:base+3*bstride+c0+n],
				b[base+4*bstride+c0:base+4*bstride+c0+n],
				b[base+5*bstride+c0:base+5*bstride+c0+n],
				b[base+6*bstride+c0:base+6*bstride+c0+n],
				b[base+7*bstride+c0:base+7*bstride+c0+n],
				orow)
		}
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			if a0 == 0 || a1 == 0 || a2 == 0 || a3 == 0 {
				for q := p; q < p+4; q++ {
					if av := arow[q]; av != 0 {
						axpy(av, b[q*bstride+c0:q*bstride+c0+n], orow)
					}
				}
				continue
			}
			axpy4(a0, a1, a2, a3,
				b[p*bstride+c0:p*bstride+c0+n],
				b[(p+1)*bstride+c0:(p+1)*bstride+c0+n],
				b[(p+2)*bstride+c0:(p+2)*bstride+c0+n],
				b[(p+3)*bstride+c0:(p+3)*bstride+c0+n],
				orow)
		}
		for ; p < k; p++ {
			if av := arow[p]; av != 0 {
				axpy(av, b[p*bstride+c0:p*bstride+c0+n], orow)
			}
		}
	}
}

// LinearInto computes dst = x(rows×in) · W[:, c0:c1) + bias[c0:c1), where W
// is in×wcols row-major and bias (length wcols) may be nil. Writing only a
// column range of a packed weight matrix is what lets attention project Q,
// K and V from one fused [WQ|WK|WV] matrix. Bit-exact against
// AddRowVector(MatMul(x, W'), b') on the corresponding column slice.
func LinearInto(dst, x []float64, rows, in int, w []float64, wcols, c0, c1 int, bias []float64) {
	n := c1 - c0
	parallelRows(rows, in*n, func(lo, hi int) {
		mulRowRange(dst, x, w, lo, hi, in, n, wcols, c0, true)
		if bias != nil {
			for i := lo; i < hi; i++ {
				drow := dst[i*n : (i+1)*n]
				for j := range drow {
					drow[j] += bias[c0+j]
				}
			}
		}
	})
}

// AttnShape describes the layout of packed projections for
// FusedAttentionCore. Query row i's head-h slice lives at
// qp[i*QStride+QOff+h*HeadDim : ... +HeadDim]; key and value rows likewise
// in kvp at KOff/VOff. With self-attention on a packed [Q|K|V] projection,
// qp == kvp, QOff=0, KOff=H, VOff=2H and both strides are 3H.
type AttnShape struct {
	Lq, Lkv, Heads, HeadDim int
	QOff, QStride           int
	KOff, VOff, KVStride    int
	Scale                   float64
}

// FusedAttentionCore computes multi-head scaled dot-product attention into
// dst (Lq × Heads*HeadDim, head h in columns [h*HeadDim,(h+1)*HeadDim)),
// streaming one score row at a time instead of materializing per-head
// Lq×Lkv score matrices. mask (Lq × Lkv additive, may be nil) follows
// SoftmaxRows semantics: -Inf removes a position — here the position's dot
// product is skipped entirely, which on block-diagonal batch masks removes
// most of the score work — and a fully masked row yields zeros.
// Bit-exact against SliceCols+MatMulNT+Scale+SoftmaxRows+MatMul+ConcatCols.
func FusedAttentionCore(ws *Workspace, dst, qp, kvp []float64, sh AttnShape, mask *Tensor) {
	hd := sh.Heads * sh.HeadDim
	srow := ws.Take(sh.Lkv)
	for h := 0; h < sh.Heads; h++ {
		qOff := sh.QOff + h*sh.HeadDim
		kOff := sh.KOff + h*sh.HeadDim
		vOff := sh.VOff + h*sh.HeadDim
		for i := 0; i < sh.Lq; i++ {
			qrow := qp[i*sh.QStride+qOff : i*sh.QStride+qOff+sh.HeadDim]
			var mrow []float64
			if mask != nil {
				mrow = mask.Row(i)
			}
			var maxv float64
			if sh.HeadDim == 16 {
				maxv = scoreRow16(srow, qrow, kvp, mrow, kOff, sh.KVStride, sh.Lkv, sh.Scale)
			} else {
				maxv = scoreRowGeneric(srow, qrow, kvp, mrow, kOff, sh.KVStride, sh.Lkv, sh.HeadDim, sh.Scale)
			}
			drow := dst[i*hd+h*sh.HeadDim : i*hd+(h+1)*sh.HeadDim]
			if math.IsInf(maxv, -1) {
				// Entire row masked: SoftmaxRows emits zeros, so AV is zero.
				for j := range drow {
					drow[j] = 0
				}
				continue
			}
			sum := 0.0
			for j := 0; j < sh.Lkv; j++ {
				e := math.Exp(srow[j] - maxv)
				srow[j] = e
				sum += e
			}
			if sum == 0 {
				for j := range drow {
					drow[j] = 0
				}
				continue
			}
			// Normalize in place exactly as SoftmaxRows does, then run the
			// weights×V product through the register-blocked matmul kernel
			// (one output row, B columns [vOff, vOff+HeadDim)); masked
			// positions have weight exactly 0 and are skipped, as the
			// composed MatMul's zero-skip does.
			inv := 1.0 / sum
			for j := 0; j < sh.Lkv; j++ {
				srow[j] *= inv
			}
			mulRowRange(drow, srow, kvp, 0, 1, sh.Lkv, sh.HeadDim, sh.KVStride, vOff, true)
		}
	}
}

// scoreRowGeneric fills srow with the scaled, masked q·k scores of one query
// row against all keys and returns the row max. -Inf-masked positions skip
// the dot entirely (their srow entry is -Inf, which the exp pass maps to an
// exact 0 weight). The dot uses the same 4-partial accumulation as dot().
func scoreRowGeneric(srow, qrow, kvp, mrow []float64, kOff, stride, lkv, headDim int, scale float64) float64 {
	negInf := math.Inf(-1)
	maxv := negInf
	for j := 0; j < lkv; j++ {
		mv := 0.0
		if mrow != nil {
			mv = mrow[j]
			if math.IsInf(mv, -1) {
				srow[j] = negInf
				continue
			}
		}
		krow := kvp[j*stride+kOff : j*stride+kOff+headDim]
		var s0, s1, s2, s3 float64
		d := 0
		for ; d+4 <= headDim; d += 4 {
			s0 += qrow[d] * krow[d]
			s1 += qrow[d+1] * krow[d+1]
			s2 += qrow[d+2] * krow[d+2]
			s3 += qrow[d+3] * krow[d+3]
		}
		for ; d < headDim; d++ {
			s0 += qrow[d] * krow[d]
		}
		v := (s0+s1+s2+s3)*scale + mv
		srow[j] = v
		if v > maxv {
			maxv = v
		}
	}
	return maxv
}

// scoreRow16 is scoreRowGeneric specialized to 16-wide heads (the repro
// config): the query row is held in locals and the four partial sums are
// fully unrolled in the same strided order as the generic loop, so each
// partial sees an identical left-associative accumulation sequence. (The
// generic loop seeds each partial with +0.0, which the unrolled chain
// omits; that can only flip the sign of a zero-valued partial, and a zero's
// sign never survives exp(v - max) downstream.)
func scoreRow16(srow, qrow, kvp, mrow []float64, kOff, stride, lkv int, scale float64) float64 {
	q0, q1, q2, q3 := qrow[0], qrow[1], qrow[2], qrow[3]
	q4, q5, q6, q7 := qrow[4], qrow[5], qrow[6], qrow[7]
	q8, q9, q10, q11 := qrow[8], qrow[9], qrow[10], qrow[11]
	q12, q13, q14, q15 := qrow[12], qrow[13], qrow[14], qrow[15]
	negInf := math.Inf(-1)
	maxv := negInf
	for j := 0; j < lkv; j++ {
		mv := 0.0
		if mrow != nil {
			mv = mrow[j]
			if math.IsInf(mv, -1) {
				srow[j] = negInf
				continue
			}
		}
		base := j*stride + kOff
		k := kvp[base : base+16 : base+16]
		s0 := q0*k[0] + q4*k[4] + q8*k[8] + q12*k[12]
		s1 := q1*k[1] + q5*k[5] + q9*k[9] + q13*k[13]
		s2 := q2*k[2] + q6*k[6] + q10*k[10] + q14*k[14]
		s3 := q3*k[3] + q7*k[7] + q11*k[11] + q15*k[15]
		v := (s0+s1+s2+s3)*scale + mv
		srow[j] = v
		if v > maxv {
			maxv = v
		}
	}
	return maxv
}

// FusedAddLayerNormInto computes dst = LayerNorm(a + b) rowwise, with b nil
// meaning plain LayerNorm(a). dst may alias a or b. Bit-exact against
// LayerNorm(Add(a, b), gamma, beta, eps).
func FusedAddLayerNormInto(dst, a, b, gamma, beta []float64, rows, cols int, eps float64) {
	n := float64(cols)
	for i := 0; i < rows; i++ {
		arow := a[i*cols : (i+1)*cols]
		drow := dst[i*cols : (i+1)*cols]
		var brow []float64
		if b != nil {
			brow = b[i*cols : (i+1)*cols]
			for j, v := range arow {
				drow[j] = v + brow[j]
			}
		} else if &drow[0] != &arow[0] {
			copy(drow, arow)
		}
		m := 0.0
		for _, v := range drow {
			m += v
		}
		m /= n
		vsum := 0.0
		for _, v := range drow {
			d := v - m
			vsum += d * d
		}
		inv := 1 / math.Sqrt(vsum/n+eps)
		for j, v := range drow {
			drow[j] = (v-m)*inv*gamma[j] + beta[j]
		}
	}
}

// FusedGELUInPlace applies the tanh-approximation GELU elementwise,
// bit-exact against GELU.
func FusedGELUInPlace(x []float64) {
	const c = 0.7978845608028654 // sqrt(2/π)
	for i, v := range x {
		inner := c * (v + 0.044715*v*v*v)
		x[i] = 0.5 * v * (1 + math.Tanh(inner))
	}
}

// FusedReLUInPlace applies max(0, x) elementwise, bit-exact against ReLU
// (negative values, -0.0 and NaN all map to +0.0, as the slow path's
// zero-initialized output does).
func FusedReLUInPlace(x []float64) {
	for i, v := range x {
		if v > 0 {
			continue
		}
		x[i] = 0
	}
}

// MeanPoolRowsInto writes the column means of x's rows [lo, hi) into dst
// (length cols), bit-exact against MeanRows(SliceRows(x, lo, hi)).
func MeanPoolRowsInto(dst, x []float64, cols, lo, hi int) {
	for j := range dst[:cols] {
		dst[j] = 0
	}
	for i := lo; i < hi; i++ {
		row := x[i*cols : (i+1)*cols]
		for j, v := range row {
			dst[j] += v
		}
	}
	inv := 1.0 / float64(hi-lo)
	for j := range dst[:cols] {
		dst[j] *= inv
	}
}
