package tensor

import (
	"fmt"
	"math"
)

// BCEWithLogits computes the mean multi-label binary cross-entropy between
// logits and targets (same shape; targets in {0,1}). Working on logits rather
// than probabilities keeps the backward pass numerically stable: the gradient
// per element is simply (σ(x) − y) / N.
//
// This is the per-task loss L_BCE of §4.3 in the paper, averaged over all
// (column, type) pairs in the batch.
func BCEWithLogits(logits, targets *Tensor) *Tensor {
	checkSameShape("BCEWithLogits", logits, targets)
	out := result(1, 1, []*Tensor{logits}, nil)
	n := float64(len(logits.Data))
	s := 0.0
	for i, x := range logits.Data {
		y := targets.Data[i]
		// log(1+e^x) computed stably.
		var l float64
		if x > 0 {
			l = x + math.Log1p(math.Exp(-x)) - y*x
		} else {
			l = math.Log1p(math.Exp(x)) - y*x
		}
		s += l
	}
	out.Data[0] = s / n
	if out.requiresGrad {
		out.backward = func() {
			logits.ensureGrad()
			g := out.Grad[0] / n
			for i, x := range logits.Data {
				sig := 1 / (1 + math.Exp(-x))
				logits.Grad[i] += g * (sig - targets.Data[i])
			}
		}
	}
	return out
}

// WeightedBCEWithLogits is BCEWithLogits with a per-element positive-class
// weight: loss_i = posWeight*y*log(1+e^-x) + (1-y)*log(1+e^x). It lets
// training compensate for the extreme label sparsity of multi-label type
// detection (most (column, type) pairs are negative).
func WeightedBCEWithLogits(logits, targets *Tensor, posWeight float64) *Tensor {
	checkSameShape("WeightedBCEWithLogits", logits, targets)
	if posWeight <= 0 {
		panic(fmt.Sprintf("tensor: posWeight must be positive, got %g", posWeight))
	}
	out := result(1, 1, []*Tensor{logits}, nil)
	n := float64(len(logits.Data))
	s := 0.0
	for i, x := range logits.Data {
		y := targets.Data[i]
		// Stable: log(1+e^x) = max(x,0) + log1p(e^{-|x|})
		softplus := math.Max(x, 0) + math.Log1p(math.Exp(-math.Abs(x)))
		// y*posW*(softplus − x) + (1−y)*softplus
		s += y*posWeight*(softplus-x) + (1-y)*softplus
	}
	out.Data[0] = s / n
	if out.requiresGrad {
		out.backward = func() {
			logits.ensureGrad()
			g := out.Grad[0] / n
			for i, x := range logits.Data {
				y := targets.Data[i]
				sig := 1 / (1 + math.Exp(-x))
				logits.Grad[i] += g * (y*posWeight*(sig-1) + (1-y)*sig)
			}
		}
	}
	return out
}

// CrossEntropyRows computes the mean softmax cross-entropy over rows of
// logits against integer class targets; rows with target < 0 are ignored
// (the convention used for non-masked positions in MLM pre-training).
func CrossEntropyRows(logits *Tensor, targets []int) *Tensor {
	if len(targets) != logits.Rows {
		panic(fmt.Sprintf("tensor: CrossEntropyRows got %d targets for %d rows", len(targets), logits.Rows))
	}
	out := result(1, 1, []*Tensor{logits}, nil)
	active := 0
	s := 0.0
	// Per-row log-sum-exp, retained for backward.
	lse := make([]float64, logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		if targets[i] < 0 {
			continue
		}
		if targets[i] >= logits.Cols {
			panic(fmt.Sprintf("tensor: CrossEntropyRows target %d out of %d classes", targets[i], logits.Cols))
		}
		row := logits.Row(i)
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - maxv)
		}
		lse[i] = maxv + math.Log(sum)
		s += lse[i] - row[targets[i]]
		active++
	}
	if active == 0 {
		out.Data[0] = 0
		return out
	}
	out.Data[0] = s / float64(active)
	if out.requiresGrad {
		out.backward = func() {
			logits.ensureGrad()
			g := out.Grad[0] / float64(active)
			for i := 0; i < logits.Rows; i++ {
				if targets[i] < 0 {
					continue
				}
				row := logits.Data[i*logits.Cols : (i+1)*logits.Cols]
				grow := logits.Grad[i*logits.Cols : (i+1)*logits.Cols]
				for j, v := range row {
					p := math.Exp(v - lse[i])
					if j == targets[i] {
						grow[j] += g * (p - 1)
					} else {
						grow[j] += g * p
					}
				}
			}
		}
	}
	return out
}
