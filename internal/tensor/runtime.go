// Parallel compute runtime: a package-level worker pool that row-shards the
// matmul kernels across goroutines, plus a sync.Pool-backed buffer arena that
// recycles the forward/grad slices of autograd graphs between steps.
//
// The pool is sized from GOMAXPROCS and shared by every tensor operation in
// the process, so concurrent inference workers (the pipeline's TP2 pool)
// cooperatively saturate the machine instead of oversubscribing it: a shard
// that cannot be handed to the pool immediately runs on the submitting
// goroutine. Kernels fall back to a plain sequential loop below a work
// threshold so small repro-scale matrices pay no synchronization cost.
package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

var (
	parWorkers atomic.Int32 // desired shard count for parallel kernels

	poolMu      sync.Mutex
	poolSpawned int
	poolTasks   = make(chan func(), 256)
)

func init() {
	parWorkers.Store(int32(DefaultParallelism()))
	arenaEnabled.Store(true)
}

// DefaultParallelism is the GOMAXPROCS-derived worker count the runtime
// starts with.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// SetParallelism sets how many goroutines the sharded kernels may use.
// n ≤ 1 forces every kernel onto the calling goroutine (the sequential
// reference behavior). Safe to call at any time, including concurrently
// with running kernels: in-flight kernels finish with the old setting.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parWorkers.Store(int32(n))
}

// Parallelism returns the current worker setting.
func Parallelism() int { return int(parWorkers.Load()) }

// ensureWorkers lazily grows the shared pool to n resident goroutines.
func ensureWorkers(n int) {
	if poolSpawned >= n { // racy fast path; poolMu settles the truth below
		return
	}
	poolMu.Lock()
	for poolSpawned < n {
		poolSpawned++
		go func() {
			for task := range poolTasks {
				task()
			}
		}()
	}
	poolMu.Unlock()
}

const (
	// parallelMulAdds is the total kernel cost (scalar multiply-adds) below
	// which sharding overhead outweighs the win; a 64×64×64 matmul and
	// anything smaller stays on the calling goroutine.
	parallelMulAdds = 1 << 19
	// shardMinMulAdds bounds how finely a kernel is sliced.
	shardMinMulAdds = 1 << 17
)

// parallelRows splits [0, rows) into contiguous shards and runs body over
// them on the worker pool, keeping the last shard on the calling goroutine.
// mulAddsPerRow is the per-row cost estimate driving the sequential
// fallback. body must be safe to run concurrently on disjoint row ranges.
func parallelRows(rows, mulAddsPerRow int, body func(lo, hi int)) {
	w := Parallelism()
	// Sharding beyond the cores that can actually run is pure overhead:
	// with GOMAXPROCS=1 every "parallel" shard still executes serially but
	// pays the pool hand-off and WaitGroup costs (the BENCH_1 par4 ≈ par1
	// anomaly). Cap the effective shard count at the scheduler's limit.
	if procs := runtime.GOMAXPROCS(0); w > procs {
		w = procs
	}
	total := rows * mulAddsPerRow
	if w <= 1 || rows < 2 || total < parallelMulAdds {
		body(0, rows)
		return
	}
	shards := total / shardMinMulAdds
	if shards > w {
		shards = w
	}
	if shards > rows {
		shards = rows
	}
	if shards <= 1 {
		body(0, rows)
		return
	}
	ensureWorkers(w)
	var wg sync.WaitGroup
	chunk := (rows + shards - 1) / shards
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi >= rows {
			body(lo, rows) // last shard runs on the caller
			break
		}
		wg.Add(1)
		lo, hi := lo, hi
		task := func() {
			defer wg.Done()
			body(lo, hi)
		}
		select {
		case poolTasks <- task:
		default:
			task() // pool saturated: degrade gracefully instead of queueing
		}
	}
	wg.Wait()
}

// ---------------------------------------------------------------------------
// Buffer arena
// ---------------------------------------------------------------------------

const (
	arenaMinClass = 6  // smallest pooled buffer: 64 floats (512 B)
	arenaMaxClass = 26 // largest pooled buffer: 64 Mi floats (512 MiB)
)

var (
	arenaEnabled atomic.Bool
	arenaPools   [arenaMaxClass + 1]sync.Pool // class c holds *[]float64 with cap 1<<c
)

// SetArena toggles pooled allocation of op-output buffers. When enabled
// (the default), result tensors draw their Data/Grad slices from a
// sync.Pool arena and ReleaseGraph returns them after a training step or
// inference pass, cutting allocation and GC pressure on the hot loops.
func SetArena(on bool) { arenaEnabled.Store(on) }

// ArenaEnabled reports whether op outputs are drawn from the arena.
func ArenaEnabled() bool { return arenaEnabled.Load() }

// sizeClass returns the smallest c with 1<<c ≥ n.
func sizeClass(n int) int {
	c := arenaMinClass
	for 1<<c < n {
		c++
	}
	return c
}

// allocData returns a zeroed slice of length n, drawn from the arena when
// enabled and the size is in the pooled range. The second result reports
// whether the slice must be returned with freeData.
func allocData(n int) ([]float64, bool) {
	if n < 1<<arenaMinClass || n > 1<<arenaMaxClass || !arenaEnabled.Load() {
		return make([]float64, n), false
	}
	c := sizeClass(n)
	if p, _ := arenaPools[c].Get().(*[]float64); p != nil {
		s := (*p)[:n]
		for i := range s {
			s[i] = 0
		}
		return s, true
	}
	return make([]float64, n, 1<<c), true
}

// freeData returns an allocData slice to its size-class pool.
func freeData(s []float64) {
	c := cap(s)
	if c < 1<<arenaMinClass || c&(c-1) != 0 {
		return
	}
	full := s[:c]
	arenaPools[sizeClass(c)].Put(&full)
}

// ReleaseGraph frees every op-output tensor reachable from root through the
// recorded parent links, returning arena-backed Data and Grad buffers to
// the pool and nil-ing the freed tensors so accidental reuse fails loudly.
// Leaves — parameters, input tensors, detached/cached tensors — are never
// touched, which makes the call safe after a training step (parameter data
// and gradients survive) and after an inference pass whose outputs have
// been copied out. The root itself is freed; consume its value first.
func ReleaseGraph(root *Tensor) {
	visited := map[*Tensor]bool{root: true}
	stack := []*Tensor{root}
	var nodes []*Tensor
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.parents == nil {
			continue // leaf: parameters, inputs, detached views
		}
		nodes = append(nodes, t)
		for _, p := range t.parents {
			if !visited[p] {
				visited[p] = true
				stack = append(stack, p)
			}
		}
	}
	for _, t := range nodes {
		if t.pooled {
			freeData(t.Data)
		}
		if t.gradPooled && t.Grad != nil {
			freeData(t.Grad)
		}
		t.Data, t.Grad = nil, nil
		t.parents, t.backward = nil, nil
		t.pooled, t.gradPooled = false, false
	}
}
