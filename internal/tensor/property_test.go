package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genTensor builds a bounded random tensor from a seed.
func genTensor(seed int64, rows, cols int) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := New(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

// Property: matrix multiplication distributes over addition:
// A(B+C) = AB + AC.
func TestMatMulDistributesProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := genTensor(seed, 3, 4)
		b := genTensor(seed+1, 4, 5)
		c := genTensor(seed+2, 4, 5)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMulNT(a, b) equals MatMul(a, bᵀ).
func TestMatMulNTEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := genTensor(seed, 3, 4)
		b := genTensor(seed+1, 5, 4)
		bt := New(4, 5)
		for i := 0; i < b.Rows; i++ {
			for j := 0; j < b.Cols; j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		x := MatMulNT(a, b)
		y := MatMul(a, bt)
		for i := range x.Data {
			if math.Abs(x.Data[i]-y.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax rows are stochastic (non-negative, sum to one).
func TestSoftmaxStochasticProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := genTensor(seed, 4, 7)
		s := SoftmaxRows(a, nil)
		for i := 0; i < s.Rows; i++ {
			sum := 0.0
			for _, v := range s.Row(i) {
				if v < 0 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: layer norm output is invariant to input shift and scale (with
// gamma=1, beta=0): LN(a·x + b) = LN(x) for a > 0.
func TestLayerNormInvarianceProperty(t *testing.T) {
	gamma := New(1, 6)
	gamma.Fill(1)
	beta := New(1, 6)
	f := func(seed int64, shift float64, scaleRaw float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		scale := math.Abs(scaleRaw)
		if scale < 0.01 || scale > 1e4 || math.IsNaN(scale) || math.IsInf(scale, 0) {
			return true
		}
		x := genTensor(seed, 2, 6)
		y1 := LayerNorm(x, gamma, beta, 1e-9)
		x2 := AddScalar(Scale(x, scale), shift)
		y2 := LayerNorm(x2, gamma, beta, 1e-9)
		for i := range y1.Data {
			if math.Abs(y1.Data[i]-y2.Data[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ConcatRows then SliceRows recovers the parts.
func TestConcatSliceInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := genTensor(seed, 2, 3)
		b := genTensor(seed+1, 4, 3)
		c := ConcatRows(a, b)
		backA := SliceRows(c, 0, 2)
		backB := SliceRows(c, 2, 6)
		for i := range a.Data {
			if backA.Data[i] != a.Data[i] {
				return false
			}
		}
		for i := range b.Data {
			if backB.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: sigmoid and BCE are consistent — for any logits, the BCE loss
// with targets equal to sigmoid(logits) is a stationary point (gradient 0).
func TestBCEGradientZeroAtTargetsProperty(t *testing.T) {
	f := func(seed int64) bool {
		logits := genTensor(seed, 2, 3)
		logits.SetRequiresGrad(true)
		targets := New(2, 3)
		for i, x := range logits.Data {
			targets.Data[i] = 1 / (1 + math.Exp(-x))
		}
		loss := BCEWithLogits(logits, targets)
		loss.Backward()
		for _, g := range logits.Grad {
			if math.Abs(g) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
