package tensor

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	orig := []*Tensor{randParam(rng, 3, 4), randParam(rng, 1, 7), randParam(rng, 5, 5)}
	var buf bytes.Buffer
	if err := WriteTensors(&buf, orig); err != nil {
		t.Fatalf("WriteTensors: %v", err)
	}
	restored := []*Tensor{New(3, 4), New(1, 7), New(5, 5)}
	if err := ReadTensors(&buf, restored); err != nil {
		t.Fatalf("ReadTensors: %v", err)
	}
	for i := range orig {
		for j := range orig[i].Data {
			if orig[i].Data[j] != restored[i].Data[j] {
				t.Fatalf("tensor %d elem %d: %v != %v", i, j, orig[i].Data[j], restored[i].Data[j])
			}
		}
	}
}

func TestReadTensorsShapeMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTensors(&buf, []*Tensor{New(2, 2)}); err != nil {
		t.Fatal(err)
	}
	err := ReadTensors(&buf, []*Tensor{New(2, 3)})
	if err == nil || !strings.Contains(err.Error(), "shape mismatch") {
		t.Fatalf("want shape mismatch error, got %v", err)
	}
}

func TestReadTensorsCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTensors(&buf, []*Tensor{New(2, 2)}); err != nil {
		t.Fatal(err)
	}
	err := ReadTensors(&buf, []*Tensor{New(2, 2), New(1, 1)})
	if err == nil {
		t.Fatal("want count mismatch error")
	}
}

func TestReadTensorsBadMagic(t *testing.T) {
	err := ReadTensors(strings.NewReader("XXXXgarbage"), []*Tensor{New(1, 1)})
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("want magic error, got %v", err)
	}
}

func TestReadTensorsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTensors(&buf, []*Tensor{New(4, 4)}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-9]
	err := ReadTensors(bytes.NewReader(trunc), []*Tensor{New(4, 4)})
	if err == nil {
		t.Fatal("want truncation error")
	}
}

// snapshot copies every tensor's data for later bit-identity comparison.
func snapshot(ts []*Tensor) [][]float64 {
	out := make([][]float64, len(ts))
	for i, t := range ts {
		out[i] = append([]float64(nil), t.Data...)
	}
	return out
}

func assertUnchanged(t *testing.T, ts []*Tensor, snap [][]float64) {
	t.Helper()
	for i, tt := range ts {
		for j, v := range tt.Data {
			if v != snap[i][j] {
				t.Fatalf("tensor %d elem %d mutated by failed load: %v != %v", i, j, v, snap[i][j])
			}
		}
	}
}

// TestReadTensorsAtomicOnFailure is the non-atomic-load regression pin: a
// checkpoint that fails mid-decode — truncated in the middle of the second
// tensor, shape-mismatched past the first, or carrying trailing garbage —
// must leave the destination tensors bit-identical to their pre-Load state.
func TestReadTensorsAtomicOnFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	if err := WriteTensors(&buf, []*Tensor{randParam(rng, 4, 4), randParam(rng, 8, 2)}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	dest := func() []*Tensor { return []*Tensor{randParam(rng, 4, 4), randParam(rng, 8, 2)} }

	cases := map[string][]byte{
		// Cut inside the second tensor's data: the first tensor decodes
		// cleanly, so a non-atomic reader would have clobbered it already.
		"truncated": full[:len(full)-17],
		// Trailing garbage after a valid stream.
		"trailing": append(append([]byte(nil), full...), 0xde, 0xad),
	}
	for name, data := range cases {
		ts := dest()
		snap := snapshot(ts)
		if err := ReadTensors(bytes.NewReader(data), ts); err == nil {
			t.Fatalf("%s: want error, got nil", name)
		}
		assertUnchanged(t, ts, snap)
	}

	// Shape mismatch on the second tensor only: tensor #0 matches and fully
	// decodes before the failure is discovered.
	ts := []*Tensor{randParam(rng, 4, 4), randParam(rng, 2, 8)}
	snap := snapshot(ts)
	if err := ReadTensors(bytes.NewReader(full), ts); err == nil || !strings.Contains(err.Error(), "shape mismatch") {
		t.Fatalf("want shape mismatch, got %v", err)
	}
	assertUnchanged(t, ts, snap)
}

func TestReadTensorsRejectsTrailingBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var buf bytes.Buffer
	if err := WriteTensors(&buf, []*Tensor{randParam(rng, 3, 3)}); err != nil {
		t.Fatal(err)
	}
	// A second concatenated checkpoint is the classic way to get a
	// prefix-matching file that used to load "successfully".
	if err := WriteTensors(&buf, []*Tensor{randParam(rng, 3, 3)}); err != nil {
		t.Fatal(err)
	}
	err := ReadTensors(bytes.NewReader(buf.Bytes()), []*Tensor{New(3, 3)})
	if err == nil || !strings.Contains(err.Error(), "trailing bytes") {
		t.Fatalf("want trailing-bytes error, got %v", err)
	}
}

// writeTensorsV1 emits the legacy unversioned "TSR1" layout byte for byte,
// standing in for a checkpoint written before the version field existed.
func writeTensorsV1(buf *bytes.Buffer, ts []*Tensor) {
	buf.WriteString(serializeMagicV1)
	var w [8]byte
	binary.LittleEndian.PutUint32(w[:4], uint32(len(ts)))
	buf.Write(w[:4])
	for _, t := range ts {
		binary.LittleEndian.PutUint32(w[:4], uint32(t.Rows))
		buf.Write(w[:4])
		binary.LittleEndian.PutUint32(w[:4], uint32(t.Cols))
		buf.Write(w[:4])
		for _, v := range t.Data {
			binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
			buf.Write(w[:])
		}
	}
}

func TestReadTensorsAcceptsLegacyV1(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	orig := []*Tensor{randParam(rng, 5, 3)}
	var buf bytes.Buffer
	writeTensorsV1(&buf, orig)
	restored := []*Tensor{New(5, 3)}
	if err := ReadTensors(&buf, restored); err != nil {
		t.Fatalf("legacy v1 checkpoint rejected: %v", err)
	}
	for j := range orig[0].Data {
		if orig[0].Data[j] != restored[0].Data[j] {
			t.Fatalf("elem %d: %v != %v", j, orig[0].Data[j], restored[0].Data[j])
		}
	}
}

func TestReadTensorsRejectsFutureVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(serializeMagic)
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], uint32(SerializeVersion+1))
	buf.Write(w[:])
	err := ReadTensors(&buf, nil)
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("want unsupported-version error, got %v", err)
	}
}
