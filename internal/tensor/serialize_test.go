package tensor

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	orig := []*Tensor{randParam(rng, 3, 4), randParam(rng, 1, 7), randParam(rng, 5, 5)}
	var buf bytes.Buffer
	if err := WriteTensors(&buf, orig); err != nil {
		t.Fatalf("WriteTensors: %v", err)
	}
	restored := []*Tensor{New(3, 4), New(1, 7), New(5, 5)}
	if err := ReadTensors(&buf, restored); err != nil {
		t.Fatalf("ReadTensors: %v", err)
	}
	for i := range orig {
		for j := range orig[i].Data {
			if orig[i].Data[j] != restored[i].Data[j] {
				t.Fatalf("tensor %d elem %d: %v != %v", i, j, orig[i].Data[j], restored[i].Data[j])
			}
		}
	}
}

func TestReadTensorsShapeMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTensors(&buf, []*Tensor{New(2, 2)}); err != nil {
		t.Fatal(err)
	}
	err := ReadTensors(&buf, []*Tensor{New(2, 3)})
	if err == nil || !strings.Contains(err.Error(), "shape mismatch") {
		t.Fatalf("want shape mismatch error, got %v", err)
	}
}

func TestReadTensorsCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTensors(&buf, []*Tensor{New(2, 2)}); err != nil {
		t.Fatal(err)
	}
	err := ReadTensors(&buf, []*Tensor{New(2, 2), New(1, 1)})
	if err == nil {
		t.Fatal("want count mismatch error")
	}
}

func TestReadTensorsBadMagic(t *testing.T) {
	err := ReadTensors(strings.NewReader("XXXXgarbage"), []*Tensor{New(1, 1)})
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("want magic error, got %v", err)
	}
}

func TestReadTensorsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTensors(&buf, []*Tensor{New(4, 4)}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-9]
	err := ReadTensors(bytes.NewReader(trunc), []*Tensor{New(4, 4)})
	if err == nil {
		t.Fatal("want truncation error")
	}
}
