//go:build !amd64

package tensor

// Non-amd64 platforms have no SIMD int8 kernels; QuantizeAvailable stays
// false and the quantized path is never selected, but the generic kernels
// keep the package compiling and testable.
var haveQuantKernels = false

func dotQuad(x, w []int8, stride, n int, sums *[4]int32) {
	dotQuadGeneric(x, w, stride, n, sums)
}

func dotQuadW(x []int16, w []int8, stride, n int, sums *[4]int32) {
	dotQuadWGeneric(x, w, stride, n, sums)
}

func expGrid(s []float64, maxv float64, pq []int16) int {
	return expGridGeneric(s, maxv, pq)
}
