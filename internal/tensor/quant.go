// Int8 quantized kernels for the NoGrad inference fast path. Unlike the
// fp64 kernels in fused.go, which are bit-exact against the composed
// autograd ops, everything here is deliberately *lossy*: weights are
// quantized to int8 with symmetric per-output-row absmax scales at
// pack-build time, activations are quantized per row on the fly, and dot
// products run in int32 via the SIMD kernels in quant_amd64.s (with a pure
// Go fallback on other platforms). The accuracy contract is a documented
// tolerance, pinned by quant_test.go and the adtd accuracy-delta test — see
// DESIGN.md §11.
//
// Selection rules: a quantized kernel may only replace its fp64 counterpart
// when the fast path itself is selectable (FastPathEnabled && NoGrad),
// quantization is requested (Workspace.Quantize, seeded from SetQuantize or
// a per-request override), and QuantizeAvailable reports SIMD support —
// without AVX2 the int8 arithmetic is slower than the fp64 kernels it
// replaces, so the fp64 fast path is kept instead.
package tensor

import (
	"math"
	"sync/atomic"
)

var quantizeOn atomic.Bool

// SetQuantize toggles the process-wide default for int8 quantized
// inference. Off by default; per-request overrides are applied by the
// callers that thread a Workspace (see Workspace.Quantize). Safe to call
// concurrently.
func SetQuantize(on bool) { quantizeOn.Store(on) }

// QuantizeEnabled reports the process-wide quantization default.
func QuantizeEnabled() bool { return quantizeOn.Load() }

// QuantizeAvailable reports whether the SIMD int8 kernels are usable on
// this machine (amd64 with AVX2). When false, requesting quantization is a
// silent no-op: the fp64 fast path runs instead, because scalar int8
// arithmetic is slower than the fp64 kernels.
func QuantizeAvailable() bool { return haveQuantKernels }

const (
	// quantLane is the int8 dot kernels' step: row lengths are zero-padded
	// to a multiple of it.
	quantLane = 16
	// quantProbScale is the fixed quantization grid for attention
	// probabilities (14-bit). Softmax weights live in (0, 1] with the row
	// max exactly 1, so the grid needs no dynamic scale; 14 bits keeps the
	// worst-case int32 AV accumulator (127 · quantProbScale · Lkv) inside
	// int32 for Lkv ≤ quantMaxLkv.
	quantProbScale = 16383
	// quantMaxLkv bounds the key/value length of QuantAttentionCore:
	// 127·16383·1024 = 2 130 576 384 < 2³¹.
	quantMaxLkv = 1024
)

// padLane rounds n up to a multiple of quantLane.
func padLane(n int) int { return (n + quantLane - 1) &^ (quantLane - 1) }

// QuantMatrix is an int8 weight pack: the transpose of an in×out fp64
// weight matrix, stored one output row at a time (out × Stride int8,
// Stride = in padded to quantLane with zeros) with a symmetric per-output
// scale (row absmax / 127). The transposed layout turns every output
// column into a contiguous row the int8 dot kernels can stream.
type QuantMatrix struct {
	In, Out int
	Stride  int       // padded In, multiple of quantLane
	W       []int8    // Out × Stride
	Scale   []float64 // per output: dequantization factor absmax/127
}

// PackQuantMatrix quantizes an in×out row-major fp64 weight matrix.
// All-zero (or non-finite) output columns get scale 0 and a zero row, which
// dequantizes to exact zeros.
func PackQuantMatrix(w []float64, in, out int) *QuantMatrix {
	stride := padLane(in)
	qm := &QuantMatrix{
		In: in, Out: out, Stride: stride,
		W: make([]int8, out*stride), Scale: make([]float64, out),
	}
	for o := 0; o < out; o++ {
		maxv := 0.0
		for i := 0; i < in; i++ {
			v := w[i*out+o]
			if v < 0 {
				v = -v
			}
			if v > maxv {
				maxv = v
			}
		}
		if maxv == 0 || maxv > math.MaxFloat64/2 || math.IsNaN(maxv) {
			continue // row stays zero, Scale stays 0
		}
		qm.Scale[o] = maxv / 127
		inv := 127 / maxv
		row := qm.W[o*stride : (o+1)*stride]
		for i := 0; i < in; i++ {
			row[i] = quantVal(w[i*out+o] * inv)
		}
	}
	return qm
}

// quantVal rounds to nearest (ties to even — the ROUNDSD intrinsic, chosen
// over half-away because the branchless single instruction is measurably
// faster in the per-row quantization loops and the grid choice is
// accuracy-neutral) into int8; the input must already be scaled into
// [-127.5, 127.5).
func quantVal(q float64) int8 {
	return int8(int32(math.RoundToEven(q)))
}

// quantizeRow quantizes src into dst (len(dst) ≥ len(src); the tail is
// zero-padded) and returns the dequantization scale absmax/127. An all-zero
// or non-finite row quantizes to zeros with scale 0. math.Abs and the
// rounding in quantVal compile to branchless instructions, keeping the two
// passes tight — this runs per activation row on every quantized forward.
func quantizeRow(dst []int8, src []float64) float64 {
	maxv := 0.0
	for _, v := range src {
		if a := math.Abs(v); a > maxv {
			maxv = a
		}
	}
	for i := len(src); i < len(dst); i++ {
		dst[i] = 0
	}
	if maxv == 0 || maxv > math.MaxFloat64/2 {
		for i := range src {
			dst[i] = 0
		}
		return 0
	}
	inv := 127 / maxv
	for i, v := range src {
		dst[i] = quantVal(v * inv)
	}
	return maxv / 127
}

// dotQuadGeneric is the portable reference for the AVX2 kernel: sums[r] =
// Σ_{k<n} x[k]·w[r·stride+k] for r = 0..3, n a positive multiple of
// quantLane.
func dotQuadGeneric(x, w []int8, stride, n int, sums *[4]int32) {
	var s0, s1, s2, s3 int32
	w1 := w[stride:]
	w2 := w[2*stride:]
	w3 := w[3*stride:]
	for k := 0; k < n; k++ {
		xv := int32(x[k])
		s0 += xv * int32(w[k])
		s1 += xv * int32(w1[k])
		s2 += xv * int32(w2[k])
		s3 += xv * int32(w3[k])
	}
	sums[0], sums[1], sums[2], sums[3] = s0, s1, s2, s3
}

// dotQuadWGeneric is dotQuadGeneric with an int16 left operand (attention
// probabilities against int8 values).
func dotQuadWGeneric(x []int16, w []int8, stride, n int, sums *[4]int32) {
	var s0, s1, s2, s3 int32
	w1 := w[stride:]
	w2 := w[2*stride:]
	w3 := w[3*stride:]
	for k := 0; k < n; k++ {
		xv := int32(x[k])
		s0 += xv * int32(w[k])
		s1 += xv * int32(w1[k])
		s2 += xv * int32(w2[k])
		s3 += xv * int32(w3[k])
	}
	sums[0], sums[1], sums[2], sums[3] = s0, s1, s2, s3
}

// dotOne is the scalar single-row int8 dot for ranges shorter than a quad.
func dotOne(x, w []int8) int32 {
	var s int32
	for k, xv := range x {
		s += int32(xv) * int32(w[k])
	}
	return s
}

// fastExp approximates math.Exp with a degree-6 polynomial on the reduced
// argument and bit-trick 2ᵏ reconstruction; max relative error ≈ 1.7e-7
// over the softmax range (pinned by TestFastExp). Only the quantized
// (lossy) kernels use it — the fp64 fast path keeps math.Exp for
// bit-exactness.
func fastExp(x float64) float64 {
	if x < -708 {
		return 0
	}
	if x > 709 {
		return math.Inf(1)
	}
	const log2e = 1.4426950408889634
	const ln2 = 0.6931471805599453
	k := math.Floor(x*log2e + 0.5)
	f := x - k*ln2
	p := 1.0 + f*(1.0+f*(0.5+f*(1.0/6+f*(1.0/24+f*(1.0/120+f*(1.0/720))))))
	return math.Float64frombits(math.Float64bits(p) + uint64(int64(k))<<52)
}

// expGridGeneric maps each s[j] ≤ maxv onto the fixed softmax grid,
// pq[j] = round(e^(s[j]-maxv) · quantProbScale), returning Σ pq[j]. It is
// fastExp's polynomial inlined by hand — a call per element costs more than
// the arithmetic — with the low cut at the grid's resolution (e^-10.5 ·
// quantProbScale < 0.5 rounds to 0), which also keeps the bit-trick argument
// far from the subnormal range. The AVX2 expGridAsm computes the same values
// four lanes at a time; the two may differ by one grid step at rounding
// boundaries (pinned by TestExpGridAsmMatchesGeneric).
func expGridGeneric(s []float64, maxv float64, pq []int16) int {
	const log2e = 1.4426950408889634
	const ln2 = 0.6931471805599453
	sum := 0
	for j, v := range s {
		x := v - maxv
		if x < -10.5 {
			pq[j] = 0
			continue
		}
		kf := math.Floor(x*log2e + 0.5)
		f := x - kf*ln2
		e := 1.0 + f*(1.0+f*(0.5+f*(1.0/6+f*(1.0/24+f*(1.0/120+f*(1.0/720))))))
		e = math.Float64frombits(math.Float64bits(e) + uint64(int64(kf))<<52)
		p := int16(e*quantProbScale + 0.5)
		pq[j] = p
		sum += int(p)
	}
	return sum
}

// fastTanh is tanh via fastExp (same relative-error class), used by the
// approximate GELU on the quantized path.
func fastTanh(x float64) float64 {
	neg := x < 0
	if neg {
		x = -x
	}
	e := fastExp(-2 * x) // in [0, 1], no overflow for any input
	t := (1 - e) / (1 + e)
	if neg {
		return -t
	}
	return t
}

// FastGELUInPlace is FusedGELUInPlace with the tanh evaluated through
// fastExp (~1e-7 relative error). Selected only on the quantized path,
// where bit-exactness is already traded for speed.
func FastGELUInPlace(x []float64) {
	const c = 0.7978845608028654 // sqrt(2/π)
	for i, v := range x {
		inner := c * (v + 0.044715*v*v*v)
		x[i] = 0.5 * v * (1 + fastTanh(inner))
	}
}

// LinearQuantInto is the int8 counterpart of LinearInto: dst = x(rows×in) ·
// W[:, c0:c1) + bias[c0:c1), where the weight columns come from the
// transposed int8 pack qm (so the column range [c0, c1) is a row range of
// qm.W). Activations are quantized per row with a dynamic absmax scale into
// workspace scratch; each int32 dot dequantizes as
// float64(dot)·xscale·qm.Scale[col] + bias.
func LinearQuantInto(ws *Workspace, dst, x []float64, rows, in int, qm *QuantMatrix, c0, c1 int, bias []float64) {
	n := c1 - c0
	stride := qm.Stride
	xq := ws.TakeI8(rows * stride)
	xs := ws.Take(rows)
	for i := 0; i < rows; i++ {
		xs[i] = quantizeRow(xq[i*stride:(i+1)*stride], x[i*in:(i+1)*in])
	}
	// The int8 dots cost roughly a quarter of the fp64 mul-adds, so scale
	// the row-cost estimate accordingly for the parallel threshold. The
	// quantized activations are read-only across shards; each shard writes
	// only its own dst rows.
	parallelRows(rows, (in*n)/4+1, func(lo, hi int) {
		var sums [4]int32
		for i := lo; i < hi; i++ {
			xrow := xq[i*stride : (i+1)*stride]
			drow := dst[i*n : (i+1)*n]
			xsc := xs[i]
			r := c0
			for ; r+4 <= c1; r += 4 {
				dotQuad(xrow, qm.W[r*stride:(r+3)*stride+stride], stride, stride, &sums)
				d := drow[r-c0 : r-c0+4]
				d[0] = float64(sums[0]) * xsc * qm.Scale[r]
				d[1] = float64(sums[1]) * xsc * qm.Scale[r+1]
				d[2] = float64(sums[2]) * xsc * qm.Scale[r+2]
				d[3] = float64(sums[3]) * xsc * qm.Scale[r+3]
			}
			if r < c1 {
				if c1-c0 >= 4 {
					// Re-run the last full quad so the tail is covered;
					// overlapping outputs are recomputed identically.
					r = c1 - 4
					dotQuad(xrow, qm.W[r*stride:(r+3)*stride+stride], stride, stride, &sums)
					d := drow[r-c0 : r-c0+4]
					d[0] = float64(sums[0]) * xsc * qm.Scale[r]
					d[1] = float64(sums[1]) * xsc * qm.Scale[r+1]
					d[2] = float64(sums[2]) * xsc * qm.Scale[r+2]
					d[3] = float64(sums[3]) * xsc * qm.Scale[r+3]
				} else {
					for ; r < c1; r++ {
						s := dotOne(xrow, qm.W[r*stride:r*stride+stride])
						drow[r-c0] = float64(s) * xsc * qm.Scale[r]
					}
				}
			}
			if bias != nil {
				for j := range drow {
					drow[j] += bias[c0+j]
				}
			}
		}
	})
}

// QuantAttentionCore is the int8 attention core: keys, values and queries
// are quantized per head with dynamic absmax scales, scores run as
// int8×int8 dots, the softmax uses fastExp with probabilities quantized
// onto the fixed 14-bit grid, and the AV product runs as int16×int8 dots
// against a per-head transposed value pack. -Inf mask positions are handled
// as run ranges: score and softmax work only touches allowed runs, and the
// AV dots stream 16-aligned windows around them with the pad slop zeroed.
// Output differs from FusedAttentionCore by the documented quantization
// tolerance (quant_test.go).
//
// Returns false — computing nothing — when the shape is outside the
// envelope: HeadDim not a positive multiple of 16, or Lkv > quantMaxLkv
// (the int32 AV accumulator bound). Callers fall back to the fp64 core.
func QuantAttentionCore(ws *Workspace, dst, qp, kvp []float64, sh AttnShape, mask *Tensor) bool {
	if sh.HeadDim <= 0 || sh.HeadDim%quantLane != 0 || sh.Lkv > quantMaxLkv || sh.Lkv == 0 {
		return false
	}
	hd := sh.Heads * sh.HeadDim
	lkv16 := padLane(sh.Lkv)

	// Per-head int8 keys: key j's head-h row at kq[j*hd+h*HeadDim], scale
	// kqs[h*Lkv+j] — head-major so the score loop walks its head's scales
	// contiguously. Rows of one head are hd apart — the stride the score
	// quads stream.
	kq := ws.TakeI8(sh.Lkv * hd)
	kqs := ws.Take(sh.Lkv * sh.Heads)
	for j := 0; j < sh.Lkv; j++ {
		base := j*sh.KVStride + sh.KOff
		for h := 0; h < sh.Heads; h++ {
			kqs[h*sh.Lkv+j] = quantizeRow(
				kq[j*hd+h*sh.HeadDim:j*hd+(h+1)*sh.HeadDim],
				kvp[base+h*sh.HeadDim:base+(h+1)*sh.HeadDim])
		}
	}

	// Transposed int8 values: head h, output dim c is the contiguous lkv16
	// row vtq[(h*HeadDim+c)*lkv16 : ...], scale vts[h*HeadDim+c]; the zero
	// padding past Lkv contributes nothing to the dots.
	vtq := ws.TakeI8(hd * lkv16)
	vts := ws.Take(hd)
	vcol := ws.Take(sh.Lkv)
	for h := 0; h < sh.Heads; h++ {
		vOff := sh.VOff + h*sh.HeadDim
		for c := 0; c < sh.HeadDim; c++ {
			for j := 0; j < sh.Lkv; j++ {
				vcol[j] = kvp[j*sh.KVStride+vOff+c]
			}
			row := h*sh.HeadDim + c
			vts[row] = quantizeRow(vtq[row*lkv16:(row+1)*lkv16], vcol)
		}
	}

	srow := ws.Take(sh.Lkv)
	pq := ws.TakeI16(lkv16)
	qq := ws.TakeI8(sh.HeadDim)
	// Allowed runs and their 16-aligned, merged AV windows, as flattened
	// [lo, hi) pairs. A maskless row is the single run [0, Lkv).
	ranges := ws.TakeInt(2 * (sh.Lkv/2 + 1))
	windows := ws.TakeInt(2 * (sh.Lkv/2 + 1))
	negInf := math.Inf(-1)

	for i := 0; i < sh.Lq; i++ {
		var mrow []float64
		if mask != nil {
			mrow = mask.Row(i)
		}
		nr := maskRuns(ranges, mrow, sh.Lkv)
		if nr == 0 {
			// Fully masked row: softmax yields zeros, so AV is zero.
			for h := 0; h < sh.Heads; h++ {
				drow := dst[i*hd+h*sh.HeadDim : i*hd+(h+1)*sh.HeadDim]
				for c := range drow {
					drow[c] = 0
				}
			}
			continue
		}
		nw := alignWindows(windows, ranges, nr, lkv16)
		// Zero every in-window probability once per query row; the per-head
		// fill below only writes allowed positions, so masked positions
		// inside a window stay zero for every head.
		for w := 0; w < nw; w++ {
			zq := pq[windows[2*w]:windows[2*w+1]]
			for k := range zq {
				zq[k] = 0
			}
		}

		for h := 0; h < sh.Heads; h++ {
			qOff := sh.QOff + h*sh.HeadDim
			qsc := quantizeRow(qq, qp[i*sh.QStride+qOff:i*sh.QStride+qOff+sh.HeadDim])
			qkScale := qsc * sh.Scale
			ksh := kqs[h*sh.Lkv : (h+1)*sh.Lkv]
			maxv := negInf
			for r := 0; r < nr; r++ {
				lo, hi := ranges[2*r], ranges[2*r+1]
				j := lo
				var sums [4]int32
				for ; j+4 <= hi; j += 4 {
					dotQuad(qq, kq[j*hd+h*sh.HeadDim:(j+3)*hd+h*sh.HeadDim+sh.HeadDim], hd, sh.HeadDim, &sums)
					for t := 0; t < 4; t++ {
						v := float64(sums[t]) * qkScale * ksh[j+t]
						if mrow != nil {
							v += mrow[j+t]
						}
						srow[j+t] = v
						if v > maxv {
							maxv = v
						}
					}
				}
				if j < hi {
					if hi-lo >= 4 {
						j = hi - 4 // overlap: recompute the last full quad
						dotQuad(qq, kq[j*hd+h*sh.HeadDim:(j+3)*hd+h*sh.HeadDim+sh.HeadDim], hd, sh.HeadDim, &sums)
						for t := 0; t < 4; t++ {
							v := float64(sums[t]) * qkScale * ksh[j+t]
							if mrow != nil {
								v += mrow[j+t]
							}
							srow[j+t] = v
							if v > maxv {
								maxv = v
							}
						}
					} else {
						for ; j < hi; j++ {
							s := dotOne(qq, kq[j*hd+h*sh.HeadDim:j*hd+h*sh.HeadDim+sh.HeadDim])
							v := float64(s) * qkScale * ksh[j]
							if mrow != nil {
								v += mrow[j]
							}
							srow[j] = v
							if v > maxv {
								maxv = v
							}
						}
					}
				}
			}
			drow := dst[i*hd+h*sh.HeadDim : i*hd+(h+1)*sh.HeadDim]
			if math.IsInf(maxv, -1) {
				for c := range drow {
					drow[c] = 0
				}
				continue
			}
			// Softmax onto the fixed grid: the row max maps to exactly
			// quantProbScale, so sumQ ≥ quantProbScale whenever any position
			// is allowed. Normalization folds into the dequant factor.
			sumQ := 0
			for r := 0; r < nr; r++ {
				lo, hi := ranges[2*r], ranges[2*r+1]
				sumQ += expGrid(srow[lo:hi], maxv, pq[lo:hi])
			}
			invSum := 1.0 / float64(sumQ)
			for c := 0; c < sh.HeadDim; c += 4 {
				var acc [4]int32
				for w := 0; w < nw; w++ {
					wlo, whi := windows[2*w], windows[2*w+1]
					var sums [4]int32
					dotQuadW(pq[wlo:whi], vtq[(h*sh.HeadDim+c)*lkv16+wlo:(h*sh.HeadDim+c+3)*lkv16+whi], lkv16, whi-wlo, &sums)
					acc[0] += sums[0]
					acc[1] += sums[1]
					acc[2] += sums[2]
					acc[3] += sums[3]
				}
				drow[c] = float64(acc[0]) * vts[h*sh.HeadDim+c] * invSum
				drow[c+1] = float64(acc[1]) * vts[h*sh.HeadDim+c+1] * invSum
				drow[c+2] = float64(acc[2]) * vts[h*sh.HeadDim+c+2] * invSum
				drow[c+3] = float64(acc[3]) * vts[h*sh.HeadDim+c+3] * invSum
			}
		}
	}
	return true
}

// maskRuns writes the maximal runs of non-(-Inf) positions of mrow (length
// lkv; nil means all allowed) into out as flattened [lo, hi) pairs and
// returns the run count.
func maskRuns(out []int, mrow []float64, lkv int) int {
	if mrow == nil {
		out[0], out[1] = 0, lkv
		return 1
	}
	n := 0
	j := 0
	for j < lkv {
		if math.IsInf(mrow[j], -1) {
			j++
			continue
		}
		lo := j
		for j < lkv && !math.IsInf(mrow[j], -1) {
			j++
		}
		out[2*n], out[2*n+1] = lo, j
		n++
	}
	return n
}

// alignWindows rounds each run out to quantLane boundaries (clamped to
// lkv16) and merges overlapping or adjacent windows, so the AV dots stream
// whole lanes while double-counting nothing.
func alignWindows(out, ranges []int, nr, lkv16 int) int {
	n := 0
	for r := 0; r < nr; r++ {
		lo := ranges[2*r] &^ (quantLane - 1)
		hi := (ranges[2*r+1] + quantLane - 1) &^ (quantLane - 1)
		if hi > lkv16 {
			hi = lkv16
		}
		if n > 0 && lo <= out[2*n-1] {
			if hi > out[2*n-1] {
				out[2*n-1] = hi
			}
			continue
		}
		out[2*n], out[2*n+1] = lo, hi
		n++
	}
	return n
}
