package tensor

import (
	"math/rand"
	"testing"
)

// The kernel-level pairs below time one quantized kernel against its fp64
// counterpart on the shapes the serving path actually runs (128-token
// self-attention at the repro scale); the end-to-end ratios live in the nn
// and adtd benchmarks.

func attnBenchSetup(rng *rand.Rand) (ws *Workspace, qp []float64, sh AttnShape, dst []float64) {
	h := 64
	sh = AttnShape{Lq: 128, Lkv: 128, Heads: 4, HeadDim: 16, QOff: 0, QStride: 3 * h, KOff: h, VOff: 2 * h, KVStride: 3 * h, Scale: 0.25}
	qp = make([]float64, 128*3*h)
	for i := range qp {
		qp[i] = rng.NormFloat64()
	}
	dst = make([]float64, 128*h)
	ws = NewWorkspace()
	return
}

func BenchmarkFusedAttentionCore128(b *testing.B) {
	ws, qp, sh, dst := attnBenchSetup(rand.New(rand.NewSource(1)))
	FusedAttentionCore(ws, dst, qp, qp, sh, nil)
	ws.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FusedAttentionCore(ws, dst, qp, qp, sh, nil)
		ws.Reset()
	}
}

func BenchmarkQuantAttentionCore128(b *testing.B) {
	ws, qp, sh, dst := attnBenchSetup(rand.New(rand.NewSource(1)))
	if !QuantizeAvailable() {
		b.Skip("no SIMD int8 kernels on this machine")
	}
	if !QuantAttentionCore(ws, dst, qp, qp, sh, nil) {
		b.Fatal("shape refused by the quantized core")
	}
	ws.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QuantAttentionCore(ws, dst, qp, qp, sh, nil)
		ws.Reset()
	}
}

func linearBenchSetup(rng *rand.Rand) (x, w, bias, dst []float64) {
	x = make([]float64, 128*64)
	w = make([]float64, 64*192)
	bias = make([]float64, 192)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	dst = make([]float64, 128*192)
	return
}

func BenchmarkLinearInto128x64x192(b *testing.B) {
	x, w, bias, dst := linearBenchSetup(rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LinearInto(dst, x, 128, 64, w, 192, 0, 192, bias)
	}
}

func BenchmarkLinearQuantInto128x64x192(b *testing.B) {
	x, w, bias, dst := linearBenchSetup(rand.New(rand.NewSource(1)))
	if !QuantizeAvailable() {
		b.Skip("no SIMD int8 kernels on this machine")
	}
	qm := PackQuantMatrix(w, 64, 192)
	ws := NewWorkspace()
	LinearQuantInto(ws, dst, x, 128, 64, qm, 0, 192, bias)
	ws.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LinearQuantInto(ws, dst, x, 128, 64, qm, 0, 192, bias)
		ws.Reset()
	}
}
