// Inference workspace: a per-goroutine arena of reusable scratch buffers for
// the NoGrad fast path (fused.go). Unlike the sync.Pool arena behind
// allocData, a Workspace hands out buffers without zeroing them and takes
// them all back in one Reset, so a fused forward pass performs near-zero
// heap allocation once the workspace is warm.
package tensor

import "sync"

// Workspace is a grow-only arena of scratch buffers keyed by exact length.
// It is NOT safe for concurrent use; acquire one per goroutine with
// AcquireWorkspace and return it with ReleaseWorkspace. Buffers obtained
// from Take are valid until the next Reset (ReleaseWorkspace resets).
type Workspace struct {
	free map[int][][]float64
	used [][]float64
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{free: make(map[int][][]float64)}
}

// Take returns a scratch slice of length n with UNSPECIFIED contents; the
// caller must fully overwrite it. The slice belongs to the workspace until
// the next Reset.
func (w *Workspace) Take(n int) []float64 {
	if l := w.free[n]; len(l) > 0 {
		b := l[len(l)-1]
		w.free[n] = l[:len(l)-1]
		w.used = append(w.used, b)
		return b
	}
	b := make([]float64, n)
	w.used = append(w.used, b)
	return b
}

// TakeZero is Take with the buffer cleared.
func (w *Workspace) TakeZero(n int) []float64 {
	b := w.Take(n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// Matrix wraps a Take buffer in a leaf tensor (no parents, no grad). The
// tensor must not outlive the next Reset; ReleaseGraph skips it because
// leaves are never freed.
func (w *Workspace) Matrix(rows, cols int) *Tensor {
	return &Tensor{Rows: rows, Cols: cols, Data: w.Take(rows * cols)}
}

// Reset reclaims every buffer handed out since the previous Reset. Any
// slice or Matrix obtained earlier becomes invalid for reading or writing.
func (w *Workspace) Reset() {
	for _, b := range w.used {
		w.free[len(b)] = append(w.free[len(b)], b)
	}
	w.used = w.used[:0]
}

// wsPool recycles workspaces across goroutines; in steady state each worker
// goroutine ends up reusing a warm workspace (sync.Pool is per-P), which is
// what gives the pipeline's inference workers allocation-free forwards.
var wsPool = sync.Pool{New: func() interface{} { return NewWorkspace() }}

// AcquireWorkspace returns a workspace for exclusive use by the calling
// goroutine. Pair with ReleaseWorkspace.
func AcquireWorkspace() *Workspace {
	return wsPool.Get().(*Workspace)
}

// ReleaseWorkspace resets ws and returns it to the shared pool. Every
// buffer taken from it is invalidated; arena-backed op outputs built with
// InferenceResult are unaffected.
func ReleaseWorkspace(ws *Workspace) {
	ws.Reset()
	wsPool.Put(ws)
}
