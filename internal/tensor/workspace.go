// Inference workspace: a per-goroutine arena of reusable scratch buffers for
// the NoGrad fast path (fused.go). Unlike the sync.Pool arena behind
// allocData, a Workspace hands out buffers without zeroing them and takes
// them all back in one Reset, so a fused forward pass performs near-zero
// heap allocation once the workspace is warm.
package tensor

import "sync"

// Workspace is a grow-only arena of scratch buffers keyed by exact length.
// It is NOT safe for concurrent use; acquire one per goroutine with
// AcquireWorkspace and return it with ReleaseWorkspace. Buffers obtained
// from Take are valid until the next Reset (ReleaseWorkspace resets).
type Workspace struct {
	free map[int][][]float64
	used [][]float64

	freeI8  map[int][][]int8
	usedI8  [][]int8
	freeI16 map[int][][]int16
	usedI16 [][]int16
	freeInt map[int][][]int
	usedInt [][]int

	// Quantize requests the int8 kernels for forwards threaded through this
	// workspace. AcquireWorkspace seeds it from the process default
	// (QuantizeEnabled); entry points with a per-request preference overwrite
	// it after acquiring. Consumers must additionally check
	// QuantizeAvailable before selecting a quantized kernel.
	Quantize bool
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{
		free:    make(map[int][][]float64),
		freeI8:  make(map[int][][]int8),
		freeI16: make(map[int][][]int16),
		freeInt: make(map[int][][]int),
	}
}

// Take returns a scratch slice of length n with UNSPECIFIED contents; the
// caller must fully overwrite it. The slice belongs to the workspace until
// the next Reset.
func (w *Workspace) Take(n int) []float64 {
	if l := w.free[n]; len(l) > 0 {
		b := l[len(l)-1]
		w.free[n] = l[:len(l)-1]
		w.used = append(w.used, b)
		return b
	}
	b := make([]float64, n)
	w.used = append(w.used, b)
	return b
}

// TakeZero is Take with the buffer cleared.
func (w *Workspace) TakeZero(n int) []float64 {
	b := w.Take(n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// Matrix wraps a Take buffer in a leaf tensor (no parents, no grad). The
// tensor must not outlive the next Reset; ReleaseGraph skips it because
// leaves are never freed.
func (w *Workspace) Matrix(rows, cols int) *Tensor {
	return &Tensor{Rows: rows, Cols: cols, Data: w.Take(rows * cols)}
}

// TakeI8 is Take for int8 scratch (quantized activations and weight tiles).
func (w *Workspace) TakeI8(n int) []int8 {
	if l := w.freeI8[n]; len(l) > 0 {
		b := l[len(l)-1]
		w.freeI8[n] = l[:len(l)-1]
		w.usedI8 = append(w.usedI8, b)
		return b
	}
	b := make([]int8, n)
	w.usedI8 = append(w.usedI8, b)
	return b
}

// TakeI16 is Take for int16 scratch (quantized attention probabilities).
func (w *Workspace) TakeI16(n int) []int16 {
	if l := w.freeI16[n]; len(l) > 0 {
		b := l[len(l)-1]
		w.freeI16[n] = l[:len(l)-1]
		w.usedI16 = append(w.usedI16, b)
		return b
	}
	b := make([]int16, n)
	w.usedI16 = append(w.usedI16, b)
	return b
}

// TakeInt is Take for int scratch (mask run boundaries and the like).
func (w *Workspace) TakeInt(n int) []int {
	if l := w.freeInt[n]; len(l) > 0 {
		b := l[len(l)-1]
		w.freeInt[n] = l[:len(l)-1]
		w.usedInt = append(w.usedInt, b)
		return b
	}
	b := make([]int, n)
	w.usedInt = append(w.usedInt, b)
	return b
}

// Reset reclaims every buffer handed out since the previous Reset. Any
// slice or Matrix obtained earlier becomes invalid for reading or writing.
func (w *Workspace) Reset() {
	for _, b := range w.used {
		w.free[len(b)] = append(w.free[len(b)], b)
	}
	w.used = w.used[:0]
	for _, b := range w.usedI8 {
		w.freeI8[len(b)] = append(w.freeI8[len(b)], b)
	}
	w.usedI8 = w.usedI8[:0]
	for _, b := range w.usedI16 {
		w.freeI16[len(b)] = append(w.freeI16[len(b)], b)
	}
	w.usedI16 = w.usedI16[:0]
	for _, b := range w.usedInt {
		w.freeInt[len(b)] = append(w.freeInt[len(b)], b)
	}
	w.usedInt = w.usedInt[:0]
}

// wsPool recycles workspaces across goroutines; in steady state each worker
// goroutine ends up reusing a warm workspace (sync.Pool is per-P), which is
// what gives the pipeline's inference workers allocation-free forwards.
var wsPool = sync.Pool{New: func() interface{} { return NewWorkspace() }}

// AcquireWorkspace returns a workspace for exclusive use by the calling
// goroutine, with Quantize seeded from the process-wide default. Pair with
// ReleaseWorkspace.
func AcquireWorkspace() *Workspace {
	ws := wsPool.Get().(*Workspace)
	ws.Quantize = QuantizeEnabled()
	return ws
}

// ReleaseWorkspace resets ws and returns it to the shared pool. Every
// buffer taken from it is invalidated; arena-backed op outputs built with
// InferenceResult are unaffected.
func ReleaseWorkspace(ws *Workspace) {
	ws.Reset()
	wsPool.Put(ws)
}
