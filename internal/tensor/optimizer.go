package tensor

import "math"

// Optimizer updates a fixed set of parameter tensors from their accumulated
// gradients.
type Optimizer interface {
	// Step applies one update using the gradients currently stored in the
	// parameters, then the caller typically invokes ZeroGrads.
	Step()
	// ZeroGrads clears the gradients of all managed parameters.
	ZeroGrads()
}

// Adam implements the Adam optimizer (Kingma & Ba) with optional decoupled
// weight decay (AdamW) and global-norm gradient clipping, the configuration
// used to fine-tune all models in this reproduction.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64
	// ClipNorm, when positive, rescales gradients so their global L2 norm
	// does not exceed it.
	ClipNorm float64

	params []*Tensor
	m, v   [][]float64
	t      int
}

// NewAdam creates an Adam optimizer over params with standard defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(params []*Tensor, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Data))
		a.v[i] = make([]float64, len(p.Data))
	}
	return a
}

// Params returns the managed parameter tensors.
func (a *Adam) Params() []*Tensor { return a.params }

// Step applies one Adam update.
func (a *Adam) Step() {
	a.t++
	if a.ClipNorm > 0 {
		a.clip()
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		if p.Grad == nil {
			continue
		}
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / bc1
			vh := v[j] / bc2
			upd := a.LR * mh / (math.Sqrt(vh) + a.Eps)
			if a.WeightDecay > 0 {
				upd += a.LR * a.WeightDecay * p.Data[j]
			}
			p.Data[j] -= upd
		}
	}
}

func (a *Adam) clip() {
	total := 0.0
	for _, p := range a.params {
		for _, g := range p.Grad {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm <= a.ClipNorm || norm == 0 {
		return
	}
	scale := a.ClipNorm / norm
	for _, p := range a.params {
		for j := range p.Grad {
			p.Grad[j] *= scale
		}
	}
}

// ZeroGrads clears all parameter gradients.
func (a *Adam) ZeroGrads() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// SGD is a plain stochastic-gradient-descent optimizer with optional
// momentum; kept as a baseline and for the lightweight online feedback
// updates in the Taste detector.
type SGD struct {
	LR       float64
	Momentum float64

	params []*Tensor
	vel    [][]float64
}

// NewSGD creates an SGD optimizer over params.
func NewSGD(params []*Tensor, lr, momentum float64) *SGD {
	s := &SGD{LR: lr, Momentum: momentum, params: params}
	if momentum > 0 {
		s.vel = make([][]float64, len(params))
		for i, p := range params {
			s.vel[i] = make([]float64, len(p.Data))
		}
	}
	return s
}

// Step applies one SGD update.
func (s *SGD) Step() {
	for i, p := range s.params {
		if p.Grad == nil {
			continue
		}
		if s.Momentum > 0 {
			v := s.vel[i]
			for j, g := range p.Grad {
				v[j] = s.Momentum*v[j] + g
				p.Data[j] -= s.LR * v[j]
			}
		} else {
			for j, g := range p.Grad {
				p.Data[j] -= s.LR * g
			}
		}
	}
}

// ZeroGrads clears all parameter gradients.
func (s *SGD) ZeroGrads() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}
