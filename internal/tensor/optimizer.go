package tensor

import "math"

// Optimizer updates a fixed set of parameter tensors from their accumulated
// gradients.
type Optimizer interface {
	// Step applies one update using the gradients currently stored in the
	// parameters, then the caller typically invokes ZeroGrads.
	Step()
	// ZeroGrads clears the gradients of all managed parameters.
	ZeroGrads()
}

// adamMulAddsPerElem is the per-element cost estimate fed to the runtime's
// sharding heuristic: one Adam element touches m, v, grad and data with a
// sqrt, worth roughly eight scalar multiply-adds.
const adamMulAddsPerElem = 8

// normChunkElems is the block size of the global-norm reduction: gradients
// are reduced in fixed 4096-element chunk partials combined in chunk order
// (per parameter, parameters in order), so the summation order — and hence
// the bit pattern of the norm — is independent of how many workers computed
// the partials.
const normChunkElems = 1 << 12

// Adam implements the Adam optimizer (Kingma & Ba) with optional decoupled
// weight decay (AdamW) and global-norm gradient clipping, the configuration
// used to fine-tune all models in this reproduction.
//
// The elementwise update, the gradient-clip rescale and ZeroGrads shard
// large parameters across the runtime worker pool (with the same
// small-size sequential fallback as the matmul kernels); the global-norm
// reduction uses a fixed blocked summation order so the parallel and
// sequential paths agree bitwise.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64
	// ClipNorm, when positive, rescales gradients so their global L2 norm
	// does not exceed it.
	ClipNorm float64

	params []*Tensor
	m, v   [][]float64
	t      int

	lastNorm float64
	chunks   [][]float64 // scratch: per-chunk gradient views for the norm
	partials []float64   // scratch: per-chunk sums of squares
}

// NewAdam creates an Adam optimizer over params with standard defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(params []*Tensor, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Data))
		a.v[i] = make([]float64, len(p.Data))
	}
	return a
}

// Params returns the managed parameter tensors.
func (a *Adam) Params() []*Tensor { return a.params }

// LastGradNorm returns the pre-clip global gradient L2 norm computed by the
// most recent Step, or zero if no clipping Step has run yet. Only meaningful
// when ClipNorm > 0 (the norm is not computed otherwise).
func (a *Adam) LastGradNorm() float64 { return a.lastNorm }

// Step applies one Adam update.
func (a *Adam) Step() {
	a.t++
	if a.ClipNorm > 0 {
		a.clip()
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		if p.Grad == nil {
			continue
		}
		m, v := a.m[i], a.v[i]
		grad, data := p.Grad, p.Data
		parallelRows(len(grad), adamMulAddsPerElem, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				g := grad[j]
				m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
				v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
				mh := m[j] / bc1
				vh := v[j] / bc2
				upd := a.LR * mh / (math.Sqrt(vh) + a.Eps)
				if a.WeightDecay > 0 {
					upd += a.LR * a.WeightDecay * data[j]
				}
				data[j] -= upd
			}
		})
	}
}

// gradNorm computes the global L2 norm of all parameter gradients. Each
// gradient is reduced in normChunkElems-sized partial sums and the partials
// are combined in a fixed order (chunk order within a parameter, parameters
// in order), so the result is bitwise identical whether the partials were
// computed sequentially or on the worker pool.
func (a *Adam) gradNorm() float64 {
	chunks := a.chunks[:0]
	for _, p := range a.params {
		if p.Grad == nil {
			continue
		}
		g := p.Grad
		for lo := 0; lo < len(g); lo += normChunkElems {
			hi := lo + normChunkElems
			if hi > len(g) {
				hi = len(g)
			}
			chunks = append(chunks, g[lo:hi])
		}
	}
	a.chunks = chunks
	if cap(a.partials) < len(chunks) {
		a.partials = make([]float64, len(chunks))
	}
	partials := a.partials[:len(chunks)]
	parallelRows(len(chunks), normChunkElems, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			for _, g := range chunks[i] {
				s += g * g
			}
			partials[i] = s
		}
	})
	total := 0.0
	for _, s := range partials {
		total += s
	}
	return math.Sqrt(total)
}

func (a *Adam) clip() {
	norm := a.gradNorm()
	a.lastNorm = norm
	if norm <= a.ClipNorm || norm == 0 {
		return
	}
	ScaleGrads(a.params, a.ClipNorm/norm)
}

// ZeroGrads clears all parameter gradients.
func (a *Adam) ZeroGrads() { ZeroGrads(a.params) }

// SGD is a plain stochastic-gradient-descent optimizer with optional
// momentum; kept as a baseline and for the lightweight online feedback
// updates in the Taste detector.
type SGD struct {
	LR       float64
	Momentum float64

	params []*Tensor
	vel    [][]float64
}

// NewSGD creates an SGD optimizer over params.
func NewSGD(params []*Tensor, lr, momentum float64) *SGD {
	s := &SGD{LR: lr, Momentum: momentum, params: params}
	if momentum > 0 {
		s.vel = make([][]float64, len(params))
		for i, p := range params {
			s.vel[i] = make([]float64, len(p.Data))
		}
	}
	return s
}

// Step applies one SGD update.
func (s *SGD) Step() {
	for i, p := range s.params {
		if p.Grad == nil {
			continue
		}
		if s.Momentum > 0 {
			v := s.vel[i]
			for j, g := range p.Grad {
				v[j] = s.Momentum*v[j] + g
				p.Data[j] -= s.LR * v[j]
			}
		} else {
			for j, g := range p.Grad {
				p.Data[j] -= s.LR * g
			}
		}
	}
}

// ZeroGrads clears all parameter gradients.
func (s *SGD) ZeroGrads() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}
