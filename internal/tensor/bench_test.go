package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchTensor(rng *rand.Rand, rows, cols int) *Tensor {
	t := New(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := benchTensor(rng, 64, 64)
	y := benchTensor(rng, 64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := benchTensor(rng, 256, 64)
	y := benchTensor(rng, 64, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulNTScores(b *testing.B) {
	// Attention-score shape: (L×H) × (L×H)ᵀ.
	rng := rand.New(rand.NewSource(1))
	q := benchTensor(rng, 128, 64)
	k := benchTensor(rng, 128, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulNT(q, k)
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := benchTensor(rng, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxRows(x, nil)
	}
}

func BenchmarkLayerNorm(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := benchTensor(rng, 128, 64)
	gamma := New(1, 64)
	gamma.Fill(1)
	beta := New(1, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LayerNorm(x, gamma, beta, 1e-5)
	}
}

func BenchmarkBackwardSmallGraph(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := Param(64, 64)
	XavierUniform(w, rng)
	x := benchTensor(rng, 32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ZeroGrad()
		loss := Sum(GELU(MatMul(x, w)))
		loss.Backward()
	}
}

// BenchmarkMatMul measures the sharded kernel across sizes and worker
// counts; the par1/parN pairs quantify the parallel speedup (or, on a
// single-core box, the sharding overhead).
func BenchmarkMatMul(b *testing.B) {
	for _, size := range []int{128, 256} {
		for _, par := range []int{1, 4} {
			b.Run(fmt.Sprintf("size%d/par%d", size, par), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				x := benchTensor(rng, size, size)
				y := benchTensor(rng, size, size)
				old := Parallelism()
				SetParallelism(par)
				defer SetParallelism(old)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out := MatMul(x, y)
					ReleaseGraph(out)
				}
			})
		}
	}
}

// BenchmarkTrainStepRelease runs a full forward/backward/step cycle with the
// graph released into the arena each iteration versus left to the GC; the
// allocs/op delta is the arena's win.
func BenchmarkTrainStepRelease(b *testing.B) {
	for _, arena := range []bool{true, false} {
		name := "arena"
		if !arena {
			name = "gc"
		}
		b.Run(name, func(b *testing.B) {
			SetArena(arena)
			defer SetArena(true)
			rng := rand.New(rand.NewSource(1))
			w1 := Param(64, 64)
			w2 := Param(64, 64)
			XavierUniform(w1, rng)
			XavierUniform(w2, rng)
			x := benchTensor(rng, 32, 64)
			opt := NewSGD([]*Tensor{w1, w2}, 0.01, 0.9)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opt.ZeroGrads()
				loss := Sum(GELU(MatMul(GELU(MatMul(x, w1)), w2)))
				loss.Backward()
				opt.Step()
				if arena {
					ReleaseGraph(loss)
				}
			}
		})
	}
}

func BenchmarkAdamStep(b *testing.B) {
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			defer SetParallelism(DefaultParallelism())
			SetParallelism(par)
			rng := rand.New(rand.NewSource(1))
			params := []*Tensor{Param(3000, 64), Param(64, 3000), Param(256, 64), Param(1, 64)}
			elems := 0
			for _, p := range params {
				XavierUniform(p, rng)
				p.ensureGrad()
				for i := range p.Grad {
					p.Grad[i] = rng.NormFloat64() * 0.01
				}
				elems += len(p.Data)
			}
			opt := NewAdam(params, 1e-3)
			opt.ClipNorm = 1
			b.SetBytes(int64(elems * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opt.Step()
			}
		})
	}
}
