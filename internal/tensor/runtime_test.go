package tensor

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// withParallelism runs f at the given worker setting and restores the
// default afterwards.
func withParallelism(t *testing.T, n int, f func()) {
	t.Helper()
	old := Parallelism()
	SetParallelism(n)
	defer SetParallelism(old)
	f()
}

// TestParallelMatMulEquivalence checks that every sharded kernel matches the
// sequential reference within 1e-12 (the kernels preserve per-element
// accumulation order, so they should in fact be bit-exact), including odd
// shapes that do not divide evenly into shards.
func TestParallelMatMulEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{
		{129, 67, 131}, // odd sizes, above the parallel threshold
		{128, 128, 128},
		{200, 64, 96},
		{8, 8, 8}, // below threshold: must hit the sequential fallback
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := benchTensor(rng, m, k)
		b := benchTensor(rng, k, n)
		bt := benchTensor(rng, n, k) // for the NT kernel
		at := benchTensor(rng, k, m) // for the TN kernel

		var seq, par struct{ mm, acc, nt, tn []float64 }
		run := func(dst *struct{ mm, acc, nt, tn []float64 }) {
			dst.mm = make([]float64, m*n)
			matmulInto(dst.mm, a.Data, b.Data, m, k, n)
			dst.acc = make([]float64, m*n)
			for i := range dst.acc {
				dst.acc[i] = 1
			}
			matmulAccInto(dst.acc, a.Data, b.Data, m, k, n)
			dst.nt = make([]float64, m*n)
			matmulNTInto(dst.nt, a.Data, bt.Data, m, k, n, false)
			dst.tn = make([]float64, m*n)
			matmulTNInto(dst.tn, at.Data, b.Data, m, k, n, false)
		}
		withParallelism(t, 1, func() { run(&seq) })
		withParallelism(t, 8, func() { run(&par) })

		check := func(name string, s, p []float64) {
			for i := range s {
				if math.Abs(s[i]-p[i]) > 1e-12 {
					t.Fatalf("%s %dx%dx%d: element %d differs: seq %v par %v", name, m, k, n, i, s[i], p[i])
				}
			}
		}
		check("matmulInto", seq.mm, par.mm)
		check("matmulAccInto", seq.acc, par.acc)
		check("matmulNTInto", seq.nt, par.nt)
		check("matmulTNInto", seq.tn, par.tn)
	}
}

// TestParallelKernelsConcurrentCallers hammers the shared worker pool from
// many goroutines at once, as the pipeline's TP2 workers do. Run under
// -race this also validates the pool's synchronization.
func TestParallelKernelsConcurrentCallers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, k, n := 96, 96, 96
	a := benchTensor(rng, m, k)
	b := benchTensor(rng, k, n)
	want := make([]float64, m*n)
	withParallelism(t, 1, func() { matmulInto(want, a.Data, b.Data, m, k, n) })

	withParallelism(t, 4, func() {
		var wg sync.WaitGroup
		errs := make(chan int, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got := make([]float64, m*n)
				for it := 0; it < 20; it++ {
					matmulInto(got, a.Data, b.Data, m, k, n)
					for i := range got {
						if math.Abs(got[i]-want[i]) > 1e-12 {
							errs <- i
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		if i, bad := <-errs; bad {
			t.Fatalf("concurrent matmul diverged at element %d", i)
		}
	})
}

// TestSetParallelismClamps verifies the setter's floor.
func TestSetParallelismClamps(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(-3)
	if Parallelism() != 1 {
		t.Fatalf("Parallelism() = %d after SetParallelism(-3), want 1", Parallelism())
	}
}

// TestReleaseGraphRecyclesOpOutputs checks that release frees op outputs,
// leaves leaf tensors intact, and that a training loop interleaved with
// ReleaseGraph produces exactly the same parameters as one without (no
// buffer is recycled while still referenced).
func TestReleaseGraphRecyclesOpOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))

	runLoop := func(release bool) *Tensor {
		w := Param(64, 64)
		XavierUniform(w, rand.New(rand.NewSource(5)))
		opt := NewSGD([]*Tensor{w}, 0.01, 0.9)
		for step := 0; step < 5; step++ {
			x := benchTensor(rand.New(rand.NewSource(int64(step))), 32, 64)
			opt.ZeroGrads()
			loss := Sum(GELU(MatMul(x, w)))
			loss.Backward()
			opt.Step()
			if release {
				ReleaseGraph(loss)
				if loss.Data != nil {
					t.Fatal("released root must have nil Data")
				}
				if x.Data == nil {
					t.Fatal("leaf input must survive ReleaseGraph")
				}
			}
			if w.Data == nil || w.Grad == nil {
				t.Fatal("parameter data/grad must survive ReleaseGraph")
			}
		}
		return w
	}

	plain := runLoop(false)
	released := runLoop(true)
	for i := range plain.Data {
		if plain.Data[i] != released.Data[i] {
			t.Fatalf("param[%d] diverged with arena release: %v vs %v", i, plain.Data[i], released.Data[i])
		}
	}
	_ = rng
}

// TestReleaseGraphInferenceGraph releases a no-grad graph: op outputs are
// freed even though no backward state was recorded.
func TestReleaseGraphInferenceGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := benchTensor(rng, 64, 64)
	b := benchTensor(rng, 64, 64)
	c := MatMul(a, b)
	d := GELU(c)
	got := d.At(0, 0)
	if math.IsNaN(got) {
		t.Fatal("bad forward value")
	}
	ReleaseGraph(d)
	if c.Data != nil || d.Data != nil {
		t.Fatal("op outputs must be freed")
	}
	if a.Data == nil || b.Data == nil {
		t.Fatal("inputs must survive")
	}
}

// TestArenaDisabled verifies SetArena(false) switches to plain allocation
// while ReleaseGraph still detaches the graph.
func TestArenaDisabled(t *testing.T) {
	SetArena(false)
	defer SetArena(true)
	a := benchTensor(rand.New(rand.NewSource(1)), 16, 16)
	b := benchTensor(rand.New(rand.NewSource(2)), 16, 16)
	c := MatMul(a, b)
	if c.pooled {
		t.Fatal("arena disabled but output marked pooled")
	}
	ReleaseGraph(c)
	if c.Data != nil {
		t.Fatal("ReleaseGraph must still detach with arena off")
	}
}

// TestSoftmaxRowsFullyMaskedRow is the regression test for the masked-row
// bug: a row whose mask is all -Inf must come out as zeros (not NaN) and
// the backward pass must not propagate gradients through it.
func TestSoftmaxRowsFullyMaskedRow(t *testing.T) {
	neg := math.Inf(-1)
	a := Param(2, 3)
	for i, v := range []float64{0.5, -1, 2, 0.3, 0.7, -0.2} {
		a.Data[i] = v
	}
	mask := New(2, 3)
	for j := 0; j < 3; j++ {
		mask.Set(1, j, neg) // second row fully masked
	}
	out := SoftmaxRows(a, mask)
	sum0 := 0.0
	for j := 0; j < 3; j++ {
		if v := out.At(1, j); v != 0 {
			t.Fatalf("masked row element %d = %v, want 0", j, v)
		}
		sum0 += out.At(0, j)
	}
	if math.Abs(sum0-1) > 1e-12 {
		t.Fatalf("unmasked row sums to %v, want 1", sum0)
	}

	loss := Sum(Mul(out, out))
	loss.Backward()
	for i, g := range a.Grad {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			t.Fatalf("grad[%d] = %v, want finite", i, g)
		}
	}
	for j := 0; j < 3; j++ {
		if g := a.Grad[3+j]; g != 0 {
			t.Fatalf("masked row grad[%d] = %v, want 0", j, g)
		}
	}
}
