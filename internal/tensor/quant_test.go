package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// withQuantKernels forces the asm/generic kernel choice for the duration of
// f. Serial tests only (haveQuantKernels is package state).
func withQuantKernels(t *testing.T, on bool, f func()) {
	t.Helper()
	old := haveQuantKernels
	haveQuantKernels = on
	defer func() { haveQuantKernels = old }()
	f()
}

func randI8(rng *rand.Rand, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(rng.Intn(255) - 127)
	}
	return out
}

// Property: the AVX2 quad-dot kernels match the portable reference exactly
// on random inputs, across strides, lengths and alignments.
func TestDotQuadAsmMatchesGeneric(t *testing.T) {
	if !haveQuantKernels {
		t.Skip("no SIMD int8 kernels on this machine")
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := quantLane * (1 + rng.Intn(8))
		stride := n + quantLane*rng.Intn(3)
		x := randI8(rng, stride)
		w := randI8(rng, 4*stride)
		x16 := make([]int16, stride)
		for i := range x16 {
			x16[i] = int16(rng.Intn(2*quantProbScale+1) - quantProbScale)
		}
		var got, want, gotW, wantW [4]int32
		dotQuadAsm(&x[0], &w[0], stride, n, &got)
		dotQuadGeneric(x, w, stride, n, &want)
		dotQuadWAsm(&x16[0], &w[0], stride, n, &gotW)
		dotQuadWGeneric(x16, w, stride, n, &wantW)
		if got != want {
			t.Fatalf("trial %d (n=%d stride=%d): dotQuad asm %v != generic %v", trial, n, stride, got, want)
		}
		if gotW != wantW {
			t.Fatalf("trial %d (n=%d stride=%d): dotQuadW asm %v != generic %v", trial, n, stride, gotW, wantW)
		}
	}
}

// Property: the vectorized softmax-grid exp agrees with the scalar
// reference within one grid step per element (the two round the 2^k split
// differently at representation boundaries) and the sums track accordingly.
// Against math.Exp the scalar reference is within one grid step too.
func TestExpGridAsmMatchesGeneric(t *testing.T) {
	if !haveQuantKernels {
		t.Skip("no SIMD int8 kernels on this machine")
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		s := make([]float64, n)
		maxv := math.Inf(-1)
		for i := range s {
			s[i] = rng.NormFloat64() * 8
			if s[i] > maxv {
				maxv = s[i]
			}
		}
		gotP := make([]int16, n)
		wantP := make([]int16, n)
		gotS := expGrid(s, maxv, gotP)
		wantS := expGridGeneric(s, maxv, wantP)
		diff := 0
		for i := range s {
			d := int(gotP[i]) - int(wantP[i])
			if d < 0 {
				d = -d
			}
			if d > 1 {
				t.Fatalf("trial %d elem %d (x=%g): asm %d vs generic %d", trial, i, s[i]-maxv, gotP[i], wantP[i])
			}
			diff += d
			exact := math.Exp(s[i]-maxv) * quantProbScale
			if e := math.Abs(float64(wantP[i]) - exact); e > 1 {
				t.Fatalf("trial %d elem %d: generic %d vs math.Exp grid %g", trial, i, wantP[i], exact)
			}
		}
		if ds := gotS - wantS; ds > diff || ds < -diff {
			t.Fatalf("trial %d: sum asm %d vs generic %d with element diff budget %d", trial, gotS, wantS, diff)
		}
	}
}

// Property: quantize→dequantize round-trips every element within half a
// grid step: |v − q·scale| ≤ absmax/254.
func TestQuantizeRowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		src := make([]float64, n)
		maxv := 0.0
		for i := range src {
			src[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
			if a := math.Abs(src[i]); a > maxv {
				maxv = a
			}
		}
		dst := make([]int8, padLane(n))
		scale := quantizeRow(dst, src)
		bound := maxv/254 + 1e-300
		for i, v := range src {
			if err := math.Abs(v - float64(dst[i])*scale); err > bound {
				t.Fatalf("trial %d elem %d: round-trip error %g > %g (v=%g q=%d scale=%g)",
					trial, i, err, bound, v, dst[i], scale)
			}
		}
		for i := n; i < len(dst); i++ {
			if dst[i] != 0 {
				t.Fatalf("trial %d: padding byte %d not zeroed", trial, i)
			}
		}
	}
	// Degenerate rows: all-zero input must yield scale 0 and zero bytes.
	dst := make([]int8, quantLane)
	if s := quantizeRow(dst, make([]float64, 5)); s != 0 {
		t.Fatalf("zero row: scale %g != 0", s)
	}
}

// Property: PackQuantMatrix round-trips every weight within half a grid
// step of its output column's absmax, and pads rows with zeros.
func TestPackQuantMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in, out := 37, 11
	w := make([]float64, in*out)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	qm := PackQuantMatrix(w, in, out)
	if qm.Stride%quantLane != 0 || qm.Stride < in {
		t.Fatalf("bad stride %d for in=%d", qm.Stride, in)
	}
	for o := 0; o < out; o++ {
		maxv := 0.0
		for i := 0; i < in; i++ {
			if a := math.Abs(w[i*out+o]); a > maxv {
				maxv = a
			}
		}
		for i := 0; i < in; i++ {
			got := float64(qm.W[o*qm.Stride+i]) * qm.Scale[o]
			if err := math.Abs(w[i*out+o] - got); err > maxv/254+1e-12 {
				t.Fatalf("col %d row %d: round-trip error %g > %g", o, i, err, maxv/254)
			}
		}
		for i := in; i < qm.Stride; i++ {
			if qm.W[o*qm.Stride+i] != 0 {
				t.Fatalf("col %d: padding at %d not zero", o, i)
			}
		}
	}
}

// fastExp must stay within 5e-7 relative error of math.Exp over the
// softmax/GELU range, and clamp cleanly at the extremes.
func TestFastExp(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		x := rng.Float64()*730 - 700 // [-700, 30]
		want := math.Exp(x)
		got := fastExp(x)
		if rel := math.Abs(got-want) / want; rel > 5e-7 {
			t.Fatalf("fastExp(%g) rel err %g > 5e-7", x, rel)
		}
	}
	// Below -708 results flush to zero (the bit-trick cannot represent
	// denormals); softmax arguments never care.
	if fastExp(-709) != 0 || fastExp(-1000) != 0 {
		t.Fatal("fastExp below -708 must flush to 0")
	}
	if !math.IsInf(fastExp(1000), 1) {
		t.Fatal("fastExp(1000) != +Inf")
	}
	if fastExp(0) != 1 {
		t.Fatal("fastExp(0) != 1")
	}
	for i := 0; i < 2000; i++ {
		x := rng.Float64()*40 - 20
		if rel := math.Abs(fastTanh(x) - math.Tanh(x)); rel > 5e-7 {
			t.Fatalf("fastTanh(%g) err %g > 5e-7", x, rel)
		}
	}
}

// Property: LinearQuantInto tracks LinearInto within the quantization
// tolerance — per element, the error is bounded by the product of the
// activation and weight grid steps accumulated over the inner dimension.
// The empirical bound below (1% of the output magnitude scale) holds with
// a wide margin for both kernel implementations and both bias modes.
func TestLinearQuantIntoTolerance(t *testing.T) {
	for _, asm := range []bool{false, true} {
		if asm && !haveQuantKernels {
			continue
		}
		withQuantKernels(t, asm, func() {
			rng := rand.New(rand.NewSource(5))
			ws := NewWorkspace()
			for _, shape := range [][3]int{{7, 64, 192}, {3, 150, 30}, {12, 86, 3}, {1, 16, 1}} {
				rows, in, out := shape[0], shape[1], shape[2]
				x := make([]float64, rows*in)
				w := make([]float64, in*out)
				bias := make([]float64, out)
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				for i := range w {
					w[i] = rng.NormFloat64()
				}
				for i := range bias {
					bias[i] = rng.NormFloat64()
				}
				want := make([]float64, rows*out)
				LinearInto(want, x, rows, in, w, out, 0, out, bias)
				got := make([]float64, rows*out)
				qm := PackQuantMatrix(w, in, out)
				LinearQuantInto(ws, got, x, rows, in, qm, 0, out, bias)
				ws.Reset()
				scale := 0.0
				for _, v := range want {
					if a := math.Abs(v); a > scale {
						scale = a
					}
				}
				for i := range want {
					if err := math.Abs(got[i] - want[i]); err > 0.01*scale {
						t.Fatalf("asm=%v shape %v elem %d: |Δ|=%g > 1%% of %g (got %g want %g)",
							asm, shape, i, err, scale, got[i], want[i])
					}
				}
			}
		})
	}
}

// Column ranges of a quantized pack must match the same range of the fp64
// kernel — the packed-QKV access pattern.
func TestLinearQuantIntoColumnRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ws := NewWorkspace()
	rows, in, out := 5, 64, 192
	x := make([]float64, rows*in)
	w := make([]float64, in*out)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	qm := PackQuantMatrix(w, in, out)
	full := make([]float64, rows*out)
	LinearQuantInto(ws, full, x, rows, in, qm, 0, out, nil)
	for _, r := range [][2]int{{64, 192}, {0, 64}, {128, 192}} {
		n := r[1] - r[0]
		got := make([]float64, rows*n)
		LinearQuantInto(ws, got, x, rows, in, qm, r[0], r[1], nil)
		for i := 0; i < rows; i++ {
			for j := 0; j < n; j++ {
				if got[i*n+j] != full[i*out+r[0]+j] {
					t.Fatalf("range %v: element (%d,%d) differs from full product", r, i, j)
				}
			}
		}
	}
	ws.Reset()
}

// buildAttnInputs makes a random packed self-attention projection and shape.
func buildAttnInputs(rng *rand.Rand, lq, lkv, heads, headDim int) ([]float64, AttnShape) {
	h := heads * headDim
	proj := make([]float64, lkv*3*h)
	for i := range proj {
		proj[i] = rng.NormFloat64()
	}
	sh := AttnShape{
		Lq: lq, Lkv: lkv, Heads: heads, HeadDim: headDim,
		QOff: 0, QStride: 3 * h, KOff: h, VOff: 2 * h, KVStride: 3 * h,
		Scale: 1 / math.Sqrt(float64(headDim)),
	}
	return proj, sh
}

// blockMask builds a run-structured additive mask like the batched Phase-2
// masks: row i may attend to [0, meta) and to its own block of width span.
func blockMask(lq, lkv, meta, span int) *Tensor {
	m := New(lq, lkv)
	neg := math.Inf(-1)
	for i := 0; i < lq; i++ {
		row := m.Row(i)
		blk := meta + (i/span)*span
		for j := meta; j < lkv; j++ {
			if j < blk || j >= blk+span {
				row[j] = neg
			}
		}
	}
	return m
}

// Property: QuantAttentionCore tracks FusedAttentionCore within the
// documented tolerance (attention outputs are convex combinations of V
// rows, so the error budget is absolute against V's magnitude scale),
// masked and maskless, with both kernel implementations.
func TestQuantAttentionCoreTolerance(t *testing.T) {
	for _, asm := range []bool{false, true} {
		if asm && !haveQuantKernels {
			continue
		}
		withQuantKernels(t, asm, func() {
			rng := rand.New(rand.NewSource(7))
			ws := NewWorkspace()
			for _, tc := range []struct {
				lq, lkv, heads, headDim int
				mask                    *Tensor
			}{
				{128, 128, 4, 16, nil},
				{40, 104, 4, 16, blockMask(40, 104, 24, 8)},
				{9, 17, 2, 16, blockMask(9, 17, 5, 3)},
				{6, 30, 1, 32, nil},
			} {
				proj, sh := buildAttnInputs(rng, tc.lq, tc.lkv, tc.heads, tc.headDim)
				h := tc.heads * tc.headDim
				want := make([]float64, tc.lq*h)
				FusedAttentionCore(ws, want, proj, proj, sh, tc.mask)
				got := make([]float64, tc.lq*h)
				if !QuantAttentionCore(ws, got, proj, proj, sh, tc.mask) {
					t.Fatalf("QuantAttentionCore refused supported shape %+v", tc)
				}
				ws.Reset()
				vmax := 0.0
				for _, v := range proj {
					if a := math.Abs(v); a > vmax {
						vmax = a
					}
				}
				worst := 0.0
				for i := range want {
					if err := math.Abs(got[i] - want[i]); err > worst {
						worst = err
					}
				}
				// Documented tolerance: 2% of the value magnitude scale.
				if worst > 0.02*vmax {
					t.Fatalf("asm=%v case %+v: max |Δ| %g > %g", asm, tc, worst, 0.02*vmax)
				}
			}
		})
	}
}

// A fully masked row must produce exact zeros, matching the fp64 core.
func TestQuantAttentionCoreFullyMaskedRow(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ws := NewWorkspace()
	proj, sh := buildAttnInputs(rng, 4, 8, 2, 16)
	mask := New(4, 8)
	neg := math.Inf(-1)
	for j := 0; j < 8; j++ {
		mask.Row(2)[j] = neg
	}
	h := sh.Heads * sh.HeadDim
	got := make([]float64, 4*h)
	for i := range got {
		got[i] = math.NaN() // must be overwritten
	}
	if !QuantAttentionCore(ws, got, proj, proj, sh, mask) {
		t.Fatal("refused supported shape")
	}
	for c := 0; c < h; c++ {
		if got[2*h+c] != 0 {
			t.Fatalf("masked row output[%d] = %g, want 0", c, got[2*h+c])
		}
	}
	ws.Reset()
}

// The envelope must be refused, not mis-computed.
func TestQuantAttentionCoreEnvelope(t *testing.T) {
	ws := NewWorkspace()
	rng := rand.New(rand.NewSource(9))
	proj, sh := buildAttnInputs(rng, 2, 4, 1, 8) // headDim 8: not a lane multiple
	if QuantAttentionCore(ws, make([]float64, 2*8), proj, proj, sh, nil) {
		t.Fatal("accepted headDim 8")
	}
	sh.HeadDim = 16
	sh.Lkv = quantMaxLkv + 1
	if QuantAttentionCore(ws, nil, nil, nil, sh, nil) {
		t.Fatal("accepted Lkv beyond the accumulator bound")
	}
}

// maskRuns and alignWindows must partition correctly, including merges.
func TestMaskRunsAndWindows(t *testing.T) {
	neg := math.Inf(-1)
	row := make([]float64, 40)
	for j := range row {
		row[j] = neg
	}
	for _, j := range []int{3, 4, 5, 20, 21, 36, 37, 38, 39} {
		row[j] = 0
	}
	runs := make([]int, 42)
	nr := maskRuns(runs, row, 40)
	want := []int{3, 6, 20, 22, 36, 40}
	if nr != 3 {
		t.Fatalf("run count %d != 3", nr)
	}
	for i, v := range want {
		if runs[i] != v {
			t.Fatalf("runs[%d] = %d, want %d", i, runs[i], v)
		}
	}
	wins := make([]int, 42)
	nw := alignWindows(wins, runs, nr, 48)
	// [3,6)→[0,16), [20,22)→[16,32) merges with the first; [36,40)→[32,48)
	// merges again: one window covering everything.
	if nw != 1 || wins[0] != 0 || wins[1] != 48 {
		t.Fatalf("windows = %v (n=%d), want one [0,48)", wins[:2*nw], nw)
	}
	// Disjoint case.
	nr = maskRuns(runs, nil, 20)
	if nr != 1 || runs[0] != 0 || runs[1] != 20 {
		t.Fatalf("nil mask runs = %v", runs[:2])
	}
	runs[0], runs[1], runs[2], runs[3] = 0, 2, 60, 70
	nw = alignWindows(wins, runs, 2, 80)
	if nw != 2 || wins[0] != 0 || wins[1] != 16 || wins[2] != 48 || wins[3] != 80 {
		t.Fatalf("disjoint windows = %v", wins[:2*nw])
	}
}

// The quantized kernels must be allocation-free once the workspace is warm
// — the PR 3 zero-alloc story extended to the int8 path.
func TestQuantKernelAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ws := NewWorkspace()
	rows, in, out := 16, 64, 192
	x := make([]float64, rows*in)
	w := make([]float64, in*out)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	qm := PackQuantMatrix(w, in, out)
	dst := make([]float64, rows*out)
	proj, sh := buildAttnInputs(rng, 32, 32, 4, 16)
	attnDst := make([]float64, 32*64)
	mask := blockMask(32, 32, 8, 8)
	// Warm the workspace pools.
	LinearQuantInto(ws, dst, x, rows, in, qm, 0, out, nil)
	QuantAttentionCore(ws, attnDst, proj, proj, sh, mask)
	ws.Reset()
	attnAllocs := testing.AllocsPerRun(20, func() {
		QuantAttentionCore(ws, attnDst, proj, proj, sh, mask)
		ws.Reset()
	})
	if attnAllocs > 0 {
		t.Fatalf("QuantAttentionCore allocates %.1f/op with a warm workspace, want 0", attnAllocs)
	}
	// LinearQuantInto pays exactly the parallelRows closure, like the fp64
	// LinearInto — ceiling 1.
	linAllocs := testing.AllocsPerRun(20, func() {
		LinearQuantInto(ws, dst, x, rows, in, qm, 0, out, nil)
		ws.Reset()
	})
	if linAllocs > 1 {
		t.Fatalf("LinearQuantInto allocates %.1f/op with a warm workspace, want ≤ 1", linAllocs)
	}
}
