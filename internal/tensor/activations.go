package tensor

import "math"

// ReLU applies max(0, x) elementwise.
func ReLU(a *Tensor) *Tensor {
	out := result(a.Rows, a.Cols, []*Tensor{a}, nil)
	for i, v := range a.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i, g := range out.Grad {
				if a.Data[i] > 0 {
					a.Grad[i] += g
				}
			}
		}
	}
	return out
}

// GELU applies the Gaussian Error Linear Unit using the tanh approximation
// used by BERT-family models.
func GELU(a *Tensor) *Tensor {
	const c = 0.7978845608028654 // sqrt(2/π)
	out := result(a.Rows, a.Cols, []*Tensor{a}, nil)
	for i, x := range a.Data {
		inner := c * (x + 0.044715*x*x*x)
		out.Data[i] = 0.5 * x * (1 + math.Tanh(inner))
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i, g := range out.Grad {
				x := a.Data[i]
				inner := c * (x + 0.044715*x*x*x)
				t := math.Tanh(inner)
				sech2 := 1 - t*t
				d := 0.5*(1+t) + 0.5*x*sech2*c*(1+3*0.044715*x*x)
				a.Grad[i] += g * d
			}
		}
	}
	return out
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a *Tensor) *Tensor {
	out := result(a.Rows, a.Cols, []*Tensor{a}, nil)
	for i, v := range a.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i, g := range out.Grad {
				y := out.Data[i]
				a.Grad[i] += g * y * (1 - y)
			}
		}
	}
	return out
}

// Tanh applies the hyperbolic tangent elementwise.
func Tanh(a *Tensor) *Tensor {
	out := result(a.Rows, a.Cols, []*Tensor{a}, nil)
	for i, v := range a.Data {
		out.Data[i] = math.Tanh(v)
	}
	if out.requiresGrad {
		out.backward = func() {
			a.ensureGrad()
			for i, g := range out.Grad {
				y := out.Data[i]
				a.Grad[i] += g * (1 - y*y)
			}
		}
	}
	return out
}

// LayerNorm normalizes each row to zero mean and unit variance, then applies
// a learnable per-column scale (gamma, 1×cols) and shift (beta, 1×cols).
func LayerNorm(a, gamma, beta *Tensor, eps float64) *Tensor {
	if gamma.Rows != 1 || gamma.Cols != a.Cols || beta.Rows != 1 || beta.Cols != a.Cols {
		panic("tensor: LayerNorm gamma/beta must be 1×cols")
	}
	out := result(a.Rows, a.Cols, []*Tensor{a, gamma, beta}, nil)
	n := float64(a.Cols)
	means := make([]float64, a.Rows)
	invStds := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		m := 0.0
		for _, v := range arow {
			m += v
		}
		m /= n
		vsum := 0.0
		for _, v := range arow {
			d := v - m
			vsum += d * d
		}
		inv := 1 / math.Sqrt(vsum/n+eps)
		means[i], invStds[i] = m, inv
		orow := out.Row(i)
		for j, v := range arow {
			orow[j] = (v-m)*inv*gamma.Data[j] + beta.Data[j]
		}
	}
	if out.requiresGrad {
		out.backward = func() {
			for i := 0; i < a.Rows; i++ {
				arow := a.Data[i*a.Cols : (i+1)*a.Cols]
				grow := out.Grad[i*out.Cols : (i+1)*out.Cols]
				m, inv := means[i], invStds[i]
				if gamma.requiresGrad || beta.requiresGrad {
					if gamma.requiresGrad {
						gamma.ensureGrad()
					}
					if beta.requiresGrad {
						beta.ensureGrad()
					}
					for j, g := range grow {
						xhat := (arow[j] - m) * inv
						if gamma.requiresGrad {
							gamma.Grad[j] += g * xhat
						}
						if beta.requiresGrad {
							beta.Grad[j] += g
						}
					}
				}
				if a.requiresGrad {
					a.ensureGrad()
					agrow := a.Grad[i*a.Cols : (i+1)*a.Cols]
					// dL/dx = inv/n * (n*dy*γ − Σ(dy*γ) − xhat * Σ(dy*γ*xhat))
					sumG, sumGX := 0.0, 0.0
					for j, g := range grow {
						gg := g * gamma.Data[j]
						xhat := (arow[j] - m) * inv
						sumG += gg
						sumGX += gg * xhat
					}
					for j, g := range grow {
						gg := g * gamma.Data[j]
						xhat := (arow[j] - m) * inv
						agrow[j] += inv / n * (n*gg - sumG - xhat*sumGX)
					}
				}
			}
		}
	}
	return out
}
