package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// withQuantize runs f with the process-wide quantization preference set to
// on, restoring the previous value afterwards.
func withQuantize(t *testing.T, on bool, f func()) {
	t.Helper()
	prev := tensor.QuantizeEnabled()
	tensor.SetQuantize(on)
	defer tensor.SetQuantize(prev)
	f()
}

// maxAbsDelta returns (max |a-b|, max |b|) for tolerance checks scaled by
// the reference output's magnitude.
func maxAbsDelta(t *testing.T, name string, a, b *tensor.Tensor) (float64, float64) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: quant %dx%d vs fp64 %dx%d", name, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	var dmax, ref float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > dmax {
			dmax = d
		}
		if v := math.Abs(b.Data[i]); v > ref {
			ref = v
		}
	}
	return dmax, ref
}

// The quantized path is deliberately lossy: unlike the fp64 fast path's
// bit-exactness contract, it promises closeness. These layer-level bounds
// (fractions of the reference output's absmax) are the documented tolerance
// of DESIGN.md §11; tightening the kernels may tighten them, loosening them
// needs a documented reason.
func TestQuantForwardTolerance(t *testing.T) {
	if !tensor.QuantizeAvailable() {
		t.Skip("no int8 SIMD kernels on this CPU")
	}
	rng := rand.New(rand.NewSource(31))

	check := func(name string, tol float64, f func() *tensor.Tensor) {
		t.Helper()
		var quant, fp *tensor.Tensor
		withQuantize(t, true, func() { quant = f() })
		withQuantize(t, false, func() { fp = f() })
		dmax, ref := maxAbsDelta(t, name, quant, fp)
		if dmax > tol*ref {
			t.Fatalf("%s: max |Δ| = %g exceeds %g (= %.1f%% of output absmax %g)",
				name, dmax, tol*ref, 100*tol, ref)
		}
		if dmax == 0 {
			t.Fatalf("%s: quantized output identical to fp64 — int8 path not taken", name)
		}
	}

	a := NewMultiHeadAttention(64, 4, rng)
	evalMode(a)
	x := randFilled(rng, 128, 64)
	kv := randFilled(rng, 192, 64)
	check("self-attention", 0.05, func() *tensor.Tensor { return a.Forward(x, x, nil) })
	check("cross-attention-masked", 0.05, func() *tensor.Tensor {
		return a.Forward(x, kv, randMask(rand.New(rand.NewSource(32)), 128, 192))
	})

	blk := NewTransformerBlock(64, 4, 128, rng)
	evalMode(blk)
	// The block ends in a layer norm, which renormalizes the quantization
	// error along with the signal; the bound stays the same scale.
	check("transformer-block", 0.05, func() *tensor.Tensor { return blk.SelfForward(x, nil) })

	c := NewMLPClassifier(86, 64, 62, rng)
	evalMode(c)
	cx := randFilled(rng, 20, 86)
	check("classifier", 0.05, func() *tensor.Tensor { return c.Forward(cx) })
}

// Quantization must never be selected outside the NoGrad fast path: a
// grad-requiring input keeps the composed autograd ops even with the
// process default on.
func TestQuantSkippedUnderGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := NewMultiHeadAttention(64, 4, rng)
	evalMode(a)
	x := randFilled(rng, 8, 64)
	x.SetRequiresGrad(true)
	withQuantize(t, true, func() {
		out := a.Forward(x, x, nil)
		if !out.RequiresGrad() {
			t.Fatal("grad-requiring input produced a detached output with quantization on")
		}
	})
}

// Int8 packs cache transposed, scaled copies of the weights, so an in-place
// weight mutation must be followed by InvalidateFastPath. The test pins both
// halves of the contract: the stale pack keeps serving the old weights until
// invalidation, and invalidation makes the next forward track the new ones.
func TestQuantPackInvalidation(t *testing.T) {
	if !tensor.QuantizeAvailable() {
		t.Skip("no int8 SIMD kernels on this CPU")
	}
	rng := rand.New(rand.NewSource(34))
	c := NewMLPClassifier(86, 64, 62, rng)
	evalMode(c)
	x := randFilled(rng, 20, 86)

	withQuantize(t, true, func() {
		before := c.Forward(x)
		for i := range c.Hidden.W.Data {
			c.Hidden.W.Data[i] *= 2
		}
		stale := c.Forward(x)
		if d, _ := maxAbsDelta(t, "stale", stale, before); d != 0 {
			t.Fatalf("weights mutated without invalidation changed the output (Δ %g): pack not cached?", d)
		}
		c.InvalidateFastPath()
		fresh := c.Forward(x)
		if d, _ := maxAbsDelta(t, "fresh", fresh, before); d == 0 {
			t.Fatal("InvalidateFastPath did not drop the stale int8 pack")
		}
	})
}

// Same contract for the attention projections, whose quantized pack rides on
// the fused [WQ|WK|WV] pack.
func TestQuantAttentionPackInvalidation(t *testing.T) {
	if !tensor.QuantizeAvailable() {
		t.Skip("no int8 SIMD kernels on this CPU")
	}
	rng := rand.New(rand.NewSource(35))
	a := NewMultiHeadAttention(64, 4, rng)
	evalMode(a)
	x := randFilled(rng, 32, 64)

	withQuantize(t, true, func() {
		before := a.Forward(x, x, nil)
		for i := range a.WQ.W.Data {
			a.WQ.W.Data[i] *= 2
		}
		a.InvalidateFastPath()
		fresh := a.Forward(x, x, nil)
		if d, _ := maxAbsDelta(t, "fresh", fresh, before); d == 0 {
			t.Fatal("InvalidateFastPath did not drop the stale attention packs")
		}
	})
}
