package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// evalMode freezes a module's parameters, the serve-time configuration
// (Model.SetEval) under which the NoGrad fast path is selected; the
// inference benchmarks below measure that path.
func evalMode(m Module) {
	for _, p := range m.Params() {
		p.SetRequiresGrad(false)
	}
}

func BenchmarkSelfAttention128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := NewMultiHeadAttention(64, 4, rng)
	evalMode(a)
	x := tensor.New(128, 64)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Forward(x, x, nil)
	}
}

// BenchmarkSelfAttention128Quant is BenchmarkSelfAttention128 through the
// int8 quantized kernels; the ratio of the two is the headline speedup
// tracked in BENCH_6.json. Falls back to fp64 (and matches the fp64 number)
// on CPUs without the required SIMD support.
func BenchmarkSelfAttention128Quant(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := NewMultiHeadAttention(64, 4, rng)
	evalMode(a)
	x := tensor.New(128, 64)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	prev := tensor.QuantizeEnabled()
	tensor.SetQuantize(true)
	defer tensor.SetQuantize(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Forward(x, x, nil)
	}
}

func BenchmarkCrossAttention(b *testing.B) {
	// Content-tower shape: 64 queries over 192 keys/values.
	rng := rand.New(rand.NewSource(1))
	a := NewMultiHeadAttention(64, 4, rng)
	evalMode(a)
	q := tensor.New(64, 64)
	kv := tensor.New(192, 64)
	for i := range q.Data {
		q.Data[i] = rng.NormFloat64()
	}
	for i := range kv.Data {
		kv.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Forward(q, kv, nil)
	}
}

func BenchmarkTransformerBlock(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	blk := NewTransformerBlock(64, 4, 128, rng)
	evalMode(blk)
	x := tensor.New(128, 64)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.SelfForward(x, nil)
	}
}

func BenchmarkMLPClassifier(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := NewMLPClassifier(64+22, 64, 62, rng)
	evalMode(c)
	x := tensor.New(20, 64+22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x)
	}
}
