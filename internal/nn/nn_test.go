package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestLinearForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(4, 6, rng)
	x := tensor.New(3, 4)
	y := l.Forward(x)
	if y.Rows != 3 || y.Cols != 6 {
		t.Fatalf("linear output %dx%d, want 3x6", y.Rows, y.Cols)
	}
	if l.In() != 4 || l.Out() != 6 {
		t.Fatalf("In/Out = %d/%d", l.In(), l.Out())
	}
}

func TestLinearBiasApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(2, 2, rng)
	l.W.Fill(0)
	l.B.Data[0], l.B.Data[1] = 3, -1
	x := tensor.New(1, 2)
	y := l.Forward(x)
	if y.Data[0] != 3 || y.Data[1] != -1 {
		t.Fatalf("bias not applied: %v", y.Data)
	}
}

func TestLayerNormNormalizes(t *testing.T) {
	ln := NewLayerNorm(8)
	x := tensor.New(2, 8)
	for i := range x.Data {
		x.Data[i] = float64(i) * 3
	}
	y := ln.Forward(x)
	for r := 0; r < 2; r++ {
		sum := 0.0
		for _, v := range y.Row(r) {
			sum += v
		}
		if math.Abs(sum/8) > 1e-9 {
			t.Fatalf("row %d mean = %v", r, sum/8)
		}
	}
}

func TestEmbeddingLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := NewEmbedding(10, 4, rng)
	out := e.Forward([]int{3, 3, 7})
	if out.Rows != 3 || out.Cols != 4 {
		t.Fatalf("embedding output %dx%d", out.Rows, out.Cols)
	}
	for j := 0; j < 4; j++ {
		if out.At(0, j) != out.At(1, j) {
			t.Fatal("same id should embed identically")
		}
		if out.At(0, j) != e.Table.At(3, j) {
			t.Fatal("embedding should gather table rows")
		}
	}
	if e.Vocab() != 10 || e.Dim() != 4 {
		t.Fatalf("Vocab/Dim = %d/%d", e.Vocab(), e.Dim())
	}
}

func TestAttentionShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewMultiHeadAttention(8, 2, rng)
	q := tensor.New(3, 8)
	kv := tensor.New(5, 8)
	out := a.Forward(q, kv, nil)
	if out.Rows != 3 || out.Cols != 8 {
		t.Fatalf("attention output %dx%d, want 3x8", out.Rows, out.Cols)
	}
}

func TestAttentionHeadsMustDivide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for indivisible heads")
		}
	}()
	NewMultiHeadAttention(10, 3, rand.New(rand.NewSource(5)))
}

func TestAttentionMaskBlocksPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewMultiHeadAttention(4, 1, rng)
	q := tensor.New(1, 4)
	for i := range q.Data {
		q.Data[i] = rng.NormFloat64()
	}
	kv := tensor.New(3, 4)
	for i := range kv.Data {
		kv.Data[i] = rng.NormFloat64()
	}
	// Mask out position 2 entirely; result must equal attention over the
	// first two kv rows only.
	mask := PaddingMask(1, []bool{false, false, true})
	masked := a.Forward(q, kv, mask)
	kvShort := tensor.SliceRows(kv, 0, 2)
	short := a.Forward(q, kvShort, nil)
	for i := range masked.Data {
		if math.Abs(masked.Data[i]-short.Data[i]) > 1e-9 {
			t.Fatalf("masked attention differs from truncated kv at %d: %v vs %v", i, masked.Data[i], short.Data[i])
		}
	}
}

func TestPaddingMaskNilWhenUnpadded(t *testing.T) {
	if PaddingMask(4, []bool{false, false}) != nil {
		t.Fatal("want nil mask when no padding")
	}
	m := PaddingMask(2, []bool{false, true})
	if m == nil || !math.IsInf(m.At(0, 1), -1) || m.At(0, 0) != 0 {
		t.Fatalf("bad mask: %+v", m)
	}
}

func TestTransformerBlockSelfForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewTransformerBlock(8, 2, 16, rng)
	x := tensor.New(4, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := b.SelfForward(x, nil)
	if y.Rows != 4 || y.Cols != 8 {
		t.Fatalf("block output %dx%d", y.Rows, y.Cols)
	}
	// Post-norm output rows should be normalized (unit variance w.r.t. the
	// learned gamma=1, beta=0 init).
	for r := 0; r < y.Rows; r++ {
		mean := 0.0
		for _, v := range y.Row(r) {
			mean += v
		}
		if math.Abs(mean/float64(y.Cols)) > 1e-9 {
			t.Fatalf("row %d not normalized, mean %v", r, mean)
		}
	}
}

func TestTransformerBlockCrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := NewTransformerBlock(8, 2, 16, rng)
	q := tensor.New(2, 8)
	kv := tensor.New(7, 8)
	y := b.Forward(q, kv, nil)
	if y.Rows != 2 || y.Cols != 8 {
		t.Fatalf("cross block output %dx%d, want 2x8", y.Rows, y.Cols)
	}
}

func TestTransformerBlockGradientsFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := NewTransformerBlock(4, 2, 8, rng)
	x := tensor.Param(3, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	loss := tensor.Sum(b.SelfForward(x, nil))
	loss.Backward()
	for _, p := range b.Params() {
		if p.Grad == nil {
			t.Fatalf("parameter %s got no gradient", p)
		}
	}
	if x.Grad == nil {
		t.Fatal("input got no gradient")
	}
}

// TestAttentionGradCheck verifies the full attention backward pass against
// numerical differentiation on a tiny instance.
func TestAttentionGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := NewMultiHeadAttention(4, 2, rng)
	q := tensor.New(2, 4)
	kv := tensor.New(3, 4)
	for i := range q.Data {
		q.Data[i] = rng.NormFloat64()
	}
	for i := range kv.Data {
		kv.Data[i] = rng.NormFloat64()
	}
	forward := func() *tensor.Tensor {
		for _, p := range a.Params() {
			p.ZeroGrad()
		}
		out := a.Forward(q, kv, nil)
		return tensor.Sum(tensor.Mul(out, out))
	}
	loss := forward()
	loss.Backward()
	params := a.Params()
	analytic := make([][]float64, len(params))
	for i, p := range params {
		analytic[i] = append([]float64(nil), p.Grad...)
	}
	const h = 1e-5
	for pi, p := range params {
		// Spot-check a few elements per parameter to keep the test fast.
		for _, idx := range []int{0, len(p.Data) / 2, len(p.Data) - 1} {
			orig := p.Data[idx]
			p.Data[idx] = orig + h
			up := forward().Item()
			p.Data[idx] = orig - h
			down := forward().Item()
			p.Data[idx] = orig
			want := (up - down) / (2 * h)
			got := analytic[pi][idx]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Errorf("param %d elem %d: analytic %v numeric %v", pi, idx, got, want)
			}
		}
	}
}

func TestMLPClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewMLPClassifier(6, 10, 3, rng)
	x := tensor.New(2, 6)
	logits := c.Forward(x)
	if logits.Rows != 2 || logits.Cols != 3 {
		t.Fatalf("classifier output %dx%d", logits.Rows, logits.Cols)
	}
	if c.Classes() != 3 {
		t.Fatalf("Classes() = %d", c.Classes())
	}
}

func TestExtendClassesPreservesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := NewMLPClassifier(4, 8, 3, rng)
	x := tensor.New(1, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	before := c.Forward(x).Clone()
	c.ExtendClasses(5, rng)
	after := c.Forward(x)
	if after.Cols != 5 {
		t.Fatalf("extended classifier has %d classes, want 5", after.Cols)
	}
	for j := 0; j < 3; j++ {
		if math.Abs(before.At(0, j)-after.At(0, j)) > 1e-12 {
			t.Fatalf("old class %d logit changed: %v → %v", j, before.At(0, j), after.At(0, j))
		}
	}
	// New classes should start strongly negative (not predicted).
	for j := 3; j < 5; j++ {
		if after.At(0, j) > 0 {
			t.Fatalf("new class %d starts with positive logit %v", j, after.At(0, j))
		}
	}
}

func TestExtendClassesPanicsOnShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := NewMLPClassifier(4, 8, 3, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.ExtendClasses(2, rng)
}

func TestCollectAndNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	l := NewLinear(3, 4, rng)
	ln := NewLayerNorm(4)
	ps := CollectParams(l, ln)
	if len(ps) != 4 {
		t.Fatalf("collected %d tensors, want 4", len(ps))
	}
	if n := NumParams(l, ln); n != 3*4+4+4+4 {
		t.Fatalf("NumParams = %d", n)
	}
}

func TestSharedBlockBetweenTowers(t *testing.T) {
	// The ADTD towers share Transformer parameters: running the same block
	// on two different inputs must produce independent graphs but shared
	// gradient accumulation.
	rng := rand.New(rand.NewSource(15))
	b := NewTransformerBlock(4, 1, 8, rng)
	x1 := tensor.New(2, 4)
	x2 := tensor.New(3, 4)
	for i := range x1.Data {
		x1.Data[i] = rng.NormFloat64()
	}
	for i := range x2.Data {
		x2.Data[i] = rng.NormFloat64()
	}
	loss := tensor.Add(tensor.Sum(b.SelfForward(x1, nil)), tensor.Sum(b.SelfForward(x2, nil)))
	loss.Backward()
	for _, p := range b.Params() {
		if p.Grad == nil {
			t.Fatal("shared parameters must accumulate gradients from both towers")
		}
	}
}
