// Package nn provides the neural-network layers used by the ADTD model and
// the TURL/Doduo baselines: embeddings, linear projections, layer
// normalization, multi-head (self- and cross-) attention, Transformer
// encoder blocks, and MLP classifier heads. All layers are built on the
// autograd engine in internal/tensor.
//
// Every layer implements the Module interface so models can collect
// trainable parameters for the optimizer and for checkpointing. Layers are
// safe for concurrent read-only use (inference over shared parameters);
// training must be single-goroutine per parameter set.
package nn

import (
	"math/rand"
	"sync/atomic"

	"repro/internal/tensor"
)

// Module is anything that owns trainable parameters.
type Module interface {
	// Params returns the trainable parameter tensors in a stable order.
	Params() []*tensor.Tensor
}

// CollectParams concatenates the parameters of the given modules.
func CollectParams(ms ...Module) []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, m := range ms {
		out = append(out, m.Params()...)
	}
	return out
}

// NumParams returns the total number of scalar parameters in the modules.
func NumParams(ms ...Module) int {
	n := 0
	for _, p := range CollectParams(ms...) {
		n += len(p.Data)
	}
	return n
}

// Linear is a fully connected layer: y = xW + b.
type Linear struct {
	W *tensor.Tensor // in × out
	B *tensor.Tensor // 1 × out

	// quant caches the int8 transposed weight pack for the quantized
	// inference path; nil until first quantized forward, dropped by
	// InvalidateFastPath when W changes in place.
	quant atomic.Pointer[tensor.QuantMatrix]
}

// NewLinear creates a Xavier-initialized linear layer.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{W: tensor.Param(in, out), B: tensor.Param(1, out)}
	tensor.XavierUniform(l.W, rng)
	return l
}

// Forward applies the affine transform to x (rows × in). When neither x
// nor the parameters require grad (and the fast path is enabled) the
// matmul and bias add run fused into one arena tensor.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	if tensor.FastPathEnabled() && tensor.NoGrad(x, l.W, l.B) {
		out := tensor.InferenceResult(x.Rows, l.Out(), x)
		tensor.LinearInto(out.Data, x.Data, x.Rows, l.In(), l.W.Data, l.Out(), 0, l.Out(), l.B.Data)
		return out
	}
	return tensor.AddRowVector(tensor.MatMul(x, l.W), l.B)
}

// quantPack returns the cached int8 weight pack, building it on first use.
// Like the attention projection pack, the pointer is published atomically;
// a racing rebuild wastes one allocation.
func (l *Linear) quantPack() *tensor.QuantMatrix {
	if q := l.quant.Load(); q != nil {
		return q
	}
	q := tensor.PackQuantMatrix(l.W.Data, l.In(), l.Out())
	l.quant.Store(q)
	return q
}

// InvalidateFastPath drops the cached int8 pack; call after mutating W in
// place. Model-level SetEval/SetTrain/Load do this for you.
func (l *Linear) InvalidateFastPath() { l.quant.Store(nil) }

// Params implements Module.
func (l *Linear) Params() []*tensor.Tensor { return []*tensor.Tensor{l.W, l.B} }

// In returns the input width.
func (l *Linear) In() int { return l.W.Rows }

// Out returns the output width.
func (l *Linear) Out() int { return l.W.Cols }

// LayerNorm is a learnable per-feature normalization layer.
type LayerNorm struct {
	Gamma *tensor.Tensor
	Beta  *tensor.Tensor
	Eps   float64
}

// NewLayerNorm creates a layer norm over dim features (gamma=1, beta=0).
func NewLayerNorm(dim int) *LayerNorm {
	ln := &LayerNorm{Gamma: tensor.Param(1, dim), Beta: tensor.Param(1, dim), Eps: 1e-5}
	tensor.ConstantInit(ln.Gamma, 1)
	return ln
}

// Forward normalizes each row of x, fused on the NoGrad fast path.
func (ln *LayerNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	if tensor.FastPathEnabled() && tensor.NoGrad(x, ln.Gamma, ln.Beta) {
		out := tensor.InferenceResult(x.Rows, x.Cols, x)
		tensor.FusedAddLayerNormInto(out.Data, x.Data, nil, ln.Gamma.Data, ln.Beta.Data, x.Rows, x.Cols, ln.Eps)
		return out
	}
	return tensor.LayerNorm(x, ln.Gamma, ln.Beta, ln.Eps)
}

// Params implements Module.
func (ln *LayerNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{ln.Gamma, ln.Beta} }

// Embedding maps integer ids to dense rows of a learnable table.
type Embedding struct {
	Table *tensor.Tensor // vocab × dim
}

// NewEmbedding creates an embedding table initialized N(0, 0.02²).
func NewEmbedding(vocab, dim int, rng *rand.Rand) *Embedding {
	e := &Embedding{Table: tensor.Param(vocab, dim)}
	tensor.NormalInit(e.Table, 0.02, rng)
	return e
}

// Forward gathers the rows for ids (len(ids) × dim).
func (e *Embedding) Forward(ids []int) *tensor.Tensor {
	return tensor.PickRows(e.Table, ids)
}

// Params implements Module.
func (e *Embedding) Params() []*tensor.Tensor { return []*tensor.Tensor{e.Table} }

// Vocab returns the number of rows in the table.
func (e *Embedding) Vocab() int { return e.Table.Rows }

// Dim returns the embedding width.
func (e *Embedding) Dim() int { return e.Table.Cols }
