package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// bothPaths runs f with the fused NoGrad kernels enabled and disabled and
// compares the outputs element-for-element with == : the fast path promises
// bit-exactness, not mere closeness, so serving results cannot drift when
// the kernel selection changes.
func bothPaths(t *testing.T, name string, f func() *tensor.Tensor) {
	t.Helper()
	tensor.SetFastPath(true)
	fast := f()
	tensor.SetFastPath(false)
	slow := f()
	tensor.SetFastPath(true)
	if fast.Rows != slow.Rows || fast.Cols != slow.Cols {
		t.Fatalf("%s: fast %dx%d vs slow %dx%d", name, fast.Rows, fast.Cols, slow.Rows, slow.Cols)
	}
	for i := range fast.Data {
		if fast.Data[i] != slow.Data[i] {
			t.Fatalf("%s: element %d: fast %v != slow %v (Δ %g)",
				name, i, fast.Data[i], slow.Data[i], fast.Data[i]-slow.Data[i])
		}
	}
}

func randFilled(rng *rand.Rand, rows, cols int) *tensor.Tensor {
	x := tensor.New(rows, cols)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

// randMask builds an additive attention mask with random -Inf entries but
// always at least one visible key per query row (a query that can attend to
// nothing never occurs in the model's masks: content positions always see
// their own column).
func randMask(rng *rand.Rand, lq, lkv int) *tensor.Tensor {
	m := tensor.New(lq, lkv)
	neg := math.Inf(-1)
	for i := 0; i < lq; i++ {
		keep := rng.Intn(lkv)
		for j := 0; j < lkv; j++ {
			if j != keep && rng.Float64() < 0.4 {
				m.Set(i, j, neg)
			}
		}
	}
	return m
}

// TestAttentionFastPathBitExact covers self- and cross-attention, masked and
// unmasked, at the repro head width (16, the specialized score kernel) and
// an odd width (the generic kernel).
func TestAttentionFastPathBitExact(t *testing.T) {
	cases := []struct {
		name   string
		hidden int
		heads  int
		lq     int
		lkv    int
		cross  bool
		masked bool
	}{
		{"self-headdim16", 64, 4, 128, 128, false, false},
		{"self-headdim16-masked", 64, 4, 37, 37, false, true},
		{"cross-headdim16", 64, 4, 9, 33, true, false},
		{"cross-headdim16-masked", 64, 4, 9, 33, true, true},
		{"self-headdim12", 48, 4, 21, 21, false, false},
		{"cross-headdim12-masked", 48, 4, 13, 29, true, true},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(11))
		a := NewMultiHeadAttention(tc.hidden, tc.heads, rng)
		evalMode(a)
		q := randFilled(rng, tc.lq, tc.hidden)
		kv := q
		if tc.cross {
			kv = randFilled(rng, tc.lkv, tc.hidden)
		}
		var mask *tensor.Tensor
		if tc.masked {
			mask = randMask(rng, tc.lq, tc.lkv)
		}
		bothPaths(t, tc.name, func() *tensor.Tensor { return a.Forward(q, kv, mask) })
	}
}

func TestTransformerBlockFastPathBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	blk := NewTransformerBlock(64, 4, 128, rng)
	evalMode(blk)
	x := randFilled(rng, 48, 64)
	kv := randFilled(rng, 80, 64)
	bothPaths(t, "self", func() *tensor.Tensor { return blk.SelfForward(x, nil) })
	bothPaths(t, "self-masked", func() *tensor.Tensor { return blk.SelfForward(x, randMask(rand.New(rand.NewSource(13)), 48, 48)) })
	bothPaths(t, "cross", func() *tensor.Tensor { return blk.Forward(x, kv, nil) })
}

func TestLayerNormFastPathBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ln := NewLayerNorm(64)
	evalMode(ln)
	// Non-trivial gain/shift so the affine part is exercised too.
	for i := range ln.Gamma.Data {
		ln.Gamma.Data[i] = 1 + 0.1*rng.NormFloat64()
		ln.Beta.Data[i] = 0.1 * rng.NormFloat64()
	}
	x := randFilled(rng, 33, 64)
	bothPaths(t, "layernorm", func() *tensor.Tensor { return ln.Forward(x) })
}

func TestLinearAndClassifierFastPathBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	l := NewLinear(70, 40, rng)
	evalMode(l)
	x := randFilled(rng, 17, 70)
	bothPaths(t, "linear", func() *tensor.Tensor { return l.Forward(x) })

	c := NewMLPClassifier(86, 64, 62, rng)
	evalMode(c)
	cx := randFilled(rng, 20, 86)
	bothPaths(t, "classifier", func() *tensor.Tensor { return c.Forward(cx) })
}

// TestFastPathSkippedUnderGrad: an input that requires grad must never take
// the fused path — training still records the autograd graph.
func TestFastPathSkippedUnderGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := NewMultiHeadAttention(64, 4, rng)
	evalMode(a)
	x := randFilled(rng, 8, 64)
	x.SetRequiresGrad(true)
	out := a.Forward(x, x, nil)
	if !out.RequiresGrad() {
		t.Fatal("grad-requiring input produced a detached output: fast path taken during training")
	}
}

// Allocation ceilings for the NoGrad serving path. The fused kernels write
// into pooled workspaces, so steady-state inference must stay within a
// handful of allocations per forward regardless of sequence length.
func TestNoGradAttentionAllocCeiling(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := NewMultiHeadAttention(64, 4, rng)
	evalMode(a)
	x := randFilled(rng, 128, 64)
	a.Forward(x, x, nil) // warm the workspace and arena pools
	const ceiling = 16
	if got := testing.AllocsPerRun(20, func() { a.Forward(x, x, nil) }); got > ceiling {
		t.Fatalf("NoGrad attention: %.0f allocs/op, ceiling %d", got, ceiling)
	}
}

func TestNoGradLayerNormAllocCeiling(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	ln := NewLayerNorm(64)
	evalMode(ln)
	x := randFilled(rng, 128, 64)
	ln.Forward(x)
	const ceiling = 8
	if got := testing.AllocsPerRun(20, func() { ln.Forward(x) }); got > ceiling {
		t.Fatalf("NoGrad layer-norm: %.0f allocs/op, ceiling %d", got, ceiling)
	}
}
