package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/tensor"
)

// MultiHeadAttention implements the multi-head scaled dot-product attention
// of §2.3. It takes separate query and key/value inputs, which is what lets
// the ADTD content tower attend asymmetrically over the concatenation of
// metadata and content latents (§4.2.3): Q comes from the content stream
// while K and V come from [metadata ⊕ content].
type MultiHeadAttention struct {
	Hidden int
	Heads  int

	WQ, WK, WV, WO *Linear

	// packed caches the fused [WQ|WK|WV] projection for the NoGrad fast
	// path (fastpath.go); nil until first fast forward, dropped by
	// InvalidateFastPath when the weights change.
	packed atomic.Pointer[qkvPack]
	// qkvQuant is the int8 transposed pack of the fused projection for the
	// quantized path, cached and invalidated alongside packed.
	qkvQuant atomic.Pointer[tensor.QuantMatrix]
}

// NewMultiHeadAttention creates an attention layer with hidden size divisible
// by heads.
func NewMultiHeadAttention(hidden, heads int, rng *rand.Rand) *MultiHeadAttention {
	if hidden%heads != 0 {
		panic(fmt.Sprintf("nn: hidden %d not divisible by heads %d", hidden, heads))
	}
	return &MultiHeadAttention{
		Hidden: hidden,
		Heads:  heads,
		WQ:     NewLinear(hidden, hidden, rng),
		WK:     NewLinear(hidden, hidden, rng),
		WV:     NewLinear(hidden, hidden, rng),
		WO:     NewLinear(hidden, hidden, rng),
	}
}

// Forward computes attention with queries from q (Lq × H) and keys/values
// from kv (Lkv × H). mask, when non-nil, is an additive Lq × Lkv matrix
// (use -Inf to hide positions, e.g. padding).
func (a *MultiHeadAttention) Forward(q, kv *tensor.Tensor, mask *tensor.Tensor) *tensor.Tensor {
	if q.Cols != a.Hidden || kv.Cols != a.Hidden {
		panic(fmt.Sprintf("nn: attention input width %d/%d, want %d", q.Cols, kv.Cols, a.Hidden))
	}
	if a.fastEligible(q, kv, mask) {
		ws := tensor.AcquireWorkspace()
		out := tensor.InferenceResult(q.Rows, a.Hidden, q, kv)
		a.forwardFastInto(ws, out.Data, q.Data, q.Rows, kv.Data, kv.Rows, mask)
		tensor.ReleaseWorkspace(ws)
		return out
	}
	qp := a.WQ.Forward(q)
	kp := a.WK.Forward(kv)
	vp := a.WV.Forward(kv)

	headDim := a.Hidden / a.Heads
	scale := 1 / math.Sqrt(float64(headDim))
	heads := make([]*tensor.Tensor, a.Heads)
	for h := 0; h < a.Heads; h++ {
		from, to := h*headDim, (h+1)*headDim
		qh := tensor.SliceCols(qp, from, to)
		kh := tensor.SliceCols(kp, from, to)
		vh := tensor.SliceCols(vp, from, to)
		scores := tensor.Scale(tensor.MatMulNT(qh, kh), scale) // Lq × Lkv
		attn := tensor.SoftmaxRows(scores, mask)
		heads[h] = tensor.MatMul(attn, vh) // Lq × headDim
	}
	return a.WO.Forward(tensor.ConcatCols(heads...))
}

// Params implements Module.
func (a *MultiHeadAttention) Params() []*tensor.Tensor {
	return CollectParams(a.WQ, a.WK, a.WV, a.WO)
}

// PaddingMask builds an additive Lq × Lkv mask hiding key positions where
// keyPad[j] is true. Returns nil when nothing is padded, avoiding per-call
// allocation on the common unpadded path.
func PaddingMask(lq int, keyPad []bool) *tensor.Tensor {
	any := false
	for _, p := range keyPad {
		if p {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	m := tensor.New(lq, len(keyPad))
	neg := math.Inf(-1)
	for i := 0; i < lq; i++ {
		row := m.Row(i)
		for j, p := range keyPad {
			if p {
				row[j] = neg
			}
		}
	}
	return m
}

// TransformerBlock is a post-norm Transformer encoder layer as in Fig. 2:
// multi-head attention with residual + layer norm, followed by a
// position-wise feed-forward network (H → I → H, GELU) with residual +
// layer norm.
type TransformerBlock struct {
	Attn *MultiHeadAttention
	LN1  *LayerNorm
	FF1  *Linear
	FF2  *Linear
	LN2  *LayerNorm
}

// NewTransformerBlock creates a block with the given hidden size, head count
// and intermediate (feed-forward) size.
func NewTransformerBlock(hidden, heads, intermediate int, rng *rand.Rand) *TransformerBlock {
	return &TransformerBlock{
		Attn: NewMultiHeadAttention(hidden, heads, rng),
		LN1:  NewLayerNorm(hidden),
		FF1:  NewLinear(hidden, intermediate, rng),
		FF2:  NewLinear(intermediate, hidden, rng),
		LN2:  NewLayerNorm(hidden),
	}
}

// Forward runs the block with queries q and keys/values kv. Pass q == kv for
// self-attention. The residual connection is taken from q, so output shape is
// Lq × H.
func (b *TransformerBlock) Forward(q, kv *tensor.Tensor, mask *tensor.Tensor) *tensor.Tensor {
	if b.fastEligible(q, kv, mask) {
		ws := tensor.AcquireWorkspace()
		out := b.forwardFastWS(ws, q, kv.Data, kv.Rows, mask, []*tensor.Tensor{q, kv})
		tensor.ReleaseWorkspace(ws)
		return out
	}
	attnOut := b.Attn.Forward(q, kv, mask)
	x := b.LN1.Forward(tensor.Add(q, attnOut))
	ff := b.FF2.Forward(tensor.GELU(b.FF1.Forward(x)))
	return b.LN2.Forward(tensor.Add(x, ff))
}

// SelfForward is shorthand for Forward(x, x, mask).
func (b *TransformerBlock) SelfForward(x *tensor.Tensor, mask *tensor.Tensor) *tensor.Tensor {
	return b.Forward(x, x, mask)
}

// Params implements Module.
func (b *TransformerBlock) Params() []*tensor.Tensor {
	return CollectParams(b.Attn, b.LN1, b.FF1, b.FF2, b.LN2)
}

// MLPClassifier is a feed-forward head with one ReLU hidden layer and a
// linear output producing per-class logits (§4.3); apply a sigmoid to get
// multi-label probabilities.
type MLPClassifier struct {
	Hidden *Linear
	Out    *Linear
}

// NewMLPClassifier creates a classifier mapping in → hidden → classes.
func NewMLPClassifier(in, hidden, classes int, rng *rand.Rand) *MLPClassifier {
	return &MLPClassifier{
		Hidden: NewLinear(in, hidden, rng),
		Out:    NewLinear(hidden, classes, rng),
	}
}

// Forward returns raw logits (rows × classes).
func (c *MLPClassifier) Forward(x *tensor.Tensor) *tensor.Tensor {
	if tensor.FastPathEnabled() && tensor.NoGrad(x, c.Hidden.W, c.Hidden.B, c.Out.W, c.Out.B) {
		ws := tensor.AcquireWorkspace()
		out := c.ForwardWS(ws, x)
		tensor.ReleaseWorkspace(ws)
		return out
	}
	return c.Out.Forward(tensor.ReLU(c.Hidden.Forward(x)))
}

// Params implements Module.
func (c *MLPClassifier) Params() []*tensor.Tensor { return CollectParams(c.Hidden, c.Out) }

// Classes returns the number of output classes.
func (c *MLPClassifier) Classes() int { return c.Out.Out() }

// ExtendClasses grows the output layer to newClasses, preserving the learned
// weights for existing classes and Xavier-initializing the new columns. It
// implements the "accommodate new semantic types" extension from §8.
func (c *MLPClassifier) ExtendClasses(newClasses int, rng *rand.Rand) {
	old := c.Out
	if newClasses <= old.Out() {
		panic(fmt.Sprintf("nn: ExtendClasses to %d but already %d", newClasses, old.Out()))
	}
	grown := NewLinear(old.In(), newClasses, rng)
	for i := 0; i < old.W.Rows; i++ {
		copy(grown.W.Row(i)[:old.Out()], old.W.Row(i))
	}
	copy(grown.B.Data[:old.Out()], old.B.Data)
	// Bias new classes strongly negative so they start as "not predicted"
	// rather than coin flips, matching how an operator would want a freshly
	// added type to behave before fine-tuning.
	for j := old.Out(); j < newClasses; j++ {
		grown.B.Data[j] = -2
	}
	c.Out = grown
}
