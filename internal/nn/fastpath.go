// NoGrad fast paths for the nn layers, built on the fused kernels in
// internal/tensor. A layer selects its fast path automatically when the
// global toggle is on and neither its inputs nor its parameters require
// grad (the serve-time configuration after Model.SetEval); otherwise it
// falls through to the composed autograd ops. Both paths produce bit-exact
// identical outputs — see fastpath_test.go.
package nn

import (
	"math"

	"repro/internal/tensor"
)

// qkvPack is the fused attention projection: the three H×H query/key/value
// weight matrices packed column-wise into one H×3H matrix (and biases into
// one 3H vector), so self-attention projects Q, K and V with a single
// matmul over the input.
type qkvPack struct {
	w []float64 // in × 3H row-major: [WQ | WK | WV]
	b []float64 // 3H
}

// pack returns the cached packed projection, building it on first use.
// Safe for concurrent inference: the pointer is published atomically and a
// racing rebuild just wastes one allocation.
func (a *MultiHeadAttention) pack() *qkvPack {
	if p := a.packed.Load(); p != nil {
		return p
	}
	h := a.Hidden
	p := &qkvPack{w: make([]float64, h*3*h), b: make([]float64, 3*h)}
	for i := 0; i < h; i++ {
		row := p.w[i*3*h : (i+1)*3*h]
		copy(row[0:h], a.WQ.W.Row(i))
		copy(row[h:2*h], a.WK.W.Row(i))
		copy(row[2*h:3*h], a.WV.W.Row(i))
	}
	copy(p.b[0:h], a.WQ.B.Data)
	copy(p.b[h:2*h], a.WK.B.Data)
	copy(p.b[2*h:3*h], a.WV.B.Data)
	a.packed.Store(p)
	return p
}

// quantPack returns the int8 pack of the fused projection, building it
// from the fp64 pack on first quantized forward.
func (a *MultiHeadAttention) quantPack(pk *qkvPack) *tensor.QuantMatrix {
	if q := a.qkvQuant.Load(); q != nil {
		return q
	}
	q := tensor.PackQuantMatrix(pk.w, a.Hidden, 3*a.Hidden)
	a.qkvQuant.Store(q)
	return q
}

// InvalidateFastPath drops the packed projection and the quantized packs;
// call after mutating the attention weights in place (checkpoint load,
// optimizer step) so the next fast forward repacks. Model-level
// SetEval/SetTrain/Load do this for you.
func (a *MultiHeadAttention) InvalidateFastPath() {
	a.packed.Store(nil)
	a.qkvQuant.Store(nil)
	a.WO.InvalidateFastPath()
}

// InvalidateFastPath drops the block's cached packs (attention projection
// and the feed-forward int8 packs).
func (b *TransformerBlock) InvalidateFastPath() {
	b.Attn.InvalidateFastPath()
	b.FF1.InvalidateFastPath()
	b.FF2.InvalidateFastPath()
}

// InvalidateFastPath drops the classifier's cached int8 packs.
func (c *MLPClassifier) InvalidateFastPath() {
	c.Hidden.InvalidateFastPath()
	c.Out.InvalidateFastPath()
}

// quantSelected reports whether forwards threaded through ws should take
// the int8 kernels: requested on the workspace (process default or
// per-request override) and SIMD-backed on this machine.
func quantSelected(ws *tensor.Workspace) bool {
	return ws.Quantize && tensor.QuantizeAvailable()
}

func (a *MultiHeadAttention) fastEligible(q, kv, mask *tensor.Tensor) bool {
	return tensor.FastPathEnabled() &&
		tensor.NoGrad(q, kv, mask, a.WQ.W, a.WQ.B, a.WK.W, a.WK.B, a.WV.W, a.WV.B, a.WO.W, a.WO.B)
}

// forwardFastInto runs fused attention into dst (lq × Hidden). q and kv are
// raw row-major activations; passing the same slice for both selects the
// packed single-matmul self-attention projection.
func (a *MultiHeadAttention) forwardFastInto(ws *tensor.Workspace, dst []float64, q []float64, lq int, kv []float64, lkv int, mask *tensor.Tensor) {
	h := a.Hidden
	pk := a.pack()
	headDim := h / a.Heads
	sh := AttnShapeFor(lq, lkv, a.Heads, headDim)
	quant := quantSelected(ws)
	var qq *tensor.QuantMatrix
	if quant {
		qq = a.quantPack(pk)
	}
	var qp, kvp []float64
	if lq == lkv && &q[0] == &kv[0] {
		proj := ws.Take(lq * 3 * h)
		if quant {
			tensor.LinearQuantInto(ws, proj, q, lq, h, qq, 0, 3*h, pk.b)
		} else {
			tensor.LinearInto(proj, q, lq, h, pk.w, 3*h, 0, 3*h, pk.b)
		}
		qp, kvp = proj, proj
		sh.QOff, sh.QStride = 0, 3*h
		sh.KOff, sh.VOff, sh.KVStride = h, 2*h, 3*h
	} else {
		qp = ws.Take(lq * h)
		kvp = ws.Take(lkv * 2 * h)
		if quant {
			tensor.LinearQuantInto(ws, qp, q, lq, h, qq, 0, h, pk.b)
			tensor.LinearQuantInto(ws, kvp, kv, lkv, h, qq, h, 3*h, pk.b)
		} else {
			tensor.LinearInto(qp, q, lq, h, pk.w, 3*h, 0, h, pk.b)
			tensor.LinearInto(kvp, kv, lkv, h, pk.w, 3*h, h, 3*h, pk.b)
		}
		sh.QOff, sh.QStride = 0, h
		sh.KOff, sh.VOff, sh.KVStride = 0, h, 2*h
	}
	core := ws.Take(lq * h)
	if !(quant && tensor.QuantAttentionCore(ws, core, qp, kvp, sh, mask)) {
		tensor.FusedAttentionCore(ws, core, qp, kvp, sh, mask)
	}
	if quant {
		tensor.LinearQuantInto(ws, dst, core, lq, h, a.WO.quantPack(), 0, h, a.WO.B.Data)
	} else {
		tensor.LinearInto(dst, core, lq, h, a.WO.W.Data, h, 0, h, a.WO.B.Data)
	}
}

// AttnShapeFor fills the shape-invariant fields of an AttnShape.
func AttnShapeFor(lq, lkv, heads, headDim int) tensor.AttnShape {
	return tensor.AttnShape{
		Lq: lq, Lkv: lkv, Heads: heads, HeadDim: headDim,
		Scale: 1 / math.Sqrt(float64(headDim)),
	}
}

func (b *TransformerBlock) fastEligible(q, kv, mask *tensor.Tensor) bool {
	return b.Attn.fastEligible(q, kv, mask) &&
		tensor.NoGrad(b.LN1.Gamma, b.LN1.Beta, b.FF1.W, b.FF1.B, b.FF2.W, b.FF2.B, b.LN2.Gamma, b.LN2.Beta)
}

// forwardFastWS runs the whole block fused: attention, residual+LN1, the
// GELU feed-forward, residual+LN2. Every intermediate lives in ws; only the
// output is an arena tensor, with the given parents recorded so
// ReleaseGraph frees fused graphs like composed ones.
func (b *TransformerBlock) forwardFastWS(ws *tensor.Workspace, q *tensor.Tensor, kvData []float64, lkv int, mask *tensor.Tensor, parents []*tensor.Tensor) *tensor.Tensor {
	h := b.Attn.Hidden
	lq := q.Rows
	quant := quantSelected(ws)
	attn := ws.Take(lq * h)
	b.Attn.forwardFastInto(ws, attn, q.Data, lq, kvData, lkv, mask)
	x := ws.Take(lq * h)
	tensor.FusedAddLayerNormInto(x, q.Data, attn, b.LN1.Gamma.Data, b.LN1.Beta.Data, lq, h, b.LN1.Eps)
	inter := b.FF1.Out()
	hidden := ws.Take(lq * inter)
	if quant {
		tensor.LinearQuantInto(ws, hidden, x, lq, h, b.FF1.quantPack(), 0, inter, b.FF1.B.Data)
		tensor.FastGELUInPlace(hidden)
	} else {
		tensor.LinearInto(hidden, x, lq, h, b.FF1.W.Data, inter, 0, inter, b.FF1.B.Data)
		tensor.FusedGELUInPlace(hidden)
	}
	ff := ws.Take(lq * h)
	if quant {
		tensor.LinearQuantInto(ws, ff, hidden, lq, inter, b.FF2.quantPack(), 0, h, b.FF2.B.Data)
	} else {
		tensor.LinearInto(ff, hidden, lq, inter, b.FF2.W.Data, h, 0, h, b.FF2.B.Data)
	}
	out := tensor.InferenceResult(lq, h, parents...)
	tensor.FusedAddLayerNormInto(out.Data, x, ff, b.LN2.Gamma.Data, b.LN2.Beta.Data, lq, h, b.LN2.Eps)
	return out
}

// ForwardWS is Forward with an explicit workspace for scratch buffers: the
// fused path when eligible, the composed ops otherwise. Use it to thread
// one warm workspace through a multi-layer forward.
func (b *TransformerBlock) ForwardWS(ws *tensor.Workspace, q, kv *tensor.Tensor, mask *tensor.Tensor) *tensor.Tensor {
	if !b.fastEligible(q, kv, mask) {
		return b.Forward(q, kv, mask)
	}
	return b.forwardFastWS(ws, q, kv.Data, kv.Rows, mask, []*tensor.Tensor{q, kv})
}

// ForwardKVConcatWS runs the block with keys/values formed by vertically
// concatenating parts (the content tower's [metadata ⊕ content] wiring)
// without materializing the concatenation as a graph tensor: the rows are
// assembled in workspace scratch and every part is recorded as a parent of
// the output, so ReleaseGraph still reaches fresh metadata encodings.
func (b *TransformerBlock) ForwardKVConcatWS(ws *tensor.Workspace, q *tensor.Tensor, parts []*tensor.Tensor, mask *tensor.Tensor) *tensor.Tensor {
	fast := b.fastEligible(q, q, mask)
	for _, p := range parts {
		if p.RequiresGrad() {
			fast = false
		}
	}
	if !fast {
		return b.Forward(q, tensor.ConcatRows(parts...), mask)
	}
	h := b.Attn.Hidden
	lkv := 0
	for _, p := range parts {
		lkv += p.Rows
	}
	kvData := ws.Take(lkv * h)
	off := 0
	for _, p := range parts {
		copy(kvData[off:off+len(p.Data)], p.Data)
		off += len(p.Data)
	}
	parents := make([]*tensor.Tensor, 0, len(parts)+1)
	parents = append(parents, q)
	parents = append(parents, parts...)
	return b.forwardFastWS(ws, q, kvData, lkv, mask, parents)
}

// ForwardWS is the classifier forward with explicit workspace and explicit
// graph parents for the returned logits (defaulting to x when none are
// given). The fast path keeps the ReLU hidden layer in scratch.
func (c *MLPClassifier) ForwardWS(ws *tensor.Workspace, x *tensor.Tensor, parents ...*tensor.Tensor) *tensor.Tensor {
	if !(tensor.FastPathEnabled() &&
		tensor.NoGrad(x, c.Hidden.W, c.Hidden.B, c.Out.W, c.Out.B) &&
		tensor.NoGrad(parents...)) {
		return c.Forward(x)
	}
	rows, in := x.Rows, c.Hidden.In()
	hid := c.Hidden.Out()
	quant := quantSelected(ws)
	hidden := ws.Take(rows * hid)
	if quant {
		tensor.LinearQuantInto(ws, hidden, x.Data, rows, in, c.Hidden.quantPack(), 0, hid, c.Hidden.B.Data)
	} else {
		tensor.LinearInto(hidden, x.Data, rows, in, c.Hidden.W.Data, hid, 0, hid, c.Hidden.B.Data)
	}
	tensor.FusedReLUInPlace(hidden)
	if len(parents) == 0 {
		parents = []*tensor.Tensor{x}
	}
	out := tensor.InferenceResult(rows, c.Out.Out(), parents...)
	if quant {
		tensor.LinearQuantInto(ws, out.Data, hidden, rows, hid, c.Out.quantPack(), 0, c.Out.Out(), c.Out.B.Data)
	} else {
		tensor.LinearInto(out.Data, hidden, rows, hid, c.Out.W.Data, c.Out.Out(), 0, c.Out.Out(), c.Out.B.Data)
	}
	return out
}
