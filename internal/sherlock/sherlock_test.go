package sherlock

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/adtd"
	"repro/internal/corpus"
	"repro/internal/metrics"
)

func TestExtractDim(t *testing.T) {
	f := Extract([]string{"hello", "world"})
	if len(f) != FeatureDim {
		t.Fatalf("dim = %d, want %d", len(f), FeatureDim)
	}
}

func TestExtractEmptyColumn(t *testing.T) {
	f := Extract([]string{"", "", ""})
	for i, v := range f {
		if v != 0 {
			t.Fatalf("feature %d = %v for empty column", i, v)
		}
	}
}

func TestExtractCharHistograms(t *testing.T) {
	f := Extract([]string{"aaa"})
	if f[0] != 1 { // all chars are 'a'
		t.Fatalf("letter-a frequency = %v", f[0])
	}
	f = Extract([]string{"111"})
	if f[26+1] != 1 { // digit '1'
		t.Fatalf("digit-1 frequency = %v", f[27])
	}
}

func TestExtractDistinctAndConstantLength(t *testing.T) {
	f := Extract([]string{"abc", "abc", "abc"})
	if f[49] != 1.0/3 { // distinct ratio
		t.Fatalf("distinct ratio = %v", f[49])
	}
	if f[52] != 1 { // constant-length flag
		t.Fatalf("constant-length flag = %v", f[52])
	}
	f = Extract([]string{"a", "ab", "abc"})
	if f[52] != 0 {
		t.Fatal("varying lengths must clear the flag")
	}
}

func TestExtractNumericBlock(t *testing.T) {
	f := Extract([]string{"1", "2", "-3"})
	if f[54] != 1 {
		t.Fatalf("numeric ratio = %v", f[54])
	}
	if f[59] != 1 { // all integers
		t.Fatalf("integer ratio = %v", f[59])
	}
	if math.Abs(f[60]-1.0/3) > 1e-9 { // negative ratio
		t.Fatalf("negative ratio = %v", f[60])
	}
}

func TestEntropyBounds(t *testing.T) {
	if e := entropy([]string{"a", "a", "a"}); e != 0 {
		t.Fatalf("constant entropy = %v", e)
	}
	if e := entropy([]string{"a", "b", "c", "d"}); math.Abs(e-1) > 1e-9 {
		t.Fatalf("uniform entropy = %v", e)
	}
}

// Property: features stay finite and roughly bounded for arbitrary input.
func TestExtractBoundedProperty(t *testing.T) {
	f := func(values []string) bool {
		for _, v := range Extract(values) {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < -1.5 || v > 40 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrainLearnsPatternTypes(t *testing.T) {
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(80), 1)
	types := adtd.NewTypeSpace(ds.Registry.Names())
	m := New(types, 64, 1)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 100
	if _, err := Train(m, ds.Train, cfg); err != nil {
		t.Fatal(err)
	}
	acc := metrics.NewF1Accumulator()
	for _, tb := range ds.Test {
		for _, c := range tb.Columns {
			probs := m.PredictColumn(c.Values)
			var admitted []string
			for j, p := range probs {
				if j == 0 {
					continue
				}
				if p >= 0.5 {
					admitted = append(admitted, types.Name(j))
				}
			}
			acc.Add(admitted, c.Labels)
		}
	}
	// Content statistics separate many generated types well; this detector
	// must clearly beat chance but is not expected to reach the DL level.
	if f1 := acc.F1(); f1 < 0.4 {
		t.Fatalf("sherlock F1 = %.3f, want ≥ 0.4", f1)
	}
}

func TestTrainErrors(t *testing.T) {
	types := adtd.NewTypeSpace([]string{"x"})
	m := New(types, 8, 1)
	if _, err := Train(m, nil, DefaultTrainConfig()); err == nil {
		t.Fatal("expected error on empty corpus")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	types := adtd.NewTypeSpace([]string{"a", "b"})
	m := New(types, 16, 1)
	m.SetEval()
	values := []string{"10.0.0.1", "10.0.0.2"}
	before := m.PredictColumn(values)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(types, 16, 99)
	m2.SetEval()
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	after := m2.PredictColumn(values)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("prediction drift after load")
		}
	}
}

func TestSortedKeysHelper(t *testing.T) {
	got := sortedKeys(map[string]int{"b": 1, "a": 2})
	if len(got) != 2 || got[0] != "a" {
		t.Fatalf("sortedKeys = %v", got)
	}
}

func TestMomentsHelper(t *testing.T) {
	mean, std, minv, maxv := moments([]float64{2, 4, 6})
	if mean != 4 || minv != 2 || maxv != 6 {
		t.Fatalf("moments = %v %v %v %v", mean, std, minv, maxv)
	}
	if math.Abs(std-math.Sqrt(8.0/3)) > 1e-12 {
		t.Fatalf("std = %v", std)
	}
	_ = rand.Int // keep math/rand linked for future fuzz extensions
}
