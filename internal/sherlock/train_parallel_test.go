package sherlock

import (
	"math"
	"testing"

	"repro/internal/adtd"
	"repro/internal/corpus"
	"repro/internal/tensor"
	"repro/internal/train"
)

func twinModels(t *testing.T) (*Model, *Model, *corpus.Dataset) {
	t.Helper()
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(10), 1)
	types := adtd.NewTypeSpace(ds.Registry.Names())
	return New(types, 32, 3), New(types, 32, 3), ds
}

func requireSameParams(t *testing.T, a, b *Model, what string) {
	t.Helper()
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		for j := range ap[i].Data {
			if ap[i].Data[j] != bp[i].Data[j] {
				t.Fatalf("%s: param %d elem %d differs: %v vs %v", what, i, j, ap[i].Data[j], bp[i].Data[j])
			}
		}
	}
}

// TestTrainWorkers1BitExactVsSerial pins the serial-equivalence contract for
// the Sherlock loop, which is the only batched (BatchItems>1) caller.
func TestTrainWorkers1BitExactVsSerial(t *testing.T) {
	serial, trained, ds := twinModels(t)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	cfg.Batch = 8
	cfg.Cells = 6
	cfg.Seed = 9

	// Test-local serial reference over the same example construction.
	var examples []example
	for _, tb := range ds.Train {
		for _, c := range tb.Columns {
			vals := c.Values
			if len(vals) > cfg.Cells {
				vals = vals[:cfg.Cells]
			}
			examples = append(examples, example{
				features: Extract(vals),
				target:   serial.Types.Targets(c.Labels),
			})
		}
	}
	serial.SetTrain()
	opt := tensor.NewAdam(serial.Params(), cfg.LR)
	opt.ClipNorm = 1
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := train.EpochPerm(cfg.Seed, epoch, len(examples))
		for lo := 0; lo < len(order); lo += cfg.Batch {
			hi := lo + cfg.Batch
			if hi > len(order) {
				hi = len(order)
			}
			opt.ZeroGrads()
			loss := serial.batchLoss(examples, order[lo:hi], cfg.PosWeight)
			loss.Backward()
			opt.Step()
			tensor.ReleaseGraph(loss)
		}
	}
	serial.SetEval()

	cfg.Workers = 1
	if _, err := Train(trained, ds.Train, cfg); err != nil {
		t.Fatal(err)
	}
	requireSameParams(t, trained, serial, "sherlock workers=1 vs serial")
}

// TestTrainMultiWorkerDeterministic runs multi-worker training twice (also
// exercised under -race) and requires identical final parameters.
func TestTrainMultiWorkerDeterministic(t *testing.T) {
	a, b, ds := twinModels(t)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	cfg.Batch = 8
	cfg.Cells = 6
	cfg.Workers = 3
	cfg.GradAccum = 2
	lossA, err := Train(a, ds.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lossB, err := Train(b, ds.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lossA != lossB || math.IsNaN(lossA) {
		t.Fatalf("multi-worker losses differ or NaN: %v vs %v", lossA, lossB)
	}
	requireSameParams(t, a, b, "sherlock identical (seed,workers) runs")
}
