// Package sherlock implements a compact Sherlock-style detector (Hulsebos
// et al., KDD'19; the paper's §7): hand-engineered statistical features
// extracted from column content feeding a plain feed-forward network. It
// provides a third comparison point between the rule-based detector
// (internal/ruledet) and the Transformer systems: content-based like the DL
// baselines (must scan everything), but with fixed features instead of
// learned representations — and, like the original, completely blind to
// metadata.
package sherlock

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"unicode"
)

// FeatureDim is the width of the per-column feature vector: 26 letter
// frequencies + 10 digit frequencies + 8 character-class/structure
// features + 10 length/statistics features + 8 value-level aggregates.
const FeatureDim = 26 + 10 + 8 + 10 + 8

// Extract computes the feature vector for a column's sampled values.
// Empty values are skipped; an all-empty column yields the zero vector.
func Extract(values []string) []float64 {
	f := make([]float64, FeatureDim)
	var nonEmpty []string
	for _, v := range values {
		if v != "" {
			nonEmpty = append(nonEmpty, v)
		}
	}
	if len(nonEmpty) == 0 {
		return f
	}

	// Character-level histograms over all text.
	letters := f[0:26]
	digits := f[26:36]
	classes := f[36:44] // upper, lower, digit, space, punct, symbol, '.', '-'
	totalChars := 0
	for _, v := range nonEmpty {
		for _, r := range v {
			totalChars++
			switch {
			case r >= 'a' && r <= 'z':
				letters[r-'a']++
				classes[1]++
			case r >= 'A' && r <= 'Z':
				letters[r-'A']++
				classes[0]++
			case r >= '0' && r <= '9':
				digits[r-'0']++
				classes[2]++
			case unicode.IsSpace(r):
				classes[3]++
			case r == '.':
				classes[6]++
			case r == '-':
				classes[7]++
			case unicode.IsPunct(r):
				classes[4]++
			default:
				classes[5]++
			}
		}
	}
	if totalChars > 0 {
		inv := 1 / float64(totalChars)
		for i := 0; i < 44; i++ {
			f[i] *= inv
		}
	}

	// Length statistics.
	lens := make([]float64, len(nonEmpty))
	for i, v := range nonEmpty {
		lens[i] = float64(len(v))
	}
	mean, std, minv, maxv := moments(lens)
	lenBlock := f[44:54]
	lenBlock[0] = mean / 32
	lenBlock[1] = std / 16
	lenBlock[2] = minv / 32
	lenBlock[3] = maxv / 32
	lenBlock[4] = float64(len(nonEmpty)) / float64(len(values)) // non-null ratio
	distinct := make(map[string]bool, len(nonEmpty))
	for _, v := range nonEmpty {
		distinct[v] = true
	}
	lenBlock[5] = float64(len(distinct)) / float64(len(nonEmpty)) // distinct ratio
	lenBlock[6] = entropy(nonEmpty)
	// Token counts per value.
	tokens := 0.0
	for _, v := range nonEmpty {
		tokens += float64(len(strings.Fields(v)))
	}
	lenBlock[7] = tokens / float64(len(nonEmpty)) / 8
	// Constant-length indicator (protocol-shaped data).
	if minv == maxv {
		lenBlock[8] = 1
	}
	// Leading-character agreement: fraction sharing the most common first byte.
	first := map[byte]int{}
	for _, v := range nonEmpty {
		first[v[0]]++
	}
	maxFirst := 0
	for _, c := range first {
		if c > maxFirst {
			maxFirst = c
		}
	}
	lenBlock[9] = float64(maxFirst) / float64(len(nonEmpty))

	// Numeric aggregates.
	numBlock := f[54:62]
	var nums []float64
	for _, v := range nonEmpty {
		if x, err := strconv.ParseFloat(v, 64); err == nil {
			nums = append(nums, x)
		}
	}
	numBlock[0] = float64(len(nums)) / float64(len(nonEmpty)) // numeric ratio
	if len(nums) > 0 {
		nmean, nstd, nmin, nmax := moments(nums)
		numBlock[1] = squash(nmean)
		numBlock[2] = squash(nstd)
		numBlock[3] = squash(nmin)
		numBlock[4] = squash(nmax)
		ints := 0
		negative := 0
		for _, x := range nums {
			if x == math.Trunc(x) {
				ints++
			}
			if x < 0 {
				negative++
			}
		}
		numBlock[5] = float64(ints) / float64(len(nums))
		numBlock[6] = float64(negative) / float64(len(nums))
		numBlock[7] = squash(nmax - nmin)
	}
	return f
}

// moments returns mean, standard deviation, min and max.
func moments(xs []float64) (mean, std, minv, maxv float64) {
	minv, maxv = xs[0], xs[0]
	for _, x := range xs {
		mean += x
		if x < minv {
			minv = x
		}
		if x > maxv {
			maxv = x
		}
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return
}

// entropy returns the normalized Shannon entropy of the value distribution.
func entropy(values []string) float64 {
	counts := map[string]int{}
	for _, v := range values {
		counts[v]++
	}
	if len(counts) <= 1 {
		return 0
	}
	// Iterate in sorted key order: map iteration order varies run to run,
	// and floating-point summation order must not — Extract feeds training,
	// whose determinism contract (DESIGN.md §10) requires bit-identical
	// features for identical inputs.
	h := 0.0
	n := float64(len(values))
	for _, k := range sortedKeys(counts) {
		p := float64(counts[k]) / n
		h -= p * math.Log2(p)
	}
	return h / math.Log2(float64(len(counts)))
}

// squash maps a value of arbitrary magnitude into (-1, 1).
func squash(v float64) float64 {
	return math.Copysign(math.Log1p(math.Abs(v)), v) / 24
}

// sortedKeys is a test helper exposed for deterministic debugging output.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
