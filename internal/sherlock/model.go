package sherlock

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/adtd"
	"repro/internal/corpus"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
)

// Model is the Sherlock-style classifier: a two-hidden-layer feed-forward
// network over the fixed feature vector.
type Model struct {
	Types *adtd.TypeSpace

	l1, l2 *nn.Linear
	out    *nn.Linear
}

// New creates a randomly initialized model.
func New(types *adtd.TypeSpace, hidden int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := &Model{
		Types: types,
		l1:    nn.NewLinear(FeatureDim, hidden, rng),
		l2:    nn.NewLinear(hidden, hidden, rng),
		out:   nn.NewLinear(hidden, types.Len(), rng),
	}
	m.out.B.Fill(-3) // sparse multi-label bias init, as in the other models
	return m
}

// Params returns the trainable parameters.
func (m *Model) Params() []*tensor.Tensor {
	return nn.CollectParams(m.l1, m.l2, m.out)
}

// SetEval freezes parameters for inference.
func (m *Model) SetEval() {
	for _, p := range m.Params() {
		p.SetRequiresGrad(false)
	}
}

// SetTrain enables gradient tracking.
func (m *Model) SetTrain() {
	for _, p := range m.Params() {
		p.SetRequiresGrad(true)
	}
}

// Save serializes parameters.
func (m *Model) Save(w io.Writer) error { return tensor.WriteTensors(w, m.Params()) }

// Load restores parameters.
func (m *Model) Load(r io.Reader) error { return tensor.ReadTensors(r, m.Params()) }

func (m *Model) forward(features *tensor.Tensor) *tensor.Tensor {
	h := tensor.ReLU(m.l1.Forward(features))
	h = tensor.ReLU(m.l2.Forward(h))
	return m.out.Forward(h)
}

// Predict returns per-column type probabilities for a batch of feature
// vectors.
func (m *Model) Predict(features [][]float64) [][]float64 {
	return adtd.Sigmoid(m.forward(tensor.FromRows(features)))
}

// PredictColumn classifies one column's values end to end.
func (m *Model) PredictColumn(values []string) []float64 {
	return m.Predict([][]float64{Extract(values)})[0]
}

// TrainConfig controls training.
type TrainConfig struct {
	Epochs int
	// Workers is the number of data-parallel gradient workers (≤0 → 1);
	// GradAccum accumulates batches per worker into each optimizer step.
	Workers   int
	GradAccum int
	LR        float64
	PosWeight float64
	Cells     int // values sampled per column
	Batch     int
	Seed      int64
	Log       io.Writer
}

// DefaultTrainConfig returns sensible defaults.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 100, LR: 2e-3, PosWeight: 6, Cells: 30, Batch: 64, Seed: 1}
}

// example is one training item: a feature vector and its multi-label target.
type example struct {
	features []float64
	target   []float64
}

// batchLoss builds the weighted BCE loss for one mini-batch of examples.
func (m *Model) batchLoss(examples []example, items []int, posWeight float64) *tensor.Tensor {
	feats := make([][]float64, 0, len(items))
	targets := make([][]float64, 0, len(items))
	for _, it := range items {
		feats = append(feats, examples[it].features)
		targets = append(targets, examples[it].target)
	}
	return tensor.WeightedBCEWithLogits(m.forward(tensor.FromRows(feats)), tensor.FromRows(targets), posWeight)
}

// trainingReplica builds a worker-private model aliasing the canonical
// weights but owning its gradient state (see DESIGN.md §10).
func (m *Model) trainingReplica() *Model {
	r := New(m.Types, m.l1.Out(), 0)
	tensor.AliasData(r.Params(), m.Params())
	r.SetTrain()
	return r
}

// Train fits the model on labelled corpus tables. Returns the final mean
// epoch loss.
func Train(m *Model, tables []*corpus.Table, cfg TrainConfig) (float64, error) {
	if cfg.Epochs <= 0 || len(tables) == 0 {
		return 0, fmt.Errorf("sherlock: need tables and positive epochs")
	}
	var examples []example
	for _, t := range tables {
		for _, c := range t.Columns {
			vals := c.Values
			if len(vals) > cfg.Cells {
				vals = vals[:cfg.Cells]
			}
			examples = append(examples, example{
				features: Extract(vals),
				target:   m.Types.Targets(c.Labels),
			})
		}
	}
	m.SetTrain()
	defer m.SetEval()

	spec := train.Spec{
		Params: m.Params(),
		Items:  len(examples),
		NewWorker: func(w int) (train.Worker, error) {
			mm := m
			if w > 0 {
				mm = m.trainingReplica()
			}
			return train.Worker{
				Params: mm.Params(),
				Step: func(items []int, rng *rand.Rand) *tensor.Tensor {
					return mm.batchLoss(examples, items, cfg.PosWeight)
				},
			}, nil
		},
	}
	return train.Run(spec, train.Config{
		Epochs:     cfg.Epochs,
		Workers:    cfg.Workers,
		GradAccum:  cfg.GradAccum,
		BatchItems: cfg.Batch,
		Shuffle:    true,
		LR:         cfg.LR,
		ClipNorm:   1,
		Seed:       cfg.Seed,
		Log:        cfg.Log,
		LogPrefix:  "sherlock",
	})
}
