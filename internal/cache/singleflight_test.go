package cache

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSingleflightCoalesces: concurrent callers of one key share a single
// execution; exactly one leader runs fn.
func TestSingleflightCoalesces(t *testing.T) {
	g := NewGroup[int](nil)
	release := make(chan struct{})
	started := make(chan struct{})
	calls := 0

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, shared, err := g.Do(context.Background(), "k", func() (int, error) {
			calls++
			close(started)
			<-release
			return 42, nil
		})
		if err != nil || shared || v != 42 {
			t.Errorf("leader got (%d, shared=%v, %v)", v, shared, err)
		}
	}()
	<-started

	const followers = 5
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := g.Do(context.Background(), "k", func() (int, error) {
				t.Error("follower executed fn")
				return 0, nil
			})
			if err != nil || !shared || v != 42 {
				t.Errorf("follower got (%d, shared=%v, %v)", v, shared, err)
			}
		}()
	}
	// Followers must be registered as waiters before the leader finishes.
	for {
		if g.Stats().Coalesced == followers {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	st := g.Stats()
	if st.Leaders != 1 || st.Coalesced != followers || st.InFlight != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSingleflightLeaderErrorPropagates: a leader failure reaches every
// coalesced follower verbatim.
func TestSingleflightLeaderErrorPropagates(t *testing.T) {
	g := NewGroup[int](nil)
	boom := errors.New("boom")
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := g.Do(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("leader err = %v", err)
		}
	}()
	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, shared, err := g.Do(context.Background(), "k", func() (int, error) { return 0, nil })
		if !shared || !errors.Is(err, boom) {
			t.Errorf("follower got shared=%v err=%v", shared, err)
		}
	}()
	for g.Stats().Coalesced != 1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
}

// TestSingleflightLeaderPanicContained: a panicking leader surfaces an
// error to itself and every waiter instead of deadlocking or repanicking.
func TestSingleflightLeaderPanicContained(t *testing.T) {
	g := NewGroup[int](nil)
	_, _, err := g.Do(context.Background(), "k", func() (int, error) {
		panic("kaboom")
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic error", err)
	}
	if g.Stats().InFlight != 0 {
		t.Fatal("panicked call left in flight")
	}
	// The key must be reusable afterwards.
	v, _, err := g.Do(context.Background(), "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("post-panic call got (%d, %v)", v, err)
	}
}

// TestSingleflightFollowerCtxCancel: a follower whose context dies while
// waiting gets ctx.Err(); the leader keeps running and completes normally.
func TestSingleflightFollowerCtxCancel(t *testing.T) {
	g := NewGroup[int](nil)
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	leaderErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		v, _, err := g.Do(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			return 42, nil
		})
		if v != 42 {
			leaderErr <- errors.New("leader result lost")
			return
		}
		leaderErr <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, shared, err := g.Do(ctx, "k", func() (int, error) { return 0, nil })
	if !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower got shared=%v err=%v", shared, err)
	}

	close(release)
	wg.Wait()
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader affected by follower cancellation: %v", err)
	}
}

// TestSingleflightSequentialNotCoalesced: back-to-back calls on one key
// each run fn — coalescing applies to concurrent callers only.
func TestSingleflightSequentialNotCoalesced(t *testing.T) {
	g := NewGroup[int](nil)
	for i := 1; i <= 3; i++ {
		v, shared, err := g.Do(context.Background(), "k", func() (int, error) { return i, nil })
		if err != nil || shared || v != i {
			t.Fatalf("call %d got (%d, shared=%v, %v)", i, v, shared, err)
		}
	}
	st := g.Stats()
	if st.Leaders != 3 || st.Coalesced != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
