package cache

import "time"

// Result is the content-hash result tier: it memoizes per-chunk model
// outputs (per-column probability rows) keyed by a hash of everything that
// determines them — column metadata, scanned values for the content phase,
// the detector's knob set, and the model generation counter (see
// internal/core/cachekeys.go for the key construction). Because the key
// covers the inputs by content, a change to the underlying table data
// produces a different key and the stale entry simply ages out; a change
// to the model (SetTrain, Load, ApplyFeedback) bumps the generation and
// orphans every old key in O(1).
//
// Values are [][]float64 probability rows shared with the detection
// pipeline; they are immutable by contract (the pipeline never mutates
// probability rows after the model returns them — Report assembly only
// reads them).
type Result struct {
	s *Sharded[[][]float64]
}

// probsBytes accounts one cached result: row payloads plus slice headers
// plus fixed entry overhead.
func probsBytes(rows [][]float64) int64 {
	b := int64(entryOverhead)
	for _, r := range rows {
		b += int64(len(r))*8 + 48
	}
	return b
}

// NewResult creates the result tier bounded by budgetBytes across shards
// (≤ 0 shards selects DefaultShards). budgetBytes ≤ 0 disables the tier.
func NewResult(budgetBytes int64, shards int) *Result {
	return &Result{s: New[[][]float64](budgetBytes, shards, probsBytes)}
}

// SetMetrics attaches obs handles for the tier's counters and hit-path
// latency histogram.
func (c *Result) SetMetrics(m *TierMetrics) { c.s.SetMetrics(m) }

// Enabled reports whether the tier can store anything. Callers use this to
// skip key hashing entirely when the tier is off.
func (c *Result) Enabled() bool { return c.s.Enabled() }

// Get returns the memoized probability rows for key.
func (c *Result) Get(key string) ([][]float64, bool) {
	var start time.Time
	m := c.s.metrics
	if m != nil {
		start = time.Now()
	}
	rows, ok := c.s.Get(key)
	if ok && m != nil {
		m.observeHit(time.Since(start))
	}
	return rows, ok
}

// Put memoizes rows under key. The rows become cache-owned and must not be
// mutated afterwards.
func (c *Result) Put(key string, rows [][]float64) {
	if !c.s.Enabled() {
		return
	}
	c.s.Put(key, rows)
}

// Delete evicts one key.
func (c *Result) Delete(key string) { c.s.Delete(key) }

// Len returns the number of memoized entries.
func (c *Result) Len() int { return c.s.Len() }

// Bytes returns the accounted bytes.
func (c *Result) Bytes() int64 { return c.s.Bytes() }

// Stats returns a snapshot of the tier counters.
func (c *Result) Stats() Stats { return c.s.Stats() }
