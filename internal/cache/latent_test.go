package cache

import (
	"fmt"
	"testing"

	"repro/internal/adtd"
	"repro/internal/tensor"
)

func testEncoding(seed float64) *adtd.MetaEncoding {
	data := make([]float64, 6)
	for i := range data {
		data[i] = seed + float64(i)
	}
	return &adtd.MetaEncoding{Layers: []*tensor.Tensor{tensor.FromSlice(2, 3, data)}}
}

func TestEncodingBytes(t *testing.T) {
	enc := testEncoding(0)
	want := int64(entryOverhead) + 2*3*8
	if got := EncodingBytes(enc); got != want {
		t.Fatalf("EncodingBytes = %d, want %d", got, want)
	}
}

// TestLatentPutConsumesZeroCopy: a consumed Put stores a detached view
// sharing the producer's buffers — the hit path returns the same float64
// backing array, no memcpy on either side.
func TestLatentPutConsumesZeroCopy(t *testing.T) {
	c := NewLatent(1<<20, 1)
	enc := testEncoding(1)
	if !c.Put("k", enc) {
		t.Fatal("put not consumed")
	}
	got := c.Get("k")
	if got == nil {
		t.Fatal("miss after put")
	}
	if &got.Layers[0].Data[0] != &enc.Layers[0].Data[0] {
		t.Fatal("cached encoding does not share the producer's buffer")
	}
	// The stored view must be graph-free: the release walk of any consumer
	// graph skips parentless leaves, which is what keeps cached entries
	// alive across batch releases.
	if got.Layers[0].RequiresGrad() {
		t.Fatal("cached layer carries autograd state")
	}
}

// TestLatentEqualRePutSkipped: re-offering an identical encoding refreshes
// recency and reports not-consumed, so the caller recycles its fresh copy.
func TestLatentEqualRePutSkipped(t *testing.T) {
	c := NewLatent(1<<20, 1)
	if !c.Put("k", testEncoding(2)) {
		t.Fatal("first put not consumed")
	}
	if c.Put("k", testEncoding(2)) {
		t.Fatal("equal re-put consumed the duplicate")
	}
	st := c.Stats()
	if st.SkippedCopies != 1 || st.Entries != 1 {
		t.Fatalf("stats after equal re-put: %+v", st)
	}
	// A different encoding under the same key must replace, not skip.
	if !c.Put("k", testEncoding(9)) {
		t.Fatal("changed encoding not stored")
	}
	if got := c.Get("k"); got.Layers[0].Data[0] != 9 {
		t.Fatalf("stale encoding served: %v", got.Layers[0].Data[0])
	}
}

func TestLatentDisabled(t *testing.T) {
	c := NewLatent(0, 0)
	if c.Enabled() {
		t.Fatal("zero-budget latent tier enabled")
	}
	enc := testEncoding(3)
	if c.Put("k", enc) {
		t.Fatal("disabled tier consumed an encoding")
	}
	if c.Get("k") != nil {
		t.Fatal("disabled tier returned a hit")
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("disabled tier miss ledger: %+v", st)
	}
}

// TestLatentEvictionByBytes: the tier is bounded by accounted encoding
// bytes, not entry count.
func TestLatentEvictionByBytes(t *testing.T) {
	per := EncodingBytes(testEncoding(0))
	c := NewLatent(2*per, 1) // room for exactly two encodings
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), testEncoding(float64(i)))
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if b := c.Bytes(); b > 2*per {
		t.Fatalf("bytes %d over budget %d", b, 2*per)
	}
	if st := c.Stats(); st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
}

func TestLatentOversizedNotConsumed(t *testing.T) {
	c := NewLatent(64, 1) // smaller than any encoding with overhead
	enc := testEncoding(5)
	if c.Put("k", enc) {
		t.Fatal("oversized encoding consumed")
	}
	if c.Len() != 0 {
		t.Fatal("oversized encoding stored")
	}
}

func TestResultTierRoundTrip(t *testing.T) {
	c := NewResult(1<<20, 2)
	rows := [][]float64{{0.1, 0.9}, {0.8, 0.2}}
	c.Put("k", rows)
	got, ok := c.Get("k")
	if !ok {
		t.Fatal("miss after put")
	}
	if &got[0][0] != &rows[0][0] {
		t.Fatal("result tier copied the rows")
	}
	if _, ok := c.Get("absent"); ok {
		t.Fatal("phantom hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}

	off := NewResult(0, 0)
	off.Put("k", rows)
	if off.Len() != 0 {
		t.Fatal("disabled result tier stored rows")
	}
}
