package cache

import (
	"time"

	"repro/internal/adtd"
)

// Latent is the metadata-latent tier (§4.2.2): it stores the per-chunk
// metadata-tower encodings Phase 1 computes so Phase 2 — and every later
// detect over the same chunk — skips the metadata tower. It replaces the
// seed adtd.LatentCache, which deep-copied on Put and was capacity-bounded
// by entry count behind one mutex.
//
// Ownership handoff (the zero-memcpy contract): Put takes the producer's
// fresh encoding and, when it stores it, consumes it — the entry keeps a
// graph-free Detach view sharing the producer's buffers, and the caller
// must NOT Release the encoding (the buffers now belong to the cache and
// are reclaimed by GC on eviction). Put reports whether it consumed the
// value:
//
//	if !cache.Put(key, menc) {
//		menc.Release() // not consumed: recycle the arena graph as before
//	}
//
// Entries are immutable; Get returns the shared *MetaEncoding with zero
// copying, so neither the hit path nor the store path pays a memcpy. This
// is safe because (a) eval-mode encodings carry no autograd parents anyone
// else could release, (b) the producing goroutine hands over its only
// reference, and (c) all readers treat encodings as read-only (the content
// tower only reads menc.Layers as attention keys/values).
type Latent struct {
	s *Sharded[*adtd.MetaEncoding]
}

// entryOverhead approximates the per-entry bookkeeping bytes (map cell,
// list element, entry struct, tensor headers) added on top of the latent
// payload when accounting an encoding against the byte budget.
const entryOverhead = 256

// EncodingBytes accounts one encoding's budget charge: the layer matrices
// (float64 payload) plus fixed per-entry overhead. The MetaInput is shared
// with the producer and not charged.
func EncodingBytes(e *adtd.MetaEncoding) int64 {
	b := int64(entryOverhead)
	for _, l := range e.Layers {
		b += int64(l.Rows) * int64(l.Cols) * 8
	}
	return b
}

// NewLatent creates the latent tier bounded by budgetBytes across shards
// (≤ 0 shards selects DefaultShards). budgetBytes ≤ 0 disables the tier.
func NewLatent(budgetBytes int64, shards int) *Latent {
	return &Latent{s: New[*adtd.MetaEncoding](budgetBytes, shards, EncodingBytes)}
}

// SetMetrics attaches obs handles for the tier's hit/miss/eviction
// counters and hit-path latency histogram.
func (c *Latent) SetMetrics(m *TierMetrics) { c.s.SetMetrics(m) }

// Enabled reports whether the tier can store anything.
func (c *Latent) Enabled() bool { return c.s.Enabled() }

// Put offers the producer's encoding to the cache and reports whether it
// was consumed. Three outcomes:
//
//   - disabled or encoding larger than a shard's budget → false (caller
//     keeps ownership and should Release);
//   - key already holds an equal encoding (the steady-state re-Put after a
//     Phase-1 pass over an unchanged chunk) → recency refreshed, skipped
//     copy counted, false — the fresh duplicate goes back to the arena;
//   - otherwise the encoding's graph-free Detach view is stored → true,
//     and the caller must not Release it.
func (c *Latent) Put(key string, enc *adtd.MetaEncoding) bool {
	if !c.s.Enabled() {
		return false
	}
	if prev, ok := c.s.Peek(key); ok && encodingsEqual(prev, enc) {
		c.s.Touch(key)
		return false
	}
	return c.s.Put(key, enc.Detach())
}

// Get returns the cached encoding (shared, read-only) or nil on miss.
func (c *Latent) Get(key string) *adtd.MetaEncoding {
	var start time.Time
	m := c.s.metrics
	if m != nil {
		start = time.Now()
	}
	enc, ok := c.s.Get(key)
	if !ok {
		return nil
	}
	if m != nil {
		m.observeHit(time.Since(start))
	}
	return enc
}

// Delete evicts one key.
func (c *Latent) Delete(key string) { c.s.Delete(key) }

// Len returns the number of cached encodings.
func (c *Latent) Len() int { return c.s.Len() }

// Bytes returns the accounted bytes.
func (c *Latent) Bytes() int64 { return c.s.Bytes() }

// Stats returns a snapshot of the tier counters.
func (c *Latent) Stats() Stats { return c.s.Stats() }

// encodingsEqual reports whether two encodings hold identical latents
// (same layer count, shapes and bytes). NaNs compare unequal, which only
// means a redundant store, never a wrong skip.
func encodingsEqual(a, b *adtd.MetaEncoding) bool {
	if len(a.Layers) != len(b.Layers) {
		return false
	}
	for i, la := range a.Layers {
		lb := b.Layers[i]
		if la.Rows != lb.Rows || la.Cols != lb.Cols {
			return false
		}
		for j, v := range la.Data {
			if v != lb.Data[j] {
				return false
			}
		}
	}
	return true
}
