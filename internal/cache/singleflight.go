package cache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Group coalesces concurrent executions of the same computation: while one
// caller (the leader) runs fn for a key, later callers with the same key
// (followers) block and receive the leader's result instead of recomputing.
// It is a stdlib-only, context-aware, generic reimplementation of the
// classic singleflight pattern, with panic containment — a panicking leader
// surfaces an error to every waiter instead of deadlocking them.
//
// In the serving path the key is the fleet route key plus the canonical
// request body, so dedup fires exactly where the fleet's consistent-hash
// routing concentrates identical traffic on one replica.
type Group[V any] struct {
	mu    sync.Mutex
	calls map[string]*call[V]

	leaders   atomic.Int64
	coalesced atomic.Int64
	counter   *obs.Counter // optional taste_cache_coalesced_total handle
}

type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// FlightStats is a snapshot of a Group's counters for /v1/stats.
type FlightStats struct {
	// Leaders counts executions that actually ran fn.
	Leaders int64 `json:"leaders"`
	// Coalesced counts callers served by another caller's execution.
	Coalesced int64 `json:"coalesced"`
	// InFlight is the number of keys currently executing.
	InFlight int `json:"in_flight"`
}

// NewGroup creates a Group. coalesced, when non-nil, is incremented once
// per coalesced caller (wire it to MetricCoalesced on the serving
// registry).
func NewGroup[V any](coalesced *obs.Counter) *Group[V] {
	return &Group[V]{calls: make(map[string]*call[V]), counter: coalesced}
}

// Do executes fn for key, coalescing with an in-flight execution of the
// same key. shared reports whether the result came from another caller's
// execution. A follower whose ctx dies while waiting returns ctx.Err()
// without cancelling the leader (other waiters may still want the result).
func (g *Group[V]) Do(ctx context.Context, key string, fn func() (V, error)) (v V, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		g.coalesced.Add(1)
		if g.counter != nil {
			g.counter.Inc()
		}
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			var zero V
			return zero, true, ctx.Err()
		}
	}
	c := &call[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()
	g.leaders.Add(1)

	func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("singleflight: leader panicked: %v", r)
			}
		}()
		c.val, c.err = fn()
	}()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// Stats returns a snapshot of the group's counters.
func (g *Group[V]) Stats() FlightStats {
	g.mu.Lock()
	inFlight := len(g.calls)
	g.mu.Unlock()
	return FlightStats{
		Leaders:   g.leaders.Load(),
		Coalesced: g.coalesced.Load(),
		InFlight:  inFlight,
	}
}
