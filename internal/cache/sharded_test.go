package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func strBytes(v string) int64 { return int64(len(v)) }

// TestShardPartitionProperty: every key maps to exactly one shard,
// deterministically, and the shard count rounds up to a power of two.
// Inserted keys must all be retrievable and the global entry count must
// equal the number of distinct keys — i.e. no key is double-stored across
// shards and none is lost to partitioning.
func TestShardPartitionProperty(t *testing.T) {
	for _, requested := range []int{1, 2, 3, 5, 8, 16, 17} {
		c := New[string](1<<20, requested, strBytes)
		n := c.NumShards()
		if n&(n-1) != 0 || n < requested {
			t.Fatalf("shards(%d) = %d, want power of two ≥ requested", requested, n)
		}
		const keys = 500
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("db%02d.table%03d#%d", i%7, i, i%3)
			if !c.Put(key, key) {
				t.Fatalf("put %q rejected", key)
			}
			// Same key must hash to the same shard on every call.
			if c.shardFor(key) != c.shardFor(key) {
				t.Fatalf("shardFor(%q) not deterministic", key)
			}
		}
		if c.Len() != keys {
			t.Fatalf("len = %d, want %d", c.Len(), keys)
		}
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("db%02d.table%03d#%d", i%7, i, i%3)
			got, ok := c.Get(key)
			if !ok || got != key {
				t.Fatalf("get %q = (%q, %v)", key, got, ok)
			}
		}
		// Per-shard entry counts must sum to the total (each key in exactly
		// one shard).
		sum := 0
		for _, sh := range c.shards {
			sum += len(sh.items)
		}
		if sum != keys {
			t.Fatalf("shard entries sum %d, want %d", sum, keys)
		}
	}
}

// TestByteBudgetEviction: a single-shard cache over its byte budget evicts
// from the probation LRU end and never reports bytes above budget.
func TestByteBudgetEviction(t *testing.T) {
	c := New[string](100, 1, strBytes)
	val := "0123456789" // 10 bytes
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprintf("k%02d", i), val)
	}
	if b := c.Bytes(); b > 100 {
		t.Fatalf("bytes %d over budget", b)
	}
	st := c.Stats()
	if st.Evictions != 10 {
		t.Fatalf("evictions = %d, want 10", st.Evictions)
	}
	// The ten oldest probation entries are gone, the ten newest remain.
	for i := 0; i < 10; i++ {
		if _, ok := c.Peek(fmt.Sprintf("k%02d", i)); ok {
			t.Fatalf("k%02d should have been evicted", i)
		}
	}
	for i := 10; i < 20; i++ {
		if _, ok := c.Peek(fmt.Sprintf("k%02d", i)); !ok {
			t.Fatalf("k%02d missing", i)
		}
	}
}

// TestScanResistance: a re-accessed working set is promoted into the
// protected segment and survives a one-pass cold scan that would wipe a
// plain LRU.
func TestScanResistance(t *testing.T) {
	c := New[string](100, 1, strBytes) // protected cap 80
	val := "0123456789"
	hot := []string{"hot0", "hot1", "hot2", "hot3", "hot4"}
	for _, k := range hot {
		c.Put(k, val)
	}
	for _, k := range hot { // second access promotes
		if _, ok := c.Get(k); !ok {
			t.Fatalf("hot key %q missing before scan", k)
		}
	}
	for i := 0; i < 200; i++ { // one cold scan, each key seen once
		c.Put(fmt.Sprintf("cold%03d", i), val)
	}
	for _, k := range hot {
		if _, ok := c.Peek(k); !ok {
			t.Fatalf("hot key %q evicted by cold scan", k)
		}
	}
}

// TestProtectedDemotionNotEviction: promoting beyond the protected cap
// demotes protected-LRU entries back to probation; they stay retrievable.
func TestProtectedDemotionNotEviction(t *testing.T) {
	c := New[string](100, 1, strBytes) // protected cap 80 → 8 entries
	val := "0123456789"
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), val)
	}
	for i := 0; i < 10; i++ { // promote all ten; only 8 fit protected
		c.Get(fmt.Sprintf("k%d", i))
	}
	if got := c.Len(); got != 10 {
		t.Fatalf("len after promotions = %d, want 10 (demotion must not evict)", got)
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("evictions = %d, want 0", ev)
	}
}

// TestOversizedRejected: a value larger than the per-shard budget is
// refused (Put reports not-consumed) and any stale entry under the key is
// dropped rather than left to serve old data.
func TestOversizedRejected(t *testing.T) {
	c := New[string](64, 1, strBytes)
	if !c.Put("k", "small") {
		t.Fatal("small value rejected")
	}
	big := make([]byte, 100)
	if c.Put("k", string(big)) {
		t.Fatal("oversized value accepted")
	}
	if _, ok := c.Peek("k"); ok {
		t.Fatal("stale entry survived an oversized overwrite")
	}
}

// TestDisabledSemantics: budget ≤ 0 disables storage but still counts
// misses — the "Taste w/o caching" ablation needs the traffic ledger.
func TestDisabledSemantics(t *testing.T) {
	c := New[string](0, 4, strBytes)
	if c.Enabled() {
		t.Fatal("zero-budget cache reports enabled")
	}
	if c.Put("k", "v") {
		t.Fatal("disabled cache consumed a value")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("disabled stats = %+v", st)
	}
}

// TestUpdateInPlace: re-Put under a live key replaces the value and
// re-accounts bytes without duplicating the entry.
func TestUpdateInPlace(t *testing.T) {
	c := New[string](1<<10, 1, strBytes)
	c.Put("k", "short")
	c.Put("k", "a considerably longer value")
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if got, _ := c.Get("k"); got != "a considerably longer value" {
		t.Fatalf("got %q", got)
	}
	if b := c.Bytes(); b != int64(len("a considerably longer value")) {
		t.Fatalf("bytes = %d", b)
	}
}

// TestPeekAndTouchCounters: Peek must not move the hit/miss counters;
// Touch counts a skipped copy and refreshes recency.
func TestPeekAndTouchCounters(t *testing.T) {
	c := New[string](1<<10, 1, strBytes)
	c.Put("k", "v")
	c.Peek("k")
	c.Peek("absent")
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("peek moved counters: %+v", st)
	}
	if !c.Touch("k") {
		t.Fatal("touch on live key failed")
	}
	if c.Touch("absent") {
		t.Fatal("touch on absent key succeeded")
	}
	if st := c.Stats(); st.SkippedCopies != 1 {
		t.Fatalf("skipped copies = %d, want 1", st.SkippedCopies)
	}
}

func TestDelete(t *testing.T) {
	c := New[string](1<<10, 2, strBytes)
	c.Put("k", "v")
	c.Delete("k")
	if _, ok := c.Get("k"); ok {
		t.Fatal("deleted key still present")
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("delete counted as eviction: %d", ev)
	}
	c.Delete("absent") // no-op, must not panic
}

// TestConcurrentHammer drives Put/Get/Touch/Delete/Stats from many
// goroutines over a small keyspace (run under -race). Afterwards every
// shard's accounted bytes must equal the sum of its live entries and stay
// within budget.
func TestConcurrentHammer(t *testing.T) {
	const budget = 4 << 10
	c := New[string](budget, 8, strBytes)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			val := string(make([]byte, 64))
			for i := 0; i < 3000; i++ {
				key := fmt.Sprintf("k%03d", rng.Intn(200))
				switch rng.Intn(10) {
				case 0:
					c.Delete(key)
				case 1:
					c.Touch(key)
				case 2, 3, 4:
					c.Put(key, val)
				case 5:
					c.Stats()
				default:
					c.Get(key)
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	for i, sh := range c.shards {
		sh.mu.Lock()
		var sum, prot int64
		for _, el := range sh.items {
			e := el.Value.(*entry[string])
			sum += e.size
			if e.protected {
				prot += e.size
			}
		}
		if sum != sh.bytes || prot != sh.protBytes {
			t.Fatalf("shard %d: accounted bytes %d/%d, live %d/%d", i, sh.bytes, sh.protBytes, sum, prot)
		}
		if sh.bytes > sh.budget {
			t.Fatalf("shard %d over budget: %d > %d", i, sh.bytes, sh.budget)
		}
		if sh.probation.Len()+sh.protected.Len() != len(sh.items) {
			t.Fatalf("shard %d: list/map divergence", i)
		}
		sh.mu.Unlock()
	}
}
