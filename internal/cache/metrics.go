package cache

import (
	"time"

	"repro/internal/obs"
)

// Metric names exported by the cache subsystem. Counters carry a `tier`
// label ("latent" or "result"); the coalesced counter is tier-less because
// singleflight sits above both tiers at the request boundary.
const (
	MetricHits      = "taste_cache_hits_total"
	MetricMisses    = "taste_cache_misses_total"
	MetricEvictions = "taste_cache_evictions_total"
	MetricCoalesced = "taste_cache_coalesced_total"
	MetricHitSecs   = "taste_cache_hit_seconds"
)

// HitLatencyBuckets is the bucket layout for the hit-path latency
// histogram. The shared obs.LatencyBuckets floor of 10 µs would put every
// cache hit in its first bucket, so this layout starts at 100 ns and
// quadruples: 100ns … ~107ms over 16 buckets.
func HitLatencyBuckets() []float64 { return obs.ExpBuckets(100e-9, 4, 16) }

// TierMetrics bundles the obs handles one cache tier bumps on its hot path.
// Handles are resolved once at construction so recording is a single atomic
// add, never a registry lookup.
type TierMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	hitSecs   *obs.Histogram
}

// NewTierMetrics registers (or re-resolves) the cache series for one tier
// on r.
func NewTierMetrics(r *obs.Registry, tier string) *TierMetrics {
	return &TierMetrics{
		hits:      r.Counter(MetricHits, "tier", tier),
		misses:    r.Counter(MetricMisses, "tier", tier),
		evictions: r.Counter(MetricEvictions, "tier", tier),
		hitSecs:   r.Histogram(MetricHitSecs, HitLatencyBuckets(), "tier", tier),
	}
}

func (m *TierMetrics) hit()   { m.hits.Inc() }
func (m *TierMetrics) miss()  { m.misses.Inc() }
func (m *TierMetrics) evict() { m.evictions.Inc() }

// observeHit records one hit-path lookup duration.
func (m *TierMetrics) observeHit(d time.Duration) { m.hitSecs.ObserveDuration(d) }
