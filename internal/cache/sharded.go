// Package cache is the tiered detection-cache subsystem (DESIGN.md §14):
// a sharded, byte-budgeted, segmented-LRU store parameterized over its value
// type, plus the two concrete tiers built on it — the latent cache holding
// metadata-tower encodings (§4.2.2's amortization trick) and the result
// cache memoizing content-hashed detect outcomes — and a stdlib singleflight
// group that coalesces concurrent identical computations.
//
// Design points, in the order they matter under fleet load:
//
//   - Sharding. Keys hash (FNV-1a 64) onto a power-of-two shard array, each
//     shard with its own mutex, so concurrent pipelined requests do not
//     serialize on one cache lock the way the seed LRU did.
//   - Byte budgets. Eviction is driven by accounted bytes (sized from the
//     stored value's real dimensions), not entry counts: a cache of wide
//     table chunks and a cache of two-column chunks hold the same memory,
//     not the same entry count. A budget ≤ 0 disables a tier entirely — the
//     "Taste w/o caching" ablation — while still counting misses.
//   - Segmented LRU. Each shard splits its budget into a probation and a
//     protected segment. New keys enter probation; only a re-access
//     promotes. One cold scan over a large database can therefore evict at
//     most the probation segment — the protected working set survives.
//   - Immutable entries. Values handed to Put are owned by the cache and
//     must never be mutated afterwards; Get returns the shared value with
//     zero copying. The MetaEncoding tier layers a copy-on-write handoff
//     contract on top (see latent.go).
package cache

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of one tier's counters, shaped for the
// /v1/stats JSON surface.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// SkippedCopies counts Puts that found the key already holding an equal
	// value and refreshed recency instead of storing (latent tier only).
	SkippedCopies int64 `json:"skipped_copies,omitempty"`
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`
}

// DefaultShards is the shard count used when New is given shards ≤ 0: small
// enough that per-shard budgets stay meaningful at modest total budgets,
// large enough that the pipelined pools rarely contend on one mutex.
const DefaultShards = 16

// protectedFraction is the slice of each shard's budget reserved for the
// protected SLRU segment; the remainder is probation.
const protectedFraction = 0.8

type entry[V any] struct {
	key       string
	val       V
	size      int64
	protected bool
}

type shard[V any] struct {
	mu        sync.Mutex
	budget    int64
	protCap   int64
	items     map[string]*list.Element
	probation *list.List // front = MRU
	protected *list.List // front = MRU
	bytes     int64
	protBytes int64

	hits, misses, evictions, skipped int64
}

// Sharded is a concurrency-safe, byte-budgeted, segmented-LRU cache split
// across power-of-two hash shards. The zero value is not usable; use New.
type Sharded[V any] struct {
	shards  []*shard[V]
	mask    uint64
	budget  int64
	sizeOf  func(V) int64
	metrics *TierMetrics
}

// New creates a cache bounded by budgetBytes split evenly across shards
// (rounded up to a power of two; ≤ 0 selects DefaultShards). sizeOf accounts
// one value's bytes and must be cheap and stable for a given value.
// budgetBytes ≤ 0 disables storage: Put rejects everything and Get counts a
// miss, preserving the seed cache's "capacity 0 disables" semantics.
func New[V any](budgetBytes int64, shards int, sizeOf func(V) int64) *Sharded[V] {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if budgetBytes < 0 {
		budgetBytes = 0
	}
	per := budgetBytes / int64(n)
	s := &Sharded[V]{
		shards: make([]*shard[V], n),
		mask:   uint64(n - 1),
		budget: budgetBytes,
		sizeOf: sizeOf,
	}
	for i := range s.shards {
		s.shards[i] = &shard[V]{
			budget:    per,
			protCap:   int64(protectedFraction * float64(per)),
			items:     make(map[string]*list.Element),
			probation: list.New(),
			protected: list.New(),
		}
	}
	return s
}

// SetMetrics attaches obs counter handles bumped on every hit, miss and
// eviction (nil detaches). Call before the cache sees traffic.
func (s *Sharded[V]) SetMetrics(m *TierMetrics) { s.metrics = m }

// Enabled reports whether the cache can store anything at all.
func (s *Sharded[V]) Enabled() bool { return s.budget > 0 }

// NumShards returns the (power-of-two) shard count.
func (s *Sharded[V]) NumShards() int { return len(s.shards) }

// fnv1a64 is hash/fnv inlined for the hot path: no allocation, no
// interface dispatch.
func fnv1a64(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

func (s *Sharded[V]) shardFor(key string) *shard[V] {
	return s.shards[fnv1a64(key)&s.mask]
}

// Get returns the cached value and refreshes its recency: a probation hit
// promotes the entry into the protected segment (demoting protected-LRU
// entries back to probation when the segment overflows), a protected hit
// moves it to that segment's MRU position.
func (s *Sharded[V]) Get(key string) (V, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	el, ok := sh.items[key]
	if !ok {
		sh.misses++
		sh.mu.Unlock()
		if s.metrics != nil {
			s.metrics.miss()
		}
		var zero V
		return zero, false
	}
	sh.hits++
	e := el.Value.(*entry[V])
	sh.bump(key, el, e)
	v := e.val
	sh.mu.Unlock()
	if s.metrics != nil {
		s.metrics.hit()
	}
	return v, true
}

// bump applies the SLRU access rule to an entry already under the shard
// lock: promote from probation, or refresh within protected.
func (sh *shard[V]) bump(key string, el *list.Element, e *entry[V]) {
	if e.protected {
		sh.protected.MoveToFront(el)
		return
	}
	sh.probation.Remove(el)
	e.protected = true
	sh.items[key] = sh.protected.PushFront(e)
	sh.protBytes += e.size
	// Demote protected-LRU entries (never the one just promoted) until the
	// segment fits its cap again; demotion moves bytes, it never evicts.
	for sh.protBytes > sh.protCap && sh.protected.Len() > 1 {
		back := sh.protected.Back()
		de := back.Value.(*entry[V])
		sh.protected.Remove(back)
		de.protected = false
		sh.items[de.key] = sh.probation.PushFront(de)
		sh.protBytes -= de.size
	}
}

// Peek returns the cached value without touching recency or the hit/miss
// counters — the equality-skip probe of the latent tier.
func (s *Sharded[V]) Peek(key string) (V, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Touch refreshes a key's recency (with SLRU promotion) and counts a
// skipped copy — the bookkeeping for an equal re-Put.
func (s *Sharded[V]) Touch(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		return false
	}
	sh.skipped++
	sh.bump(key, el, el.Value.(*entry[V]))
	return true
}

// Put stores val under key, taking ownership of it (callers must not mutate
// val afterwards). Returns false — val NOT consumed — when the cache is
// disabled or the value alone exceeds the per-shard budget; an existing
// entry under the key is dropped in that case rather than kept stale.
func (s *Sharded[V]) Put(key string, val V) bool {
	size := s.sizeOf(val)
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if size > sh.budget {
		if el, ok := sh.items[key]; ok {
			sh.remove(el.Value.(*entry[V]), el)
			sh.evictions++
			if s.metrics != nil {
				s.metrics.evict()
			}
		}
		return false
	}
	if el, ok := sh.items[key]; ok {
		e := el.Value.(*entry[V])
		sh.bytes += size - e.size
		if e.protected {
			sh.protBytes += size - e.size
			sh.protected.MoveToFront(el)
		} else {
			sh.probation.MoveToFront(el)
		}
		e.val, e.size = val, size
	} else {
		e := &entry[V]{key: key, val: val, size: size}
		sh.items[key] = sh.probation.PushFront(e)
		sh.bytes += size
	}
	sh.evictLocked(s.metrics)
	return true
}

// evictLocked trims the shard back under its byte budget: probation-LRU
// first (scan resistance), protected-LRU only once probation is empty.
func (sh *shard[V]) evictLocked(m *TierMetrics) {
	for sh.bytes > sh.budget {
		back := sh.probation.Back()
		if back == nil {
			back = sh.protected.Back()
		}
		if back == nil {
			return
		}
		sh.remove(back.Value.(*entry[V]), back)
		sh.evictions++
		if m != nil {
			m.evict()
		}
	}
}

// remove unlinks an entry under the shard lock.
func (sh *shard[V]) remove(e *entry[V], el *list.Element) {
	if e.protected {
		sh.protected.Remove(el)
		sh.protBytes -= e.size
	} else {
		sh.probation.Remove(el)
	}
	delete(sh.items, e.key)
	sh.bytes -= e.size
}

// Delete evicts one key (not counted as an eviction — the caller asked).
func (s *Sharded[V]) Delete(key string) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		sh.remove(el.Value.(*entry[V]), el)
	}
}

// Len returns the entry count across all shards.
func (s *Sharded[V]) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the accounted bytes across all shards.
func (s *Sharded[V]) Bytes() int64 {
	var b int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		b += sh.bytes
		sh.mu.Unlock()
	}
	return b
}

// Stats sums the per-shard counters into one snapshot.
func (s *Sharded[V]) Stats() Stats {
	st := Stats{BudgetBytes: s.budget}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Evictions += sh.evictions
		st.SkippedCopies += sh.skipped
		st.Entries += len(sh.items)
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}
