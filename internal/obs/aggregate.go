// Exposition aggregation: merge several Prometheus text scrapes into one.
// The fleet coordinator uses this to serve a fleet-wide /metrics that is
// the element-wise sum of its replicas' scrapes — counters and histogram
// buckets add up to fleet totals, and gauges add up to fleet-wide sizes
// (cache entries, queue depths). Reuses the same line parser as CheckText.
package obs

import (
	"fmt"
	"sort"
	"strings"
)

// mergedSample is one output series while merging.
type mergedSample struct {
	name   string // full sample name (with _bucket/_sum/_count suffix)
	ident  string // canonical label identity, le included
	labels map[string]string
	value  float64
	order  int // first-seen order, for stable output grouped by metric
}

// MergeText sums any number of Prometheus text expositions into one:
// samples with the same name and label set are added together; TYPE headers
// are preserved and must agree across inputs. Series that appear in only
// some inputs pass through (a replica that never exercised a code path
// simply contributes zero). The output is valid exposition text — in
// particular, summing preserves the cumulativity of histogram buckets — and
// is ordered by metric name, then by label identity.
func MergeText(texts ...string) (string, error) {
	types := make(map[string]string)
	var typeOrder []string
	samples := make(map[string]*mergedSample) // name+ident → accumulated
	order := 0

	for ti, text := range texts {
		for ln, line := range strings.Split(text, "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "# HELP") {
				continue
			}
			if strings.HasPrefix(line, "# TYPE ") {
				fields := strings.Fields(line)
				if len(fields) != 4 {
					return "", fmt.Errorf("obs: input %d line %d: malformed TYPE line %q", ti, ln+1, line)
				}
				if prev, ok := types[fields[2]]; ok {
					if prev != fields[3] {
						return "", fmt.Errorf("obs: metric %s typed %s by one input and %s by another", fields[2], prev, fields[3])
					}
				} else {
					types[fields[2]] = fields[3]
					typeOrder = append(typeOrder, fields[2])
				}
				continue
			}
			if strings.HasPrefix(line, "#") {
				continue
			}
			name, labels, value, err := parseSample(line)
			if err != nil {
				return "", fmt.Errorf("obs: input %d line %d: %v", ti, ln+1, err)
			}
			ident := labelIdentity(labels)
			key := name + "|" + ident
			if s, ok := samples[key]; ok {
				s.value += value
			} else {
				samples[key] = &mergedSample{name: name, ident: ident, labels: labels, value: value, order: order}
				order++
			}
		}
	}

	// Group output by base metric in first-seen TYPE order, samples within a
	// metric in first-seen order (which preserves each histogram's ascending
	// `le` sequence from the inputs).
	byBase := make(map[string][]*mergedSample)
	for _, s := range samples {
		base, _ := histBase(s.name, types)
		byBase[base] = append(byBase[base], s)
	}
	var b strings.Builder
	for _, base := range typeOrder {
		group := byBase[base]
		sort.Slice(group, func(i, j int) bool { return group[i].order < group[j].order })
		fmt.Fprintf(&b, "# TYPE %s %s\n", base, types[base])
		for _, s := range group {
			b.WriteString(renderSample(s))
		}
		delete(byBase, base)
	}
	// Samples whose metric never had a TYPE header (inputs are not required
	// to be strictly valid): emit them untyped at the end, sorted.
	var rest []string
	for base := range byBase {
		rest = append(rest, base)
	}
	sort.Strings(rest)
	for _, base := range rest {
		group := byBase[base]
		sort.Slice(group, func(i, j int) bool { return group[i].order < group[j].order })
		for _, s := range group {
			b.WriteString(renderSample(s))
		}
	}
	return b.String(), nil
}

func renderSample(s *mergedSample) string {
	var b strings.Builder
	b.WriteString(s.name)
	if len(s.labels) > 0 {
		keys := make([]string, 0, len(s.labels))
		for k := range s.labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", k, s.labels[k])
		}
		b.WriteByte('}')
	}
	// Counters and bucket counts are integral; render them without a
	// mantissa so merged output matches WritePrometheus's integer style.
	if s.value == float64(int64(s.value)) {
		fmt.Fprintf(&b, " %d\n", int64(s.value))
	} else {
		fmt.Fprintf(&b, " %s\n", formatFloat(s.value))
	}
	return b.String()
}
