// Request-scoped trace spans. A root span is opened explicitly per request
// (NewTrace); instrumentation sites then call StartSpan, which is a no-op
// returning a nil span unless the context already carries a trace — so the
// hot path pays nothing when the caller did not ask for a trace. Spans form
// a parent/child tree threaded through context.Context, safe for the
// pipelined scheduler's concurrent stage execution, and export as a JSON
// tree (SpanNode) for the /v1/detect `trace` field.
package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one timed node in a request's trace tree. All methods are safe on
// a nil receiver, so instrumentation never needs to branch on whether
// tracing is active.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	children []*Span
}

type spanCtxKey struct{}

// NewTrace opens a root span and returns a context carrying it. The caller
// owns the root: End it and export with Node.
func NewTrace(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now()}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// StartSpan opens a child span under the context's current span. When the
// context carries no trace it returns (ctx, nil): recording is free unless
// the request opted in via NewTrace.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanCtxKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	s := &Span{name: name, start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, s)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// FromContext returns the context's current span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// End closes the span. The first call wins; End on a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's elapsed time (to now if still open; 0 on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		end = time.Now()
	}
	return end.Sub(s.start)
}

// SpanNode is the JSON export of a span tree. Times are microseconds;
// StartMicros is the offset from the root span's start, so a renderer can
// draw a waterfall without absolute clocks.
type SpanNode struct {
	Name           string     `json:"name"`
	StartMicros    int64      `json:"start_us"`
	DurationMicros int64      `json:"duration_us"`
	Children       []SpanNode `json:"children,omitempty"`
}

// Node exports the span tree rooted at s, offsets relative to s's start.
// Children are sorted by start offset. Nil-safe (returns a zero node).
func (s *Span) Node() SpanNode {
	if s == nil {
		return SpanNode{}
	}
	return s.node(s.start)
}

func (s *Span) node(base time.Time) SpanNode {
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	n := SpanNode{
		Name:           s.name,
		StartMicros:    s.start.Sub(base).Microseconds(),
		DurationMicros: s.Duration().Microseconds(),
	}
	for _, c := range children {
		n.Children = append(n.Children, c.node(base))
	}
	// The pipelined scheduler finishes stages out of submission order;
	// sort so the exported waterfall reads chronologically.
	sortNodes(n.Children)
	return n
}

func sortNodes(ns []SpanNode) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].StartMicros < ns[j-1].StartMicros; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

// Walk visits every node of the tree depth-first (root first).
func (n SpanNode) Walk(visit func(SpanNode)) {
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}
