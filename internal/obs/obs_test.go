package obs

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "k", "v")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x_total", "k", "v") != c {
		t.Fatal("same name+labels must return the same counter")
	}
	if r.Counter("x_total", "k", "w") == c {
		t.Fatal("different labels must return a different counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("y_total", "b", "2", "a", "1")
	b := r.Counter("y_total", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order must not create distinct series")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	bounds, cum := h.Snapshot()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("snapshot shape %d/%d", len(bounds), len(cum))
	}
	want := []int64{2, 3, 4, 5} // cumulative: ≤1, ≤2, ≤4, +Inf
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, cum[i], w)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-106) > 1e-9 {
		t.Fatalf("sum = %v, want 106", got)
	}
}

func TestBucketLayouts(t *testing.T) {
	lat := LatencyBuckets()
	if len(lat) != 24 || lat[0] != 10e-6 {
		t.Fatalf("latency layout %v", lat[:2])
	}
	for i := 1; i < len(lat); i++ {
		if lat[i] <= lat[i-1] {
			t.Fatal("bounds must ascend")
		}
	}
	rat := RatioBuckets()
	if len(rat) != 20 || math.Abs(rat[19]-1.0) > 1e-9 {
		t.Fatalf("ratio layout ends at %v", rat[19])
	}
}

// TestWritePrometheus asserts the exposition invariants a scraper relies
// on: one TYPE line per metric, cumulative non-decreasing buckets, and
// count == +Inf bucket.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "outcome", "ok").Add(3)
	r.Gauge("size").Set(9)
	h := r.Histogram("lat_seconds", []float64{0.001, 0.01}, "stage", "s1")
	h.Observe(0.0005)
	h.Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{outcome="ok"} 3`,
		"# TYPE size gauge",
		"size 9",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{stage="s1",le="0.001"} 1`,
		`lat_seconds_bucket{stage="s1",le="+Inf"} 2`,
		`lat_seconds_count{stage="s1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	assertParses(t, out)
}

func assertParses(t *testing.T, text string) {
	t.Helper()
	if err := CheckText(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	synced := false
	h := Handler(r, func() { synced = true })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !synced {
		t.Fatal("sync hook did not run")
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "a_total 1") {
		t.Fatalf("body %q", rec.Body.String())
	}
}

func TestDebugMuxServesPprof(t *testing.T) {
	mux := DebugMux(NewRegistry(), nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index: %d %q", rec.Code, rec.Body.String()[:min(80, rec.Body.Len())])
	}
}

// TestRegistryConcurrentScrapeRecord is the race-mode regression: writers
// hammer counters/gauges/histograms (including lazy creation) while readers
// scrape, and every scrape must stay internally consistent.
func TestRegistryConcurrentScrapeRecord(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("c_total", "w", strconv.Itoa(w)).Inc()
				r.Gauge("g", "w", strconv.Itoa(w)).Set(int64(i))
				r.Histogram("h_seconds", LatencyBuckets(), "w", strconv.Itoa(w)).Observe(float64(i%10) / 1e4)
			}
		}(w)
	}
	deadline := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(deadline) {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		assertParses(t, b.String())
	}
	close(stop)
	wg.Wait()

	// Monotonicity across scrapes: a second scrape must never show smaller
	// counters than a first.
	before := r.Counter("c_total", "w", "0").Value()
	r.Counter("c_total", "w", "0").Inc()
	if after := r.Counter("c_total", "w", "0").Value(); after <= before {
		t.Fatalf("counter went %d -> %d", before, after)
	}
}

func TestMixedTypePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two types must panic")
		}
	}()
	r.Gauge("dual")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	r.Counter("taste_detect_requests_total", "outcome", "ok").Add(2)
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	fmt.Print(b.String())
	// Output:
	// # TYPE taste_detect_requests_total counter
	// taste_detect_requests_total{outcome="ok"} 2
}
