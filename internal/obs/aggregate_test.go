package obs

import (
	"strings"
	"testing"
)

// registryText renders a registry to exposition text.
func registryText(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestMergeTextSumsAcrossInputs(t *testing.T) {
	mk := func(requests, degraded int64, latencies []float64, cacheSize int64) string {
		r := NewRegistry()
		r.Counter("taste_detect_requests_total", "outcome", "ok").Add(requests)
		r.Counter("taste_detect_requests_total", "outcome", "degraded").Add(degraded)
		h := r.Histogram("taste_detect_request_seconds", LatencyBuckets())
		for _, v := range latencies {
			h.Observe(v)
		}
		r.Gauge("taste_cache_size").Set(cacheSize)
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	merged, err := MergeText(
		mk(10, 2, []float64{0.001, 0.002}, 100),
		mk(5, 0, []float64{0.004}, 40),
		mk(1, 3, nil, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	// The merged exposition must itself be valid (cumulative buckets,
	// matching _count, typed samples).
	if err := CheckText(merged); err != nil {
		t.Fatalf("merged text invalid: %v\n%s", err, merged)
	}
	for _, want := range []string{
		`taste_detect_requests_total{outcome="ok"} 16`,
		`taste_detect_requests_total{outcome="degraded"} 5`,
		`taste_detect_request_seconds_count 3`,
		`taste_cache_size 142`,
	} {
		if !strings.Contains(merged, want) {
			t.Fatalf("merged text missing %q:\n%s", want, merged)
		}
	}
}

func TestMergeTextDisjointSeriesPassThrough(t *testing.T) {
	a := NewRegistry()
	a.Counter("taste_only_in_a_total").Add(7)
	b := NewRegistry()
	b.Counter("taste_only_in_b_total").Add(9)
	merged, err := MergeText(registryText(t, a), registryText(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(merged, "taste_only_in_a_total 7") || !strings.Contains(merged, "taste_only_in_b_total 9") {
		t.Fatalf("disjoint series lost:\n%s", merged)
	}
	if err := CheckText(merged); err != nil {
		t.Fatal(err)
	}
}

func TestMergeTextTypeConflict(t *testing.T) {
	a := NewRegistry()
	a.Counter("taste_conflicted").Inc()
	b := NewRegistry()
	b.Gauge("taste_conflicted").Set(1)
	if _, err := MergeText(registryText(t, a), registryText(t, b)); err == nil {
		t.Fatal("conflicting TYPE headers must be rejected")
	}
}

func TestMergeTextMalformedInput(t *testing.T) {
	if _, err := MergeText("taste_x{oops 1\n"); err == nil {
		t.Fatal("malformed sample must be rejected")
	}
}

func TestMergeTextIdempotentOnSingleInput(t *testing.T) {
	r := NewRegistry()
	r.Counter("taste_a_total", "k", "v").Add(3)
	h := r.Histogram("taste_b_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	text := registryText(t, r)
	merged, err := MergeText(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckText(merged); err != nil {
		t.Fatalf("single-input merge invalid: %v\n%s", err, merged)
	}
	for _, want := range []string{
		`taste_a_total{k="v"} 3`,
		`taste_b_seconds_bucket{le="+Inf"} 2`,
		`taste_b_seconds_count 2`,
	} {
		if !strings.Contains(merged, want) {
			t.Fatalf("missing %q:\n%s", want, merged)
		}
	}
}
