// Package obs is the runtime observability layer: an atomic
// counter/gauge/histogram registry with Prometheus text exposition, and
// request-scoped trace spans threaded through context.Context. It is built
// on the standard library only and is safe for concurrent use on every
// path — instrumentation sites record with single atomic operations, and
// scrapes never block recorders.
//
// Metric naming follows the Prometheus conventions: every series is
// `taste_<subsystem>_<what>[_<unit>][_total]` with labels for bounded
// dimensions (stage, kind, op, outcome). Latency histograms share one fixed
// log-scale bucket layout (LatencyBuckets: 10 µs doubling to ~84 s) so
// per-stage, per-op, and per-request distributions are directly comparable;
// ratio histograms use a linear 0..1 layout (RatioBuckets). See DESIGN.md §9
// for the full series inventory.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 is ignored: counters never go down).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depths, cache sizes,
// counters mirrored from an external ledger at scrape time).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Buckets are defined by
// their upper bounds (ascending); one implicit +Inf bucket catches the tail.
// Observations and scrapes are lock-free.
type Histogram struct {
	bounds  []float64      // upper bounds, ascending; implicit +Inf appended
	counts  []atomic.Int64 // len(bounds)+1
	sumBits atomic.Uint64  // float64 bits of the running sum
	count   atomic.Int64
}

// LatencyBuckets is the shared log-scale layout for every duration
// histogram: 24 buckets from 10 µs doubling to ~83.9 s. One layout across
// all subsystems keeps per-stage and per-op distributions comparable.
func LatencyBuckets() []float64 { return ExpBuckets(10e-6, 2, 24) }

// RatioBuckets is the linear 0..1 layout used for the scanned-column ratio
// and other fraction-valued histograms (20 buckets of width 0.05).
func RatioBuckets() []float64 { return LinearBuckets(0.05, 0.05, 20) }

// ExpBuckets returns n upper bounds starting at start, multiplying by
// factor: the standard log-scale latency layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds starting at start with the given
// step.
func LinearBuckets(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(h.bounds)+1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ 25) and the scan is branch-
	// predictable; a binary search buys nothing at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns the cumulative bucket counts (one per bound plus +Inf).
// Taken bucket-by-bucket without a lock, so concurrent observations may make
// the snapshot internally torn by a few counts — fine for monitoring.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []int64) {
	bounds = h.bounds
	cumulative = make([]int64, len(h.counts))
	running := int64(0)
	for i := range h.counts {
		running += h.counts[i].Load()
		cumulative[i] = running
	}
	return bounds, cumulative
}

// series identifies one labeled time series.
type series struct {
	name   string
	labels [][2]string
}

// key renders the canonical identity (labels sorted by key).
func (s series) key() string {
	if len(s.labels) == 0 {
		return s.name
	}
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('{')
	for i, kv := range s.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[0], kv[1])
	}
	b.WriteByte('}')
	return b.String()
}

// renderSuffixed writes the series with the metric name suffixed (the
// histogram `_bucket`/`_sum`/`_count` sub-series) and optional extra labels
// appended (the `le` bound).
func (s series) renderSuffixed(suffix string, extra ...[2]string) string {
	all := series{name: s.name + suffix, labels: append(append([][2]string(nil), s.labels...), extra...)}
	return all.key()
}

func makeSeries(name string, labels []string) series {
	if len(labels)%2 != 0 {
		panic("obs: labels must be key,value pairs")
	}
	s := series{name: name}
	for i := 0; i+1 < len(labels); i += 2 {
		s.labels = append(s.labels, [2]string{labels[i], labels[i+1]})
	}
	sort.Slice(s.labels, func(i, j int) bool { return s.labels[i][0] < s.labels[j][0] })
	return s
}

// Registry holds named metrics. Lookups lazily create the metric, so
// instrumentation sites can grab handles at package init without a central
// registration ceremony. The zero value is not usable; use NewRegistry.
type Registry struct {
	mu        sync.RWMutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	seriesOf  map[string]series // key → parsed identity, for exposition
	typeOf    map[string]string // base name → "counter"|"gauge"|"histogram"
	histOrder []string          // insertion order for stable output
	ctrOrder  []string
	gaugeOrd  []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		seriesOf: make(map[string]series),
		typeOf:   make(map[string]string),
	}
}

// Default is the process-wide registry every instrumentation site records
// to, mirroring Prometheus's default registerer. Tests that assert exact
// values should use their own NewRegistry.
var Default = NewRegistry()

func (r *Registry) noteType(name, typ string) {
	if have, ok := r.typeOf[name]; ok {
		if have != typ {
			panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, have, typ))
		}
		return
	}
	r.typeOf[name] = typ
}

// Counter returns (creating on first use) the counter for name and labels.
// Labels are alternating key, value strings.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	s := makeSeries(name, labels)
	k := s.key()
	r.mu.RLock()
	c, ok := r.counters[k]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[k]; ok {
		return c
	}
	r.noteType(name, "counter")
	c = &Counter{}
	r.counters[k] = c
	r.seriesOf[k] = s
	r.ctrOrder = append(r.ctrOrder, k)
	return c
}

// Gauge returns (creating on first use) the gauge for name and labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	s := makeSeries(name, labels)
	k := s.key()
	r.mu.RLock()
	g, ok := r.gauges[k]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[k]; ok {
		return g
	}
	r.noteType(name, "gauge")
	g = &Gauge{}
	r.gauges[k] = g
	r.seriesOf[k] = s
	r.gaugeOrd = append(r.gaugeOrd, k)
	return g
}

// Histogram returns (creating on first use) the histogram for name and
// labels, with the given bucket upper bounds. Bounds are fixed at creation;
// later calls with different bounds return the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	s := makeSeries(name, labels)
	k := s.key()
	r.mu.RLock()
	h, ok := r.hists[k]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[k]; ok {
		return h
	}
	r.noteType(name, "histogram")
	h = newHistogram(bounds)
	r.hists[k] = h
	r.seriesOf[k] = s
	r.histOrder = append(r.histOrder, k)
	return h
}

// LatencyHistogram is Histogram with the shared log-scale latency layout.
func (r *Registry) LatencyHistogram(name string, labels ...string) *Histogram {
	return r.Histogram(name, LatencyBuckets(), labels...)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): `# TYPE` headers per metric name, counter and
// gauge samples, and histograms expanded into cumulative `_bucket` series
// plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	ctrKeys := append([]string(nil), r.ctrOrder...)
	gaugeKeys := append([]string(nil), r.gaugeOrd...)
	histKeys := append([]string(nil), r.histOrder...)
	counters := make(map[string]*Counter, len(ctrKeys))
	gauges := make(map[string]*Gauge, len(gaugeKeys))
	hists := make(map[string]*Histogram, len(histKeys))
	ids := make(map[string]series, len(r.seriesOf))
	for k, v := range r.counters {
		counters[k] = v
	}
	for k, v := range r.gauges {
		gauges[k] = v
	}
	for k, v := range r.hists {
		hists[k] = v
	}
	for k, v := range r.seriesOf {
		ids[k] = v
	}
	r.mu.RUnlock()

	sort.Strings(ctrKeys)
	sort.Strings(gaugeKeys)
	sort.Strings(histKeys)
	typed := make(map[string]bool)
	header := func(name, typ string) string {
		if typed[name] {
			return ""
		}
		typed[name] = true
		return fmt.Sprintf("# TYPE %s %s\n", name, typ)
	}

	var b strings.Builder
	for _, k := range ctrKeys {
		s := ids[k]
		b.WriteString(header(s.name, "counter"))
		fmt.Fprintf(&b, "%s %d\n", k, counters[k].Value())
	}
	for _, k := range gaugeKeys {
		s := ids[k]
		b.WriteString(header(s.name, "gauge"))
		fmt.Fprintf(&b, "%s %d\n", k, gauges[k].Value())
	}
	for _, k := range histKeys {
		s := ids[k]
		h := hists[k]
		b.WriteString(header(s.name, "histogram"))
		bounds, cum := h.Snapshot()
		for i, bound := range bounds {
			fmt.Fprintf(&b, "%s %d\n", s.renderSuffixed("_bucket", [2]string{"le", formatFloat(bound)}), cum[i])
		}
		fmt.Fprintf(&b, "%s %d\n", s.renderSuffixed("_bucket", [2]string{"le", "+Inf"}), cum[len(cum)-1])
		fmt.Fprintf(&b, "%s %s\n", s.renderSuffixed("_sum"), formatFloat(h.Sum()))
		// _count comes from the same snapshot as the buckets, not from
		// h.Count(): a separate read would let concurrent observations land
		// between the two and publish a _count that disagrees with the +Inf
		// bucket — an exposition CheckText itself rejects.
		fmt.Fprintf(&b, "%s %d\n", s.renderSuffixed("_count"), cum[len(cum)-1])
	}
	_, err := io.WriteString(w, b.String())
	return err
}
