// HTTP exposition: the Prometheus /metrics handler and a debug mux bundling
// it with net/http/pprof — what `tasted -debug-addr` serves.
package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text format. sync, when
// non-nil, runs before each scrape — the hook services use to mirror
// externally-owned ledgers (cache stats, batcher stats) into gauges.
func Handler(r *Registry, sync func()) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if sync != nil {
			sync()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// DebugMux returns a mux with the registry's /metrics plus the standard
// net/http/pprof endpoints under /debug/pprof/ — CPU and heap profiles,
// goroutine dumps, and execution traces for a running tasted.
func DebugMux(r *Registry, sync func()) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r, sync))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
