// CheckText: a minimal Prometheus text-format validator. It exists so the
// repo's tests (obs race tests, the service /metrics test, the CI smoke
// script via `tastebench`-less curl|grep) can assert a scrape is well formed
// without importing a Prometheus client library.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CheckText validates a Prometheus text exposition: every line is a TYPE
// header or a `series value` sample, every sample's metric name carries a
// TYPE, histogram buckets are cumulative (non-decreasing in `le` order),
// and each histogram's +Inf bucket equals its _count. Returns the first
// violation found, nil when the text is well formed.
func CheckText(text string) error {
	types := make(map[string]string)
	// bucketRows[base][labelIdentity] collects (le, value) pairs;
	// counts[base][labelIdentity] and sums hold _count/_sum samples.
	bucketRows := make(map[string]map[string][][2]float64)
	counts := make(map[string]map[string]float64)
	sums := make(map[string]map[string]bool)

	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "# HELP") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("line %d: malformed TYPE line %q", ln+1, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", ln+1, fields[3])
			}
			if prev, ok := types[fields[2]]; ok && prev != fields[3] {
				return fmt.Errorf("line %d: metric %s re-typed %s -> %s", ln+1, fields[2], prev, fields[3])
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", ln+1, err)
		}
		base, sub := histBase(name, types)
		if typ, ok := types[base]; !ok {
			return fmt.Errorf("line %d: sample %s has no TYPE header", ln+1, name)
		} else if typ == "counter" && value < 0 {
			return fmt.Errorf("line %d: counter %s is negative (%v)", ln+1, name, value)
		}
		switch sub {
		case "bucket":
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: bucket sample without le label", ln+1)
			}
			ident := labelIdentity(labels, "le")
			leVal := math.Inf(1)
			if le != "+Inf" {
				if leVal, err = strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("line %d: bad le %q", ln+1, le)
				}
			}
			if bucketRows[base] == nil {
				bucketRows[base] = make(map[string][][2]float64)
			}
			bucketRows[base][ident] = append(bucketRows[base][ident], [2]float64{leVal, value})
		case "count":
			ident := labelIdentity(labels)
			if counts[base] == nil {
				counts[base] = make(map[string]float64)
			}
			counts[base][ident] = value
		case "sum":
			ident := labelIdentity(labels)
			if sums[base] == nil {
				sums[base] = make(map[string]bool)
			}
			sums[base][ident] = true
		}
	}

	for base, byIdent := range bucketRows {
		for ident, rows := range byIdent {
			sort.Slice(rows, func(i, j int) bool { return rows[i][0] < rows[j][0] })
			last := math.Inf(-1)
			prev := -1.0
			for _, r := range rows {
				if r[0] <= last {
					return fmt.Errorf("histogram %s{%s}: duplicate le %v", base, ident, r[0])
				}
				last = r[0]
				if prev >= 0 && r[1] < prev {
					return fmt.Errorf("histogram %s{%s}: bucket counts not cumulative (%v after %v)", base, ident, r[1], prev)
				}
				prev = r[1]
			}
			inf := rows[len(rows)-1]
			if !math.IsInf(inf[0], 1) {
				return fmt.Errorf("histogram %s{%s}: missing +Inf bucket", base, ident)
			}
			cnt, ok := counts[base][ident]
			if !ok {
				return fmt.Errorf("histogram %s{%s}: missing _count", base, ident)
			}
			if cnt != inf[1] {
				return fmt.Errorf("histogram %s{%s}: _count %v != +Inf bucket %v", base, ident, cnt, inf[1])
			}
			if !sums[base][ident] {
				return fmt.Errorf("histogram %s{%s}: missing _sum", base, ident)
			}
		}
	}
	return nil
}

// parseSample splits `name{k="v",...} value` into parts.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		for _, pair := range splitLabels(line[i+1 : j]) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("bad label %q", pair)
			}
			v, err := strconv.Unquote(pair[eq+1:])
			if err != nil {
				return "", nil, 0, fmt.Errorf("bad label value %q", pair)
			}
			labels[pair[:eq]] = v
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q", line)
	}
	return name, labels, v, nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// histBase maps a histogram sub-series name to its base metric and kind.
func histBase(name string, types map[string]string) (base, sub string) {
	for _, suffix := range []string{"_bucket", "_count", "_sum"} {
		if strings.HasSuffix(name, suffix) {
			b := strings.TrimSuffix(name, suffix)
			if types[b] == "histogram" || types[b] == "summary" {
				return b, suffix[1:]
			}
		}
	}
	return name, ""
}

// labelIdentity renders labels (minus the listed keys) canonically, so
// bucket/count/sum series of one histogram child can be matched up.
func labelIdentity(labels map[string]string, drop ...string) string {
	keys := make([]string, 0, len(labels))
outer:
	for k := range labels {
		for _, d := range drop {
			if k == d {
				continue outer
			}
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return strings.Join(parts, ",")
}
