package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "detect")
	c1, s1 := StartSpan(ctx, "s1:users")
	_, inner := StartSpan(c1, "scan")
	time.Sleep(time.Millisecond)
	inner.End()
	s1.End()
	_, s2 := StartSpan(ctx, "s2:users")
	s2.End()
	root.End()

	n := root.Node()
	if n.Name != "detect" || len(n.Children) != 2 {
		t.Fatalf("tree %+v", n)
	}
	if n.Children[0].Name != "s1:users" || len(n.Children[0].Children) != 1 {
		t.Fatalf("children %+v", n.Children)
	}
	if n.Children[0].Children[0].DurationMicros < 500 {
		t.Fatalf("inner span too short: %+v", n.Children[0].Children[0])
	}
	if n.DurationMicros < n.Children[0].Children[0].DurationMicros {
		t.Fatal("root shorter than descendant")
	}
	if n.Children[1].StartMicros < n.Children[0].StartMicros {
		t.Fatal("children not sorted by start")
	}
}

// TestStartSpanWithoutTrace: instrumentation sites run on untraced requests
// too — StartSpan must be free (nil span) and every Span method nil-safe.
func TestStartSpanWithoutTrace(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "s1")
	if s != nil {
		t.Fatal("no root: span must be nil")
	}
	if ctx2 != ctx {
		t.Fatal("no root: context must pass through unchanged")
	}
	s.End()
	if s.Duration() != 0 || s.Name() != "" {
		t.Fatal("nil span methods must be no-ops")
	}
	if s.Node().Name != "" {
		t.Fatal("nil span node must be zero")
	}
	if FromContext(ctx) != nil {
		t.Fatal("no span expected")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	_, s := NewTrace(context.Background(), "r")
	s.End()
	d1 := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if d2 := s.Duration(); d2 != d1 {
		t.Fatalf("second End moved the end time: %v -> %v", d1, d2)
	}
}

// TestSpanConcurrentChildren mirrors the pipelined scheduler: many stages
// attach children to one root concurrently.
func TestSpanConcurrentChildren(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "detect")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, s := StartSpan(ctx, "stage")
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Node().Children); got != 16 {
		t.Fatalf("children = %d, want 16", got)
	}
}

func TestWalk(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "a")
	c, s := StartSpan(ctx, "b")
	_, s2 := StartSpan(c, "c")
	s2.End()
	s.End()
	root.End()
	var names []string
	root.Node().Walk(func(n SpanNode) { names = append(names, n.Name) })
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("walk order %v", names)
	}
}
