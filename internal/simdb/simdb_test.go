package simdb

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/corpus"
)

func testServer(t *testing.T) (*Server, []*corpus.Table) {
	t.Helper()
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(20), 1)
	s := NewServer(NoLatency)
	s.LoadTables("userdb", ds.Test)
	return s, ds.Test
}

func TestConnectUnknownDatabase(t *testing.T) {
	s := NewServer(NoLatency)
	if _, err := s.Connect(context.Background(), "nope"); err == nil {
		t.Fatal("expected error for unknown database")
	}
}

func TestListTablesOrder(t *testing.T) {
	s, tables := testServer(t)
	conn, err := s.Connect(context.Background(), "userdb")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	names, err := conn.ListTables(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(tables) {
		t.Fatalf("got %d tables, want %d", len(names), len(tables))
	}
	for i, tb := range tables {
		if names[i] != tb.Name {
			t.Fatalf("table %d = %s, want %s (load order)", i, names[i], tb.Name)
		}
	}
}

func TestTableMetadataMatchesSource(t *testing.T) {
	s, tables := testServer(t)
	conn, _ := s.Connect(context.Background(), "userdb")
	defer conn.Close()
	src := tables[0]
	tm, err := conn.TableMetadata(context.Background(), src.Name)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Name != src.Name || tm.Comment != src.Comment || tm.RowCount != src.Rows() {
		t.Fatalf("metadata mismatch: %+v", tm)
	}
	if len(tm.Columns) != len(src.Columns) {
		t.Fatalf("got %d columns, want %d", len(tm.Columns), len(src.Columns))
	}
	for i, cm := range tm.Columns {
		sc := src.Columns[i]
		if cm.Name != sc.Name || cm.Comment != sc.Comment || cm.DataType != sc.SQLType {
			t.Fatalf("column %d mismatch: %+v vs %+v", i, cm, sc)
		}
		if cm.Stats != nil {
			t.Fatal("stats must be nil before ANALYZE")
		}
	}
}

func TestTableMetadataUnknownTable(t *testing.T) {
	s, _ := testServer(t)
	conn, _ := s.Connect(context.Background(), "userdb")
	defer conn.Close()
	if _, err := conn.TableMetadata(context.Background(), "ghost"); err == nil {
		t.Fatal("expected error")
	}
}

func TestScanFirstRows(t *testing.T) {
	s, tables := testServer(t)
	conn, _ := s.Connect(context.Background(), "userdb")
	defer conn.Close()
	src := tables[0]
	col := src.Columns[0]
	got, err := conn.ScanColumns(context.Background(), src.Name, []string{col.Name}, ScanOptions{Strategy: FirstRows, Rows: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[col.Name], col.Values[:5]) {
		t.Fatalf("scan = %v, want %v", got[col.Name], col.Values[:5])
	}
}

func TestScanAllRowsWhenMExceeds(t *testing.T) {
	s, tables := testServer(t)
	conn, _ := s.Connect(context.Background(), "userdb")
	defer conn.Close()
	src := tables[0]
	got, err := conn.ScanColumns(context.Background(), src.Name, []string{src.Columns[0].Name}, ScanOptions{Rows: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(got[src.Columns[0].Name]) != src.Rows() {
		t.Fatalf("scan returned %d rows, want %d", len(got[src.Columns[0].Name]), src.Rows())
	}
}

func TestScanRandomSampleDeterministicAndSubset(t *testing.T) {
	s, tables := testServer(t)
	conn, _ := s.Connect(context.Background(), "userdb")
	defer conn.Close()
	src := tables[0]
	col := src.Columns[0]
	opts := ScanOptions{Strategy: RandomSample, Rows: 10, Seed: 0}
	a, err := conn.ScanColumns(context.Background(), src.Name, []string{col.Name}, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := conn.ScanColumns(context.Background(), src.Name, []string{col.Name}, opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sampling with the same seed must be deterministic")
	}
	// All sampled values must exist in the column.
	valid := make(map[string]int)
	for _, v := range col.Values {
		valid[v]++
	}
	for _, v := range a[col.Name] {
		if valid[v] == 0 {
			t.Fatalf("sampled value %q not in column", v)
		}
		valid[v]--
	}
}

func TestScanUnknownColumn(t *testing.T) {
	s, tables := testServer(t)
	conn, _ := s.Connect(context.Background(), "userdb")
	defer conn.Close()
	if _, err := conn.ScanColumns(context.Background(), tables[0].Name, []string{"ghost_col"}, ScanOptions{Rows: 1}); err == nil {
		t.Fatal("expected error")
	}
}

func TestClosedConnectionRejectsOps(t *testing.T) {
	s, tables := testServer(t)
	conn, _ := s.Connect(context.Background(), "userdb")
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err == nil {
		t.Fatal("double close should error")
	}
	if _, err := conn.ListTables(context.Background()); err == nil {
		t.Fatal("ops on closed connection should error")
	}
	if _, err := conn.TableMetadata(context.Background(), tables[0].Name); err == nil {
		t.Fatal("ops on closed connection should error")
	}
}

func TestAccountingTracksScans(t *testing.T) {
	s, tables := testServer(t)
	conn, _ := s.Connect(context.Background(), "userdb")
	defer conn.Close()
	src := tables[0]
	cols := []string{src.Columns[0].Name, src.Columns[1].Name}
	if _, err := conn.ScanColumns(context.Background(), src.Name, cols, ScanOptions{Rows: 7}); err != nil {
		t.Fatal(err)
	}
	snap := s.Accounting().Snapshot()
	if snap.Connections != 1 {
		t.Fatalf("Connections = %d", snap.Connections)
	}
	if snap.ColumnsScanned != 2 || snap.DistinctColsScanned != 2 {
		t.Fatalf("ColumnsScanned = %d, Distinct = %d", snap.ColumnsScanned, snap.DistinctColsScanned)
	}
	if snap.RowsScanned != 7 {
		t.Fatalf("RowsScanned = %d", snap.RowsScanned)
	}
	if snap.CellsRead != 14 {
		t.Fatalf("CellsRead = %d", snap.CellsRead)
	}
	// Rescanning the same column doesn't grow the distinct set.
	conn.ScanColumns(context.Background(), src.Name, cols[:1], ScanOptions{Rows: 3})
	snap = s.Accounting().Snapshot()
	if snap.DistinctColsScanned != 2 {
		t.Fatalf("DistinctColsScanned = %d after rescan", snap.DistinctColsScanned)
	}
	s.Accounting().Reset()
	if s.Accounting().Snapshot() != (AccountingSnapshot{}) {
		t.Fatal("Reset should zero all counters")
	}
}

func TestMetadataQueriesDoNotCountAsScans(t *testing.T) {
	s, tables := testServer(t)
	conn, _ := s.Connect(context.Background(), "userdb")
	defer conn.Close()
	conn.ListTables(context.Background())
	conn.TableMetadata(context.Background(), tables[0].Name)
	snap := s.Accounting().Snapshot()
	if snap.ColumnsScanned != 0 || snap.RowsScanned != 0 {
		t.Fatalf("metadata queries must not scan: %+v", snap)
	}
	if snap.Queries != 2 {
		t.Fatalf("Queries = %d, want 2", snap.Queries)
	}
}

func TestAnalyzeTablePopulatesStats(t *testing.T) {
	s, tables := testServer(t)
	conn, _ := s.Connect(context.Background(), "userdb")
	defer conn.Close()
	src := tables[0]
	if err := conn.AnalyzeTable(context.Background(), src.Name, AnalyzeOptions{Buckets: 4}); err != nil {
		t.Fatal(err)
	}
	tm, _ := conn.TableMetadata(context.Background(), src.Name)
	for i, cm := range tm.Columns {
		if cm.Stats == nil {
			t.Fatalf("column %d has no stats after ANALYZE", i)
		}
		st := cm.Stats
		if st.RowCount != src.Rows() {
			t.Fatalf("RowCount = %d", st.RowCount)
		}
		if st.NDV <= 0 || st.NDV > st.RowCount {
			t.Fatalf("NDV = %d out of range", st.NDV)
		}
		if st.Histogram == nil || len(st.Histogram.Buckets) == 0 {
			t.Fatal("missing histogram")
		}
		total := 0
		for _, b := range st.Histogram.Buckets {
			total += b.Count
		}
		if total != st.RowCount-st.NullCount {
			t.Fatalf("histogram counts %d != non-null rows %d", total, st.RowCount-st.NullCount)
		}
	}
	// ANALYZE must not count as a column scan.
	if snap := s.Accounting().Snapshot(); snap.ColumnsScanned != 0 {
		t.Fatalf("ANALYZE counted as scan: %+v", snap)
	}
}

func TestAnalyzeUnknownTable(t *testing.T) {
	s, _ := testServer(t)
	conn, _ := s.Connect(context.Background(), "userdb")
	defer conn.Close()
	if err := conn.AnalyzeTable(context.Background(), "ghost", AnalyzeOptions{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestComputeStatsNumericColumn(t *testing.T) {
	st := computeStats([]string{"1", "2", "3", "4", "5", "6", "7", "8"}, 4)
	if st.NumericRatio != 1 {
		t.Fatalf("NumericRatio = %v", st.NumericRatio)
	}
	if st.Histogram.Kind != EqualWidth {
		t.Fatalf("numeric column should get equal-width histogram, got %v", st.Histogram.Kind)
	}
	if st.NumericMin != 1 || st.NumericMax != 8 {
		t.Fatalf("min/max = %v/%v", st.NumericMin, st.NumericMax)
	}
}

func TestComputeStatsTextColumn(t *testing.T) {
	st := computeStats([]string{"apple", "banana", "apple", "", "cherry"}, 2)
	if st.NullCount != 1 || st.NDV != 3 {
		t.Fatalf("NullCount=%d NDV=%d", st.NullCount, st.NDV)
	}
	if st.Histogram.Kind != EqualHeight {
		t.Fatalf("text column should get equal-height histogram, got %v", st.Histogram.Kind)
	}
	if st.MinLen != 5 || st.MaxLen != 6 {
		t.Fatalf("MinLen/MaxLen = %d/%d", st.MinLen, st.MaxLen)
	}
}

func TestComputeStatsAllNull(t *testing.T) {
	st := computeStats([]string{"", "", ""}, 4)
	if st.NullCount != 3 || st.NDV != 0 || st.MinLen != 0 {
		t.Fatalf("all-null stats = %+v", st)
	}
}

func TestEqualWidthSingleValue(t *testing.T) {
	h := equalWidthHistogram([]float64{5, 5, 5}, 4)
	if len(h.Buckets) != 1 || h.Buckets[0].Count != 3 {
		t.Fatalf("constant column histogram = %+v", h)
	}
}

func TestEqualHeightFewerValuesThanBuckets(t *testing.T) {
	h := equalHeightHistogram([]string{"a", "b"}, 8)
	if len(h.Buckets) != 2 {
		t.Fatalf("bucket count = %d, want 2", len(h.Buckets))
	}
}

func TestHistogramKindString(t *testing.T) {
	if EqualHeight.String() != "equal-height" || EqualWidth.String() != "equal-width" {
		t.Fatal("String() mismatch")
	}
	if !strings.Contains(HistogramKind(9).String(), "9") {
		t.Fatal("unknown kind should render its value")
	}
}

func TestLatencyInjectsDelay(t *testing.T) {
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(2), 2)
	lat := LatencyProfile{ConnectionSetup: 5 * time.Millisecond, QueryRoundTrip: time.Millisecond, SamplingPenalty: 1}
	s := NewServer(lat)
	s.LoadTables("db", ds.Test)
	start := time.Now()
	conn, err := s.Connect(context.Background(), "db")
	if err != nil {
		t.Fatal(err)
	}
	conn.ListTables(context.Background())
	elapsed := time.Since(start)
	if elapsed < 6*time.Millisecond {
		t.Fatalf("latency not injected: %v", elapsed)
	}
	conn.Close()
}

func TestPaperLatencyScales(t *testing.T) {
	full := PaperLatency(1)
	half := PaperLatency(0.5)
	if half.QueryRoundTrip*2 != full.QueryRoundTrip {
		t.Fatalf("scaling broken: %v vs %v", half.QueryRoundTrip, full.QueryRoundTrip)
	}
	if full.SamplingPenalty <= 1 {
		t.Fatal("sampling must be slower than sequential scan")
	}
}

func TestConcurrentScansSafe(t *testing.T) {
	s, tables := testServer(t)
	conn, _ := s.Connect(context.Background(), "userdb")
	defer conn.Close()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			tb := tables[i%len(tables)]
			_, err := conn.ScanColumns(context.Background(), tb.Name, []string{tb.Columns[0].Name}, ScanOptions{Rows: 5})
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// Property: for any sample size and seed, RandomSample returns exactly
// min(m, rows) values and never panics.
func TestRandomSampleSizeProperty(t *testing.T) {
	s, tables := testServer(t)
	conn, _ := s.Connect(context.Background(), "userdb")
	defer conn.Close()
	src := tables[0]
	col := src.Columns[0].Name
	f := func(m uint8, seed int64) bool {
		rows := int(m%80) + 1
		got, err := conn.ScanColumns(context.Background(), src.Name, []string{col}, ScanOptions{Strategy: RandomSample, Rows: rows, Seed: seed})
		if err != nil {
			return false
		}
		want := rows
		if want > src.Rows() {
			want = src.Rows()
		}
		return len(got[col]) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInjectScanFaultOneShot(t *testing.T) {
	s, tables := testServer(t)
	conn, _ := s.Connect(context.Background(), "userdb")
	defer conn.Close()
	src := tables[0]
	wantErr := fmt.Errorf("connection reset by peer")
	s.InjectScanFault(src.Name, wantErr)
	if _, err := conn.ScanColumns(context.Background(), src.Name, []string{src.Columns[0].Name}, ScanOptions{Rows: 3}); err == nil {
		t.Fatal("armed fault should fire")
	}
	// One-shot: the next scan succeeds.
	if _, err := conn.ScanColumns(context.Background(), src.Name, []string{src.Columns[0].Name}, ScanOptions{Rows: 3}); err != nil {
		t.Fatalf("fault should be consumed: %v", err)
	}
	// Other tables are unaffected.
	other := tables[1]
	s.InjectScanFault(src.Name, wantErr)
	if _, err := conn.ScanColumns(context.Background(), other.Name, []string{other.Columns[0].Name}, ScanOptions{Rows: 3}); err != nil {
		t.Fatalf("unrelated table failed: %v", err)
	}
}
