package simdb

import (
	"time"

	"repro/internal/obs"
)

// Runtime metric handles (DESIGN.md §9). Latency is observed per operation
// whether it succeeds or fails — a failed scan still held the caller for its
// round trip, and operators alert on the tail, not the happy path.
var (
	opSeconds = map[string]*obs.Histogram{
		"connect":        obs.Default.LatencyHistogram("taste_simdb_op_seconds", "op", "connect"),
		"list_tables":    obs.Default.LatencyHistogram("taste_simdb_op_seconds", "op", "list_tables"),
		"table_metadata": obs.Default.LatencyHistogram("taste_simdb_op_seconds", "op", "table_metadata"),
		"analyze":        obs.Default.LatencyHistogram("taste_simdb_op_seconds", "op", "analyze"),
		"scan":           obs.Default.LatencyHistogram("taste_simdb_op_seconds", "op", "scan"),
		"page_put":       obs.Default.LatencyHistogram("taste_simdb_op_seconds", "op", "page_put"),
		"page_get":       obs.Default.LatencyHistogram("taste_simdb_op_seconds", "op", "page_get"),
		"manifest_put":   obs.Default.LatencyHistogram("taste_simdb_op_seconds", "op", "manifest_put"),
		"manifest_get":   obs.Default.LatencyHistogram("taste_simdb_op_seconds", "op", "manifest_get"),
	}
	opErrorsTotal    = obs.Default.Counter("taste_simdb_op_errors_total")
	faultsTotal      = obs.Default.Counter("taste_simdb_faults_total")
	retriesTotal     = obs.Default.Counter("taste_simdb_retries_total")
	pagesStoredTotal = obs.Default.Counter("taste_simdb_pages_stored_total")
	pageBytesStored  = obs.Default.Counter("taste_simdb_page_bytes_stored")
)

// observeOp records one database operation's wall time and error outcome.
func observeOp(op string, start time.Time, err error) {
	opSeconds[op].ObserveDuration(time.Since(start))
	if err != nil {
		opErrorsTotal.Inc()
	}
}
