package simdb

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// TransientError marks a failure as retryable: the operation hit a condition
// (dropped connection, query timeout, failover blip) that a real RDS client
// would retry, as opposed to a permanent error such as an unknown table.
// Callers classify with IsTransient / errors.As.
type TransientError struct {
	// Op names the failed operation ("connect", "query", "scan", …).
	Op string
	// Err is the underlying cause.
	Err error
}

// Error implements the error interface.
func (e *TransientError) Error() string {
	return fmt.Sprintf("simdb: transient %s failure: %v", e.Op, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as a retryable failure of the given operation.
func Transient(op string, err error) error { return &TransientError{Op: op, Err: err} }

// IsTransient reports whether err is (or wraps) a TransientError.
func IsTransient(err error) bool {
	var t *TransientError
	return errors.As(err, &t)
}

// FaultProfile injects the failure modes of a real cloud database (the
// RDS-over-VPC deployment of §2.2 sees connection drops, slow queries, and
// timeouts as routine events) into the simulated server. All draws come from
// one seeded generator, so a given (profile, operation sequence) pair
// produces the same faults on every run — tests can assert exact outcomes.
//
// Probabilities are per operation and independent; zero values disable that
// fault kind, so the zero FaultProfile is the happy path.
type FaultProfile struct {
	// Seed seeds the fault generator. Two servers with equal profiles and
	// equal operation sequences fail identically.
	Seed int64
	// ConnectFailProb is the probability that Connect returns a transient
	// error after paying the setup latency.
	ConnectFailProb float64
	// QueryFailProb is the probability that a metadata query (ListTables,
	// TableMetadata, AnalyzeTable) fails transiently.
	QueryFailProb float64
	// ScanFailProb is the probability that a content scan fails transiently
	// before any rows are transferred.
	ScanFailProb float64
	// MidScanDropProb is the probability that a content scan drops mid-way:
	// part of the per-cell transfer latency is paid, then the connection
	// breaks and no rows are returned.
	MidScanDropProb float64
	// SlowQueryProb is the probability that an operation's latency is
	// multiplied by SlowQueryFactor (a straggling query, not a failure).
	SlowQueryProb float64
	// SlowQueryFactor is the latency multiplier for slow queries
	// (default 8 when a SlowQueryProb is set).
	SlowQueryFactor float64
}

// enabled reports whether any fault kind can fire.
func (f FaultProfile) enabled() bool {
	return f.ConnectFailProb > 0 || f.QueryFailProb > 0 || f.ScanFailProb > 0 ||
		f.MidScanDropProb > 0 || f.SlowQueryProb > 0
}

// faultState is the server-side injector: profile + seeded generator.
type faultState struct {
	mu      sync.Mutex
	profile FaultProfile
	rng     *rand.Rand
}

// faultDecision is what the injector chose for one operation.
type faultDecision struct {
	// err, when non-nil, is the transient error the operation must return.
	err error
	// midScan selects the drop-after-partial-transfer failure shape; the
	// scan pays dropAt of its transfer latency before returning err.
	midScan bool
	dropAt  float64 // fraction of transfer latency paid before a mid-scan drop
	// slowFactor (≥ 1) multiplies the operation's latency.
	slowFactor float64
}

// SetFaultProfile arms (or, with a zero profile, disarms) deterministic
// fault injection. Call before issuing traffic; resetting mid-flight also
// resets the random stream.
func (s *Server) SetFaultProfile(p FaultProfile) {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if p.SlowQueryFactor <= 0 {
		p.SlowQueryFactor = 8
	}
	if !p.enabled() {
		s.faultProfile = nil
		return
	}
	s.faultProfile = &faultState{profile: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// FaultProfile returns the armed profile (zero value when disarmed).
func (s *Server) FaultProfile() FaultProfile {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if s.faultProfile == nil {
		return FaultProfile{}
	}
	return s.faultProfile.profile
}

// opConnect/opQuery/opScan classify operations for the injector.
type faultOp int

const (
	opConnect faultOp = iota
	opQuery
	opScan
)

// decide draws this operation's fate. Every call consumes a fixed number of
// random values per op kind, keeping the stream aligned across runs.
func (s *Server) decide(op faultOp, detail string) faultDecision {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	d := faultDecision{slowFactor: 1}
	fs := s.faultProfile
	if fs == nil {
		return d
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p, rng := fs.profile, fs.rng
	slow, fail, drop := rng.Float64(), rng.Float64(), rng.Float64()
	if p.SlowQueryProb > 0 && slow < p.SlowQueryProb {
		d.slowFactor = p.SlowQueryFactor
	}
	switch op {
	case opConnect:
		if fail < p.ConnectFailProb {
			d.err = Transient("connect", fmt.Errorf("connection refused by %s", detail))
		}
	case opQuery:
		if fail < p.QueryFailProb {
			d.err = Transient("query", fmt.Errorf("lost connection during query on %s", detail))
		}
	case opScan:
		if fail < p.ScanFailProb {
			d.err = Transient("scan", fmt.Errorf("scan aborted on %s", detail))
		} else if drop < p.MidScanDropProb {
			d.err = Transient("scan", fmt.Errorf("connection dropped mid-scan on %s", detail))
			d.midScan = true
			d.dropAt = 0.1 + 0.8*rng.Float64()
		}
	}
	if d.err != nil {
		s.acct.addFault()
	}
	return d
}
