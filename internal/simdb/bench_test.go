package simdb

import (
	"context"
	"testing"

	"repro/internal/corpus"
)

func benchServer(b *testing.B) (*Server, []*corpus.Table) {
	b.Helper()
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.GitTablesProfile(20), 1)
	s := NewServer(NoLatency)
	s.LoadTables("db", ds.Train)
	return s, ds.Train
}

func BenchmarkTableMetadata(b *testing.B) {
	s, tables := benchServer(b)
	conn, _ := s.Connect(context.Background(), "db")
	defer conn.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.TableMetadata(context.Background(), tables[i%len(tables)].Name); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanFirstRows(b *testing.B) {
	s, tables := benchServer(b)
	conn, _ := s.Connect(context.Background(), "db")
	defer conn.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := tables[i%len(tables)]
		if _, err := conn.ScanColumns(context.Background(), t.Name, []string{t.Columns[0].Name}, ScanOptions{Rows: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanRandomSample(b *testing.B) {
	s, tables := benchServer(b)
	conn, _ := s.Connect(context.Background(), "db")
	defer conn.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := tables[i%len(tables)]
		if _, err := conn.ScanColumns(context.Background(), t.Name, []string{t.Columns[0].Name}, ScanOptions{Strategy: RandomSample, Rows: 50, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeTable(b *testing.B) {
	s, tables := benchServer(b)
	conn, _ := s.Connect(context.Background(), "db")
	defer conn.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.AnalyzeTable(context.Background(), tables[i%len(tables)].Name, AnalyzeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeStats(b *testing.B) {
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(5), 1)
	vals := ds.Train[0].Columns[0].Values
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeStats(vals, 8)
	}
}
