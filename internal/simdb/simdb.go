// Package simdb simulates the remote user database of the paper's cloud
// deployment (an RDS-for-MySQL instance reachable over a VPC). It provides:
//
//   - an embedded relational store loaded from generated corpus tables,
//   - an information_schema-style metadata API (table/column names,
//     comments, data types, row counts) that is cheap to query,
//   - ANALYZE TABLE statistics and histograms (equal-height/equal-width),
//   - column-content scans with both "first m rows" and "random sampling of
//     m rows" strategies (§6.1.2),
//   - a configurable latency model injecting real delays for connection
//     setup, query round trips, and per-row transfer,
//   - deterministic, seedable fault injection (transient errors, slow
//     queries, mid-scan connection drops — see FaultProfile), and
//   - an accounting ledger tracking connections, queries, scanned columns,
//     rows, bytes, faults and client retries — the raw material for the
//     "ratio of scanned columns" intrusiveness metric (§6.2).
//
// Every data-path method takes a context.Context: injected latency sleeps
// are interruptible, so a cancelled request stops paying simulated I/O.
// All methods are safe for concurrent use; the pipelined executor issues
// scans from multiple data-preparation workers at once.
package simdb

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/corpus"
)

// LatencyProfile models the time cost of talking to a remote database. All
// costs are injected as real sleeps so that pipelined execution genuinely
// overlaps I/O waits with inference compute.
type LatencyProfile struct {
	// ConnectionSetup is paid once per Connect.
	ConnectionSetup time.Duration
	// ConnectionClose is paid once per Close.
	ConnectionClose time.Duration
	// QueryRoundTrip is paid once per metadata query, scan, or ANALYZE.
	QueryRoundTrip time.Duration
	// PerCell is paid per cell (row × column) transferred by a content
	// scan, so scanning fewer columns genuinely costs less.
	PerCell time.Duration
	// SamplingPenalty multiplies PerCell for random-sampling scans, which
	// are slower than sequential first-m scans in MySQL (§6.3).
	SamplingPenalty float64
}

// PaperLatency returns the latency profile of the paper's testbed (5 ms
// network delay between ECS and RDS) scaled by the given factor. scale=1 is
// paper-realistic; the experiments default to a small scale so that full
// sweeps finish quickly while preserving every relative relationship.
func PaperLatency(scale float64) LatencyProfile {
	ms := func(d float64) time.Duration { return time.Duration(d * scale * float64(time.Millisecond)) }
	return LatencyProfile{
		ConnectionSetup: ms(10),
		ConnectionClose: ms(2),
		QueryRoundTrip:  ms(5),
		PerCell:         ms(0.02),
		SamplingPenalty: 1.3,
	}
}

// NoLatency disables all injected delays; used by unit tests.
var NoLatency = LatencyProfile{SamplingPenalty: 1}

// sleep pays d of simulated I/O, returning early with the context's error
// if the request is cancelled mid-wait. A cancelled context also aborts
// zero-length sleeps, so even NoLatency servers observe deadlines.
func (l LatencyProfile) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Accounting tracks the load a detection service places on a database.
type Accounting struct {
	mu             sync.Mutex
	Connections    int
	Queries        int
	ColumnsScanned int
	RowsScanned    int
	CellsRead      int
	BytesRead      int
	Faults         int // server-side injected faults that fired
	Retries        int // client-reported retry attempts (AddRetry)
	PagesStored    int // content-addressed pages newly written (dedup hits excluded)
	PageBytes      int // bytes of newly stored pages
	BlobBytesRead  int // bytes served from the page store (pages + manifests)
	scannedCols    map[string]bool
}

// Snapshot returns a copy of the current counters.
func (a *Accounting) Snapshot() AccountingSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AccountingSnapshot{
		Connections:         a.Connections,
		Queries:             a.Queries,
		ColumnsScanned:      a.ColumnsScanned,
		DistinctColsScanned: len(a.scannedCols),
		RowsScanned:         a.RowsScanned,
		CellsRead:           a.CellsRead,
		BytesRead:           a.BytesRead,
		Faults:              a.Faults,
		Retries:             a.Retries,
		PagesStored:         a.PagesStored,
		PageBytes:           a.PageBytes,
		BlobBytesRead:       a.BlobBytesRead,
	}
}

// AccountingSnapshot is an immutable view of the counters.
type AccountingSnapshot struct {
	Connections         int
	Queries             int
	ColumnsScanned      int
	DistinctColsScanned int
	RowsScanned         int
	CellsRead           int
	BytesRead           int
	Faults              int
	Retries             int
	PagesStored         int
	PageBytes           int
	BlobBytesRead       int
}

// Reset zeroes all counters.
func (a *Accounting) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.Connections, a.Queries, a.ColumnsScanned = 0, 0, 0
	a.RowsScanned, a.CellsRead, a.BytesRead = 0, 0, 0
	a.Faults, a.Retries = 0, 0
	a.PagesStored, a.PageBytes, a.BlobBytesRead = 0, 0, 0
	a.scannedCols = nil
}

func (a *Accounting) addPagePut(bytes int) {
	a.mu.Lock()
	a.PagesStored++
	a.PageBytes += bytes
	a.mu.Unlock()
}

func (a *Accounting) addBlobRead(bytes int) {
	a.mu.Lock()
	a.BlobBytesRead += bytes
	a.mu.Unlock()
}

func (a *Accounting) addConn() {
	a.mu.Lock()
	a.Connections++
	a.mu.Unlock()
}

func (a *Accounting) addQuery() {
	a.mu.Lock()
	a.Queries++
	a.mu.Unlock()
}

func (a *Accounting) addFault() {
	a.mu.Lock()
	a.Faults++
	a.mu.Unlock()
	faultsTotal.Inc()
}

// AddRetry records a client-side retry against this database, so the ledger
// reflects the extra load retries place on the server.
func (a *Accounting) AddRetry() {
	a.mu.Lock()
	a.Retries++
	a.mu.Unlock()
	retriesTotal.Inc()
}

func (a *Accounting) addScan(db, table string, cols []string, rows, cells, bytes int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.Queries++
	a.ColumnsScanned += len(cols)
	a.RowsScanned += rows
	a.CellsRead += cells
	a.BytesRead += bytes
	if a.scannedCols == nil {
		a.scannedCols = make(map[string]bool)
	}
	for _, c := range cols {
		a.scannedCols[db+"."+table+"."+c] = true
	}
}

// Server hosts simulated databases.
type Server struct {
	mu        sync.RWMutex
	databases map[string]*database
	latency   LatencyProfile
	acct      Accounting

	faultMu      sync.Mutex
	faults       map[string]error // table name → error returned by the next scan
	faultProfile *faultState      // nil = no probabilistic fault injection

	pageStore *PageStore // lazily created by PageStore(); guarded by mu
}

type database struct {
	name   string
	order  []string
	tables map[string]*storedTable
}

type storedTable struct {
	name    string
	comment string
	columns []*storedColumn
	rows    int
}

type storedColumn struct {
	name    string
	comment string
	sqlType string
	values  []string
	statsMu sync.Mutex
	stats   *ColumnStats // populated by ANALYZE TABLE
}

// NewServer creates an empty server with the given latency profile.
func NewServer(latency LatencyProfile) *Server {
	return &Server{databases: make(map[string]*database), latency: latency}
}

// Accounting returns the server's accounting ledger.
func (s *Server) Accounting() *Accounting { return &s.acct }

// Latency returns the configured latency profile.
func (s *Server) Latency() LatencyProfile { return s.latency }

// InjectScanFault arms a one-shot failure: the next ScanColumns against the
// named table returns err. Used to exercise the detection service's
// partial-failure handling (a flaky table must not abort a batch). Wrap err
// with Transient to make the failure retryable.
func (s *Server) InjectScanFault(table string, err error) {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if s.faults == nil {
		s.faults = make(map[string]error)
	}
	s.faults[table] = err
}

// takeFault consumes an armed fault for the table, if any.
func (s *Server) takeFault(table string) error {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	err, ok := s.faults[table]
	if !ok {
		return nil
	}
	delete(s.faults, table)
	s.acct.addFault()
	return err
}

// LoadTables creates (or extends) a database with the given corpus tables.
// Ground-truth labels are deliberately not stored: the database knows only
// what a real user database would (schema, comments, content).
func (s *Server) LoadTables(dbName string, tables []*corpus.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db := s.databases[dbName]
	if db == nil {
		db = &database{name: dbName, tables: make(map[string]*storedTable)}
		s.databases[dbName] = db
	}
	for _, t := range tables {
		st := &storedTable{name: t.Name, comment: t.Comment, rows: t.Rows()}
		for _, c := range t.Columns {
			st.columns = append(st.columns, &storedColumn{
				name:    c.Name,
				comment: c.Comment,
				sqlType: c.SQLType,
				values:  c.Values,
			})
		}
		if _, dup := db.tables[t.Name]; dup {
			panic(fmt.Sprintf("simdb: duplicate table %s.%s", dbName, t.Name))
		}
		db.tables[t.Name] = st
		db.order = append(db.order, t.Name)
	}
}

// Connect opens a connection to the named database, paying the setup cost.
// With a fault profile armed, the attempt may fail transiently after the
// setup latency — exactly when a real TCP/TLS handshake times out.
func (s *Server) Connect(ctx context.Context, dbName string) (_ *Conn, err error) {
	start := time.Now()
	defer func() { observeOp("connect", start, err) }()
	d := s.decide(opConnect, dbName)
	if err := s.latency.sleep(ctx, scaleDur(s.latency.ConnectionSetup, d.slowFactor)); err != nil {
		return nil, err
	}
	if d.err != nil {
		return nil, d.err
	}
	s.mu.RLock()
	db := s.databases[dbName]
	s.mu.RUnlock()
	if db == nil {
		return nil, fmt.Errorf("simdb: unknown database %q", dbName)
	}
	s.acct.addConn()
	return &Conn{server: s, db: db}, nil
}

// scaleDur multiplies a latency cost by a slow-query factor.
func scaleDur(d time.Duration, factor float64) time.Duration {
	if factor == 1 || factor <= 0 {
		return d
	}
	return time.Duration(float64(d) * factor)
}

// Conn is a client connection. A Conn may be shared by multiple goroutines,
// mirroring a pooled connection; closing it twice is an error.
type Conn struct {
	server *Server
	db     *database
	mu     sync.Mutex
	closed bool
}

// Accounting returns the ledger of the server this connection talks to, so
// clients can report retries against the right database.
func (c *Conn) Accounting() *Accounting { return &c.server.acct }

// Close releases the connection. The close handshake is fire-and-forget, so
// it does not take a context.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("simdb: connection already closed")
	}
	c.closed = true
	_ = c.server.latency.sleep(context.Background(), c.server.latency.ConnectionClose)
	return nil
}

func (c *Conn) check() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("simdb: connection is closed")
	}
	return nil
}

// ListTables returns the table names in load order (one metadata query).
func (c *Conn) ListTables(ctx context.Context) (_ []string, err error) {
	start := time.Now()
	defer func() { observeOp("list_tables", start, err) }()
	if err := c.check(); err != nil {
		return nil, err
	}
	d := c.server.decide(opQuery, c.db.name)
	if err := c.server.latency.sleep(ctx, scaleDur(c.server.latency.QueryRoundTrip, d.slowFactor)); err != nil {
		return nil, err
	}
	c.server.acct.addQuery()
	if d.err != nil {
		return nil, d.err
	}
	return append([]string(nil), c.db.order...), nil
}

// ColumnMeta is the information_schema view of one column.
type ColumnMeta struct {
	Name     string
	Comment  string
	DataType string
	// Stats is non-nil only after ANALYZE TABLE has run.
	Stats *ColumnStats
}

// TableMeta is the information_schema view of one table.
type TableMeta struct {
	Name     string
	Comment  string
	RowCount int
	Columns  []ColumnMeta
}

// TableMetadata fetches schema metadata for a table — the SELECT * FROM
// information_schema.columns of §3.2. It costs one query round trip and
// never touches column content.
func (c *Conn) TableMetadata(ctx context.Context, table string) (_ *TableMeta, err error) {
	start := time.Now()
	defer func() { observeOp("table_metadata", start, err) }()
	if err := c.check(); err != nil {
		return nil, err
	}
	d := c.server.decide(opQuery, c.db.name+"."+table)
	if err := c.server.latency.sleep(ctx, scaleDur(c.server.latency.QueryRoundTrip, d.slowFactor)); err != nil {
		return nil, err
	}
	c.server.acct.addQuery()
	if d.err != nil {
		return nil, d.err
	}
	st, ok := c.db.tables[table]
	if !ok {
		return nil, fmt.Errorf("simdb: unknown table %s.%s", c.db.name, table)
	}
	tm := &TableMeta{Name: st.name, Comment: st.comment, RowCount: st.rows}
	for _, col := range st.columns {
		cm := ColumnMeta{Name: col.name, Comment: col.comment, DataType: col.sqlType}
		col.statsMu.Lock()
		cm.Stats = col.stats
		col.statsMu.Unlock()
		tm.Columns = append(tm.Columns, cm)
	}
	return tm, nil
}

// ScanStrategy selects how content scans pick rows (§6.1.2).
type ScanStrategy int

const (
	// FirstRows reads the first m rows of the table.
	FirstRows ScanStrategy = iota
	// RandomSample reads a uniform random sample of m rows (MySQL
	// ORDER BY RAND(seed) LIMIT m), which is slower than FirstRows.
	RandomSample
)

// ScanOptions configures a content scan.
type ScanOptions struct {
	Strategy ScanStrategy
	// Rows is the number of rows to retrieve (m in the paper; ≤0 means all).
	Rows int
	// Seed seeds the RandomSample strategy.
	Seed int64
}

// ScanColumns retrieves content for the named columns of a table. The
// result maps column name → cell values in row order. The call pays one
// query round trip plus a per-row transfer cost, and is recorded in the
// accounting ledger as an intrusive operation. Under an armed FaultProfile
// the scan may fail transiently up front, or drop mid-transfer after paying
// part of the per-cell latency.
func (c *Conn) ScanColumns(ctx context.Context, table string, cols []string, opts ScanOptions) (_ map[string][]string, err error) {
	start := time.Now()
	defer func() { observeOp("scan", start, err) }()
	if err := c.check(); err != nil {
		return nil, err
	}
	if err := c.server.takeFault(table); err != nil {
		return nil, err
	}
	d := c.server.decide(opScan, c.db.name+"."+table)
	lat := c.server.latency
	if d.err != nil && !d.midScan {
		// Up-front failure: the round trip is paid, nothing is transferred.
		if err := lat.sleep(ctx, scaleDur(lat.QueryRoundTrip, d.slowFactor)); err != nil {
			return nil, err
		}
		c.server.acct.addQuery()
		return nil, d.err
	}
	st, ok := c.db.tables[table]
	if !ok {
		return nil, fmt.Errorf("simdb: unknown table %s.%s", c.db.name, table)
	}
	byName := make(map[string]*storedColumn, len(st.columns))
	for _, col := range st.columns {
		byName[col.name] = col
	}
	selected := make([]*storedColumn, len(cols))
	for i, name := range cols {
		col, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("simdb: unknown column %s.%s.%s", c.db.name, table, name)
		}
		selected[i] = col
	}

	m := opts.Rows
	if m <= 0 || m > st.rows {
		m = st.rows
	}
	rowIdx := make([]int, m)
	switch opts.Strategy {
	case FirstRows:
		for i := range rowIdx {
			rowIdx[i] = i
		}
	case RandomSample:
		perm := rand.New(rand.NewSource(opts.Seed)).Perm(st.rows)
		copy(rowIdx, perm[:m])
		sort.Ints(rowIdx)
	default:
		return nil, fmt.Errorf("simdb: unknown scan strategy %d", opts.Strategy)
	}

	out := make(map[string][]string, len(cols))
	cells, bytes := 0, 0
	for i, col := range selected {
		vals := make([]string, m)
		for j, r := range rowIdx {
			vals[j] = col.values[r]
			cells++
			bytes += len(col.values[r])
		}
		out[cols[i]] = vals
	}

	// Latency: one round trip plus per-cell transfer (sampling pays the
	// MySQL RAND() penalty).
	perCell := lat.PerCell
	if opts.Strategy == RandomSample && lat.SamplingPenalty > 0 {
		perCell = time.Duration(float64(perCell) * lat.SamplingPenalty)
	}
	transfer := time.Duration(cells) * perCell
	if d.midScan {
		// Pay the round trip plus the fraction of the transfer that made it
		// through before the drop; the partial rows are discarded.
		partial := time.Duration(float64(transfer) * d.dropAt)
		if err := lat.sleep(ctx, scaleDur(lat.QueryRoundTrip+partial, d.slowFactor)); err != nil {
			return nil, err
		}
		c.server.acct.addQuery()
		return nil, d.err
	}
	if err := lat.sleep(ctx, scaleDur(lat.QueryRoundTrip+transfer, d.slowFactor)); err != nil {
		return nil, err
	}
	c.server.acct.addScan(c.db.name, table, cols, m, cells, bytes)
	return out, nil
}
