package simdb

import (
	"context"
	"crypto/sha256"
	"strings"
	"testing"
)

func hashOf(data []byte) PageHash { return PageHash(sha256.Sum256(data)) }

func TestPageStorePutGetDedup(t *testing.T) {
	s := NewServer(NoLatency)
	ps := s.PageStore()
	ctx := context.Background()

	a := []byte("page-a contents 0123456789")
	b := []byte("page-b different contents")

	added, err := ps.PutPage(ctx, hashOf(a), a)
	if err != nil || !added {
		t.Fatalf("first put: added=%v err=%v", added, err)
	}
	// Identical content must dedup: not added, nothing new stored.
	added, err = ps.PutPage(ctx, hashOf(a), a)
	if err != nil || added {
		t.Fatalf("dup put: added=%v err=%v", added, err)
	}
	if _, err := ps.PutPage(ctx, hashOf(b), b); err != nil {
		t.Fatal(err)
	}

	got, err := ps.GetPage(ctx, hashOf(a))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(a) {
		t.Fatalf("round trip: got %q", got)
	}
	// The returned slice is a copy: mutating it must not poison the store.
	got[0] = 'X'
	again, err := ps.GetPage(ctx, hashOf(a))
	if err != nil || string(again) != string(a) {
		t.Fatalf("store mutated through returned slice: %q err=%v", again, err)
	}

	if _, err := ps.GetPage(ctx, hashOf([]byte("missing"))); err == nil {
		t.Fatal("want error for missing page")
	}

	st := ps.Stats()
	if st.Pages != 2 {
		t.Fatalf("Pages = %d, want 2", st.Pages)
	}
	if want := int64(len(a) + len(b)); st.PageBytes != want {
		t.Fatalf("PageBytes = %d, want %d", st.PageBytes, want)
	}

	acct := s.Accounting().Snapshot()
	if acct.PagesStored != 2 {
		t.Fatalf("accounting PagesStored = %d, want 2 (dedup hit must not count)", acct.PagesStored)
	}
	if acct.PageBytes != len(a)+len(b) {
		t.Fatalf("accounting PageBytes = %d", acct.PageBytes)
	}
	if acct.BlobBytesRead != 2*len(a) {
		t.Fatalf("accounting BlobBytesRead = %d, want %d", acct.BlobBytesRead, 2*len(a))
	}
}

func TestPageStoreManifests(t *testing.T) {
	s := NewServer(NoLatency)
	ps := s.PageStore()
	ctx := context.Background()

	if err := ps.PutManifest(ctx, "base@1", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := ps.PutManifest(ctx, "base@2", []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	// Versions are immutable: re-publishing the same key must fail.
	err := ps.PutManifest(ctx, "base@1", []byte(`{"v":9}`))
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("want already-exists error, got %v", err)
	}

	got, err := ps.GetManifest(ctx, "base@2")
	if err != nil || string(got) != `{"v":2}` {
		t.Fatalf("GetManifest: %q, %v", got, err)
	}
	if _, err := ps.GetManifest(ctx, "nope"); err == nil {
		t.Fatal("want error for missing manifest")
	}

	keys, err := ps.ListManifests(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "base@1" || keys[1] != "base@2" {
		t.Fatalf("ListManifests = %v", keys)
	}
	if st := ps.Stats(); st.Manifests != 2 {
		t.Fatalf("Manifests = %d", st.Manifests)
	}
}

func TestPageStoreRespectsContext(t *testing.T) {
	s := NewServer(PaperLatency(1))
	ps := s.PageStore()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ps.PutPage(ctx, hashOf([]byte("x")), []byte("x")); err == nil {
		t.Fatal("cancelled context must abort PutPage")
	}
	if st := ps.Stats(); st.Pages != 0 {
		t.Fatalf("aborted put stored a page: %+v", st)
	}
}

func TestPageStoreSingletonAndEnumeration(t *testing.T) {
	s := NewServer(NoLatency)
	if s.PageStore() != s.PageStore() {
		t.Fatal("PageStore must be a per-server singleton")
	}
	ctx := context.Background()
	ps := s.PageStore()
	for _, d := range [][]byte{[]byte("1"), []byte("2"), []byte("3")} {
		if _, err := ps.PutPage(ctx, hashOf(d), d); err != nil {
			t.Fatal(err)
		}
	}
	hs := ps.sortedPageHashes()
	if len(hs) != 3 {
		t.Fatalf("sortedPageHashes = %v", hs)
	}
	for i := 1; i < len(hs); i++ {
		if hs[i-1] >= hs[i] {
			t.Fatal("hashes not sorted")
		}
	}
}
