package simdb

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/corpus"
)

func faultTestServer(latency LatencyProfile) *Server {
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(12), 7)
	s := NewServer(latency)
	s.LoadTables("tenant", ds.Test)
	return s
}

func mustConnect(t *testing.T, s *Server) *Conn {
	t.Helper()
	conn, err := s.Connect(context.Background(), "tenant")
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

func TestTransientClassification(t *testing.T) {
	base := fmt.Errorf("socket reset")
	te := Transient("scan", base)
	if !IsTransient(te) {
		t.Fatal("Transient(...) must classify as transient")
	}
	if !IsTransient(fmt.Errorf("stage p2: %w", te)) {
		t.Fatal("wrapped transient errors must stay transient")
	}
	if !errors.Is(te, base) {
		t.Fatal("Unwrap must expose the cause")
	}
	if IsTransient(base) {
		t.Fatal("plain errors are not transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil is not transient")
	}
}

// TestFaultProfileDeterminism: two servers with equal profiles and equal
// operation sequences must fail identically — the property the fault
// battery in internal/core relies on.
func TestFaultProfileDeterminism(t *testing.T) {
	run := func() []string {
		s := faultTestServer(NoLatency)
		s.SetFaultProfile(FaultProfile{
			Seed:            42,
			ConnectFailProb: 0.2,
			QueryFailProb:   0.3,
			ScanFailProb:    0.3,
			MidScanDropProb: 0.3,
		})
		var outcomes []string
		ctx := context.Background()
		for i := 0; i < 20; i++ {
			conn, err := s.Connect(ctx, "tenant")
			if err != nil {
				outcomes = append(outcomes, "connect:"+err.Error())
				continue
			}
			tables, err := conn.ListTables(ctx)
			if err != nil {
				outcomes = append(outcomes, "list:"+err.Error())
				conn.Close()
				continue
			}
			tm, err := conn.TableMetadata(ctx, tables[i%len(tables)])
			if err != nil {
				outcomes = append(outcomes, "meta:"+err.Error())
				conn.Close()
				continue
			}
			cols := []string{tm.Columns[0].Name}
			if _, err := conn.ScanColumns(ctx, tm.Name, cols, ScanOptions{Rows: 5}); err != nil {
				outcomes = append(outcomes, "scan:"+err.Error())
			} else {
				outcomes = append(outcomes, "ok")
			}
			conn.Close()
		}
		return outcomes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at op %d: %q vs %q", i, a[i], b[i])
		}
	}
	var failures int
	for _, o := range a {
		if o != "ok" {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("profile with 0.2–0.3 probabilities should have injected at least one fault in 20 ops")
	}
}

func TestConnectFaultAlwaysFires(t *testing.T) {
	s := faultTestServer(NoLatency)
	s.SetFaultProfile(FaultProfile{Seed: 1, ConnectFailProb: 1})
	before := s.Accounting().Snapshot().Faults
	_, err := s.Connect(context.Background(), "tenant")
	if err == nil || !IsTransient(err) {
		t.Fatalf("want transient connect error, got %v", err)
	}
	if got := s.Accounting().Snapshot().Faults; got != before+1 {
		t.Fatalf("faults ledger = %d, want %d", got, before+1)
	}
}

func TestQueryFaultOnMetadataAPIs(t *testing.T) {
	s := faultTestServer(NoLatency)
	conn := mustConnect(t, s)
	defer conn.Close()
	ctx := context.Background()
	tables, err := conn.ListTables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultProfile(FaultProfile{Seed: 1, QueryFailProb: 1})
	if _, err := conn.ListTables(ctx); !IsTransient(err) {
		t.Fatalf("ListTables: want transient, got %v", err)
	}
	if _, err := conn.TableMetadata(ctx, tables[0]); !IsTransient(err) {
		t.Fatalf("TableMetadata: want transient, got %v", err)
	}
	if err := conn.AnalyzeTable(ctx, tables[0], AnalyzeOptions{}); !IsTransient(err) {
		t.Fatalf("AnalyzeTable: want transient, got %v", err)
	}
}

func TestScanFaultUpfront(t *testing.T) {
	s := faultTestServer(NoLatency)
	conn := mustConnect(t, s)
	defer conn.Close()
	ctx := context.Background()
	tables, err := conn.ListTables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := conn.TableMetadata(ctx, tables[0])
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultProfile(FaultProfile{Seed: 1, ScanFailProb: 1})
	before := s.Accounting().Snapshot()
	rows, err := conn.ScanColumns(ctx, tm.Name, []string{tm.Columns[0].Name}, ScanOptions{Rows: 5})
	if !IsTransient(err) {
		t.Fatalf("want transient scan error, got %v", err)
	}
	if rows != nil {
		t.Fatal("failed scan must not return rows")
	}
	after := s.Accounting().Snapshot()
	if after.Faults != before.Faults+1 {
		t.Fatalf("faults = %d, want %d", after.Faults, before.Faults+1)
	}
	// An up-front failure transfers nothing: no columns/rows accounted.
	if after.ColumnsScanned != before.ColumnsScanned || after.RowsScanned != before.RowsScanned {
		t.Fatal("failed scan must not account scanned content")
	}
}

func TestMidScanDropDiscardsRows(t *testing.T) {
	s := faultTestServer(NoLatency)
	conn := mustConnect(t, s)
	defer conn.Close()
	ctx := context.Background()
	tables, _ := conn.ListTables(ctx)
	tm, err := conn.TableMetadata(ctx, tables[0])
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultProfile(FaultProfile{Seed: 3, MidScanDropProb: 1})
	before := s.Accounting().Snapshot()
	rows, err := conn.ScanColumns(ctx, tm.Name, []string{tm.Columns[0].Name}, ScanOptions{Rows: 5})
	if !IsTransient(err) {
		t.Fatalf("want transient mid-scan error, got %v", err)
	}
	if rows != nil {
		t.Fatal("dropped scan must not return partial rows")
	}
	after := s.Accounting().Snapshot()
	if after.ColumnsScanned != before.ColumnsScanned {
		t.Fatal("dropped scan must not account scanned columns")
	}
	if after.Queries != before.Queries+1 {
		t.Fatal("the aborted query round trip still counts as a query")
	}
}

// TestSlowQueryOnlyDelays: SlowQueryProb with no failure probabilities must
// never produce errors, only latency.
func TestSlowQueryOnlyDelays(t *testing.T) {
	s := faultTestServer(NoLatency)
	s.SetFaultProfile(FaultProfile{Seed: 5, SlowQueryProb: 1})
	conn := mustConnect(t, s)
	defer conn.Close()
	ctx := context.Background()
	tables, err := conn.ListTables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.TableMetadata(ctx, tables[0]); err != nil {
		t.Fatal(err)
	}
}

func TestZeroProfileDisarms(t *testing.T) {
	s := faultTestServer(NoLatency)
	s.SetFaultProfile(FaultProfile{Seed: 1, ScanFailProb: 1})
	s.SetFaultProfile(FaultProfile{})
	if p := s.FaultProfile(); p.enabled() {
		t.Fatalf("zero profile must disarm, got %+v", p)
	}
	conn := mustConnect(t, s)
	defer conn.Close()
	if _, err := conn.ListTables(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSleepRespectsContext: a cancelled context must abort latency sleeps
// immediately — both long ones and the zero-length ones of NoLatency
// servers, so deadline tests with NoLatency still observe cancellation.
func TestSleepRespectsContext(t *testing.T) {
	lat := LatencyProfile{ConnectionSetup: 10 * time.Second, QueryRoundTrip: 10 * time.Second, SamplingPenalty: 1}
	s := faultTestServer(lat)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := s.Connect(ctx, "tenant"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled connect slept %v", elapsed)
	}

	// Deadline mid-sleep: the sleep must end near the deadline, not after
	// the full 10 s cost.
	dctx, dcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer dcancel()
	start = time.Now()
	if _, err := s.Connect(dctx, "tenant"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline sleep took %v", elapsed)
	}

	// Zero-latency server, already-cancelled context: still observed.
	zs := faultTestServer(NoLatency)
	if _, err := zs.Connect(ctx, "tenant"); !errors.Is(err, context.Canceled) {
		t.Fatalf("NoLatency server must still observe cancellation, got %v", err)
	}
}

func TestAccountingRetryLedger(t *testing.T) {
	s := faultTestServer(NoLatency)
	s.Accounting().AddRetry()
	s.Accounting().AddRetry()
	if got := s.Accounting().Snapshot().Retries; got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	s.Accounting().Reset()
	snap := s.Accounting().Snapshot()
	if snap.Retries != 0 || snap.Faults != 0 {
		t.Fatalf("reset left %+v", snap)
	}
}

// TestOneShotTransientFault: InjectScanFault with a Transient error is the
// canonical "retry succeeds" fixture — the first scan fails, the second
// works.
func TestOneShotTransientFault(t *testing.T) {
	s := faultTestServer(NoLatency)
	conn := mustConnect(t, s)
	defer conn.Close()
	ctx := context.Background()
	tables, _ := conn.ListTables(ctx)
	tm, err := conn.TableMetadata(ctx, tables[0])
	if err != nil {
		t.Fatal(err)
	}
	s.InjectScanFault(tm.Name, Transient("scan", fmt.Errorf("blip")))
	cols := []string{tm.Columns[0].Name}
	if _, err := conn.ScanColumns(ctx, tm.Name, cols, ScanOptions{Rows: 3}); !IsTransient(err) {
		t.Fatalf("first scan: want transient, got %v", err)
	}
	if _, err := conn.ScanColumns(ctx, tm.Name, cols, ScanOptions{Rows: 3}); err != nil {
		t.Fatalf("second scan should succeed, got %v", err)
	}
}
