package simdb

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"
)

// HistogramKind distinguishes the two histogram shapes databases build
// (§4.1 lists histogram type as a non-textual metadata feature).
type HistogramKind int

const (
	// EqualHeight buckets hold (approximately) equal numbers of values.
	EqualHeight HistogramKind = iota
	// EqualWidth buckets span equal numeric ranges; only built when the
	// column is predominantly numeric.
	EqualWidth
)

// String implements fmt.Stringer.
func (k HistogramKind) String() string {
	switch k {
	case EqualHeight:
		return "equal-height"
	case EqualWidth:
		return "equal-width"
	default:
		return fmt.Sprintf("HistogramKind(%d)", int(k))
	}
}

// Bucket is one histogram bucket.
type Bucket struct {
	Lower, Upper string
	Count        int
}

// Histogram summarizes a column's value distribution.
type Histogram struct {
	Kind    HistogramKind
	Buckets []Bucket
}

// ColumnStats is the statistics block produced by ANALYZE TABLE: the
// "technical level" and "content level" metadata (§1) that the metadata
// tower consumes without ever scanning the column at detection time.
type ColumnStats struct {
	RowCount     int
	NullCount    int
	NDV          int // number of distinct values
	MinLen       int
	MaxLen       int
	AvgLen       float64
	NumericRatio float64 // fraction of non-null values that parse as numbers
	NumericMin   float64 // valid only when NumericRatio > 0
	NumericMax   float64
	Histogram    *Histogram
}

// AnalyzeOptions configures ANALYZE TABLE.
type AnalyzeOptions struct {
	// Buckets is the histogram bucket count (default 8).
	Buckets int
}

// AnalyzeTable computes statistics and histograms for every column of a
// table, mimicking MySQL's ANALYZE TABLE ... UPDATE HISTOGRAM. The work
// happens inside the database server, so the detection service pays only a
// query round trip, not a per-row transfer; but the stats become part of the
// metadata returned by TableMetadata afterwards.
func (c *Conn) AnalyzeTable(ctx context.Context, table string, opts AnalyzeOptions) (err error) {
	start := time.Now()
	defer func() { observeOp("analyze", start, err) }()
	if err := c.check(); err != nil {
		return err
	}
	st, ok := c.db.tables[table]
	if !ok {
		return fmt.Errorf("simdb: unknown table %s.%s", c.db.name, table)
	}
	buckets := opts.Buckets
	if buckets <= 0 {
		buckets = 8
	}
	d := c.server.decide(opQuery, c.db.name+"."+table)
	cost := c.server.latency.QueryRoundTrip + time.Duration(st.rows)*c.server.latency.PerCell/10
	if err := c.server.latency.sleep(ctx, scaleDur(cost, d.slowFactor)); err != nil {
		return err
	}
	c.server.acct.addQuery()
	if d.err != nil {
		return d.err
	}
	for _, col := range st.columns {
		stats := computeStats(col.values, buckets)
		col.statsMu.Lock()
		col.stats = stats
		col.statsMu.Unlock()
	}
	return nil
}

// ComputeStats derives ColumnStats from raw values ("" = NULL). It is the
// same computation AnalyzeTable performs server-side; it is exported so that
// training code can attach identical statistics to corpus tables without a
// database round trip.
func ComputeStats(values []string, buckets int) *ColumnStats {
	return computeStats(values, buckets)
}

// computeStats derives ColumnStats from raw values ("" = NULL).
func computeStats(values []string, buckets int) *ColumnStats {
	s := &ColumnStats{RowCount: len(values)}
	distinct := make(map[string]bool)
	var nonNull []string
	numeric := 0
	var nums []float64
	totalLen := 0
	s.MinLen = 1 << 30
	for _, v := range values {
		if v == "" {
			s.NullCount++
			continue
		}
		nonNull = append(nonNull, v)
		distinct[v] = true
		if len(v) < s.MinLen {
			s.MinLen = len(v)
		}
		if len(v) > s.MaxLen {
			s.MaxLen = len(v)
		}
		totalLen += len(v)
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			numeric++
			nums = append(nums, f)
		}
	}
	s.NDV = len(distinct)
	if len(nonNull) == 0 {
		s.MinLen = 0
		return s
	}
	s.AvgLen = float64(totalLen) / float64(len(nonNull))
	s.NumericRatio = float64(numeric) / float64(len(nonNull))
	if len(nums) > 0 {
		s.NumericMin, s.NumericMax = nums[0], nums[0]
		for _, f := range nums {
			if f < s.NumericMin {
				s.NumericMin = f
			}
			if f > s.NumericMax {
				s.NumericMax = f
			}
		}
	}
	if s.NumericRatio >= 0.9 {
		s.Histogram = equalWidthHistogram(nums, buckets)
	} else {
		s.Histogram = equalHeightHistogram(nonNull, buckets)
	}
	return s
}

func equalWidthHistogram(nums []float64, buckets int) *Histogram {
	h := &Histogram{Kind: EqualWidth}
	if len(nums) == 0 {
		return h
	}
	lo, hi := nums[0], nums[0]
	for _, f := range nums {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi == lo {
		h.Buckets = []Bucket{{Lower: fmtNum(lo), Upper: fmtNum(hi), Count: len(nums)}}
		return h
	}
	width := (hi - lo) / float64(buckets)
	counts := make([]int, buckets)
	for _, f := range nums {
		b := int((f - lo) / width)
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	for i, cnt := range counts {
		h.Buckets = append(h.Buckets, Bucket{
			Lower: fmtNum(lo + float64(i)*width),
			Upper: fmtNum(lo + float64(i+1)*width),
			Count: cnt,
		})
	}
	return h
}

func equalHeightHistogram(values []string, buckets int) *Histogram {
	h := &Histogram{Kind: EqualHeight}
	sorted := append([]string(nil), values...)
	sort.Strings(sorted)
	n := len(sorted)
	if n == 0 {
		return h
	}
	if buckets > n {
		buckets = n
	}
	per := n / buckets
	rem := n % buckets
	start := 0
	for b := 0; b < buckets; b++ {
		size := per
		if b < rem {
			size++
		}
		end := start + size
		h.Buckets = append(h.Buckets, Bucket{Lower: sorted[start], Upper: sorted[end-1], Count: size})
		start = end
	}
	return h
}

func fmtNum(f float64) string { return strconv.FormatFloat(f, 'g', 6, 64) }
