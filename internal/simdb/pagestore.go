package simdb

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// PageStore is a content-addressed blob store hosted by the simulated
// database — the storage half of the deduplicated model registry. Pages are
// keyed by their sha256 and stored at most once: publishing a fine-tuned
// model variant whose encoder pages match the base model's pays round trips
// only for its manifest and the pages that actually changed.
//
// Every operation pays the server's latency model and is recorded in the
// accounting ledger, so registry traffic shows up in the same intrusiveness
// numbers as detection scans. Operations are also subject to the server's
// probabilistic fault injection (classified as queries), which the registry's
// callers must tolerate like any other database client.
type PageStore struct {
	server *Server

	mu        sync.Mutex
	pages     map[PageHash][]byte
	manifests map[string][]byte
	order     []string // manifest keys in first-put order
}

// PageHash identifies a page by its sha256 digest.
type PageHash [32]byte

func (h PageHash) String() string { return fmt.Sprintf("%x", h[:]) }

// PageStore returns the server's page store, creating it on first use.
func (s *Server) PageStore() *PageStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pageStore == nil {
		s.pageStore = &PageStore{
			server:    s,
			pages:     make(map[PageHash][]byte),
			manifests: make(map[string][]byte),
		}
	}
	return s.pageStore
}

// blobTransferUnit is how many blob bytes cost one PerCell of transfer
// latency; pages move in bulk, unlike the small per-cell values of a scan.
const blobTransferUnit = 256

func (p *PageStore) payTransfer(ctx context.Context, op, detail string, n int) error {
	d := p.server.decide(opQuery, detail)
	lat := p.server.latency
	transfer := time.Duration(n/blobTransferUnit) * lat.PerCell
	if err := lat.sleep(ctx, scaleDur(lat.QueryRoundTrip+transfer, d.slowFactor)); err != nil {
		return err
	}
	p.server.acct.addQuery()
	return d.err
}

// PutPage stores data under its hash unless an identical page is already
// present. It reports whether the page was newly stored; a deduplicated put
// pays only the existence-check round trip, not the transfer.
func (p *PageStore) PutPage(ctx context.Context, hash PageHash, data []byte) (added bool, err error) {
	start := time.Now()
	defer func() { observeOp("page_put", start, err) }()
	p.mu.Lock()
	_, exists := p.pages[hash]
	p.mu.Unlock()
	n := len(data)
	if exists {
		n = 0 // hash-only existence check, no payload on the wire
	}
	if err := p.payTransfer(ctx, "page_put", "pagestore/"+hash.String(), n); err != nil {
		return false, err
	}
	if exists {
		return false, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, raced := p.pages[hash]; raced {
		return false, nil
	}
	p.pages[hash] = append([]byte(nil), data...)
	p.server.acct.addPagePut(len(data))
	pagesStoredTotal.Inc()
	pageBytesStored.Add(int64(len(data)))
	return true, nil
}

// GetPage retrieves the page with the given hash.
func (p *PageStore) GetPage(ctx context.Context, hash PageHash) (_ []byte, err error) {
	start := time.Now()
	defer func() { observeOp("page_get", start, err) }()
	p.mu.Lock()
	data, ok := p.pages[hash]
	p.mu.Unlock()
	n := 0
	if ok {
		n = len(data)
	}
	if err := p.payTransfer(ctx, "page_get", "pagestore/"+hash.String(), n); err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("simdb: page %s not found", hash)
	}
	p.server.acct.addBlobRead(len(data))
	return append([]byte(nil), data...), nil
}

// PutManifest stores an opaque manifest blob under a caller-chosen key,
// failing if the key already exists — registry versions are immutable.
func (p *PageStore) PutManifest(ctx context.Context, key string, data []byte) (err error) {
	start := time.Now()
	defer func() { observeOp("manifest_put", start, err) }()
	if err := p.payTransfer(ctx, "manifest_put", "pagestore/manifest/"+key, len(data)); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.manifests[key]; dup {
		return fmt.Errorf("simdb: manifest %q already exists", key)
	}
	p.manifests[key] = append([]byte(nil), data...)
	p.order = append(p.order, key)
	return nil
}

// GetManifest retrieves a manifest blob by key.
func (p *PageStore) GetManifest(ctx context.Context, key string) (_ []byte, err error) {
	start := time.Now()
	defer func() { observeOp("manifest_get", start, err) }()
	p.mu.Lock()
	data, ok := p.manifests[key]
	p.mu.Unlock()
	n := 0
	if ok {
		n = len(data)
	}
	if err := p.payTransfer(ctx, "manifest_get", "pagestore/manifest/"+key, n); err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("simdb: manifest %q not found", key)
	}
	p.server.acct.addBlobRead(len(data))
	return append([]byte(nil), data...), nil
}

// ListManifests returns all manifest keys in first-put order (one query).
func (p *PageStore) ListManifests(ctx context.Context) (_ []string, err error) {
	start := time.Now()
	defer func() { observeOp("manifest_get", start, err) }()
	if err := p.payTransfer(ctx, "manifest_list", "pagestore/manifests", 0); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.order...), nil
}

// RestorePage installs a page without paying client latency or accounting —
// it models server-side crash recovery (replaying a redo log), not client
// traffic. Existing pages are left alone, preserving dedup counts.
func (p *PageStore) RestorePage(hash PageHash, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.pages[hash]; ok {
		return
	}
	p.pages[hash] = append([]byte(nil), data...)
	pagesStoredTotal.Inc()
	pageBytesStored.Add(int64(len(data)))
}

// RestoreManifest installs a manifest during server-side recovery. Duplicate
// keys are ignored (the journal may be replayed more than once).
func (p *PageStore) RestoreManifest(key string, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.manifests[key]; ok {
		return
	}
	p.manifests[key] = append([]byte(nil), data...)
	p.order = append(p.order, key)
}

// PageStoreStats summarizes physical storage. Logical (pre-dedup) sizes are
// the registry's concern; the store only knows what it actually holds.
type PageStoreStats struct {
	Pages       int   `json:"pages"`
	PageBytes   int64 `json:"page_bytes"`
	Manifests   int   `json:"manifests"`
	UniqueBytes int64 `json:"-"` // alias of PageBytes, kept for clarity at call sites
}

// Stats reports physical page and manifest counts. It is a local observation
// (no simulated round trip): servers surface their own storage metrics.
func (p *PageStore) Stats() PageStoreStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var bytes int64
	for _, d := range p.pages {
		bytes += int64(len(d))
	}
	return PageStoreStats{
		Pages:       len(p.pages),
		PageBytes:   bytes,
		Manifests:   len(p.manifests),
		UniqueBytes: bytes,
	}
}

// sortedPageHashes is a test helper surface: deterministic page enumeration.
func (p *PageStore) sortedPageHashes() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.pages))
	for h := range p.pages {
		out = append(out, h.String())
	}
	sort.Strings(out)
	return out
}
