// Package baselines implements the two comparison systems of §6.2: TURL and
// Doduo, reproduced as single-phase content-based detectors. Both must scan
// every column's content to predict (which is what makes them intrusive and
// slow in the cloud setting), and both are Transformer encoders trained with
// the same fine-tuning recipe as ADTD. They differ in how they wire
// attention and in model size:
//
//   - TURL uses a model the same size as Taste's and restricts attention so
//     that each column's cells see the table-level metadata and their own
//     column's metadata/cells, but not other columns (§6.4: "TURL computes
//     the corresponding cross-attention by only considering the current
//     column's metadata").
//
//   - Doduo mixes column metadata into the value stream as plain tokens and
//     attends globally with no structural mask, using a larger encoder
//     (BERT-base-proportioned: more layers and wider hidden state).
//
// Neither consumes the non-textual metadata features Mᶜₙ — per §6.4, Taste
// "uses more abundant metadata than TURL and Doduo".
package baselines

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"

	"repro/internal/adtd"
	"repro/internal/corpus"
	"repro/internal/metafeat"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
	"repro/internal/train"
)

// Variant selects the baseline architecture.
type Variant int

const (
	// TURL is the per-column-attention baseline, same size as Taste.
	TURL Variant = iota
	// Doduo is the metadata-in-values baseline with a larger encoder.
	Doduo
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == TURL {
		return "TURL"
	}
	return "Doduo"
}

// Config sizes a baseline model.
type Config struct {
	Layers       int
	Heads        int
	MaxSeq       int
	Intermediate int
	Hidden       int
	ColTokens    int
	CellTokens   int
	ClsHidden    int
}

// TURLScale mirrors Taste's repro-scale encoder (the paper's TURL uses the
// same L=4/A=12/H=312 TinyBERT sizing as Taste).
func TURLScale() Config {
	return Config{Layers: 2, Heads: 4, MaxSeq: 768, Intermediate: 128, Hidden: 64, ColTokens: 6, CellTokens: 3, ClsHidden: 64}
}

// DoduoScale is proportionally larger, standing in for BERT-base
// (L=12/H=768/108M params vs. TinyBERT's 4/312/14.5M).
func DoduoScale() Config {
	return Config{Layers: 3, Heads: 4, MaxSeq: 768, Intermediate: 192, Hidden: 96, ColTokens: 6, CellTokens: 3, ClsHidden: 96}
}

// Model is a single-tower content-based detector.
type Model struct {
	Variant Variant
	Cfg     Config
	Types   *adtd.TypeSpace
	Tok     *tokenizer.Tokenizer

	TokEmbed *nn.Embedding
	PosEmbed *nn.Embedding
	Blocks   []*nn.TransformerBlock
	Cls      *nn.MLPClassifier
}

// New creates a randomly initialized baseline model.
func New(v Variant, cfg Config, tok *tokenizer.Tokenizer, types *adtd.TypeSpace, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := &Model{
		Variant:  v,
		Cfg:      cfg,
		Types:    types,
		Tok:      tok,
		TokEmbed: nn.NewEmbedding(tok.VocabSize(), cfg.Hidden, rng),
		PosEmbed: nn.NewEmbedding(cfg.MaxSeq, cfg.Hidden, rng),
		Cls:      nn.NewMLPClassifier(cfg.Hidden, cfg.ClsHidden, types.Len(), rng),
	}
	// Sparse multi-label targets: start the output layer biased toward
	// "not this type" (same rationale as in the ADTD model).
	m.Cls.Out.B.Fill(-3)
	for i := 0; i < cfg.Layers; i++ {
		m.Blocks = append(m.Blocks, nn.NewTransformerBlock(cfg.Hidden, cfg.Heads, cfg.Intermediate, rng))
	}
	return m
}

// Params returns all trainable parameters.
func (m *Model) Params() []*tensor.Tensor {
	mods := []nn.Module{m.TokEmbed, m.PosEmbed}
	for _, b := range m.Blocks {
		mods = append(mods, b)
	}
	mods = append(mods, m.Cls)
	return nn.CollectParams(mods...)
}

// NumParams returns the scalar parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Data)
	}
	return n
}

// SetEval freezes parameters for concurrent inference.
func (m *Model) SetEval() { m.setGrad(false) }

// SetTrain re-enables gradient tracking.
func (m *Model) SetTrain() { m.setGrad(true) }

func (m *Model) setGrad(v bool) {
	for _, p := range m.Params() {
		p.SetRequiresGrad(v)
	}
}

// Save serializes all parameters.
func (m *Model) Save(w io.Writer) error { return tensor.WriteTensors(w, m.Params()) }

// Load restores parameters saved by Save.
func (m *Model) Load(r io.Reader) error { return tensor.ReadTensors(r, m.Params()) }

// input is a serialized table with per-column anchors and spans.
type input struct {
	ids     []int
	colOf   []int // -1 for table-level positions
	anchors []int
	spans   [][2]int // per-column [start, end) ranges, mean-pooled
}

// buildInput serializes one table. withContent=false blanks column content
// (the strict-privacy inference setting of Table 4). n is the number of
// non-empty cell values per column.
func (m *Model) buildInput(t *metafeat.TableInfo, n int, withContent bool) *input {
	in := &input{}
	push := func(id, col int) {
		in.ids = append(in.ids, id)
		in.colOf = append(in.colOf, col)
	}
	push(m.Tok.MustID(tokenizer.TAB), -1)
	for _, id := range capIDs(m.Tok.Encode(t.Name+" "+t.Comment), 10) {
		push(id, -1)
	}
	for ci, c := range t.Columns {
		start := len(in.ids)
		in.anchors = append(in.anchors, start)
		push(m.Tok.MustID(tokenizer.COL), ci)
		meta := c.Name
		if c.Comment != "" {
			meta += " " + c.Comment
		}
		meta += " " + strings.ToLower(c.DataType)
		for _, id := range capIDs(m.Tok.Encode(meta), m.Cfg.ColTokens) {
			push(id, ci)
		}
		if withContent {
			used := 0
			for _, v := range c.Values {
				if used >= n {
					break
				}
				if v == "" {
					continue
				}
				used++
				push(m.Tok.MustID(tokenizer.CLS), ci)
				push(m.Tok.ID(adtd.LengthBucketToken(len(v))), ci)
				for _, id := range capIDs(m.Tok.Encode(v), m.Cfg.CellTokens) {
					push(id, ci)
				}
			}
		}
		in.spans = append(in.spans, [2]int{start, len(in.ids)})
	}
	if len(in.ids) > m.Cfg.MaxSeq {
		in.ids = in.ids[:m.Cfg.MaxSeq]
		in.colOf = in.colOf[:m.Cfg.MaxSeq]
		var kept []int
		var keptSpans [][2]int
		for i, a := range in.anchors {
			if a < m.Cfg.MaxSeq {
				kept = append(kept, a)
				sp := in.spans[i]
				if sp[1] > m.Cfg.MaxSeq {
					sp[1] = m.Cfg.MaxSeq
				}
				keptSpans = append(keptSpans, sp)
			}
		}
		in.anchors = kept
		in.spans = keptSpans
	}
	return in
}

func capIDs(ids []int, max int) []int {
	if len(ids) > max {
		return ids[:max]
	}
	return ids
}

// mask builds the TURL attention restriction: a position belonging to
// column c attends to table-level positions and to positions of column c.
// Doduo attends globally (nil mask).
func (m *Model) mask(in *input) *tensor.Tensor {
	if m.Variant == Doduo {
		return nil
	}
	L := len(in.ids)
	multi := false
	for _, c := range in.colOf {
		if c > 0 {
			multi = true
			break
		}
	}
	if !multi {
		return nil
	}
	mask := tensor.New(L, L)
	neg := math.Inf(-1)
	for i := 0; i < L; i++ {
		row := mask.Row(i)
		for j := 0; j < L; j++ {
			ci, cj := in.colOf[i], in.colOf[j]
			if ci == -1 || cj == -1 || ci == cj {
				continue
			}
			row[j] = neg
		}
	}
	return mask
}

// forward encodes the input and returns per-column logits.
func (m *Model) forward(in *input) *tensor.Tensor {
	pos := make([]int, len(in.ids))
	for i := range pos {
		p := i
		if p >= m.Cfg.MaxSeq {
			p = m.Cfg.MaxSeq - 1
		}
		pos[i] = p
	}
	x := tensor.Add(m.TokEmbed.Forward(in.ids), m.PosEmbed.Forward(pos))
	mask := m.mask(in)
	for _, b := range m.Blocks {
		x = b.SelfForward(x, mask)
	}
	// Each column's representation is the mean over its token span.
	pooled := make([]*tensor.Tensor, len(in.spans))
	for i, sp := range in.spans {
		pooled[i] = tensor.MeanRows(tensor.SliceRows(x, sp[0], sp[1]))
	}
	return m.Cls.Forward(tensor.ConcatRows(pooled...))
}

// Predict returns per-column type probabilities. withContent=false runs the
// strict-privacy setting where content is blanked at inference (Table 4).
func (m *Model) Predict(t *metafeat.TableInfo, n int, withContent bool) [][]float64 {
	in := m.buildInput(t, n, withContent)
	logits := m.forward(in)
	return adtd.Sigmoid(logits)
}

// TrainConfig mirrors adtd.TrainConfig for the baselines.
type TrainConfig struct {
	Epochs int
	// Workers is the number of data-parallel gradient workers (≤0 → 1);
	// GradAccum accumulates chunks per worker into each optimizer step.
	Workers   int
	GradAccum int
	LR        float64
	// FinalLR, when positive, decays the learning rate exponentially from
	// LR to FinalLR across the epochs.
	FinalLR        float64
	PosWeight      float64
	WeightDecay    float64
	SplitThreshold int
	Cells          int
	Seed           int64
	Log            io.Writer
}

// DefaultTrainConfig returns the repro-scale baseline training settings.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 4, LR: 1e-3, PosWeight: 4, SplitThreshold: 20, Cells: 10, Seed: 1}
}

// chunk is one fine-tuning item: a table chunk plus per-column labels.
type chunk struct {
	info   *metafeat.TableInfo
	labels [][]string
}

// buildChunks splits labelled tables into training chunks.
func buildChunks(tables []*corpus.Table, splitThreshold int) []chunk {
	var chunks []chunk
	for _, t := range tables {
		info := metafeat.FromCorpusTable(t, false, 0)
		labelOf := make(map[*metafeat.ColumnInfo][]string, len(t.Columns))
		for i, c := range info.Columns {
			labelOf[c] = t.Columns[i].Labels
		}
		for _, part := range info.Split(splitThreshold) {
			ch := chunk{info: part}
			for _, c := range part.Columns {
				ch.labels = append(ch.labels, labelOf[c])
			}
			chunks = append(chunks, ch)
		}
	}
	return chunks
}

// chunkLoss builds the weighted BCE loss for one table chunk.
func (m *Model) chunkLoss(ch chunk, cells int, posWeight float64) *tensor.Tensor {
	in := m.buildInput(ch.info, cells, true)
	logits := m.forward(in)
	targets := make([][]float64, len(in.anchors))
	for i := range in.anchors {
		targets[i] = m.Types.Targets(ch.labels[i])
	}
	return tensor.WeightedBCEWithLogits(logits, tensor.FromRows(targets), posWeight)
}

// trainingReplica builds a worker-private model aliasing the canonical
// weights but owning its gradient state (see DESIGN.md §10).
func (m *Model) trainingReplica() *Model {
	r := New(m.Variant, m.Cfg, m.Tok, m.Types, 0)
	tensor.AliasData(r.Params(), m.Params())
	r.SetTrain()
	return r
}

// FineTune trains the baseline on labelled corpus tables (content included,
// as both baselines require). Returns the mean loss of the final epoch.
func FineTune(m *Model, tables []*corpus.Table, cfg TrainConfig) (float64, error) {
	if cfg.Epochs <= 0 {
		return 0, fmt.Errorf("baselines: Epochs must be positive")
	}
	if len(tables) == 0 {
		return 0, fmt.Errorf("baselines: no training tables")
	}
	if cfg.Cells <= 0 {
		cfg.Cells = 10
	}
	chunks := buildChunks(tables, cfg.SplitThreshold)
	m.SetTrain()
	defer m.SetEval()

	spec := train.Spec{
		Params: m.Params(),
		Items:  len(chunks),
		NewWorker: func(w int) (train.Worker, error) {
			mm := m
			if w > 0 {
				mm = m.trainingReplica()
			}
			return train.Worker{
				Params: mm.Params(),
				Step: func(items []int, rng *rand.Rand) *tensor.Tensor {
					return mm.chunkLoss(chunks[items[0]], cfg.Cells, cfg.PosWeight)
				},
			}, nil
		},
	}
	return train.Run(spec, train.Config{
		Epochs:      cfg.Epochs,
		Workers:     cfg.Workers,
		GradAccum:   cfg.GradAccum,
		Shuffle:     true,
		LR:          cfg.LR,
		FinalLR:     cfg.FinalLR,
		ClipNorm:    1,
		WeightDecay: cfg.WeightDecay,
		Seed:        cfg.Seed,
		Log:         cfg.Log,
		LogPrefix:   fmt.Sprintf("%s fine-tune", m.Variant),
	})
}
