package baselines

import (
	"math"
	"testing"

	"repro/internal/adtd"
	"repro/internal/corpus"
	"repro/internal/tensor"
	"repro/internal/train"
)

func twinModels(t *testing.T) (*Model, *Model, *corpus.Dataset) {
	t.Helper()
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(6), 1)
	tok := adtd.BuildVocabulary(ds.Train, ds.Registry.Names(), 2000)
	types := adtd.NewTypeSpace(ds.Registry.Names())
	cfg := TURLScale()
	cfg.Layers, cfg.Hidden, cfg.Heads, cfg.Intermediate = 1, 32, 2, 48
	cfg.ClsHidden = 32
	return New(TURL, cfg, tok, types, 5), New(TURL, cfg, tok, types, 5), ds
}

func requireSameParams(t *testing.T, a, b *Model, what string) {
	t.Helper()
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		for j := range ap[i].Data {
			if ap[i].Data[j] != bp[i].Data[j] {
				t.Fatalf("%s: param %d elem %d differs: %v vs %v", what, i, j, ap[i].Data[j], bp[i].Data[j])
			}
		}
	}
}

// TestFineTuneWorkers1BitExactVsSerial pins the serial-equivalence contract
// for the baseline fine-tuning loop.
func TestFineTuneWorkers1BitExactVsSerial(t *testing.T) {
	serial, trained, ds := twinModels(t)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	cfg.Cells = 4
	cfg.FinalLR = 2e-4
	cfg.WeightDecay = 1e-4
	cfg.Seed = 13

	chunks := buildChunks(ds.Train, cfg.SplitThreshold)
	if len(chunks) < 2 {
		t.Fatalf("need ≥2 chunks, got %d", len(chunks))
	}
	serial.SetTrain()
	opt := tensor.NewAdam(serial.Params(), cfg.LR)
	opt.ClipNorm = 1
	opt.WeightDecay = cfg.WeightDecay
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		opt.LR = train.EpochLR(cfg.LR, cfg.FinalLR, epoch, cfg.Epochs)
		for _, item := range train.EpochPerm(cfg.Seed, epoch, len(chunks)) {
			opt.ZeroGrads()
			loss := serial.chunkLoss(chunks[item], cfg.Cells, cfg.PosWeight)
			loss.Backward()
			opt.Step()
			tensor.ReleaseGraph(loss)
		}
	}
	serial.SetEval()

	cfg.Workers = 1
	if _, err := FineTune(trained, ds.Train, cfg); err != nil {
		t.Fatal(err)
	}
	requireSameParams(t, trained, serial, "baselines workers=1 vs serial")
}

// TestFineTuneMultiWorkerDeterministic runs a multi-worker fine-tune twice
// (also exercised under -race) and requires identical final parameters.
func TestFineTuneMultiWorkerDeterministic(t *testing.T) {
	a, b, ds := twinModels(t)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	cfg.Cells = 4
	cfg.Workers = 2
	cfg.GradAccum = 2
	lossA, err := FineTune(a, ds.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lossB, err := FineTune(b, ds.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lossA != lossB || math.IsNaN(lossA) {
		t.Fatalf("multi-worker losses differ or NaN: %v vs %v", lossA, lossB)
	}
	requireSameParams(t, a, b, "baselines identical (seed,workers) runs")
}
