package baselines

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/adtd"
	"repro/internal/corpus"
	"repro/internal/metafeat"
)

func tiny(t *testing.T, v Variant) (*Model, *corpus.Dataset) {
	t.Helper()
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(30), 3)
	tok := adtd.BuildVocabulary(ds.Train, ds.Registry.Names(), 2000)
	types := adtd.NewTypeSpace(ds.Registry.Names())
	cfg := TURLScale()
	if v == Doduo {
		cfg = DoduoScale()
	}
	cfg.Layers, cfg.Hidden, cfg.Heads, cfg.Intermediate, cfg.ClsHidden = 1, 32, 2, 48, 32
	m := New(v, cfg, tok, types, 5)
	m.SetEval()
	return m, ds
}

func TestVariantString(t *testing.T) {
	if TURL.String() != "TURL" || Doduo.String() != "Doduo" {
		t.Fatal("variant strings wrong")
	}
}

func TestDoduoBiggerThanTURL(t *testing.T) {
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(10), 1)
	tok := adtd.BuildVocabulary(ds.Train, ds.Registry.Names(), 1000)
	types := adtd.NewTypeSpace(ds.Registry.Names())
	turl := New(TURL, TURLScale(), tok, types, 1)
	doduo := New(Doduo, DoduoScale(), tok, types, 1)
	if doduo.NumParams() <= turl.NumParams() {
		t.Fatalf("Doduo (%d params) must be larger than TURL (%d)", doduo.NumParams(), turl.NumParams())
	}
}

func TestPredictShapes(t *testing.T) {
	for _, v := range []Variant{TURL, Doduo} {
		m, ds := tiny(t, v)
		info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
		probs := m.Predict(info, 5, true)
		if len(probs) != len(info.Columns) {
			t.Fatalf("%v: probs rows = %d, want %d", v, len(probs), len(info.Columns))
		}
		for _, row := range probs {
			if len(row) != m.Types.Len() {
				t.Fatalf("%v: row width %d", v, len(row))
			}
			for _, p := range row {
				if p < 0 || p > 1 || math.IsNaN(p) {
					t.Fatalf("%v: bad probability %v", v, p)
				}
			}
		}
	}
}

func TestPredictWithoutContentDiffers(t *testing.T) {
	m, ds := tiny(t, TURL)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	with := m.Predict(info, 5, true)
	without := m.Predict(info, 5, false)
	same := true
	for i := range with {
		for j := range with[i] {
			if math.Abs(with[i][j]-without[i][j]) > 1e-12 {
				same = false
			}
		}
	}
	if same {
		t.Fatal("blanking content must change predictions")
	}
}

func TestTURLMaskRestrictsColumns(t *testing.T) {
	m, _ := tiny(t, TURL)
	info := &metafeat.TableInfo{
		Name: "t",
		Columns: []*metafeat.ColumnInfo{
			{Name: "a", DataType: "VARCHAR", Values: []string{"x"}},
			{Name: "b", DataType: "VARCHAR", Values: []string{"y"}},
		},
	}
	in := m.buildInput(info, 1, true)
	mask := m.mask(in)
	if mask == nil {
		t.Fatal("TURL multi-column input needs a mask")
	}
	for i := range in.ids {
		for j := range in.ids {
			ci, cj := in.colOf[i], in.colOf[j]
			blocked := math.IsInf(mask.At(i, j), -1)
			if ci >= 0 && cj >= 0 && ci != cj && !blocked {
				t.Fatalf("cross-column attention %d→%d not blocked", i, j)
			}
			if (ci == -1 || cj == -1 || ci == cj) && blocked {
				t.Fatalf("allowed attention %d→%d blocked", i, j)
			}
		}
	}
}

func TestDoduoNoMask(t *testing.T) {
	m, ds := tiny(t, Doduo)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	if m.mask(m.buildInput(info, 2, true)) != nil {
		t.Fatal("Doduo must attend globally")
	}
}

func TestInputTruncationKeepsAnchorsValid(t *testing.T) {
	m, _ := tiny(t, Doduo)
	m.Cfg.MaxSeq = 30
	var cols []*metafeat.ColumnInfo
	for i := 0; i < 20; i++ {
		cols = append(cols, &metafeat.ColumnInfo{Name: "column_with_long_name", DataType: "VARCHAR", Values: []string{"some value", "other"}})
	}
	in := m.buildInput(&metafeat.TableInfo{Name: "wide", Columns: cols}, 2, true)
	if len(in.ids) > 30 {
		t.Fatalf("sequence %d exceeds MaxSeq", len(in.ids))
	}
	for _, a := range in.anchors {
		if a >= len(in.ids) {
			t.Fatalf("anchor %d beyond sequence", a)
		}
	}
}

func TestFineTuneReducesLoss(t *testing.T) {
	m, ds := tiny(t, TURL)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	first, err := FineTune(m, ds.Train[:15], cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Epochs = 3
	cfg.Seed = 2
	last, err := FineTune(m, ds.Train[:15], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if last >= first || math.IsNaN(last) {
		t.Fatalf("loss did not decrease: %v → %v", first, last)
	}
}

func TestFineTuneErrors(t *testing.T) {
	m, _ := tiny(t, TURL)
	if _, err := FineTune(m, nil, DefaultTrainConfig()); err == nil {
		t.Fatal("expected error for empty set")
	}
	bad := DefaultTrainConfig()
	bad.Epochs = 0
	if _, err := FineTune(m, []*corpus.Table{{}}, bad); err == nil {
		t.Fatal("expected error for zero epochs")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, ds := tiny(t, Doduo)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	before := m.Predict(info, 3, true)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(Doduo, m.Cfg, m.Tok, m.Types, 77)
	m2.SetEval()
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	after := m2.Predict(info, 3, true)
	for i := range before {
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				t.Fatal("prediction drift after load")
			}
		}
	}
}
