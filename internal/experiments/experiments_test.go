package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/baselines"
)

// testSuite builds a minimal suite; training is one epoch on tiny corpora
// so the tests validate the harness wiring, not model quality.
func testSuite() *Suite {
	cfg := QuickConfig()
	cfg.WikiTables = 40
	cfg.GitTables = 30
	cfg.TasteEpochs = 1
	cfg.BaselineEpochs = 1
	cfg.TunedEpochs = 1
	cfg.Repeats = 1
	cfg.LatencyScale = 0
	return NewSuite(cfg)
}

func TestTable2Shape(t *testing.T) {
	s := testSuite()
	res := s.Table2()
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (2 datasets × 4 splits)", len(res.Rows))
	}
	// WikiTable has no type-less columns; GitTables does.
	if res.Rows[0].PctNoType != 0 {
		t.Fatalf("wikitable all-split PctNoType = %v", res.Rows[0].PctNoType)
	}
	if res.Rows[4].PctNoType < 20 {
		t.Fatalf("gittables all-split PctNoType = %v, want ≈32", res.Rows[4].PctNoType)
	}
	if !strings.Contains(res.String(), "Table 2") {
		t.Fatal("report missing title")
	}
}

func TestDatasetMemoized(t *testing.T) {
	s := testSuite()
	if s.Dataset(Wiki) != s.Dataset(Wiki) {
		t.Fatal("dataset must be memoized")
	}
}

func TestUnknownDatasetPanics(t *testing.T) {
	s := testSuite()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Dataset("nope")
}

func TestModelsMemoized(t *testing.T) {
	s := testSuite()
	if s.TasteModel(Wiki, false) != s.TasteModel(Wiki, false) {
		t.Fatal("taste model must be memoized")
	}
	if s.TasteModel(Wiki, false) == s.TasteModel(Wiki, true) {
		t.Fatal("histogram variant must be a distinct model")
	}
	if s.BaselineModel(baselines.TURL, Wiki) != s.BaselineModel(baselines.TURL, Wiki) {
		t.Fatal("baseline model must be memoized")
	}
}

func TestRunTasteProducesMeasurements(t *testing.T) {
	s := testSuite()
	run := s.RunTaste(Wiki, DefaultTaste())
	if run.Duration <= 0 {
		t.Fatal("no duration measured")
	}
	if run.TotalColumns == 0 {
		t.Fatal("no columns processed")
	}
	if run.Errors != 0 {
		t.Fatalf("run had %d errors", run.Errors)
	}
	if r := run.ScannedRatio(); r < 0 || r > 1 {
		t.Fatalf("scanned ratio %v", r)
	}
}

func TestBaselinesScanEverything(t *testing.T) {
	s := testSuite()
	run := s.RunBaseline(Wiki, baselines.TURL, true)
	if run.ScannedRatio() != 1 {
		t.Fatalf("TURL scanned %.2f, want 1.0", run.ScannedRatio())
	}
	privacy := s.RunBaseline(Wiki, baselines.TURL, false)
	if privacy.ScannedCols != 0 {
		t.Fatal("w/o content run must not scan")
	}
}

func TestTasteWithoutP2NeverScans(t *testing.T) {
	s := testSuite()
	v := DefaultTaste()
	v.Name, v.DisableP2 = "Taste w/o P2", true
	run := s.RunTaste(Wiki, v)
	if run.ScannedCols != 0 {
		t.Fatalf("P2-disabled run scanned %d columns", run.ScannedCols)
	}
}

func TestMainRunsCachedAndComplete(t *testing.T) {
	s := testSuite()
	runs := s.MainRuns(Wiki)
	// TURL, Doduo + 5 Taste variants (privacy variant excluded).
	if len(runs) != 7 {
		t.Fatalf("main runs = %d, want 7", len(runs))
	}
	again := s.MainRuns(Wiki)
	for i := range runs {
		if runs[i] != again[i] {
			t.Fatal("main runs must be memoized")
		}
	}
	names := map[string]bool{}
	for _, r := range runs {
		names[r.Name] = true
	}
	for _, want := range []string{"TURL", "Doduo", "Taste", "Taste w/ histogram", "Taste w/o pipelining", "Taste w/o caching", "Taste w/ sampling"} {
		if !names[want] {
			t.Fatalf("missing run %q", want)
		}
	}
}

func TestFig6SweepShape(t *testing.T) {
	s := testSuite()
	res := s.Fig6([]int{20, 5})
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Sorted ascending by η, and fewer retained types ⇒ larger η.
	if res.Points[0].Eta > res.Points[1].Eta {
		t.Fatal("points must be sorted by η")
	}
	for _, p := range res.Points {
		if p.Eta <= 0 || p.Eta >= 100 {
			t.Fatalf("η = %v out of range", p.Eta)
		}
	}
}

func TestFig7PairsAndP2Gate(t *testing.T) {
	s := testSuite()
	res := s.Fig7([][2]float64{{0.5, 0.5}, {0.1, 0.9}})
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[0].NotScannedRatio != 1 {
		t.Fatalf("α=β must not scan, got not-scanned %v", res.Points[0].NotScannedRatio)
	}
}

func TestFig8Shapes(t *testing.T) {
	s := testSuite()
	res := s.Fig8([]int{4, 20}, []int{2, 10})
	if len(res.L) != 2 || len(res.N) != 2 {
		t.Fatalf("sweep sizes %d/%d", len(res.L), len(res.N))
	}
	if !strings.Contains(res.String(), "Fig 8(a)") || !strings.Contains(res.String(), "Fig 8(b)") {
		t.Fatal("report missing sections")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	s := testSuite()
	var buf bytes.Buffer
	if err := s.Run("figure99", &buf); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunByName(t *testing.T) {
	s := testSuite()
	var buf bytes.Buffer
	if err := s.Run("table2", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("missing report body")
	}
}

func TestOptionsFromVariant(t *testing.T) {
	s := testSuite()
	v := DefaultTaste()
	v.Hist, v.Sampling, v.SplitL, v.CellsN = true, true, 8, 4
	opts := s.options(v)
	if !opts.UseHistogram || opts.SplitThreshold != 8 || opts.CellsPerColumn != 4 {
		t.Fatalf("options not applied: %+v", opts)
	}
	v2 := DefaultTaste()
	v2.Alpha, v2.Beta = 0.3, 0.7
	opts2 := s.options(v2)
	if opts2.Alpha != 0.3 || opts2.Beta != 0.7 {
		t.Fatal("threshold override not applied")
	}
	v3 := DefaultTaste()
	v3.Cache = false
	if s.options(v3).CacheBytes != 0 {
		t.Fatal("cache disable not applied")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := QuickConfig()
	cfg.WikiTables = 40
	cfg.TasteEpochs = 1
	cfg.CheckpointDir = dir
	s := NewSuite(cfg)
	m1 := s.TasteModel(Wiki, false)
	// A fresh suite with the same config must load the checkpoint and
	// produce identical parameters.
	s2 := NewSuite(cfg)
	m2 := s2.TasteModel(Wiki, false)
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].Data {
			if p1[i].Data[j] != p2[i].Data[j] {
				t.Fatal("checkpoint load produced different parameters")
			}
		}
	}
}

func TestLrAtSchedule(t *testing.T) {
	if lrAt(1e-3, 0, 0, 4) != 1e-3 {
		t.Fatal("no decay when FinalLR unset")
	}
	first := lrAt(1e-3, 1e-4, 0, 4)
	last := lrAt(1e-3, 1e-4, 4, 4)
	if first != 1e-3 {
		t.Fatalf("first stage LR = %v", first)
	}
	if last < 0.9e-4 || last > 1.1e-4 {
		t.Fatalf("final stage LR = %v", last)
	}
}

func TestExtrasShape(t *testing.T) {
	s := testSuite()
	res := s.Extras()
	for _, ds := range []string{Wiki, Git} {
		runs := res.Runs[ds]
		if len(runs) != 3 {
			t.Fatalf("%s: runs = %d, want 3", ds, len(runs))
		}
		rules, sherlock := runs[0], runs[1]
		if rules.Name != "Rules (regex+dict)" || sherlock.Name != "Sherlock (features)" {
			t.Fatalf("unexpected run names: %s / %s", rules.Name, sherlock.Name)
		}
		// Both traditional baselines must scan everything.
		if rules.ScannedRatio() != 1 || sherlock.ScannedRatio() != 1 {
			t.Fatalf("%s: traditional baselines must scan 100%%", ds)
		}
		// Rules are high-precision on pattern types even untrained.
		if rules.Precision < 0.5 {
			t.Fatalf("%s: rule precision %.3f too low", ds, rules.Precision)
		}
	}
	if !strings.Contains(res.String(), "Extras") {
		t.Fatal("report missing title")
	}
}
