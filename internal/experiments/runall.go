package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Names of the runnable experiments, in presentation order.
var AllExperiments = []string{"table2", "fig4", "table3", "table4", "fig5", "fig6", "fig7", "fig8", "ablations", "extras"}

// Run executes one named experiment and writes its report to w.
func (s *Suite) Run(name string, w io.Writer) error {
	switch strings.ToLower(name) {
	case "table2":
		fmt.Fprintln(w, s.Table2())
	case "fig4":
		fmt.Fprintln(w, s.Fig4())
	case "table3":
		fmt.Fprintln(w, s.Table3())
	case "table4":
		fmt.Fprintln(w, s.Table4())
	case "fig5":
		fmt.Fprintln(w, s.Fig5())
	case "fig6":
		fmt.Fprintln(w, s.Fig6(nil))
	case "fig7":
		fmt.Fprintln(w, s.Fig7(nil))
	case "fig8":
		fmt.Fprintln(w, s.Fig8(nil, nil))
	case "ablations":
		fmt.Fprintln(w, s.Ablations())
	case "extras":
		fmt.Fprintln(w, s.Extras())
	default:
		return fmt.Errorf("experiments: unknown experiment %q (have %s)", name, strings.Join(AllExperiments, ", "))
	}
	return nil
}

// RunAll executes every experiment in order, writing reports to w.
func (s *Suite) RunAll(w io.Writer) error {
	for _, name := range AllExperiments {
		if err := s.Run(name, w); err != nil {
			return err
		}
	}
	return nil
}
