package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/simdb"
)

// --- Table 2: dataset summary ---

// Table2Result summarizes both corpora per split (paper Table 2).
type Table2Result struct {
	Rows []Table2Row
}

// Table2Row is one dataset/split line.
type Table2Row struct {
	Dataset   string
	Split     string
	Tables    int
	Columns   int
	Types     int
	PctNoType float64
}

// Table2 reproduces the dataset summary.
func (s *Suite) Table2() *Table2Result {
	res := &Table2Result{}
	for _, dsName := range []string{Wiki, Git} {
		ds := s.Dataset(dsName)
		stats := ds.Stats()
		names := []string{"all", "training", "validation", "testing"}
		for i, st := range stats {
			res.Rows = append(res.Rows, Table2Row{
				Dataset: ds.Name, Split: names[i],
				Tables: st.Tables, Columns: st.Columns,
				Types: st.Types, PctNoType: st.PctNoType,
			})
		}
	}
	return res
}

// String renders the paper-style table.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Summary of the synthetic datasets\n")
	fmt.Fprintf(&b, "%-22s %-11s %8s %9s %7s %10s\n", "Dataset", "Split", "#tables", "#cols", "#types", "%col w/o")
	for _, row := range r.Rows {
		label := row.Dataset
		if row.Split != "all" {
			label = " - " + row.Split
		}
		fmt.Fprintf(&b, "%-22s %-11s %8d %9d %7d %9.2f%%\n", label, "", row.Tables, row.Columns, row.Types, row.PctNoType)
	}
	return b.String()
}

// --- Fig 4: end-to-end execution time ---

// Fig4Result holds per-dataset execution times for every approach.
type Fig4Result struct {
	Runs map[string][]*RunResult // dataset → runs
}

// Fig4 measures end-to-end execution time (§6.3).
func (s *Suite) Fig4() *Fig4Result {
	return &Fig4Result{Runs: map[string][]*RunResult{
		Wiki: s.MainRuns(Wiki),
		Git:  s.MainRuns(Git),
	}}
}

// String renders the figure as a text table.
func (r *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 4: End-to-end execution time\n")
	fmt.Fprintf(&b, "%-24s %15s %15s\n", "Approach", "WikiTable", "GitTables")
	for i := range r.Runs[Wiki] {
		w := r.Runs[Wiki][i]
		g := r.Runs[Git][i]
		fmt.Fprintf(&b, "%-24s %15v %15v\n", w.Name,
			w.Duration.Round(time.Millisecond), g.Duration.Round(time.Millisecond))
	}
	if base := findRun(r.Runs[Wiki], "TURL"); base != nil {
		if taste := findRun(r.Runs[Wiki], "Taste"); taste != nil {
			fmt.Fprintf(&b, "Taste vs TURL reduction: WikiTable %.1f%%", reduction(base.Duration, taste.Duration))
		}
	}
	if base := findRun(r.Runs[Git], "TURL"); base != nil {
		if taste := findRun(r.Runs[Git], "Taste"); taste != nil {
			fmt.Fprintf(&b, ", GitTables %.1f%%\n", reduction(base.Duration, taste.Duration))
		}
	}
	return b.String()
}

func findRun(runs []*RunResult, name string) *RunResult {
	for _, r := range runs {
		if r.Name == name {
			return r
		}
	}
	return nil
}

func reduction(base, improved time.Duration) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (1 - float64(improved)/float64(base))
}

// --- Table 3: F1 scores ---

// Table3Result holds precision/recall/F1 per approach per dataset.
type Table3Result struct {
	Runs map[string][]*RunResult
}

// Table3 reports prediction quality (§6.4). Pipelining/caching variants are
// omitted as in the paper (they do not affect F1).
func (s *Suite) Table3() *Table3Result {
	pick := func(runs []*RunResult) []*RunResult {
		var out []*RunResult
		for _, r := range runs {
			switch r.Name {
			case "TURL", "Doduo", "Taste", "Taste w/ histogram", "Taste w/ sampling":
				out = append(out, r)
			}
		}
		return out
	}
	return &Table3Result{Runs: map[string][]*RunResult{
		Wiki: pick(s.MainRuns(Wiki)),
		Git:  pick(s.MainRuns(Git)),
	}}
}

// String renders the paper-style table.
func (r *Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: F1 scores (n=10, l=20, α=0.1, β=0.9)\n")
	for _, ds := range []string{Wiki, Git} {
		fmt.Fprintf(&b, "%s dataset\n", ds)
		fmt.Fprintf(&b, "  %-24s %10s %10s %10s\n", "Model", "Precision", "Recall", "F1")
		for _, run := range r.Runs[ds] {
			fmt.Fprintf(&b, "  %-24s %10.4f %10.4f %10.4f\n", run.Name, run.Precision, run.Recall, run.F1)
		}
	}
	return b.String()
}

// --- Table 4: metadata-only (strict privacy) F1 ---

// Table4Result holds strict-privacy scores.
type Table4Result struct {
	Runs map[string][]*RunResult
}

// Table4 blanks content for the baselines and disables P2 for Taste
// (α=β=0.5), reproducing the privacy study of §6.4.
func (s *Suite) Table4() *Table4Result {
	res := &Table4Result{Runs: map[string][]*RunResult{}}
	for _, ds := range []string{Wiki, Git} {
		var runs []*RunResult
		runs = append(runs, s.RunBaseline(ds, baselines.TURL, false))
		runs = append(runs, s.RunBaseline(ds, baselines.Doduo, false))
		noP2 := DefaultTaste()
		noP2.Name, noP2.DisableP2 = "Taste w/o P2", true
		runs = append(runs, s.RunTaste(ds, noP2))
		res.Runs[ds] = runs
	}
	return res
}

// String renders the paper-style table.
func (r *Table4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: F1 scores with only metadata as input (l=20)\n")
	for _, ds := range []string{Wiki, Git} {
		fmt.Fprintf(&b, "%s dataset\n", ds)
		fmt.Fprintf(&b, "  %-24s %10s %10s %10s\n", "Model", "Precision", "Recall", "F1")
		for _, run := range r.Runs[ds] {
			fmt.Fprintf(&b, "  %-24s %10.4f %10.4f %10.4f\n", run.Name, run.Precision, run.Recall, run.F1)
		}
	}
	return b.String()
}

// --- Fig 5: ratio of scanned columns ---

// Fig5Result holds scanned-column ratios.
type Fig5Result struct {
	Runs map[string][]*RunResult
}

// Fig5 reports intrusiveness (§6.5); derived from the main runs.
func (s *Suite) Fig5() *Fig5Result {
	pick := func(runs []*RunResult) []*RunResult {
		var out []*RunResult
		for _, r := range runs {
			switch r.Name {
			case "TURL", "Doduo", "Taste", "Taste w/ histogram":
				out = append(out, r)
			}
		}
		return out
	}
	return &Fig5Result{Runs: map[string][]*RunResult{
		Wiki: pick(s.MainRuns(Wiki)),
		Git:  pick(s.MainRuns(Git)),
	}}
}

// String renders the figure as a text table.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5: Ratio of scanned columns\n")
	fmt.Fprintf(&b, "%-24s %12s %12s\n", "Approach", "WikiTable", "GitTables")
	for i := range r.Runs[Wiki] {
		w, g := r.Runs[Wiki][i], r.Runs[Git][i]
		fmt.Fprintf(&b, "%-24s %11.1f%% %11.1f%%\n", w.Name, 100*w.ScannedRatio(), 100*g.ScannedRatio())
	}
	return b.String()
}

// --- Fig 6: columns without any types ---

// Fig6Point is one retained-type-set measurement.
type Fig6Point struct {
	K            int     // retained types
	Eta          float64 // % of test columns without any type
	Duration     time.Duration
	F1           float64
	ScannedRatio float64
}

// Fig6Result is the η sweep.
type Fig6Result struct {
	Points []Fig6Point
}

// Fig6 sweeps the retained type set Sk on WikiTable (§6.6): each k keeps k
// random types, relabels, re-fine-tunes, and measures the default Taste.
func (s *Suite) Fig6(ks []int) *Fig6Result {
	if len(ks) == 0 {
		ks = []int{50, 30, 15, 8}
	}
	base := s.Dataset(Wiki)
	res := &Fig6Result{}
	for _, k := range ks {
		retained := base.SampleTypes(k, 0)
		tuned := base.Tune(retained)
		key := fmt.Sprintf("taste-%s", tuned.Name)
		model := s.tunedTasteModel(key, tuned, nil)

		truth := truthOf(tuned.Test)
		eta := tuned.Stats()[3].PctNoType

		det, err := core.NewDetector(model, s.options(DefaultTaste()))
		if err != nil {
			panic(err)
		}
		server := simdb.NewServer(simdb.PaperLatency(s.Cfg.LatencyScale))
		server.LoadTables("tenant", tuned.Test)
		rep, err := det.DetectDatabase(context.Background(), server, "tenant", s.pipelinedMode())
		if err != nil {
			panic(err)
		}
		acc := scoreReport(rep, truth)
		res.Points = append(res.Points, Fig6Point{
			K: k, Eta: eta, Duration: rep.Duration,
			F1: acc.F1(), ScannedRatio: rep.ScannedRatio(),
		})
		s.logf("experiments: Fig6 k=%d η=%.1f%% time=%v F1=%.4f scanned=%.1f%%",
			k, eta, rep.Duration.Round(time.Millisecond), acc.F1(), 100*rep.ScannedRatio())
	}
	sort.Slice(res.Points, func(i, j int) bool { return res.Points[i].Eta < res.Points[j].Eta })
	return res
}

// String renders the figure as a text table.
func (r *Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6: Performance vs ratio of columns without any types (WikiTable-Sk)\n")
	fmt.Fprintf(&b, "%6s %8s %14s %10s %12s\n", "k", "η", "exec time", "F1", "scanned")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d %7.1f%% %14v %10.4f %11.1f%%\n",
			p.K, p.Eta, p.Duration.Round(time.Millisecond), p.F1, 100*p.ScannedRatio)
	}
	return b.String()
}

// --- Fig 7: α and β sensitivity ---

// Fig7Point is one (α, β) measurement.
type Fig7Point struct {
	Alpha, Beta     float64
	F1              float64
	NotScannedRatio float64
	Duration        time.Duration
}

// Fig7Result is the threshold sweep.
type Fig7Result struct {
	Points []Fig7Point
}

// Fig7 sweeps (α, β) pairs on WikiTable with the default model (§6.7).
func (s *Suite) Fig7(pairs [][2]float64) *Fig7Result {
	if len(pairs) == 0 {
		pairs = [][2]float64{{0.5, 0.5}, {0.4, 0.6}, {0.3, 0.7}, {0.2, 0.8}, {0.1, 0.9}, {0.05, 0.95}, {0.02, 0.98}}
	}
	res := &Fig7Result{}
	for _, ab := range pairs {
		v := DefaultTaste()
		v.Name = fmt.Sprintf("Taste α=%.2f β=%.2f", ab[0], ab[1])
		v.Alpha, v.Beta = ab[0], ab[1]
		if ab[0] == ab[1] {
			v.DisableP2 = true
		}
		run := s.RunTaste(Wiki, v)
		res.Points = append(res.Points, Fig7Point{
			Alpha: ab[0], Beta: ab[1],
			F1:              run.F1,
			NotScannedRatio: 1 - run.ScannedRatio(),
			Duration:        run.Duration,
		})
	}
	return res
}

// String renders the figure as a text table.
func (r *Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7: Effects of varying α and β (WikiTable)\n")
	fmt.Fprintf(&b, "%6s %6s %10s %14s %14s\n", "α", "β", "F1", "not scanned", "exec time")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6.2f %6.2f %10.4f %13.1f%% %14v\n",
			p.Alpha, p.Beta, p.F1, 100*p.NotScannedRatio, p.Duration.Round(time.Millisecond))
	}
	return b.String()
}

// --- Fig 8: l and n sensitivity ---

// Fig8Point is one parameter measurement.
type Fig8Point struct {
	Value    int
	Duration time.Duration
	F1       float64
}

// Fig8Result covers both sweeps.
type Fig8Result struct {
	L []Fig8Point // column split threshold sweep (n=10)
	N []Fig8Point // cell value sweep (l=20)
}

// Fig8 sweeps the column split threshold l and the cell count n on
// WikiTable with the default model (§6.8).
func (s *Suite) Fig8(ls, ns []int) *Fig8Result {
	if len(ls) == 0 {
		ls = []int{4, 8, 12, 16, 20}
	}
	if len(ns) == 0 {
		ns = []int{2, 4, 6, 8, 10}
	}
	res := &Fig8Result{}
	for _, l := range ls {
		v := DefaultTaste()
		v.Name = fmt.Sprintf("Taste l=%d", l)
		v.SplitL = l
		run := s.RunTaste(Wiki, v)
		res.L = append(res.L, Fig8Point{Value: l, Duration: run.Duration, F1: run.F1})
	}
	for _, n := range ns {
		v := DefaultTaste()
		v.Name = fmt.Sprintf("Taste n=%d", n)
		v.CellsN = n
		run := s.RunTaste(Wiki, v)
		res.N = append(res.N, Fig8Point{Value: n, Duration: run.Duration, F1: run.F1})
	}
	return res
}

// String renders both sweeps as text tables.
func (r *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8(a): Impact of column split threshold l (n=10, WikiTable)\n")
	fmt.Fprintf(&b, "%6s %14s %10s\n", "l", "exec time", "F1")
	for _, p := range r.L {
		fmt.Fprintf(&b, "%6d %14v %10.4f\n", p.Value, p.Duration.Round(time.Millisecond), p.F1)
	}
	fmt.Fprintf(&b, "Fig 8(b): Impact of cell values n (l=20, WikiTable)\n")
	fmt.Fprintf(&b, "%6s %14s %10s\n", "n", "exec time", "F1")
	for _, p := range r.N {
		fmt.Fprintf(&b, "%6d %14v %10.4f\n", p.Value, p.Duration.Round(time.Millisecond), p.F1)
	}
	return b.String()
}
