package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/simdb"
)

// phaseDesc names the four stage prefixes used by core's span
// instrumentation ("s<N>:<table>").
var phaseDesc = map[string]string{
	"s1": "P1 prep  (metadata fetch)",
	"s2": "P1 infer (meta ADTD)",
	"s3": "P2 prep  (content scan)",
	"s4": "P2 infer (content ADTD)",
}

// TraceBreakdown runs one traced pipelined detection over the Wiki test
// split and prints the per-phase latency split in the spirit of the paper's
// Table 7: where a detection request actually spends its time. Phase totals
// are summed across tables, so with the pipelined scheduler they exceed the
// wall time — that overlap is exactly what §5 buys.
func (s *Suite) TraceBreakdown(w io.Writer) error {
	model := s.TasteModel(Wiki, false)
	det, err := core.NewDetector(model, s.options(DefaultTaste()))
	if err != nil {
		return err
	}
	ds := s.Dataset(Wiki)
	server := simdb.NewServer(simdb.PaperLatency(s.Cfg.LatencyScale))
	server.LoadTables("tenant", ds.Test)

	ctx, root := obs.NewTrace(context.Background(), "detect tenant")
	rep, err := det.DetectDatabase(ctx, server, "tenant", s.pipelinedMode())
	if err != nil {
		return err
	}
	root.End()
	node := root.Node()

	type phase struct {
		spans int
		total time.Duration
		max   time.Duration
	}
	phases := map[string]*phase{}
	node.Walk(func(n obs.SpanNode) {
		name := n.Name
		if i := strings.IndexByte(name, ':'); i > 0 {
			name = name[:i]
		} else if name == node.Name {
			return // the root itself
		}
		p := phases[name]
		if p == nil {
			p = &phase{}
			phases[name] = p
		}
		p.spans++
		d := time.Duration(n.DurationMicros) * time.Microsecond
		p.total += d
		if d > p.max {
			p.max = d
		}
	})

	keys := make([]string, 0, len(phases))
	for k := range phases {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	wall := time.Duration(node.DurationMicros) * time.Microsecond
	fmt.Fprintf(w, "Per-phase latency breakdown (cf. Table 7) — %d tables, %d columns, wall %v\n",
		len(rep.Tables), rep.TotalColumns, wall.Round(time.Millisecond))
	fmt.Fprintf(w, "%-6s %-28s %6s %12s %12s %12s %9s\n",
		"phase", "what", "spans", "total", "mean", "max", "of wall")
	for _, k := range keys {
		p := phases[k]
		desc := phaseDesc[k]
		if desc == "" {
			desc = k
		}
		mean := p.total / time.Duration(p.spans)
		fmt.Fprintf(w, "%-6s %-28s %6d %12v %12v %12v %8.1f%%\n",
			k, desc, p.spans,
			p.total.Round(10*time.Microsecond), mean.Round(10*time.Microsecond),
			p.max.Round(10*time.Microsecond), 100*float64(p.total)/float64(wall))
	}
	fmt.Fprintf(w, "(phase totals sum across tables; >100%% of wall means the pipeline overlapped them)\n")
	return nil
}
