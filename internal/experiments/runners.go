package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/adtd"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/metafeat"
	"repro/internal/metrics"
	"repro/internal/simdb"
)

// RunResult holds the end-to-end measurements of one approach on one
// dataset — the quantities Figures 4–8 and Tables 3–4 report.
type RunResult struct {
	Name         string
	Dataset      string
	Duration     time.Duration
	DurationsAll []time.Duration
	Precision    float64
	Recall       float64
	F1           float64
	TotalColumns int
	ScannedCols  int
	CacheHits    int
	Errors       int
}

// ScannedRatio is the intrusiveness metric of §6.2.
func (r *RunResult) ScannedRatio() float64 {
	if r.TotalColumns == 0 {
		return 0
	}
	return float64(r.ScannedCols) / float64(r.TotalColumns)
}

// TasteVariant selects one of the six Taste configurations of §6.2.
type TasteVariant struct {
	Name       string
	Hist       bool
	Pipelined  bool
	Cache      bool
	Sampling   bool
	DisableP2  bool
	Alpha      float64 // 0 = use default
	Beta       float64 // 0 = use default
	SplitL     int     // 0 = default 20
	CellsN     int     // 0 = default 10
	Sequential bool    // redundant with !Pipelined; kept for clarity
}

// DefaultTaste is the paper's default Taste configuration.
func DefaultTaste() TasteVariant {
	return TasteVariant{Name: "Taste", Pipelined: true, Cache: true}
}

// MainVariants are the six Taste variants compared in §6.2 plus nothing
// else; the baselines run through RunBaseline.
func MainVariants() []TasteVariant {
	def := DefaultTaste()
	hist := def
	hist.Name, hist.Hist = "Taste w/ histogram", true
	noPipe := def
	noPipe.Name, noPipe.Pipelined = "Taste w/o pipelining", false
	noCache := def
	noCache.Name, noCache.Cache = "Taste w/o caching", false
	sampling := def
	sampling.Name, sampling.Sampling = "Taste w/ sampling", true
	noP2 := def
	noP2.Name, noP2.DisableP2 = "Taste w/o P2", true
	return []TasteVariant{def, hist, noPipe, noCache, sampling, noP2}
}

func (s *Suite) options(v TasteVariant) core.Options {
	opts := core.DefaultOptions()
	opts.UseHistogram = v.Hist
	if !v.Cache {
		opts.CacheBytes = 0
		opts.ResultCacheBytes = 0
	}
	if v.Sampling {
		opts.Strategy = simdb.RandomSample
	}
	if v.DisableP2 {
		opts.Alpha, opts.Beta = 0.5, 0.5
	}
	if v.Alpha != 0 || v.Beta != 0 {
		opts.Alpha, opts.Beta = v.Alpha, v.Beta
	}
	if v.SplitL != 0 {
		opts.SplitThreshold = v.SplitL
	}
	if v.CellsN != 0 {
		opts.CellsPerColumn = v.CellsN
	}
	return opts
}

// truthOf builds the scoring map for a table set.
func truthOf(tables []*corpus.Table) map[string][]string {
	out := make(map[string][]string)
	for _, t := range tables {
		for _, c := range t.Columns {
			out[t.Name+"."+c.Name] = c.Labels
		}
	}
	return out
}

func scoreReport(rep *core.Report, truth map[string][]string) *metrics.F1Accumulator {
	acc := metrics.NewF1Accumulator()
	for _, tr := range rep.Tables {
		for _, c := range tr.Columns {
			acc.Add(c.Admitted, truth[tr.Table+"."+c.Column])
		}
	}
	return acc
}

// newTestServer stands up a fresh simulated user database holding the test
// split, with the configured latency.
func (s *Suite) newTestServer(ds *corpus.Dataset) *simdb.Server {
	server := simdb.NewServer(simdb.PaperLatency(s.Cfg.LatencyScale))
	server.LoadTables("tenant", ds.Test)
	return server
}

// RunTaste executes one Taste variant end-to-end on a dataset's test split,
// repeating the timed portion Cfg.Repeats times (fresh server each run, as
// each run must pay its own ANALYZE/scan costs).
func (s *Suite) RunTaste(dsName string, v TasteVariant) *RunResult {
	ds := s.Dataset(dsName)
	model := s.TasteModel(dsName, v.Hist)
	truth := truthOf(ds.Test)

	res := &RunResult{Name: v.Name, Dataset: dsName}
	repeats := s.Cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	var total time.Duration
	for r := 0; r < repeats; r++ {
		det, err := core.NewDetector(model, s.options(v))
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		server := s.newTestServer(ds)
		mode := core.SequentialMode
		if v.Pipelined {
			mode = s.pipelinedMode()
		}
		rep, err := det.DetectDatabase(context.Background(), server, "tenant", mode)
		if err != nil {
			panic(fmt.Sprintf("experiments: run %s: %v", v.Name, err))
		}
		total += rep.Duration
		res.DurationsAll = append(res.DurationsAll, rep.Duration)
		if r == 0 {
			acc := scoreReport(rep, truth)
			res.Precision, res.Recall, res.F1 = acc.Precision(), acc.Recall(), acc.F1()
			res.TotalColumns = rep.TotalColumns
			res.ScannedCols = rep.ScannedColumns
			res.CacheHits = rep.CacheHits
			res.Errors = len(rep.Errors)
		}
	}
	res.Duration = total / time.Duration(repeats)
	s.logf("experiments: %-22s %-9s time=%-12v F1=%.4f scanned=%.1f%%",
		v.Name, dsName, res.Duration.Round(time.Millisecond), res.F1, 100*res.ScannedRatio())
	return res
}

// RunBaseline executes TURL or Doduo end-to-end: sequential processing, one
// metadata fetch plus a full-content scan per table (their models cannot
// predict without content), then inference. withContent=false is the
// strict-privacy setting of Table 4 (content blanked, no scans).
func (s *Suite) RunBaseline(dsName string, v baselines.Variant, withContent bool) *RunResult {
	ds := s.Dataset(dsName)
	model := s.BaselineModel(v, dsName)
	truth := truthOf(ds.Test)
	name := v.String()
	if !withContent {
		name += " w/o content"
	}
	res := &RunResult{Name: name, Dataset: dsName}
	repeats := s.Cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	var total time.Duration
	for r := 0; r < repeats; r++ {
		server := s.newTestServer(ds)
		start := time.Now()
		acc := metrics.NewF1Accumulator()
		scanned, totalCols := 0, 0
		conn, err := server.Connect(context.Background(), "tenant")
		if err != nil {
			panic(err)
		}
		tables, err := conn.ListTables(context.Background())
		if err != nil {
			panic(err)
		}
		for _, tn := range tables {
			tm, err := conn.TableMetadata(context.Background(), tn)
			if err != nil {
				panic(err)
			}
			info := metafeat.FromTableMeta(tm)
			if withContent {
				names := make([]string, len(info.Columns))
				for i, c := range info.Columns {
					names[i] = c.Name
				}
				content, err := conn.ScanColumns(context.Background(), tn, names, simdb.ScanOptions{Strategy: simdb.FirstRows, Rows: 50})
				if err != nil {
					panic(err)
				}
				for _, c := range info.Columns {
					c.Values = content[c.Name]
				}
				scanned += len(names)
			}
			for _, chunk := range info.Split(20) {
				probs := model.Predict(chunk, 10, withContent)
				// Wide chunks can exceed the model's W_max: columns whose
				// anchors were truncated away get no prediction (the same
				// sequence-length limitation §6.1.2 works around by
				// splitting), which scores as missed labels.
				for i, c := range chunk.Columns {
					totalCols++
					var admitted []string
					if i < len(probs) {
						for j, p := range probs[i] {
							if j == 0 {
								continue // background type
							}
							if p >= 0.5 {
								admitted = append(admitted, model.Types.Name(j))
							}
						}
					}
					if r == 0 {
						acc.Add(admitted, truth[tn+"."+c.Name])
					}
				}
			}
		}
		conn.Close()
		dur := time.Since(start)
		total += dur
		res.DurationsAll = append(res.DurationsAll, dur)
		if r == 0 {
			res.Precision, res.Recall, res.F1 = acc.Precision(), acc.Recall(), acc.F1()
			res.TotalColumns = totalCols
			res.ScannedCols = scanned
		}
	}
	res.Duration = total / time.Duration(repeats)
	s.logf("experiments: %-22s %-9s time=%-12v F1=%.4f scanned=%.1f%%",
		name, dsName, res.Duration.Round(time.Millisecond), res.F1, 100*res.ScannedRatio())
	return res
}

// MainRuns returns (computing once) the Fig-4/Table-3/Fig-5 measurement set
// for a dataset: both baselines plus the five non-privacy Taste variants.
func (s *Suite) MainRuns(dsName string) []*RunResult {
	s.mu.Lock()
	if rs, ok := s.mainRuns[dsName]; ok {
		s.mu.Unlock()
		return rs
	}
	s.mu.Unlock()

	var runs []*RunResult
	runs = append(runs, s.RunBaseline(dsName, baselines.TURL, true))
	runs = append(runs, s.RunBaseline(dsName, baselines.Doduo, true))
	for _, v := range MainVariants() {
		if v.DisableP2 {
			continue // the privacy variant belongs to Table 4
		}
		runs = append(runs, s.RunTaste(dsName, v))
	}
	s.mu.Lock()
	s.mainRuns[dsName] = runs
	s.mu.Unlock()
	return runs
}

// Thin wrappers keeping ablations.go free of direct core/simdb imports.

func newCoreDetector(m *adtd.Model, opts core.Options) (*core.Detector, error) {
	return core.NewDetector(m, opts)
}

func pipelineMode(workers int) core.ExecMode {
	return core.ExecMode{Pipelined: true, PrepWorkers: workers, InferWorkers: workers}
}

// pipelinedMode is the pipelined execution mode for timing runs: the
// paper's 2/2 pools (§6.3) unless the config overrides either pool size.
func (s *Suite) pipelinedMode() core.ExecMode {
	mode := core.PipelinedMode()
	if s.Cfg.PrepWorkers > 0 {
		mode.PrepWorkers = s.Cfg.PrepWorkers
	}
	if s.Cfg.InferWorkers > 0 {
		mode.InferWorkers = s.Cfg.InferWorkers
	}
	return mode
}

func sequentialMode() core.ExecMode { return core.SequentialMode }

func noLatencyServerFor(ds *corpus.Dataset) *simdb.Server {
	server := simdb.NewServer(simdb.NoLatency)
	server.LoadTables("tenant", ds.Test)
	return server
}
