package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/adtd"
)

// AblationResult collects the design-choice studies listed in DESIGN.md §4
// beyond what Fig 4 already covers (latent cache and pipelining variants).
type AblationResult struct {
	// PipelinePoolSweep measures execution time versus worker pool size.
	PipelinePoolSweep []PoolPoint
	// AutoWeightedLoss compares §4.4's learnable weighting against a fixed
	// 50/50 combination.
	AutoWeightedLoss []LossPoint
	// AsymmetricAttention compares the asymmetric content tower (§4.2.3)
	// against plain content self-attention.
	AsymmetricAttention []LossPoint
	// CacheSpeedup compares Taste with and without the latent cache.
	CacheSpeedup struct {
		With, Without time.Duration
	}
}

// PoolPoint is one pool-size measurement.
type PoolPoint struct {
	Workers  int
	Duration time.Duration
}

// LossPoint is one trained-variant measurement.
type LossPoint struct {
	Name string
	F1   float64
}

// Ablations runs the extra design-choice studies on WikiTable.
func (s *Suite) Ablations() *AblationResult {
	res := &AblationResult{}

	// Pipelining pool-size sweep (Algorithm 1 worker pools).
	for _, workers := range []int{1, 2, 4} {
		v := DefaultTaste()
		v.Name = fmt.Sprintf("Taste pool=%d", workers)
		run := s.runTasteWithPool(Wiki, v, workers)
		res.PipelinePoolSweep = append(res.PipelinePoolSweep, PoolPoint{Workers: workers, Duration: run.Duration})
	}

	// Latent cache speedup, from the main runs.
	main := s.MainRuns(Wiki)
	if with := findRun(main, "Taste"); with != nil {
		res.CacheSpeedup.With = with.Duration
	}
	if without := findRun(main, "Taste w/o caching"); without != nil {
		res.CacheSpeedup.Without = without.Duration
	}

	// Automatic weighted loss vs fixed weights: re-train a reduced-epoch
	// pair on the same data and compare F1.
	ds := s.Dataset(Wiki)
	auto := s.tunedTasteModel("taste-wiki-autoloss", ds, nil)
	fixed := s.tunedTasteModel("taste-wiki-fixedloss", ds, func(_ *adtd.Config, t *adtd.TrainConfig) {
		t.UseAutoWeightedLoss = false
	})
	res.AutoWeightedLoss = append(res.AutoWeightedLoss,
		LossPoint{Name: "automatic weighted loss", F1: s.quickF1(auto)},
		LossPoint{Name: "fixed 50/50 loss", F1: s.quickF1(fixed)},
	)

	// Asymmetric vs symmetric content tower.
	sym := s.tunedTasteModel("taste-wiki-symmetric", ds, func(m *adtd.Config, _ *adtd.TrainConfig) {
		m.SymmetricContent = true
	})
	res.AsymmetricAttention = append(res.AsymmetricAttention,
		LossPoint{Name: "asymmetric K/V (metadata ⊕ content)", F1: s.quickF1(auto)},
		LossPoint{Name: "content-only self-attention", F1: s.quickF1(sym)},
	)
	return res
}

// runTasteWithPool runs the default variant with a custom pool size.
func (s *Suite) runTasteWithPool(dsName string, v TasteVariant, workers int) *RunResult {
	ds := s.Dataset(dsName)
	model := s.TasteModel(dsName, v.Hist)
	det, err := newCoreDetector(model, s.options(v))
	if err != nil {
		panic(err)
	}
	server := s.newTestServer(ds)
	rep, err := det.DetectDatabase(context.Background(), server, "tenant", pipelineMode(workers))
	if err != nil {
		panic(err)
	}
	res := &RunResult{Name: v.Name, Dataset: dsName, Duration: rep.Duration}
	s.logf("experiments: %-22s workers=%d time=%v", v.Name, workers, rep.Duration.Round(time.Millisecond))
	return res
}

// quickF1 scores a model's default two-phase detection on the WikiTable
// test split without latency.
func (s *Suite) quickF1(m *adtd.Model) float64 {
	ds := s.Dataset(Wiki)
	det, err := newCoreDetector(m, s.options(DefaultTaste()))
	if err != nil {
		panic(err)
	}
	server := noLatencyServerFor(ds)
	rep, err := det.DetectDatabase(context.Background(), server, "tenant", sequentialMode())
	if err != nil {
		panic(err)
	}
	return scoreReport(rep, truthOf(ds.Test)).F1()
}

// String renders the ablation report.
func (r *AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations (WikiTable)\n")
	fmt.Fprintf(&b, "Pipelining pool size sweep:\n")
	for _, p := range r.PipelinePoolSweep {
		fmt.Fprintf(&b, "  TP1=TP2=%d: %v\n", p.Workers, p.Duration.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "Latent cache: with=%v without=%v (%.1f%% reduction)\n",
		r.CacheSpeedup.With.Round(time.Millisecond), r.CacheSpeedup.Without.Round(time.Millisecond),
		reduction(r.CacheSpeedup.Without, r.CacheSpeedup.With))
	fmt.Fprintf(&b, "Multi-task loss:\n")
	for _, p := range r.AutoWeightedLoss {
		fmt.Fprintf(&b, "  %-40s F1=%.4f\n", p.Name, p.F1)
	}
	fmt.Fprintf(&b, "Content-tower attention:\n")
	for _, p := range r.AsymmetricAttention {
		fmt.Fprintf(&b, "  %-40s F1=%.4f\n", p.Name, p.F1)
	}
	return b.String()
}
