// Package experiments reproduces every table and figure of the paper's
// evaluation (§6). A Suite lazily generates the two corpora, trains the
// Taste/TURL/Doduo models (with on-disk checkpoint caching so repeated runs
// skip training), and exposes one runner per experiment. See DESIGN.md §3
// for the experiment index and EXPERIMENTS.md for paper-vs-measured values.
package experiments

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/adtd"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/simdb"
)

// Dataset names used throughout the suite.
const (
	Wiki = "wikitable"
	Git  = "gittables"
)

// Config scales the experiment suite.
type Config struct {
	// WikiTables and GitTables size the two corpora.
	WikiTables int
	GitTables  int
	// Seed drives corpus generation and model initialization.
	Seed int64
	// TasteEpochs / BaselineEpochs / TunedEpochs bound fine-tuning for the
	// main Taste models, the baselines, and the Fig-6/ablation retrains.
	TasteEpochs    int
	BaselineEpochs int
	TunedEpochs    int
	// PretrainSteps runs MLM pre-training before fine-tuning (0 disables).
	PretrainSteps int
	// ValSelect keeps the checkpoint with the best validation F1 rather
	// than the last epoch (§6.1.1 provides validation splits).
	ValSelect bool
	// LatencyScale scales the simulated database latency (1 = the paper's
	// 5 ms-RTT testbed).
	LatencyScale float64
	// Repeats is the number of timing runs averaged per variant (paper: 10).
	Repeats int
	// CheckpointDir caches trained models on disk ("" disables).
	CheckpointDir string
	// PrepWorkers/InferWorkers override the pipelined pool sizes for the
	// timing experiments; 0 keeps the paper's default of 2 (§6.3).
	PrepWorkers  int
	InferWorkers int
	// TrainWorkers/GradAccum configure the training runtime for every
	// model the suite trains (internal/train); 0 means 1. Accuracy results
	// are bit-reproducible per (Seed, TrainWorkers), not across worker
	// counts (DESIGN.md §10).
	TrainWorkers int
	GradAccum    int
	// Log receives progress lines (nil silences).
	Log io.Writer
}

// DefaultConfig is the full-scale configuration used for EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		WikiTables:     600,
		GitTables:      300,
		Seed:           1,
		TasteEpochs:    16,
		BaselineEpochs: 10,
		TunedEpochs:    6,
		PretrainSteps:  200,
		ValSelect:      true,
		LatencyScale:   1.0,
		Repeats:        3,
		CheckpointDir:  "artifacts",
	}
}

// QuickConfig is a minutes-scale configuration for smoke tests.
func QuickConfig() Config {
	return Config{
		WikiTables:     80,
		GitTables:      60,
		Seed:           1,
		TasteEpochs:    2,
		BaselineEpochs: 2,
		TunedEpochs:    1,
		ValSelect:      false,
		LatencyScale:   0.02,
		Repeats:        1,
	}
}

// Suite owns the datasets and trained models for all experiments. All
// methods are safe for sequential use; model construction is memoized.
type Suite struct {
	Cfg Config

	mu       sync.Mutex
	datasets map[string]*corpus.Dataset
	taste    map[string]*adtd.Model
	base     map[string]*baselines.Model
	mainRuns map[string][]*RunResult
}

// NewSuite creates a suite for the configuration.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		Cfg:      cfg,
		datasets: make(map[string]*corpus.Dataset),
		taste:    make(map[string]*adtd.Model),
		base:     make(map[string]*baselines.Model),
		mainRuns: make(map[string][]*RunResult),
	}
}

func (s *Suite) logf(format string, args ...interface{}) {
	if s.Cfg.Log != nil {
		fmt.Fprintf(s.Cfg.Log, format+"\n", args...)
	}
}

// Dataset returns the named corpus (Wiki or Git), generating it on demand.
func (s *Suite) Dataset(name string) *corpus.Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.datasetLocked(name)
}

func (s *Suite) datasetLocked(name string) *corpus.Dataset {
	if ds, ok := s.datasets[name]; ok {
		return ds
	}
	var ds *corpus.Dataset
	switch name {
	case Wiki:
		ds = corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(s.Cfg.WikiTables), s.Cfg.Seed)
	case Git:
		ds = corpus.Generate(corpus.DefaultRegistry(), corpus.GitTablesProfile(s.Cfg.GitTables), s.Cfg.Seed)
	default:
		panic("experiments: unknown dataset " + name)
	}
	s.datasets[name] = ds
	return ds
}

// tasteTrainConfig is the tuned fine-tuning recipe shared by all Taste
// models in the suite.
func (s *Suite) tasteTrainConfig(epochs int, withStats bool) adtd.TrainConfig {
	cfg := adtd.DefaultTrainConfig()
	cfg.Epochs = epochs
	cfg.LR, cfg.FinalLR = 1.5e-3, 3e-4
	cfg.PosWeight = 6
	cfg.WeightDecay = 1e-4
	cfg.Cells = 6
	cfg.ContentColumnsPerChunk = 4
	cfg.WithStats = withStats
	cfg.Workers = s.Cfg.TrainWorkers
	cfg.GradAccum = s.Cfg.GradAccum
	cfg.Log = s.Cfg.Log
	return cfg
}

// TasteModel returns the trained ADTD model for a dataset, optionally the
// histogram variant, training (or loading a checkpoint) on first use.
func (s *Suite) TasteModel(dsName string, hist bool) *adtd.Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := fmt.Sprintf("taste-%s-hist=%v", dsName, hist)
	if m, ok := s.taste[key]; ok {
		return m
	}
	ds := s.datasetLocked(dsName)
	m := s.buildTaste(key, ds, s.tasteTrainConfig(s.Cfg.TasteEpochs, hist), hist)
	s.taste[key] = m
	return m
}

// tunedTasteModel trains a Taste model on an arbitrary (tuned) dataset with
// the reduced epoch budget; used by Fig 6 and the ablations.
func (s *Suite) tunedTasteModel(key string, ds *corpus.Dataset, mutate func(*adtd.Config, *adtd.TrainConfig)) *adtd.Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.taste[key]; ok {
		return m
	}
	tcfg := s.tasteTrainConfig(s.Cfg.TunedEpochs, false)
	mcfg := adtd.ReproScale()
	if mutate != nil {
		mutate(&mcfg, &tcfg)
	}
	// Tuned/ablation retrains skip MLM pre-training: it mostly benefits the
	// early epochs and the sweeps only compare configurations against each
	// other.
	m := s.buildTasteWith(key, ds, mcfg, tcfg, tcfg.WithStats, false)
	s.taste[key] = m
	return m
}

func (s *Suite) buildTaste(key string, ds *corpus.Dataset, tcfg adtd.TrainConfig, hist bool) *adtd.Model {
	return s.buildTasteWith(key, ds, adtd.ReproScale(), tcfg, hist, true)
}

func (s *Suite) buildTasteWith(key string, ds *corpus.Dataset, mcfg adtd.Config, tcfg adtd.TrainConfig, hist, pretrain bool) *adtd.Model {
	tok := adtd.BuildVocabulary(ds.Train, ds.Registry.Names(), 4000)
	types := adtd.NewTypeSpace(ds.Registry.Names())
	m, err := adtd.New(mcfg, tok, types, s.Cfg.Seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	ckpt := s.checkpointPath(key, ds, tcfg.Epochs)
	if s.loadCheckpoint(m.Load, ckpt) {
		s.logf("experiments: loaded checkpoint %s", ckpt)
		m.SetEval()
		return m
	}
	if pretrain && s.Cfg.PretrainSteps > 0 {
		pcfg := adtd.DefaultPretrainConfig()
		pcfg.Steps = s.Cfg.PretrainSteps
		pcfg.Workers = s.Cfg.TrainWorkers
		pcfg.GradAccum = s.Cfg.GradAccum
		pcfg.Log = s.Cfg.Log
		s.logf("experiments: pre-training %s (%d MLM steps)", key, pcfg.Steps)
		if _, err := adtd.Pretrain(m, ds.Train, pcfg); err != nil {
			panic(fmt.Sprintf("experiments: pretrain %s: %v", key, err))
		}
	}
	s.logf("experiments: fine-tuning %s (%d epochs, %d train tables)", key, tcfg.Epochs, len(ds.Train))
	if s.Cfg.ValSelect && tcfg.Epochs >= 8 {
		s.fineTuneWithValSelection(m, ds, tcfg, hist)
	} else {
		if _, err := adtd.FineTune(m, ds.Train, tcfg); err != nil {
			panic(fmt.Sprintf("experiments: fine-tune %s: %v", key, err))
		}
	}
	m.SetEval()
	s.saveCheckpoint(m.Save, ckpt)
	return m
}

// fineTuneWithValSelection trains in 4-epoch stages and keeps the
// parameters with the best validation F1 (under the default detector).
func (s *Suite) fineTuneWithValSelection(m *adtd.Model, ds *corpus.Dataset, tcfg adtd.TrainConfig, hist bool) {
	stage := 4
	stages := (tcfg.Epochs + stage - 1) / stage
	bestF1 := -1.0
	var best bytes.Buffer
	totalLR, finalLR := tcfg.LR, tcfg.FinalLR
	for i := 0; i < stages; i++ {
		cfg := tcfg
		cfg.Epochs = stage
		// Continue the global decay schedule across stages.
		cfg.LR = lrAt(totalLR, finalLR, i, stages)
		cfg.FinalLR = lrAt(totalLR, finalLR, i+1, stages)
		cfg.Seed = tcfg.Seed + int64(i)
		if _, err := adtd.FineTune(m, ds.Train, cfg); err != nil {
			panic(fmt.Sprintf("experiments: fine-tune stage %d: %v", i, err))
		}
		f1 := s.validationF1(m, ds, hist)
		s.logf("experiments: stage %d/%d val F1 %.4f", i+1, stages, f1)
		if f1 > bestF1 {
			bestF1 = f1
			best.Reset()
			if err := m.Save(&best); err != nil {
				panic(err)
			}
		}
	}
	if best.Len() > 0 {
		if err := m.Load(bytes.NewReader(best.Bytes())); err != nil {
			panic(err)
		}
	}
}

// lrAt interpolates the global decay schedule exponentially across stages.
func lrAt(lr, finalLR float64, stage, stages int) float64 {
	if finalLR <= 0 || finalLR >= lr || stages <= 1 {
		return lr
	}
	frac := float64(stage) / float64(stages)
	return lr * math.Pow(finalLR/lr, frac)
}

// validationF1 scores the current model on the validation split with the
// default two-phase detector over a latency-free server.
func (s *Suite) validationF1(m *adtd.Model, ds *corpus.Dataset, hist bool) float64 {
	opts := core.DefaultOptions()
	opts.UseHistogram = hist
	det, err := core.NewDetector(m, opts)
	if err != nil {
		panic(err)
	}
	server := simdb.NewServer(simdb.NoLatency)
	val := ds.Val
	if len(val) > 60 {
		val = val[:60]
	}
	server.LoadTables("val", val)
	rep, err := det.DetectDatabase(context.Background(), server, "val", core.SequentialMode)
	if err != nil {
		panic(err)
	}
	acc := scoreReport(rep, truthOf(val))
	m.SetTrain() // detector construction flipped the model to eval
	return acc.F1()
}

// BaselineModel returns the trained TURL or Doduo model for a dataset.
func (s *Suite) BaselineModel(v baselines.Variant, dsName string) *baselines.Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := fmt.Sprintf("%s-%s", v, dsName)
	if m, ok := s.base[key]; ok {
		return m
	}
	ds := s.datasetLocked(dsName)
	cfg := baselines.TURLScale()
	if v == baselines.Doduo {
		cfg = baselines.DoduoScale()
	}
	tok := adtd.BuildVocabulary(ds.Train, ds.Registry.Names(), 4000)
	types := adtd.NewTypeSpace(ds.Registry.Names())
	m := baselines.New(v, cfg, tok, types, s.Cfg.Seed)
	ckpt := s.checkpointPath(key, ds, s.Cfg.BaselineEpochs)
	if s.loadCheckpoint(m.Load, ckpt) {
		s.logf("experiments: loaded checkpoint %s", ckpt)
		m.SetEval()
		s.base[key] = m
		return m
	}
	tcfg := baselines.DefaultTrainConfig()
	tcfg.Epochs = s.Cfg.BaselineEpochs
	tcfg.LR, tcfg.FinalLR = 1.5e-3, 3e-4
	if v == baselines.Doduo {
		// The larger global-attention model destabilizes at the TURL
		// learning rate (loss plateaus); it needs a gentler schedule and a
		// little more time.
		tcfg.LR, tcfg.FinalLR = 5e-4, 2e-4
		tcfg.Epochs += 2
	}
	tcfg.PosWeight = 6
	tcfg.WeightDecay = 1e-4
	tcfg.Cells = 4
	// Train on narrower chunks: attention cost is quadratic in chunk
	// length and the baselines put full content in one sequence.
	// Evaluation still splits at the paper default l=20.
	tcfg.SplitThreshold = 10
	tcfg.Workers = s.Cfg.TrainWorkers
	tcfg.GradAccum = s.Cfg.GradAccum
	tcfg.Log = s.Cfg.Log
	s.logf("experiments: fine-tuning %s (%d epochs)", key, tcfg.Epochs)
	if _, err := baselines.FineTune(m, ds.Train, tcfg); err != nil {
		panic(fmt.Sprintf("experiments: fine-tune %s: %v", key, err))
	}
	m.SetEval()
	s.saveCheckpoint(m.Save, ckpt)
	s.base[key] = m
	return m
}

// checkpointPath derives a content-addressed checkpoint file name.
func (s *Suite) checkpointPath(key string, ds *corpus.Dataset, epochs int) string {
	if s.Cfg.CheckpointDir == "" {
		return ""
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d|%d|%v|%d", key, ds.Name, len(ds.Train), s.Cfg.Seed, epochs, s.Cfg.PretrainSteps, s.Cfg.ValSelect, ds.Registry.Len())
	return filepath.Join(s.Cfg.CheckpointDir, fmt.Sprintf("%s-%x.ckpt", key, h.Sum64()))
}

func (s *Suite) loadCheckpoint(load func(io.Reader) error, path string) bool {
	if path == "" {
		return false
	}
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	if err := load(f); err != nil {
		s.logf("experiments: ignoring bad checkpoint %s: %v", path, err)
		return false
	}
	return true
}

func (s *Suite) saveCheckpoint(save func(io.Writer) error, path string) {
	if path == "" {
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.logf("experiments: cannot create checkpoint dir: %v", err)
		return
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		s.logf("experiments: cannot write checkpoint: %v", err)
		return
	}
	if err := save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		s.logf("experiments: checkpoint write failed: %v", err)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		s.logf("experiments: checkpoint rename failed: %v", err)
	}
}
