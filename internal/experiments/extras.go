package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/adtd"
	"repro/internal/metafeat"
	"repro/internal/metrics"
	"repro/internal/ruledet"
	"repro/internal/sherlock"
	"repro/internal/simdb"
)

// ExtrasResult extends the paper's comparison with the two pre-deep-learning
// families its related work (§7) discusses: regular-expression/dictionary
// validators and Sherlock-style engineered features. Both must scan every
// column, like the DL baselines.
type ExtrasResult struct {
	Runs map[string][]*RunResult
}

// Extras measures the traditional baselines on both datasets, alongside the
// default Taste run for reference.
func (s *Suite) Extras() *ExtrasResult {
	res := &ExtrasResult{Runs: map[string][]*RunResult{}}
	for _, dsName := range []string{Wiki, Git} {
		var runs []*RunResult
		runs = append(runs, s.runRuleBased(dsName))
		runs = append(runs, s.runSherlock(dsName))
		if taste := findRun(s.MainRuns(dsName), "Taste"); taste != nil {
			runs = append(runs, taste)
		}
		res.Runs[dsName] = runs
	}
	return res
}

// runRuleBased executes the regex/dictionary detector end to end: metadata
// is useless to it, so it goes straight to full-content scans.
func (s *Suite) runRuleBased(dsName string) *RunResult {
	ds := s.Dataset(dsName)
	det := ruledet.Default()
	truth := truthOf(ds.Test)
	res := &RunResult{Name: "Rules (regex+dict)", Dataset: dsName}

	server := s.newTestServer(ds)
	start := time.Now()
	acc := metrics.NewF1Accumulator()
	conn, err := server.Connect(context.Background(), "tenant")
	if err != nil {
		panic(err)
	}
	tables, err := conn.ListTables(context.Background())
	if err != nil {
		panic(err)
	}
	for _, tn := range tables {
		content, cols := s.scanWholeTable(conn, tn)
		for _, col := range cols {
			res.TotalColumns++
			res.ScannedCols++
			acc.Add(det.DetectColumn(content[col]), truth[tn+"."+col])
		}
	}
	conn.Close()
	res.Duration = time.Since(start)
	res.Precision, res.Recall, res.F1 = acc.Precision(), acc.Recall(), acc.F1()
	s.logf("experiments: %-22s %-9s time=%-12v F1=%.4f", res.Name, dsName, res.Duration.Round(time.Millisecond), res.F1)
	return res
}

// runSherlock trains (once) and executes the feature-based detector.
func (s *Suite) runSherlock(dsName string) *RunResult {
	ds := s.Dataset(dsName)
	types := adtd.NewTypeSpace(ds.Registry.Names())
	model := sherlock.New(types, 96, s.Cfg.Seed)
	cfg := sherlock.DefaultTrainConfig()
	cfg.Workers = s.Cfg.TrainWorkers
	cfg.GradAccum = s.Cfg.GradAccum
	cfg.Log = s.Cfg.Log
	if _, err := sherlock.Train(model, ds.Train, cfg); err != nil {
		panic(fmt.Sprintf("experiments: sherlock: %v", err))
	}
	model.SetEval()
	truth := truthOf(ds.Test)
	res := &RunResult{Name: "Sherlock (features)", Dataset: dsName}

	server := s.newTestServer(ds)
	start := time.Now()
	acc := metrics.NewF1Accumulator()
	conn, err := server.Connect(context.Background(), "tenant")
	if err != nil {
		panic(err)
	}
	tables, err := conn.ListTables(context.Background())
	if err != nil {
		panic(err)
	}
	for _, tn := range tables {
		content, cols := s.scanWholeTable(conn, tn)
		for _, col := range cols {
			res.TotalColumns++
			res.ScannedCols++
			probs := model.PredictColumn(content[col])
			var admitted []string
			for j, p := range probs {
				if j == 0 {
					continue
				}
				if p >= 0.5 {
					admitted = append(admitted, types.Name(j))
				}
			}
			acc.Add(admitted, truth[tn+"."+col])
		}
	}
	conn.Close()
	res.Duration = time.Since(start)
	res.Precision, res.Recall, res.F1 = acc.Precision(), acc.Recall(), acc.F1()
	s.logf("experiments: %-22s %-9s time=%-12v F1=%.4f", res.Name, dsName, res.Duration.Round(time.Millisecond), res.F1)
	return res
}

// scanWholeTable fetches metadata and full content for every column,
// returning content by column name plus the ordered column names.
func (s *Suite) scanWholeTable(conn *simdb.Conn, table string) (map[string][]string, []string) {
	tm, err := conn.TableMetadata(context.Background(), table)
	if err != nil {
		panic(err)
	}
	info := metafeat.FromTableMeta(tm)
	names := make([]string, len(info.Columns))
	for i, c := range info.Columns {
		names[i] = c.Name
	}
	content, err := conn.ScanColumns(context.Background(), table, names, simdb.ScanOptions{Strategy: simdb.FirstRows, Rows: 50})
	if err != nil {
		panic(err)
	}
	return content, names
}

// String renders the extras comparison.
func (r *ExtrasResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extras: pre-DL baselines (related work §7) vs Taste\n")
	for _, ds := range []string{Wiki, Git} {
		fmt.Fprintf(&b, "%s dataset\n", ds)
		fmt.Fprintf(&b, "  %-24s %12s %10s %10s %10s\n", "Approach", "time", "P", "R", "F1")
		for _, run := range r.Runs[ds] {
			fmt.Fprintf(&b, "  %-24s %12v %10.4f %10.4f %10.4f\n",
				run.Name, run.Duration.Round(time.Millisecond), run.Precision, run.Recall, run.F1)
		}
	}
	return b.String()
}
