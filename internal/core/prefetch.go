// The bounded scan prefetcher (DESIGN.md §16): while earlier tables sit in
// inference stages, it starts the storage reads upcoming stages will need —
// table metadata (plus ANALYZE when histograms are on) ahead of s1, and
// uncertain-column content scans ahead of s3 — so the work-stealing
// scheduler's compute stages overlap tenant-database I/O end to end.
//
// Backpressure is twofold: a lookahead window caps how many prefetches of
// each kind may be in flight or completed-but-unconsumed at once (metadata
// and scans are windowed independently — the metadata lookahead runs ahead
// of the whole batch and would otherwise permanently starve scans of
// slots), and a byte budget tied to the cache byte budget caps how much
// scanned content may sit waiting for its consumer. When either brake is on, a prefetch is simply skipped
// and the consuming stage falls back to the synchronous path — prefetching
// never stalls the pipeline.
//
// Every prefetch runs under the batch context, and the simdb client is
// context-aware, so cancelling the request drains all in-flight reads
// promptly; close() waits for them, making DetectDatabase's return a
// barrier with no leaked goroutines.
package core

import (
	"context"
	"sync"

	"repro/internal/simdb"
)

// metaFuture is a pending (or completed) metadata prefetch.
type metaFuture struct {
	done    chan struct{}
	tm      *simdb.TableMeta
	retries int
	err     error
}

// scanFuture is a pending (or completed) content-scan prefetch.
type scanFuture struct {
	done    chan struct{}
	content map[string][]string
	bytes   int64
	retries int
	err     error
}

type prefetcher struct {
	d      *Detector
	conn   *simdb.Conn
	ctx    context.Context
	window int
	budget int64 // ≤0 = no byte brake

	wg sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	metaSlots int   // in-flight + unconsumed metadata prefetches
	scanSlots int   // in-flight + unconsumed scan prefetches
	heldBytes int64 // bytes of completed-but-unconsumed scan content
	metas     map[string]*metaFuture
	scans     map[string]*scanFuture
	tables    []string // metadata lookahead order (the batch's table order)
	nextMeta  int
	// consumed marks tables whose s1 already ran. Stealing executes tables
	// out of order, so without it the lookahead would issue metadata reads
	// for tables that sailed past s1 on the synchronous path — guaranteed
	// waste.
	consumed map[string]bool

	hits, waste, skipped int
	wastedRetries        int
}

// newPrefetcher starts the metadata lookahead over tables immediately (up
// to the window), so the first s1 stages already find their reads in
// flight.
func newPrefetcher(ctx context.Context, d *Detector, conn *simdb.Conn, tables []string, window int, budget int64) *prefetcher {
	p := &prefetcher{
		d: d, conn: conn, ctx: ctx,
		window: window, budget: budget,
		metas:    make(map[string]*metaFuture, len(tables)),
		scans:    make(map[string]*scanFuture),
		tables:   tables,
		consumed: make(map[string]bool, len(tables)),
	}
	p.mu.Lock()
	p.advanceLocked()
	p.mu.Unlock()
	return p
}

// metaCapacityLocked reports whether another metadata prefetch may start.
func (p *prefetcher) metaCapacityLocked() bool {
	return !p.closed && p.metaSlots < p.window
}

// scanCapacityLocked reports whether another scan prefetch may start. Scans
// carry the content bytes, so the byte brake applies to them alone.
func (p *prefetcher) scanCapacityLocked() bool {
	if p.closed || p.scanSlots >= p.window {
		return false
	}
	return p.budget <= 0 || p.heldBytes < p.budget
}

// advanceLocked issues metadata prefetches for upcoming tables while
// capacity remains. Content scans are issued on demand (tryStartScan) the
// moment s2 learns which columns are uncertain.
func (p *prefetcher) advanceLocked() {
	for p.nextMeta < len(p.tables) && p.metaCapacityLocked() {
		table := p.tables[p.nextMeta]
		p.nextMeta++
		if p.consumed[table] {
			continue
		}
		f := &metaFuture{done: make(chan struct{})}
		p.metas[table] = f
		p.metaSlots++
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			f.tm, f.retries, f.err = p.d.fetchTableMeta(p.ctx, p.conn, table)
			close(f.done)
		}()
	}
}

// awaitMeta consumes the table's metadata prefetch, blocking until the read
// finishes. ok=false means the table was never prefetched (capacity brake)
// and the caller must fetch synchronously.
func (p *prefetcher) awaitMeta(table string) (tm *simdb.TableMeta, retries int, err error, ok bool) {
	p.mu.Lock()
	f := p.metas[table]
	delete(p.metas, table) // claimed: no longer a waste candidate
	p.consumed[table] = true
	p.mu.Unlock()
	if f == nil {
		return nil, 0, nil, false
	}
	<-f.done
	p.mu.Lock()
	p.metaSlots--
	p.hits++
	p.advanceLocked()
	p.mu.Unlock()
	prefetchCount("meta", "hit", 1)
	return f.tm, f.retries, f.err, true
}

// tryStartScan begins the content scan for a table's uncertain columns —
// called at the end of s2, as soon as the column set is known — unless a
// brake is on, in which case s3 will scan synchronously.
func (p *prefetcher) tryStartScan(table string, names []string) {
	p.mu.Lock()
	if !p.scanCapacityLocked() {
		p.skipped++
		p.mu.Unlock()
		prefetchCount("scan", "skipped", 1)
		return
	}
	f := &scanFuture{done: make(chan struct{})}
	p.scans[table] = f
	p.scanSlots++
	p.mu.Unlock()
	opts := p.d.Opts
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		f.retries, f.err = p.d.retry(p.ctx, p.conn.Accounting(), func() error {
			var e error
			f.content, e = p.conn.ScanColumns(p.ctx, table, names, simdb.ScanOptions{
				Strategy: opts.Strategy,
				Rows:     opts.RowsToRead,
				Seed:     opts.ScanSeed,
			})
			return e
		})
		var bytes int64
		for _, vals := range f.content {
			for _, v := range vals {
				bytes += int64(len(v))
			}
		}
		f.bytes = bytes
		p.mu.Lock()
		p.heldBytes += bytes
		p.mu.Unlock()
		close(f.done)
	}()
}

// awaitScan consumes the table's content-scan prefetch. ok=false means the
// scan was never started and s3 must scan synchronously.
func (p *prefetcher) awaitScan(table string) (content map[string][]string, retries int, err error, ok bool) {
	p.mu.Lock()
	f := p.scans[table]
	delete(p.scans, table)
	p.mu.Unlock()
	if f == nil {
		return nil, 0, nil, false
	}
	<-f.done
	p.mu.Lock()
	p.scanSlots--
	p.heldBytes -= f.bytes
	p.hits++
	p.advanceLocked()
	p.mu.Unlock()
	prefetchCount("scan", "hit", 1)
	return f.content, f.retries, f.err, true
}

// close stops issuing prefetches and waits for every in-flight read — the
// no-leak barrier. Futures that completed but were never consumed (their
// table degraded, failed, or the batch was cancelled) are accounted as
// waste, and their retries are folded into the batch ledger by the caller.
func (p *prefetcher) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	for table, f := range p.metas {
		p.waste++
		p.wastedRetries += f.retries
		delete(p.metas, table)
		prefetchCount("meta", "waste", 1)
	}
	for table, f := range p.scans {
		p.waste++
		p.wastedRetries += f.retries
		delete(p.scans, table)
		prefetchCount("scan", "waste", 1)
	}
}
