package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/simdb"
)

// --- retry policy unit tests -----------------------------------------------

func retryDetector(t *testing.T) *Detector {
	t.Helper()
	m, _ := trainedModel(t)
	opts := DefaultOptions()
	opts.RetryBaseDelay = time.Microsecond // keep unit tests fast
	opts.RetryMaxDelay = 10 * time.Microsecond
	d, err := NewDetector(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRetryTransientUntilSuccess(t *testing.T) {
	d := retryDetector(t)
	acct := &simdb.Accounting{}
	calls := 0
	n, err := d.retry(context.Background(), acct, func() error {
		calls++
		if calls < 3 {
			return simdb.Transient("scan", fmt.Errorf("blip %d", calls))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || calls != 3 {
		t.Fatalf("retries=%d calls=%d, want 2/3", n, calls)
	}
	if got := acct.Snapshot().Retries; got != 2 {
		t.Fatalf("db ledger retries = %d, want 2", got)
	}
	if got := d.FaultStats().Retries; got != 2 {
		t.Fatalf("detector ledger retries = %d, want 2", got)
	}
}

func TestRetryExhaustsAtMaxRetries(t *testing.T) {
	d := retryDetector(t)
	calls := 0
	boom := simdb.Transient("query", fmt.Errorf("always down"))
	n, err := d.retry(context.Background(), nil, func() error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if want := d.Opts.MaxRetries + 1; calls != want {
		t.Fatalf("calls = %d, want %d", calls, want)
	}
	if n != d.Opts.MaxRetries {
		t.Fatalf("retries = %d, want %d", n, d.Opts.MaxRetries)
	}
}

func TestRetryPermanentErrorsNotRetried(t *testing.T) {
	d := retryDetector(t)
	calls := 0
	boom := fmt.Errorf("unknown table")
	n, err := d.retry(context.Background(), nil, func() error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 1 || n != 0 {
		t.Fatalf("err=%v calls=%d retries=%d, want boom/1/0", err, calls, n)
	}
}

func TestRetryGivesUpNearDeadline(t *testing.T) {
	m, _ := trainedModel(t)
	opts := DefaultOptions()
	opts.RetryBaseDelay = time.Second // any backoff would cross the deadline
	d, err := NewDetector(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	calls := 0
	start := time.Now()
	n, rerr := d.retry(ctx, nil, func() error {
		calls++
		return simdb.Transient("scan", fmt.Errorf("blip"))
	})
	if rerr == nil || calls != 1 || n != 0 {
		t.Fatalf("err=%v calls=%d retries=%d, want err/1/0", rerr, calls, n)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("retry slept %v past a 50 ms deadline", elapsed)
	}
}

func TestBackoffGrowsAndIsCapped(t *testing.T) {
	m, _ := trainedModel(t)
	opts := DefaultOptions()
	opts.RetryBaseDelay = time.Millisecond
	opts.RetryMaxDelay = 8 * time.Millisecond
	d, err := NewDetector(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 10; attempt++ {
		got := d.retrier.Backoff(attempt)
		// Pre-jitter delay is min(base·2ᵏ, max); jitter adds at most 50 %.
		if limit := opts.RetryMaxDelay + opts.RetryMaxDelay/2; got > limit {
			t.Fatalf("attempt %d: backoff %v exceeds cap %v", attempt, got, limit)
		}
		if got < opts.RetryBaseDelay {
			t.Fatalf("attempt %d: backoff %v below base", attempt, got)
		}
	}
}

func TestMergeTypes(t *testing.T) {
	got := mergeTypes([]string{"email", "city"}, []string{"email", "ip_address"})
	want := []string{"city", "email", "ip_address"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if out := mergeTypes([]string{"a"}, nil); len(out) != 1 || out[0] != "a" {
		t.Fatalf("nil merge: %v", out)
	}
}

// --- end-to-end fault battery ----------------------------------------------

// TestTransientScanRetrySucceeds: a one-shot transient fault per table means
// the first scan attempt fails and the retry succeeds — full results, no
// degradation, and the retry shows up in both ledgers.
func TestTransientScanRetrySucceeds(t *testing.T) {
	m, ds := trainedModel(t)
	opts := DefaultOptions()
	opts.RetryBaseDelay = 10 * time.Microsecond
	d, err := NewDetector(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(ds)
	for _, tb := range ds.Test {
		s.InjectScanFault(tb.Name, simdb.Transient("scan", fmt.Errorf("connection reset")))
	}
	rep, err := d.DetectDatabase(context.Background(), s, "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("transient faults must be absorbed by retries, got %v", rep.Errors)
	}
	if rep.ScannedColumns == 0 {
		t.Skip("no table reached P2 in this run")
	}
	if rep.Retries == 0 {
		t.Fatal("report must account the retries that absorbed the faults")
	}
	if got := s.Accounting().Snapshot().Retries; got == 0 {
		t.Fatal("server ledger must account client retries")
	}
	if rep.DegradedColumns != 0 {
		t.Fatalf("retried-and-recovered columns must not be degraded, got %d", rep.DegradedColumns)
	}
}

// TestPersistentScanFaultDegrades: when every scan attempt fails, uncertain
// columns keep their Phase-1 answer, marked degraded with the failure
// reason — and the batch still types every column of every table.
func TestPersistentScanFaultDegrades(t *testing.T) {
	m, ds := trainedModel(t)
	opts := DefaultOptions()
	opts.RetryBaseDelay = 10 * time.Microsecond
	d, err := NewDetector(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(ds)
	s.SetFaultProfile(simdb.FaultProfile{Seed: 9, ScanFailProb: 1})
	rep, err := d.DetectDatabase(context.Background(), s, "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("degradation must not surface errors, got %v", rep.Errors)
	}
	if len(rep.Tables) != len(ds.Test) {
		t.Fatalf("tables = %d, want %d", len(rep.Tables), len(ds.Test))
	}
	if rep.UncertainColumns == 0 {
		t.Skip("no uncertain column in this run")
	}
	if rep.DegradedColumns != rep.UncertainColumns {
		t.Fatalf("degraded %d != uncertain %d", rep.DegradedColumns, rep.UncertainColumns)
	}
	if rep.ScannedColumns != 0 {
		t.Fatalf("no scan can succeed, yet %d columns scanned", rep.ScannedColumns)
	}
	for _, tr := range rep.Tables {
		for _, c := range tr.Columns {
			if c.Uncertain {
				if !c.Degraded || !strings.Contains(c.DegradeReason, "content scan failed") {
					t.Fatalf("column %s.%s: degraded=%v reason=%q", tr.Table, c.Column, c.Degraded, c.DegradeReason)
				}
				if c.Phase != 1 {
					t.Fatalf("degraded column must carry its Phase-1 answer, got phase %d", c.Phase)
				}
			} else if c.Degraded {
				t.Fatalf("certain column %s.%s must not degrade", tr.Table, c.Column)
			}
		}
	}
	fs := d.FaultStats()
	if fs.FailureDegraded == 0 || fs.Retries == 0 {
		t.Fatalf("fault ledger not updated: %+v", fs)
	}
	if s.Accounting().Snapshot().Faults == 0 {
		t.Fatal("server fault ledger not updated")
	}
}

// TestDeadlineImminentDegradesPreemptively: a huge DeadlineMargin makes any
// finite deadline "imminent", so Phase 2 is skipped deterministically and
// every uncertain column degrades — no timing races involved.
func TestDeadlineImminentDegradesPreemptively(t *testing.T) {
	m, ds := trainedModel(t)
	opts := DefaultOptions()
	opts.DeadlineMargin = time.Hour
	d, err := NewDetector(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := d.DetectDatabase(ctx, newServer(ds), "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("errors: %v", rep.Errors)
	}
	if rep.UncertainColumns == 0 {
		t.Skip("no uncertain column in this run")
	}
	if rep.ScannedColumns != 0 {
		t.Fatal("imminent deadline must skip content scans entirely")
	}
	if rep.DegradedColumns != rep.UncertainColumns {
		t.Fatalf("degraded %d != uncertain %d", rep.DegradedColumns, rep.UncertainColumns)
	}
	for _, tr := range rep.Tables {
		for _, c := range tr.Columns {
			if c.Degraded && c.DegradeReason != "deadline imminent" {
				t.Fatalf("reason = %q", c.DegradeReason)
			}
		}
	}
	if fs := d.FaultStats(); fs.DeadlineDegraded == 0 {
		t.Fatalf("deadline degradations not accounted: %+v", fs)
	}
}

// TestCancellationAborts: a genuine cancellation (not a deadline) must abort
// detection with an error — the caller walked away; there is nobody to
// degrade for.
func TestCancellationAborts(t *testing.T) {
	m, ds := trainedModel(t)
	d, _ := NewDetector(m, DefaultOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.DetectDatabase(ctx, newServer(ds), "tenant", SequentialMode); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExpiredDeadlineBeforeConnect: with the deadline already gone, even the
// connection fails; DetectDatabase reports DeadlineExceeded (the service
// layer turns this into a degraded 200, not a 500).
func TestExpiredDeadlineBeforeConnect(t *testing.T) {
	m, ds := trainedModel(t)
	d, _ := NewDetector(m, DefaultOptions())
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := d.DetectDatabase(ctx, newServer(ds), "tenant", SequentialMode); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestDisableDegradationStrictMode: the opt-out restores fail-fast — scan
// failures become table errors again.
func TestDisableDegradationStrictMode(t *testing.T) {
	m, ds := trainedModel(t)
	opts := DefaultOptions()
	opts.DisableDegradation = true
	opts.RetryBaseDelay = 10 * time.Microsecond
	d, err := NewDetector(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(ds)
	s.SetFaultProfile(simdb.FaultProfile{Seed: 9, ScanFailProb: 1})
	rep, err := d.DetectDatabase(context.Background(), s, "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) == 0 {
		t.Skip("no table reached P2 in this run")
	}
	if len(rep.Tables)+len(rep.Errors) != len(ds.Test) {
		t.Fatalf("tables %d + errors %d != %d", len(rep.Tables), len(rep.Errors), len(ds.Test))
	}
	if rep.DegradedColumns != 0 {
		t.Fatal("strict mode must not degrade")
	}
}

// TestFaultKindBattery drives the whole detection path against each fault
// kind with a seeded profile. Whatever the kind, the invariants hold: the
// call either returns a coherent report (every loaded table is accounted as
// a result or an error, every result column carries a type list) or a
// transient/context error — never a panic, never a half-filled report.
func TestFaultKindBattery(t *testing.T) {
	m, ds := trainedModel(t)
	cases := []struct {
		name    string
		profile simdb.FaultProfile
	}{
		{"connect", simdb.FaultProfile{Seed: 21, ConnectFailProb: 0.5}},
		{"query", simdb.FaultProfile{Seed: 22, QueryFailProb: 0.3}},
		{"scan", simdb.FaultProfile{Seed: 23, ScanFailProb: 0.5}},
		{"midscan", simdb.FaultProfile{Seed: 24, MidScanDropProb: 0.5}},
		{"slow", simdb.FaultProfile{Seed: 25, SlowQueryProb: 0.8, SlowQueryFactor: 2}},
		{"everything", simdb.FaultProfile{Seed: 26, ConnectFailProb: 0.2, QueryFailProb: 0.2, ScanFailProb: 0.4, MidScanDropProb: 0.3, SlowQueryProb: 0.3}},
	}
	for _, mode := range []ExecMode{SequentialMode, PipelinedMode()} {
		for _, tc := range cases {
			name := tc.name
			if mode.Pipelined {
				name += "/pipelined"
			}
			t.Run(name, func(t *testing.T) {
				opts := DefaultOptions()
				opts.RetryBaseDelay = 10 * time.Microsecond
				d, err := NewDetector(m, opts)
				if err != nil {
					t.Fatal(err)
				}
				s := newServer(ds)
				s.SetFaultProfile(tc.profile)
				rep, err := d.DetectDatabase(context.Background(), s, "tenant", mode)
				if err != nil {
					// Only an unrecoverable connect/list failure may escape,
					// and it must be the transient fault itself.
					if !simdb.IsTransient(err) {
						t.Fatalf("non-transient batch error: %v", err)
					}
					return
				}
				if len(rep.Tables)+len(rep.Errors) != len(ds.Test) {
					t.Fatalf("tables %d + errors %d != %d", len(rep.Tables), len(rep.Errors), len(ds.Test))
				}
				for _, tr := range rep.Tables {
					if len(tr.Columns) == 0 {
						t.Fatalf("table %s: empty result", tr.Table)
					}
					for _, c := range tr.Columns {
						if c.Degraded && c.DegradeReason == "" {
							t.Fatalf("column %s.%s degraded without reason", tr.Table, c.Column)
						}
						if c.Probs == nil {
							t.Fatalf("column %s.%s: missing probabilities", tr.Table, c.Column)
						}
					}
				}
				// Deterministic injection: per-query/per-scan kinds draw once
				// per operation, so across a whole batch at these
				// probabilities at least one fault must fire. Connect draws
				// only once per batch and slow never faults, so they are
				// exempt.
				if tc.name != "slow" && tc.name != "connect" && s.Accounting().Snapshot().Faults == 0 {
					t.Fatal("profile fired no faults — test is vacuous")
				}
			})
		}
	}
}

// TestPipelinedFaultsNoGoroutineLeak: a pipelined batch over a flaky server
// with a deadline must wind down all of its workers.
func TestPipelinedFaultsNoGoroutineLeak(t *testing.T) {
	m, ds := trainedModel(t)
	opts := DefaultOptions()
	opts.RetryBaseDelay = 10 * time.Microsecond
	d, err := NewDetector(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		s := newServer(ds)
		s.SetFaultProfile(simdb.FaultProfile{Seed: int64(30 + i), ScanFailProb: 0.5, QueryFailProb: 0.2})
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, _ = d.DetectDatabase(ctx, s, "tenant", PipelinedMode())
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}

// TestDetectTableDeadlineSalvage: DetectTable under an expiring deadline
// either fails with a context error before Phase 1 or returns a salvaged
// result with unresolved columns degraded — it must never return a result
// missing columns.
func TestDetectTableDeadlineSalvage(t *testing.T) {
	m, ds := trainedModel(t)
	opts := DefaultOptions()
	opts.DeadlineMargin = time.Hour // any live deadline is "imminent"
	d, err := NewDetector(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(ds)
	conn, err := s.Connect(context.Background(), "tenant")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, tb := range ds.Test[:3] {
		tr, err := d.DetectTable(ctx, conn, "tenant", tb.Name)
		if err != nil {
			t.Fatalf("table %s: %v", tb.Name, err)
		}
		if len(tr.Columns) != len(tb.Columns) {
			t.Fatalf("table %s: %d columns returned, want %d", tb.Name, len(tr.Columns), len(tb.Columns))
		}
		if tr.ScannedColumns != 0 {
			t.Fatal("imminent deadline must prevent scans")
		}
	}
}
