package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/adtd"
	"repro/internal/metrics"
	"repro/internal/simdb"
)

// CalibrationPoint is one (α, β) candidate with its measured validation
// behaviour.
type CalibrationPoint struct {
	Alpha, Beta  float64
	ScannedRatio float64
	F1           float64
}

// CalibrationResult is the outcome of CalibrateThresholds.
type CalibrationResult struct {
	// Chosen is the recommended (α, β) pair.
	Chosen CalibrationPoint
	// Frontier holds every evaluated pair, ordered by widening band.
	Frontier []CalibrationPoint
}

// CalibrateThresholds implements the §6.7 rules of thumb as code: it sweeps
// symmetric (α, β) pairs on a validation database and picks the narrowest
// uncertainty band whose scanned-column ratio stays within maxScanRatio —
// i.e. the best F1 achievable under a given intrusiveness budget. truth maps
// "table.column" to ground-truth labels for scoring.
func CalibrateThresholds(ctx context.Context, model *adtd.Model, server *simdb.Server, dbName string, truth map[string][]string, maxScanRatio float64) (*CalibrationResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if maxScanRatio < 0 || maxScanRatio > 1 {
		return nil, fmt.Errorf("core: maxScanRatio must be in [0,1], got %v", maxScanRatio)
	}
	pairs := [][2]float64{
		{0.5, 0.5}, {0.4, 0.6}, {0.3, 0.7}, {0.2, 0.8},
		{0.1, 0.9}, {0.05, 0.95}, {0.02, 0.98},
	}
	res := &CalibrationResult{}
	for _, ab := range pairs {
		opts := DefaultOptions()
		opts.Alpha, opts.Beta = ab[0], ab[1]
		det, err := NewDetector(model, opts)
		if err != nil {
			return nil, err
		}
		rep, err := det.DetectDatabase(ctx, server, dbName, SequentialMode)
		if err != nil {
			return nil, err
		}
		acc := metrics.NewF1Accumulator()
		for _, tr := range rep.Tables {
			for _, c := range tr.Columns {
				acc.Add(c.Admitted, truth[tr.Table+"."+c.Column])
			}
		}
		res.Frontier = append(res.Frontier, CalibrationPoint{
			Alpha: ab[0], Beta: ab[1],
			ScannedRatio: rep.ScannedRatio(),
			F1:           acc.F1(),
		})
	}
	// Choose the best F1 whose scan ratio respects the budget; ties go to
	// the narrower band (less exposure). The frontier is already ordered
	// from narrowest to widest.
	best := -1
	for i, p := range res.Frontier {
		if p.ScannedRatio > maxScanRatio {
			continue
		}
		if best == -1 || p.F1 > res.Frontier[best].F1 {
			best = i
		}
	}
	if best == -1 {
		// Budget unreachable even with P2 disabled cannot happen (α=β never
		// scans), but guard anyway.
		best = 0
	}
	res.Chosen = res.Frontier[best]
	sort.SliceStable(res.Frontier, func(i, j int) bool {
		return res.Frontier[i].Beta-res.Frontier[i].Alpha < res.Frontier[j].Beta-res.Frontier[j].Alpha
	})
	return res, nil
}
