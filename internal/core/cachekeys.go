package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"

	"repro/internal/adtd"
	"repro/internal/metafeat"
	"repro/internal/simdb"
	"repro/internal/tensor"
)

// Result-cache key construction. A key must change whenever anything that
// could change the memoized model output changes:
//
//   - the model weights — covered by the Generation() prefix, bumped on
//     SetTrain/Load/ApplyFeedback, so a weight change orphans every old key
//     in O(1) without touching the cache;
//   - the effective quantization mode — int8 and fp64 forwards produce
//     (slightly) different probabilities and must never alias;
//   - the detector knobs that shape the model input — UseHistogram, and for
//     the content tier the requested columns and cell budget n;
//   - the chunk itself, hashed by content: table/column names, comments,
//     declared types, row count, ANALYZE statistics (histogram buckets
//     included) and — in the content tier, where s3 has populated them —
//     the scanned values. Hashing the values means changed table data
//     yields a fresh key and stale memoized answers silently age out; no
//     explicit data-change invalidation hook is needed.
//
// Framing is length-prefixed (every string and list is preceded by its
// length) so distinct field sequences can never collide by concatenation.

// effectiveQuantize resolves the int8 flag a request's forwards actually
// run with: the per-request preference when present, else the process
// default — and never on when the CPU lacks the kernels.
func (d *Detector) effectiveQuantize(pref *bool) bool {
	if !tensor.QuantizeAvailable() {
		return false
	}
	if pref != nil {
		return *pref
	}
	return tensor.QuantizeEnabled()
}

// metaResultKey memoizes Phase 1's probability rows for one chunk, under the
// generation of the model the request actually runs on.
func (d *Detector) metaResultKey(m *adtd.Model, chunk *metafeat.TableInfo, quant bool) string {
	h := sha256.New()
	hashTableInfo(h, chunk)
	return fmt.Sprintf("p1|g%d|q%v|h%v|%s",
		m.Generation(), quant, d.Opts.UseHistogram, hex.EncodeToString(h.Sum(nil)))
}

// contentResultKey memoizes Phase 2's probability rows for one chunk
// request. lquant versions the cached latents feeding the content tower,
// cquant the content forward itself (they differ when the cross-request
// batcher overrides a per-request preference with the process default).
func (d *Detector) contentResultKey(m *adtd.Model, chunk *metafeat.TableInfo, cols []int, n int, lquant, cquant bool) string {
	h := sha256.New()
	hashTableInfo(h, chunk)
	hashInt(h, len(cols))
	for _, c := range cols {
		hashInt(h, c)
	}
	hashInt(h, n)
	return fmt.Sprintf("p2|g%d|q%v.%v|h%v|%s",
		m.Generation(), lquant, cquant, d.Opts.UseHistogram, hex.EncodeToString(h.Sum(nil)))
}

func hashInt(h hash.Hash, v int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	h.Write(b[:])
}

func hashF64(h hash.Hash, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	h.Write(b[:])
}

func hashStr(h hash.Hash, s string) {
	hashInt(h, len(s))
	h.Write([]byte(s))
}

func hashStats(h hash.Hash, st *simdb.ColumnStats) {
	if st == nil {
		hashInt(h, 0)
		return
	}
	hashInt(h, 1)
	hashInt(h, st.RowCount)
	hashInt(h, st.NullCount)
	hashInt(h, st.NDV)
	hashInt(h, st.MinLen)
	hashInt(h, st.MaxLen)
	hashF64(h, st.AvgLen)
	hashF64(h, st.NumericRatio)
	hashF64(h, st.NumericMin)
	hashF64(h, st.NumericMax)
	if st.Histogram == nil {
		hashInt(h, 0)
		return
	}
	hashInt(h, 1)
	hashInt(h, int(st.Histogram.Kind))
	hashInt(h, len(st.Histogram.Buckets))
	for _, b := range st.Histogram.Buckets {
		hashStr(h, b.Lower)
		hashStr(h, b.Upper)
		hashInt(h, b.Count)
	}
}

// hashTableInfo frames every model-visible field of a chunk into h. Values
// are nil during Phase 1 (metadata only) and populated for scanned columns
// by the time Phase 2 hashes the chunk.
func hashTableInfo(h hash.Hash, ti *metafeat.TableInfo) {
	hashStr(h, ti.Name)
	hashStr(h, ti.Comment)
	hashInt(h, ti.RowCount)
	hashInt(h, len(ti.Columns))
	for _, c := range ti.Columns {
		hashStr(h, c.Name)
		hashStr(h, c.Comment)
		hashStr(h, c.DataType)
		hashStats(h, c.Stats)
		hashInt(h, len(c.Values))
		for _, v := range c.Values {
			hashStr(h, v)
		}
	}
}
