package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/metafeat"
)

// admittedByColumn flattens a report into column → admitted-types for
// cross-run comparison.
func admittedByColumn(rep *Report) map[string]string {
	out := make(map[string]string)
	for _, tr := range rep.Tables {
		for _, c := range tr.Columns {
			out[tr.Table+"."+c.Column] = strings.Join(c.Admitted, ",")
		}
	}
	return out
}

// TestResultCacheMemoizesDetect: a repeat detect over unchanged metadata is
// served from the content-hash result cache — the second run records result
// hits and admits exactly the same types per column.
func TestResultCacheMemoizesDetect(t *testing.T) {
	m, ds := trainedModel(t)
	opts := DefaultOptions()
	opts.ResultCacheBytes = 16 << 20
	d, err := NewDetector(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(ds)

	rep1, err := d.DetectDatabase(context.Background(), srv, "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	cold := d.Results().Stats()
	if cold.Hits != 0 {
		t.Fatalf("cold run reported %d result hits", cold.Hits)
	}
	if cold.Misses == 0 || cold.Entries == 0 {
		t.Fatalf("cold run did not populate the result cache: %+v", cold)
	}

	rep2, err := d.DetectDatabase(context.Background(), srv, "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	warm := d.Results().Stats()
	if warm.Hits == 0 {
		t.Fatal("warm run never hit the result cache")
	}
	a1, a2 := admittedByColumn(rep1), admittedByColumn(rep2)
	if len(a1) != len(a2) {
		t.Fatalf("column count changed across runs: %d vs %d", len(a1), len(a2))
	}
	for k, v := range a1 {
		if a2[k] != v {
			t.Fatalf("memoization changed %s: %q vs %q", k, v, a2[k])
		}
	}
}

// TestGenerationInvalidatesKeys: a Save/Load round trip restores identical
// weights but bumps the model generation, so every latent and result key is
// orphaned in O(1) — no stale memoized answer can survive a checkpoint
// reload, even one that happens to restore the same parameters.
func TestGenerationInvalidatesKeys(t *testing.T) {
	m, ds := trainedModel(t)
	opts := DefaultOptions()
	opts.ResultCacheBytes = 16 << 20
	d, err := NewDetector(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(ds)
	if _, err := d.DetectDatabase(context.Background(), srv, "tenant", SequentialMode); err != nil {
		t.Fatal(err)
	}

	chunk := &metafeat.TableInfo{
		Name:     "t",
		RowCount: 3,
		Columns:  []*metafeat.ColumnInfo{{Name: "c", DataType: "text"}},
	}
	latentBefore := d.cacheKey(m, "tenant", "t", 0, false)
	resultBefore := d.metaResultKey(m, chunk, false)
	genBefore := m.Generation()

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if m.Generation() <= genBefore {
		t.Fatalf("generation not bumped by Load: %d -> %d", genBefore, m.Generation())
	}
	if d.cacheKey(m, "tenant", "t", 0, false) == latentBefore {
		t.Fatal("latent cache key unchanged after Load")
	}
	if d.metaResultKey(m, chunk, false) == resultBefore {
		t.Fatal("result cache key unchanged after Load")
	}

	// The post-Load detect must recompute: its result-cache traffic is all
	// misses even though the restored weights are bit-identical.
	hitsBefore := d.Results().Stats().Hits
	if _, err := d.DetectDatabase(context.Background(), srv, "tenant", SequentialMode); err != nil {
		t.Fatal(err)
	}
	if got := d.Results().Stats().Hits; got != hitsBefore {
		t.Fatalf("post-Load detect hit stale result entries: %d -> %d hits", hitsBefore, got)
	}
}

// TestFeedbackBumpsGeneration: an online feedback update changes the
// weights, so it must advance the generation and thereby orphan cached
// latents and memoized results.
func TestFeedbackBumpsGeneration(t *testing.T) {
	m, ds := trainedModel(t)
	d, err := NewDetector(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	before := m.Generation()
	if err := d.Feedback(info, 0, ds.Test[0].Columns[0].Labels); err != nil {
		t.Fatal(err)
	}
	if m.Generation() <= before {
		t.Fatalf("generation not bumped by Feedback: %d -> %d", before, m.Generation())
	}
}
