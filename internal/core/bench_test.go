package core

import (
	"context"
	"testing"

	"repro/internal/adtd"
	"repro/internal/corpus"
	"repro/internal/simdb"
)

// benchDetector builds an untrained repro-scale detector with a near-full
// uncertainty band (α=0.01, β=0.99): an untrained model's probabilities sit
// around σ(-3) ≈ 0.047, inside the band, so every column goes through
// Phase 2 — the worst-case end-to-end path (metadata tower, content scan,
// batched content tower) that the compute runtime is meant to speed up.
func benchDetector(b *testing.B) (*Detector, *corpus.Dataset) {
	b.Helper()
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(40), 1)
	tok := adtd.BuildVocabulary(ds.Train, ds.Registry.Names(), 2000)
	types := adtd.NewTypeSpace(ds.Registry.Names())
	cfg := adtd.ReproScale()
	cfg.Layers, cfg.Hidden, cfg.Heads, cfg.Intermediate = 2, 32, 2, 48
	cfg.MetaClassifierHidden, cfg.ContentClassifierHidden = 32, 32
	m, err := adtd.New(cfg, tok, types, 7)
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Alpha, opts.Beta = 0.01, 0.99
	det, err := NewDetector(m, opts)
	if err != nil {
		b.Fatal(err)
	}
	return det, ds
}

// BenchmarkDetectDatabase times end-to-end detection over a whole tenant
// database, sequential versus pipelined — the headline number for the
// compute-runtime work (every column forced through Phase 2).
func BenchmarkDetectDatabase(b *testing.B) {
	for _, mode := range []struct {
		name string
		mode ExecMode
	}{
		{"sequential", SequentialMode},
		{"pipelined", PipelinedMode()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			det, ds := benchDetector(b)
			server := simdb.NewServer(simdb.NoLatency)
			server.LoadTables("tenant", ds.Test)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := det.DetectDatabase(context.Background(), server, "tenant", mode.mode)
				if err != nil {
					b.Fatal(err)
				}
				if rep.ScannedColumns == 0 {
					b.Fatal("benchmark must exercise Phase 2")
				}
			}
		})
	}
}
