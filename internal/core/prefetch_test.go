package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/adtd"
	"repro/internal/corpus"
	"repro/internal/simdb"
)

// phase2Detector builds an untrained tiny detector with a near-full
// uncertainty band (α=0.01, β=0.99): every column is uncertain after
// Phase 1, so the full prefetch + scan + content-inference path runs for
// every table.
func phase2Detector(t *testing.T, tables int) (*Detector, *corpus.Dataset) {
	t.Helper()
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.SmallTablesProfile(tables), 3)
	tok := adtd.BuildVocabulary(ds.Train, ds.Registry.Names(), 2000)
	types := adtd.NewTypeSpace(ds.Registry.Names())
	cfg := adtd.ReproScale()
	cfg.Layers, cfg.Hidden, cfg.Heads, cfg.Intermediate = 2, 32, 2, 48
	cfg.MetaClassifierHidden, cfg.ContentClassifierHidden = 32, 32
	m, err := adtd.New(cfg, tok, types, 7)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Alpha, opts.Beta = 0.01, 0.99
	det, err := NewDetector(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return det, ds
}

// allTables flattens every split into one tenant database.
func allTables(ds *corpus.Dataset) []*corpus.Table {
	all := make([]*corpus.Table, 0, len(ds.Train)+len(ds.Val)+len(ds.Test))
	all = append(all, ds.Train...)
	all = append(all, ds.Val...)
	return append(all, ds.Test...)
}

// newServerWith loads the tables into a zero-latency tenant.
func newServerWith(tables []*corpus.Table) *simdb.Server {
	s := simdb.NewServer(simdb.NoLatency)
	s.LoadTables("tenant", tables)
	return s
}

// TestPrefetcherParity: prefetched metadata and scans must be identical to
// the synchronous reads they replace, with every future consumed (no waste,
// no held bytes) when the batch runs to completion in table order.
func TestPrefetcherParity(t *testing.T) {
	det, ds := phase2Detector(t, 20)
	tables := allTables(ds)
	server := simdb.NewServer(simdb.NoLatency)
	server.LoadTables("tenant", tables)
	ctx := context.Background()
	conn, err := server.Connect(ctx, "tenant")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	names := make([]string, len(tables))
	for i, tb := range tables {
		names[i] = tb.Name
	}

	pf := newPrefetcher(ctx, det, conn, names, 4, 0)
	for _, tb := range tables {
		tm, _, err, ok := pf.awaitMeta(tb.Name)
		if !ok || err != nil {
			t.Fatalf("awaitMeta(%s): ok=%v err=%v", tb.Name, ok, err)
		}
		direct, _, err := det.fetchTableMeta(ctx, conn, tb.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tm, direct) {
			t.Fatalf("table %s: prefetched metadata differs from direct fetch", tb.Name)
		}

		cols := make([]string, len(tb.Columns))
		for i, c := range tb.Columns {
			cols[i] = c.Name
		}
		pf.tryStartScan(tb.Name, cols)
		content, _, err, ok := pf.awaitScan(tb.Name)
		if !ok || err != nil {
			t.Fatalf("awaitScan(%s): ok=%v err=%v", tb.Name, ok, err)
		}
		directScan, err := conn.ScanColumns(ctx, tb.Name, cols, simdb.ScanOptions{
			Strategy: det.Opts.Strategy, Rows: det.Opts.RowsToRead, Seed: det.Opts.ScanSeed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(content, directScan) {
			t.Fatalf("table %s: prefetched scan differs from direct scan", tb.Name)
		}
	}
	pf.close()
	if pf.waste != 0 || pf.heldBytes != 0 || pf.skipped != 0 {
		t.Fatalf("full consumption must leave nothing behind: waste=%d heldBytes=%d skipped=%d",
			pf.waste, pf.heldBytes, pf.skipped)
	}
	if want := 2 * len(tables); pf.hits != want {
		t.Fatalf("hits = %d, want %d", pf.hits, want)
	}
}

// TestPrefetcherBrakes: the lookahead window caps concurrent scans and the
// byte budget blocks new scans while completed content sits unconsumed —
// and a braked prefetch is skipped, never queued.
func TestPrefetcherBrakes(t *testing.T) {
	det, ds := phase2Detector(t, 20)
	tables := allTables(ds)
	server := simdb.NewServer(simdb.NoLatency)
	server.LoadTables("tenant", tables)
	ctx := context.Background()
	conn, err := server.Connect(ctx, "tenant")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cols := func(tb *corpus.Table) []string {
		out := make([]string, len(tb.Columns))
		for i, c := range tb.Columns {
			out[i] = c.Name
		}
		return out
	}

	// Window brake: one scan slot.
	pf := newPrefetcher(ctx, det, conn, nil, 1, 0)
	pf.tryStartScan(tables[0].Name, cols(tables[0]))
	pf.tryStartScan(tables[1].Name, cols(tables[1]))
	if pf.skipped != 1 {
		t.Fatalf("window brake: skipped = %d, want 1", pf.skipped)
	}
	pf.close()

	// Byte brake: one completed-but-unconsumed scan exceeds the budget.
	pf = newPrefetcher(ctx, det, conn, nil, 8, 1)
	pf.tryStartScan(tables[0].Name, cols(tables[0]))
	deadline := time.Now().Add(2 * time.Second)
	for {
		pf.mu.Lock()
		held := pf.heldBytes
		pf.mu.Unlock()
		if held > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scan never completed")
		}
		time.Sleep(time.Millisecond)
	}
	pf.tryStartScan(tables[1].Name, cols(tables[1]))
	if pf.skipped != 1 {
		t.Fatalf("byte brake: skipped = %d, want 1", pf.skipped)
	}
	if _, _, _, ok := pf.awaitScan(tables[0].Name); !ok {
		t.Fatal("held scan must still be consumable")
	}
	pf.close()
	if pf.heldBytes != 0 {
		t.Fatalf("heldBytes = %d after consume+close, want 0", pf.heldBytes)
	}
}

// TestPrefetcherCancelDrains: cancelling the batch context mid-flight must
// let close() return promptly (all reads drained), account every unconsumed
// future as waste, and leak no goroutines.
func TestPrefetcherCancelDrains(t *testing.T) {
	det, ds := phase2Detector(t, 30)
	tables := allTables(ds)
	server := simdb.NewServer(simdb.PaperLatency(0.5))
	server.LoadTables("tenant", tables)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	conn, err := server.Connect(context.Background(), "tenant")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	names := make([]string, len(tables))
	for i, tb := range tables {
		names[i] = tb.Name
	}

	before := runtime.NumGoroutine()
	window := 8
	pf := newPrefetcher(ctx, det, conn, names, window, 0)
	scans := 2
	for _, tb := range tables[:scans] {
		cols := make([]string, len(tb.Columns))
		for i, c := range tb.Columns {
			cols[i] = c.Name
		}
		pf.tryStartScan(tb.Name, cols)
	}
	cancel()

	closed := make(chan struct{})
	go func() {
		pf.close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("close() did not drain in-flight reads after cancellation")
	}
	if want := window + scans; pf.waste != want {
		t.Fatalf("waste = %d, want %d (every issued, unconsumed future)", pf.waste, want)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}

// TestPipelinedPrefetchCancelNoLeak: cancelling a full pipelined
// DetectDatabase run — work-stealing scheduler, prefetcher, and
// cross-table batcher all live — must abort with context.Canceled and wind
// everything down.
func TestPipelinedPrefetchCancelNoLeak(t *testing.T) {
	det, ds := phase2Detector(t, 30)
	// Scale 10 → 100 ms connect, 50 ms per query: even with the prefetcher
	// running the metadata waves 8 wide, the run takes well over 400 ms, so
	// a cancel at 200 ms is guaranteed to land mid-run with reads in
	// flight.
	server := simdb.NewServer(simdb.PaperLatency(10))
	server.LoadTables("tenant", allTables(ds))
	mode := ExecMode{Pipelined: true, Workers: 8, BatchChunks: 8}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	rep, err := det.DetectDatabase(ctx, server, "tenant", mode)
	cancel()
	switch {
	case err != nil:
		// Cancel landed before the jobs ran (connect/list): whole-batch abort.
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	default:
		// Mid-run cancel: abandoned tables carry the context error per-job
		// (the seed's contract), and the batch cannot have completed.
		found := false
		for _, e := range rep.Errors {
			if errors.Is(e, context.Canceled) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("mid-run cancel left no per-table context errors: %v", rep.Errors)
		}
		if len(rep.Tables) == 30 {
			t.Fatal("every table completed despite the cancel")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}
