package core

import "testing"

// TestExecModeWithDefaults pins the zero-value contract documented on
// ExecMode: 0 always means "use the default", negative always means
// "disable", and sequential modes pass through untouched.
func TestExecModeWithDefaults(t *testing.T) {
	opts := DefaultOptions() // CacheBytes 64 MiB → prefetch budget 16 MiB

	m := ExecMode{Pipelined: true}.withDefaults(opts)
	if m.Workers != 4 {
		t.Fatalf("default Workers = %d, want 4", m.Workers)
	}
	if m.Lookahead != 2*m.Workers {
		t.Fatalf("default Lookahead = %d, want %d", m.Lookahead, 2*m.Workers)
	}
	if m.PrefetchBytes != opts.CacheBytes/4 {
		t.Fatalf("default PrefetchBytes = %d, want %d", m.PrefetchBytes, opts.CacheBytes/4)
	}
	if m.BatchChunks != 8 {
		t.Fatalf("default BatchChunks = %d, want 8", m.BatchChunks)
	}

	m = ExecMode{Pipelined: true, Workers: 2, Lookahead: -1, PrefetchBytes: -1, BatchChunks: -1}.withDefaults(opts)
	if m.Lookahead != 0 {
		t.Fatalf("negative Lookahead must disable prefetching: got %d", m.Lookahead)
	}
	if m.PrefetchBytes != 0 {
		t.Fatalf("negative PrefetchBytes must drop the byte brake: got %d", m.PrefetchBytes)
	}
	if m.BatchChunks != 1 {
		t.Fatalf("negative BatchChunks must disable coalescing: got %d", m.BatchChunks)
	}

	// Legacy per-kind pools derive the unified pool size.
	m = ExecMode{Pipelined: true, PrepWorkers: 2, InferWorkers: 3}.withDefaults(opts)
	if m.Workers != 5 {
		t.Fatalf("derived Workers = %d, want 5", m.Workers)
	}

	// A tiny cache still leaves a usable prefetch budget.
	small := opts
	small.CacheBytes = 100
	m = ExecMode{Pipelined: true}.withDefaults(small)
	if m.PrefetchBytes != 1<<20 {
		t.Fatalf("floored PrefetchBytes = %d, want %d", m.PrefetchBytes, 1<<20)
	}

	// Sequential modes are never touched.
	seq := ExecMode{Lookahead: -5, BatchChunks: 3}
	if got := seq.withDefaults(opts); got != seq {
		t.Fatalf("sequential mode mutated: %+v", got)
	}

	if am := AutoMode(); !am.Pipelined || am.Workers < 4 {
		t.Fatalf("AutoMode must be pipelined with ≥4 workers: %+v", am)
	}
}
