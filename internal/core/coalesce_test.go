package core

import (
	"context"
	"encoding/json"
	"testing"
)

// canonTables serializes per-table results for byte comparison across
// execution modes.
func canonTables(t *testing.T, rep *Report) string {
	t.Helper()
	out, err := json.Marshal(rep.Tables)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestCrossTableBatchingReducesForwards: over a database of many narrow
// tables with every column uncertain, cross-table batching must coalesce
// the per-table Phase-2 forwards ≥5× while producing byte-identical
// results — the batch mask keeps per-chunk outputs independent of batch
// composition, so a bigger batch is purely fewer model calls.
func TestCrossTableBatchingReducesForwards(t *testing.T) {
	det, ds := phase2Detector(t, 40)
	tables := allTables(ds)
	server := newServerWith(tables)

	seq, err := det.DetectDatabase(context.Background(), server, "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	if seq.ContentForwards != len(tables) {
		t.Fatalf("sequential forwards = %d, want one per table (%d)", seq.ContentForwards, len(tables))
	}

	det2, _ := phase2Detector(t, 40) // fresh caches
	mode := ExecMode{Pipelined: true, Workers: 8, BatchChunks: 8}
	batched, err := det2.DetectDatabase(context.Background(), server, "tenant", mode)
	if err != nil {
		t.Fatal(err)
	}
	if batched.ContentForwards == 0 {
		t.Fatal("batched run reported zero content forwards")
	}
	if drop := float64(seq.ContentForwards) / float64(batched.ContentForwards); drop < 5 {
		t.Fatalf("forwards drop = %.1fx (%d vs %d), want ≥ 5x",
			drop, batched.ContentForwards, seq.ContentForwards)
	}
	if canonTables(t, seq) != canonTables(t, batched) {
		t.Fatal("batched results differ from sequential results")
	}

	det3, _ := phase2Detector(t, 40)
	unbatched, err := det3.DetectDatabase(context.Background(), server, "tenant",
		ExecMode{Pipelined: true, Workers: 8, BatchChunks: -1})
	if err != nil {
		t.Fatal(err)
	}
	if unbatched.ContentForwards != seq.ContentForwards {
		t.Fatalf("BatchChunks<0 must disable coalescing: forwards = %d, want %d",
			unbatched.ContentForwards, seq.ContentForwards)
	}
	if canonTables(t, seq) != canonTables(t, unbatched) {
		t.Fatal("unbatched stealing results differ from sequential results")
	}
}
