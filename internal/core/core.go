// Package core implements the Taste two-phase semantic type detection
// framework of §3 — the paper's primary contribution. Phase 1 fetches only
// native metadata from the user database and runs the metadata tower of the
// ADTD model; when any (column, type) probability falls in the uncertainty
// band (α, β), Phase 2 scans just the uncertain columns' content and runs
// the full double-tower model, reusing Phase 1's latent representations
// through the latent cache. Batches of tables execute either sequentially
// or through the pipelined scheduler of §5.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/adtd"
	"repro/internal/corpus"
	"repro/internal/metafeat"
	"repro/internal/pipeline"
	"repro/internal/simdb"
)

// Options configures a Detector. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	// Alpha and Beta are the probability thresholds of §3.2
	// (0 ≤ α ≤ β ≤ 1): p ≥ β admits a type, p ≤ α rejects it, and
	// anything in between makes the column uncertain and triggers Phase 2.
	// Setting Alpha == Beta disables Phase 2 entirely (the strict-privacy
	// "Taste w/o P2" mode).
	Alpha, Beta float64
	// RowsToRead is m: how many rows a Phase-2 scan retrieves (§6.1.2).
	RowsToRead int
	// CellsPerColumn is n: how many non-empty cell values feed the model.
	CellsPerColumn int
	// SplitThreshold is l: tables wider than this are split into chunks.
	SplitThreshold int
	// Strategy selects first-m-rows or random sampling for Phase-2 scans.
	Strategy simdb.ScanStrategy
	// ScanSeed seeds random sampling.
	ScanSeed int64
	// UseHistogram runs ANALYZE TABLE when statistics are missing and
	// feeds the statistics/histogram features to the model ("Taste with
	// histogram").
	UseHistogram bool
	// AdmitThreshold is the Phase-2 admission threshold on content-tower
	// probabilities.
	AdmitThreshold float64
	// CacheCapacity bounds the latent cache; 0 disables caching ("Taste
	// w/o caching").
	CacheCapacity int
}

// DefaultOptions returns the paper's default configuration (§6.2):
// α=0.1, β=0.9, m=50, n=10, l=20, first-m-rows scanning, no histograms.
func DefaultOptions() Options {
	return Options{
		Alpha:          0.1,
		Beta:           0.9,
		RowsToRead:     50,
		CellsPerColumn: 10,
		SplitThreshold: 20,
		Strategy:       simdb.FirstRows,
		AdmitThreshold: 0.5,
		CacheCapacity:  4096,
	}
}

// Validate reports option errors.
func (o Options) Validate() error {
	switch {
	case o.Alpha < 0 || o.Beta > 1 || o.Alpha > o.Beta:
		return fmt.Errorf("core: need 0 ≤ α ≤ β ≤ 1, got α=%v β=%v", o.Alpha, o.Beta)
	case o.RowsToRead < 1:
		return fmt.Errorf("core: RowsToRead must be ≥ 1")
	case o.CellsPerColumn < 1:
		return fmt.Errorf("core: CellsPerColumn must be ≥ 1")
	case o.AdmitThreshold <= 0 || o.AdmitThreshold >= 1:
		return fmt.Errorf("core: AdmitThreshold must be in (0,1)")
	}
	return nil
}

// P2Disabled reports whether the options make Phase 2 unreachable.
func (o Options) P2Disabled() bool { return o.Alpha == o.Beta }

// Detector is the Taste detection service: a trained ADTD model plus the
// framework configuration. It is safe for concurrent use once the model is
// in eval mode.
type Detector struct {
	Model *adtd.Model
	Opts  Options

	cache *adtd.LatentCache

	mu       sync.Mutex
	feedback []adtd.FeedbackExample
}

// NewDetector creates a detector over a trained model. The model is
// switched to eval mode.
func NewDetector(model *adtd.Model, opts Options) (*Detector, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	model.SetEval()
	return &Detector{
		Model: model,
		Opts:  opts,
		cache: adtd.NewLatentCache(opts.CacheCapacity),
	}, nil
}

// Cache exposes the latent cache (for stats and tests).
func (d *Detector) Cache() *adtd.LatentCache { return d.cache }

// ColumnResult is the detection outcome for one column.
type ColumnResult struct {
	Table  string
	Column string
	// Admitted is the final set Aᶜ of admitted semantic types (§3.3),
	// sorted; empty means the column has no semantic type.
	Admitted []string
	// Uncertain reports whether Phase 1 was uncertain about the column.
	Uncertain bool
	// Phase records which phase produced the final answer (1 or 2).
	Phase int
	// Probs are the deciding phase's probabilities indexed by the model's
	// type space.
	Probs []float64
}

// TableResult aggregates one table's detection.
type TableResult struct {
	Table          string
	Columns        []ColumnResult
	ScannedColumns int
}

// Report aggregates a batch detection run — the end-to-end view of §6.2.
type Report struct {
	Tables           []*TableResult
	Duration         time.Duration
	TotalColumns     int
	UncertainColumns int
	ScannedColumns   int
	CacheHits        int
	CacheMisses      int
	Errors           []error
}

// ScannedRatio returns the intrusiveness metric of §6.2.
func (r *Report) ScannedRatio() float64 {
	if r.TotalColumns == 0 {
		return 0
	}
	return float64(r.ScannedColumns) / float64(r.TotalColumns)
}

// Find returns the result for a column, or nil.
func (r *Report) Find(table, column string) *ColumnResult {
	for _, t := range r.Tables {
		if t.Table != table {
			continue
		}
		for i := range t.Columns {
			if t.Columns[i].Column == column {
				return &t.Columns[i]
			}
		}
	}
	return nil
}

// ExecMode selects how a batch is executed (§5).
type ExecMode struct {
	// Pipelined enables Algorithm 1; false processes tables sequentially.
	Pipelined bool
	// PrepWorkers and InferWorkers size thread pools TP1 and TP2.
	PrepWorkers  int
	InferWorkers int
}

// SequentialMode is the execution mode of the baselines and of "Taste w/o
// pipelining".
var SequentialMode = ExecMode{}

// PipelinedMode returns the default pipelined mode with the paper's pool
// size of 2 (§6.3).
func PipelinedMode() ExecMode {
	return ExecMode{Pipelined: true, PrepWorkers: 2, InferWorkers: 2}
}

// AutoMode sizes the pipelined pools from the machine instead of the
// paper's fixed 2/2: half the logical CPUs per pool (floor 2), leaving the
// other half to the tensor runtime's sharded kernels.
func AutoMode() ExecMode {
	w := runtime.GOMAXPROCS(0) / 2
	if w < 2 {
		w = 2
	}
	return ExecMode{Pipelined: true, PrepWorkers: w, InferWorkers: w}
}

// tableJob carries per-table state across the four stages.
type tableJob struct {
	d       *Detector
	conn    *simdb.Conn
	dbName  string
	table   string
	info    *metafeat.TableInfo
	chunks  []*metafeat.TableInfo
	offsets []int // global index of each chunk's first column
	// p1Probs[i] is Phase 1's probability row for global column i.
	p1Probs   [][]float64
	uncertain []int // global indices of uncertain columns
	res       *TableResult
}

func (d *Detector) cacheKey(dbName, table string, chunk int) string {
	return fmt.Sprintf("%s.%s#%d/h=%v", dbName, table, chunk, d.Opts.UseHistogram)
}

// s1PrepMetadata fetches metadata (running ANALYZE first when histograms
// are requested but absent) and builds the chunked table view.
func (j *tableJob) s1PrepMetadata() error {
	tm, err := j.conn.TableMetadata(j.table)
	if err != nil {
		return err
	}
	if j.d.Opts.UseHistogram {
		missing := false
		for i := range tm.Columns {
			if tm.Columns[i].Stats == nil {
				missing = true
				break
			}
		}
		if missing {
			if err := j.conn.AnalyzeTable(j.table, simdb.AnalyzeOptions{}); err != nil {
				return err
			}
			if tm, err = j.conn.TableMetadata(j.table); err != nil {
				return err
			}
		}
	}
	j.info = metafeat.FromTableMeta(tm)
	j.chunks = j.info.Split(j.d.Opts.SplitThreshold)
	off := 0
	for _, ch := range j.chunks {
		j.offsets = append(j.offsets, off)
		off += len(ch.Columns)
	}
	return nil
}

// s2InferMetadata runs Phase 1 inference per chunk, populates the latent
// cache, and classifies columns into certain/uncertain.
func (j *tableJob) s2InferMetadata() error {
	opts := j.d.Opts
	j.res = &TableResult{Table: j.table}
	// Chunks cover the columns consecutively, so appending per chunk keeps
	// p1Probs indexed by global column position.
	for ci, chunk := range j.chunks {
		menc, probs := j.d.Model.PredictMeta(chunk, opts.UseHistogram)
		j.d.cache.Put(j.d.cacheKey(j.dbName, j.table, ci), menc) // deep-copies
		menc.Release()
		j.p1Probs = append(j.p1Probs, probs...)
	}
	for global, row := range j.p1Probs {
		col := j.info.Columns[global]
		cr := ColumnResult{Table: j.table, Column: col.Name, Phase: 1, Probs: row}
		cr.Admitted = j.d.admitted(row, opts.Beta)
		if !opts.P2Disabled() && isUncertain(row, opts.Alpha, opts.Beta) {
			cr.Uncertain = true
			j.uncertain = append(j.uncertain, global)
		}
		j.res.Columns = append(j.res.Columns, cr)
	}
	return nil
}

// s3PrepContent scans the uncertain columns' content (§3.3). Certain
// columns are never scanned.
func (j *tableJob) s3PrepContent() error {
	if len(j.uncertain) == 0 {
		return nil
	}
	opts := j.d.Opts
	names := make([]string, len(j.uncertain))
	for i, g := range j.uncertain {
		names[i] = j.info.Columns[g].Name
	}
	content, err := j.conn.ScanColumns(j.table, names, simdb.ScanOptions{
		Strategy: opts.Strategy,
		Rows:     opts.RowsToRead,
		Seed:     opts.ScanSeed,
	})
	if err != nil {
		return err
	}
	for _, g := range j.uncertain {
		j.info.Columns[g].Values = content[j.info.Columns[g].Name]
	}
	j.res.ScannedColumns = len(j.uncertain)
	return nil
}

// s4InferContent runs Phase 2 over the table's uncertain columns, reusing
// cached metadata latents when available and recomputing them otherwise.
// All chunks are classified in one batched forward (PredictContentBatch),
// which amortizes kernel dispatch and classifier overhead across chunks.
func (j *tableJob) s4InferContent() error {
	if len(j.uncertain) == 0 {
		return nil
	}
	opts := j.d.Opts
	uncertainSet := make(map[int]bool, len(j.uncertain))
	for _, g := range j.uncertain {
		uncertainSet[g] = true
	}
	var reqs []adtd.ContentRequest
	var globalsPerReq [][]int
	for ci, chunk := range j.chunks {
		var localCols []int
		var globals []int
		for local := range chunk.Columns {
			if uncertainSet[j.offsets[ci]+local] {
				localCols = append(localCols, local)
				globals = append(globals, j.offsets[ci]+local)
			}
		}
		if len(localCols) == 0 {
			continue
		}
		menc := j.d.cache.Get(j.d.cacheKey(j.dbName, j.table, ci))
		if menc == nil {
			// Cache disabled or evicted: pay the duplicate metadata-tower
			// computation the latent cache exists to avoid (§4.2.2). The
			// fresh encoding is released by the batch call below; cached
			// encodings are deep copies and survive it.
			menc = j.d.Model.EncodeMetadata(j.d.Model.Encoder().BuildMetaInput(chunk, opts.UseHistogram))
		}
		reqs = append(reqs, adtd.ContentRequest{Menc: menc, Table: chunk, Cols: localCols})
		globalsPerReq = append(globalsPerReq, globals)
	}
	if len(reqs) == 0 {
		return nil
	}
	batch := j.d.Model.PredictContentBatch(reqs, opts.CellsPerColumn)
	for r, globals := range globalsPerReq {
		for slot, g := range globals {
			cr := &j.res.Columns[g]
			cr.Phase = 2
			cr.Probs = batch[r][slot]
			cr.Admitted = j.d.admitted(batch[r][slot], opts.AdmitThreshold)
		}
	}
	return nil
}

// admitted returns the sorted type names with probability ≥ threshold,
// excluding the background type.
func (d *Detector) admitted(probs []float64, threshold float64) []string {
	var out []string
	for i, p := range probs {
		if i == 0 {
			continue // background type is never reported
		}
		if p >= threshold {
			out = append(out, d.Model.Types.Name(i))
		}
	}
	sort.Strings(out)
	return out
}

// isUncertain implements Definition 3.2 over all types in S.
func isUncertain(probs []float64, alpha, beta float64) bool {
	for _, p := range probs {
		if p > alpha && p < beta {
			return true
		}
	}
	return false
}

// stages exposes the job's four ordered stages for the scheduler.
func (j *tableJob) stages() []pipeline.Stage {
	return []pipeline.Stage{
		{Kind: pipeline.Prep, Name: j.table + "/p1-prep", Run: j.s1PrepMetadata},
		{Kind: pipeline.Infer, Name: j.table + "/p1-infer", Run: j.s2InferMetadata},
		{Kind: pipeline.Prep, Name: j.table + "/p2-prep", Run: j.s3PrepContent},
		{Kind: pipeline.Infer, Name: j.table + "/p2-infer", Run: j.s4InferContent},
	}
}

// DetectTable runs end-to-end detection for one table over an existing
// connection.
func (d *Detector) DetectTable(conn *simdb.Conn, dbName, table string) (*TableResult, error) {
	j := &tableJob{d: d, conn: conn, dbName: dbName, table: table}
	for _, st := range j.stages() {
		if err := st.Run(); err != nil {
			return nil, fmt.Errorf("core: table %s, stage %s: %w", table, st.Name, err)
		}
	}
	return j.res, nil
}

// DetectDatabase runs end-to-end detection over every table of a database,
// reusing one connection for the whole batch (§5 recommends connection
// reuse) and executing per the given mode. Per-table failures are collected
// in Report.Errors without aborting the batch.
func (d *Detector) DetectDatabase(server *simdb.Server, dbName string, mode ExecMode) (*Report, error) {
	start := time.Now()
	conn, err := server.Connect(dbName)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	tables, err := conn.ListTables()
	if err != nil {
		return nil, err
	}

	hits0, misses0 := d.cache.Stats()
	jobs := make([]*pipeline.Job, len(tables))
	tjobs := make([]*tableJob, len(tables))
	for i, t := range tables {
		tjobs[i] = &tableJob{d: d, conn: conn, dbName: dbName, table: t}
		jobs[i] = &pipeline.Job{ID: t, Stages: tjobs[i].stages()}
	}
	sched := pipeline.Scheduler{
		Pipelined:    mode.Pipelined,
		PrepWorkers:  mode.PrepWorkers,
		InferWorkers: mode.InferWorkers,
	}
	if err := sched.Run(jobs); err != nil {
		return nil, err
	}

	rep := &Report{Duration: time.Since(start)}
	for i, j := range jobs {
		if j.Err != nil {
			rep.Errors = append(rep.Errors, fmt.Errorf("table %s: %w", j.ID, j.Err))
			continue
		}
		tr := tjobs[i].res
		rep.Tables = append(rep.Tables, tr)
		rep.TotalColumns += len(tr.Columns)
		rep.ScannedColumns += tr.ScannedColumns
		for _, c := range tr.Columns {
			if c.Uncertain {
				rep.UncertainColumns++
			}
		}
	}
	hits1, misses1 := d.cache.Stats()
	rep.CacheHits = hits1 - hits0
	rep.CacheMisses = misses1 - misses0
	return rep, nil
}

// Feedback records user corrections and immediately applies a lightweight
// online update of the classifier heads (§8 future work). table must carry
// the column's metadata; content values are optional.
func (d *Detector) Feedback(table *metafeat.TableInfo, column int, labels []string) error {
	if column < 0 || column >= len(table.Columns) {
		return fmt.Errorf("core: column index %d out of range", column)
	}
	ex := adtd.FeedbackExample{Table: table, Column: column, Labels: labels}
	d.mu.Lock()
	d.feedback = append(d.feedback, ex)
	d.mu.Unlock()
	return d.Model.ApplyFeedback([]adtd.FeedbackExample{ex}, 0.02, 5)
}

// FeedbackLog returns all recorded corrections.
func (d *Detector) FeedbackLog() []adtd.FeedbackExample {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]adtd.FeedbackExample(nil), d.feedback...)
}

// RegisterTypes extends the detector's type domain with user-defined
// semantic types (§8): the registry entries drive future corpus generation
// and the model's classifier heads grow in place.
func (d *Detector) RegisterTypes(reg *corpus.Registry, types []*corpus.Type) error {
	var names []string
	for _, t := range types {
		if err := reg.Register(t); err != nil {
			return err
		}
		names = append(names, t.Name)
	}
	d.Model.ExtendTypes(names, 0)
	return nil
}
