// Package core implements the Taste two-phase semantic type detection
// framework of §3 — the paper's primary contribution. Phase 1 fetches only
// native metadata from the user database and runs the metadata tower of the
// ADTD model; when any (column, type) probability falls in the uncertainty
// band (α, β), Phase 2 scans just the uncertain columns' content and runs
// the full double-tower model, reusing Phase 1's latent representations
// through the latent cache. Batches of tables execute either sequentially
// or through the pipelined scheduler of §5.
//
// The detection path is fault tolerant: transient database errors are
// retried with exponential backoff + jitter, request deadlines propagate
// into every stage, and when Phase 2 cannot run (scan failures, imminent
// deadline) the affected columns degrade gracefully to their Phase-1
// metadata answer — optionally sharpened by the rule-based detector when
// content was already fetched — instead of failing the request.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adtd"
	"repro/internal/cache"
	"repro/internal/corpus"
	"repro/internal/metafeat"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/retry"
	"repro/internal/ruledet"
	"repro/internal/simdb"
)

// Options configures a Detector. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	// Alpha and Beta are the probability thresholds of §3.2
	// (0 ≤ α ≤ β ≤ 1): p ≥ β admits a type, p ≤ α rejects it, and
	// anything in between makes the column uncertain and triggers Phase 2.
	// Setting Alpha == Beta disables Phase 2 entirely (the strict-privacy
	// "Taste w/o P2" mode).
	Alpha, Beta float64
	// RowsToRead is m: how many rows a Phase-2 scan retrieves (§6.1.2).
	RowsToRead int
	// CellsPerColumn is n: how many non-empty cell values feed the model.
	CellsPerColumn int
	// SplitThreshold is l: tables wider than this are split into chunks.
	SplitThreshold int
	// Strategy selects first-m-rows or random sampling for Phase-2 scans.
	Strategy simdb.ScanStrategy
	// ScanSeed seeds random sampling and the retry jitter.
	ScanSeed int64
	// UseHistogram runs ANALYZE TABLE when statistics are missing and
	// feeds the statistics/histogram features to the model ("Taste with
	// histogram").
	UseHistogram bool
	// AdmitThreshold is the Phase-2 admission threshold on content-tower
	// probabilities.
	AdmitThreshold float64
	// CacheBytes bounds the latent cache's accounted memory (sized from the
	// cached encodings' tensor dimensions); ≤ 0 disables latent caching
	// ("Taste w/o caching").
	CacheBytes int64
	// ResultCacheBytes bounds the content-hash result cache that memoizes
	// per-chunk model outputs across requests; ≤ 0 (the default) disables
	// memoization. Serving surfaces opt in; experiment/ablation runs keep it
	// off so every detect pays the model forwards it is measuring.
	ResultCacheBytes int64
	// CacheShards is the shard count for both cache tiers (rounded up to a
	// power of two); ≤ 0 selects cache.DefaultShards.
	CacheShards int

	// MaxRetries caps how many times a transient database error is retried
	// per operation (connect, metadata fetch, content scan) — and therefore
	// per column, since a column's content is fetched by exactly one scan.
	MaxRetries int
	// RetryBaseDelay is the backoff base: attempt k sleeps
	// base·2ᵏ + jitter, capped at RetryMaxDelay. Jitter is drawn from a
	// generator seeded by ScanSeed, keeping runs reproducible.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps a single backoff sleep.
	RetryMaxDelay time.Duration
	// DeadlineMargin triggers early degradation: when less than this
	// remains before the request deadline, Phase-2 work is skipped and the
	// affected columns fall back to Phase 1 rather than risk returning
	// nothing at all.
	DeadlineMargin time.Duration
	// DisableDegradation restores the strict behaviour: any Phase-2
	// failure fails the whole table job instead of degrading its columns.
	DisableDegradation bool
}

// DefaultOptions returns the paper's default configuration (§6.2):
// α=0.1, β=0.9, m=50, n=10, l=20, first-m-rows scanning, no histograms —
// plus the fault-tolerance defaults (3 retries, 2 ms backoff base).
func DefaultOptions() Options {
	return Options{
		Alpha:          0.1,
		Beta:           0.9,
		RowsToRead:     50,
		CellsPerColumn: 10,
		SplitThreshold: 20,
		Strategy:       simdb.FirstRows,
		AdmitThreshold: 0.5,
		CacheBytes:     64 << 20,
		MaxRetries:     3,
		RetryBaseDelay: 2 * time.Millisecond,
		RetryMaxDelay:  100 * time.Millisecond,
		DeadlineMargin: 10 * time.Millisecond,
	}
}

// Validate reports option errors.
func (o Options) Validate() error {
	switch {
	case o.Alpha < 0 || o.Beta > 1 || o.Alpha > o.Beta:
		return fmt.Errorf("core: need 0 ≤ α ≤ β ≤ 1, got α=%v β=%v", o.Alpha, o.Beta)
	case o.RowsToRead < 1:
		return fmt.Errorf("core: RowsToRead must be ≥ 1")
	case o.CellsPerColumn < 1:
		return fmt.Errorf("core: CellsPerColumn must be ≥ 1")
	case o.AdmitThreshold <= 0 || o.AdmitThreshold >= 1:
		return fmt.Errorf("core: AdmitThreshold must be in (0,1)")
	case o.MaxRetries < 0:
		return fmt.Errorf("core: MaxRetries must be ≥ 0")
	case o.RetryBaseDelay < 0 || o.RetryMaxDelay < 0 || o.DeadlineMargin < 0:
		return fmt.Errorf("core: retry delays and deadline margin must be ≥ 0")
	}
	return nil
}

// P2Disabled reports whether the options make Phase 2 unreachable.
func (o Options) P2Disabled() bool { return o.Alpha == o.Beta }

// FaultStats is the detector's fault-tolerance ledger: how often the
// degradation ladder was exercised since the detector was created.
type FaultStats struct {
	// Retries counts backoff retries of transient database errors.
	Retries int
	// DegradedColumns counts columns that fell back to their Phase-1
	// answer (both failure- and deadline-triggered).
	DegradedColumns int
	// DeadlineDegraded counts degradations caused by an imminent or
	// exceeded deadline.
	DeadlineDegraded int
	// FailureDegraded counts degradations caused by exhausted retries or
	// permanent scan errors.
	FailureDegraded int
}

// ContentInferencer abstracts how Phase-2 content batches are classified.
// The default is a direct PredictContentBatch on the request's model; a
// service-level micro-batcher can be plugged in with SetContentInferencer to
// coalesce batches across concurrent requests. The model is passed per call
// because the detector hot-swaps models: a request pinned to an old model
// must be classified by that model even if a swap lands mid-flight, so
// implementations that coalesce must group by model and never mix requests
// from different models into one forward. Implementations must return
// results indexed like reqs, and should return ctx's error when the request
// dies while queued or in flight — the detector maps deadline errors to
// graceful degradation, not failures.
type ContentInferencer interface {
	InferContentBatch(ctx context.Context, m *adtd.Model, reqs []adtd.ContentRequest, n int) ([][][]float64, error)
}

// Detector is the Taste detection service: a trained ADTD model plus the
// framework configuration. It is safe for concurrent use once the model is
// in eval mode.
//
// The model is held behind an atomic pointer (RCU style): every request
// captures the pointer exactly once when its table job is created and uses
// that model for all four stages, so SwapModel never tears a request across
// two weight sets. Caches need no flushing on swap — every cache key embeds
// the model's process-unique generation.
type Detector struct {
	model atomic.Pointer[adtd.Model]
	Opts  Options

	cache   *cache.Latent
	results *cache.Result
	rules   *ruledet.Detector

	infMu      sync.RWMutex
	contentInf ContentInferencer

	mu       sync.Mutex
	feedback []adtd.FeedbackExample

	retrier *retry.Retrier

	faultMu sync.Mutex
	stats   FaultStats
}

// NewDetector creates a detector over a trained model. The model is
// switched to eval mode.
func NewDetector(model *adtd.Model, opts Options) (*Detector, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	model.SetEval()
	latents := cache.NewLatent(opts.CacheBytes, opts.CacheShards)
	latents.SetMetrics(cache.NewTierMetrics(obs.Default, "latent"))
	results := cache.NewResult(opts.ResultCacheBytes, opts.CacheShards)
	results.SetMetrics(cache.NewTierMetrics(obs.Default, "result"))
	d := &Detector{
		Opts:    opts,
		cache:   latents,
		results: results,
		rules:   ruledet.Default(),
		retrier: retry.New(retry.Policy{
			MaxRetries:     opts.MaxRetries,
			BaseDelay:      opts.RetryBaseDelay,
			MaxDelay:       opts.RetryMaxDelay,
			DeadlineMargin: opts.DeadlineMargin,
		}, opts.ScanSeed+1),
	}
	d.model.Store(model)
	return d, nil
}

// Model returns the currently serving model. Requests in flight may still be
// using an older model they captured at admission.
func (d *Detector) Model() *adtd.Model { return d.model.Load() }

// SwapModel atomically installs m as the serving model and returns the
// previous one. The swap is zero-downtime: in-flight requests finish on the
// model they started with, new requests see m immediately, and no cache
// flush is needed — latent and result keys embed the weight generation,
// which is process-unique, so entries from the two models can never alias.
// The old model is returned (not destroyed) so callers can swap back.
func (d *Detector) SwapModel(m *adtd.Model) *adtd.Model {
	m.SetEval()
	return d.model.Swap(m)
}

// modelKey carries a per-request model override through the stage contexts.
type modelKey struct{}

// WithModel returns a context pinning detection to the given model instead
// of the detector's current one — the mechanism behind per-request model
// version overrides. The model must share the detector's type space
// semantics (it normally comes from the registry as a Sibling of the serving
// model); it is used for every stage of the request, so the answer is
// internally consistent with exactly one model.
func WithModel(ctx context.Context, m *adtd.Model) context.Context {
	return context.WithValue(ctx, modelKey{}, m)
}

// requestModel resolves the model a request should run on: the WithModel
// override when present, else the current serving model.
func (d *Detector) requestModel(ctx context.Context) *adtd.Model {
	if m, ok := ctx.Value(modelKey{}).(*adtd.Model); ok && m != nil {
		return m
	}
	return d.model.Load()
}

// Cache exposes the latent cache tier (for stats and tests).
func (d *Detector) Cache() *cache.Latent { return d.cache }

// Results exposes the content-hash result cache tier (for stats and tests).
func (d *Detector) Results() *cache.Result { return d.results }

// SetContentInferencer routes Phase-2 content inference through ci; nil
// restores the direct model call. Safe to call concurrently with detection,
// though it is normally set once at service startup.
func (d *Detector) SetContentInferencer(ci ContentInferencer) {
	d.infMu.Lock()
	d.contentInf = ci
	d.infMu.Unlock()
}

func (d *Detector) contentInferencer() ContentInferencer {
	d.infMu.RLock()
	defer d.infMu.RUnlock()
	return d.contentInf
}

// FaultStats returns a snapshot of the fault-tolerance ledger.
func (d *Detector) FaultStats() FaultStats {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	return d.stats
}

func (d *Detector) noteRetry() {
	d.faultMu.Lock()
	d.stats.Retries++
	d.faultMu.Unlock()
	detectorRetriesTotal.Inc()
}

func (d *Detector) noteDegraded(n int, deadline bool) {
	if n == 0 {
		return
	}
	d.faultMu.Lock()
	d.stats.DegradedColumns += n
	if deadline {
		d.stats.DeadlineDegraded += n
	} else {
		d.stats.FailureDegraded += n
	}
	d.faultMu.Unlock()
	if deadline {
		degradedDeadlineTotal.Add(int64(n))
	} else {
		degradedFailureTotal.Add(int64(n))
	}
}

// retry runs op under the detector's retry policy (the shared
// internal/retry machinery): transient database errors are retried up to
// MaxRetries times with exponential backoff + seeded jitter, giving up
// early when the context dies or the next backoff would cross the deadline.
// Retries are recorded in the detector ledger and, when acct is non-nil, in
// the database's accounting ledger. Returns the retry count.
func (d *Detector) retry(ctx context.Context, acct *simdb.Accounting, op func() error) (int, error) {
	return d.retrier.Do(ctx, simdb.IsTransient, func() {
		d.noteRetry()
		if acct != nil {
			acct.AddRetry()
		}
	}, op)
}

// ColumnResult is the detection outcome for one column.
type ColumnResult struct {
	Table  string
	Column string
	// Admitted is the final set Aᶜ of admitted semantic types (§3.3),
	// sorted; empty means the column has no semantic type.
	Admitted []string
	// Uncertain reports whether Phase 1 was uncertain about the column.
	Uncertain bool
	// Phase records which phase produced the final answer (1 or 2).
	Phase int
	// Degraded reports that Phase 2 was required but could not run; the
	// answer is Phase 1's (possibly sharpened by the rule-based detector).
	Degraded bool
	// DegradeReason explains a degradation ("content scan failed: …",
	// "deadline imminent", …). Empty unless Degraded.
	DegradeReason string
	// Probs are the deciding phase's probabilities indexed by the model's
	// type space.
	Probs []float64
}

// TableResult aggregates one table's detection.
type TableResult struct {
	Table          string
	Columns        []ColumnResult
	ScannedColumns int
	// Retries counts the backoff retries spent on this table alone. Callers
	// aggregating concurrent requests must sum these rather than diffing the
	// detector's global FaultStats ledger, which other requests also move.
	Retries int
}

// DegradedColumns counts the table's degraded columns.
func (t *TableResult) DegradedColumns() int {
	n := 0
	for i := range t.Columns {
		if t.Columns[i].Degraded {
			n++
		}
	}
	return n
}

// Report aggregates a batch detection run — the end-to-end view of §6.2.
type Report struct {
	Tables           []*TableResult
	Duration         time.Duration
	TotalColumns     int
	UncertainColumns int
	ScannedColumns   int
	// DegradedColumns counts columns answered by the degradation ladder.
	DegradedColumns int
	// Retries counts backoff retries spent on this batch.
	Retries     int
	CacheHits   int
	CacheMisses int
	// ContentForwards counts the Phase-2 content batches this request sent
	// to the model — each one padded batched forward in direct mode, or one
	// submission to the cross-request inferencer. Cross-table batching
	// exists to shrink this number (DESIGN.md §16).
	ContentForwards int
	// PrefetchHits/PrefetchWasted/PrefetchSkipped summarize the scan
	// prefetcher: consumed reads, reads completed for nothing, and reads
	// declined by a capacity brake.
	PrefetchHits    int
	PrefetchWasted  int
	PrefetchSkipped int
	// Steals and StolenStages summarize work-stealing migrations during
	// pipelined execution.
	Steals       int64
	StolenStages int64
	Errors       []error
}

// ScannedRatio returns the intrusiveness metric of §6.2.
func (r *Report) ScannedRatio() float64 {
	if r.TotalColumns == 0 {
		return 0
	}
	return float64(r.ScannedColumns) / float64(r.TotalColumns)
}

// Find returns the result for a column, or nil.
func (r *Report) Find(table, column string) *ColumnResult {
	for _, t := range r.Tables {
		if t.Table != table {
			continue
		}
		for i := range t.Columns {
			if t.Columns[i].Column == column {
				return &t.Columns[i]
			}
		}
	}
	return nil
}

// ExecMode selects how a batch is executed (§5, DESIGN.md §16).
//
// Zero-value semantics, uniform across every tunable below: 0 always means
// "use the default" (resolved against the detector's Options when the batch
// starts), and a negative value always means "disable the feature". The
// zero ExecMode is therefore exactly SequentialMode, and a bare
// ExecMode{Pipelined: true} runs the work-stealing scheduler with every
// knob at its default. Callers must not treat 0 as a literal size anywhere
// in this struct.
type ExecMode struct {
	// Pipelined enables the work-stealing scheduler (Algorithm 1 +
	// DESIGN.md §16); false processes tables sequentially.
	Pipelined bool
	// Workers sizes the unified work-stealing pool. 0 derives the size
	// from PrepWorkers+InferWorkers — the capacity the legacy fixed pools
	// offered — or defaults to 4, the paper's 2+2, when those are unset
	// too.
	Workers int
	// PrepWorkers and InferWorkers are the legacy §5 fixed-pool sizes.
	// Stage kinds are scheduling priorities now, not dedicated lanes, so
	// the two survive only as capacity inputs to the Workers derivation.
	PrepWorkers  int
	InferWorkers int
	// Lookahead bounds the scan prefetcher: at most this many table
	// metadata fetches plus content scans run ahead of the stages that
	// will consume them. 0 defaults to 2×Workers; negative disables
	// prefetching.
	Lookahead int
	// PrefetchBytes bounds the bytes held by completed-but-unconsumed
	// prefetched scans — backpressure tied to the cache byte budget. 0
	// defaults to a quarter of Options.CacheBytes (floor 1 MiB); negative
	// removes the byte brake, leaving only the Lookahead window.
	PrefetchBytes int64
	// BatchChunks caps the table chunks coalesced into one cross-table
	// Phase-2 forward within a single DetectDatabase call. 0 defaults to
	// 8 (matching the serving micro-batcher); 1 or negative disables
	// cross-table batching so every table issues its own forward.
	BatchChunks int
}

// SequentialMode is the execution mode of the baselines and of "Taste w/o
// pipelining".
var SequentialMode = ExecMode{}

// PipelinedMode returns the default pipelined mode with the paper's pool
// size of 2 (§6.3) — 4 workers total under the work-stealing scheduler.
func PipelinedMode() ExecMode {
	return ExecMode{Pipelined: true, PrepWorkers: 2, InferWorkers: 2}
}

// AutoMode sizes the work-stealing pool from the machine instead of the
// paper's fixed 2+2: one worker per logical CPU (floor 4, so a small host
// still overlaps I/O with compute). The legacy per-kind fields are filled
// in for callers that still display or override them; lookahead and batch
// knobs stay 0 and resolve to their defaults per the struct contract.
func AutoMode() ExecMode {
	w := runtime.GOMAXPROCS(0)
	if w < 4 {
		w = 4
	}
	return ExecMode{Pipelined: true, Workers: w, PrepWorkers: w / 2, InferWorkers: w - w/2}
}

// withDefaults resolves the mode's zero values against the detector
// options, returning a fully concrete mode: Workers ≥ 1, Lookahead and
// BatchChunks either positive or explicitly disabled (negative input maps
// to the disabled sentinel 0 for Lookahead / 1 for BatchChunks). Sequential
// modes pass through untouched.
func (m ExecMode) withDefaults(opts Options) ExecMode {
	if !m.Pipelined {
		return m
	}
	if m.Workers == 0 {
		m.Workers = pipeline.Scheduler{PrepWorkers: m.PrepWorkers, InferWorkers: m.InferWorkers}.WorkerCount()
	}
	switch {
	case m.Lookahead < 0:
		m.Lookahead = 0
	case m.Lookahead == 0:
		m.Lookahead = 2 * m.Workers
	}
	switch {
	case m.PrefetchBytes < 0:
		m.PrefetchBytes = 0 // no byte brake; window still bounds
	case m.PrefetchBytes == 0:
		m.PrefetchBytes = opts.CacheBytes / 4
		if m.PrefetchBytes < 1<<20 {
			m.PrefetchBytes = 1 << 20
		}
	}
	switch {
	case m.BatchChunks < 0:
		m.BatchChunks = 1
	case m.BatchChunks == 0:
		m.BatchChunks = 8
	}
	return m
}

// quantKey carries a per-request int8 quantization override through the
// stage contexts.
type quantKey struct{}

// WithQuantize returns a context carrying a per-request quantization
// preference for the inference stages: true forces the int8 fast path on
// (when selectable), false forces it off, overriding the process default set
// by tensor.SetQuantize. Requests without the value follow the default. The
// cross-request content inferencer batches requests from many contexts and
// therefore always uses the process default.
func WithQuantize(ctx context.Context, on bool) context.Context {
	return context.WithValue(ctx, quantKey{}, on)
}

// quantPref extracts the per-request quantization preference; nil means
// "follow the process default".
func quantPref(ctx context.Context) *bool {
	if v, ok := ctx.Value(quantKey{}).(bool); ok {
		return &v
	}
	return nil
}

// tableJob carries per-table state across the four stages. The model is
// captured once at job creation: all four stages (and their cache keys) use
// the same weights even if the detector hot-swaps mid-request.
type tableJob struct {
	d      *Detector
	model  *adtd.Model
	conn   *simdb.Conn
	dbName string
	table  string
	// pf, when set, serves this job's storage reads from the batch's scan
	// prefetcher; rb, when set, routes s4's chunks through the batch's
	// cross-table coalescer; fwd, when set, counts content forwards issued
	// on the direct (uncoalesced) path.
	pf      *prefetcher
	rb      *requestBatcher
	fwd     *atomic.Int64
	info    *metafeat.TableInfo
	chunks  []*metafeat.TableInfo
	offsets []int // global index of each chunk's first column
	// p1Probs[i] is Phase 1's probability row for global column i.
	p1Probs   [][]float64
	uncertain []int // global indices of uncertain columns
	retries   int   // backoff retries spent on this table
	res       *TableResult
}

// cacheKey identifies a chunk's latents in the latent cache. The model
// generation prefix orphans every cached latent in O(1) when the weights
// change (SetTrain, Load, ApplyFeedback) — and, because generations are
// process-unique, keeps entries from hot-swapped models from ever aliasing.
// The quantization flag keeps int8 and fp64 latents apart.
func (d *Detector) cacheKey(m *adtd.Model, dbName, table string, chunk int, quant bool) string {
	return fmt.Sprintf("g%d/q%v/%s.%s#%d/h=%v", m.Generation(), quant, dbName, table, chunk, d.Opts.UseHistogram)
}

// deadlineNear reports whether the request deadline has passed or is within
// margin — the trigger for pre-emptive degradation. A plain cancellation
// (no deadline) is not "near": it is handled as an abort by the caller.
func deadlineNear(ctx context.Context, margin time.Duration) (string, bool) {
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return "deadline exceeded", true
		}
		return "", false
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= margin {
		return "deadline imminent", true
	}
	return "", false
}

// fetchTableMeta fetches a table's metadata, running ANALYZE first when
// histograms are requested but statistics are absent. Transient failures
// are retried per the backoff policy; the retry count is returned for the
// caller's table ledger. Shared by the synchronous s1 path and the
// prefetcher's metadata lookahead.
func (d *Detector) fetchTableMeta(ctx context.Context, conn *simdb.Conn, table string) (*simdb.TableMeta, int, error) {
	var tm *simdb.TableMeta
	retries := 0
	n, err := d.retry(ctx, conn.Accounting(), func() error {
		var e error
		tm, e = conn.TableMetadata(ctx, table)
		return e
	})
	retries += n
	if err != nil {
		return nil, retries, err
	}
	if d.Opts.UseHistogram {
		missing := false
		for i := range tm.Columns {
			if tm.Columns[i].Stats == nil {
				missing = true
				break
			}
		}
		if missing {
			n, err := d.retry(ctx, conn.Accounting(), func() error {
				return conn.AnalyzeTable(ctx, table, simdb.AnalyzeOptions{})
			})
			retries += n
			if err != nil {
				return nil, retries, err
			}
			n, err = d.retry(ctx, conn.Accounting(), func() error {
				var e error
				tm, e = conn.TableMetadata(ctx, table)
				return e
			})
			retries += n
			if err != nil {
				return nil, retries, err
			}
		}
	}
	return tm, retries, nil
}

// s1PrepMetadata fetches metadata — from the batch prefetcher's lookahead
// when it got there first, synchronously otherwise — and builds the chunked
// table view.
func (j *tableJob) s1PrepMetadata(ctx context.Context) error {
	var tm *simdb.TableMeta
	var n int
	var err error
	ok := false
	if j.pf != nil {
		tm, n, err, ok = j.pf.awaitMeta(j.table)
	}
	if !ok {
		tm, n, err = j.d.fetchTableMeta(ctx, j.conn, j.table)
	}
	j.retries += n
	if err != nil {
		return err
	}
	j.info = metafeat.FromTableMeta(tm)
	j.chunks = j.info.Split(j.d.Opts.SplitThreshold)
	off := 0
	for _, ch := range j.chunks {
		j.offsets = append(j.offsets, off)
		off += len(ch.Columns)
	}
	return nil
}

// s2InferMetadata runs Phase 1 inference per chunk, populates the latent
// cache, and classifies columns into certain/uncertain.
func (j *tableJob) s2InferMetadata(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	opts := j.d.Opts
	j.res = &TableResult{Table: j.table}
	quant := j.d.effectiveQuantize(quantPref(ctx))
	// Chunks cover the columns consecutively, so appending per chunk keeps
	// p1Probs indexed by global column position.
	for ci, chunk := range j.chunks {
		// Result-cache fast path: the chunk's metadata hashes to a key that
		// memoizes Phase 1's probability rows, so a repeat detect over
		// unchanged metadata skips the metadata tower entirely. The latent
		// cache keeps its (older) entry for this chunk, so a Phase-2 stage
		// downstream still finds latents without recomputing them.
		var rkey string
		if j.d.results.Enabled() {
			rkey = j.d.metaResultKey(j.model, chunk, quant)
			if probs, ok := j.d.results.Get(rkey); ok {
				j.p1Probs = append(j.p1Probs, probs...)
				continue
			}
		}
		menc, probs := j.model.PredictMetaQ(chunk, opts.UseHistogram, quantPref(ctx))
		if !j.d.cache.Put(j.d.cacheKey(j.model, j.dbName, j.table, ci, quant), menc) {
			// Not consumed (disabled, oversized, or an equal entry already
			// cached): the fresh graph goes back to the tensor arena.
			menc.Release()
		}
		if rkey != "" {
			j.d.results.Put(rkey, probs)
		}
		j.p1Probs = append(j.p1Probs, probs...)
	}
	for global, row := range j.p1Probs {
		col := j.info.Columns[global]
		cr := ColumnResult{Table: j.table, Column: col.Name, Phase: 1, Probs: row}
		cr.Admitted = admitted(j.model, row, opts.Beta)
		if !opts.P2Disabled() && isUncertain(row, opts.Alpha, opts.Beta) {
			cr.Uncertain = true
			j.uncertain = append(j.uncertain, global)
		}
		j.res.Columns = append(j.res.Columns, cr)
	}
	// The uncertain set is known the moment Phase 1 resolves: start the
	// content scan now, overlapping it with whatever inference the pool
	// runs before this job's s3 is dispatched.
	if j.pf != nil && len(j.uncertain) > 0 {
		names := make([]string, len(j.uncertain))
		for i, g := range j.uncertain {
			names[i] = j.info.Columns[g].Name
		}
		j.pf.tryStartScan(j.table, names)
	}
	return nil
}

// degrade marks the given (global) columns as degraded with the reason,
// leaving their Phase-1 answer in place. Columns Phase 2 already resolved
// are skipped.
func (j *tableJob) degrade(globals []int, reason string, deadline bool) {
	n := 0
	for _, g := range globals {
		cr := &j.res.Columns[g]
		if cr.Degraded || cr.Phase == 2 {
			continue
		}
		cr.Degraded = true
		cr.DegradeReason = reason
		n++
	}
	j.d.noteDegraded(n, deadline)
}

// degradeWithRules degrades columns whose content was already fetched: the
// rule-based detector (regex/dictionary validators) runs over the scanned
// values and its hits are merged into the Phase-1 answer — cheaper than the
// content tower by orders of magnitude, so it fits inside a dying deadline.
func (j *tableJob) degradeWithRules(globals []int, reason string, deadline bool) {
	for _, g := range globals {
		cr := &j.res.Columns[g]
		if cr.Degraded || cr.Phase == 2 {
			continue
		}
		if vals := j.info.Columns[g].Values; len(vals) > 0 {
			cr.Admitted = mergeTypes(cr.Admitted, j.d.ruleFallback(j.model, vals))
		}
	}
	j.degrade(globals, reason, deadline)
}

// ruleFallback runs the rule-based detector over values, keeping only types
// the given model's type space knows.
func (d *Detector) ruleFallback(m *adtd.Model, values []string) []string {
	if d.rules == nil {
		return nil
	}
	var out []string
	for _, t := range d.rules.DetectColumn(values) {
		if _, ok := m.Types.Index(t); ok {
			out = append(out, t)
		}
	}
	return out
}

// mergeTypes returns the sorted union of two admitted-type sets.
func mergeTypes(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, s := range [][]string{a, b} {
		for _, t := range s {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sort.Strings(out)
	return out
}

// s3PrepContent scans the uncertain columns' content (§3.3). Certain
// columns are never scanned. Transient scan failures are retried with
// backoff; exhausted retries or permanent errors degrade the columns to
// Phase 1 instead of failing the table (unless DisableDegradation).
func (j *tableJob) s3PrepContent(ctx context.Context) error {
	if len(j.uncertain) == 0 {
		return nil
	}
	opts := j.d.Opts
	if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err // user cancellation: abort, nothing to salvage
	}
	if !opts.DisableDegradation {
		if reason, ok := deadlineNear(ctx, opts.DeadlineMargin); ok {
			j.degrade(j.uncertain, reason, true)
			return nil
		}
	}
	var content map[string][]string
	var n int
	var err error
	ok := false
	if j.pf != nil {
		// Consume the scan s2 started (same columns, same options); falls
		// through to the synchronous path when a capacity brake skipped it.
		content, n, err, ok = j.pf.awaitScan(j.table)
	}
	if !ok {
		names := make([]string, len(j.uncertain))
		for i, g := range j.uncertain {
			names[i] = j.info.Columns[g].Name
		}
		n, err = j.d.retry(ctx, j.conn.Accounting(), func() error {
			var e error
			content, e = j.conn.ScanColumns(ctx, j.table, names, simdb.ScanOptions{
				Strategy: opts.Strategy,
				Rows:     opts.RowsToRead,
				Seed:     opts.ScanSeed,
			})
			return e
		})
	}
	j.retries += n
	if err != nil {
		if opts.DisableDegradation {
			return err
		}
		if ctxErr := ctx.Err(); ctxErr != nil && !errors.Is(ctxErr, context.DeadlineExceeded) {
			return ctxErr
		}
		if reason, ok := deadlineNear(ctx, opts.DeadlineMargin); ok {
			j.degrade(j.uncertain, reason, true)
		} else {
			j.degrade(j.uncertain, "content scan failed: "+err.Error(), false)
		}
		return nil
	}
	for _, g := range j.uncertain {
		j.info.Columns[g].Values = content[j.info.Columns[g].Name]
	}
	j.res.ScannedColumns = len(j.uncertain)
	return nil
}

// s4InferContent runs Phase 2 over the table's pending uncertain columns,
// reusing cached metadata latents when available and recomputing them
// otherwise. All chunks are classified in one batched forward
// (PredictContentBatch), which amortizes kernel dispatch and classifier
// overhead across chunks. Columns already degraded by s3 are skipped; when
// the deadline is near, the remaining columns degrade too — with the
// rule-based detector over their already-fetched content as a cheap stand-in
// for the content tower.
func (j *tableJob) s4InferContent(ctx context.Context) error {
	var pending []int
	for _, g := range j.uncertain {
		if !j.res.Columns[g].Degraded {
			pending = append(pending, g)
		}
	}
	if len(pending) == 0 {
		return nil
	}
	opts := j.d.Opts
	if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if !opts.DisableDegradation {
		if reason, ok := deadlineNear(ctx, opts.DeadlineMargin); ok {
			j.degradeWithRules(pending, reason, true)
			return nil
		}
	} else if err := ctx.Err(); err != nil {
		return err
	}
	pendingSet := make(map[int]bool, len(pending))
	for _, g := range pending {
		pendingSet[g] = true
	}
	// lquant is the flag the latents were produced under in s2 (per-request
	// preference); cquant is what the content forward below actually runs
	// with — the cross-request inferencer batches many contexts and always
	// uses the process default. Both version the result key.
	lquant := j.d.effectiveQuantize(quantPref(ctx))
	cquant := lquant
	ci := j.d.contentInferencer()
	hasInferencer := ci != nil
	if hasInferencer {
		cquant = j.d.effectiveQuantize(nil)
	}
	applyRows := func(globals []int, rows [][]float64) {
		for slot, g := range globals {
			cr := &j.res.Columns[g]
			cr.Phase = 2
			cr.Probs = rows[slot]
			cr.Admitted = admitted(j.model, rows[slot], opts.AdmitThreshold)
		}
	}
	var reqs []adtd.ContentRequest
	var globalsPerReq [][]int
	var keysPerReq []string
	for ci, chunk := range j.chunks {
		var localCols []int
		var globals []int
		for local := range chunk.Columns {
			if pendingSet[j.offsets[ci]+local] {
				localCols = append(localCols, local)
				globals = append(globals, j.offsets[ci]+local)
			}
		}
		if len(localCols) == 0 {
			continue
		}
		// Result-cache fast path: the key hashes the chunk's metadata AND
		// the scanned values, so changed table content yields a different
		// key and stale memoized answers simply never resolve again.
		var rkey string
		if j.d.results.Enabled() {
			rkey = j.d.contentResultKey(j.model, chunk, localCols, opts.CellsPerColumn, lquant, cquant)
			if rows, ok := j.d.results.Get(rkey); ok && len(rows) == len(globals) {
				applyRows(globals, rows)
				continue
			}
		}
		menc := j.d.cache.Get(j.d.cacheKey(j.model, j.dbName, j.table, ci, lquant))
		if menc == nil {
			// Cache disabled or evicted: pay the duplicate metadata-tower
			// computation the latent cache exists to avoid (§4.2.2). The
			// fresh encoding is released by the batch call below; cached
			// encodings are graph-free views and survive it.
			menc = j.model.EncodeMetadata(j.model.Encoder().BuildMetaInput(chunk, opts.UseHistogram))
		}
		reqs = append(reqs, adtd.ContentRequest{Menc: menc, Table: chunk, Cols: localCols})
		globalsPerReq = append(globalsPerReq, globals)
		keysPerReq = append(keysPerReq, rkey)
	}
	if len(reqs) == 0 {
		return nil
	}
	// inferFailed maps a batch-inference error to the degradation ladder:
	// the columns keep their Phase-1 answer, sharpened by the rules over
	// the already-fetched content. Returns the error to propagate (nil when
	// degradation absorbed it).
	inferFailed := func(err error) error {
		if opts.DisableDegradation {
			return err
		}
		if ctxErr := ctx.Err(); ctxErr != nil && !errors.Is(ctxErr, context.DeadlineExceeded) {
			return ctxErr // user cancellation: abort, nothing to salvage
		}
		if errors.Is(err, context.DeadlineExceeded) {
			j.degradeWithRules(pending, "deadline exceeded in content inference", true)
		} else {
			j.degradeWithRules(pending, "content inference failed: "+err.Error(), false)
		}
		return nil
	}
	var batch [][][]float64
	switch {
	case j.rb != nil:
		// Cross-table coalescing: the chunks merge with other tables' into
		// padded batched forwards (which themselves go through the
		// cross-request inferencer when one is installed).
		var err error
		batch, err = j.rb.submit(ctx, j.model, reqs)
		if err != nil {
			return inferFailed(err)
		}
	case hasInferencer:
		if j.fwd != nil {
			j.fwd.Add(1)
		}
		var err error
		batch, err = ci.InferContentBatch(ctx, j.model, reqs, opts.CellsPerColumn)
		if err != nil {
			return inferFailed(err)
		}
	default:
		if j.fwd != nil {
			j.fwd.Add(1)
		}
		batch = j.model.PredictContentBatchQ(reqs, opts.CellsPerColumn, quantPref(ctx))
	}
	for r, globals := range globalsPerReq {
		applyRows(globals, batch[r])
		if keysPerReq[r] != "" {
			// Memoize only full successes: degraded and error paths never
			// reach here, so cached entries are always clean answers.
			j.d.results.Put(keysPerReq[r], batch[r])
		}
	}
	return nil
}

// admitted returns the sorted type names with probability ≥ threshold,
// excluding the background type. Names resolve against the request's model,
// whose type space indexed the probability row.
func admitted(m *adtd.Model, probs []float64, threshold float64) []string {
	var out []string
	for i, p := range probs {
		if i == 0 {
			continue // background type is never reported
		}
		if p >= threshold {
			out = append(out, m.Types.Name(i))
		}
	}
	sort.Strings(out)
	return out
}

// isUncertain implements Definition 3.2 over all types in S.
func isUncertain(probs []float64, alpha, beta float64) bool {
	for _, p := range probs {
		if p > alpha && p < beta {
			return true
		}
	}
	return false
}

// stages exposes the job's four ordered stages for the scheduler, each
// wrapped with its duration histogram and (when the request is traced) a
// span named "s<N>:<table>".
func (j *tableJob) stages() []pipeline.Stage {
	raw := []pipeline.Stage{
		{Kind: pipeline.Prep, Name: j.table + "/p1-prep", Run: j.s1PrepMetadata},
		{Kind: pipeline.Infer, Name: j.table + "/p1-infer", Run: j.s2InferMetadata},
		{Kind: pipeline.Prep, Name: j.table + "/p2-prep", Run: j.s3PrepContent},
		{Kind: pipeline.Infer, Name: j.table + "/p2-infer", Run: j.s4InferContent},
	}
	for i := range raw {
		raw[i] = instrumentStage(i, j.table, raw[i])
	}
	return raw
}

// DetectTable runs end-to-end detection for one table over an existing
// connection. A nil ctx means context.Background().
func (d *Detector) DetectTable(ctx context.Context, conn *simdb.Conn, dbName, table string) (*TableResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	j := &tableJob{d: d, model: d.requestModel(ctx), conn: conn, dbName: dbName, table: table}
	for _, st := range j.stages() {
		if err := st.Run(ctx); err != nil {
			// Salvage a deadline-killed job when Phase 1 already answered.
			if j.res != nil && !d.Opts.DisableDegradation && errors.Is(err, context.DeadlineExceeded) {
				j.degrade(j.uncertain, "deadline exceeded", true)
				j.res.Retries = j.retries
				tablesDetectedTotal.Inc()
				return j.res, nil
			}
			return nil, fmt.Errorf("core: table %s, stage %s: %w", table, st.Name, err)
		}
	}
	j.res.Retries = j.retries
	tablesDetectedTotal.Inc()
	return j.res, nil
}

// DetectDatabase runs end-to-end detection over every table of a database,
// reusing one connection for the whole batch (§5 recommends connection
// reuse) and executing per the given mode. Per-table failures are collected
// in Report.Errors without aborting the batch; tables whose Phase 1
// completed before a deadline killed the batch are salvaged with their
// unresolved columns degraded.
func (d *Detector) DetectDatabase(ctx context.Context, server *simdb.Server, dbName string, mode ExecMode) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	batchRetries := 0
	var conn *simdb.Conn
	_, connSpan := obs.StartSpan(ctx, "connect")
	n, err := d.retry(ctx, server.Accounting(), func() error {
		var e error
		conn, e = server.Connect(ctx, dbName)
		return e
	})
	connSpan.End()
	batchRetries += n
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	var tables []string
	_, listSpan := obs.StartSpan(ctx, "list_tables")
	n, err = d.retry(ctx, server.Accounting(), func() error {
		var e error
		tables, e = conn.ListTables(ctx)
		return e
	})
	listSpan.End()
	batchRetries += n
	if err != nil {
		return nil, err
	}

	cs0 := d.cache.Stats()
	// One model for the whole batch: every table of the request is answered
	// by the same weights, however long the batch runs across swaps.
	model := d.requestModel(ctx)
	mode = mode.withDefaults(d.Opts)
	var fwd atomic.Int64
	var pf *prefetcher
	var rb *requestBatcher
	if mode.Pipelined {
		if mode.Lookahead > 0 {
			pf = newPrefetcher(ctx, d, conn, tables, mode.Lookahead, mode.PrefetchBytes)
		}
		if mode.BatchChunks > 1 {
			rb = newRequestBatcher(d, mode.BatchChunks, mode.Workers, len(tables), &fwd)
		}
	}
	jobs := make([]*pipeline.Job, len(tables))
	tjobs := make([]*tableJob, len(tables))
	for i, t := range tables {
		tjobs[i] = &tableJob{d: d, model: model, conn: conn, dbName: dbName, table: t, pf: pf, rb: rb, fwd: &fwd}
		stages := tjobs[i].stages()
		if rb != nil {
			stages = rb.wrapStages(stages)
		}
		jobs[i] = &pipeline.Job{ID: t, Stages: stages}
	}
	sched := pipeline.Scheduler{Pipelined: mode.Pipelined, Workers: mode.Workers}
	stats, err := sched.RunStats(ctx, jobs)
	if pf != nil {
		// Drain before assembling the report: close waits for in-flight
		// prefetches, so returning from here is a no-leak barrier even on
		// cancellation, and wasted reads land in the retry ledger below.
		pf.close()
	}
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Duration: time.Since(start), Retries: batchRetries,
		ContentForwards: int(fwd.Load()),
		Steals:          stats.Steals, StolenStages: stats.Stolen,
	}
	if pf != nil {
		rep.PrefetchHits, rep.PrefetchWasted, rep.PrefetchSkipped = pf.hits, pf.waste, pf.skipped
		rep.Retries += pf.wastedRetries
	}
	for i, j := range jobs {
		tj := tjobs[i]
		// Retries spent on a table count even when the table ultimately
		// failed — the server-side ledger saw them too.
		rep.Retries += tj.retries
		if j.Err != nil {
			if tj.res != nil && !d.Opts.DisableDegradation && errors.Is(j.Err, context.DeadlineExceeded) {
				// Phase 1 finished before the deadline: keep the table,
				// degrading everything Phase 2 never reached.
				tj.degrade(tj.uncertain, "deadline exceeded before phase 2", true)
			} else {
				rep.Errors = append(rep.Errors, fmt.Errorf("table %s: %w", j.ID, j.Err))
				continue
			}
		}
		tr := tj.res
		tr.Retries = tj.retries
		tablesDetectedTotal.Inc()
		rep.Tables = append(rep.Tables, tr)
		rep.TotalColumns += len(tr.Columns)
		rep.ScannedColumns += tr.ScannedColumns
		for _, c := range tr.Columns {
			if c.Uncertain {
				rep.UncertainColumns++
			}
			if c.Degraded {
				rep.DegradedColumns++
			}
		}
	}
	cs1 := d.cache.Stats()
	rep.CacheHits = int(cs1.Hits - cs0.Hits)
	rep.CacheMisses = int(cs1.Misses - cs0.Misses)
	return rep, nil
}

// Feedback records user corrections and immediately applies a lightweight
// online update of the classifier heads (§8 future work). table must carry
// the column's metadata; content values are optional.
func (d *Detector) Feedback(table *metafeat.TableInfo, column int, labels []string) error {
	if column < 0 || column >= len(table.Columns) {
		return fmt.Errorf("core: column index %d out of range", column)
	}
	ex := adtd.FeedbackExample{Table: table, Column: column, Labels: labels}
	d.mu.Lock()
	d.feedback = append(d.feedback, ex)
	d.mu.Unlock()
	return d.Model().ApplyFeedback([]adtd.FeedbackExample{ex}, 0.02, 5)
}

// FeedbackLog returns all recorded corrections.
func (d *Detector) FeedbackLog() []adtd.FeedbackExample {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]adtd.FeedbackExample(nil), d.feedback...)
}

// RegisterTypes extends the detector's type domain with user-defined
// semantic types (§8): the registry entries drive future corpus generation
// and the model's classifier heads grow in place.
func (d *Detector) RegisterTypes(reg *corpus.Registry, types []*corpus.Type) error {
	var names []string
	for _, t := range types {
		if err := reg.Register(t); err != nil {
			return err
		}
		names = append(names, t.Name)
	}
	d.Model().ExtendTypes(names, 0)
	return nil
}
