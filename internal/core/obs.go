package core

import (
	"context"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Stage metric handles (DESIGN.md §9). Each of the four Taste stages gets a
// duration histogram sharing the common latency bucket layout, so the
// per-phase split of the paper's Table 7 can be read straight off /metrics.
var (
	stageSeconds = [4]*obs.Histogram{
		obs.Default.LatencyHistogram("taste_stage_seconds", "stage", "s1"),
		obs.Default.LatencyHistogram("taste_stage_seconds", "stage", "s2"),
		obs.Default.LatencyHistogram("taste_stage_seconds", "stage", "s3"),
		obs.Default.LatencyHistogram("taste_stage_seconds", "stage", "s4"),
	}
	stageErrorsTotal = [4]*obs.Counter{
		obs.Default.Counter("taste_stage_errors_total", "stage", "s1"),
		obs.Default.Counter("taste_stage_errors_total", "stage", "s2"),
		obs.Default.Counter("taste_stage_errors_total", "stage", "s3"),
		obs.Default.Counter("taste_stage_errors_total", "stage", "s4"),
	}
	detectorRetriesTotal  = obs.Default.Counter("taste_detector_retries_total")
	degradedDeadlineTotal = obs.Default.Counter("taste_detector_degraded_columns_total", "cause", "deadline")
	degradedFailureTotal  = obs.Default.Counter("taste_detector_degraded_columns_total", "cause", "failure")
	tablesDetectedTotal   = obs.Default.Counter("taste_detector_tables_total")

	// Cross-table batching series (DESIGN.md §16): forwards issued by the
	// intra-request coalescer and how many chunks each carried.
	batchForwardsTotal   = obs.Default.Counter("taste_pipeline_batch_forwards_total")
	batchOccupancyChunks = obs.Default.Histogram("taste_pipeline_batch_chunks", obs.ExpBuckets(1, 2, 8))
	batchPanicsTotal     = obs.Default.Counter("taste_pipeline_batch_panics_total")
)

// prefetchCount records scan-prefetcher outcomes: hit (consumed), waste
// (completed but never consumed), skipped (declined by a capacity brake).
func prefetchCount(kind, outcome string, n int) {
	if n > 0 {
		obs.Default.Counter("taste_pipeline_prefetch_total", "kind", kind, "outcome", outcome).Add(int64(n))
	}
}

// stageLabels name the four stages in spans: "s<N>:<table>", so a trace
// consumer can aggregate by the prefix before ':'.
var stageLabels = [4]string{"s1", "s2", "s3", "s4"}

// instrumentStage wraps a stage Run with a trace span (child of the request
// trace, when one is active) and the stage's duration histogram.
func instrumentStage(idx int, table string, st pipeline.Stage) pipeline.Stage {
	run := st.Run
	st.Run = func(ctx context.Context) error {
		ctx, sp := obs.StartSpan(ctx, stageLabels[idx]+":"+table)
		start := time.Now()
		err := run(ctx)
		stageSeconds[idx].ObserveDuration(time.Since(start))
		if err != nil {
			stageErrorsTotal[idx].Inc()
		}
		sp.End()
		return err
	}
	return st
}
