package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/adtd"
	"repro/internal/corpus"
	"repro/internal/metafeat"
	"repro/internal/metrics"
	"repro/internal/simdb"
)

// trained caches one trained tiny model + dataset per test binary.
var trained struct {
	once  sync.Once
	model *adtd.Model
	ds    *corpus.Dataset
	err   error
}

func trainedModel(t *testing.T) (*adtd.Model, *corpus.Dataset) {
	t.Helper()
	trained.once.Do(func() {
		// A WikiTable-like profile with a slice of type-less columns so
		// that even a briefly trained model resolves some columns in P1
		// (the background class is frequent and saturates quickly).
		profile := corpus.WikiTableProfile(150)
		profile.NullRate = 0.15
		ds := corpus.Generate(corpus.DefaultRegistry(), profile, 1)
		tok := adtd.BuildVocabulary(ds.Train, ds.Registry.Names(), 3000)
		types := adtd.NewTypeSpace(ds.Registry.Names())
		m, err := adtd.New(adtd.ReproScale(), tok, types, 11)
		if err != nil {
			trained.err = err
			return
		}
		tcfg := adtd.DefaultTrainConfig()
		tcfg.Epochs = 14
		tcfg.LR, tcfg.FinalLR = 1.5e-3, 4e-4
		tcfg.PosWeight = 6
		tcfg.WeightDecay = 1e-4
		tcfg.Cells = 6
		tcfg.ContentColumnsPerChunk = 4
		if _, err := adtd.FineTune(m, ds.Train, tcfg); err != nil {
			trained.err = err
			return
		}
		trained.model, trained.ds = m, ds
	})
	if trained.err != nil {
		t.Fatal(trained.err)
	}
	return trained.model, trained.ds
}

func newServer(ds *corpus.Dataset) *simdb.Server {
	s := simdb.NewServer(simdb.NoLatency)
	s.LoadTables("tenant", ds.Test)
	return s
}

func truthMap(tables []*corpus.Table) map[string][]string {
	m := make(map[string][]string)
	for _, t := range tables {
		for _, c := range t.Columns {
			m[t.Name+"."+c.Name] = c.Labels
		}
	}
	return m
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptions()
	bad.Alpha, bad.Beta = 0.9, 0.1
	if bad.Validate() == nil {
		t.Fatal("α > β must fail validation")
	}
	bad = DefaultOptions()
	bad.RowsToRead = 0
	if bad.Validate() == nil {
		t.Fatal("m=0 must fail")
	}
	bad = DefaultOptions()
	bad.AdmitThreshold = 1.5
	if bad.Validate() == nil {
		t.Fatal("bad admit threshold must fail")
	}
}

func TestP2Disabled(t *testing.T) {
	o := DefaultOptions()
	if o.P2Disabled() {
		t.Fatal("default options must enable P2")
	}
	o.Alpha, o.Beta = 0.5, 0.5
	if !o.P2Disabled() {
		t.Fatal("α == β must disable P2")
	}
}

func TestNewDetectorRejectsBadOptions(t *testing.T) {
	m, _ := trainedModel(t)
	bad := DefaultOptions()
	bad.Alpha = -1
	if _, err := NewDetector(m, bad); err == nil {
		t.Fatal("expected error")
	}
}

func TestDetectTableProducesResults(t *testing.T) {
	m, ds := trainedModel(t)
	d, err := NewDetector(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(ds)
	conn, err := s.Connect(context.Background(), "tenant")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	src := ds.Test[0]
	res, err := d.DetectTable(context.Background(), conn, "tenant", src.Name)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table != src.Name || len(res.Columns) != len(src.Columns) {
		t.Fatalf("result mismatch: %+v", res)
	}
	for i, c := range res.Columns {
		if c.Column != src.Columns[i].Name {
			t.Fatalf("column %d name mismatch", i)
		}
		if c.Phase != 1 && c.Phase != 2 {
			t.Fatalf("bad phase %d", c.Phase)
		}
		if c.Phase == 2 && !c.Uncertain {
			t.Fatal("phase 2 implies uncertain")
		}
		for _, typ := range c.Admitted {
			if typ == corpus.NullType {
				t.Fatal("background type must never be admitted")
			}
		}
	}
}

func TestDetectDatabaseSequentialVsPipelinedSameAnswers(t *testing.T) {
	m, ds := trainedModel(t)
	d, _ := NewDetector(m, DefaultOptions())
	s1 := newServer(ds)
	seq, err := d.DetectDatabase(context.Background(), s1, "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := NewDetector(m, DefaultOptions())
	s2 := newServer(ds)
	pipe, err := d2.DetectDatabase(context.Background(), s2, "tenant", PipelinedMode())
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Errors) > 0 || len(pipe.Errors) > 0 {
		t.Fatalf("errors: %v / %v", seq.Errors, pipe.Errors)
	}
	if seq.TotalColumns != pipe.TotalColumns || seq.ScannedColumns != pipe.ScannedColumns {
		t.Fatalf("pipelining changed outcomes: %d/%d vs %d/%d",
			seq.TotalColumns, seq.ScannedColumns, pipe.TotalColumns, pipe.ScannedColumns)
	}
	for _, tr := range seq.Tables {
		for _, c := range tr.Columns {
			pc := pipe.Find(tr.Table, c.Column)
			if pc == nil {
				t.Fatalf("pipelined run missing %s.%s", tr.Table, c.Column)
			}
			if strings.Join(pc.Admitted, ",") != strings.Join(c.Admitted, ",") {
				t.Fatalf("admitted types differ for %s.%s", tr.Table, c.Column)
			}
		}
	}
}

func TestTrainedDetectorBeatsChance(t *testing.T) {
	m, ds := trainedModel(t)
	d, _ := NewDetector(m, DefaultOptions())
	rep, err := d.DetectDatabase(context.Background(), newServer(ds), "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	truth := truthMap(ds.Test)
	acc := metrics.NewF1Accumulator()
	for _, tr := range rep.Tables {
		for _, c := range tr.Columns {
			acc.Add(c.Admitted, truth[tr.Table+"."+c.Column])
		}
	}
	if f1 := acc.F1(); f1 < 0.6 {
		t.Fatalf("trained detector F1 = %v, want ≥ 0.6 (tiny training run)", f1)
	}
}

func TestP2DisabledNeverScans(t *testing.T) {
	m, ds := trainedModel(t)
	opts := DefaultOptions()
	opts.Alpha, opts.Beta = 0.5, 0.5
	d, _ := NewDetector(m, opts)
	s := newServer(ds)
	rep, err := d.DetectDatabase(context.Background(), s, "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ScannedColumns != 0 || rep.UncertainColumns != 0 {
		t.Fatalf("strict privacy mode scanned %d columns", rep.ScannedColumns)
	}
	if snap := s.Accounting().Snapshot(); snap.ColumnsScanned != 0 {
		t.Fatalf("database saw %d scanned columns", snap.ColumnsScanned)
	}
	for _, tr := range rep.Tables {
		for _, c := range tr.Columns {
			if c.Phase != 1 {
				t.Fatal("all columns must resolve in phase 1")
			}
		}
	}
}

func TestOnlyUncertainColumnsScanned(t *testing.T) {
	m, ds := trainedModel(t)
	d, _ := NewDetector(m, DefaultOptions())
	s := newServer(ds)
	rep, err := d.DetectDatabase(context.Background(), s, "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ScannedColumns != rep.UncertainColumns {
		t.Fatalf("scanned %d but uncertain %d", rep.ScannedColumns, rep.UncertainColumns)
	}
	snap := s.Accounting().Snapshot()
	if snap.DistinctColsScanned != rep.ScannedColumns {
		t.Fatalf("ledger says %d distinct scans, report says %d", snap.DistinctColsScanned, rep.ScannedColumns)
	}
	// A trained WikiTable-profile model must scan some but far from all.
	if rep.ScannedColumns == 0 || rep.ScannedColumns == rep.TotalColumns {
		t.Fatalf("scanned %d of %d columns — expected partial scanning", rep.ScannedColumns, rep.TotalColumns)
	}
}

func TestWiderBandScansMore(t *testing.T) {
	m, ds := trainedModel(t)
	narrow := DefaultOptions()
	narrow.Alpha, narrow.Beta = 0.4, 0.6
	wide := DefaultOptions()
	wide.Alpha, wide.Beta = 0.02, 0.98

	dn, _ := NewDetector(m, narrow)
	repN, err := dn.DetectDatabase(context.Background(), newServer(ds), "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	dw, _ := NewDetector(m, wide)
	repW, err := dw.DetectDatabase(context.Background(), newServer(ds), "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	if repW.ScannedColumns < repN.ScannedColumns {
		t.Fatalf("wider (α,β) should scan at least as much: wide %d < narrow %d",
			repW.ScannedColumns, repN.ScannedColumns)
	}
}

func TestLatentCacheUsedByP2(t *testing.T) {
	m, ds := trainedModel(t)
	d, _ := NewDetector(m, DefaultOptions())
	rep, err := d.DetectDatabase(context.Background(), newServer(ds), "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UncertainColumns > 0 && rep.CacheHits == 0 {
		t.Fatal("P2 ran but never hit the latent cache")
	}
	if rep.CacheMisses != 0 {
		t.Fatalf("same-batch P2 should always hit, got %d misses", rep.CacheMisses)
	}
}

func TestCacheDisabledStillCorrect(t *testing.T) {
	m, ds := trainedModel(t)
	withCache := DefaultOptions()
	noCache := DefaultOptions()
	noCache.CacheBytes = 0
	noCache.ResultCacheBytes = 0

	d1, _ := NewDetector(m, withCache)
	rep1, err := d1.DetectDatabase(context.Background(), newServer(ds), "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := NewDetector(m, noCache)
	rep2, err := d2.DetectDatabase(context.Background(), newServer(ds), "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CacheHits != 0 {
		t.Fatal("disabled cache must never hit")
	}
	for _, tr := range rep1.Tables {
		for _, c := range tr.Columns {
			c2 := rep2.Find(tr.Table, c.Column)
			if strings.Join(c.Admitted, ",") != strings.Join(c2.Admitted, ",") {
				t.Fatalf("caching changed results for %s.%s", tr.Table, c.Column)
			}
		}
	}
}

func TestHistogramVariantRunsAnalyze(t *testing.T) {
	m, ds := trainedModel(t)
	opts := DefaultOptions()
	opts.UseHistogram = true
	d, _ := NewDetector(m, opts)
	s := newServer(ds)
	before := s.Accounting().Snapshot().Queries
	if _, err := d.DetectDatabase(context.Background(), s, "tenant", SequentialMode); err != nil {
		t.Fatal(err)
	}
	after := s.Accounting().Snapshot().Queries
	// Each table needs at least metadata + analyze + metadata = 3 queries.
	if after-before < 3*len(ds.Test) {
		t.Fatalf("histogram variant issued only %d queries for %d tables", after-before, len(ds.Test))
	}
}

func TestSamplingStrategyApplied(t *testing.T) {
	m, ds := trainedModel(t)
	opts := DefaultOptions()
	opts.Strategy = simdb.RandomSample
	d, _ := NewDetector(m, opts)
	rep, err := d.DetectDatabase(context.Background(), newServer(ds), "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) > 0 {
		t.Fatalf("sampling run failed: %v", rep.Errors)
	}
}

func TestReportScannedRatio(t *testing.T) {
	r := &Report{TotalColumns: 200, ScannedColumns: 90}
	if r.ScannedRatio() != 0.45 {
		t.Fatalf("ratio = %v", r.ScannedRatio())
	}
	empty := &Report{}
	if empty.ScannedRatio() != 0 {
		t.Fatal("empty report ratio must be 0")
	}
}

func TestDetectDatabaseUnknownDB(t *testing.T) {
	m, _ := trainedModel(t)
	d, _ := NewDetector(m, DefaultOptions())
	if _, err := d.DetectDatabase(context.Background(), simdb.NewServer(simdb.NoLatency), "ghost", SequentialMode); err == nil {
		t.Fatal("expected error")
	}
}

func TestFeedbackRecordedAndApplied(t *testing.T) {
	m, ds := trainedModel(t)
	d, _ := NewDetector(m, DefaultOptions())
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	if err := d.Feedback(info, 0, []string{"email"}); err != nil {
		t.Fatal(err)
	}
	if len(d.FeedbackLog()) != 1 {
		t.Fatal("feedback not recorded")
	}
	if err := d.Feedback(info, 999, nil); err == nil {
		t.Fatal("out-of-range column must error")
	}
}

func TestRegisterTypesExtendsModel(t *testing.T) {
	m, ds := trainedModel(t)
	d, _ := NewDetector(m, DefaultOptions())
	before := m.Types.Len()
	err := d.RegisterTypes(ds.Registry, []*corpus.Type{{
		Name:        "custom_tracking_code",
		Category:    "identifier",
		SQLType:     "VARCHAR",
		ColumnNames: []string{"tracking_code"},
		Gen:         func(r *rand.Rand) string { return fmt.Sprintf("trk-%06d", r.Intn(1000000)) },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Types.Len() != before+1 {
		t.Fatalf("type space len = %d, want %d", m.Types.Len(), before+1)
	}
	if _, ok := m.Types.Index("custom_tracking_code"); !ok {
		t.Fatal("new type missing from type space")
	}
	// Duplicate registration must fail cleanly.
	if err := d.RegisterTypes(ds.Registry, []*corpus.Type{{
		Name: "custom_tracking_code", Category: "identifier", SQLType: "VARCHAR",
		ColumnNames: []string{"x"}, Gen: func(r *rand.Rand) string { return "x" },
	}}); err == nil {
		t.Fatal("duplicate registration should error")
	}
}

func TestCalibrateThresholds(t *testing.T) {
	m, ds := trainedModel(t)
	truth := truthMap(ds.Test)
	res, err := CalibrateThresholds(context.Background(), m, newServer(ds), "tenant", truth, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) != 7 {
		t.Fatalf("frontier has %d points", len(res.Frontier))
	}
	if res.Chosen.ScannedRatio > 0.5 {
		t.Fatalf("chosen pair violates scan budget: %.2f", res.Chosen.ScannedRatio)
	}
	// Frontier is ordered by widening band; scanned ratio must be
	// non-decreasing along it.
	for i := 1; i < len(res.Frontier); i++ {
		if res.Frontier[i].ScannedRatio+1e-9 < res.Frontier[i-1].ScannedRatio {
			t.Fatalf("scanned ratio not monotone along widening bands: %v then %v",
				res.Frontier[i-1].ScannedRatio, res.Frontier[i].ScannedRatio)
		}
	}
	// The narrowest band never scans.
	if res.Frontier[0].ScannedRatio != 0 {
		t.Fatalf("α=β point scanned %.2f", res.Frontier[0].ScannedRatio)
	}
	if _, err := CalibrateThresholds(context.Background(), m, newServer(ds), "tenant", truth, 1.5); err == nil {
		t.Fatal("expected error for invalid budget")
	}
}

func TestScanFaultDoesNotAbortBatch(t *testing.T) {
	m, ds := trainedModel(t)
	d, _ := NewDetector(m, DefaultOptions())
	s := newServer(ds)
	// Arm a permanent (non-transient) fault on every test table's scan; only
	// tables that actually reach P2 will trip it. Permanent scan failures
	// degrade the affected columns to Phase 1 instead of erroring the table.
	for _, tb := range ds.Test {
		s.InjectScanFault(tb.Name, fmt.Errorf("simulated network failure"))
	}
	rep, err := d.DetectDatabase(context.Background(), s, "tenant", SequentialMode)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("scan faults must degrade, not error: %v", rep.Errors)
	}
	if len(rep.Tables) != len(ds.Test) {
		t.Fatalf("tables = %d, want %d", len(rep.Tables), len(ds.Test))
	}
	if rep.DegradedColumns == 0 {
		t.Skip("no table reached P2 in this run")
	}
	for _, tr := range rep.Tables {
		for _, c := range tr.Columns {
			if c.Degraded && !strings.Contains(c.DegradeReason, "simulated network failure") {
				t.Fatalf("column %s.%s: reason %q", tr.Table, c.Column, c.DegradeReason)
			}
		}
	}
}
