// Cross-table inference batching within one DetectDatabase call
// (DESIGN.md §16): s4 stages submit their content-tower chunks here instead
// of forwarding immediately, and a flush merges submissions from many
// tables into a handful of padded batched forwards. On a many-small-tables
// database this collapses N per-table forwards into ~N·chunks/BatchChunks.
//
// The forward itself goes through the detector's ContentInferencer when one
// is installed — i.e. the service-level cross-request Batcher — so
// intra-request coalescing composes with cross-request coalescing rather
// than bypassing it; without an inferencer the merged batch runs as one
// direct PredictContentBatch. Either way the results are deterministic:
// the block-diagonal batch mask makes every chunk's output bit-identical
// regardless of which other chunks share its forward (the §16 determinism
// argument, pinned by TestPipelineGoldenParity).
//
// Flushing is timer-free, so it adds no latency floor. A flush triggers
// when the pending chunk count reaches BatchChunks, or when every table
// that could still contribute is already waiting — len(waiting) ≥
// min(active tables, scheduler workers) — which is also the deadlock
// brake: a submission can never wait on work the blocked workers would
// have to run.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/adtd"
	"repro/internal/pipeline"
)

// rbResult is one submission's demuxed outcome.
type rbResult struct {
	rows [][][]float64
	err  error
}

// rbCall is one table's pending s4 submission.
type rbCall struct {
	ctx   context.Context
	model *adtd.Model
	reqs  []adtd.ContentRequest
	out   chan rbResult // buffered: the flusher never blocks on a dead caller
}

// requestBatcher coalesces Phase-2 content batches across the tables of a
// single detect request. One instance lives for one DetectDatabase call.
type requestBatcher struct {
	d         *Detector
	n         int // CellsPerColumn, fixed per detector
	maxChunks int
	workers   int
	fwd       *atomic.Int64

	mu            sync.Mutex
	active        int // tables that may still submit (not yet done/failed)
	waiting       []*rbCall
	waitingChunks int
}

func newRequestBatcher(d *Detector, maxChunks, workers, tables int, fwd *atomic.Int64) *requestBatcher {
	return &requestBatcher{
		d: d, n: d.Opts.CellsPerColumn,
		maxChunks: maxChunks, workers: workers,
		active: tables, fwd: fwd,
	}
}

// submit queues the table's chunks and blocks until a flush answers them
// (possibly led by this caller) or ctx dies. Results are indexed like reqs.
func (r *requestBatcher) submit(ctx context.Context, model *adtd.Model, reqs []adtd.ContentRequest) ([][][]float64, error) {
	c := &rbCall{ctx: ctx, model: model, reqs: reqs, out: make(chan rbResult, 1)}
	r.mu.Lock()
	r.waiting = append(r.waiting, c)
	r.waitingChunks += len(reqs)
	batch := r.drainIfReadyLocked()
	r.mu.Unlock()
	if batch != nil {
		r.flush(batch)
	}
	select {
	case res := <-c.out:
		return res.rows, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// tableDone retires one table from the contributor count — called exactly
// once per table, whether its s4 submitted, had nothing pending, or an
// earlier stage failed — and flushes if the remaining waiters can no longer
// grow into a fuller batch.
func (r *requestBatcher) tableDone() {
	r.mu.Lock()
	r.active--
	batch := r.drainIfReadyLocked()
	r.mu.Unlock()
	if batch != nil {
		r.flush(batch)
	}
}

// drainIfReadyLocked takes the waiting list when a flush condition holds.
func (r *requestBatcher) drainIfReadyLocked() []*rbCall {
	if len(r.waiting) == 0 {
		return nil
	}
	if r.waitingChunks >= r.maxChunks || len(r.waiting) >= r.active || len(r.waiting) >= r.workers {
		batch := r.waiting
		r.waiting = nil
		r.waitingChunks = 0
		return batch
	}
	return nil
}

// flush groups the drained submissions, in submission order, into forwards
// of at most maxChunks chunks each and answers every caller. The flushing
// goroutine is whichever worker tripped the condition — no dedicated
// collector, no timers.
func (r *requestBatcher) flush(batch []*rbCall) {
	for start := 0; start < len(batch); {
		end := start + 1
		chunks := len(batch[start].reqs)
		for end < len(batch) && chunks+len(batch[end].reqs) <= r.maxChunks {
			chunks += len(batch[end].reqs)
			end++
		}
		r.forward(batch[start:end], chunks)
		start = end
	}
}

// forward runs one merged batch and demuxes the rows back per caller. All
// calls in a group share the batch context and model (they come from one
// detect request), so the first caller's are used.
func (r *requestBatcher) forward(group []*rbCall, chunks int) {
	merged := make([]adtd.ContentRequest, 0, chunks)
	for _, c := range group {
		merged = append(merged, c.reqs...)
	}
	first := group[0]
	var rows [][][]float64
	var err error
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("core: content batch panic: %v", rec)
				batchPanicsTotal.Inc()
			}
		}()
		if ci := r.d.contentInferencer(); ci != nil {
			rows, err = ci.InferContentBatch(first.ctx, first.model, merged, r.n)
		} else {
			rows = first.model.PredictContentBatchQ(merged, r.n, quantPref(first.ctx))
		}
	}()
	r.fwd.Add(1)
	batchForwardsTotal.Inc()
	batchOccupancyChunks.Observe(float64(chunks))
	off := 0
	for _, c := range group {
		if err != nil {
			c.out <- rbResult{err: err}
			continue
		}
		c.out <- rbResult{rows: rows[off : off+len(c.reqs)]}
		off += len(c.reqs)
	}
}

// wrapStages decorates a table's stage list so the batcher learns, exactly
// once per table, when that table can no longer contribute chunks: after
// its final stage returns, or after any stage fails (the scheduler skips
// the rest of a failed job). Without this, a failed table would leave the
// flush condition waiting for a submission that never comes.
func (r *requestBatcher) wrapStages(stages []pipeline.Stage) []pipeline.Stage {
	done := false // one job's stages never run concurrently
	markDone := func() {
		if !done {
			done = true
			r.tableDone()
		}
	}
	for i := range stages {
		run := stages[i].Run
		last := i == len(stages)-1
		stages[i].Run = func(ctx context.Context) error {
			err := run(ctx)
			if err != nil || last {
				markDone()
			}
			return err
		}
	}
	return stages
}
