package adtd

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
)

// BenchmarkFineTuneEpoch measures one epoch of fine-tuning on a small
// corpus, serial (par1) versus four data-parallel gradient workers (par4);
// used with -cpuprofile to find hot spots. On a single-CPU runner
// (GOMAXPROCS=1 — recorded in the BENCH_5 header) par4 tracks par1: the
// workers time-slice one core, so the comparison records the trainer's
// coordination overhead rather than speedup.
func BenchmarkFineTuneEpoch(b *testing.B) {
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(40), 1)
	tok := BuildVocabulary(ds.Train, ds.Registry.Names(), 3000)
	types := NewTypeSpace(ds.Registry.Names())
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			m, err := New(ReproScale(), tok, types, 11)
			if err != nil {
				b.Fatal(err)
			}
			cfg := DefaultTrainConfig()
			cfg.Epochs = 1
			cfg.Workers = par
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := FineTune(m, ds.Train, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
