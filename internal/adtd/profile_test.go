package adtd

import (
	"testing"

	"repro/internal/corpus"
)

// BenchmarkFineTuneEpoch measures one epoch of fine-tuning on a small
// corpus; used with -cpuprofile to find hot spots.
func BenchmarkFineTuneEpoch(b *testing.B) {
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(40), 1)
	tok := BuildVocabulary(ds.Train, ds.Registry.Names(), 3000)
	types := NewTypeSpace(ds.Registry.Names())
	m, err := New(ReproScale(), tok, types, 11)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FineTune(m, ds.Train, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
