package adtd

import (
	"math"
	"time"

	"repro/internal/metafeat"
	"repro/internal/tensor"
)

// ContentRequest names one unit of Phase-2 work for batched inference: a
// table chunk (with cell values populated), the columns to classify, and
// the chunk's metadata encoding (cached or freshly computed).
type ContentRequest struct {
	Menc  *MetaEncoding
	Table *metafeat.TableInfo
	Cols  []int
}

// PredictContentBatch runs the content tower over several chunks' requests
// in one forward pass. The chunks' content sequences are concatenated and a
// block-diagonal attention mask keeps every chunk's attention confined to
// its own metadata and (per §6.4) its own column's content, so each row of
// the result equals the corresponding unbatched PredictContent output; the
// batching only amortizes the per-kernel dispatch and classifier overhead.
//
// The batch's autograd graph — including any *fresh* metadata encodings the
// requests reference — is released into the tensor arena before returning.
// Encodings obtained from the latent cache (internal/cache) are graph-free
// Detach views: their layers are leaves, so the release walk skips them and
// cached latents survive. Callers who want a fresh encoding to survive must
// hand it to the cache (whose Put consumes it) or CloneDetach it first.
//
// n is the per-column cell budget, as in PredictContent. The outer result
// slice is indexed like reqs; each entry holds one probability row per
// requested column.
func (m *Model) PredictContentBatch(reqs []ContentRequest, n int) [][][]float64 {
	return m.PredictContentBatchQ(reqs, n, nil)
}

// PredictContentBatchQ is PredictContentBatch with an explicit per-request
// quantization preference: nil follows the process default
// (tensor.SetQuantize), non-nil forces the int8 path on or off for this
// batch only. Quantization applies only when the fused fast path is selected
// and tensor.QuantizeAvailable reports kernel support.
func (m *Model) PredictContentBatchQ(reqs []ContentRequest, n int, quantize *bool) [][][]float64 {
	if len(reqs) == 0 {
		return nil
	}
	defer observeContentForward(time.Now(), len(reqs))
	if m.evalFast() && batchNoGrad(reqs) {
		return m.predictContentBatchFast(reqs, n, quantize)
	}

	cins := make([]*ContentInput, len(reqs))
	embeds := make([]*tensor.Tensor, len(reqs))
	for r, req := range reqs {
		cin := m.enc.BuildContentInput(req.Table, req.Cols, n)
		segs := make([]int, len(cin.IDs))
		for i := range segs {
			segs[i] = 2
		}
		cins[r] = cin
		// Positions restart per chunk, exactly as in the unbatched path.
		embeds[r] = m.embed(cin.IDs, segs)
	}
	content := embeds[0]
	if len(embeds) > 1 {
		content = tensor.ConcatRows(embeds...)
	}

	metaLens := make([]int, len(reqs))
	for r, req := range reqs {
		metaLens[r] = req.Menc.In.Len()
	}

	if m.Cfg.SymmetricContent {
		mask := batchSymmetricMask(cins)
		for _, b := range m.Blocks {
			content = b.SelfForward(content, mask)
		}
	} else {
		mask := batchContentMask(metaLens, cins)
		for li, b := range m.Blocks {
			kv := make([]*tensor.Tensor, 0, len(reqs)+1)
			for _, req := range reqs {
				kv = append(kv, req.Menc.Layers[li])
			}
			kv = append(kv, content)
			content = b.Forward(content, tensor.ConcatRows(kv...), mask)
		}
	}

	// Classifier features for every requested column across the batch, then
	// one classifier forward for the whole batch.
	features := make([]*tensor.Tensor, len(reqs))
	off := 0
	for r, req := range reqs {
		cin := cins[r]
		chunk := tensor.SliceRows(content, off, off+cin.Len())
		off += cin.Len()
		contentPooled := poolSpans(chunk, cin.ColSpans)
		metaSpans := make([][2]int, len(cin.Columns))
		nonTextual := make([][]float64, len(cin.Columns))
		for slot, ci := range cin.Columns {
			metaSpans[slot] = req.Menc.In.ColSpans[ci]
			nonTextual[slot] = req.Menc.In.NonTextual[ci]
		}
		metaPooled := poolSpans(req.Menc.Final(), metaSpans)
		features[r] = tensor.ConcatCols(contentPooled, metaPooled, tensor.FromRows(nonTextual))
	}
	stacked := features[0]
	if len(features) > 1 {
		stacked = tensor.ConcatRows(features...)
	}
	logits := m.ContCls.Forward(stacked)
	all := Sigmoid(logits)
	tensor.ReleaseGraph(logits)

	out := make([][][]float64, len(reqs))
	row := 0
	for r := range reqs {
		nc := len(cins[r].Columns)
		out[r] = all[row : row+nc]
		row += nc
	}
	return out
}

// batchNoGrad reports whether every request's metadata latents are frozen,
// part of the fast-path eligibility check.
func batchNoGrad(reqs []ContentRequest) bool {
	for _, req := range reqs {
		if !tensor.NoGrad(req.Menc.Layers...) {
			return false
		}
	}
	return true
}

// batchContentMask builds the additive mask for the concatenated batch:
// rows are the batch's content positions, key columns are every request's
// metadata block (in request order) followed by the concatenated content.
// A content position sees its own chunk's metadata and the content of its
// own column; everything else is -Inf. With a single single-column request
// the mask is nil, matching the unbatched fast path.
func batchContentMask(metaLens []int, cins []*ContentInput) *tensor.Tensor {
	totalMeta, totalContent := 0, 0
	for _, l := range metaLens {
		totalMeta += l
	}
	for _, cin := range cins {
		totalContent += cin.Len()
	}
	if len(cins) == 1 {
		multi := false
		for _, c := range cins[0].ColOf {
			if c != cins[0].ColOf[0] {
				multi = true
				break
			}
		}
		if !multi {
			return nil
		}
	}
	mask := tensor.New(totalContent, totalMeta+totalContent)
	mask.Fill(math.Inf(-1))
	metaOff, contOff := 0, 0
	for r, cin := range cins {
		lc := cin.Len()
		for i := 0; i < lc; i++ {
			row := mask.Row(contOff + i)
			// Own chunk's metadata block.
			for j := metaOff; j < metaOff+metaLens[r]; j++ {
				row[j] = 0
			}
			// Own column's content positions within the chunk.
			for j := 0; j < lc; j++ {
				if cin.ColOf[j] == cin.ColOf[i] {
					row[totalMeta+contOff+j] = 0
				}
			}
		}
		metaOff += metaLens[r]
		contOff += lc
	}
	return mask
}

// batchSymmetricMask is the content-only analogue for the SymmetricContent
// ablation: same column of the same chunk only.
func batchSymmetricMask(cins []*ContentInput) *tensor.Tensor {
	total := 0
	for _, cin := range cins {
		total += cin.Len()
	}
	if len(cins) == 1 {
		multi := false
		for _, c := range cins[0].ColOf {
			if c != cins[0].ColOf[0] {
				multi = true
				break
			}
		}
		if !multi {
			return nil
		}
	}
	mask := tensor.New(total, total)
	mask.Fill(math.Inf(-1))
	off := 0
	for _, cin := range cins {
		lc := cin.Len()
		for i := 0; i < lc; i++ {
			row := mask.Row(off + i)
			for j := 0; j < lc; j++ {
				if cin.ColOf[j] == cin.ColOf[i] {
					row[off+j] = 0
				}
			}
		}
		off += lc
	}
	return mask
}
