package adtd

import (
	"fmt"
	"strings"

	"repro/internal/metafeat"
	"repro/internal/tokenizer"
)

// Encoder builds model inputs (token id sequences plus anchors) from the
// unified table view. It is stateless and safe for concurrent use.
type Encoder struct {
	Tok *tokenizer.Tokenizer
	Cfg Config
}

// MetaInput is the metadata tower's input for one table (or table chunk):
// the serialized textual metadata Mᶜₜ plus per-column anchors and the
// non-textual features Mᶜₙ.
//
// Layout: [TAB] <table name> [SEP] <table comment>   (≤ TableTokens)
// then per column: [COL] <col name> [SEP] <col comment> [SEP] <data type>
// (≤ ColTokens). The latent at each [COL] position is the column's metadata
// representation.
type MetaInput struct {
	IDs        []int
	Segments   []int // 0 = table-level metadata, 1 = column metadata
	ColAnchors []int // position of each column's [COL] token
	// ColSpans holds each column's [start, end) token range; the column's
	// metadata representation is mean-pooled over this span.
	ColSpans   [][2]int
	NonTextual [][]float64
}

// Len returns the sequence length.
func (in *MetaInput) Len() int { return len(in.IDs) }

// BuildMetaInput serializes a table's metadata. includeStats gates the
// statistics/histogram block of the non-textual features.
func (e *Encoder) BuildMetaInput(t *metafeat.TableInfo, includeStats bool) *MetaInput {
	in := &MetaInput{}
	sep := e.Tok.MustID(tokenizer.SEP)

	// Table-level metadata, appended in place and truncated by re-slicing
	// (same ids as building a separate slice, without the intermediates).
	in.IDs = append(in.IDs, e.Tok.MustID(tokenizer.TAB))
	in.IDs = e.Tok.EncodeAppend(in.IDs, t.Name)
	if t.Comment != "" {
		in.IDs = append(in.IDs, sep)
		in.IDs = e.Tok.EncodeAppend(in.IDs, t.Comment)
	}
	in.IDs = truncate(in.IDs, e.Cfg.TableTokens)
	for range in.IDs {
		in.Segments = append(in.Segments, 0)
	}

	// Per-column metadata.
	for _, c := range t.Columns {
		start := len(in.IDs)
		in.ColAnchors = append(in.ColAnchors, start)
		in.IDs = append(in.IDs, e.Tok.MustID(tokenizer.COL))
		in.IDs = e.Tok.EncodeAppend(in.IDs, c.Name)
		if c.Comment != "" {
			in.IDs = append(in.IDs, sep)
			in.IDs = e.Tok.EncodeAppend(in.IDs, c.Comment)
		}
		in.IDs = append(in.IDs, sep)
		in.IDs = e.Tok.EncodeAppend(in.IDs, strings.ToLower(c.DataType))
		in.IDs = truncate(in.IDs, start+e.Cfg.ColTokens)
		for len(in.Segments) < len(in.IDs) {
			in.Segments = append(in.Segments, 1)
		}
		in.ColSpans = append(in.ColSpans, [2]int{start, len(in.IDs)})
		in.NonTextual = append(in.NonTextual, metafeat.NonTextual(c, t.RowCount, includeStats))
	}
	if len(in.IDs) > e.Cfg.MaxSeq {
		panic(fmt.Sprintf("adtd: metadata sequence %d exceeds MaxSeq %d; lower the column split threshold", len(in.IDs), e.Cfg.MaxSeq))
	}
	return in
}

// ContentInput is the content tower's input: the serialized cell values Dᶜ
// of the selected columns.
//
// Layout per selected column: [VAL] then for each of the first n non-empty
// cells: [CLS] <length-bucket token> <cell pieces> (≤ CellTokens). The
// latent at each [VAL] position is the column's content representation.
// ColOf supports the per-column attention restriction of §6.4: a cell
// attends to all metadata but only to content positions of its own column.
type ContentInput struct {
	IDs        []int
	ColOf      []int // for each position, the index into Columns it belongs to
	ValAnchors []int // position of each selected column's [VAL] token
	// ColSpans holds each selected column's [start, end) range; the content
	// representation is mean-pooled over it.
	ColSpans [][2]int
	Columns  []int // selected column indices within the TableInfo
}

// Len returns the sequence length.
func (in *ContentInput) Len() int { return len(in.IDs) }

// BuildContentInput serializes content for the selected columns (indices
// into t.Columns), using the first n non-empty cell values of each (§6.1.2).
// Columns must have Values populated (from training data or a P2 scan).
func (e *Encoder) BuildContentInput(t *metafeat.TableInfo, cols []int, n int) *ContentInput {
	in := &ContentInput{Columns: append([]int(nil), cols...)}
	for slot, ci := range cols {
		c := t.Columns[ci]
		start := len(in.IDs)
		in.ValAnchors = append(in.ValAnchors, start)
		in.IDs = append(in.IDs, e.Tok.MustID(tokenizer.VAL))
		in.ColOf = append(in.ColOf, slot)
		used := 0
		for _, v := range c.Values {
			if used >= n {
				break
			}
			if v == "" {
				continue // §6.1.2: skip empty cells, they contribute nothing
			}
			used++
			mark := len(in.IDs)
			in.IDs = append(in.IDs, e.Tok.MustID(tokenizer.CLS), e.Tok.ID(LengthBucketToken(len(v))))
			in.IDs = e.Tok.EncodeAppend(in.IDs, v)
			// +2: the [CLS] and length tokens.
			in.IDs = truncate(in.IDs, mark+e.Cfg.CellTokens+2)
			for len(in.ColOf) < len(in.IDs) {
				in.ColOf = append(in.ColOf, slot)
			}
		}
		in.ColSpans = append(in.ColSpans, [2]int{start, len(in.IDs)})
	}
	return in
}

// LengthBucketToken names the value-length bucket token included before each
// cell's pieces. Cell truncation to CellTokens pieces would otherwise erase
// the length signal that separates e.g. phone numbers from credit card
// numbers; real content-based models see the full value, so the bucket
// token restores information the truncation removed rather than adding any.
func LengthBucketToken(n int) string {
	bucket := n
	if bucket > 24 {
		bucket = 24
	}
	return lengthBuckets[bucket/2]
}

// lengthBuckets precomputes every bucket token so the per-cell hot path
// never formats strings.
var lengthBuckets = func() []string {
	var out []string
	for n := 0; n <= 24; n += 2 {
		out = append(out, fmt.Sprintf("len%d", n))
	}
	return out
}()

// LengthBucketTokens enumerates every length-bucket token, for vocabulary
// construction.
func LengthBucketTokens() []string {
	return append([]string(nil), lengthBuckets...)
}

func truncate(ids []int, max int) []int {
	if len(ids) > max {
		return ids[:max]
	}
	return ids
}
