package adtd

import (
	"fmt"
	"strings"

	"repro/internal/metafeat"
	"repro/internal/tokenizer"
)

// Encoder builds model inputs (token id sequences plus anchors) from the
// unified table view. It is stateless and safe for concurrent use.
type Encoder struct {
	Tok *tokenizer.Tokenizer
	Cfg Config
}

// MetaInput is the metadata tower's input for one table (or table chunk):
// the serialized textual metadata Mᶜₜ plus per-column anchors and the
// non-textual features Mᶜₙ.
//
// Layout: [TAB] <table name> [SEP] <table comment>   (≤ TableTokens)
// then per column: [COL] <col name> [SEP] <col comment> [SEP] <data type>
// (≤ ColTokens). The latent at each [COL] position is the column's metadata
// representation.
type MetaInput struct {
	IDs        []int
	Segments   []int // 0 = table-level metadata, 1 = column metadata
	ColAnchors []int // position of each column's [COL] token
	// ColSpans holds each column's [start, end) token range; the column's
	// metadata representation is mean-pooled over this span.
	ColSpans   [][2]int
	NonTextual [][]float64
}

// Len returns the sequence length.
func (in *MetaInput) Len() int { return len(in.IDs) }

// BuildMetaInput serializes a table's metadata. includeStats gates the
// statistics/histogram block of the non-textual features.
func (e *Encoder) BuildMetaInput(t *metafeat.TableInfo, includeStats bool) *MetaInput {
	in := &MetaInput{}
	push := func(id, seg int) {
		in.IDs = append(in.IDs, id)
		in.Segments = append(in.Segments, seg)
	}

	// Table-level metadata.
	tableIDs := []int{e.Tok.MustID(tokenizer.TAB)}
	tableIDs = append(tableIDs, e.Tok.Encode(t.Name)...)
	if t.Comment != "" {
		tableIDs = append(tableIDs, e.Tok.MustID(tokenizer.SEP))
		tableIDs = append(tableIDs, e.Tok.Encode(t.Comment)...)
	}
	tableIDs = truncate(tableIDs, e.Cfg.TableTokens)
	for _, id := range tableIDs {
		push(id, 0)
	}

	// Per-column metadata.
	for _, c := range t.Columns {
		colIDs := []int{e.Tok.MustID(tokenizer.COL)}
		colIDs = append(colIDs, e.Tok.Encode(c.Name)...)
		if c.Comment != "" {
			colIDs = append(colIDs, e.Tok.MustID(tokenizer.SEP))
			colIDs = append(colIDs, e.Tok.Encode(c.Comment)...)
		}
		colIDs = append(colIDs, e.Tok.MustID(tokenizer.SEP))
		colIDs = append(colIDs, e.Tok.Encode(strings.ToLower(c.DataType))...)
		colIDs = truncate(colIDs, e.Cfg.ColTokens)
		start := len(in.IDs)
		in.ColAnchors = append(in.ColAnchors, start)
		for _, id := range colIDs {
			push(id, 1)
		}
		in.ColSpans = append(in.ColSpans, [2]int{start, len(in.IDs)})
		in.NonTextual = append(in.NonTextual, metafeat.NonTextual(c, t.RowCount, includeStats))
	}
	if len(in.IDs) > e.Cfg.MaxSeq {
		panic(fmt.Sprintf("adtd: metadata sequence %d exceeds MaxSeq %d; lower the column split threshold", len(in.IDs), e.Cfg.MaxSeq))
	}
	return in
}

// ContentInput is the content tower's input: the serialized cell values Dᶜ
// of the selected columns.
//
// Layout per selected column: [VAL] then for each of the first n non-empty
// cells: [CLS] <length-bucket token> <cell pieces> (≤ CellTokens). The
// latent at each [VAL] position is the column's content representation.
// ColOf supports the per-column attention restriction of §6.4: a cell
// attends to all metadata but only to content positions of its own column.
type ContentInput struct {
	IDs        []int
	ColOf      []int // for each position, the index into Columns it belongs to
	ValAnchors []int // position of each selected column's [VAL] token
	// ColSpans holds each selected column's [start, end) range; the content
	// representation is mean-pooled over it.
	ColSpans [][2]int
	Columns  []int // selected column indices within the TableInfo
}

// Len returns the sequence length.
func (in *ContentInput) Len() int { return len(in.IDs) }

// BuildContentInput serializes content for the selected columns (indices
// into t.Columns), using the first n non-empty cell values of each (§6.1.2).
// Columns must have Values populated (from training data or a P2 scan).
func (e *Encoder) BuildContentInput(t *metafeat.TableInfo, cols []int, n int) *ContentInput {
	in := &ContentInput{Columns: append([]int(nil), cols...)}
	for slot, ci := range cols {
		c := t.Columns[ci]
		start := len(in.IDs)
		in.ValAnchors = append(in.ValAnchors, start)
		in.IDs = append(in.IDs, e.Tok.MustID(tokenizer.VAL))
		in.ColOf = append(in.ColOf, slot)
		used := 0
		for _, v := range c.Values {
			if used >= n {
				break
			}
			if v == "" {
				continue // §6.1.2: skip empty cells, they contribute nothing
			}
			used++
			cell := []int{e.Tok.MustID(tokenizer.CLS), e.Tok.ID(LengthBucketToken(len(v)))}
			cell = append(cell, e.Tok.Encode(v)...)
			cell = truncate(cell, e.Cfg.CellTokens+2) // +2: the [CLS] and length tokens
			for _, id := range cell {
				in.IDs = append(in.IDs, id)
				in.ColOf = append(in.ColOf, slot)
			}
		}
		in.ColSpans = append(in.ColSpans, [2]int{start, len(in.IDs)})
	}
	return in
}

// LengthBucketToken names the value-length bucket token included before each
// cell's pieces. Cell truncation to CellTokens pieces would otherwise erase
// the length signal that separates e.g. phone numbers from credit card
// numbers; real content-based models see the full value, so the bucket
// token restores information the truncation removed rather than adding any.
func LengthBucketToken(n int) string {
	bucket := n
	if bucket > 24 {
		bucket = 24
	}
	bucket -= bucket % 2
	return fmt.Sprintf("len%d", bucket)
}

// LengthBucketTokens enumerates every length-bucket token, for vocabulary
// construction.
func LengthBucketTokens() []string {
	var out []string
	for n := 0; n <= 24; n += 2 {
		out = append(out, fmt.Sprintf("len%d", n))
	}
	return out
}

func truncate(ids []int, max int) []int {
	if len(ids) > max {
		return ids[:max]
	}
	return ids
}
