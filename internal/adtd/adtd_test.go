package adtd

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/metafeat"
	"repro/internal/tensor"
)

// tinyModel builds a small model plus a small labelled corpus, shared by
// the structural tests.
func tinyModel(t *testing.T) (*Model, *corpus.Dataset) {
	t.Helper()
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(30), 1)
	tok := BuildVocabulary(ds.Train, ds.Registry.Names(), 2000)
	types := NewTypeSpace(ds.Registry.Names())
	cfg := ReproScale()
	cfg.Layers, cfg.Hidden, cfg.Heads, cfg.Intermediate = 2, 32, 2, 48
	cfg.MetaClassifierHidden, cfg.ContentClassifierHidden = 32, 32
	m, err := New(cfg, tok, types, 7)
	if err != nil {
		t.Fatal(err)
	}
	m.SetEval()
	return m, ds
}

func TestConfigValidate(t *testing.T) {
	if err := ReproScale().Validate(); err != nil {
		t.Fatalf("ReproScale invalid: %v", err)
	}
	if err := PaperScale().Validate(); err != nil {
		t.Fatalf("PaperScale invalid: %v", err)
	}
	bad := ReproScale()
	bad.Hidden = 63 // not divisible by heads
	if bad.Validate() == nil {
		t.Fatal("expected validation error")
	}
	bad = ReproScale()
	bad.Layers = 0
	if bad.Validate() == nil {
		t.Fatal("expected validation error")
	}
}

func TestTypeSpaceBasics(t *testing.T) {
	ts := NewTypeSpace([]string{"b_type", "a_type", "b_type"})
	if ts.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (null + 2)", ts.Len())
	}
	if ts.Name(0) != corpus.NullType {
		t.Fatal("index 0 must be the background type")
	}
	if i, ok := ts.Index("a_type"); !ok || i != 1 {
		t.Fatalf("a_type index = %d, %v", i, ok)
	}
	tv := ts.Targets([]string{"b_type"})
	if tv[2] != 1 || tv[0] != 0 || tv[1] != 0 {
		t.Fatalf("targets = %v", tv)
	}
	empty := ts.Targets(nil)
	if empty[0] != 1 {
		t.Fatal("empty labels must target the background type")
	}
}

func TestTypeSpaceExtend(t *testing.T) {
	ts := NewTypeSpace([]string{"x"})
	idx := ts.Extend([]string{"y", "x", "z"})
	if len(idx) != 3 || idx[1] != 1 {
		t.Fatalf("Extend indices = %v", idx)
	}
	if ts.Len() != 4 {
		t.Fatalf("Len after extend = %d", ts.Len())
	}
}

func TestMetaInputStructure(t *testing.T) {
	m, ds := tinyModel(t)
	src := ds.Test[0]
	info := metafeat.FromCorpusTable(src, false, 0)
	in := m.Encoder().BuildMetaInput(info, false)
	if len(in.ColAnchors) != len(src.Columns) {
		t.Fatalf("anchors %d, columns %d", len(in.ColAnchors), len(src.Columns))
	}
	colID := m.Tok.MustID("[COL]")
	for i, a := range in.ColAnchors {
		if in.IDs[a] != colID {
			t.Fatalf("anchor %d does not point at [COL]", i)
		}
		if in.Segments[a] != 1 {
			t.Fatal("column tokens must use segment 1")
		}
	}
	if in.Segments[0] != 0 {
		t.Fatal("table tokens must use segment 0")
	}
	if len(in.NonTextual) != len(src.Columns) || len(in.NonTextual[0]) != metafeat.NonTextualDim {
		t.Fatal("non-textual features malformed")
	}
}

func TestMetaInputRespectsBudgets(t *testing.T) {
	m, _ := tinyModel(t)
	info := &metafeat.TableInfo{
		Name:    "a very long table name with many words to overflow the table budget entirely",
		Comment: "and a long comment on top of the long name for good measure",
		Columns: []*metafeat.ColumnInfo{
			{Name: "some extraordinarily long column name with several words", Comment: "long comment", DataType: "VARCHAR"},
		},
	}
	in := m.Encoder().BuildMetaInput(info, false)
	if in.ColAnchors[0] != m.Cfg.TableTokens {
		t.Fatalf("table block length %d, want %d", in.ColAnchors[0], m.Cfg.TableTokens)
	}
	if in.Len() != m.Cfg.TableTokens+m.Cfg.ColTokens {
		t.Fatalf("sequence length %d, want %d", in.Len(), m.Cfg.TableTokens+m.Cfg.ColTokens)
	}
}

func TestContentInputStructure(t *testing.T) {
	m, ds := tinyModel(t)
	src := ds.Test[0]
	info := metafeat.FromCorpusTable(src, false, 0)
	cols := []int{0, len(src.Columns) - 1}
	in := m.Encoder().BuildContentInput(info, cols, 3)
	if len(in.ValAnchors) != 2 {
		t.Fatalf("anchors = %d", len(in.ValAnchors))
	}
	valID := m.Tok.MustID("[VAL]")
	for slot, a := range in.ValAnchors {
		if in.IDs[a] != valID {
			t.Fatalf("anchor %d not at [VAL]", slot)
		}
		if in.ColOf[a] != slot {
			t.Fatalf("ColOf mismatch at anchor %d", slot)
		}
	}
	// Each cell block starts with [CLS] then a length token.
	clsID := m.Tok.MustID("[CLS]")
	found := false
	for i, id := range in.IDs {
		if id == clsID && i+1 < len(in.IDs) {
			found = true
			tok := m.Tok.Token(in.IDs[i+1])
			if len(tok) < 4 || tok[:3] != "len" {
				t.Fatalf("token after [CLS] is %q, want length bucket", tok)
			}
		}
	}
	if !found {
		t.Fatal("no cell blocks found")
	}
}

func TestContentInputSkipsEmptyCells(t *testing.T) {
	m, _ := tinyModel(t)
	info := &metafeat.TableInfo{
		Name: "t",
		Columns: []*metafeat.ColumnInfo{
			{Name: "c", DataType: "VARCHAR", Values: []string{"", "", "x", "", "y"}},
		},
	}
	in := m.Encoder().BuildContentInput(info, []int{0}, 2)
	clsID := m.Tok.MustID("[CLS]")
	cells := 0
	for _, id := range in.IDs {
		if id == clsID {
			cells++
		}
	}
	if cells != 2 {
		t.Fatalf("got %d cells, want 2 non-empty", cells)
	}
}

func TestLengthBucketToken(t *testing.T) {
	if LengthBucketToken(0) != "len0" || LengthBucketToken(11) != "len10" || LengthBucketToken(500) != "len24" {
		t.Fatalf("bucket tokens wrong: %s %s %s", LengthBucketToken(0), LengthBucketToken(11), LengthBucketToken(500))
	}
	if len(LengthBucketTokens()) != 13 {
		t.Fatalf("bucket enumeration = %d", len(LengthBucketTokens()))
	}
}

func TestEncodeMetadataShapes(t *testing.T) {
	m, ds := tinyModel(t)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	in := m.Encoder().BuildMetaInput(info, false)
	enc := m.EncodeMetadata(in)
	if len(enc.Layers) != m.Cfg.Layers+1 {
		t.Fatalf("encoding has %d layers", len(enc.Layers))
	}
	for _, l := range enc.Layers {
		if l.Rows != in.Len() || l.Cols != m.Cfg.Hidden {
			t.Fatalf("layer shape %dx%d", l.Rows, l.Cols)
		}
	}
	logits := m.MetaLogits(enc)
	if logits.Rows != len(info.Columns) || logits.Cols != m.Types.Len() {
		t.Fatalf("logits %dx%d", logits.Rows, logits.Cols)
	}
}

func TestEncodeContentShapes(t *testing.T) {
	m, ds := tinyModel(t)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	menc := m.EncodeMetadata(m.Encoder().BuildMetaInput(info, false))
	cols := []int{0}
	if len(info.Columns) > 1 {
		cols = append(cols, 1)
	}
	cin := m.Encoder().BuildContentInput(info, cols, 3)
	content := m.EncodeContent(menc, cin)
	if content.Rows != cin.Len() || content.Cols != m.Cfg.Hidden {
		t.Fatalf("content shape %dx%d", content.Rows, content.Cols)
	}
	logits := m.ContentLogits(menc, cin, content)
	if logits.Rows != len(cols) || logits.Cols != m.Types.Len() {
		t.Fatalf("content logits %dx%d", logits.Rows, logits.Cols)
	}
}

func TestContentMaskBlocksCrossColumn(t *testing.T) {
	m, _ := tinyModel(t)
	info := &metafeat.TableInfo{
		Name: "t",
		Columns: []*metafeat.ColumnInfo{
			{Name: "a", DataType: "VARCHAR", Values: []string{"foo"}},
			{Name: "b", DataType: "VARCHAR", Values: []string{"bar"}},
		},
	}
	in := m.Encoder().BuildContentInput(info, []int{0, 1}, 1)
	lm := 5
	mask := m.contentMask(lm, in)
	if mask == nil {
		t.Fatal("multi-column input needs a mask")
	}
	if mask.Rows != in.Len() || mask.Cols != lm+in.Len() {
		t.Fatalf("mask shape %dx%d", mask.Rows, mask.Cols)
	}
	for i := 0; i < in.Len(); i++ {
		for j := 0; j < lm; j++ {
			if mask.At(i, j) != 0 {
				t.Fatal("metadata positions must always be attendable")
			}
		}
		for j := 0; j < in.Len(); j++ {
			v := mask.At(i, lm+j)
			same := in.ColOf[i] == in.ColOf[j]
			if same && v != 0 {
				t.Fatal("same-column content must be attendable")
			}
			if !same && !math.IsInf(v, -1) {
				t.Fatal("cross-column content must be masked")
			}
		}
	}
	// Single-column: no mask needed.
	single := m.Encoder().BuildContentInput(info, []int{0}, 1)
	if m.contentMask(lm, single) != nil {
		t.Fatal("single-column mask should be nil")
	}
}

func TestPredictMetaProbabilitiesInRange(t *testing.T) {
	m, ds := tinyModel(t)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	_, probs := m.PredictMeta(info, false)
	if len(probs) != len(info.Columns) {
		t.Fatalf("probs for %d columns, want %d", len(probs), len(info.Columns))
	}
	for _, row := range probs {
		if len(row) != m.Types.Len() {
			t.Fatalf("row width %d", len(row))
		}
		for _, p := range row {
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("probability %v out of range", p)
			}
		}
	}
}

func TestEvalModeBuildsNoGraph(t *testing.T) {
	m, ds := tinyModel(t)
	m.SetEval()
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	enc := m.EncodeMetadata(m.Encoder().BuildMetaInput(info, false))
	if enc.Final().RequiresGrad() {
		t.Fatal("eval-mode forward must not track gradients")
	}
	m.SetTrain()
	enc = m.EncodeMetadata(m.Encoder().BuildMetaInput(info, false))
	if !enc.Final().RequiresGrad() {
		t.Fatal("train-mode forward must track gradients")
	}
	m.SetEval()
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, ds := tinyModel(t)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	_, before := m.PredictMeta(info, false)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := New(m.Cfg, m.Tok, m.Types, 999) // different init seed
	if err != nil {
		t.Fatal(err)
	}
	m2.SetEval()
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	_, after := m2.PredictMeta(info, false)
	for i := range before {
		for j := range before[i] {
			if math.Abs(before[i][j]-after[i][j]) > 1e-12 {
				t.Fatalf("prediction drift after load at (%d,%d)", i, j)
			}
		}
	}
}

// TestFailedLoadLeavesWeightsUntouched is the non-atomic checkpoint-load
// regression pin: a Load that fails partway — truncated mid-stream, or a
// concatenated file with trailing bytes — must leave every parameter
// bit-identical, keep the weight generation, and keep predictions
// byte-for-byte stable.
func TestFailedLoadLeavesWeightsUntouched(t *testing.T) {
	m, ds := tinyModel(t)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	_, before := m.PredictMeta(info, false)
	genBefore := m.Generation()

	var snap [][]float64
	for _, p := range m.Params() {
		snap = append(snap, append([]float64(nil), p.Data...))
	}

	// A different model's checkpoint with the right prefix structure but a
	// truncated tail: the early tensors decode fine, so the old non-atomic
	// reader would already have overwritten them before noticing.
	other, err := New(m.Cfg, m.Tok, m.Types, 4242)
	if err != nil {
		t.Fatal(err)
	}
	var good bytes.Buffer
	if err := other.Save(&good); err != nil {
		t.Fatal(err)
	}
	truncated := good.Bytes()[:good.Len()-13]
	if err := m.Load(bytes.NewReader(truncated)); err == nil {
		t.Fatal("truncated checkpoint must fail to load")
	}
	trailing := append(append([]byte(nil), good.Bytes()...), 0x42)
	if err := m.Load(bytes.NewReader(trailing)); err == nil {
		t.Fatal("checkpoint with trailing bytes must fail to load")
	}

	for i, p := range m.Params() {
		for j, v := range p.Data {
			if v != snap[i][j] {
				t.Fatalf("param %d elem %d mutated by failed Load", i, j)
			}
		}
	}
	if g := m.Generation(); g != genBefore {
		t.Fatalf("failed Load changed generation: %d -> %d", genBefore, g)
	}
	_, after := m.PredictMeta(info, false)
	for i := range before {
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				t.Fatalf("prediction drift after failed Load at (%d,%d)", i, j)
			}
		}
	}
}

// TestGenerationsUniqueAcrossModels pins the hot-swap cache contract: two
// live models must never share a weight generation, even right after
// construction, so swapping the serving pointer between them can never make
// one model's memoized outputs resolve for the other.
func TestGenerationsUniqueAcrossModels(t *testing.T) {
	m1, _ := tinyModel(t)
	m2, err := m1.Sibling()
	if err != nil {
		t.Fatal(err)
	}
	m2.SetEval()
	if m1.Generation() == m2.Generation() {
		t.Fatalf("sibling models share generation %d", m1.Generation())
	}
	g1 := m1.Generation()
	m2.SetTrain() // bump m2 only (a mode transition redraws its generation)
	if m1.Generation() != g1 {
		t.Fatal("bumping one model moved another's generation")
	}
	if m1.Generation() == m2.Generation() {
		t.Fatal("generations collided after invalidation")
	}
}

func TestAutoWeightedLossGradients(t *testing.T) {
	w := tensor.Param(1, 2)
	w.Fill(1)
	l1 := tensor.Param(1, 1)
	l1.Fill(2)
	l2 := tensor.Param(1, 1)
	l2.Fill(0.5)
	total := AutoWeightedLoss(w, l1, l2)
	// At w=1: total = 0.5*2 + 0.5*0.5 + 2*ln(2)
	want := 1 + 0.25 + 2*math.Log(2)
	if math.Abs(total.Item()-want) > 1e-9 {
		t.Fatalf("loss = %v, want %v", total.Item(), want)
	}
	total.Backward()
	if w.Grad == nil || w.Grad[0] == 0 || w.Grad[1] == 0 {
		t.Fatal("weights must receive gradients")
	}
	// dL/dw₁ = −L₁/w₁³ + 2w₁/(1+w₁²) = −2 + 1 = −1 at w=1, L₁=2.
	if math.Abs(w.Grad[0]-(-1)) > 1e-9 {
		t.Fatalf("dL/dw1 = %v, want -1", w.Grad[0])
	}
}

func TestFixedWeightedLoss(t *testing.T) {
	l1 := tensor.FromSlice(1, 1, []float64{2})
	l2 := tensor.FromSlice(1, 1, []float64{4})
	if got := FixedWeightedLoss(l1, l2).Item(); got != 3 {
		t.Fatalf("fixed loss = %v, want 3", got)
	}
}

func TestExtendTypesGrowsClassifiers(t *testing.T) {
	m, _ := tinyModel(t)
	before := m.Types.Len()
	m.ExtendTypes([]string{"brand_new_type"}, 1)
	if m.Types.Len() != before+1 {
		t.Fatalf("type space len = %d", m.Types.Len())
	}
	if m.MetaCls.Classes() != before+1 || m.ContCls.Classes() != before+1 {
		t.Fatal("classifiers not extended")
	}
	// Extending with only known names is a no-op.
	m.ExtendTypes([]string{"brand_new_type"}, 1)
	if m.MetaCls.Classes() != before+1 {
		t.Fatal("re-extension should be a no-op")
	}
}

func TestFineTuneReducesLoss(t *testing.T) {
	m, ds := tinyModel(t)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	first, err := FineTune(m, ds.Train[:20], cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Epochs = 3
	cfg.Seed = 2
	last, err := FineTune(m, ds.Train[:20], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v → %v", first, last)
	}
	if math.IsNaN(last) || math.IsInf(last, 0) {
		t.Fatalf("loss diverged: %v", last)
	}
}

func TestFineTuneErrorsOnEmptyInput(t *testing.T) {
	m, _ := tinyModel(t)
	if _, err := FineTune(m, nil, DefaultTrainConfig()); err == nil {
		t.Fatal("expected error for empty training set")
	}
	bad := DefaultTrainConfig()
	bad.Epochs = 0
	if _, err := FineTune(m, []*corpus.Table{{}}, bad); err == nil {
		t.Fatal("expected error for zero epochs")
	}
}

func TestPretrainRuns(t *testing.T) {
	m, ds := tinyModel(t)
	cfg := DefaultPretrainConfig()
	cfg.Steps = 30
	loss, err := Pretrain(m, ds.Train[:10], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(loss) || loss < 0 {
		t.Fatalf("pretrain loss = %v", loss)
	}
	if _, err := Pretrain(m, nil, cfg); err == nil {
		t.Fatal("expected error for empty corpus")
	}
}

func TestApplyFeedbackMovesPrediction(t *testing.T) {
	m, ds := tinyModel(t)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	wanted := "email"
	wi, ok := m.Types.Index(wanted)
	if !ok {
		t.Fatal("email type missing")
	}
	_, before := m.PredictMeta(info, false)
	err := m.ApplyFeedback([]FeedbackExample{{Table: info, Column: 0, Labels: []string{wanted}}}, 0.05, 10)
	if err != nil {
		t.Fatal(err)
	}
	_, after := m.PredictMeta(info, false)
	if after[0][wi] <= before[0][wi] {
		t.Fatalf("feedback did not raise target probability: %v → %v", before[0][wi], after[0][wi])
	}
}

func TestBuildVocabularyIncludesLengthBuckets(t *testing.T) {
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(10), 2)
	tok := BuildVocabulary(ds.Train, ds.Registry.Names(), 500)
	for _, lt := range LengthBucketTokens() {
		if got := tok.Tokenize(lt); len(got) != 1 || got[0] != lt {
			t.Fatalf("length token %s not whole in vocab: %v", lt, got)
		}
	}
}

func TestConcurrentEvalInference(t *testing.T) {
	m, ds := tinyModel(t)
	m.SetEval()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				tb := ds.Test[(w+i)%len(ds.Test)]
				info := metafeat.FromCorpusTable(tb, false, 0)
				menc, probs := m.PredictMeta(info, false)
				if len(probs) != len(info.Columns) {
					errs <- "bad probs length"
					return
				}
				cols := []int{0}
				out := m.PredictContent(menc, info, cols, 3)
				if len(out) != 1 {
					errs <- "bad content probs"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestEpochLRSchedule(t *testing.T) {
	if got := epochLR(1e-3, 0, 3, 10); got != 1e-3 {
		t.Fatalf("no decay expected, got %v", got)
	}
	if got := epochLR(1e-3, 1e-4, 0, 10); got != 1e-3 {
		t.Fatalf("first epoch LR = %v", got)
	}
	last := epochLR(1e-3, 1e-4, 9, 10)
	if math.Abs(last-1e-4) > 1e-9 {
		t.Fatalf("last epoch LR = %v", last)
	}
	mid := epochLR(1e-3, 1e-4, 5, 10)
	if mid >= 1e-3 || mid <= 1e-4 {
		t.Fatalf("mid LR %v out of bounds", mid)
	}
}

func TestPretrainImprovesMLMLoss(t *testing.T) {
	m, ds := tinyModel(t)
	cfg := DefaultPretrainConfig()
	cfg.Steps = 40
	first, err := Pretrain(m, ds.Train[:10], cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Steps = 160
	cfg.Seed = 2
	last, err := Pretrain(m, ds.Train[:10], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if last >= first {
		t.Logf("warning: MLM loss %.4f → %.4f (noisy single-sample losses)", first, last)
	}
	if math.IsNaN(last) || math.IsInf(last, 0) {
		t.Fatalf("MLM loss diverged: %v", last)
	}
}
