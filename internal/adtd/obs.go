package adtd

import (
	"time"

	"repro/internal/obs"
)

// Forward-pass metric handles (DESIGN.md §9): one histogram+counter pair per
// tower, labeled by kind, plus a chunk counter for the batched content path
// so operators can compute chunks-per-forward without the batcher's stats.
var (
	metaForwardSeconds    = obs.Default.LatencyHistogram("taste_adtd_forward_seconds", "kind", "meta")
	contentForwardSeconds = obs.Default.LatencyHistogram("taste_adtd_forward_seconds", "kind", "content")
	metaForwardsTotal     = obs.Default.Counter("taste_adtd_forwards_total", "kind", "meta")
	contentForwardsTotal  = obs.Default.Counter("taste_adtd_forwards_total", "kind", "content")
	contentChunksTotal    = obs.Default.Counter("taste_adtd_content_chunks_total")
)

func observeMetaForward(start time.Time) {
	metaForwardSeconds.ObserveDuration(time.Since(start))
	metaForwardsTotal.Inc()
}

func observeContentForward(start time.Time, chunks int) {
	contentForwardSeconds.ObserveDuration(time.Since(start))
	contentForwardsTotal.Inc()
	contentChunksTotal.Add(int64(chunks))
}
