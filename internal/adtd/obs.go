package adtd

import (
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Forward-pass metric handles (DESIGN.md §9): one histogram+counter pair per
// tower, labeled by kind, plus a chunk counter for the batched content path
// so operators can compute chunks-per-forward without the batcher's stats.
var (
	metaForwardSeconds    = obs.Default.LatencyHistogram("taste_adtd_forward_seconds", "kind", "meta")
	contentForwardSeconds = obs.Default.LatencyHistogram("taste_adtd_forward_seconds", "kind", "content")
	metaForwardsTotal     = obs.Default.Counter("taste_adtd_forwards_total", "kind", "meta")
	contentForwardsTotal  = obs.Default.Counter("taste_adtd_forwards_total", "kind", "content")
	contentChunksTotal    = obs.Default.Counter("taste_adtd_content_chunks_total")

	// Quantized-path selection counters (DESIGN.md §11): incremented only when
	// a forward actually runs int8 kernels, i.e. the resolved preference is on
	// AND the CPU has the required SIMD support — so the ratio against
	// taste_adtd_forwards_total tells operators what fraction of traffic took
	// the lossy path.
	quantMetaForwardsTotal    = obs.Default.Counter("taste_infer_quantized_forwards_total", "kind", "meta")
	quantContentForwardsTotal = obs.Default.Counter("taste_infer_quantized_forwards_total", "kind", "content")
)

// observeQuantized bumps c when the workspace's resolved quantization
// preference will actually select the int8 kernels.
func observeQuantized(ws *tensor.Workspace, c *obs.Counter) {
	if ws.Quantize && tensor.QuantizeAvailable() {
		c.Inc()
	}
}

func observeMetaForward(start time.Time) {
	metaForwardSeconds.ObserveDuration(time.Since(start))
	metaForwardsTotal.Inc()
}

func observeContentForward(start time.Time, chunks int) {
	contentForwardSeconds.ObserveDuration(time.Since(start))
	contentForwardsTotal.Inc()
	contentChunksTotal.Add(int64(chunks))
}
