package adtd

import (
	"testing"

	"repro/internal/metafeat"
	"repro/internal/tensor"
)

// withSlowPath runs f with the fused NoGrad kernels disabled.
func withSlowPath(f func()) {
	tensor.SetFastPath(false)
	defer tensor.SetFastPath(true)
	f()
}

// TestPredictMetaFastMatchesSlow: the whole Phase-1 forward — embedding,
// transformer stack, pooling, classifier, sigmoid — must produce bit-equal
// probabilities with the fused kernels on and off.
func TestPredictMetaFastMatchesSlow(t *testing.T) {
	m, ds := tinyModel(t)
	for ti := 0; ti < 3 && ti < len(ds.Test); ti++ {
		info := metafeat.FromCorpusTable(ds.Test[ti], false, 0)
		_, fast := m.PredictMeta(info, false)
		var slow [][]float64
		withSlowPath(func() { _, slow = m.PredictMeta(info, false) })
		if len(fast) != len(slow) {
			t.Fatalf("table %d: %d vs %d columns", ti, len(fast), len(slow))
		}
		for c := range fast {
			for s := range fast[c] {
				if fast[c][s] != slow[c][s] {
					t.Fatalf("table %d col %d type %d: fast %v != slow %v", ti, c, s, fast[c][s], slow[c][s])
				}
			}
		}
	}
}

// TestPredictContentBatchFastMatchesSlow: Phase 2 batched over several
// chunks, both mask regimes. Encodings are rebuilt per run because the batch
// call consumes fresh ones.
func TestPredictContentBatchFastMatchesSlow(t *testing.T) {
	for _, symmetric := range []bool{false, true} {
		m, ds := tinyModel(t)
		m.Cfg.SymmetricContent = symmetric
		const cells = 3
		run := func() [][][]float64 {
			var reqs []ContentRequest
			for ti := 0; ti < 3 && ti < len(ds.Test); ti++ {
				info := metafeat.FromCorpusTable(ds.Test[ti], false, 0)
				cols := []int{0}
				if len(info.Columns) > 1 {
					cols = append(cols, len(info.Columns)-1)
				}
				menc := m.EncodeMetadata(m.Encoder().BuildMetaInput(info, false))
				reqs = append(reqs, ContentRequest{Menc: menc, Table: info, Cols: cols})
			}
			return m.PredictContentBatch(reqs, cells)
		}
		fast := run()
		var slow [][][]float64
		withSlowPath(func() { slow = run() })
		for r := range fast {
			for c := range fast[r] {
				for s := range fast[r][c] {
					if fast[r][c][s] != slow[r][c][s] {
						t.Fatalf("symmetric=%v req %d col %d type %d: fast %v != slow %v",
							symmetric, r, c, s, fast[r][c][s], slow[r][c][s])
					}
				}
			}
		}
	}
}

// TestFastPathInvalidatedOnWeightChange: mutating weights (training mode or
// a checkpoint load) must drop the packed QKV weights so the fast path never
// serves stale parameters.
func TestFastPathInvalidatedOnWeightChange(t *testing.T) {
	m, ds := tinyModel(t)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	_, before := m.PredictMeta(info, false) // populates the packs
	m.Blocks[0].Attn.WQ.W.Data[0] += 0.5
	// An out-of-band mutation is surfaced by a mode transition: entering and
	// leaving train mode invalidates the packs. (A redundant SetEval on an
	// already-frozen model is deliberately a no-op — hot-swap relies on
	// re-freezing being write-free for models concurrently serving reads.)
	m.SetTrain()
	m.SetEval()
	_, after := m.PredictMeta(info, false)
	same := true
	for c := range before {
		for s := range before[c] {
			if before[c][s] != after[c][s] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("weight mutation did not change predictions: stale packed weights served")
	}
}

// TestPredictContentBatchAllocCeiling pins the steady-state allocation count
// of the batched Phase-2 serving path: workspaces and the arena must absorb
// all large buffers, leaving only per-call bookkeeping.
func TestPredictContentBatchAllocCeiling(t *testing.T) {
	m, ds := tinyModel(t)
	const cells = 3
	var reqs []ContentRequest
	for ti := 0; ti < 2 && ti < len(ds.Test); ti++ {
		info := metafeat.FromCorpusTable(ds.Test[ti], false, 0)
		cols := []int{0}
		if len(info.Columns) > 1 {
			cols = append(cols, 1)
		}
		menc := m.EncodeMetadata(m.Encoder().BuildMetaInput(info, false))
		// Detached copies survive the batch calls, like cached encodings do.
		reqs = append(reqs, ContentRequest{Menc: menc.CloneDetach(), Table: info, Cols: cols})
		menc.Release()
	}
	m.PredictContentBatch(reqs, cells) // warm pools
	const ceiling = 400
	if got := testing.AllocsPerRun(10, func() { m.PredictContentBatch(reqs, cells) }); got > ceiling {
		t.Fatalf("PredictContentBatch: %.0f allocs/op, ceiling %d", got, ceiling)
	}
}
