// Package adtd implements the Asymmetric Double-Tower Detection model of §4:
// a metadata tower and a content tower built from shared Transformer blocks,
// where the content tower asymmetrically attends over the concatenation of
// metadata and content latents. The metadata tower alone serves Phase 1; the
// full model serves Phase 2, reusing the per-layer metadata latents through
// a latent cache. Training combines the two tasks with the automatic
// weighted loss of §4.4; the encoder can be pre-trained with masked language
// modeling over a serialized table corpus (§4.2.1).
package adtd

import (
	"fmt"
	"sort"

	"repro/internal/corpus"
)

// Config carries the five BERT-style parameters of §2.3 plus the input
// token budgets of §4.2.1 and classifier sizes of §4.3.
type Config struct {
	// Layers (L), Heads (A), MaxSeq (W_max), Intermediate (I), Hidden (H).
	Layers       int
	Heads        int
	MaxSeq       int
	Intermediate int
	Hidden       int

	// TableTokens is the token budget for table-level metadata; ColTokens
	// per column's metadata; CellTokens per cell value.
	TableTokens int
	ColTokens   int
	CellTokens  int

	// MetaClassifierHidden and ContentClassifierHidden size the two
	// classifier heads (500 and 1000 at paper scale).
	MetaClassifierHidden    int
	ContentClassifierHidden int

	// SymmetricContent disables the asymmetric dependency of §4.2.3: the
	// content tower attends only over content latents instead of
	// [metadata ⊕ content]. Used by the asymmetric-attention ablation.
	SymmetricContent bool
}

// PaperScale is the configuration of the paper's deployed model (TinyBERT
// encoder, 14.5 M parameters). It is recorded for fidelity; training it in
// pure Go on CPU is possible but far too slow for the experiment sweeps.
func PaperScale() Config {
	return Config{
		Layers: 4, Heads: 12, MaxSeq: 512, Intermediate: 1200, Hidden: 312,
		TableTokens: 150, ColTokens: 10, CellTokens: 10,
		MetaClassifierHidden: 500, ContentClassifierHidden: 1000,
	}
}

// ReproScale is the default scaled-down configuration used throughout the
// reproduction: identical architecture, CPU-trainable in seconds.
func ReproScale() Config {
	return Config{
		Layers: 2, Heads: 4, MaxSeq: 512, Intermediate: 128, Hidden: 64,
		TableTokens: 12, ColTokens: 6, CellTokens: 3,
		MetaClassifierHidden: 64, ContentClassifierHidden: 128,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0 || c.Heads <= 0 || c.Hidden <= 0 || c.Intermediate <= 0:
		return fmt.Errorf("adtd: non-positive model dimensions: %+v", c)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("adtd: hidden %d not divisible by heads %d", c.Hidden, c.Heads)
	case c.TableTokens < 1 || c.ColTokens < 2 || c.CellTokens < 1:
		return fmt.Errorf("adtd: token budgets too small: %+v", c)
	case c.MaxSeq < c.TableTokens+c.ColTokens:
		return fmt.Errorf("adtd: MaxSeq %d cannot hold one table and one column", c.MaxSeq)
	}
	return nil
}

// TypeSpace is the ordered semantic type domain S the classifiers predict
// over. Index 0 is always the background type (corpus.NullType): columns
// without any semantic type are trained toward it, which lets Phase 1
// confidently skip them (§6.6) — but it is never reported as an admitted
// type and is excluded from F1 scoring.
type TypeSpace struct {
	names []string
	index map[string]int
}

// NewTypeSpace builds a type space over the given type names (sorted for
// determinism); the background type is prepended automatically.
func NewTypeSpace(typeNames []string) *TypeSpace {
	sorted := append([]string(nil), typeNames...)
	sort.Strings(sorted)
	ts := &TypeSpace{index: make(map[string]int, len(sorted)+1)}
	ts.names = append(ts.names, corpus.NullType)
	ts.index[corpus.NullType] = 0
	for _, n := range sorted {
		if _, dup := ts.index[n]; dup {
			continue
		}
		ts.index[n] = len(ts.names)
		ts.names = append(ts.names, n)
	}
	return ts
}

// Len returns the number of classes including the background type.
func (ts *TypeSpace) Len() int { return len(ts.names) }

// Name returns the type name at index i.
func (ts *TypeSpace) Name(i int) string { return ts.names[i] }

// Index returns the class index of a type name.
func (ts *TypeSpace) Index(name string) (int, bool) {
	i, ok := ts.index[name]
	return i, ok
}

// Names returns a copy of all class names in index order.
func (ts *TypeSpace) Names() []string { return append([]string(nil), ts.names...) }

// Targets builds the multi-label target vector for a column's ground-truth
// labels; empty labels target the background type.
func (ts *TypeSpace) Targets(labels []string) []float64 {
	v := make([]float64, len(ts.names))
	if len(labels) == 0 {
		v[0] = 1
		return v
	}
	for _, l := range labels {
		if i, ok := ts.index[l]; ok {
			v[i] = 1
		}
	}
	return v
}

// Extend appends new type names (the §8 type-domain extension), returning
// the indices assigned. Existing indices are preserved.
func (ts *TypeSpace) Extend(names []string) []int {
	var idx []int
	for _, n := range names {
		if i, ok := ts.index[n]; ok {
			idx = append(idx, i)
			continue
		}
		ts.index[n] = len(ts.names)
		ts.names = append(ts.names, n)
		idx = append(idx, ts.index[n])
	}
	return idx
}
