package adtd

import "repro/internal/tensor"

// AutoWeightedLoss combines the two towers' BCE losses with learnable
// weights (§4.4):
//
//	L = Σᵢ 1/(2wᵢ²)·Lᵢ + ln(1+wᵢ²)
//
// w is a 1×2 trainable tensor; the square keeps the combination weights
// positive and the log term regularizes w away from infinity.
func AutoWeightedLoss(w *tensor.Tensor, losses ...*tensor.Tensor) *tensor.Tensor {
	if w.Rows != 1 || w.Cols != len(losses) {
		panic("adtd: AutoWeightedLoss weight shape must be 1×len(losses)")
	}
	w2 := tensor.Mul(w, w)
	invHalf := tensor.Scale(tensor.Reciprocal(w2), 0.5) // 1/(2wᵢ²), 1×k
	reg := tensor.Sum(tensor.Log(tensor.AddScalar(w2, 1)))
	total := reg
	for i, l := range losses {
		weighted := tensor.Mul(tensor.SliceCols(invHalf, i, i+1), l)
		total = tensor.Add(total, weighted)
	}
	return total
}

// FixedWeightedLoss is the static 50/50 alternative used by the
// auto-weighted-loss ablation bench.
func FixedWeightedLoss(losses ...*tensor.Tensor) *tensor.Tensor {
	total := tensor.Scale(losses[0], 1/float64(len(losses)))
	for _, l := range losses[1:] {
		total = tensor.Add(total, tensor.Scale(l, 1/float64(len(losses))))
	}
	return total
}
