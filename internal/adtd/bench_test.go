package adtd

import (
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/metafeat"
	"repro/internal/tensor"
)

var benchModel struct {
	once sync.Once
	m    *Model
	ds   *corpus.Dataset
}

func benchSetup(b *testing.B) (*Model, *corpus.Dataset) {
	b.Helper()
	benchModel.once.Do(func() {
		ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(30), 1)
		tok := BuildVocabulary(ds.Train, ds.Registry.Names(), 2000)
		types := NewTypeSpace(ds.Registry.Names())
		m, err := New(ReproScale(), tok, types, 7)
		if err != nil {
			panic(err)
		}
		m.SetEval()
		benchModel.m, benchModel.ds = m, ds
	})
	return benchModel.m, benchModel.ds
}

// BenchmarkP1Inference measures the metadata tower alone — the Phase-1 cost
// every table pays.
func BenchmarkP1Inference(b *testing.B) {
	m, ds := benchSetup(b)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictMeta(info, false)
	}
}

// BenchmarkP2InferenceCachedLatents measures the content tower with cached
// metadata latents (the latent-cache fast path of §4.2.2).
func BenchmarkP2InferenceCachedLatents(b *testing.B) {
	m, ds := benchSetup(b)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	menc, _ := m.PredictMeta(info, false)
	cached := menc.Detach()
	cols := []int{0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictContent(cached, info, cols, 10)
	}
}

// BenchmarkP2InferenceRecomputedLatents measures Phase 2 when the metadata
// tower must be re-run (the "Taste w/o caching" cost).
func BenchmarkP2InferenceRecomputedLatents(b *testing.B) {
	m, ds := benchSetup(b)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	cols := []int{0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		menc := m.EncodeMetadata(m.Encoder().BuildMetaInput(info, false))
		m.PredictContent(menc, info, cols, 10)
	}
}

// BenchmarkP2InferenceBatched measures the batched content tower over four
// chunks at once, the path core's s4 stage uses; compare against four
// BenchmarkP2InferenceCachedLatents iterations for the batching win.
func BenchmarkP2InferenceBatched(b *testing.B) {
	m, ds := benchSetup(b)
	var reqs []ContentRequest
	for ti := 0; ti < 4 && ti < len(ds.Test); ti++ {
		info := metafeat.FromCorpusTable(ds.Test[ti], false, 0)
		menc, _ := m.PredictMeta(info, false)
		reqs = append(reqs, ContentRequest{Menc: menc.CloneDetach(), Table: info, Cols: []int{0}})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictContentBatch(reqs, 10)
	}
}

// BenchmarkP2InferenceBatchedQuant is BenchmarkP2InferenceBatched with the
// int8 inference packs opted in; run both back-to-back on the same machine
// for the quantization speedup ratio.
func BenchmarkP2InferenceBatchedQuant(b *testing.B) {
	m, ds := benchSetup(b)
	if !tensor.QuantizeAvailable() {
		b.Skip("no SIMD int8 kernels on this machine")
	}
	prev := tensor.QuantizeEnabled()
	tensor.SetQuantize(true)
	defer tensor.SetQuantize(prev)
	var reqs []ContentRequest
	for ti := 0; ti < 4 && ti < len(ds.Test); ti++ {
		info := metafeat.FromCorpusTable(ds.Test[ti], false, 0)
		menc, _ := m.PredictMeta(info, false)
		reqs = append(reqs, ContentRequest{Menc: menc.CloneDetach(), Table: info, Cols: []int{0}})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictContentBatch(reqs, 10)
	}
}

// BenchmarkExtensionNewTypes measures growing the classifier heads for a
// freshly registered semantic type (§8).
func BenchmarkExtensionNewTypes(b *testing.B) {
	_, ds := benchSetup(b)
	tok := BuildVocabulary(ds.Train, ds.Registry.Names(), 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		types := NewTypeSpace(ds.Registry.Names())
		m, err := New(ReproScale(), tok, types, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		m.ExtendTypes([]string{"new_type_a", "new_type_b"}, 1)
	}
}

// BenchmarkBuildMetaInput measures metadata serialization.
func BenchmarkBuildMetaInput(b *testing.B) {
	m, ds := benchSetup(b)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	enc := m.Encoder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.BuildMetaInput(info, false)
	}
}
