package adtd

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/metafeat"
	"repro/internal/tensor"
)

// withQuantized runs f with the int8 inference packs opted in process-wide,
// restoring the previous setting afterwards.
func withQuantized(f func()) {
	prev := tensor.QuantizeEnabled()
	tensor.SetQuantize(true)
	defer tensor.SetQuantize(prev)
	f()
}

// quantTolerance bounds the end-to-end probability drift the int8 path may
// introduce versus the fp64 fast path. Per-row absmax scales keep each
// quantized matmul within ~1% relative error and the sigmoid is
// 1/4-Lipschitz, so 0.05 absolute on probabilities is a conservative
// envelope (documented in DESIGN.md §11).
const quantTolerance = 0.05

// TestQuantPredictMetaAccuracyDelta: the Phase-1 forward under int8 packs
// must stay within tolerance of the fp64 fast path, and must actually
// diverge from it (proving the quantized kernels ran).
func TestQuantPredictMetaAccuracyDelta(t *testing.T) {
	if !tensor.QuantizeAvailable() {
		t.Skip("no SIMD int8 kernels on this machine")
	}
	m, ds := tinyModel(t)
	var worst float64
	diverged := false
	for ti := 0; ti < 3 && ti < len(ds.Test); ti++ {
		info := metafeat.FromCorpusTable(ds.Test[ti], false, 0)
		_, fp := m.PredictMeta(info, false)
		var q [][]float64
		withQuantized(func() { _, q = m.PredictMeta(info, false) })
		if len(q) != len(fp) {
			t.Fatalf("table %d: %d vs %d columns", ti, len(q), len(fp))
		}
		for c := range fp {
			for s := range fp[c] {
				d := math.Abs(q[c][s] - fp[c][s])
				if d > worst {
					worst = d
				}
				if d != 0 {
					diverged = true
				}
			}
		}
	}
	if worst > quantTolerance {
		t.Fatalf("quantized meta probabilities drift %.4f > tolerance %.2f", worst, quantTolerance)
	}
	if !diverged {
		t.Fatal("quantized path produced bit-identical output: int8 kernels not selected")
	}
}

// TestQuantPredictContentBatchAccuracyDelta: same bound for the batched
// Phase-2 path, both mask regimes.
func TestQuantPredictContentBatchAccuracyDelta(t *testing.T) {
	if !tensor.QuantizeAvailable() {
		t.Skip("no SIMD int8 kernels on this machine")
	}
	for _, symmetric := range []bool{false, true} {
		m, ds := tinyModel(t)
		m.Cfg.SymmetricContent = symmetric
		const cells = 3
		run := func() [][][]float64 {
			var reqs []ContentRequest
			for ti := 0; ti < 3 && ti < len(ds.Test); ti++ {
				info := metafeat.FromCorpusTable(ds.Test[ti], false, 0)
				cols := []int{0}
				if len(info.Columns) > 1 {
					cols = append(cols, len(info.Columns)-1)
				}
				menc := m.EncodeMetadata(m.Encoder().BuildMetaInput(info, false))
				reqs = append(reqs, ContentRequest{Menc: menc, Table: info, Cols: cols})
			}
			return m.PredictContentBatch(reqs, cells)
		}
		fp := run()
		var q [][][]float64
		withQuantized(func() { q = run() })
		var worst float64
		diverged := false
		for r := range fp {
			for c := range fp[r] {
				for s := range fp[r][c] {
					d := math.Abs(q[r][c][s] - fp[r][c][s])
					if d > worst {
						worst = d
					}
					if d != 0 {
						diverged = true
					}
				}
			}
		}
		if worst > quantTolerance {
			t.Fatalf("symmetric=%v: quantized content probabilities drift %.4f > tolerance %.2f",
				symmetric, worst, quantTolerance)
		}
		if !diverged {
			t.Fatalf("symmetric=%v: quantized path bit-identical: int8 kernels not selected", symmetric)
		}
	}
}

// TestQuantPerRequestOverride: the Q-variant entry points must honor an
// explicit per-request preference over the process default.
func TestQuantPerRequestOverride(t *testing.T) {
	if !tensor.QuantizeAvailable() {
		t.Skip("no SIMD int8 kernels on this machine")
	}
	m, ds := tinyModel(t)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	on, off := true, false
	_, fp := m.PredictMetaQ(info, false, &off)
	_, q := m.PredictMetaQ(info, false, &on)
	// With the process default off, &on must still select the int8 path.
	diverged := false
	for c := range fp {
		for s := range fp[c] {
			if fp[c][s] != q[c][s] {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("per-request quantize=true did not select the int8 path")
	}
	// And with the process default on, &off must restore the fp64 path.
	withQuantized(func() {
		_, fp2 := m.PredictMetaQ(info, false, &off)
		for c := range fp {
			for s := range fp[c] {
				if fp[c][s] != fp2[c][s] {
					t.Fatalf("per-request quantize=false did not restore the fp64 path (col %d type %d)", c, s)
				}
			}
		}
	})
}

// TestQuantPackInvalidatedOnWeightChange: the int8 packs obey the same
// invalidation contract as the fp64 packs — a train/eval cycle that mutates
// weights, or a checkpoint load, must rebuild them.
func TestQuantPackInvalidatedOnWeightChange(t *testing.T) {
	if !tensor.QuantizeAvailable() {
		t.Skip("no SIMD int8 kernels on this machine")
	}
	withQuantized(func() {
		m, ds := tinyModel(t)
		info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
		_, before := m.PredictMeta(info, false) // populates the int8 packs

		// Save the current weights, then mutate in a train/eval cycle.
		var ckpt bytes.Buffer
		if err := m.Save(&ckpt); err != nil {
			t.Fatal(err)
		}
		m.SetTrain()
		m.Blocks[0].Attn.WQ.W.Data[0] += 1.5
		m.MetaCls.Out.W.Data[0] += 1.5
		m.SetEval()
		_, after := m.PredictMeta(info, false)
		if probsEqual(before, after) {
			t.Fatal("weight mutation did not change quantized predictions: stale int8 packs served")
		}

		// Loading the checkpoint must also invalidate, restoring the
		// original quantized predictions exactly.
		if err := m.Load(&ckpt); err != nil {
			t.Fatal(err)
		}
		_, restored := m.PredictMeta(info, false)
		if !probsEqual(before, restored) {
			t.Fatal("checkpoint load did not rebuild int8 packs from restored weights")
		}
	})
}

func probsEqual(a, b [][]float64) bool {
	for c := range a {
		for s := range a[c] {
			if a[c][s] != b[c][s] {
				return false
			}
		}
	}
	return true
}
