package adtd

import (
	"math"
	"testing"

	"repro/internal/metafeat"
)

// TestPredictContentBatchMatchesUnbatched verifies the batched Phase-2 path
// against per-chunk PredictContent: the block-diagonal mask must isolate the
// chunks so every probability row matches its unbatched counterpart.
func TestPredictContentBatchMatchesUnbatched(t *testing.T) {
	m, ds := tinyModel(t)
	const cells = 3

	var reqs []ContentRequest
	var want [][][]float64
	for ti := 0; ti < 3 && ti < len(ds.Test); ti++ {
		info := metafeat.FromCorpusTable(ds.Test[ti], false, 0)
		cols := []int{0}
		if len(info.Columns) > 1 {
			cols = append(cols, len(info.Columns)-1)
		}
		menc := m.EncodeMetadata(m.Encoder().BuildMetaInput(info, false))
		want = append(want, m.PredictContent(menc, info, cols, cells))
		reqs = append(reqs, ContentRequest{Menc: menc, Table: info, Cols: cols})
	}

	got := m.PredictContentBatch(reqs, cells)
	if len(got) != len(reqs) {
		t.Fatalf("batch returned %d results for %d requests", len(got), len(reqs))
	}
	for r := range reqs {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("request %d: %d rows, want %d", r, len(got[r]), len(want[r]))
		}
		for c := range want[r] {
			for s := range want[r][c] {
				if d := math.Abs(got[r][c][s] - want[r][c][s]); d > 1e-9 {
					t.Fatalf("request %d col %d type %d: batched %v vs unbatched %v (Δ %g)",
						r, c, s, got[r][c][s], want[r][c][s], d)
				}
			}
		}
	}
}

// TestPredictContentBatchSingleRequest exercises the nil-mask fast path for
// one single-column request.
func TestPredictContentBatchSingleRequest(t *testing.T) {
	m, ds := tinyModel(t)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	menc := m.EncodeMetadata(m.Encoder().BuildMetaInput(info, false))
	want := m.PredictContent(menc, info, []int{0}, 3)
	got := m.PredictContentBatch([]ContentRequest{{Menc: menc, Table: info, Cols: []int{0}}}, 3)
	if len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("unexpected batch shape")
	}
	for s := range want[0] {
		if math.Abs(got[0][0][s]-want[0][s]) > 1e-9 {
			t.Fatalf("type %d: %v vs %v", s, got[0][0][s], want[0][s])
		}
	}
}

// TestPredictContentBatchSymmetric checks the ablation tower's batched mask.
func TestPredictContentBatchSymmetric(t *testing.T) {
	m, ds := tinyModel(t)
	m.Cfg.SymmetricContent = true
	defer func() { m.Cfg.SymmetricContent = false }()
	var reqs []ContentRequest
	var want [][][]float64
	for ti := 0; ti < 2 && ti < len(ds.Test); ti++ {
		info := metafeat.FromCorpusTable(ds.Test[ti], false, 0)
		cols := []int{0}
		if len(info.Columns) > 1 {
			cols = append(cols, 1)
		}
		menc := m.EncodeMetadata(m.Encoder().BuildMetaInput(info, false))
		want = append(want, m.PredictContent(menc, info, cols, 3))
		reqs = append(reqs, ContentRequest{Menc: menc, Table: info, Cols: cols})
	}
	got := m.PredictContentBatch(reqs, 3)
	for r := range want {
		for c := range want[r] {
			for s := range want[r][c] {
				if math.Abs(got[r][c][s]-want[r][c][s]) > 1e-9 {
					t.Fatalf("req %d col %d type %d: %v vs %v", r, c, s, got[r][c][s], want[r][c][s])
				}
			}
		}
	}
}

// TestPredictContentBatchReleasesFreshEncodings documents the ownership
// contract: fresh encodings passed into the batch are consumed.
func TestPredictContentBatchReleasesFreshEncodings(t *testing.T) {
	m, ds := tinyModel(t)
	info := metafeat.FromCorpusTable(ds.Test[0], false, 0)
	menc := m.EncodeMetadata(m.Encoder().BuildMetaInput(info, false))
	cached := menc.CloneDetach()
	m.PredictContentBatch([]ContentRequest{{Menc: menc, Table: info, Cols: []int{0}}}, 3)
	if menc.Final().Data != nil {
		t.Fatal("fresh encoding must be released by the batch call")
	}
	if cached.Final().Data == nil {
		t.Fatal("deep copy must survive the batch call")
	}
	// The surviving copy must still be usable for another pass.
	out := m.PredictContentBatch([]ContentRequest{{Menc: cached, Table: info, Cols: []int{0}}}, 3)
	if len(out) != 1 || len(out[0]) != 1 {
		t.Fatal("cached encoding unusable after release of the original")
	}
}
