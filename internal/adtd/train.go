package adtd

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/metafeat"
	"repro/internal/tensor"
	"repro/internal/train"
)

// TrainConfig controls fine-tuning (§6.1.3: on-premise training over the
// labelled training split).
type TrainConfig struct {
	// Epochs over the training set (paper: 20; repro default: 4).
	Epochs int
	// Workers is the number of data-parallel gradient workers (≤0 → 1).
	// See DESIGN.md §10 for the determinism contract.
	Workers int
	// GradAccum accumulates this many chunks per worker into each optimizer
	// step (≤0 → 1).
	GradAccum int
	// LR is the initial Adam learning rate.
	LR float64
	// FinalLR, when positive, decays the learning rate exponentially from
	// LR to FinalLR across the epochs.
	FinalLR float64
	// PosWeight up-weights positive (column, type) pairs in the BCE loss to
	// counter the extreme label sparsity of multi-label detection.
	PosWeight float64
	// WeightDecay is the AdamW decoupled weight decay (0 disables).
	WeightDecay float64
	// WithStats attaches ANALYZE-equivalent statistics to training tables
	// (trains the "Taste with histogram" variant).
	WithStats bool
	// SplitThreshold is the column split threshold l (§6.1.2).
	SplitThreshold int
	// Cells is the number of non-empty cell values per column (n).
	Cells int
	// ContentColumnsPerChunk caps how many columns join the content task
	// per chunk per epoch (sampled), bounding the content tower's
	// sequence length on wide tables. ≤0 means all columns.
	ContentColumnsPerChunk int
	// UseAutoWeightedLoss selects §4.4's automatic weighting (true, the
	// default configuration) or a fixed 50/50 combination (the ablation).
	UseAutoWeightedLoss bool
	// Seed drives shuffling and column sampling. Sampling is keyed by
	// chunk identity (train.ItemRNG), so results are independent of chunk
	// processing order.
	Seed int64
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
}

// DefaultTrainConfig returns the repro-scale training configuration.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:                 4,
		LR:                     1e-3,
		PosWeight:              4,
		SplitThreshold:         20,
		Cells:                  10,
		ContentColumnsPerChunk: 6,
		UseAutoWeightedLoss:    true,
		Seed:                   1,
	}
}

// trainChunk is one fine-tuning item: a table chunk plus per-column labels.
type trainChunk struct {
	info   *metafeat.TableInfo
	labels [][]string
}

// buildTrainChunks splits labelled tables into training chunks
// (§6.1.2 column splitting), carrying each column's labels along.
func buildTrainChunks(tables []*corpus.Table, withStats bool, splitThreshold int) []trainChunk {
	var chunks []trainChunk
	for _, t := range tables {
		info := metafeat.FromCorpusTable(t, withStats, 8)
		labelOf := make(map[*metafeat.ColumnInfo][]string, len(t.Columns))
		for i, c := range info.Columns {
			labelOf[c] = t.Columns[i].Labels
		}
		for _, part := range info.Split(splitThreshold) {
			ch := trainChunk{info: part}
			for _, c := range part.Columns {
				ch.labels = append(ch.labels, labelOf[c])
			}
			chunks = append(chunks, ch)
		}
	}
	return chunks
}

// trainingReplica builds a worker-private model whose parameters alias the
// canonical model's weights (shared, read-only during a micro-batch group)
// but own their gradient state, so concurrent backward passes never write
// the same buffer.
func (m *Model) trainingReplica() (*Model, error) {
	r, err := New(m.Cfg, m.Tok, m.Types, 0)
	if err != nil {
		return nil, err
	}
	tensor.AliasData(r.Params(), m.Params())
	r.SetTrain()
	return r, nil
}

// FineTune trains the full ADTD model (both towers jointly, multi-task) on
// labelled corpus tables. It returns the mean total loss of the final epoch.
func FineTune(m *Model, tables []*corpus.Table, cfg TrainConfig) (float64, error) {
	if cfg.Epochs <= 0 {
		return 0, fmt.Errorf("adtd: Epochs must be positive")
	}
	if cfg.Cells <= 0 {
		cfg.Cells = 10
	}
	chunks := buildTrainChunks(tables, cfg.WithStats, cfg.SplitThreshold)
	if len(chunks) == 0 {
		return 0, fmt.Errorf("adtd: no training tables")
	}
	m.SetTrain()
	defer m.SetEval()

	spec := train.Spec{
		Params: m.Params(),
		Items:  len(chunks),
		NewWorker: func(w int) (train.Worker, error) {
			mm := m
			if w > 0 {
				var err error
				if mm, err = m.trainingReplica(); err != nil {
					return train.Worker{}, err
				}
			}
			return train.Worker{
				Params: mm.Params(),
				Step: func(items []int, rng *rand.Rand) *tensor.Tensor {
					ch := chunks[items[0]]
					return mm.trainStep(ch.info, ch.labels, cfg, rng)
				},
			}, nil
		},
	}
	return train.Run(spec, train.Config{
		Epochs:      cfg.Epochs,
		Workers:     cfg.Workers,
		GradAccum:   cfg.GradAccum,
		Shuffle:     true,
		LR:          cfg.LR,
		FinalLR:     cfg.FinalLR,
		ClipNorm:    1,
		WeightDecay: cfg.WeightDecay,
		Seed:        cfg.Seed,
		Log:         cfg.Log,
		LogPrefix:   "adtd fine-tune",
	})
}

// trainStep builds the multi-task loss for one table chunk.
func (m *Model) trainStep(info *metafeat.TableInfo, labels [][]string, cfg TrainConfig, rng *rand.Rand) *tensor.Tensor {
	targets := make([][]float64, len(info.Columns))
	for i := range info.Columns {
		targets[i] = m.Types.Targets(labels[i])
	}
	targetT := tensor.FromRows(targets)

	// Task 1: metadata tower.
	menc := m.EncodeMetadata(m.enc.BuildMetaInput(info, cfg.WithStats))
	metaLoss := tensor.WeightedBCEWithLogits(m.MetaLogits(menc), targetT, cfg.PosWeight)

	// Task 2: content tower over a (possibly sampled) subset of columns.
	cols := make([]int, len(info.Columns))
	for i := range cols {
		cols[i] = i
	}
	if cfg.ContentColumnsPerChunk > 0 && len(cols) > cfg.ContentColumnsPerChunk {
		rng.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })
		cols = cols[:cfg.ContentColumnsPerChunk]
	}
	cin := m.enc.BuildContentInput(info, cols, cfg.Cells)
	content := m.EncodeContent(menc, cin)
	contentTargets := make([][]float64, len(cols))
	for slot, ci := range cols {
		contentTargets[slot] = targets[ci]
	}
	contLoss := tensor.WeightedBCEWithLogits(
		m.ContentLogits(menc, cin, content),
		tensor.FromRows(contentTargets),
		cfg.PosWeight,
	)

	if cfg.UseAutoWeightedLoss {
		return AutoWeightedLoss(m.LossW, metaLoss, contLoss)
	}
	return FixedWeightedLoss(metaLoss, contLoss)
}

// FeedbackExample is one user correction (§8 future work): the column as
// the user saw it plus the types it should (or should not) have.
type FeedbackExample struct {
	Table  *metafeat.TableInfo
	Column int
	Labels []string
}

// ApplyFeedback performs a lightweight online update of the classifier
// heads only (encoder frozen), adapting predictions to user corrections
// without a full re-train.
func (m *Model) ApplyFeedback(examples []FeedbackExample, lr float64, steps int) error {
	if len(examples) == 0 {
		return fmt.Errorf("adtd: no feedback examples")
	}
	heads := append(m.MetaCls.Params(), m.ContCls.Params()...)
	for _, p := range heads {
		p.SetRequiresGrad(true)
	}
	defer func() {
		for _, p := range heads {
			p.SetRequiresGrad(false)
		}
		// The SGD steps mutated head weights in place behind the model-level
		// setGrad hooks, so packed fast-path weights and any memoized
		// predictions are stale — invalidate them like SetTrain/Load do.
		m.invalidatePacks()
	}()
	opt := tensor.NewSGD(heads, lr, 0.9)
	for s := 0; s < steps; s++ {
		for _, ex := range examples {
			opt.ZeroGrads()
			menc := m.EncodeMetadata(m.enc.BuildMetaInput(ex.Table, false))
			logits := m.MetaLogits(menc)
			row := tensor.SliceRows(logits, ex.Column, ex.Column+1)
			target := tensor.FromRows([][]float64{m.Types.Targets(ex.Labels)})
			loss := tensor.WeightedBCEWithLogits(row, target, 4)
			if ex.Table.Columns[ex.Column].Values != nil {
				cin := m.enc.BuildContentInput(ex.Table, []int{ex.Column}, 10)
				content := m.EncodeContent(menc, cin)
				closs := tensor.WeightedBCEWithLogits(m.ContentLogits(menc, cin, content), target, 4)
				loss = tensor.Add(loss, closs)
			}
			loss.Backward()
			opt.Step()
			tensor.ReleaseGraph(loss)
		}
	}
	return nil
}

// epochLR interpolates the learning rate exponentially from lr to finalLR
// (when set) across epochs. Kept as a thin wrapper over the training
// runtime's schedule so existing call sites and tests stay stable.
func epochLR(lr, finalLR float64, epoch, epochs int) float64 {
	return train.EpochLR(lr, finalLR, epoch, epochs)
}
