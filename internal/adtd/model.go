package adtd

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"sync/atomic"

	"repro/internal/metafeat"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
)

// Model is the Asymmetric Double-Tower Detection network (§4, Fig. 3).
//
// The "two towers" are logical: both run the same shared Transformer blocks
// (§4.2.1, "the two towers use shared parameters for each layer"), differing
// only in their inputs and attention wiring. The metadata tower is plain
// self-attention over the serialized metadata; the content tower queries
// with content latents while its keys/values are the concatenation of the
// previous layer's metadata and content latents (§4.2.3).
type Model struct {
	Cfg   Config
	Types *TypeSpace
	Tok   *tokenizer.Tokenizer

	TokEmbed *nn.Embedding
	PosEmbed *nn.Embedding
	SegEmbed *nn.Embedding // 0 = table meta, 1 = column meta, 2 = content

	Blocks []*nn.TransformerBlock

	MetaCls *nn.MLPClassifier // input: H + NonTextualDim
	ContCls *nn.MLPClassifier // input: 2H + NonTextualDim

	MLMHead *nn.Linear // H → vocab, pre-training objective head

	// LossW is the learnable 1×2 weight vector w of the automatic
	// weighted loss (§4.4).
	LossW *tensor.Tensor

	// gen identifies the current weight state. It is drawn from a
	// process-global counter — unique across every live model, not just
	// monotonic within one — and redrawn on weight-mutating events
	// (grad-mode flips, checkpoint loads, feedback updates). Result-cache
	// keys embed it, so a bump orphans every memoized prediction in O(1) —
	// the same contract the fast-path weight packs follow via
	// invalidatePacks — and hot-swapping between models can never alias two
	// models' cached outputs.
	gen atomic.Uint64

	// training mirrors the parameters' requiresGrad state so SetEval/SetTrain
	// can skip the flag sweep when the mode is already right. That makes
	// re-entering eval mode write-free, which matters for hot-swap: swapping a
	// cached, already-frozen model back into serving must not race the
	// requests still running inference on it.
	training atomic.Bool

	enc Encoder
}

// generationCounter hands out process-unique weight generations. Starting
// at 1 keeps 0 meaning "never assigned".
var generationCounter atomic.Uint64

// nextGeneration returns a fresh process-unique generation.
func nextGeneration() uint64 { return generationCounter.Add(1) }

// Generation returns the model's weight generation. It changes whenever
// the weights may have changed in place; anything memoizing model outputs
// must key on it.
func (m *Model) Generation() uint64 { return m.gen.Load() }

// New creates a randomly initialized ADTD model.
func New(cfg Config, tok *tokenizer.Tokenizer, types *TypeSpace, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Model{
		Cfg:      cfg,
		Types:    types,
		Tok:      tok,
		TokEmbed: nn.NewEmbedding(tok.VocabSize(), cfg.Hidden, rng),
		PosEmbed: nn.NewEmbedding(cfg.MaxSeq, cfg.Hidden, rng),
		SegEmbed: nn.NewEmbedding(3, cfg.Hidden, rng),
		MetaCls:  nn.NewMLPClassifier(cfg.Hidden+metafeat.NonTextualDim, cfg.MetaClassifierHidden, types.Len(), rng),
		ContCls:  nn.NewMLPClassifier(2*cfg.Hidden+metafeat.NonTextualDim, cfg.ContentClassifierHidden, types.Len(), rng),
		MLMHead:  nn.NewLinear(cfg.Hidden, tok.VocabSize(), rng),
		LossW:    tensor.Param(1, 2),
	}
	m.LossW.Fill(1)
	// Multi-label targets are extremely sparse (one or two positives among
	// |S| types), so the output layers start biased toward "not this type":
	// untrained columns then read as confidently type-less rather than as
	// uniformly uncertain, and training only has to raise the positives.
	m.MetaCls.Out.B.Fill(-3)
	m.ContCls.Out.B.Fill(-3)
	for i := 0; i < cfg.Layers; i++ {
		m.Blocks = append(m.Blocks, nn.NewTransformerBlock(cfg.Hidden, cfg.Heads, cfg.Intermediate, rng))
	}
	m.enc = Encoder{Tok: tok, Cfg: cfg}
	m.training.Store(true) // tensor.Param starts with gradients enabled
	m.gen.Store(nextGeneration())
	return m, nil
}

// Sibling creates a fresh, randomly initialized model with the same
// configuration, tokenizer, and type space — the right shape to Load any
// checkpoint this model could have Saved. The model registry uses it to
// materialize additional versions for zero-downtime hot-swap: the sibling
// gets its own weight generation and fast-path packs, so serving two
// versions side by side never aliases caches.
func (m *Model) Sibling() (*Model, error) {
	return New(m.Cfg, m.Tok, m.Types, 0)
}

// Encoder returns the input encoder bound to this model's tokenizer and
// configuration.
func (m *Model) Encoder() *Encoder { return &m.enc }

// Params returns all trainable parameters in a stable order.
func (m *Model) Params() []*tensor.Tensor {
	mods := []nn.Module{m.TokEmbed, m.PosEmbed, m.SegEmbed}
	for _, b := range m.Blocks {
		mods = append(mods, b)
	}
	mods = append(mods, m.MetaCls, m.ContCls, m.MLMHead)
	ps := nn.CollectParams(mods...)
	return append(ps, m.LossW)
}

// NumParams returns the total scalar parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Data)
	}
	return n
}

// SetEval freezes parameters: subsequent forwards build no autograd state,
// making inference cheaper and safe for concurrent use of the shared model.
func (m *Model) SetEval() { m.setGrad(false) }

// SetTrain re-enables gradient tracking.
func (m *Model) SetTrain() { m.setGrad(true) }

func (m *Model) setGrad(v bool) {
	if m.training.Swap(v) == v {
		return // already in the requested mode; no flags to flip
	}
	for _, p := range m.Params() {
		p.SetRequiresGrad(v)
	}
	// Weights may have been stepped since the fast path last packed them.
	m.invalidatePacks()
}

// Save serializes all parameters.
func (m *Model) Save(w io.Writer) error { return tensor.WriteTensors(w, m.Params()) }

// Load restores all parameters from a checkpoint written by Save. The load
// is atomic: tensor.ReadTensors validates the whole checkpoint in scratch
// buffers before installing anything, so a truncated or corrupt file
// returns an error with the live weights — and therefore serving —
// untouched, and the weight generation is only redrawn on success.
func (m *Model) Load(r io.Reader) error {
	if err := tensor.ReadTensors(r, m.Params()); err != nil {
		return err
	}
	m.invalidatePacks()
	return nil
}

// embed builds token+position+segment embeddings for a sequence.
func (m *Model) embed(ids, segments []int) *tensor.Tensor {
	pos := make([]int, len(ids))
	for i := range pos {
		p := i
		if p >= m.Cfg.MaxSeq {
			p = m.Cfg.MaxSeq - 1
		}
		pos[i] = p
	}
	e := tensor.Add(m.TokEmbed.Forward(ids), m.PosEmbed.Forward(pos))
	return tensor.Add(e, m.SegEmbed.Forward(segments))
}

// MetaEncoding carries the per-layer metadata latents Encodeᵢ^{Mᶜₜ} for one
// table chunk — exactly what the latent cache stores (§4.2.2): layer 0 is
// the embedding, layer i the output of the i-th Transformer block.
type MetaEncoding struct {
	Layers []*tensor.Tensor
	In     *MetaInput
}

// Final returns the last layer's latents.
func (e *MetaEncoding) Final() *tensor.Tensor { return e.Layers[len(e.Layers)-1] }

// Detach returns a graph-free view sharing the layers' buffers. The view
// must not outlive a Release/ReleaseGraph of the producing graph; use
// CloneDetach for a copy that does.
func (e *MetaEncoding) Detach() *MetaEncoding {
	out := &MetaEncoding{In: e.In}
	for _, l := range e.Layers {
		out.Layers = append(out.Layers, l.Detach())
	}
	return out
}

// CloneDetach returns a graph-free deep copy whose buffers are independent
// of the producing graph, so it survives Release of the original encoding.
// This is what the latent cache stores.
func (e *MetaEncoding) CloneDetach() *MetaEncoding {
	out := &MetaEncoding{In: e.In}
	for _, l := range e.Layers {
		out.Layers = append(out.Layers, l.Clone())
	}
	return out
}

// Release returns the encoding's graph buffers to the tensor arena once the
// latents have been consumed (classified and/or deep-copied into the cache).
// On a detached or cloned encoding whose layers are graph leaves this is a
// no-op apart from clearing the layer slice.
func (e *MetaEncoding) Release() {
	if len(e.Layers) == 0 {
		return
	}
	tensor.ReleaseGraph(e.Final())
	e.Layers = nil
}

// EncodeMetadata runs the metadata tower (§4.2.2): L layers of
// self-attention over the metadata sequence, returning every layer's
// latents so P2 can reuse them.
func (m *Model) EncodeMetadata(in *MetaInput) *MetaEncoding {
	if m.evalFast() {
		ws := tensor.AcquireWorkspace()
		enc := m.encodeMetadataWS(ws, in)
		tensor.ReleaseWorkspace(ws)
		return enc
	}
	enc := &MetaEncoding{In: in}
	x := m.embed(in.IDs, in.Segments)
	enc.Layers = append(enc.Layers, x)
	for _, b := range m.Blocks {
		x = b.SelfForward(x, nil)
		enc.Layers = append(enc.Layers, x)
	}
	return enc
}

// MetaLogits applies the metadata classifier f₁ (§4.3) to every column of
// an encoded chunk: Classify_meta(Encode_L^{Mᶜₜ} ⊕ Mᶜₙ). The column's
// latent representation is the mean over its metadata token span.
func (m *Model) MetaLogits(enc *MetaEncoding) *tensor.Tensor {
	if m.evalFast() && !enc.Final().RequiresGrad() {
		ws := tensor.AcquireWorkspace()
		out := m.metaLogitsWS(ws, enc)
		tensor.ReleaseWorkspace(ws)
		return out
	}
	pooled := poolSpans(enc.Final(), enc.In.ColSpans)
	return m.MetaCls.Forward(tensor.ConcatCols(pooled, tensor.FromRows(enc.In.NonTextual)))
}

// poolSpans mean-pools rows of x over each [start, end) span.
func poolSpans(x *tensor.Tensor, spans [][2]int) *tensor.Tensor {
	rows := make([]*tensor.Tensor, len(spans))
	for i, sp := range spans {
		rows[i] = tensor.MeanRows(tensor.SliceRows(x, sp[0], sp[1]))
	}
	return tensor.ConcatRows(rows...)
}

// EncodeContent runs the content tower (§4.2.3). Each layer queries with the
// previous content latents while attending over [metadata ⊕ content]
// latents of the previous layer; the metadata latents come from menc, which
// may be a cached encoding. The attention mask lets a cell attend to all
// metadata positions but only to content positions of its own column (§6.4).
func (m *Model) EncodeContent(menc *MetaEncoding, in *ContentInput) *tensor.Tensor {
	if len(menc.Layers) != m.Cfg.Layers+1 {
		panic(fmt.Sprintf("adtd: metadata encoding has %d layers, model wants %d", len(menc.Layers)-1, m.Cfg.Layers))
	}
	if m.evalFast() && tensor.NoGrad(menc.Layers...) {
		ws := tensor.AcquireWorkspace()
		out := m.encodeContentWS(ws, menc, in)
		tensor.ReleaseWorkspace(ws)
		return out
	}
	segs := make([]int, len(in.IDs))
	for i := range segs {
		segs[i] = 2
	}
	content := m.embed(in.IDs, segs)
	if m.Cfg.SymmetricContent {
		// Ablation: plain self-attention over content, no metadata K/V.
		mask := m.symmetricMask(in)
		for _, b := range m.Blocks {
			content = b.SelfForward(content, mask)
		}
		return content
	}
	mask := m.contentMask(menc.In.Len(), in)
	for i, b := range m.Blocks {
		kv := tensor.ConcatRows(menc.Layers[i], content)
		content = b.Forward(content, kv, mask)
	}
	return content
}

// symmetricMask is the content-only per-column mask used by the
// SymmetricContent ablation.
func (m *Model) symmetricMask(in *ContentInput) *tensor.Tensor {
	lc := in.Len()
	multi := false
	for _, c := range in.ColOf {
		if c != in.ColOf[0] {
			multi = true
			break
		}
	}
	if !multi {
		return nil
	}
	mask := tensor.New(lc, lc)
	neg := math.Inf(-1)
	for i := 0; i < lc; i++ {
		row := mask.Row(i)
		for j := 0; j < lc; j++ {
			if in.ColOf[j] != in.ColOf[i] {
				row[j] = neg
			}
		}
	}
	return mask
}

// contentMask builds the Lc × (Lm+Lc) additive mask: zeros over metadata,
// zeros within the same column's content, -Inf across columns.
func (m *Model) contentMask(lm int, in *ContentInput) *tensor.Tensor {
	lc := in.Len()
	// Single-column chunks need no mask: everything may attend everywhere.
	multi := false
	for _, c := range in.ColOf {
		if c != in.ColOf[0] {
			multi = true
			break
		}
	}
	if !multi {
		return nil
	}
	mask := tensor.New(lc, lm+lc)
	neg := math.Inf(-1)
	for i := 0; i < lc; i++ {
		row := mask.Row(i)
		for j := 0; j < lc; j++ {
			if in.ColOf[j] != in.ColOf[i] {
				row[lm+j] = neg
			}
		}
	}
	return mask
}

// ContentLogits applies the content classifier f₂ (§4.3) to the selected
// columns: Classify_cont(Encode_L^{Dᶜ} ⊕ Encode_L^{Mᶜₜ} ⊕ Mᶜₙ).
func (m *Model) ContentLogits(menc *MetaEncoding, in *ContentInput, content *tensor.Tensor) *tensor.Tensor {
	if m.evalFast() && tensor.NoGrad(content, menc.Final()) {
		ws := tensor.AcquireWorkspace()
		x := ws.Matrix(len(in.Columns), m.ContCls.Hidden.In())
		m.contentLogitsWS(ws, x, 0, menc, in, content, 0)
		out := m.ContCls.ForwardWS(ws, x, content, menc.Final())
		tensor.ReleaseWorkspace(ws)
		return out
	}
	contentPooled := poolSpans(content, in.ColSpans)
	metaSpans := make([][2]int, len(in.Columns))
	nonTextual := make([][]float64, len(in.Columns))
	for slot, ci := range in.Columns {
		metaSpans[slot] = menc.In.ColSpans[ci]
		nonTextual[slot] = menc.In.NonTextual[ci]
	}
	metaPooled := poolSpans(menc.Final(), metaSpans)
	return m.ContCls.Forward(tensor.ConcatCols(contentPooled, metaPooled, tensor.FromRows(nonTextual)))
}

// Sigmoid converts a logits matrix into probabilities without touching the
// autograd graph (inference helper).
func Sigmoid(logits *tensor.Tensor) [][]float64 {
	out := make([][]float64, logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		row := make([]float64, logits.Cols)
		for j, v := range logits.Row(i) {
			row[j] = 1 / (1 + math.Exp(-v))
		}
		out[i] = row
	}
	return out
}

// PredictMeta is the Phase-1 inference path: encode metadata and return the
// encoding (for caching) plus per-column type probabilities p_{c,s}.
func (m *Model) PredictMeta(t *metafeat.TableInfo, includeStats bool) (*MetaEncoding, [][]float64) {
	return m.PredictMetaQ(t, includeStats, nil)
}

// PredictMetaQ is PredictMeta with an explicit per-request quantization
// preference: nil follows the process default (tensor.SetQuantize), non-nil
// forces the int8 path on or off for this forward only. The preference is
// honored only when the fast path is selected and the CPU supports the int8
// kernels (tensor.QuantizeAvailable); otherwise the fp64 path runs.
func (m *Model) PredictMetaQ(t *metafeat.TableInfo, includeStats bool, quantize *bool) (*MetaEncoding, [][]float64) {
	defer observeMetaForward(time.Now())
	in := m.enc.BuildMetaInput(t, includeStats)
	if m.evalFast() {
		// One warm workspace threads through the whole phase: encoder blocks,
		// span pooling and the classifier head.
		ws := tensor.AcquireWorkspace()
		if quantize != nil {
			ws.Quantize = *quantize
		}
		observeQuantized(ws, quantMetaForwardsTotal)
		menc := m.encodeMetadataWS(ws, in)
		probs := Sigmoid(m.metaLogitsWS(ws, menc))
		tensor.ReleaseWorkspace(ws)
		return menc, probs
	}
	menc := m.EncodeMetadata(in)
	return menc, Sigmoid(m.MetaLogits(menc))
}

// PredictContent is the Phase-2 inference path: given a (possibly cached)
// metadata encoding and scanned content for the selected columns, return
// their type probabilities.
func (m *Model) PredictContent(menc *MetaEncoding, t *metafeat.TableInfo, cols []int, n int) [][]float64 {
	in := m.enc.BuildContentInput(t, cols, n)
	if m.evalFast() && tensor.NoGrad(menc.Layers...) {
		ws := tensor.AcquireWorkspace()
		content := m.encodeContentWS(ws, menc, in)
		x := ws.Matrix(len(in.Columns), m.ContCls.Hidden.In())
		m.contentLogitsWS(ws, x, 0, menc, in, content, 0)
		probs := Sigmoid(m.ContCls.ForwardWS(ws, x, content, menc.Final()))
		tensor.ReleaseWorkspace(ws)
		return probs
	}
	content := m.EncodeContent(menc, in)
	return Sigmoid(m.ContentLogits(menc, in, content))
}

// ExtendTypes grows both classifier heads to cover newly registered
// semantic types (§8 future work). Existing class weights are preserved;
// fine-tuning on examples of the new types is the caller's responsibility.
func (m *Model) ExtendTypes(names []string, seed int64) {
	m.Types.Extend(names)
	if m.Types.Len() <= m.MetaCls.Classes() {
		return // every name was already known
	}
	rng := rand.New(rand.NewSource(seed))
	m.MetaCls.ExtendClasses(m.Types.Len(), rng)
	m.ContCls.ExtendClasses(m.Types.Len(), rng)
	// The classifier heads changed shape in place: redraw the generation so
	// memoized predictions (now the wrong width) age out.
	m.invalidatePacks()
}
