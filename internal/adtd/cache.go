package adtd

import (
	"container/list"
	"sync"
)

// LatentCache stores metadata-tower latent representations per table chunk
// so that Phase 2 can reuse them instead of re-running the metadata tower
// (§4.2.2). It is a bounded LRU keyed by (table, chunk) and safe for
// concurrent use by the pipelined executor.
type LatentCache struct {
	mu       sync.Mutex
	capacity int
	items    map[string]*list.Element
	order    *list.List // front = most recently used

	hits, misses  int
	evictions     int
	skippedCopies int
}

// CacheStats is a snapshot of the cache counters. SkippedCopies counts Puts
// that found the key already holding an equal encoding and skipped the deep
// copy; Evictions counts entries dropped by the LRU capacity bound.
type CacheStats struct {
	Hits          int
	Misses        int
	Evictions     int
	SkippedCopies int
}

type cacheEntry struct {
	key string
	enc *MetaEncoding
}

// NewLatentCache creates a cache holding at most capacity encodings;
// capacity ≤ 0 disables caching entirely (the "Taste w/o caching" variant).
func NewLatentCache(capacity int) *LatentCache {
	return &LatentCache{
		capacity: capacity,
		items:    make(map[string]*list.Element),
		order:    list.New(),
	}
}

// Put stores a deep copy of the encoding, detached from any autograd graph.
// Copying (rather than aliasing) lets the producer hand its graph back to
// the tensor arena with Release without corrupting cached entries.
func (c *LatentCache) Put(key string, enc *MetaEncoding) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Re-putting the same latents for a key is the common steady-state
		// pattern (every Phase-1 pass over an unchanged chunk recomputes the
		// same encoding); when the stored copy is already equal, refreshing
		// recency is enough and the deep copy is skipped.
		if encodingsEqual(el.Value.(*cacheEntry).enc, enc) {
			c.skippedCopies++
			c.order.MoveToFront(el)
			return
		}
		el.Value.(*cacheEntry).enc = enc.CloneDetach()
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, enc: enc.CloneDetach()})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// encodingsEqual reports whether two encodings hold identical latents
// (same layer count, shapes and bytes). NaNs compare unequal, which only
// means a redundant copy, never a wrong skip.
func encodingsEqual(a, b *MetaEncoding) bool {
	if len(a.Layers) != len(b.Layers) {
		return false
	}
	for i, la := range a.Layers {
		lb := b.Layers[i]
		if la.Rows != lb.Rows || la.Cols != lb.Cols {
			return false
		}
		for j, v := range la.Data {
			if v != lb.Data[j] {
				return false
			}
		}
	}
	return true
}

// Get returns the cached encoding, or nil on miss.
func (c *LatentCache) Get(key string) *MetaEncoding {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).enc
}

// Delete evicts one key.
func (c *LatentCache) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.Remove(el)
		delete(c.items, key)
	}
}

// Stats returns a snapshot of the cache counters.
func (c *LatentCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		SkippedCopies: c.skippedCopies,
	}
}

// Len returns the number of cached encodings.
func (c *LatentCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
