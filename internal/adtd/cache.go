package adtd

import (
	"container/list"
	"sync"
)

// LatentCache stores metadata-tower latent representations per table chunk
// so that Phase 2 can reuse them instead of re-running the metadata tower
// (§4.2.2). It is a bounded LRU keyed by (table, chunk) and safe for
// concurrent use by the pipelined executor.
type LatentCache struct {
	mu       sync.Mutex
	capacity int
	items    map[string]*list.Element
	order    *list.List // front = most recently used

	hits, misses int
}

type cacheEntry struct {
	key string
	enc *MetaEncoding
}

// NewLatentCache creates a cache holding at most capacity encodings;
// capacity ≤ 0 disables caching entirely (the "Taste w/o caching" variant).
func NewLatentCache(capacity int) *LatentCache {
	return &LatentCache{
		capacity: capacity,
		items:    make(map[string]*list.Element),
		order:    list.New(),
	}
}

// Put stores a deep copy of the encoding, detached from any autograd graph.
// Copying (rather than aliasing) lets the producer hand its graph back to
// the tensor arena with Release without corrupting cached entries.
func (c *LatentCache) Put(key string, enc *MetaEncoding) {
	if c.capacity <= 0 {
		return
	}
	clone := enc.CloneDetach()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).enc = clone
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, enc: clone})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Get returns the cached encoding, or nil on miss.
func (c *LatentCache) Get(key string) *MetaEncoding {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).enc
}

// Delete evicts one key.
func (c *LatentCache) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.Remove(el)
		delete(c.items, key)
	}
}

// Stats returns the hit/miss counters.
func (c *LatentCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached encodings.
func (c *LatentCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
