package adtd

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/corpus"
	"repro/internal/metafeat"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
	"repro/internal/train"
)

// PretrainConfig controls Masked Language Model pre-training over a
// serialized table corpus (§4.2.1). The paper additionally uses Masked
// Entity Recovery, which requires the entity links of the real WikiTable
// dump; this reproduction uses MLM only (see DESIGN.md §1).
type PretrainConfig struct {
	// Steps is the number of MLM micro-batches (one table chunk per step).
	Steps int
	// Workers is the number of data-parallel gradient workers (≤0 → 1).
	Workers int
	// GradAccum accumulates this many steps per worker into each optimizer
	// step (≤0 → 1).
	GradAccum int
	// LR is the Adam learning rate.
	LR float64
	// MaskProb is the fraction of tokens replaced by [MASK].
	MaskProb float64
	// MaxLen truncates pre-training sequences.
	MaxLen int
	// Seed drives masking and table selection. Both are keyed by step index
	// (train.ItemRNG), so a step masks the same tokens no matter which
	// worker runs it.
	Seed int64
	// Log, when non-nil, receives periodic loss lines.
	Log io.Writer
}

// DefaultPretrainConfig returns the repro-scale pre-training configuration.
func DefaultPretrainConfig() PretrainConfig {
	return PretrainConfig{Steps: 300, LR: 1e-3, MaskProb: 0.15, MaxLen: 96, Seed: 1}
}

// Pretrain runs MLM over the given unlabeled tables. Each step serializes
// one table (metadata plus a few cell values), masks a fraction of tokens,
// and trains the shared encoder plus MLM head to recover them. It returns
// the mean MLM loss over the run (steps too short to mask are skipped).
func Pretrain(m *Model, tables []*corpus.Table, cfg PretrainConfig) (float64, error) {
	if len(tables) == 0 {
		return 0, fmt.Errorf("adtd: no pre-training tables")
	}
	if cfg.Steps <= 0 {
		return 0, fmt.Errorf("adtd: Steps must be positive")
	}
	m.SetTrain()
	defer m.SetEval()
	maskID := m.Tok.MustID(tokenizer.MASK)

	spec := train.Spec{
		Params: m.Params(),
		Items:  cfg.Steps,
		NewWorker: func(w int) (train.Worker, error) {
			mm := m
			if w > 0 {
				var err error
				if mm, err = m.trainingReplica(); err != nil {
					return train.Worker{}, err
				}
			}
			return train.Worker{
				Params: mm.Params(),
				Step: func(items []int, rng *rand.Rand) *tensor.Tensor {
					return mm.mlmStep(tables, cfg, rng, maskID)
				},
			}, nil
		},
	}
	return train.Run(spec, train.Config{
		Epochs:    1,
		Workers:   cfg.Workers,
		GradAccum: cfg.GradAccum,
		LR:        cfg.LR,
		ClipNorm:  1,
		Seed:      cfg.Seed,
		Log:       cfg.Log,
		LogPrefix: "adtd pretrain",
		LogEvery:  100,
	})
}

// mlmStep builds the MLM loss for one pre-training step: pick a table,
// serialize it, mask a fraction of tokens, and predict them back. Returns
// nil when the serialized table is too short to mask meaningfully.
func (m *Model) mlmStep(tables []*corpus.Table, cfg PretrainConfig, rng *rand.Rand, maskID int) *tensor.Tensor {
	t := tables[rng.Intn(len(tables))]
	ids, segs := m.serializeForMLM(t, cfg.MaxLen)
	if len(ids) < 4 {
		return nil
	}
	masked := append([]int(nil), ids...)
	targets := make([]int, len(ids))
	anyMasked := false
	for i := range targets {
		targets[i] = -1
		if rng.Float64() < cfg.MaskProb {
			targets[i] = ids[i]
			masked[i] = maskID
			anyMasked = true
		}
	}
	if !anyMasked {
		i := rng.Intn(len(ids))
		targets[i] = ids[i]
		masked[i] = maskID
	}
	x := m.embed(masked, segs)
	for _, b := range m.Blocks {
		x = b.SelfForward(x, nil)
	}
	return tensor.CrossEntropyRows(m.MLMHead.Forward(x), targets)
}

// serializeForMLM flattens a table into one token stream: table metadata,
// column metadata, then one sample cell per column.
func (m *Model) serializeForMLM(t *corpus.Table, maxLen int) (ids, segs []int) {
	info := metafeat.FromCorpusTable(t, false, 0)
	min := m.enc.BuildMetaInput(info, false)
	ids = append(ids, min.IDs...)
	segs = append(segs, min.Segments...)
	for _, c := range t.Columns {
		for _, v := range c.Values {
			if v == "" {
				continue
			}
			cell := m.Tok.Encode(v)
			if len(cell) > m.Cfg.CellTokens {
				cell = cell[:m.Cfg.CellTokens]
			}
			ids = append(ids, cell...)
			for range cell {
				segs = append(segs, 2)
			}
			break
		}
	}
	if len(ids) > maxLen {
		ids, segs = ids[:maxLen], segs[:maxLen]
	}
	return ids, segs
}

// BuildVocabulary constructs a tokenizer vocabulary from a training corpus:
// all metadata text, a sample of cell values, the length-bucket tokens, and
// the semantic type names (useful for downstream tooling). maxTerms caps
// whole-word entries.
func BuildVocabulary(tables []*corpus.Table, typeNames []string, maxTerms int) *tokenizer.Tokenizer {
	b := tokenizer.NewBuilder()
	for _, tok := range LengthBucketTokens() {
		// Force length buckets above any frequency threshold.
		for i := 0; i < 100; i++ {
			b.Add(tok)
		}
	}
	for _, n := range typeNames {
		b.Add(strings.ReplaceAll(n, "_", " "))
	}
	for _, t := range tables {
		b.Add(t.Name)
		b.Add(t.Comment)
		for _, c := range t.Columns {
			b.Add(c.Name)
			b.Add(c.Comment)
			b.Add(c.SQLType)
			// Sample a handful of values per column for subword coverage.
			for i, v := range c.Values {
				if i >= 5 {
					break
				}
				b.Add(v)
			}
		}
	}
	return b.Build(maxTerms, 2)
}
