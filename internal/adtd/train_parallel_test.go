package adtd

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
	"repro/internal/train"
)

// twinModels builds two bit-identical tiny models over the same dataset.
func twinModels(t *testing.T) (*Model, *Model, *corpus.Dataset) {
	t.Helper()
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(8), 1)
	tok := BuildVocabulary(ds.Train, ds.Registry.Names(), 2000)
	types := NewTypeSpace(ds.Registry.Names())
	cfg := ReproScale()
	cfg.Layers, cfg.Hidden, cfg.Heads, cfg.Intermediate = 2, 32, 2, 48
	cfg.MetaClassifierHidden, cfg.ContentClassifierHidden = 32, 32
	a, err := New(cfg, tok, types, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, tok, types, 7)
	if err != nil {
		t.Fatal(err)
	}
	return a, b, ds
}

func requireSameParams(t *testing.T, a, b *Model, what string) {
	t.Helper()
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		for j := range ap[i].Data {
			if ap[i].Data[j] != bp[i].Data[j] {
				t.Fatalf("%s: param %d elem %d differs: %v vs %v", what, i, j, ap[i].Data[j], bp[i].Data[j])
			}
		}
	}
}

func parallelTrainConfig() TrainConfig {
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	cfg.Cells = 4
	cfg.ContentColumnsPerChunk = 2 // force rng-driven column sampling
	cfg.FinalLR = 2e-4
	cfg.WeightDecay = 1e-4
	cfg.Seed = 5
	return cfg
}

// TestFineTuneWorkers1BitExactVsSerial pins the trainer's serial-equivalence
// contract: Workers=1 must replay exactly the classic loop (zero → loss →
// backward → step per chunk) under the order-independent RNG scheme.
func TestFineTuneWorkers1BitExactVsSerial(t *testing.T) {
	serial, trained, ds := twinModels(t)
	cfg := parallelTrainConfig()

	// Test-local serial reference.
	chunks := buildTrainChunks(ds.Train, cfg.WithStats, cfg.SplitThreshold)
	if len(chunks) < 2 {
		t.Fatalf("need ≥2 chunks, got %d", len(chunks))
	}
	serial.SetTrain()
	opt := tensor.NewAdam(serial.Params(), cfg.LR)
	opt.ClipNorm = 1
	opt.WeightDecay = cfg.WeightDecay
	refLoss := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		opt.LR = train.EpochLR(cfg.LR, cfg.FinalLR, epoch, cfg.Epochs)
		total := 0.0
		for _, item := range train.EpochPerm(cfg.Seed, epoch, len(chunks)) {
			ch := chunks[item]
			opt.ZeroGrads()
			loss := serial.trainStep(ch.info, ch.labels, cfg, train.ItemRNG(cfg.Seed, epoch, item))
			loss.Backward()
			opt.Step()
			total += loss.Item()
			tensor.ReleaseGraph(loss)
		}
		refLoss = total / float64(len(chunks))
	}
	serial.SetEval()

	cfg.Workers = 1
	gotLoss, err := FineTune(trained, ds.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gotLoss != refLoss {
		t.Fatalf("final-epoch loss %v vs serial %v", gotLoss, refLoss)
	}
	requireSameParams(t, trained, serial, "FineTune workers=1 vs serial")
}

// TestFineTuneOrderInvariance is the satellite-1 regression: per-chunk
// column sampling is keyed by chunk identity, so the loss of each chunk must
// not depend on the order chunks are processed in.
func TestFineTuneOrderInvariance(t *testing.T) {
	m, _, ds := twinModels(t)
	cfg := parallelTrainConfig()
	chunks := buildTrainChunks(ds.Train, cfg.WithStats, cfg.SplitThreshold)
	m.SetTrain()
	defer m.SetEval()

	lossAt := func(item int) float64 {
		ch := chunks[item]
		loss := m.trainStep(ch.info, ch.labels, cfg, train.ItemRNG(cfg.Seed, 0, item))
		v := loss.Item()
		tensor.ReleaseGraph(loss)
		return v
	}
	forward := make([]float64, len(chunks))
	for i := range chunks {
		forward[i] = lossAt(i)
	}
	for i := len(chunks) - 1; i >= 0; i-- {
		if got := lossAt(i); got != forward[i] {
			t.Fatalf("chunk %d loss depends on processing order: %v vs %v", i, got, forward[i])
		}
	}
}

// TestFineTuneMultiWorkerDeterministic runs a multi-worker fine-tune twice
// (also exercised under -race) and requires identical final parameters.
func TestFineTuneMultiWorkerDeterministic(t *testing.T) {
	a, b, ds := twinModels(t)
	cfg := parallelTrainConfig()
	cfg.Epochs = 1
	cfg.Workers = 3
	cfg.GradAccum = 2
	lossA, err := FineTune(a, ds.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lossB, err := FineTune(b, ds.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lossA != lossB || math.IsNaN(lossA) {
		t.Fatalf("multi-worker losses differ or NaN: %v vs %v", lossA, lossB)
	}
	requireSameParams(t, a, b, "FineTune identical (seed,workers) runs")
}

// TestPretrainWorkers1BitExactVsSerial is the same contract for the MLM
// pre-training loop (Steps items, no shuffling, nil-loss steps skipped).
func TestPretrainWorkers1BitExactVsSerial(t *testing.T) {
	serial, trained, ds := twinModels(t)
	cfg := DefaultPretrainConfig()
	cfg.Steps = 24
	cfg.MaxLen = 48
	cfg.Seed = 3

	serial.SetTrain()
	maskID := serial.Tok.MustID(tokenizer.MASK)
	opt := tensor.NewAdam(serial.Params(), cfg.LR)
	opt.ClipNorm = 1
	for step := 0; step < cfg.Steps; step++ {
		loss := serial.mlmStep(ds.Train, cfg, train.ItemRNG(cfg.Seed, 0, step), maskID)
		if loss == nil {
			continue
		}
		opt.ZeroGrads()
		loss.Backward()
		opt.Step()
		tensor.ReleaseGraph(loss)
	}
	serial.SetEval()

	cfg.Workers = 1
	if _, err := Pretrain(trained, ds.Train, cfg); err != nil {
		t.Fatal(err)
	}
	requireSameParams(t, trained, serial, "Pretrain workers=1 vs serial")
}

// TestPretrainMultiWorkerRuns smoke-tests a multi-worker MLM run (exercised
// under -race by make race).
func TestPretrainMultiWorkerRuns(t *testing.T) {
	m, _, ds := twinModels(t)
	cfg := DefaultPretrainConfig()
	cfg.Steps = 16
	cfg.MaxLen = 48
	cfg.Workers = 3
	loss, err := Pretrain(m, ds.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(loss) {
		t.Fatal("NaN loss")
	}
}
