// Model-level NoGrad fast path: fused embedding gather, workspace-threaded
// tower forwards, and fused span pooling feeding the classifier heads. Every
// routine here is bit-exact against the composed path it replaces (the
// per-layer kernels guarantee it — see nn/fastpath.go and tensor/fused.go;
// the pooling and masks below reproduce the composed op order element for
// element), so PredictMeta/PredictContent/PredictContentBatch return
// identical bytes whether or not the fast path is selected. Enforced by
// fastpath_test.go.
package adtd

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// invalidatePacks drops every cached fast-path weight pack — the fp64
// attention projections and all int8 quantized packs (attention, FF and
// classifier/MLM linears) — and bumps the weight generation that versions
// memoized model outputs; called whenever parameters may have changed in
// place (grad-mode flips, checkpoint loads, feedback updates) so the next
// fast forward repacks fresh weights and stale cached predictions stop
// resolving.
func (m *Model) invalidatePacks() {
	for _, b := range m.Blocks {
		b.InvalidateFastPath()
	}
	m.MetaCls.InvalidateFastPath()
	m.ContCls.InvalidateFastPath()
	m.MLMHead.InvalidateFastPath()
	m.gen.Store(nextGeneration())
}

// evalFast reports whether the model-level fused inference path may be
// selected: the global toggle is on and the tensors the fused pooling and
// classifier stages touch are frozen. Per-block eligibility is re-checked by
// the nn layer (mixed freezing falls back per block).
func (m *Model) evalFast() bool {
	return tensor.FastPathEnabled() && tensor.NoGrad(
		m.TokEmbed.Table, m.PosEmbed.Table, m.SegEmbed.Table,
		m.MetaCls.Hidden.W, m.MetaCls.Hidden.B, m.MetaCls.Out.W, m.MetaCls.Out.B,
		m.ContCls.Hidden.W, m.ContCls.Hidden.B, m.ContCls.Out.W, m.ContCls.Out.B)
}

// embedFast is embed() in one pass: token+position+segment rows summed
// directly into an arena tensor, with no per-table gather tensors and no
// position-id slice. segments may be nil, in which case constSeg is used for
// every position (the content tower's constant segment 2). Each element is
// (tok + pos) + seg, the same left-associative order as Add(Add(...)).
func (m *Model) embedFast(ids, segments []int, constSeg int) *tensor.Tensor {
	h := m.Cfg.Hidden
	out := tensor.InferenceResult(len(ids), h, m.TokEmbed.Table, m.PosEmbed.Table, m.SegEmbed.Table)
	tok := m.TokEmbed.Table.Data
	pos := m.PosEmbed.Table.Data
	seg := m.SegEmbed.Table.Data
	maxPos := m.Cfg.MaxSeq - 1
	for i, id := range ids {
		p := i
		if p > maxPos {
			p = maxPos
		}
		s := constSeg
		if segments != nil {
			s = segments[i]
		}
		trow := tok[id*h : (id+1)*h]
		prow := pos[p*h : (p+1)*h]
		srow := seg[s*h : (s+1)*h]
		drow := out.Data[i*h : (i+1)*h]
		for j := range drow {
			drow[j] = trow[j] + prow[j] + srow[j]
		}
	}
	return out
}

// encodeMetadataWS is EncodeMetadata threading one warm workspace through
// every block.
func (m *Model) encodeMetadataWS(ws *tensor.Workspace, in *MetaInput) *MetaEncoding {
	enc := &MetaEncoding{In: in}
	x := m.embedFast(in.IDs, in.Segments, 0)
	enc.Layers = append(enc.Layers, x)
	for _, b := range m.Blocks {
		x = b.ForwardWS(ws, x, x, nil)
		enc.Layers = append(enc.Layers, x)
	}
	return enc
}

// metaLogitsWS assembles the per-column classifier features
// [meanpool(span) ⊕ nonTextual] in workspace scratch and runs the metadata
// head fused. The returned logits are arena-backed with the final latents as
// parent, so they survive workspace release.
func (m *Model) metaLogitsWS(ws *tensor.Workspace, enc *MetaEncoding) *tensor.Tensor {
	h := m.Cfg.Hidden
	final := enc.Final()
	width := m.MetaCls.Hidden.In()
	x := ws.Matrix(len(enc.In.ColSpans), width)
	for i, sp := range enc.In.ColSpans {
		row := x.Data[i*width : (i+1)*width]
		tensor.MeanPoolRowsInto(row[:h], final.Data, h, sp[0], sp[1])
		copy(row[h:], enc.In.NonTextual[i])
	}
	return m.MetaCls.ForwardWS(ws, x, final)
}

// encodeContentWS is EncodeContent threading one workspace: fused embedding,
// workspace-assembled [metadata ⊕ content] keys/values per layer, and masks
// living in scratch instead of the heap.
func (m *Model) encodeContentWS(ws *tensor.Workspace, menc *MetaEncoding, in *ContentInput) *tensor.Tensor {
	if len(menc.Layers) != m.Cfg.Layers+1 {
		panic(fmt.Sprintf("adtd: metadata encoding has %d layers, model wants %d", len(menc.Layers)-1, m.Cfg.Layers))
	}
	content := m.embedFast(in.IDs, nil, 2)
	if m.Cfg.SymmetricContent {
		mask := batchSymmetricMaskWS(ws, []*ContentInput{in})
		for _, b := range m.Blocks {
			content = b.ForwardWS(ws, content, content, mask)
		}
		return content
	}
	mask := batchContentMaskWS(ws, []int{menc.In.Len()}, []*ContentInput{in})
	parts := make([]*tensor.Tensor, 2)
	for i, b := range m.Blocks {
		parts[0], parts[1] = menc.Layers[i], content
		content = b.ForwardKVConcatWS(ws, content, parts, mask)
	}
	return content
}

// contentLogitsWS assembles the content head's features
// [meanpool(content span) ⊕ meanpool(metadata span) ⊕ nonTextual] in scratch
// and runs the classifier fused. contentOff shifts the content spans, which
// is how the batched path pools one chunk out of a concatenated batch.
func (m *Model) contentLogitsWS(ws *tensor.Workspace, x *tensor.Tensor, rowBase int, menc *MetaEncoding, in *ContentInput, content *tensor.Tensor, contentOff int) {
	h := m.Cfg.Hidden
	width := x.Cols
	final := menc.Final()
	for slot, ci := range in.Columns {
		row := x.Data[(rowBase+slot)*width : (rowBase+slot+1)*width]
		sp := in.ColSpans[slot]
		tensor.MeanPoolRowsInto(row[:h], content.Data, h, contentOff+sp[0], contentOff+sp[1])
		msp := menc.In.ColSpans[ci]
		tensor.MeanPoolRowsInto(row[h:2*h], final.Data, h, msp[0], msp[1])
		copy(row[2*h:], menc.In.NonTextual[ci])
	}
}

// predictContentBatchFast is the fused PredictContentBatch: one workspace
// for the whole batch, scratch-resident masks and classifier features, and
// the same release contract as the composed path (fresh metadata encodings
// reachable from the logits' parents are recycled; cached graph-free entries
// are leaves and survive). quantize, when non-nil, overrides the process-wide
// quantization default for this batch.
func (m *Model) predictContentBatchFast(reqs []ContentRequest, n int, quantize *bool) [][][]float64 {
	ws := tensor.AcquireWorkspace()
	if quantize != nil {
		ws.Quantize = *quantize
	}
	observeQuantized(ws, quantContentForwardsTotal)
	h := m.Cfg.Hidden

	cins := make([]*ContentInput, len(reqs))
	embeds := make([]*tensor.Tensor, len(reqs))
	total := 0
	for r, req := range reqs {
		cin := m.enc.BuildContentInput(req.Table, req.Cols, n)
		cins[r] = cin
		embeds[r] = m.embedFast(cin.IDs, nil, 2)
		total += cin.Len()
	}
	content := embeds[0]
	if len(embeds) > 1 {
		// ConcatRows without the zeroed allocation; the embeds stay parents
		// so the final release reaches them.
		content = tensor.InferenceResult(total, h, embeds...)
		off := 0
		for _, e := range embeds {
			copy(content.Data[off:off+len(e.Data)], e.Data)
			off += len(e.Data)
		}
	}

	if m.Cfg.SymmetricContent {
		mask := batchSymmetricMaskWS(ws, cins)
		for _, b := range m.Blocks {
			content = b.ForwardWS(ws, content, content, mask)
		}
	} else {
		metaLens := make([]int, len(reqs))
		for r, req := range reqs {
			metaLens[r] = req.Menc.In.Len()
		}
		mask := batchContentMaskWS(ws, metaLens, cins)
		parts := make([]*tensor.Tensor, len(reqs)+1)
		for li, b := range m.Blocks {
			for r, req := range reqs {
				parts[r] = req.Menc.Layers[li]
			}
			parts[len(reqs)] = content
			content = b.ForwardKVConcatWS(ws, content, parts, mask)
		}
	}

	totalCols := 0
	for _, cin := range cins {
		totalCols += len(cin.Columns)
	}
	x := ws.Matrix(totalCols, m.ContCls.Hidden.In())
	rowBase, off := 0, 0
	for r, req := range reqs {
		m.contentLogitsWS(ws, x, rowBase, req.Menc, cins[r], content, off)
		rowBase += len(cins[r].Columns)
		off += cins[r].Len()
	}
	parents := make([]*tensor.Tensor, 0, len(reqs)+1)
	parents = append(parents, content)
	for _, req := range reqs {
		parents = append(parents, req.Menc.Final())
	}
	logits := m.ContCls.ForwardWS(ws, x, parents...)
	all := Sigmoid(logits)
	tensor.ReleaseGraph(logits)
	tensor.ReleaseWorkspace(ws)

	out := make([][][]float64, len(reqs))
	row := 0
	for r := range reqs {
		nc := len(cins[r].Columns)
		out[r] = all[row : row+nc]
		row += nc
	}
	return out
}

// batchContentMaskWS is batchContentMask built in workspace scratch: every
// element is written exactly once (allowed positions 0, everything else
// -Inf), so the uncleared buffer needs no separate fill pass. Returns nil in
// the same single-single-column case as the heap builder.
func batchContentMaskWS(ws *tensor.Workspace, metaLens []int, cins []*ContentInput) *tensor.Tensor {
	totalMeta, totalContent := 0, 0
	for _, l := range metaLens {
		totalMeta += l
	}
	for _, cin := range cins {
		totalContent += cin.Len()
	}
	if len(cins) == 1 && singleColumn(cins[0]) {
		return nil
	}
	mask := ws.Matrix(totalContent, totalMeta+totalContent)
	neg := math.Inf(-1)
	metaOff, contOff := 0, 0
	for r, cin := range cins {
		lc := cin.Len()
		for i := 0; i < lc; i++ {
			row := mask.Row(contOff + i)
			for j := 0; j < metaOff; j++ {
				row[j] = neg
			}
			for j := metaOff; j < metaOff+metaLens[r]; j++ {
				row[j] = 0
			}
			for j := metaOff + metaLens[r]; j < totalMeta; j++ {
				row[j] = neg
			}
			crow := row[totalMeta:]
			for j := 0; j < contOff; j++ {
				crow[j] = neg
			}
			for j := 0; j < lc; j++ {
				if cin.ColOf[j] == cin.ColOf[i] {
					crow[contOff+j] = 0
				} else {
					crow[contOff+j] = neg
				}
			}
			for j := contOff + lc; j < totalContent; j++ {
				crow[j] = neg
			}
		}
		metaOff += metaLens[r]
		contOff += lc
	}
	return mask
}

// batchSymmetricMaskWS is the scratch-resident batchSymmetricMask.
func batchSymmetricMaskWS(ws *tensor.Workspace, cins []*ContentInput) *tensor.Tensor {
	total := 0
	for _, cin := range cins {
		total += cin.Len()
	}
	if len(cins) == 1 && singleColumn(cins[0]) {
		return nil
	}
	mask := ws.Matrix(total, total)
	neg := math.Inf(-1)
	off := 0
	for _, cin := range cins {
		lc := cin.Len()
		for i := 0; i < lc; i++ {
			row := mask.Row(off + i)
			for j := 0; j < off; j++ {
				row[j] = neg
			}
			for j := 0; j < lc; j++ {
				if cin.ColOf[j] == cin.ColOf[i] {
					row[off+j] = 0
				} else {
					row[off+j] = neg
				}
			}
			for j := off + lc; j < total; j++ {
				row[j] = neg
			}
		}
		off += lc
	}
	return mask
}

// singleColumn reports whether every content position belongs to one column,
// the case where no attention mask is needed.
func singleColumn(cin *ContentInput) bool {
	for _, c := range cin.ColOf {
		if c != cin.ColOf[0] {
			return false
		}
	}
	return true
}
