package fleet

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
)

func loadTargets() map[string][]string {
	return map[string][]string{
		"tenant00": {"t0", "t1", "t2"},
		"tenant01": {"t3", "t4"},
		"tenant02": nil, // whole-database requests
	}
}

// TestPlanLoadDeterministic: the request sequence is a pure function of
// (seed, config) — same seed ⇒ identical plan, different seed ⇒ different.
func TestPlanLoadDeterministic(t *testing.T) {
	cfg := LoadConfig{Mode: "open", Rate: 100, Requests: 200, Seed: 42, Targets: loadTargets()}
	p1 := planLoad(cfg)
	p2 := planLoad(cfg)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same seed produced different plans")
	}
	cfg.Seed = 43
	p3 := planLoad(cfg)
	if reflect.DeepEqual(p1, p3) {
		t.Fatal("different seeds produced identical plans")
	}
	sawTable, sawWholeDB := false, false
	for _, tt := range p1 {
		if tt.gap < 0 {
			t.Fatalf("negative inter-arrival gap %v", tt.gap)
		}
		if tt.table != "" {
			sawTable = true
		}
		if tt.database == "tenant02" && tt.table == "" {
			sawWholeDB = true
		}
	}
	if !sawTable || !sawWholeDB {
		t.Fatalf("plan lacks variety: table=%v wholeDB=%v", sawTable, sawWholeDB)
	}
}

// scriptedEndpoint answers /v1/detect with a per-request scripted status
// and a replica header cycling a..c, counting what it served.
func scriptedEndpoint(statuses []int) (*httptest.Server, *atomic.Int64) {
	var n atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/detect", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		i := n.Add(1) - 1
		status := statuses[int(i)%len(statuses)]
		w.Header().Set(ReplicaHeader, fmt.Sprintf("replica%02d", i%3))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		if status == http.StatusOK {
			degraded := i%5 == 0
			fmt.Fprintf(w, `{"database":"d","degraded":%v}`, degraded)
		} else {
			fmt.Fprint(w, `{"error":"scripted"}`)
		}
	})
	return httptest.NewServer(mux), &n
}

// TestRunLoadClosedCountsOutcomes: closed-loop run over a scripted endpoint
// classifies 200/200-degraded/429/503 correctly and builds the per-replica
// distribution from the header.
func TestRunLoadClosedCountsOutcomes(t *testing.T) {
	// 10-request cycle: 7×200 (of which i=0,5 degraded), 2×429, 1×503.
	statuses := []int{200, 200, 429, 200, 503, 200, 200, 429, 200, 200}
	srv, served := scriptedEndpoint(statuses)
	defer srv.Close()

	rep, err := RunLoad(srv.URL, LoadConfig{
		Mode: "closed", Concurrency: 1, // sequential keeps the script aligned
		Requests: 20, Seed: 7, Targets: loadTargets(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if served.Load() != 20 || rep.Requests != 20 {
		t.Fatalf("issued %d/%d", served.Load(), rep.Requests)
	}
	// Degraded: scripted i%5==0 among 200s → i=0,5,10,15 but 5 is a 200?
	// statuses[5]=200 yes; i counts served requests, degraded when i%5==0 →
	// i ∈ {0,5,10,15}, all of which got status 200 per the cycle.
	if rep.OK+rep.Degraded != 14 || rep.Degraded != 4 {
		t.Fatalf("ok=%d degraded=%d, want ok+degraded=14 with 4 degraded", rep.OK, rep.Degraded)
	}
	if rep.Shed != 4 || rep.Unavailable != 2 || rep.OtherErrors != 0 {
		t.Fatalf("shed=%d unavailable=%d other=%d", rep.Shed, rep.Unavailable, rep.OtherErrors)
	}
	var hits int64
	for _, n := range rep.PerReplica {
		hits += n
	}
	if hits != 14 {
		t.Fatalf("per-replica hits sum %d, want 14 (the 200s): %v", hits, rep.PerReplica)
	}
	if rep.P50Millis <= 0 || rep.P99Millis < rep.P50Millis {
		t.Fatalf("quantiles: p50=%v p99=%v", rep.P50Millis, rep.P99Millis)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput %v", rep.Throughput)
	}
}

// TestRunLoadOpenLoop: open-loop mode issues every planned request even
// when responses are slow-ish, and rejects invalid configs.
func TestRunLoadOpenLoop(t *testing.T) {
	srv, served := scriptedEndpoint([]int{200})
	defer srv.Close()
	rep, err := RunLoad(srv.URL, LoadConfig{
		Mode: "open", Rate: 2000, Requests: 50, Seed: 11, Targets: loadTargets(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if served.Load() != 50 || rep.OK+rep.Degraded != 50 {
		t.Fatalf("served=%d ok=%d degraded=%d", served.Load(), rep.OK, rep.Degraded)
	}

	for _, bad := range []LoadConfig{
		{Mode: "open", Requests: 5, Targets: loadTargets()},              // no rate
		{Mode: "warp", Requests: 5, Rate: 1, Targets: loadTargets()},     // unknown mode
		{Mode: "closed", Requests: 0, Targets: loadTargets()},            // no requests
		{Mode: "closed", Requests: 5, Targets: map[string][]string(nil)}, // no targets
	} {
		if _, err := RunLoad(srv.URL, bad); err == nil {
			t.Fatalf("config %+v accepted", bad)
		}
	}
}

// TestPlanLoadZipfDeterministicAndSkewed: the zipf distribution is a pure
// function of (seed, config) and concentrates traffic on the rank-0 target
// — the flattened catalogue's first (tenant, table) pair.
func TestPlanLoadZipfDeterministicAndSkewed(t *testing.T) {
	cfg := LoadConfig{
		Mode: "closed", Requests: 2000, Seed: 42,
		Targets: loadTargets(), Dist: "zipf", ZipfS: 1.2,
	}
	p1 := planLoad(cfg)
	p2 := planLoad(cfg)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same seed produced different zipf plans")
	}
	cfg.Seed = 43
	if reflect.DeepEqual(p1, planLoad(cfg)) {
		t.Fatal("different seeds produced identical zipf plans")
	}

	counts := make(map[string]int)
	for _, tt := range p1 {
		counts[tt.database+"/"+tt.table]++
	}
	// Rank 0 in the deterministic flat order (sorted tenants, tables in
	// catalogue order) is tenant00/t0 — the Zipf mode.
	hot := counts["tenant00/t0"]
	for key, n := range counts {
		if key != "tenant00/t0" && n >= hot {
			t.Fatalf("rank-0 target not the hottest: tenant00/t0=%d, %s=%d", hot, key, n)
		}
	}
	if hot < len(p1)/3 {
		t.Fatalf("zipf(s=1.2) mode drew only %d/%d requests — not skewed", hot, len(p1))
	}
	// Every catalogue entry is reachable, including the whole-database one.
	if counts["tenant02/"] == 0 {
		t.Fatal("whole-database target never drawn")
	}
}

// TestPlanLoadUniformSequencePreserved: the uniform path must keep its
// historical RNG draw order — "" and "uniform" are byte-identical, so
// existing recorded seeds (BENCH_7) keep reproducing the same workload.
func TestPlanLoadUniformSequencePreserved(t *testing.T) {
	base := LoadConfig{Mode: "closed", Requests: 300, Seed: 7, Targets: loadTargets()}
	named := base
	named.Dist = "uniform"
	if !reflect.DeepEqual(planLoad(base), planLoad(named)) {
		t.Fatal(`Dist:"uniform" diverged from the historical Dist:"" sequence`)
	}
	skewed := base
	skewed.Dist = "zipf"
	if reflect.DeepEqual(planLoad(base), planLoad(skewed)) {
		t.Fatal("zipf plan identical to uniform — skew not applied")
	}
}

// TestRunLoadRejectsUnknownDist: a typo'd distribution is a config error,
// not a silent fallback to uniform.
func TestRunLoadRejectsUnknownDist(t *testing.T) {
	srv, _ := scriptedEndpoint([]int{200})
	defer srv.Close()
	_, err := RunLoad(srv.URL, LoadConfig{
		Mode: "closed", Requests: 5, Seed: 1, Targets: loadTargets(), Dist: "warp",
	})
	if err == nil {
		t.Fatal(`Dist:"warp" accepted`)
	}
}

// TestRunLoadPerReplicaSchemaStable: every replica named in cfg.Replicas
// appears in the report's per-replica distribution — explicitly zero when
// it served nothing — so the per_replica JSON block has the same keys on
// every run against the same fleet.
func TestRunLoadPerReplicaSchemaStable(t *testing.T) {
	srv, _ := scriptedEndpoint([]int{200})
	defer srv.Close()
	replicas := []string{"replica00", "replica01", "replica02", "replica-idle"}
	rep, err := RunLoad(srv.URL, LoadConfig{
		Mode: "closed", Concurrency: 1, Requests: 9, Seed: 3,
		Targets: loadTargets(), Replicas: replicas,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range replicas {
		if _, ok := rep.PerReplica[name]; !ok {
			t.Fatalf("started replica %q missing from per-replica report: %v", name, rep.PerReplica)
		}
	}
	if rep.PerReplica["replica-idle"] != 0 {
		t.Fatalf("idle replica credited %d hits", rep.PerReplica["replica-idle"])
	}
	// The scripted endpoint cycles replica00..02 across the 9 200s.
	if rep.PerReplica["replica00"] != 3 || rep.PerReplica["replica01"] != 3 || rep.PerReplica["replica02"] != 3 {
		t.Fatalf("per-replica distribution: %v", rep.PerReplica)
	}
}

func TestQuantile(t *testing.T) {
	if q := quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.5, 5}, {0.95, 10}, {0.99, 10}, {0.1, 1}} {
		if got := quantile(vals, tc.q); got != tc.want {
			t.Fatalf("quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}
