package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
)

// TestHarnessEndToEnd boots a small real fleet (trained model, live
// sockets) and drives it with the closed-loop load generator: every
// request must complete, traffic must reach more than one replica, and the
// coordinator's /metrics must aggregate real replica series.
func TestHarnessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	h, err := StartLocal(HarnessConfig{
		Replicas: 2,
		Tables:   12,
		Tenants:  2,
		Seed:     7,
		Epochs:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	replicas := make([]string, 0, len(h.ReplicaURLs))
	for name := range h.ReplicaURLs {
		replicas = append(replicas, name)
	}
	sort.Strings(replicas)
	lcfg := LoadConfig{
		Mode:        "closed",
		Concurrency: 2,
		Requests:    12,
		Seed:        7,
		Targets:     h.TenantTables,
		Replicas:    replicas,
	}
	rep, err := RunLoad(h.CoordinatorURL, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK+rep.Degraded != 12 || rep.Shed != 0 || rep.Unavailable != 0 || rep.OtherErrors != 0 {
		t.Fatalf("load report: %+v", rep)
	}
	// The observed per-replica distribution must equal what the ring
	// predicts for the seeded plan — placement is deterministic end to end.
	want := make(map[string]int64)
	for _, tgt := range planLoad(lcfg) {
		key := tgt.database
		if tgt.table != "" {
			key += "/" + tgt.table
		}
		want[h.Coordinator.Ring().Owner(key)]++
	}
	for name, n := range want {
		if rep.PerReplica[name] != n {
			t.Fatalf("per-replica hits %v, ring predicts %v", rep.PerReplica, want)
		}
	}
	// Schema stability: every started replica must appear in the report,
	// even with zero hits.
	for _, name := range replicas {
		if _, ok := rep.PerReplica[name]; !ok {
			t.Fatalf("started replica %q absent from per-replica report: %v", name, rep.PerReplica)
		}
	}

	// The coordinator's /v1/stats must surface each replica's tiered-cache
	// block and a fleet-wide rollup with real traffic in it.
	sresp, err := http.Get(h.CoordinatorURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if len(stats.Caches) != len(replicas) {
		t.Fatalf("coordinator scraped %d cache blocks, want %d: %v", len(stats.Caches), len(replicas), stats.Caches)
	}
	for _, name := range replicas {
		if _, ok := stats.Caches[name]; !ok {
			t.Fatalf("replica %q missing from coordinator cache stats", name)
		}
	}
	// Each replica's serving-model block rides the same scrape: every
	// replica reports a live weight generation. The harness shares one
	// trained model across replicas, so the generations must agree — skew
	// here would mean a replica silently serves different weights.
	if len(stats.Models) != len(replicas) {
		t.Fatalf("coordinator scraped %d model blocks, want %d: %v", len(stats.Models), len(replicas), stats.Models)
	}
	gens := make(map[uint64]bool)
	for _, name := range replicas {
		mb, ok := stats.Models[name]
		if !ok {
			t.Fatalf("replica %q missing from coordinator model stats", name)
		}
		if mb.Generation == 0 {
			t.Fatalf("replica %q reports no weight generation: %+v", name, mb)
		}
		gens[mb.Generation] = true
	}
	if len(gens) != 1 {
		t.Fatalf("replicas sharing one model report skewed generations: %v", stats.Models)
	}
	if stats.CacheTotals == nil {
		t.Fatal("coordinator cache rollup absent")
	}
	if stats.CacheTotals.LatentHits+stats.CacheTotals.LatentMisses == 0 {
		t.Fatalf("no latent-cache traffic in fleet rollup: %+v", stats.CacheTotals)
	}
	if stats.CacheTotals.ResultHits+stats.CacheTotals.ResultMisses == 0 {
		t.Fatalf("no result-cache traffic in fleet rollup: %+v", stats.CacheTotals)
	}

	resp, err := http.Get(h.CoordinatorURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"taste_detect_requests_total", // aggregated from the replicas
		"taste_fleet_requests_total",  // the coordinator's own ledger
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("fleet /metrics missing %q:\n%.2000s", want, text)
		}
	}
}
