package fleet

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestHarnessEndToEnd boots a small real fleet (trained model, live
// sockets) and drives it with the closed-loop load generator: every
// request must complete, traffic must reach more than one replica, and the
// coordinator's /metrics must aggregate real replica series.
func TestHarnessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	h, err := StartLocal(HarnessConfig{
		Replicas: 2,
		Tables:   12,
		Tenants:  2,
		Seed:     7,
		Epochs:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	lcfg := LoadConfig{
		Mode:        "closed",
		Concurrency: 2,
		Requests:    12,
		Seed:        7,
		Targets:     h.TenantTables,
	}
	rep, err := RunLoad(h.CoordinatorURL, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK+rep.Degraded != 12 || rep.Shed != 0 || rep.Unavailable != 0 || rep.OtherErrors != 0 {
		t.Fatalf("load report: %+v", rep)
	}
	// The observed per-replica distribution must equal what the ring
	// predicts for the seeded plan — placement is deterministic end to end.
	want := make(map[string]int64)
	for _, tgt := range planLoad(lcfg) {
		key := tgt.database
		if tgt.table != "" {
			key += "/" + tgt.table
		}
		want[h.Coordinator.Ring().Owner(key)]++
	}
	for name, n := range want {
		if rep.PerReplica[name] != n {
			t.Fatalf("per-replica hits %v, ring predicts %v", rep.PerReplica, want)
		}
	}

	resp, err := http.Get(h.CoordinatorURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"taste_detect_requests_total", // aggregated from the replicas
		"taste_fleet_requests_total",  // the coordinator's own ledger
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("fleet /metrics missing %q:\n%.2000s", want, text)
		}
	}
}
