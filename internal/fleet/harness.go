package fleet

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/adtd"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/service"
	"repro/internal/simdb"
)

// HarnessConfig sizes an in-process fleet.
type HarnessConfig struct {
	// Replicas is the tasted replica count (0 = 3).
	Replicas int
	// Tables sizes the synthetic corpus (0 = 40).
	Tables int
	// Tenants is how many tenant databases the test split is sharded into
	// round-robin (0 = 8). Each replica registers every tenant — the ring,
	// not registration, decides placement.
	Tenants int
	// Seed drives corpus generation and model init (0 = 7).
	Seed int64
	// Epochs fine-tunes the shared model (0 = 1).
	Epochs int
	// Coordinator tunes the fleet coordinator; Pool.ProbeInterval defaults
	// to 200 ms when the whole struct is zero.
	Coordinator Config
	// DetectorOptions configures each replica's detector. Nil = the process
	// defaults with the result cache switched on at 16 MiB — a serving
	// fleet is exactly the deployment the memoization tier exists for, and
	// the harness's repeated loadgen traffic should exercise it.
	DetectorOptions *core.Options
}

// Harness is a fully wired local fleet: one trained model shared by
// Replicas in-process tasted services (each with its own detector and
// latent cache) behind a coordinator, everything on real loopback sockets.
// tastebench's load-generator mode, examples/fleet, and the smoke tests all
// drive fleets through this one constructor.
type Harness struct {
	Coordinator    *Coordinator
	CoordinatorURL string
	// ReplicaURLs maps replica name → base URL.
	ReplicaURLs map[string]string
	// Tenants lists the registered tenant database names.
	Tenants []string
	// TenantTables maps tenant → its table names (the load generator picks
	// single-table targets from it).
	TenantTables map[string][]string

	services []*service.Service
	servers  map[string]*http.Server
	coordSrv *http.Server
}

// StartLocal boots the fleet and blocks until every listener is accepting.
func StartLocal(cfg HarnessConfig) (*Harness, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.Tables <= 0 {
		cfg.Tables = 40
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.Coordinator.Pool.ProbeInterval == 0 {
		cfg.Coordinator.Pool = DefaultPoolConfig()
		cfg.Coordinator.Pool.ProbeInterval = 200 * time.Millisecond
	}
	if cfg.DetectorOptions == nil {
		opts := core.DefaultOptions()
		opts.ResultCacheBytes = 16 << 20
		cfg.DetectorOptions = &opts
	}

	// One model trained once; replicas share its (read-only at inference)
	// weights but own their detectors, caches, and accounting.
	ds := corpus.Generate(corpus.DefaultRegistry(), corpus.WikiTableProfile(cfg.Tables), cfg.Seed)
	tok := adtd.BuildVocabulary(ds.Train, ds.Registry.Names(), 4000)
	types := adtd.NewTypeSpace(ds.Registry.Names())
	model, err := adtd.New(adtd.ReproScale(), tok, types, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("fleet harness: model: %w", err)
	}
	tcfg := adtd.DefaultTrainConfig()
	tcfg.Epochs = cfg.Epochs
	if _, err := adtd.FineTune(model, ds.Train, tcfg); err != nil {
		return nil, fmt.Errorf("fleet harness: train: %w", err)
	}

	// Tenant databases: the test split sharded round-robin, one shared
	// simdb server per tenant (simdb is concurrency-safe; sharing keeps the
	// harness light).
	tenants := make([]string, cfg.Tenants)
	dbs := make(map[string]*simdb.Server, cfg.Tenants)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("tenant%02d", i)
	}
	for i, name := range tenants {
		srv := simdb.NewServer(simdb.NoLatency)
		var shard []*corpus.Table
		for j := i; j < len(ds.Test); j += cfg.Tenants {
			shard = append(shard, ds.Test[j])
		}
		srv.LoadTables(name, shard)
		dbs[name] = srv
	}

	h := &Harness{
		ReplicaURLs:  make(map[string]string, cfg.Replicas),
		Tenants:      tenants,
		TenantTables: make(map[string][]string, cfg.Tenants),
		servers:      make(map[string]*http.Server, cfg.Replicas),
	}
	for i, name := range tenants {
		for j := i; j < len(ds.Test); j += cfg.Tenants {
			h.TenantTables[name] = append(h.TenantTables[name], ds.Test[j].Name)
		}
	}
	fail := func(err error) (*Harness, error) {
		h.Close()
		return nil, err
	}

	for i := 0; i < cfg.Replicas; i++ {
		name := fmt.Sprintf("replica%02d", i)
		det, err := core.NewDetector(model, *cfg.DetectorOptions)
		if err != nil {
			return fail(fmt.Errorf("fleet harness: detector %s: %w", name, err))
		}
		svc := service.New(det)
		for tname, srv := range dbs {
			svc.RegisterTenant(tname, srv)
		}
		h.services = append(h.services, svc)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(fmt.Errorf("fleet harness: listen %s: %w", name, err))
		}
		hs := &http.Server{Handler: svc.Handler()}
		go hs.Serve(ln)
		h.servers[name] = hs
		h.ReplicaURLs[name] = "http://" + ln.Addr().String()
	}

	h.Coordinator = NewCoordinator(h.ReplicaURLs, cfg.Coordinator)
	h.Coordinator.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(fmt.Errorf("fleet harness: listen coordinator: %w", err))
	}
	h.coordSrv = &http.Server{Handler: h.Coordinator.Handler()}
	go h.coordSrv.Serve(ln)
	h.CoordinatorURL = "http://" + ln.Addr().String()
	return h, nil
}

// StopReplica tears down one replica's HTTP server (simulating a crash);
// the coordinator's health gating notices via failed requests/probes.
// Unknown names are a no-op.
func (h *Harness) StopReplica(name string) {
	if hs := h.servers[name]; hs != nil {
		_ = hs.Close()
		delete(h.servers, name)
	}
}

// Close tears down the coordinator and every replica.
func (h *Harness) Close() {
	if h.Coordinator != nil {
		h.Coordinator.Stop()
	}
	if h.coordSrv != nil {
		_ = h.coordSrv.Close()
	}
	for _, hs := range h.servers {
		_ = hs.Close()
	}
	for _, svc := range h.services {
		svc.Close()
	}
}
