package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/service"
)

// LoadConfig describes one load-generation run against a fleet (or a
// single tasted replica — any /v1/detect endpoint works).
type LoadConfig struct {
	// Mode selects the arrival process: "open" (seeded Poisson arrivals at
	// Rate req/s, latency does not throttle arrivals — the honest way to
	// observe shedding) or "closed" (Concurrency workers, zero think time —
	// each worker waits for its response before the next request).
	Mode string
	// Rate is the open-loop target arrival rate in requests/second.
	Rate float64
	// Concurrency is the closed-loop worker count.
	Concurrency int
	// Requests bounds the run: total requests issued.
	Requests int
	// Seed makes the workload reproducible: target selection and
	// inter-arrival gaps derive from it alone.
	Seed int64
	// Targets is the tenant → tables catalogue requests are drawn from
	// (seeded). Empty tables ⇒ whole-database requests.
	Targets map[string][]string
	// Dist selects the target-draw distribution: "" or "uniform" draws
	// tenant then table uniformly (the historical behaviour, RNG sequence
	// preserved exactly); "zipf" draws (tenant, table) pairs from a seeded
	// Zipf over the deterministically-sorted flattened catalogue — the
	// skewed access pattern cache-effectiveness runs need.
	Dist string
	// ZipfS is the Zipf skew exponent (must be > 1; 0 = default 1.2).
	ZipfS float64
	// DeadlineMillis, when positive, is stamped on every request.
	DeadlineMillis int64
	// Replicas, when set, pre-seeds the report's per-replica hit
	// distribution with an explicit zero for every started replica, so the
	// per_replica block is schema-stable across runs: a replica that served
	// nothing reports 0 instead of silently vanishing from the JSON.
	Replicas []string
	// Client issues requests; nil = default client, no timeout.
	Client *http.Client
}

// LoadReport is a load run's outcome. Counts are exact; latency quantiles
// are measured wall-clock (machine-dependent), while the request sequence
// itself is a pure function of Seed.
type LoadReport struct {
	Mode            string  `json:"mode"`
	Seed            int64   `json:"seed"`
	Requests        int     `json:"requests"`
	OK              int     `json:"ok"`
	Degraded        int     `json:"degraded"`
	Shed            int     `json:"shed"`         // 429: admission control
	Unavailable     int     `json:"unavailable"`  // 503: no healthy replica
	OtherErrors     int     `json:"other_errors"` // transport errors, unexpected statuses
	DurationSeconds float64 `json:"duration_seconds"`
	Throughput      float64 `json:"throughput_rps"` // completed (non-shed) responses per second
	P50Millis       float64 `json:"p50_ms"`
	P95Millis       float64 `json:"p95_ms"`
	P99Millis       float64 `json:"p99_ms"`
	// PerReplica is the routed-hit distribution from the coordinator's
	// X-Taste-Replica header (empty when targeting a bare replica).
	PerReplica map[string]int64 `json:"per_replica,omitempty"`
}

// loadTarget is one pre-drawn request target.
type loadTarget struct {
	database string
	table    string // "" = whole database
	gap      time.Duration
}

// planLoad draws the whole request sequence up front from one seeded rng,
// so a (seed, config) pair always produces the identical workload
// regardless of scheduling. The uniform path's draw order is load-bearing:
// existing seeds must keep producing byte-identical plans.
func planLoad(cfg LoadConfig) []loadTarget {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tenants := make([]string, 0, len(cfg.Targets))
	for t := range cfg.Targets {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)

	var flat []loadTarget
	var zipf *rand.Zipf
	if cfg.Dist == "zipf" {
		// Flatten the catalogue in deterministic order so rank i is the
		// same (tenant, table) for every run of a seed. Rank 0 — the Zipf
		// mode — is the hottest key; with single-table targets that is one
		// route key, i.e. one replica's cache gets the bulk of the traffic.
		for _, tenant := range tenants {
			tables := cfg.Targets[tenant]
			if len(tables) == 0 {
				flat = append(flat, loadTarget{database: tenant})
				continue
			}
			for _, table := range tables {
				flat = append(flat, loadTarget{database: tenant, table: table})
			}
		}
		s := cfg.ZipfS
		if s <= 1 {
			s = 1.2
		}
		zipf = rand.NewZipf(rng, s, 1, uint64(len(flat)-1))
	}

	plan := make([]loadTarget, cfg.Requests)
	for i := range plan {
		var t loadTarget
		if zipf != nil {
			t = flat[zipf.Uint64()]
		} else {
			tenant := tenants[rng.Intn(len(tenants))]
			tables := cfg.Targets[tenant]
			t = loadTarget{database: tenant}
			if len(tables) > 0 {
				t.table = tables[rng.Intn(len(tables))]
			}
		}
		if cfg.Mode == "open" && cfg.Rate > 0 {
			// Exponential inter-arrival ⇒ Poisson process at Rate.
			t.gap = time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		}
		plan[i] = t
	}
	return plan
}

type loadResult struct {
	status  int
	replica string
	latency time.Duration
	// degraded is the response body's "degraded" flag (200s only).
	degraded bool
	err      error
}

// RunLoad drives baseURL/v1/detect with the configured workload and
// reports outcome counts, latency quantiles, throughput, and the
// per-replica hit distribution.
func RunLoad(baseURL string, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: Requests must be > 0")
	}
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	switch cfg.Mode {
	case "open":
		if cfg.Rate <= 0 {
			return nil, fmt.Errorf("loadgen: open-loop needs Rate > 0")
		}
	case "closed":
		if cfg.Concurrency <= 0 {
			cfg.Concurrency = 4
		}
	default:
		return nil, fmt.Errorf("loadgen: unknown mode %q (open|closed)", cfg.Mode)
	}
	switch cfg.Dist {
	case "", "uniform", "zipf":
	default:
		return nil, fmt.Errorf("loadgen: unknown dist %q (uniform|zipf)", cfg.Dist)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}

	plan := planLoad(cfg)
	results := make([]loadResult, len(plan))
	issue := func(i int) {
		t := plan[i]
		req := service.DetectRequest{Database: t.database, DeadlineMillis: cfg.DeadlineMillis}
		if t.table != "" {
			req.Tables = []string{t.table}
		}
		body, _ := json.Marshal(&req)
		start := time.Now()
		resp, err := client.Post(baseURL+"/v1/detect", "application/json", bytes.NewReader(body))
		if err != nil {
			results[i] = loadResult{err: err, latency: time.Since(start)}
			return
		}
		var parsed struct {
			Degraded bool `json:"degraded"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&parsed)
		resp.Body.Close()
		results[i] = loadResult{
			status:   resp.StatusCode,
			replica:  resp.Header.Get(ReplicaHeader),
			latency:  time.Since(start),
			degraded: parsed.Degraded,
		}
	}

	start := time.Now()
	switch cfg.Mode {
	case "open":
		var wg sync.WaitGroup
		for i := range plan {
			time.Sleep(plan[i].gap)
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				issue(i)
			}(i)
		}
		wg.Wait()
	case "closed":
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					issue(i)
				}
			}()
		}
		for i := range plan {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	elapsed := time.Since(start)

	rep := &LoadReport{
		Mode:            cfg.Mode,
		Seed:            cfg.Seed,
		Requests:        len(plan),
		DurationSeconds: elapsed.Seconds(),
		PerReplica:      make(map[string]int64),
	}
	// Every started replica appears in the distribution, explicitly zero if
	// it served nothing — without this, a cold replica is indistinguishable
	// from one that wasn't running, and the report's schema shifts run to
	// run.
	for _, name := range cfg.Replicas {
		rep.PerReplica[name] = 0
	}
	var latencies []float64
	completed := 0
	for _, r := range results {
		if r.err != nil {
			rep.OtherErrors++
			continue
		}
		switch {
		case r.status == http.StatusOK && r.degraded:
			rep.Degraded++
		case r.status == http.StatusOK:
			rep.OK++
		case r.status == http.StatusTooManyRequests:
			rep.Shed++
		case r.status == http.StatusServiceUnavailable:
			rep.Unavailable++
		default:
			rep.OtherErrors++
		}
		if r.status == http.StatusOK {
			completed++
			latencies = append(latencies, float64(r.latency)/float64(time.Millisecond))
			if r.replica != "" {
				rep.PerReplica[r.replica]++
			}
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(completed) / elapsed.Seconds()
	}
	sort.Float64s(latencies)
	rep.P50Millis = quantile(latencies, 0.50)
	rep.P95Millis = quantile(latencies, 0.95)
	rep.P99Millis = quantile(latencies, 0.99)
	return rep, nil
}

// quantile returns the q-quantile of sorted values (nearest-rank on the
// upper side; 0 for empty input).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
