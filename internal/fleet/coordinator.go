package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/service"
)

// ReplicaHeader names the response header carrying which replica served a
// routed request — the load generator builds its per-replica hit
// distribution from it.
const ReplicaHeader = "X-Taste-Replica"

// Config tunes a Coordinator.
type Config struct {
	// Vnodes is the ring's virtual-node count per replica (0 =
	// DefaultVnodes).
	Vnodes int
	// MaxInFlight bounds concurrently routed requests (admission control);
	// 0 = 64.
	MaxInFlight int
	// QueueDepth bounds how many requests may wait for an in-flight slot;
	// the QueueDepth+1-th waiter is shed with 429 immediately. 0 disables
	// queueing (full ⇒ immediate 429); negative = unbounded queue.
	QueueDepth int
	// QueueWait bounds how long one request waits for a slot before being
	// shed; 0 = 100 ms.
	QueueWait time.Duration
	// Retry is the per-replica transient-retry policy — the same machinery
	// the detector uses against tenant databases (internal/retry), seeded
	// by RetrySeed. Zero value = 2 retries, 2 ms base, 100 ms cap.
	Retry     retry.Policy
	RetrySeed int64
	// AttemptTimeout bounds a single proxied attempt; 0 = none (the
	// request's own deadline still applies).
	AttemptTimeout time.Duration
	// MaxBodyBytes bounds an accepted request body; 0 = 4 MiB.
	MaxBodyBytes int64
	// Pool tunes health probing/hysteresis.
	Pool PoolConfig
	// Client issues proxied requests; nil uses http.DefaultTransport with
	// no overall timeout (per-request contexts bound attempts).
	Client *http.Client
}

// routingStats is the coordinator's accounting ledger (the /v1/stats view;
// the obs registry mirrors it for /metrics).
type routingStats struct {
	Routed      atomic.Int64
	Shed        atomic.Int64
	Unavailable atomic.Int64
	Errors      atomic.Int64
	Failovers   atomic.Int64
	Retries     atomic.Int64
}

// Coordinator routes /v1/detect across a fleet of tasted replicas.
type Coordinator struct {
	cfg     Config
	ring    *Ring
	pool    *Pool
	client  *http.Client
	retrier *retry.Retrier

	sem     chan struct{}
	waiters atomic.Int64

	stats routingStats

	reg             *obs.Registry
	reqOutcomes     map[string]*obs.Counter
	failoversTotal  *obs.Counter
	retriesTotal    *obs.Counter
	scrapeErrsTotal *obs.Counter
	queueWaitSecs   *obs.Histogram
	requestSecs     *obs.Histogram
	healthyGauge    *obs.Gauge

	perReplicaMu sync.Mutex
	perReplica   map[string]int64
}

// NewCoordinator builds a coordinator over name→baseURL replicas. Call
// Start to launch health probing and Stop to tear it down.
func NewCoordinator(replicas map[string]string, cfg Config) *Coordinator {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = 100 * time.Millisecond
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 4 << 20
	}
	if cfg.Retry == (retry.Policy{}) {
		cfg.Retry = retry.Policy{MaxRetries: 2, BaseDelay: 2 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	reg := obs.NewRegistry()
	c := &Coordinator{
		cfg:     cfg,
		ring:    NewRing(cfg.Vnodes),
		pool:    NewPool(replicas, cfg.Pool),
		client:  client,
		retrier: retry.New(cfg.Retry, cfg.RetrySeed+1),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		reg:     reg,
		reqOutcomes: map[string]*obs.Counter{
			"routed":      reg.Counter("taste_fleet_requests_total", "outcome", "routed"),
			"shed":        reg.Counter("taste_fleet_requests_total", "outcome", "shed"),
			"unavailable": reg.Counter("taste_fleet_requests_total", "outcome", "unavailable"),
			"error":       reg.Counter("taste_fleet_requests_total", "outcome", "error"),
		},
		failoversTotal:  reg.Counter("taste_fleet_failovers_total"),
		retriesTotal:    reg.Counter("taste_fleet_retries_total"),
		scrapeErrsTotal: reg.Counter("taste_fleet_scrape_errors_total"),
		queueWaitSecs:   reg.LatencyHistogram("taste_fleet_queue_wait_seconds"),
		requestSecs:     reg.LatencyHistogram("taste_fleet_request_seconds"),
		healthyGauge:    reg.Gauge("taste_fleet_replicas_healthy"),
		perReplica:      make(map[string]int64),
	}
	// Ring membership is the full replica set; health is a routing-time
	// filter. Keeping ejected replicas on the ring preserves the
	// minimal-movement property across health blips: a readmitted replica
	// gets exactly its old keys back.
	for _, name := range c.pool.Names() {
		c.ring.Add(name)
	}
	c.healthyGauge.Set(int64(len(c.pool.Names())))
	c.pool.SetTransitionHook(func(string, bool) {
		c.healthyGauge.Set(int64(len(c.pool.Healthy())))
	})
	return c
}

// Start launches background health probing.
func (c *Coordinator) Start() { c.pool.Start() }

// Stop halts health probing.
func (c *Coordinator) Stop() { c.pool.Stop() }

// Pool exposes the replica pool (for stats and tests).
func (c *Coordinator) Pool() *Pool { return c.pool }

// Ring exposes the hash ring (for stats and tests).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Handler returns the coordinator's HTTP surface:
//
//	GET  /healthz     coordinator liveness (+ healthy-replica count)
//	POST /v1/detect   routed detection (proxied verbatim to the owner)
//	GET  /v1/types    passthrough to the first healthy replica
//	GET  /v1/stats    routing/failover/shed ledger + per-replica health
//	GET  /metrics     fleet-wide aggregation of replica scrapes + own series
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", c.handleHealth)
	mux.HandleFunc("/v1/detect", c.handleDetect)
	mux.HandleFunc("/v1/types", c.handleTypes)
	mux.HandleFunc("/v1/stats", c.handleStats)
	mux.HandleFunc("/metrics", c.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":           "ok",
		"replicas_healthy": len(c.pool.Healthy()),
		"replicas_total":   len(c.pool.Names()),
	})
}

// acquire implements admission control: a free in-flight slot is taken
// immediately; otherwise the request queues (bounded by QueueDepth) for up
// to QueueWait. Returns false when the request must be shed.
func (c *Coordinator) acquire(ctx context.Context) bool {
	select {
	case c.sem <- struct{}{}:
		return true
	default:
	}
	if c.cfg.QueueDepth == 0 {
		return false
	}
	if c.cfg.QueueDepth > 0 && c.waiters.Add(1) > int64(c.cfg.QueueDepth) {
		c.waiters.Add(-1)
		return false
	} else if c.cfg.QueueDepth < 0 {
		c.waiters.Add(1)
	}
	defer c.waiters.Add(-1)
	start := time.Now()
	t := time.NewTimer(c.cfg.QueueWait)
	defer t.Stop()
	select {
	case c.sem <- struct{}{}:
		c.queueWaitSecs.ObserveDuration(time.Since(start))
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

func (c *Coordinator) release() { <-c.sem }

// statusError marks a replica attempt that reached the replica but came
// back with a retryable gateway-class status.
type statusError struct{ status int }

func (e *statusError) Error() string { return fmt.Sprintf("replica status %d", e.status) }

// transientAttempt classifies proxied-attempt errors for the retrier:
// network errors (the replica is unreachable, mid-flight drop) and 5xx
// statuses are transient — the request is idempotent (detection is a read),
// so re-sending is safe.
func transientAttempt(err error) bool {
	if err == nil {
		return false
	}
	if _, ok := err.(*statusError); ok {
		return true
	}
	// Everything else reaching the retrier from http.Client.Do is a
	// transport-level failure; context errors are handled by Do itself.
	return true
}

// captured is one proxied response read fully into memory.
type captured struct {
	status int
	body   []byte
}

func (c *Coordinator) attempt(ctx context.Context, baseURL string, body []byte) (*captured, error) {
	if c.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/detect", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 500 {
		return nil, &statusError{resp.StatusCode}
	}
	return &captured{status: resp.StatusCode, body: data}, nil
}

// handleDetect routes one detection: parse enough of the body to compute
// the route key, run the owner chain with per-replica retries and
// cross-replica failover, and pass the winning replica's response through
// byte-for-byte (routing must not perturb results — the golden parity test
// pins this).
func (c *Coordinator) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, c.cfg.MaxBodyBytes+1))
	if err != nil {
		c.reqOutcomes["error"].Inc()
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > c.cfg.MaxBodyBytes {
		c.reqOutcomes["error"].Inc()
		writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", c.cfg.MaxBodyBytes)
		return
	}
	var req service.DetectRequest
	if err := json.Unmarshal(body, &req); err != nil {
		c.reqOutcomes["error"].Inc()
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	if !c.acquire(r.Context()) {
		c.stats.Shed.Add(1)
		c.reqOutcomes["shed"].Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "fleet at capacity (in-flight %d, queue %d)", c.cfg.MaxInFlight, c.cfg.QueueDepth)
		return
	}
	defer c.release()

	start := time.Now()
	key := req.RouteKey()
	// The owner chain covers every ring member in deterministic ring order;
	// unhealthy members are skipped (not removed — see NewCoordinator).
	chain := c.ring.OwnerN(key, c.ring.Len())
	ctx := r.Context()
	var lastErr error
	attempted := 0
	for _, name := range chain {
		if ctx.Err() != nil {
			break
		}
		if !c.pool.IsHealthy(name) {
			continue
		}
		if attempted > 0 {
			c.stats.Failovers.Add(1)
			c.failoversTotal.Inc()
		}
		attempted++
		var out *captured
		retries, err := c.retrier.Do(ctx, transientAttempt, func() {
			c.stats.Retries.Add(1)
			c.retriesTotal.Inc()
		}, func() error {
			var aerr error
			out, aerr = c.attempt(ctx, c.pool.URL(name), body)
			return aerr
		})
		_ = retries
		if err != nil {
			lastErr = fmt.Errorf("replica %s: %w", name, err)
			c.pool.ReportRequest(name, false)
			continue
		}
		c.pool.ReportRequest(name, true)
		c.stats.Routed.Add(1)
		c.reqOutcomes["routed"].Inc()
		c.reg.Counter("taste_fleet_replica_requests_total", "replica", name).Inc()
		c.perReplicaMu.Lock()
		c.perReplica[name]++
		c.perReplicaMu.Unlock()
		c.requestSecs.ObserveDuration(time.Since(start))
		// Pass the replica's answer through verbatim: status (200-degraded
		// included) and body bytes untouched.
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(ReplicaHeader, name)
		w.WriteHeader(out.status)
		_, _ = w.Write(out.body)
		return
	}

	c.stats.Unavailable.Add(1)
	c.reqOutcomes["unavailable"].Inc()
	reason := "no healthy replica"
	if lastErr != nil {
		reason = lastErr.Error()
	} else if err := ctx.Err(); err != nil {
		reason = err.Error()
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
		"error":  "fleet unavailable",
		"reason": reason,
		"key":    key,
	})
}

// handleTypes proxies the (replica-invariant) type domain from the first
// healthy replica.
func (c *Coordinator) handleTypes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	for _, name := range c.pool.Healthy() {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, c.pool.URL(name)+"/v1/types", nil)
		if err != nil {
			continue
		}
		resp, err := c.client.Do(req)
		if err != nil {
			c.pool.ReportRequest(name, false)
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(ReplicaHeader, name)
		_, _ = w.Write(data)
		return
	}
	writeError(w, http.StatusServiceUnavailable, "no healthy replica")
}

// CacheTotals is the fleet-wide rollup of the replicas' tiered-cache
// counters: hits/misses summed across every replica that answered its
// stats scrape, with the derived hit rates the capacity dashboards watch.
type CacheTotals struct {
	LatentHits    int64   `json:"latent_hits"`
	LatentMisses  int64   `json:"latent_misses"`
	LatentHitRate float64 `json:"latent_hit_rate"`
	ResultHits    int64   `json:"result_hits"`
	ResultMisses  int64   `json:"result_misses"`
	ResultHitRate float64 `json:"result_hit_rate"`
	Coalesced     int64   `json:"coalesced"`
	Bytes         int64   `json:"bytes"`
}

// StatsResponse is the coordinator's /v1/stats reply.
type StatsResponse struct {
	Replicas []ReplicaState `json:"replicas"`
	Routing  struct {
		Routed      int64            `json:"routed"`
		Shed        int64            `json:"shed"`
		Unavailable int64            `json:"unavailable"`
		Errors      int64            `json:"errors"`
		Failovers   int64            `json:"failovers"`
		Retries     int64            `json:"retries"`
		PerReplica  map[string]int64 `json:"per_replica"`
	} `json:"routing"`
	Ring struct {
		Nodes  []string `json:"nodes"`
		Vnodes int      `json:"vnodes"`
	} `json:"ring"`
	// Caches holds each healthy replica's tiered-cache block, scraped from
	// its /v1/stats in parallel with a short timeout; a replica that fails
	// to answer is simply absent (and bumps the scrape-error counter).
	Caches map[string]service.CacheBlock `json:"caches,omitempty"`
	// CacheTotals rolls Caches up into fleet-wide hit rates.
	CacheTotals *CacheTotals `json:"cache_totals,omitempty"`
	// Models holds each healthy replica's serving-model block from the same
	// scrape: which registry version (and weight generation) every replica
	// serves, making rollout progress — and version skew — visible in one
	// place during a fleet-wide hot-swap.
	Models map[string]service.ModelBlock `json:"models,omitempty"`
}

// scrapeCaches collects the cache and serving-model blocks from every
// healthy replica's /v1/stats concurrently. The coordinator holds no cache
// or model state of its own: both live in the replicas, so the fleet-wide
// view is a scrape-time rollup.
func (c *Coordinator) scrapeCaches(ctx context.Context) (map[string]service.CacheBlock, map[string]service.ModelBlock) {
	healthy := c.pool.Healthy()
	type scraped struct {
		name  string
		block service.CacheBlock
		model service.ModelBlock
		ok    bool
	}
	results := make([]scraped, len(healthy))
	var wg sync.WaitGroup
	for i, name := range healthy {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(sctx, http.MethodGet, c.pool.URL(name)+"/v1/stats", nil)
			if err != nil {
				c.scrapeErrsTotal.Inc()
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				c.scrapeErrsTotal.Inc()
				return
			}
			defer resp.Body.Close()
			var body struct {
				Cache service.CacheBlock `json:"cache"`
				Model service.ModelBlock `json:"model"`
			}
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&body) != nil {
				c.scrapeErrsTotal.Inc()
				return
			}
			results[i] = scraped{name: name, block: body.Cache, model: body.Model, ok: true}
		}(i, name)
	}
	wg.Wait()
	caches := make(map[string]service.CacheBlock)
	models := make(map[string]service.ModelBlock)
	for _, r := range results {
		if r.ok {
			caches[r.name] = r.block
			// The scrape is per replica, but the registry economics inside
			// the block are store-wide; keep only the per-replica fields.
			r.model.Registry = nil
			models[r.name] = r.model
		}
	}
	return caches, models
}

func rollupCaches(caches map[string]service.CacheBlock) *CacheTotals {
	if len(caches) == 0 {
		return nil
	}
	t := &CacheTotals{}
	for _, b := range caches {
		t.LatentHits += b.Latent.Hits
		t.LatentMisses += b.Latent.Misses
		t.ResultHits += b.Result.Hits
		t.ResultMisses += b.Result.Misses
		t.Coalesced += b.Flight.Coalesced
		t.Bytes += b.Latent.Bytes + b.Result.Bytes
	}
	if n := t.LatentHits + t.LatentMisses; n > 0 {
		t.LatentHitRate = float64(t.LatentHits) / float64(n)
	}
	if n := t.ResultHits + t.ResultMisses; n > 0 {
		t.ResultHitRate = float64(t.ResultHits) / float64(n)
	}
	return t
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := StatsResponse{Replicas: c.pool.Snapshot()}
	resp.Caches, resp.Models = c.scrapeCaches(r.Context())
	resp.CacheTotals = rollupCaches(resp.Caches)
	resp.Routing.Routed = c.stats.Routed.Load()
	resp.Routing.Shed = c.stats.Shed.Load()
	resp.Routing.Unavailable = c.stats.Unavailable.Load()
	resp.Routing.Errors = c.stats.Errors.Load()
	resp.Routing.Failovers = c.stats.Failovers.Load()
	resp.Routing.Retries = c.stats.Retries.Load()
	resp.Routing.PerReplica = make(map[string]int64)
	c.perReplicaMu.Lock()
	for k, v := range c.perReplica {
		resp.Routing.PerReplica[k] = v
	}
	c.perReplicaMu.Unlock()
	resp.Ring.Nodes = c.ring.Nodes()
	vn := c.ring.vnodes
	resp.Ring.Vnodes = vn
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves the fleet-wide exposition: every healthy replica's
// /metrics scrape summed by obs.MergeText (counters and histogram buckets
// become fleet totals), followed by the coordinator's own taste_fleet_*
// series. A replica that fails to answer its scrape contributes nothing and
// bumps taste_fleet_scrape_errors_total.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	healthy := c.pool.Healthy()
	texts := make([]string, len(healthy))
	var wg sync.WaitGroup
	for i, name := range healthy {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.pool.URL(name)+"/metrics", nil)
			if err != nil {
				c.scrapeErrsTotal.Inc()
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				c.scrapeErrsTotal.Inc()
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil || resp.StatusCode != http.StatusOK {
				c.scrapeErrsTotal.Inc()
				return
			}
			texts[i] = string(data)
		}(i, name)
	}
	wg.Wait()
	nonEmpty := texts[:0]
	for _, t := range texts {
		if t != "" {
			nonEmpty = append(nonEmpty, t)
		}
	}
	merged, err := obs.MergeText(nonEmpty...)
	if err != nil {
		// A malformed replica scrape must not take down the fleet's own
		// series; serve those and report the aggregation failure.
		c.scrapeErrsTotal.Inc()
		merged = fmt.Sprintf("# aggregation error: %v\n", err)
	}
	c.healthyGauge.Set(int64(len(healthy)))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, merged)
	_ = c.reg.WritePrometheus(w)
}
