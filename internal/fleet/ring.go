// Package fleet is the horizontal scale-out layer over tasted: a
// consistent-hash ring shards tenants across N replicas, a health-checked
// pool ejects and readmits them with hysteresis, and an HTTP coordinator
// routes /v1/detect with retry/failover, admission control, and fleet-wide
// metric aggregation. Sharding by tenant/database keeps each replica's
// latent cache hot for its shard — the same locality argument the paper's
// cloud framing (§2.2) makes for per-tenant model state.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring with virtual nodes. Placement depends only
// on the member names and the vnode count — never on insertion order or map
// iteration — so every coordinator instance computes the same ownership, and
// adding or removing one replica moves only the keys that replica gains or
// loses (the consistent-hashing minimal-movement property, proven by the
// property tests). Safe for concurrent use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVnodes spreads each replica over 128 ring positions — enough to
// keep the balance bound across 1000 tenants under ~1.35× the mean (see
// TestRingBalance) while keeping Add/Remove cheap.
const DefaultVnodes = 128

// NewRing creates an empty ring; vnodes ≤ 0 uses DefaultVnodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the MurmurHash3 finalizer. Raw FNV-1a of near-identical strings
// ("replica00#0", "replica00#1", …) leaves correlated low bits, which
// clusters vnodes and skews ownership badly (observed 0.2×–1.5× of the fair
// share across 4 replicas); full avalanche restores the balance bound.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add inserts a node; adding an existing node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", node, v)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node; removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the member names, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Owner returns the node owning key: the first ring point at or clockwise
// after the key's hash. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.OwnerN(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// OwnerN returns up to n distinct nodes in ring order starting at key's
// position — the owner followed by its deterministic failover chain. A
// coordinator walks this chain when the owner is unhealthy, so failover
// traffic for one tenant always lands on the same fallback replica (keeping
// its cache warm for the shard it covers during the outage).
func (r *Ring) OwnerN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
