package fleet

import (
	"fmt"
	"testing"
)

// syntheticTenants builds the 1000-key workload the balance and movement
// properties are checked over: tenant and tenant/table keys, the two shapes
// DetectRequest.RouteKey produces.
func syntheticTenants(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		if i%3 == 0 {
			keys[i] = fmt.Sprintf("tenant%04d", i)
		} else {
			keys[i] = fmt.Sprintf("tenant%04d/table_%d", i/3, i%17)
		}
	}
	return keys
}

// TestRingDeterministicPlacement: ownership is a pure function of the
// member set — insertion order must not matter, and repeated lookups must
// agree.
func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing(64)
	b := NewRing(64)
	nodes := []string{"r0", "r1", "r2", "r3", "r4"}
	for _, n := range nodes {
		a.Add(n)
	}
	for i := len(nodes) - 1; i >= 0; i-- {
		b.Add(nodes[i])
	}
	for _, key := range syntheticTenants(1000) {
		ow := a.Owner(key)
		if ow == "" {
			t.Fatalf("no owner for %q", key)
		}
		if got := b.Owner(key); got != ow {
			t.Fatalf("placement depends on insertion order: %q → %q vs %q", key, ow, got)
		}
		if got := a.Owner(key); got != ow {
			t.Fatalf("placement not stable across lookups: %q", key)
		}
	}
}

// TestRingBalance: with DefaultVnodes, no replica owns more than ~1.35× its
// fair share of 1000 synthetic tenants.
func TestRingBalance(t *testing.T) {
	r := NewRing(DefaultVnodes)
	const nodes = 4
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("replica%02d", i))
	}
	keys := syntheticTenants(1000)
	counts := make(map[string]int)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	if len(counts) != nodes {
		t.Fatalf("only %d of %d nodes own keys: %v", len(counts), nodes, counts)
	}
	mean := float64(len(keys)) / nodes
	for node, c := range counts {
		ratio := float64(c) / mean
		if ratio > 1.35 {
			t.Errorf("node %s owns %d keys = %.2f× mean (bound 1.35×); distribution %v", node, c, ratio, counts)
		}
		if ratio < 0.5 {
			t.Errorf("node %s starved: %d keys = %.2f× mean; distribution %v", node, c, ratio, counts)
		}
	}
}

// TestRingMinimalMovementOnAdd: adding a node moves only the keys that node
// gains — every other key keeps its owner.
func TestRingMinimalMovementOnAdd(t *testing.T) {
	r := NewRing(DefaultVnodes)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("replica%02d", i))
	}
	keys := syntheticTenants(1000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Add("replica04")
	moved := 0
	for _, k := range keys {
		now := r.Owner(k)
		if now != before[k] {
			if now != "replica04" {
				t.Fatalf("key %q moved %s→%s, not to the added node", k, before[k], now)
			}
			moved++
		}
	}
	// The new node's expected share is 1/5 ≈ 200 keys; allow slack for hash
	// variance but require the move set to stay in that ballpark (a naive
	// mod-N rehash would move ~80% of keys).
	if moved == 0 || moved > 400 {
		t.Fatalf("add moved %d/%d keys; want ≈200 (only the new node's share)", moved, len(keys))
	}
}

// TestRingMinimalMovementOnRemove: removing a node relocates exactly that
// node's keys; everything else stays put. Then re-adding it restores the
// original placement exactly (health-blip symmetry).
func TestRingMinimalMovementOnRemove(t *testing.T) {
	r := NewRing(DefaultVnodes)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("replica%02d", i))
	}
	keys := syntheticTenants(1000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	const victim = "replica02"
	r.Remove(victim)
	for _, k := range keys {
		now := r.Owner(k)
		if before[k] == victim {
			if now == victim {
				t.Fatalf("key %q still owned by removed node", k)
			}
		} else if now != before[k] {
			t.Fatalf("key %q moved %s→%s though its owner was not removed", k, before[k], now)
		}
	}
	r.Add(victim)
	for _, k := range keys {
		if got := r.Owner(k); got != before[k] {
			t.Fatalf("re-adding %s did not restore placement: %q %s→%s", victim, k, before[k], got)
		}
	}
}

// TestRingOwnerN: the failover chain is deterministic, distinct, starts at
// the owner, and covers the whole membership when asked to.
func TestRingOwnerN(t *testing.T) {
	r := NewRing(32)
	nodes := []string{"a", "b", "c", "d"}
	for _, n := range nodes {
		r.Add(n)
	}
	for _, key := range syntheticTenants(100) {
		chain := r.OwnerN(key, 10) // n capped at membership
		if len(chain) != len(nodes) {
			t.Fatalf("chain for %q has %d nodes, want %d: %v", key, len(chain), len(nodes), chain)
		}
		if chain[0] != r.Owner(key) {
			t.Fatalf("chain head %q ≠ owner %q", chain[0], r.Owner(key))
		}
		seen := make(map[string]bool)
		for _, n := range chain {
			if seen[n] {
				t.Fatalf("duplicate node %q in chain %v", n, chain)
			}
			seen[n] = true
		}
		again := r.OwnerN(key, 10)
		for i := range chain {
			if chain[i] != again[i] {
				t.Fatalf("chain not deterministic for %q: %v vs %v", key, chain, again)
			}
		}
	}
}

// TestRingEmptyAndEdgeCases: zero-member behaviour and idempotent Add/Remove.
func TestRingEmptyAndEdgeCases(t *testing.T) {
	r := NewRing(0) // → DefaultVnodes
	if got := r.Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	if got := r.OwnerN("k", 3); got != nil {
		t.Fatalf("empty ring OwnerN = %v, want nil", got)
	}
	r.Add("only")
	r.Add("only") // idempotent
	if r.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Add", r.Len())
	}
	if got := r.Owner("anything"); got != "only" {
		t.Fatalf("single-node ring owner = %q", got)
	}
	if got := r.OwnerN("anything", 0); got != nil {
		t.Fatalf("OwnerN(0) = %v, want nil", got)
	}
	r.Remove("absent") // no-op
	r.Remove("only")
	if r.Len() != 0 || r.Owner("k") != "" {
		t.Fatalf("ring not empty after removing last node")
	}
}
