package fleet

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// PoolConfig tunes replica health gating.
type PoolConfig struct {
	// ProbeInterval is the period of the background health prober; ≤ 0
	// disables the background goroutine (tests drive ProbeOnce manually).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request.
	ProbeTimeout time.Duration
	// EjectAfter is the hysteresis down-threshold: this many *consecutive*
	// failures (probes or routed requests) eject a replica from rotation.
	EjectAfter int
	// ReadmitAfter is the up-threshold: this many consecutive successful
	// probes readmit an ejected replica. Readmission is probe-driven only —
	// an ejected replica receives no routed traffic to prove itself with.
	ReadmitAfter int
	// Client issues probe requests; nil uses a default with ProbeTimeout.
	Client *http.Client
}

// DefaultPoolConfig: probe every second, eject after 3 consecutive
// failures, readmit after 2 consecutive good probes.
func DefaultPoolConfig() PoolConfig {
	return PoolConfig{
		ProbeInterval: time.Second,
		ProbeTimeout:  2 * time.Second,
		EjectAfter:    3,
		ReadmitAfter:  2,
	}
}

// ReplicaState is one replica's health snapshot.
type ReplicaState struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// ConsecFailures / ConsecSuccesses are the current hysteresis counters.
	ConsecFailures  int `json:"consec_failures"`
	ConsecSuccesses int `json:"consec_successes"`
	// Probes / ProbeFailures count lifetime probe outcomes.
	Probes        int `json:"probes"`
	ProbeFailures int `json:"probe_failures"`
	// Ejections counts healthy→unhealthy transitions.
	Ejections int `json:"ejections"`
}

type replica struct {
	name string
	url  string

	mu      sync.Mutex
	state   ReplicaState
	healthy bool
}

// Pool tracks a fixed set of replicas and their health. Membership is
// static after construction (the ring depends on it for minimal key
// movement); health is a dynamic filter over that membership.
type Pool struct {
	cfg      PoolConfig
	client   *http.Client
	replicas []*replica
	byName   map[string]*replica

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// onTransition, when set, runs after any health transition (both
	// directions) with the replica name and its new health. The coordinator
	// uses it to move gauges; tests use it to observe hysteresis.
	onTransition func(name string, healthy bool)
}

// NewPool creates a pool over name→baseURL replicas. Replicas start
// healthy: the fleet boots optimistic and ejects on evidence, so a cold
// start does not shed every request while the first probe round runs.
func NewPool(replicas map[string]string, cfg PoolConfig) *Pool {
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = DefaultPoolConfig().EjectAfter
	}
	if cfg.ReadmitAfter <= 0 {
		cfg.ReadmitAfter = DefaultPoolConfig().ReadmitAfter
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultPoolConfig().ProbeTimeout
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.ProbeTimeout}
	}
	p := &Pool{
		cfg:    cfg,
		client: client,
		byName: make(map[string]*replica, len(replicas)),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	// Sorted iteration keeps replica order deterministic everywhere.
	names := make([]string, 0, len(replicas))
	for name := range replicas {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := &replica{name: name, url: replicas[name], healthy: true}
		r.state = ReplicaState{Name: name, URL: replicas[name], Healthy: true}
		p.replicas = append(p.replicas, r)
		p.byName[name] = r
	}
	return p
}

// SetTransitionHook installs the health-transition callback. Call before
// Start.
func (p *Pool) SetTransitionHook(fn func(name string, healthy bool)) { p.onTransition = fn }

// Start launches the background prober (no-op when ProbeInterval ≤ 0).
func (p *Pool) Start() {
	if p.cfg.ProbeInterval <= 0 {
		close(p.done)
		return
	}
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.ProbeOnce(context.Background())
			}
		}
	}()
}

// Stop terminates the prober and waits for it to exit.
func (p *Pool) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// ProbeOnce probes every replica's /v1/stats once, sequentially in name
// order (deterministic for tests; N is small). The stats endpoint — not
// /healthz — is probed deliberately: it exercises the detector's ledgers,
// so a replica that accepts TCP but cannot serve its API is ejected too.
func (p *Pool) ProbeOnce(ctx context.Context) {
	for _, r := range p.replicas {
		err := p.probe(ctx, r)
		if err != nil {
			p.noteProbe(r, false)
		} else {
			p.noteProbe(r, true)
		}
	}
}

func (p *Pool) probe(ctx context.Context, r *replica) error {
	ctx, cancel := context.WithTimeout(ctx, p.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+"/v1/stats", nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: probe %s: status %d", r.name, resp.StatusCode)
	}
	return nil
}

func (p *Pool) noteProbe(r *replica, ok bool) {
	r.mu.Lock()
	r.state.Probes++
	if !ok {
		r.state.ProbeFailures++
	}
	transition, healthy := r.noteOutcomeLocked(ok, p.cfg)
	r.mu.Unlock()
	if transition && p.onTransition != nil {
		p.onTransition(r.name, healthy)
	}
}

// ReportRequest feeds a routed request's outcome into the hysteresis
// counters: request failures accelerate ejection, but only probe successes
// readmit (an ejected replica sees no requests). Unknown names are ignored.
func (p *Pool) ReportRequest(name string, ok bool) {
	r := p.byName[name]
	if r == nil {
		return
	}
	r.mu.Lock()
	transition, healthy := r.noteOutcomeLocked(ok, p.cfg)
	r.mu.Unlock()
	if transition && p.onTransition != nil {
		p.onTransition(r.name, healthy)
	}
}

// noteOutcomeLocked updates the hysteresis counters and returns whether a
// health transition happened. Caller holds r.mu.
func (r *replica) noteOutcomeLocked(ok bool, cfg PoolConfig) (transition, healthy bool) {
	if ok {
		r.state.ConsecFailures = 0
		r.state.ConsecSuccesses++
		if !r.healthy && r.state.ConsecSuccesses >= cfg.ReadmitAfter {
			r.healthy = true
			r.state.Healthy = true
			return true, true
		}
	} else {
		r.state.ConsecSuccesses = 0
		r.state.ConsecFailures++
		if r.healthy && r.state.ConsecFailures >= cfg.EjectAfter {
			r.healthy = false
			r.state.Healthy = false
			r.state.Ejections++
			return true, false
		}
	}
	return false, r.healthy
}

// IsHealthy reports one replica's health (unknown names are unhealthy).
func (p *Pool) IsHealthy(name string) bool {
	r := p.byName[name]
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthy
}

// URL returns a replica's base URL ("" for unknown names).
func (p *Pool) URL(name string) string {
	if r := p.byName[name]; r != nil {
		return r.url
	}
	return ""
}

// Healthy returns the healthy replica names in deterministic (name) order.
func (p *Pool) Healthy() []string {
	var out []string
	for _, r := range p.replicas {
		r.mu.Lock()
		ok := r.healthy
		r.mu.Unlock()
		if ok {
			out = append(out, r.name)
		}
	}
	return out
}

// Names returns every replica name in deterministic order.
func (p *Pool) Names() []string {
	out := make([]string, len(p.replicas))
	for i, r := range p.replicas {
		out[i] = r.name
	}
	return out
}

// Snapshot returns every replica's state in name order.
func (p *Pool) Snapshot() []ReplicaState {
	out := make([]ReplicaState, len(p.replicas))
	for i, r := range p.replicas {
		r.mu.Lock()
		out[i] = r.state
		r.mu.Unlock()
	}
	return out
}
